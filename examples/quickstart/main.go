// Quickstart: train Ceer, predict the training time and cost of a
// held-out CNN on every AWS GPU instance family, and ask for the
// cheapest configuration — the end-to-end flow of the paper in ~50
// lines against the public API.
package main

import (
	"fmt"
	"log"

	"ceer"
)

func main() {
	// 1. Train Ceer: profile the 8 training-set CNNs on all four GPU
	//    models and fit the op-level, median, and communication models.
	sys, err := ceer.Train(ceer.TrainOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Ceer trained. Heavy op types (%d): %v\n\n", len(sys.HeavyOps()), sys.HeavyOps())

	// 2. Build a held-out CNN (never seen during training) at the
	//    paper's default per-GPU batch size of 32.
	g, err := ceer.BuildModel("inception-v3", 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inception-v3: %d ops, %.1fM parameters\n\n", g.Len(), float64(g.Params)/1e6)

	// 3. Predict one ImageNet epoch on each basic single-GPU instance.
	fmt.Println("Predicted ImageNet epoch (single GPU):")
	for _, family := range []string{"P3", "P2", "G4", "G3"} {
		cfg, err := ceer.Config(family, 1)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := sys.PredictTraining(g, cfg, ceer.ImageNet, ceer.OnDemand)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s (%-13s)  %6.2f h   $%6.2f\n",
			family, ceer.InstanceName(cfg), pred.TotalSeconds/3600, pred.CostUSD)
	}

	// 4. Recommend: which configuration (1–4 GPUs per family) minimizes
	//    the training cost?
	rec, err := sys.Recommend(g, ceer.ImageNet, ceer.OnDemand, ceer.AllConfigs(4), ceer.MinimizeCost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCheapest configuration: %s (%s) — %.2f h for $%.2f\n",
		rec.Best.Cfg, ceer.InstanceName(rec.Best.Cfg),
		rec.Best.TotalSeconds/3600, rec.Best.CostUSD)

	// 5. Sanity-check the prediction against a simulated "real" run.
	obs, err := ceer.Observe(g, rec.Best.Cfg, ceer.ImageNet, 20, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Observed on %s: %.2f h (prediction error %+.1f%%)\n",
		rec.Best.Cfg, obs.TotalSeconds/3600,
		(rec.Best.TotalSeconds/obs.TotalSeconds-1)*100)
}
