// Scaling study: reproduce the paper's Figure 6 interactively — how
// training time drops (sub-linearly!) with the number of GPUs under
// data parallelism, observed versus Ceer-predicted, for any built-in
// CNN.
//
// Usage: go run ./examples/scaling [model]   (default inception-v1)
package main

import (
	"fmt"
	"log"
	"os"

	"ceer"
)

func main() {
	model := "inception-v1"
	if len(os.Args) > 1 {
		model = os.Args[1]
	}

	sys, err := ceer.Train(ceer.TrainOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	g, err := ceer.BuildModel(model, 32)
	if err != nil {
		log.Fatal(err)
	}
	ds := ceer.ImageNetSubset6400
	fmt.Printf("Data-parallel scaling of %s over %d ImageNet samples (batch 32/GPU)\n\n",
		model, ds.Samples)
	fmt.Println("GPU   k   observed(s)  predicted(s)  speedup  comm share")
	fmt.Println("----------------------------------------------------------")

	for _, family := range []string{"P3", "P2", "G4", "G3"} {
		var base float64
		for k := 1; k <= 4; k++ {
			cfg, err := ceer.Config(family, k)
			if err != nil {
				log.Fatal(err)
			}
			obs, err := ceer.Observe(g, cfg, ds, 15, 11)
			if err != nil {
				log.Fatal(err)
			}
			pred, err := sys.PredictTraining(g, cfg, ds, ceer.OnDemand)
			if err != nil {
				log.Fatal(err)
			}
			if k == 1 {
				base = obs.TotalSeconds
			}
			fmt.Printf("%-4s  %d  %10.1f  %12.1f  %6.2fx  %9.1f%%\n",
				family, k, obs.TotalSeconds, pred.TotalSeconds,
				base/obs.TotalSeconds,
				obs.CommSeconds/obs.PerIterSeconds*100)
		}
		fmt.Println()
	}
	fmt.Println("Note the diminishing returns: synchronization overhead grows with k")
	fmt.Println("(paper Section III-D), so 4 GPUs never deliver a 4x speedup.")
}
