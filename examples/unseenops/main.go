// Unseen operations: the paper's Section IV-D limitation, live. A
// MobileNet-style network uses depthwise convolutions — a heavy
// operation type that never occurs in the paper's 12 CNNs. A Ceer
// instance trained on the standard zoo flags the op as unseen and falls
// back to a degraded estimate; retraining on data that includes the new
// op restores accuracy. "In such cases, Ceer will have to be updated
// with new training data."
package main

import (
	"fmt"
	"log"
	"math"

	"ceer"
)

// buildMobileNetish constructs a small MobileNet-v1-flavored CNN:
// depthwise-separable blocks (depthwise 3×3 + pointwise 1×1, each with
// BN and ReLU).
func buildMobileNetish(batch int64) (*ceer.Graph, error) {
	b := ceer.NewGraphBuilder("mobilenet-ish", batch)
	x := b.Input(224, 224, 3)
	x = b.ConvSq(x, 32, 3, 2, ceer.SamePadding)
	x = b.BatchNorm(x)
	x = b.ReLU(x)
	widths := []struct {
		c, s int64
	}{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {1024, 2},
	}
	for _, wc := range widths {
		// Depthwise 3×3.
		x = b.DepthwiseConv(x, 3, wc.s, ceer.SamePadding)
		x = b.BatchNorm(x)
		x = b.ReLU(x)
		// Pointwise 1×1.
		x = b.ConvSq(x, wc.c, 1, 1, ceer.SamePadding)
		x = b.BatchNorm(x)
		x = b.ReLU(x)
	}
	x = b.GlobalAvgPool(x)
	x = b.Squeeze(x)
	x = b.Dense(x, 1000)
	b.SoftmaxLoss(x)
	return b.Finish()
}

func main() {
	g, err := buildMobileNetish(32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mobilenet-ish: %d ops, %.1fM params (depthwise-separable blocks)\n\n",
		g.Len(), float64(g.Params)/1e6)

	// 1. A standard Ceer (trained on the paper's 8 CNNs) has never seen
	//    DepthwiseConv2dNative.
	sys, err := ceer.Train(ceer.TrainOptions{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	cfg, _ := ceer.Config("G4", 1) // known-valid config; the error path has its own test
	ds := ceer.ImageNetSubset6400
	pred, err := sys.PredictTraining(g, cfg, ds, ceer.OnDemand)
	if err != nil {
		log.Fatal(err)
	}
	obs, err := ceer.Observe(g, cfg, ds, 20, 77)
	if err != nil {
		log.Fatal(err)
	}
	errPct := math.Abs(pred.TotalSeconds/obs.TotalSeconds-1) * 100
	fmt.Printf("standard Ceer:  predicted %6.1fs  observed %6.1fs  error %5.1f%%\n",
		pred.TotalSeconds, obs.TotalSeconds, errPct)
	if len(pred.Iter.UnseenHeavy) > 0 {
		fmt.Printf("                WARNING — unseen heavy ops: %v\n", pred.Iter.UnseenHeavy)
		fmt.Println("                (their instances were estimated with the light-op median)")
	}

	// 2. The remedy from the paper: update Ceer with training data that
	//    contains the new operation. Here: profile the mobilenet-ish
	//    graph itself into the corpus. (The public API retrains on the
	//    standard zoo; the experiment harness exposes raw retraining —
	//    for this example it is enough to show the honest failure mode
	//    and the detection signal above.)
	fmt.Println("\nPer-op attribution of the degraded prediction:")
	ex, err := sys.Predictor().ExplainIteration(g, cfg.GPU, cfg.K)
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range ex.Contributions {
		if i >= 6 {
			break
		}
		fmt.Printf("  %-28s %8.2f ms  (%.1f%%)\n", c.OpType, c.Seconds*1e3, c.Share*100)
	}
	fmt.Println("\nDepthwiseConv2dNative contributes real time in the observation but is")
	fmt.Println("priced at the light-op median in the prediction — the source of the error.")
}
