// Budget planner: reproduce the paper's three Section V decision
// scenarios for a CNN of your choice — hourly-budget throughput
// maximization (Fig. 9), total-budget time minimization (Fig. 10), and
// unconstrained cost minimization under both On-Demand and market
// prices (Figs. 11–12).
//
// Usage: go run ./examples/budgetplanner [model]   (default resnet-101)
package main

import (
	"fmt"
	"log"
	"os"

	"ceer"
)

func main() {
	model := "resnet-101"
	if len(os.Args) > 1 {
		model = os.Args[1]
	}

	sys, err := ceer.Train(ceer.TrainOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	g, err := ceer.BuildModel(model, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Planning ImageNet training for %s (%.1fM params)\n\n", model, float64(g.Params)/1e6)

	// Scenario 1 — hourly budget: the fastest configuration that rents
	// for at most $3/hr (the paper tolerates a few cents of slack).
	rec, err := sys.Recommend(g, ceer.ImageNet, ceer.OnDemand, ceer.AllConfigs(4),
		ceer.MinimizeTime, ceer.MaxHourlyBudget(3.00, 0.42))
	if err != nil {
		log.Fatal(err)
	}
	show("Scenario 1 — fastest under $3/hr rental", rec)

	// Scenario 2 — total budget: the fastest configuration whose whole
	// training run costs at most $10.
	rec, err = sys.Recommend(g, ceer.ImageNet, ceer.OnDemand, ceer.AllConfigs(4),
		ceer.MinimizeTime, ceer.MaxTotalBudget(10))
	if err != nil {
		log.Fatal(err)
	}
	show("Scenario 2 — fastest under a $10 total budget", rec)

	// Scenario 3 — cost minimization, On-Demand prices.
	rec, err = sys.Recommend(g, ceer.ImageNet, ceer.OnDemand, ceer.AllConfigs(4), ceer.MinimizeCost)
	if err != nil {
		log.Fatal(err)
	}
	show("Scenario 3a — cheapest (On-Demand prices)", rec)

	// Scenario 3 again under commodity market price ratios (Fig. 12):
	// the older P2 instances become dramatically cheaper.
	rec, err = sys.Recommend(g, ceer.ImageNet, ceer.MarketRatio, ceer.AllConfigs(4), ceer.MinimizeCost)
	if err != nil {
		log.Fatal(err)
	}
	show("Scenario 3b — cheapest (market-ratio prices)", rec)
}

func show(title string, rec ceer.Recommendation) {
	fmt.Println(title)
	feasible := 0
	for _, c := range rec.Candidates {
		if c.Feasible {
			feasible++
		}
	}
	fmt.Printf("  -> %s (%s): %.2f h, $%.2f  [%d/%d candidates feasible]\n\n",
		rec.Best.Cfg, ceer.InstanceName(rec.Best.Cfg),
		rec.Best.TotalSeconds/3600, rec.Best.CostUSD,
		feasible, len(rec.Candidates))
}
