// Zoo tour: survey all twelve built-in CNN architectures — their
// parameter counts, op mixes, and where each trains cheapest — and
// demonstrate saving/loading a trained Ceer system.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ceer"
)

func main() {
	sys, err := ceer.Train(ceer.TrainOptions{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}

	// Persist the trained models so later runs can skip profiling.
	path := filepath.Join(os.TempDir(), "ceer-models.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained Ceer saved to %s\n\n", path)

	// Reload (round-trip demonstration) and tour the zoo with it.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := ceer.Load(rf)
	if err != nil {
		log.Fatal(err)
	}
	_ = rf.Close() // read-only file; the close error is irrelevant

	fmt.Println("model                 split  params(M)  ops    cheapest     $ (epoch)   fastest  hours")
	fmt.Println("----------------------------------------------------------------------------------------")
	split := map[string]string{}
	for _, n := range ceer.TrainingModels() {
		split[n] = "train"
	}
	for _, n := range ceer.TestModels() {
		split[n] = "test"
	}
	for _, name := range ceer.Models() {
		g, err := ceer.BuildModel(name, 32)
		if err != nil {
			log.Fatal(err)
		}
		cheapest, err := loaded.Recommend(g, ceer.ImageNet, ceer.OnDemand,
			ceer.AllConfigs(4), ceer.MinimizeCost)
		if err != nil {
			log.Fatal(err)
		}
		fastest, err := loaded.Recommend(g, ceer.ImageNet, ceer.OnDemand,
			ceer.AllConfigs(4), ceer.MinimizeTime)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-21s %-5s  %9.1f  %5d  %-6s  %10.2f   %-6s  %6.2f\n",
			name, split[name], float64(g.Params)/1e6, g.Len(),
			cheapest.Best.Cfg, cheapest.Best.CostUSD,
			fastest.Best.Cfg, fastest.Best.TotalSeconds/3600)
	}
	fmt.Println("\nUnder On-Demand prices the 1xG4 instance is cost-optimal across the")
	fmt.Println("zoo (paper Fig. 11) — and would flip to 1xP2 under market-ratio prices")
	fmt.Println("(Fig. 12) — while the time-optimal choice concentrates on the largest")
	fmt.Println("P3 configuration: exactly the trade-off Ceer navigates (Section V).")
}
