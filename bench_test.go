// Benchmarks: one target per paper table/figure (see DESIGN.md's
// per-experiment index). Each bench regenerates its figure through the
// experiments harness and reports the figure's headline quantity as a
// custom metric, so `go test -bench=. -benchmem` doubles as the full
// reproduction run.
package ceer_test

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"ceer/internal/ceer"
	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/experiments"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/zoo"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	benchErr  error
)

// benchContext trains Ceer once and shares it across all benches.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx, benchErr = experiments.NewContext(context.Background(), experiments.Options{
			Seed:              42,
			ProfileIterations: 100,
			MeasureIters:      12,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCtx
}

func BenchmarkFig01DAGExport(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var nodes int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig01(ctx)
		if err != nil {
			b.Fatal(err)
		}
		nodes = r.Nodes
	}
	b.ReportMetric(float64(nodes), "dag-nodes")
}

func BenchmarkFig02HeavyOpTimes(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.Fig02Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig02(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgRatioVsP3[gpu.K80], "P2/P3-ratio")
	b.ReportMetric(r.AvgRatioVsP3[gpu.T4], "G4/P3-ratio")
	b.ReportMetric(r.AvgRatioVsP3[gpu.M60], "G3/P3-ratio")
}

func BenchmarkFig03HeavyOpCosts(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.Fig03Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig03(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.WinCounts[gpu.T4]), "G4-wins")
	b.ReportMetric(float64(r.WinCounts[gpu.V100]), "P3-wins")
}

func BenchmarkFig04ReluScaling(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.Fig04Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig04(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	minR2 := 1.0
	for _, s := range r.Series {
		if s.R2 < minR2 {
			minR2 = s.R2
		}
	}
	b.ReportMetric(minR2, "min-R2")
}

func BenchmarkFig05VariabilityCDF(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.Fig05Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig05(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 1.0
	for _, m := range gpu.All() {
		if f := r.FracBelow01[m]; f < worst {
			worst = f
		}
	}
	b.ReportMetric(worst*100, "pct-below-0.1")
}

func BenchmarkFig06DataParallelScaling(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.Fig06Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig06(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgReduction[2]*100, "k2-reduction-pct")
	b.ReportMetric(r.AvgReduction[3]*100, "k3-reduction-pct")
	b.ReportMetric(r.AvgReduction[4]*100, "k4-reduction-pct")
}

func BenchmarkFig07CommOverhead(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.Fig07Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig07(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	minR2 := 1.0
	for _, s := range r.Series {
		if s.R2 < minR2 {
			minR2 = s.R2
		}
	}
	b.ReportMetric(minR2, "min-R2")
}

func BenchmarkFig08Validation(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.Fig08Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig08(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgAbsErr*100, "avg-err-pct")
	b.ReportMetric(boolMetric(r.RankingAgreement), "ranking-ok")
}

func BenchmarkFig09HourlyBudget(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.Fig09Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig09(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(boolMetric(r.CeerMatchesObserved), "optimal-match")
}

func BenchmarkFig10TotalBudget(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig10(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.BestPredicted.K), "best-P3-gpus")
	b.ReportMetric(r.CheapestFeasibleSlowdown, "cheapest-slowdown-x")
}

func BenchmarkFig11CostMinimization(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.CostMinResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig11(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgAbsErr*100, "cost-err-pct")
	b.ReportMetric(boolMetric(r.BestPredicted.GPU == gpu.T4 && r.BestPredicted.K == 1), "picked-1xG4")
}

func BenchmarkFig12MarketPrices(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.CostMinResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig12(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(boolMetric(r.BestPredicted.GPU == gpu.K80 && r.BestPredicted.K == 1), "picked-1xP2")
}

func BenchmarkSec3AClassShares(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ClassShares(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec4AAblations(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.Sec4AResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Sec4A(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MeanErr[ceer.Full]*100, "full-err-pct")
	b.ReportMetric(r.MeanErr[ceer.NoComm]*100, "no-comm-err-pct")
	b.ReportMetric(r.MeanErr[ceer.HeavyOnlyNoComm]*100, "heavy-only-err-pct")
}

func BenchmarkSec4BOpModelQuality(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.Sec4BResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Sec4B(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MedianTestMAPE*100, "median-op-mape-pct")
	b.ReportMetric(r.R2Min, "min-train-R2")
}

func BenchmarkOverallAccuracy(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.OverallResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Overall(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MeanErr*100, "mean-err-pct")
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// campaignPipeline is the campaign benchmarked below: three training
// CNNs at a modest profiling depth — large enough that the per-(CNN,
// GPU, k) fan-out dominates, small enough to iterate.
func campaignPipeline(workers int) ceer.Pipeline {
	pl := ceer.DefaultPipeline(42)
	pl.ProfileIterations = 30
	pl.CommIterations = 8
	pl.Workers = workers
	return pl
}

var campaignBenchNames = []string{"vgg-11", "inception-v1", "resnet-50"}

func BenchmarkCampaignSerial(b *testing.B) {
	pl := campaignPipeline(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Campaign(context.Background(), zoo.Build, campaignBenchNames); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignParallel runs the campaign at GOMAXPROCS workers and
// reports the wall-clock speedup over a serial reference run measured
// in the same process (the "speedup-vs-serial" metric; ~1.0 on a
// single-core runner, approaching the core count on multi-core ones).
func BenchmarkCampaignParallel(b *testing.B) {
	serial := campaignPipeline(1)
	start := time.Now()
	if _, err := serial.Campaign(context.Background(), zoo.Build, campaignBenchNames); err != nil {
		b.Fatal(err)
	}
	serialSec := time.Since(start).Seconds()

	pl := campaignPipeline(runtime.GOMAXPROCS(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Campaign(context.Background(), zoo.Build, campaignBenchNames); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	parallelSec := b.Elapsed().Seconds() / float64(b.N)
	if parallelSec > 0 {
		b.ReportMetric(serialSec/parallelSec, "speedup-vs-serial")
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// BenchmarkBuildCacheHitRate measures amortized graph retrieval through
// the campaign's BuildCache; hit-rate approaches 1 as b.N grows because
// each architecture is only ever constructed once.
func BenchmarkBuildCacheHitRate(b *testing.B) {
	cache := graph.NewBuildCache(zoo.Build)
	names := zoo.TrainingSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			if _, err := cache.Build(name, zoo.DefaultBatch); err != nil {
				b.Fatal(err)
			}
		}
	}
	hits, misses := cache.Stats()
	b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
}

// servingPipeline trains the compact predictor used by the serving-path
// benches below. Each bench that measures memo behavior trains its own
// instance so the prediction memo starts cold.
func servingPipeline() ceer.Pipeline {
	pl := ceer.DefaultPipeline(7)
	pl.ProfileIterations = 30
	pl.CommIterations = 8
	return pl
}

var (
	servingOnce sync.Once
	servingPred *ceer.Predictor
	servingErr  error
)

// servingPredictor is the shared (warm-memo) predictor for the
// per-iteration benches.
func servingPredictor(b *testing.B) *ceer.Predictor {
	b.Helper()
	servingOnce.Do(func() {
		pl := servingPipeline()
		servingPred, _, servingErr = pl.TrainOn(context.Background(), zoo.Build, zoo.TrainingSet())
	})
	if servingErr != nil {
		b.Fatal(servingErr)
	}
	return servingPred
}

// BenchmarkPredictIterationFolded measures the warm folded serving path
// on the deepest zoo CNN; unique-frac is the fold's class-to-node ratio
// (the work reduction per prediction).
func BenchmarkPredictIterationFolded(b *testing.B) {
	p := servingPredictor(b)
	g := zoo.MustBuild("resnet-152", 32)
	if _, err := p.PredictIteration(g, gpu.V100, 4, ceer.Full); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PredictIteration(g, gpu.V100, 4, ceer.Full); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(g.Fold().Len())/float64(g.Len()), "unique-frac")
}

// BenchmarkPredictIterationUnfolded is the naive per-node reference for
// the bench above.
func BenchmarkPredictIterationUnfolded(b *testing.B) {
	p := servingPredictor(b)
	g := zoo.MustBuild("resnet-152", 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PredictIterationUnfolded(g, gpu.V100, 4, ceer.Full); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	servingCompiledOnce sync.Once
	servingGraphs       []*graph.Graph
	servingCore         *ceer.CompiledPredictor
	servingCompiledErr  error
)

// servingCompiled returns the shared compiled core over the whole zoo
// (built from the shared serving predictor) plus the zoo graphs it was
// compiled from — the compiled set is keyed by graph pointer identity.
func servingCompiled(b *testing.B) (*ceer.CompiledPredictor, []*graph.Graph) {
	b.Helper()
	p := servingPredictor(b)
	servingCompiledOnce.Do(func() {
		for _, name := range zoo.Names() {
			servingGraphs = append(servingGraphs, zoo.MustBuild(name, 32))
		}
		servingCore, servingCompiledErr = ceer.Compile(p, servingGraphs)
	})
	if servingCompiledErr != nil {
		b.Fatal(servingCompiledErr)
	}
	return servingCore, servingGraphs
}

// BenchmarkPredictIterationCompiled measures the compiled serving core
// on the same deepest-CNN prediction as the folded bench above: a pure
// gather-and-sum over the precompiled flat tables, no memo, no mutex,
// no allocation even on the first call. "table-kb" is the resident
// size of the whole zoo-wide table.
func BenchmarkPredictIterationCompiled(b *testing.B) {
	core, graphs := servingCompiled(b)
	var g *graph.Graph
	for _, cand := range graphs {
		if cand.Name == "resnet-152" {
			g = cand
		}
	}
	if g == nil {
		b.Fatal("resnet-152 missing from the compiled zoo")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PredictIteration(g, gpu.V100, 4, ceer.Full); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(core.Stats().TableBytes)/1024, "table-kb")
}

// BenchmarkCompileZoo measures the one-time build cost the compiled
// path front-loads: folding the 12-CNN zoo globally and evaluating
// every (device, class) and (graph, device, k) table cell.
// "build-evals" is the number of regression rows evaluated per compile.
func BenchmarkCompileZoo(b *testing.B) {
	p := servingPredictor(b)
	_, graphs := servingCompiled(b)
	b.ReportAllocs()
	b.ResetTimer()
	var core *ceer.CompiledPredictor
	for i := 0; i < b.N; i++ {
		var err error
		core, err = ceer.Compile(p, graphs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(core.Stats().BuildEvals), "build-evals")
}

// BenchmarkRecommendSweep serves the entire zoo through the compiled
// recommender — one RecommendInto table scan per CNN over all device×k
// candidates — and reports, against references measured in the same
// process: "speedup-vs-naive" (wall-clock vs a per-node unfolded
// sweep), "speedup-vs-folded" (wall-clock vs the warm folded
// per-predictor-memo sweep, the PR 3 serving path), "eval-reduction-x"
// (cold regression evaluations, naive / folded), and "compile-ms" (the
// one-time table build the compiled path amortizes). The steady state
// is allocation-free: every prediction is a gather over immutable flat
// tables into caller-owned Recommendations.
func BenchmarkRecommendSweep(b *testing.B) {
	pl := servingPipeline()
	p, _, err := pl.TrainOn(context.Background(), zoo.Build, zoo.TrainingSet())
	if err != nil {
		b.Fatal(err)
	}
	var graphs []*graph.Graph
	for _, name := range zoo.Names() {
		graphs = append(graphs, zoo.MustBuild(name, 32))
	}
	cands := cloud.Configs(4)
	foldedSweep := func() {
		for _, g := range graphs {
			if _, err := p.Recommend(g, dataset.ImageNet, cloud.OnDemand, cands, ceer.MinimizeCost); err != nil {
				b.Fatal(err)
			}
		}
	}

	// Naive reference: every candidate through the per-node path.
	base := p.ModelEvaluations()
	start := time.Now()
	for _, g := range graphs {
		for _, cfg := range cands {
			if _, err := p.PredictIterationUnfolded(g, cfg.GPU, cfg.K, ceer.Full); err != nil {
				b.Fatal(err)
			}
		}
	}
	naiveSec := time.Since(start).Seconds()
	naiveEvals := p.ModelEvaluations() - base

	// Folded reference: cold sweep pays the memo fill, then a warm
	// steady state (the PR 3 serving path).
	base = p.ModelEvaluations()
	foldedSweep()
	coldEvals := p.ModelEvaluations() - base
	if coldEvals == 0 {
		b.Fatal("cold folded sweep ran zero evaluations")
	}
	const foldedReps = 10
	start = time.Now()
	for i := 0; i < foldedReps; i++ {
		foldedSweep()
	}
	foldedSec := time.Since(start).Seconds() / foldedReps

	// Compile the zoo-wide tables (the cost the compiled path pays
	// once), then sweep through caller-owned Recommendations.
	start = time.Now()
	core, err := ceer.Compile(p, graphs)
	if err != nil {
		b.Fatal(err)
	}
	compileSec := time.Since(start).Seconds()
	recs := make([]ceer.Recommendation, len(graphs))
	sweep := func() {
		for gi, g := range graphs {
			if err := core.RecommendInto(&recs[gi], g, dataset.ImageNet, cloud.OnDemand, cands, ceer.MinimizeCost); err != nil {
				b.Fatal(err)
			}
		}
	}
	sweep() // warm-up: grows each Recommendation's candidate buffer once

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep()
	}
	b.StopTimer()
	b.ReportMetric(float64(naiveEvals)/float64(coldEvals), "eval-reduction-x")
	b.ReportMetric(compileSec*1e3, "compile-ms")
	if compiledSec := b.Elapsed().Seconds() / float64(b.N); compiledSec > 0 {
		b.ReportMetric(naiveSec/compiledSec, "speedup-vs-naive")
		b.ReportMetric(foldedSec/compiledSec, "speedup-vs-folded")
	}
}

func BenchmarkExtBatchSensitivity(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.ExtBatchResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.ExtBatch(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := r.Rows[0]
	for _, row := range r.Rows {
		if row.PerSampleMs < best.PerSampleMs {
			best = row
		}
	}
	b.ReportMetric(float64(best.Batch), "best-batch")
}

func BenchmarkExtMemoryMatrix(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.ExtMemoryResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.ExtMemory(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	infeasible := 0
	for _, row := range r.Rows {
		for _, fits := range row.FitsGPU {
			if !fits {
				infeasible++
			}
		}
	}
	b.ReportMetric(float64(infeasible), "infeasible-cells")
}

func BenchmarkExtSelectionAblation(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var r *experiments.ExtSelectionResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.ExtSelection(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MeanErr["auto"]*100, "auto-err-pct")
	b.ReportMetric(r.MeanErr["all-linear"]*100, "linear-err-pct")
	b.ReportMetric(float64(r.QuadCount["auto"]), "auto-quadratics")
}
