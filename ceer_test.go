package ceer_test

import (
	"bytes"
	"math"
	"testing"

	"ceer"
)

// trainedSystem caches one trained system for the package tests.
var trainedSystem *ceer.System

func system(t *testing.T) *ceer.System {
	t.Helper()
	if trainedSystem == nil {
		sys, err := ceer.Train(ceer.TrainOptions{Seed: 7, ProfileIterations: 50, CommIterations: 10})
		if err != nil {
			t.Fatal(err)
		}
		trainedSystem = sys
	}
	return trainedSystem
}

func TestPublicModelCatalog(t *testing.T) {
	if len(ceer.Models()) != 12 {
		t.Errorf("Models() = %d entries, want 12", len(ceer.Models()))
	}
	if len(ceer.TrainingModels()) != 8 || len(ceer.TestModels()) != 4 {
		t.Error("train/test split sizes wrong")
	}
	g, err := ceer.BuildModel("alexnet", 16)
	if err != nil {
		t.Fatal(err)
	}
	if g.BatchSize != 16 || g.Params < 50e6 {
		t.Errorf("alexnet graph metadata wrong: batch=%d params=%d", g.BatchSize, g.Params)
	}
	if _, err := ceer.BuildModel("nope", 16); err == nil {
		t.Error("unknown model should error")
	}
}

func TestPublicConfigHelpers(t *testing.T) {
	cfg, err := ceer.Config("P3", 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.GPU != ceer.V100 || cfg.K != 2 {
		t.Errorf("Config = %+v", cfg)
	}
	if _, err := ceer.Config("ZZ", 1); err == nil {
		t.Error("unknown family should error")
	}
	if _, err := ceer.Config("P3", 9); err == nil {
		t.Error("oversized config should error")
	}
	hourly, err := ceer.HourlyCost(cfg, ceer.OnDemand)
	if err != nil || !eqExact(hourly, 6.12) {
		t.Errorf("2xP3 hourly = %v, %v; want 6.12", hourly, err)
	}
	if name := ceer.InstanceName(cfg); name == "" {
		t.Error("InstanceName empty")
	}
	if got := len(ceer.AllConfigs(4)); got != 16 {
		t.Errorf("AllConfigs(4) = %d", got)
	}
}

func TestPublicEndToEnd(t *testing.T) {
	sys := system(t)
	g, err := ceer.BuildModel("inception-v3", 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := ceer.Config("G4", 1) // known-valid config; the error path has its own test
	pred, err := sys.PredictTraining(g, cfg, ceer.ImageNet, ceer.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := ceer.Observe(g, cfg, ceer.ImageNet, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(pred.TotalSeconds-obs.TotalSeconds) / obs.TotalSeconds
	if relErr > 0.15 {
		t.Errorf("prediction error %.1f%% too high", relErr*100)
	}
	if pred.CostUSD <= 0 || pred.Iterations != ceer.ImageNet.Samples/32 {
		t.Errorf("prediction fields wrong: %+v", pred)
	}

	rec, err := sys.Recommend(g, ceer.ImageNet, ceer.OnDemand, ceer.AllConfigs(4), ceer.MinimizeCost)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Cfg.GPU != ceer.T4 {
		t.Errorf("cost-optimal GPU = %s, want G4", rec.Best.Cfg)
	}
	if len(sys.HeavyOps()) != 20 {
		t.Errorf("HeavyOps = %d, want 20", len(sys.HeavyOps()))
	}
}

func TestPublicSaveLoad(t *testing.T) {
	sys := system(t)
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ceer.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := ceer.BuildModel("vgg-19", 32) // known zoo model; BuildModel errors only on unknown names
	cfg, _ := ceer.Config("P2", 1)        // known-valid config; the error path has its own test
	a, err := sys.PredictTraining(g, cfg, ceer.ImageNetSubset6400, ceer.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.PredictTraining(g, cfg, ceer.ImageNetSubset6400, ceer.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if !eqExact(a.TotalSeconds, b.TotalSeconds) {
		t.Error("reloaded system predicts differently")
	}
}

func TestPublicCustomGraph(t *testing.T) {
	sys := system(t)
	b := ceer.NewGraphBuilder("custom-net", 32)
	x := b.Input(64, 64, 3)
	x = b.ConvSq(x, 32, 3, 1, ceer.SamePadding)
	x = b.BatchNorm(x)
	x = b.ReLU(x)
	x = b.MaxPool(x, 2, 2, ceer.ValidPadding)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	b.SoftmaxLoss(x)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ds := ceer.NewDataset("tiny", 3200)
	cfg, _ := ceer.Config("G3", 1) // known-valid config; the error path has its own test
	pred, err := sys.PredictTraining(g, cfg, ds, ceer.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if pred.TotalSeconds <= 0 {
		t.Error("custom graph prediction non-positive")
	}
}

func TestPublicAblationVariant(t *testing.T) {
	sys := system(t)
	g, _ := ceer.BuildModel("alexnet", 32) // known zoo model; BuildModel errors only on unknown names
	cfg, _ := ceer.Config("P3", 1)         // known-valid config; the error path has its own test
	full, err := sys.PredictTrainingVariant(g, cfg, ceer.ImageNetSubset6400, ceer.OnDemand, ceer.Full)
	if err != nil {
		t.Fatal(err)
	}
	noComm, err := sys.PredictTrainingVariant(g, cfg, ceer.ImageNetSubset6400, ceer.OnDemand, ceer.NoComm)
	if err != nil {
		t.Fatal(err)
	}
	if noComm.TotalSeconds >= full.TotalSeconds {
		t.Error("no-comm variant must predict less time than full")
	}
}

func TestPublicBudgetConstraints(t *testing.T) {
	sys := system(t)
	g, _ := ceer.BuildModel("resnet-101", 32) // known zoo model; BuildModel errors only on unknown names
	rec, err := sys.Recommend(g, ceer.ImageNet, ceer.OnDemand, ceer.AllConfigs(4),
		ceer.MinimizeTime, ceer.MaxTotalBudget(10))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.CostUSD > 10 {
		t.Errorf("recommended config exceeds budget: $%.2f", rec.Best.CostUSD)
	}
	if rec.Best.Cfg.GPU != ceer.V100 {
		t.Errorf("best under $10 = %s, want a P3 config (paper Fig. 10)", rec.Best.Cfg)
	}
}

func TestPublicMemoryFeasibility(t *testing.T) {
	sys := system(t)
	g, err := ceer.BuildModel("vgg-19", 64)
	if err != nil {
		t.Fatal(err)
	}
	if gb := ceer.EstimateMemoryGB(g); gb < 8 || gb > 16 {
		t.Fatalf("vgg-19@64 memory = %.1f GB, expected 8-16", gb)
	}
	rec, err := sys.Recommend(g, ceer.ImageNetSubset6400, ceer.OnDemand,
		ceer.AllConfigs(4), ceer.MinimizeCost, ceer.FitsGPUMemory(g))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Cfg.GPU == ceer.M60 || rec.Best.Cfg.GPU == ceer.K80 {
		t.Errorf("memory-infeasible GPU recommended: %s", rec.Best.Cfg)
	}
}

func TestPublicDepthwiseUnseenWarning(t *testing.T) {
	sys := system(t)
	b := ceer.NewGraphBuilder("dwnet", 32)
	x := b.Input(56, 56, 8)
	x = b.ConvSq(x, 32, 3, 1, ceer.SamePadding)
	x = b.DepthwiseConv(x, 3, 1, ceer.SamePadding)
	x = b.ReLU(x)
	y := b.GlobalAvgPool(x)
	y = b.Squeeze(y)
	y = b.Dense(y, 10)
	b.SoftmaxLoss(y)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := ceer.Config("P3", 1) // known-valid config; the error path has its own test
	pred, err := sys.PredictTraining(g, cfg, ceer.ImageNetSubset6400, ceer.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Iter.UnseenHeavy) == 0 {
		t.Error("depthwise conv should be flagged as an unseen heavy op")
	}
}

// eqExact reports a == b. Exact float equality is the contract under
// test here: catalog prices are exact spec data and a reloaded
// system must reproduce predictions bit-for-bit.
func eqExact(a, b float64) bool { return a == b }
