module ceer

go 1.22
