package main

import (
	"context"
	"flag"
	"os"
	"testing"

	"ceer"
)

func TestParseConfig(t *testing.T) {
	cases := []struct {
		in     string
		family string
		k      int
		ok     bool
	}{
		{"2xP3", "P3", 2, true},
		{"P3", "P3", 1, true},
		{"4xg4", "G4", 4, true}, // case-insensitive family
		{"8xP2", "P2", 8, true},
		{"1xG3", "G3", 1, true},
		{"5xP3", "", 0, false}, // beyond p3.8xlarge
		{"zxP3", "", 0, false}, // bad count
		{"2xZZ", "", 0, false}, // bad family
		{"", "", 0, false},
	}
	for _, c := range cases {
		cfg, err := parseConfig(c.in)
		if c.ok {
			if err != nil {
				t.Errorf("parseConfig(%q) failed: %v", c.in, err)
				continue
			}
			if cfg.GPU.Family() != c.family || cfg.K != c.k {
				t.Errorf("parseConfig(%q) = %s, want %dx%s", c.in, cfg, c.k, c.family)
			}
		} else if err == nil {
			t.Errorf("parseConfig(%q) should fail", c.in)
		}
	}
}

func TestLoadOrTrainMissingFile(t *testing.T) {
	res := addResilienceFlags(flag.NewFlagSet("test", flag.ContinueOnError))
	if _, err := loadOrTrain(context.Background(), "/nonexistent/models.json", res, 1, 1); err == nil {
		t.Error("missing models file should error")
	}
}

// quietStdout redirects os.Stdout to /dev/null for the duration of the
// test, keeping table and JSON output out of the test logs.
func quietStdout(t *testing.T) {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = orig
		_ = devnull.Close() // test cleanup; the close error is irrelevant
	})
}

func TestCmdZoo(t *testing.T) {
	quietStdout(t)
	if err := cmdZoo(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderExplanationSmoke(t *testing.T) {
	quietStdout(t)
	sys, err := ceer.Train(ceer.TrainOptions{Seed: 4, ProfileIterations: 20, CommIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ceer.BuildModel("alexnet", 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := ceer.Config("P3", 1) // known-valid config; the error path has its own test
	if err := renderExplanation(sys, g, cfg); err != nil {
		t.Fatal(err)
	}
}
