package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ceer"
	"ceer/internal/devices/a10g"
	"ceer/internal/serve"
)

// cmdServe runs the prediction daemon (internal/serve): the trained
// system's predict/recommend/explain paths as JSON endpoints over the
// compiled serving tables, with admission control, structured metrics,
// and SIGHUP / POST /admin/reload model hot-swap.
func cmdServe(args []string) (err error) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelsPath := fs.String("models", "", "trained models file; enables hot reload (SIGHUP or POST /admin/reload)")
	addr := fs.String("addr", "127.0.0.1:7077", "listen address (port 0 picks an ephemeral port)")
	batch := fs.Int64("batch", 32, "per-GPU batch size the serving tables are compiled at")
	maxK := fs.Int("maxk", 4, "max GPUs per family in candidate sweeps")
	rate := fs.Float64("rate", 0, "admitted requests/second over /v1/* (token bucket; 0 = unlimited)")
	burst := fs.Int("burst", 0, "token-bucket burst depth in requests (0 = ~1s of rate)")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrent /v1/* requests; excess sheds 429 (0 = unlimited)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request compute budget; over-budget answers 504 (0 = none)")
	warmup := fs.Bool("warmup", false, "pre-compile tables, pre-fault the arena, and warm every hot endpoint before binding the listener")
	seed := fs.Uint64("seed", 1, "training seed when no -models file is given")
	workers := fs.Int("workers", 0, "parallel measurement workers when training in memory; 0 = GOMAXPROCS")
	extra := fs.Bool("extra-devices", false, "also register the built-in non-paper devices")
	res := addResilienceFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *extra {
		a10g.Register()
	}
	ctx, cancel := res.context()
	defer cancel()
	sys, err := loadOrTrain(ctx, *modelsPath, res, *seed, *workers)
	if err != nil {
		return err
	}
	srv, err := serve.New(sys, serve.Options{
		Batch:          *batch,
		MaxK:           *maxK,
		ModelPath:      *modelsPath,
		RatePerSec:     *rate,
		Burst:          *burst,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
		Warmup:         *warmup,
	})
	if err != nil {
		return err
	}

	// Bind after warmup so the first accepted request is already warm.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("ceer serve: listening on %s (batch %d, maxk %d)\n", ln.Addr(), *batch, *maxK)

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		for sig := range sigs {
			if sig == syscall.SIGHUP {
				gen, rerr := srv.Reload()
				if rerr != nil {
					fmt.Fprintln(os.Stderr, "ceer serve: reload failed:", rerr)
					continue
				}
				fmt.Printf("ceer serve: reloaded %s (generation %d)\n", *modelsPath, gen)
				continue
			}
			fmt.Printf("ceer serve: %s received, draining...\n", sig)
			shCtx, shCancel := context.WithTimeout(context.Background(), 15*time.Second)
			if serr := srv.Shutdown(shCtx); serr != nil {
				fmt.Fprintln(os.Stderr, "ceer serve: shutdown:", serr)
			}
			shCancel()
			return
		}
	}()

	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("ceer serve: drained, bye")
	return nil
}

// servePredictJSON is `ceer predict -json`: it renders the prediction
// through the daemon's own handler and encoder (serve.Server.DoLocal),
// so the CLI's JSON output is byte-identical to the daemon's
// /v1/predict response for the same query — the equivalence the serve
// smoke test in scripts/serve-smoke.sh pins with cmp.
func servePredictJSON(sys *ceer.System, model, configStr string, samples, batch int64, market bool) error {
	srv, err := serve.New(sys, serve.Options{Batch: batch})
	if err != nil {
		return err
	}
	q := fmt.Sprintf("model=%s&batch=%d&samples=%d", model, batch, samples)
	if market {
		q += "&pricing=market"
	}
	if configStr != "" {
		q += "&config=" + configStr
	}
	status, body := srv.DoLocal(http.MethodGet, "/v1/predict", q)
	if status != http.StatusOK {
		return fmt.Errorf("predict: %s", string(body))
	}
	_, err = os.Stdout.Write(body)
	return err
}
