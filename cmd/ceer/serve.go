package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ceer"
	"ceer/internal/devices/a10g"
	"ceer/internal/serve"
)

// cmdServe runs the prediction daemon (internal/serve): the trained
// system's predict/recommend/explain paths as JSON endpoints over the
// compiled serving tables, with admission control, structured metrics,
// and SIGHUP / POST /admin/reload model hot-swap.
func cmdServe(args []string) (err error) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelsPath := fs.String("models", "", "trained models file; enables hot reload (SIGHUP or POST /admin/reload)")
	addr := fs.String("addr", "127.0.0.1:7077", "listen address (port 0 picks an ephemeral port)")
	batch := fs.Int64("batch", 32, "per-GPU batch size the serving tables are compiled at")
	maxK := fs.Int("maxk", 4, "max GPUs per family in candidate sweeps")
	rate := fs.Float64("rate", 0, "admitted requests/second over /v1/* (token bucket; 0 = unlimited)")
	burst := fs.Int("burst", 0, "token-bucket burst depth in requests (0 = ~1s of rate)")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrent /v1/* requests; excess sheds 429 (0 = unlimited)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request compute budget; over-budget answers 504 (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "max time to wait for in-flight requests on shutdown; stragglers are logged and the exit is nonzero")
	warmup := fs.Bool("warmup", false, "pre-compile tables, pre-fault the arena, and warm every hot endpoint before binding the listener")
	observe := fs.Bool("observe", false, "enable in-daemon calibration via POST /v1/observe")
	journalPath := fs.String("observe-journal", "", "write-ahead observation journal, replayed on startup (implies -observe)")
	fsyncPol := fs.String("fsync", "always", "journal durability: always (fsync per observation) or never")
	calibOut := fs.String("calib-out", "", "write the calibrated predictor here on clean drain (implies -observe)")
	obsTail := fs.String("obs-tail", "", "observation log to follow, feeding appended lines into calibration (implies -observe)")
	reloadTol := fs.Float64("reload-tolerance", 0, "max relative golden-probe divergence an accepted model swap may show (0 = 0.5)")
	panicThreshold := fs.Int("panic-threshold", 0, "recovered handler panics within -panic-window that degrade the daemon (0 = 3)")
	panicWindow := fs.Duration("panic-window", 0, "panic breaker sliding window (0 = 10s)")
	panicRecovery := fs.Duration("panic-recovery", 0, "panic-free time before a degraded daemon recovers (0 = 30s)")
	seed := fs.Uint64("seed", 1, "training seed when no -models file is given")
	workers := fs.Int("workers", 0, "parallel measurement workers when training in memory; 0 = GOMAXPROCS")
	extra := fs.Bool("extra-devices", false, "also register the built-in non-paper devices")
	res := addResilienceFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *extra {
		a10g.Register()
	}
	ctx, cancel := res.context()
	defer cancel()
	sys, err := loadOrTrain(ctx, *modelsPath, res, *seed, *workers)
	if err != nil {
		return err
	}
	opts := serve.Options{
		Batch:           *batch,
		MaxK:            *maxK,
		ModelPath:       *modelsPath,
		RatePerSec:      *rate,
		Burst:           *burst,
		MaxInFlight:     *maxInFlight,
		RequestTimeout:  *reqTimeout,
		Warmup:          *warmup,
		ReloadTolerance: *reloadTol,
		PanicThreshold:  *panicThreshold,
		PanicWindow:     *panicWindow,
		RecoveryWindow:  *panicRecovery,
	}
	if *observe || *journalPath != "" || *calibOut != "" || *obsTail != "" {
		opts.Calibration = &serve.CalibrationOptions{
			JournalPath: *journalPath,
			Fsync:       *fsyncPol,
		}
	}
	srv, err := serve.New(sys, opts)
	if err != nil {
		return err
	}
	if *journalPath != "" {
		obs, torn := srv.JournalReplayed()
		if torn > 0 {
			fmt.Printf("ceer serve: journal %s: replayed %d observations (torn final line %d trimmed)\n", *journalPath, obs, torn)
		} else {
			fmt.Printf("ceer serve: journal %s: replayed %d observations\n", *journalPath, obs)
		}
	}

	// Bind after warmup so the first accepted request is already warm.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("ceer serve: listening on %s (batch %d, maxk %d)\n", ln.Addr(), *batch, *maxK)

	if *obsTail != "" {
		go func() {
			if terr := srv.TailObsLog(ctx, *obsTail, 0); terr != nil {
				fmt.Fprintln(os.Stderr, "ceer serve: obs tail:", terr)
			}
		}()
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	shutdownErr := make(chan error, 1)
	go func() {
		for sig := range sigs {
			if sig == syscall.SIGHUP {
				gen, rerr := srv.Reload()
				if rerr != nil {
					fmt.Fprintln(os.Stderr, "ceer serve: reload rejected, keeping current generation:", rerr)
					continue
				}
				fmt.Printf("ceer serve: reloaded %s (generation %d)\n", *modelsPath, gen)
				continue
			}
			fmt.Printf("ceer serve: %s received, draining (timeout %s)...\n", sig, *drainTimeout)
			shCtx, shCancel := context.WithTimeout(context.Background(), *drainTimeout)
			shutdownErr <- srv.Shutdown(shCtx)
			shCancel()
			return
		}
	}()

	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Serve only returns ErrServerClosed after Shutdown (or its forced
	// Close) ran, so the channel is guaranteed a value.
	if serr := <-shutdownErr; serr != nil {
		var de *serve.DrainError
		if errors.As(serr, &de) {
			return fmt.Errorf("ceer serve: drain timeout: %d requests still in flight after %s", de.InFlight, *drainTimeout)
		}
		return fmt.Errorf("ceer serve: shutdown: %w", serr)
	}
	if *calibOut != "" {
		if werr := writeCalibrated(srv, *calibOut); werr != nil {
			return werr
		}
		fmt.Printf("ceer serve: calibrated predictor written to %s\n", *calibOut)
	}
	fmt.Println("ceer serve: drained, bye")
	return nil
}

// writeCalibrated persists the daemon's calibrated predictor on a clean
// drain — the bytes the chaos suite compares across a kill -9.
func writeCalibrated(srv *serve.Server, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := srv.SaveCalibrated(f); err != nil {
		_ = f.Close() // save already failed; surface that error
		return err
	}
	return f.Close()
}

// servePredictJSON is `ceer predict -json`: it renders the prediction
// through the daemon's own handler and encoder (serve.Server.DoLocal),
// so the CLI's JSON output is byte-identical to the daemon's
// /v1/predict response for the same query — the equivalence the serve
// smoke test in scripts/serve-smoke.sh pins with cmp.
func servePredictJSON(sys *ceer.System, model, configStr string, samples, batch int64, market bool) error {
	srv, err := serve.New(sys, serve.Options{Batch: batch})
	if err != nil {
		return err
	}
	q := fmt.Sprintf("model=%s&batch=%d&samples=%d", model, batch, samples)
	if market {
		q += "&pricing=market"
	}
	if configStr != "" {
		q += "&config=" + configStr
	}
	status, body := srv.DoLocal(http.MethodGet, "/v1/predict", q)
	if status != http.StatusOK {
		return fmt.Errorf("predict: %s", string(body))
	}
	_, err = os.Stdout.Write(body)
	return err
}
