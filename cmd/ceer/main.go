// Command ceer trains the Ceer predictor and answers training-time,
// cost, and instance-recommendation queries for the built-in CNN zoo.
//
// Usage:
//
//	ceer train -out models.json [-seed N] [-iters N] [-workers N]
//	ceer predict -model inception-v3 [-models models.json] [-config 2xP3]
//	    [-samples N] [-batch N] [-market]
//	ceer recommend -model inception-v3 [-models models.json]
//	    [-objective cost|time] [-hourly-budget X] [-total-budget X]
//	    [-market] [-samples N] [-batch N]
//	ceer calibrate -obs observations.jsonl [-models models.json]
//	    [-out recalibrated.json] [-window N] [-mape X] [-sign-run N]
//	    [-refit-every N]
//	ceer zoo
//	ceer devices
//
// calibrate replays a JSONL observation log (written by `ceer train
// -obs-log` or a serving process) through the observe→predict→calibrate
// loop: each observation updates the matching op model's sufficient
// statistics, drifted models are refit in place, and the run ends with
// a deterministic drift/refit report (optionally writing the
// recalibrated models with -out).
//
// Without -models, predict/recommend train a fresh predictor in memory
// (a few seconds). Every subcommand accepts -extra-devices to also
// register the built-in non-paper devices (currently the A10G / G5);
// without it the tool sees exactly the paper's four-GPU catalog.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"ceer"
	"ceer/internal/devices/a10g"
	"ceer/internal/gpu"
	"ceer/internal/textutil"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "recommend":
		err = cmdRecommend(os.Args[2:])
	case "calibrate":
		err = cmdCalibrate(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "zoo":
		err = cmdZoo()
	case "devices", "-list-devices", "--list-devices":
		err = cmdDevices(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "ceer: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceer:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ceer train -out models.json [-seed N] [-iters N] [-workers N] [-obs-log FILE]
             [-timeout D] [-retries N] [-fault-spec FILE] [-checkpoint FILE]
  ceer predict -model NAME [-models FILE] [-config 2xP3] [-samples N] [-batch N]
               [-market] [-explain] [-explain-nodes N] [-workers N]
               [-timeout D] [-retries N] [-fault-spec FILE]
  ceer recommend -model NAME [-models FILE] [-objective cost|time]
                 [-hourly-budget X] [-total-budget X] [-memory] [-market]
                 [-samples N] [-batch N] [-workers N]
                 [-timeout D] [-retries N] [-fault-spec FILE]
  ceer calibrate -obs FILE [-models FILE] [-out FILE] [-window N] [-mape X]
                 [-sign-run N] [-refit-every N] [-min-refit-obs N]
                 [-fault-spec FILE] [-seed N] [-workers N]
  ceer serve [-models FILE] [-addr HOST:PORT] [-batch N] [-maxk N] [-rate X]
             [-burst N] [-max-inflight N] [-request-timeout D] [-warmup]
  ceer zoo
  ceer devices [-extra-devices]     (also: ceer -list-devices)

calibrate replays a JSONL observation log (ceer train -obs-log) against
the models: drifted op models are detected over a residual window and
refit from accumulated sufficient statistics; the drift/refit report is
printed and -out writes the recalibrated models.

-workers bounds the measurement campaign's parallelism (0 = GOMAXPROCS,
1 = serial); any value trains an identical predictor.
-timeout bounds the whole run (Go duration, e.g. 90s; 0 = none).
-retries is the per-cell retry budget for transient campaign faults;
-fault-spec injects deterministic faults from a JSON spec (chaos
testing); -checkpoint (train) journals campaign progress so a preempted
run resumes without re-measuring completed cells.
-extra-devices (train/predict/recommend/devices) registers the built-in
non-paper GPU devices and their instances before running.
train/predict/recommend accept -cpuprofile FILE and -memprofile FILE to
write pprof profiles of the run.`)
}

// profileFlags holds the -cpuprofile/-memprofile flag values shared by
// the train/predict/recommend subcommands.
type profileFlags struct {
	cpu, mem *string
}

// addProfileFlags registers the profiling flags on a subcommand.
func addProfileFlags(fs *flag.FlagSet) *profileFlags {
	return &profileFlags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// start begins CPU profiling if requested and returns a stop function
// that finishes the CPU profile and writes the heap profile. Call stop
// exactly once after the command's work; its error must be propagated.
func (p *profileFlags) start() (stop func() error, err error) {
	var cpuFile *os.File
	if *p.cpu != "" {
		cpuFile, err = os.Create(*p.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close() // best-effort cleanup; the profile-start error matters
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if *p.mem != "" {
			f, err := os.Create(*p.mem)
			if err != nil {
				return err
			}
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				_ = f.Close() // best-effort; the profile-write error matters
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// deferStop runs the profiling stop function when the command returns,
// surfacing its error unless the command already failed.
func deferStop(stop func() error, err *error) {
	if serr := stop(); serr != nil && *err == nil {
		*err = serr
	}
}

// resilienceFlags holds the -timeout/-retries/-fault-spec flags shared
// by the train/predict/recommend subcommands.
type resilienceFlags struct {
	timeout   *time.Duration
	retries   *int
	faultSpec *string
}

// addResilienceFlags registers the resilience flags on a subcommand.
func addResilienceFlags(fs *flag.FlagSet) *resilienceFlags {
	return &resilienceFlags{
		timeout:   fs.Duration("timeout", 0, "overall deadline for the run (0 = none)"),
		retries:   fs.Int("retries", 0, "per-cell retry budget for transient campaign faults"),
		faultSpec: fs.String("fault-spec", "", "JSON fault-injection spec file (chaos testing)"),
	}
}

// context derives the run's root context from -timeout.
func (r *resilienceFlags) context() (context.Context, context.CancelFunc) {
	if *r.timeout > 0 {
		return context.WithTimeout(context.Background(), *r.timeout)
	}
	return context.WithCancel(context.Background())
}

// apply folds the resilience flags into the training options.
func (r *resilienceFlags) apply(opts ceer.TrainOptions) (ceer.TrainOptions, error) {
	opts.Retries = *r.retries
	if *r.faultSpec != "" {
		spec, err := ceer.LoadFaultSpec(*r.faultSpec)
		if err != nil {
			return opts, err
		}
		opts.Faults = spec
	}
	return opts, nil
}

// warnCoverage reports incomplete campaign coverage on stderr; a
// fully-covered campaign prints nothing.
func warnCoverage(sys *ceer.System) {
	cov := sys.Coverage()
	if cov.Complete() {
		return
	}
	fmt.Fprintf(os.Stderr, "ceer: warning: campaign incomplete (%s)\n", cov)
	for _, m := range sys.DegradedDevices() {
		fmt.Fprintf(os.Stderr, "ceer: warning: device %s trained on partial coverage\n", m)
	}
}

// loadOrTrain returns a system from -models, or trains one in memory.
func loadOrTrain(ctx context.Context, path string, res *resilienceFlags, seed uint64, workers int) (*ceer.System, error) {
	if path != "" {
		return ceer.LoadFile(path)
	}
	fmt.Fprintln(os.Stderr, "ceer: no -models file given; training a fresh predictor...")
	opts, err := res.apply(ceer.TrainOptions{Seed: seed, Workers: workers})
	if err != nil {
		return nil, err
	}
	sys, err := ceer.TrainContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	warnCoverage(sys)
	return sys, nil
}

func cmdTrain(args []string) (err error) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("out", "models.json", "output path for the trained models")
	seed := fs.Uint64("seed", 1, "measurement noise seed")
	iters := fs.Int("iters", 0, "profiling iterations per (CNN, GPU); 0 = default")
	workers := fs.Int("workers", 0, "parallel measurement workers; 0 = GOMAXPROCS, 1 = serial")
	extra := fs.Bool("extra-devices", false, "also register the built-in non-paper devices")
	obsLog := fs.String("obs-log", "", "also write the campaign's observation stream (JSONL) to this file")
	res := addResilienceFlags(fs)
	checkpoint := fs.String("checkpoint", "", "journal campaign progress to this file and resume from it")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stop, err := prof.start()
	if err != nil {
		return err
	}
	defer deferStop(stop, &err)
	if *extra {
		a10g.Register()
	}
	ctx, cancel := res.context()
	defer cancel()
	opts, err := res.apply(ceer.TrainOptions{Seed: *seed, ProfileIterations: *iters, Workers: *workers, Checkpoint: *checkpoint})
	if err != nil {
		return err
	}
	sys, err := ceer.TrainContext(ctx, opts)
	if err != nil {
		return err
	}
	warnCoverage(sys)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := sys.Save(f); err != nil {
		_ = f.Close() // best-effort; the save error is what matters
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if *obsLog != "" {
		lf, err := os.Create(*obsLog)
		if err != nil {
			return err
		}
		if err := sys.WriteObsLog(lf); err != nil {
			_ = lf.Close() // best-effort; the write error is what matters
			return err
		}
		if err := lf.Close(); err != nil {
			return err
		}
		fmt.Printf("observation log written to %s\n", *obsLog)
	}
	fmt.Printf("trained on %s; %d heavy op types; models written to %s\n",
		strings.Join(ceer.TrainingModels(), ", "), len(sys.HeavyOps()), *out)
	return nil
}

// cmdCalibrate replays a JSONL observation log through the
// observe→predict→calibrate loop and prints the drift/refit report.
func cmdCalibrate(args []string) (err error) {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	obsPath := fs.String("obs", "", "JSONL observation log to replay (required)")
	modelsPath := fs.String("models", "", "trained models file (from `ceer train`)")
	out := fs.String("out", "", "write the recalibrated models to this file")
	window := fs.Int("window", 0, "drift residual window size (0 = default)")
	mape := fs.Float64("mape", 0, "windowed MAPE drift threshold, fraction (0 = default)")
	signRun := fs.Int("sign-run", 0, "same-sign residual run drift threshold (0 = default)")
	refitEvery := fs.Int("refit-every", 0, "also refit every N applied observations per cell (0 = drift-triggered only)")
	minRefitObs := fs.Int("min-refit-obs", 0, "minimum accumulated observations before a refit (raised to the parameter count)")
	seed := fs.Uint64("seed", 1, "training seed when no -models file is given")
	workers := fs.Int("workers", 0, "parallel measurement workers when training in memory; 0 = GOMAXPROCS")
	extra := fs.Bool("extra-devices", false, "also register the built-in non-paper devices")
	res := addResilienceFlags(fs)
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stop, err := prof.start()
	if err != nil {
		return err
	}
	defer deferStop(stop, &err)
	if *extra {
		a10g.Register()
	}
	if *obsPath == "" {
		return fmt.Errorf("calibrate: -obs is required")
	}
	ctx, cancel := res.context()
	defer cancel()
	sys, err := loadOrTrain(ctx, *modelsPath, res, *seed, *workers)
	if err != nil {
		return err
	}

	pol := ceer.DefaultCalibrationPolicy()
	if *window > 0 {
		pol.Drift.Window = *window
	}
	if *mape > 0 {
		pol.Drift.MAPEThreshold = *mape
	}
	if *signRun > 0 {
		pol.Drift.SignRun = *signRun
	}
	pol.RefitEvery = *refitEvery
	pol.MinRefitObs = *minRefitObs
	cal, err := sys.NewCalibrator(pol)
	if err != nil {
		return err
	}

	// -fault-spec here injects into the replay itself (stage
	// "calibrate"): transient faults drop observations, a preemption
	// aborts the replay.
	var inj *ceer.FaultInjector
	if *res.faultSpec != "" {
		spec, err := ceer.LoadFaultSpec(*res.faultSpec)
		if err != nil {
			return err
		}
		if inj, err = ceer.NewFaultInjector(spec); err != nil {
			return err
		}
	}
	obsFile, err := os.Open(*obsPath)
	if err != nil {
		return err
	}
	//lint:ignore errdrop read-side close; there are no buffered writes to lose
	defer obsFile.Close()
	if err := cal.Replay(obsFile, inj); err != nil {
		return err
	}
	if err := cal.Report().Render(os.Stdout); err != nil {
		return err
	}
	if *out != "" {
		sys.AdoptCalibrated(cal)
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := sys.Save(f); err != nil {
			_ = f.Close() // best-effort; the save error is what matters
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("recalibrated models written to %s\n", *out)
	}
	return nil
}

// parseConfig parses "2xP3" or "P3" (implying 1 GPU).
func parseConfig(s string) (ceer.InstanceConfig, error) {
	k := 1
	fam := s
	if i := strings.IndexByte(s, 'x'); i > 0 {
		n, err := strconv.Atoi(s[:i])
		if err != nil {
			return ceer.InstanceConfig{}, fmt.Errorf("bad config %q", s)
		}
		k, fam = n, s[i+1:]
	}
	return ceer.Config(strings.ToUpper(fam), k)
}

func cmdPredict(args []string) (err error) {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	model := fs.String("model", "", "CNN name (see `ceer zoo`)")
	modelsPath := fs.String("models", "", "trained models file (from `ceer train`)")
	configStr := fs.String("config", "", "one configuration like 2xP3; empty = all")
	samples := fs.Int64("samples", ceer.ImageNet.Samples, "dataset size in samples")
	batch := fs.Int64("batch", 32, "per-GPU batch size")
	market := fs.Bool("market", false, "use market-ratio prices instead of On-Demand")
	jsonOut := fs.Bool("json", false, "emit the serving daemon's /v1/predict JSON document instead of the table")
	seed := fs.Uint64("seed", 1, "training seed when no -models file is given")
	workers := fs.Int("workers", 0, "parallel measurement workers when training in memory; 0 = GOMAXPROCS")
	explain := fs.Bool("explain", false, "attribute the prediction to operation types")
	explainNodes := fs.Int("explain-nodes", 0, "print the top N node-level contributions per device")
	extra := fs.Bool("extra-devices", false, "also register the built-in non-paper devices")
	res := addResilienceFlags(fs)
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stop, err := prof.start()
	if err != nil {
		return err
	}
	defer deferStop(stop, &err)
	if *extra {
		a10g.Register()
	}
	if *model == "" {
		return fmt.Errorf("predict: -model is required")
	}
	ctx, cancel := res.context()
	defer cancel()
	sys, err := loadOrTrain(ctx, *modelsPath, res, *seed, *workers)
	if err != nil {
		return err
	}
	if *jsonOut {
		return servePredictJSON(sys, *model, *configStr, *samples, *batch, *market)
	}
	g, err := ceer.BuildModelCached(*model, *batch)
	if err != nil {
		return err
	}
	ds := ceer.NewDataset("custom", *samples)
	pricing := ceer.OnDemand
	if *market {
		pricing = ceer.MarketRatio
	}
	var cfgs []ceer.InstanceConfig
	if *configStr != "" {
		cfg, err := parseConfig(*configStr)
		if err != nil {
			return err
		}
		cfgs = []ceer.InstanceConfig{cfg}
	} else {
		cfgs = ceer.AllConfigs(4)
	}
	// Compile the zoo-wide serving tables once up front (the persist
	// warm-up: a system loaded from -models evaluates all its models
	// here, then every query below is a table gather).
	comp, err := sys.Compiled(*batch)
	if err != nil {
		return err
	}
	tbl := &textutil.Table{
		Title:  fmt.Sprintf("Predicted training of %s (%d samples, batch %d, %s prices)", *model, *samples, *batch, pricing),
		Header: []string{"config", "instance", "$/hr", "iter (ms)", "total (h)", "cost"},
	}
	for _, cfg := range cfgs {
		pred, err := comp.PredictTraining(g, cfg, ds, pricing)
		if errors.Is(err, ceer.ErrNotCompiled) {
			// Outside the compiled set (e.g. a device registered after
			// compilation): fall back to the folded path.
			pred, err = sys.PredictTraining(g, cfg, ds, pricing)
		}
		if err != nil {
			return err
		}
		tbl.AddRow(cfg.String(), ceer.InstanceName(cfg),
			fmt.Sprintf("%.3f", pred.HourlyUSD),
			textutil.Ms(pred.Iter.PerIterSeconds),
			textutil.Hours(pred.TotalSeconds),
			textutil.USD(pred.CostUSD))
		if len(pred.Iter.UnseenHeavy) > 0 {
			tbl.AddNote("%s: unseen heavy ops %v — prediction degraded; retrain Ceer", cfg, pred.Iter.UnseenHeavy)
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	if *explain {
		for _, cfg := range cfgs {
			if err := renderExplanation(sys, g, cfg); err != nil {
				return err
			}
		}
	}
	if *explainNodes > 0 {
		seen := map[gpu.ID]bool{}
		for _, cfg := range cfgs {
			if seen[cfg.GPU] {
				continue
			}
			seen[cfg.GPU] = true
			if err := renderNodeExplanation(sys, g, cfg.GPU, *explainNodes); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderNodeExplanation prints the top node-level contributions of one
// device's predicted iteration (compute only; communication has no node
// to attach to).
func renderNodeExplanation(sys *ceer.System, g *ceer.Graph, m gpu.ID, top int) error {
	nodes := sys.Predictor().ExplainNodes(g, m)
	tbl := &textutil.Table{
		Title:  fmt.Sprintf("Per-node attribution: %s on %s (top %d of %d)", g.Name, m, top, len(nodes)),
		Header: []string{"node", "operation", "class", "phase", "ms/iter"},
	}
	for i, n := range nodes {
		if i >= top {
			break
		}
		tbl.AddRow(n.Name, string(n.OpType), n.Class.String(), n.Phase.String(),
			textutil.Ms(n.Seconds))
	}
	tbl.AddNote("per-node rows exclude communication; see -explain for the full split")
	return tbl.Render(os.Stdout)
}

// renderExplanation prints the per-op-type attribution of one
// configuration's predicted iteration.
func renderExplanation(sys *ceer.System, g *ceer.Graph, cfg ceer.InstanceConfig) error {
	ex, err := sys.Predictor().ExplainIteration(g, cfg.GPU, cfg.K)
	if err != nil {
		return err
	}
	tbl := &textutil.Table{
		Title:  fmt.Sprintf("Attribution: %s on %s", g.Name, cfg),
		Header: []string{"operation", "class", "instances", "ms/iter", "share"},
	}
	for i, c := range ex.Contributions {
		if i >= 12 {
			break
		}
		tbl.AddRow(string(c.OpType), c.Class.String(), fmt.Sprintf("%d", c.Count),
			textutil.Ms(c.Seconds), textutil.Pct(c.Share))
	}
	tbl.AddNote("communication overhead: %s ms (%s of the iteration)",
		textutil.Ms(ex.Iter.CommSeconds), textutil.Pct(ex.CommShare))
	return tbl.Render(os.Stdout)
}

func cmdRecommend(args []string) (err error) {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	model := fs.String("model", "", "CNN name (see `ceer zoo`)")
	modelsPath := fs.String("models", "", "trained models file (from `ceer train`)")
	objective := fs.String("objective", "cost", "cost or time")
	hourly := fs.Float64("hourly-budget", 0, "max hourly rental price (0 = unconstrained)")
	total := fs.Float64("total-budget", 0, "max total training cost (0 = unconstrained)")
	samples := fs.Int64("samples", ceer.ImageNet.Samples, "dataset size in samples")
	batch := fs.Int64("batch", 32, "per-GPU batch size")
	market := fs.Bool("market", false, "use market-ratio prices")
	seed := fs.Uint64("seed", 1, "training seed when no -models file is given")
	workers := fs.Int("workers", 0, "parallel measurement workers when training in memory; 0 = GOMAXPROCS")
	memory := fs.Bool("memory", false, "exclude configurations whose GPU memory cannot hold the training state")
	extra := fs.Bool("extra-devices", false, "also register the built-in non-paper devices")
	res := addResilienceFlags(fs)
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stop, err := prof.start()
	if err != nil {
		return err
	}
	defer deferStop(stop, &err)
	if *extra {
		a10g.Register()
	}
	if *model == "" {
		return fmt.Errorf("recommend: -model is required")
	}
	ctx, cancel := res.context()
	defer cancel()
	sys, err := loadOrTrain(ctx, *modelsPath, res, *seed, *workers)
	if err != nil {
		return err
	}
	g, err := ceer.BuildModelCached(*model, *batch)
	if err != nil {
		return err
	}
	ds := ceer.NewDataset("custom", *samples)
	pricing := ceer.OnDemand
	if *market {
		pricing = ceer.MarketRatio
	}
	var obj ceer.Objective
	switch *objective {
	case "cost":
		obj = ceer.MinimizeCost
	case "time":
		obj = ceer.MinimizeTime
	default:
		return fmt.Errorf("recommend: unknown objective %q", *objective)
	}
	var constraints []ceer.Constraint
	if *hourly > 0 {
		constraints = append(constraints, ceer.MaxHourlyBudget(*hourly, 0))
	}
	if *total > 0 {
		constraints = append(constraints, ceer.MaxTotalBudget(*total))
	}
	if *memory {
		constraints = append(constraints, ceer.FitsGPUMemory(g))
	}
	// Sweep through the compiled zoo-wide tables (one up-front compile,
	// then the sweep is a pure table scan), falling back to the folded
	// path for anything outside the compiled set.
	comp, err := sys.Compiled(*batch)
	if err != nil {
		return err
	}
	rec, err := comp.Recommend(g, ds, pricing, ceer.AllConfigs(4), obj, constraints...)
	if errors.Is(err, ceer.ErrNotCompiled) {
		rec, err = sys.Recommend(g, ds, pricing, ceer.AllConfigs(4), obj, constraints...)
	}
	if err != nil {
		return err
	}
	tbl := &textutil.Table{
		Title:  fmt.Sprintf("Recommendation for %s (minimize %s)", *model, *objective),
		Header: []string{"config", "instance", "$/hr", "total (h)", "cost", "feasible"},
	}
	degraded := map[string]string{}
	for _, c := range rec.Candidates {
		marker := ""
		if c.Cfg == rec.Best.Cfg {
			marker = " *"
		}
		if c.Degraded != "" {
			marker += " †"
			degraded[string(c.Cfg.GPU)] = c.Degraded
		}
		tbl.AddRow(c.Cfg.String()+marker, ceer.InstanceName(c.Cfg),
			fmt.Sprintf("%.3f", c.HourlyUSD), textutil.Hours(c.TotalSeconds),
			textutil.USD(c.CostUSD), fmt.Sprintf("%v", c.Feasible))
	}
	tbl.AddNote("recommended: %s (%s) at %s, %s",
		rec.Best.Cfg, ceer.InstanceName(rec.Best.Cfg),
		textutil.Hours(rec.Best.TotalSeconds)+"h", textutil.USD(rec.Best.CostUSD))
	if len(degraded) > 0 {
		for _, m := range sys.DegradedDevices() {
			if reason, ok := degraded[string(m)]; ok {
				tbl.AddNote("† %s trained on partial coverage: %s", m, reason)
			}
		}
		if rec.Best.Degraded != "" {
			tbl.AddNote("no cleanly-covered feasible configuration; the recommendation is degraded")
		}
	}
	return tbl.Render(os.Stdout)
}

// cmdDevices prints the device registry: one row per registered GPU
// with its spec-level effective throughputs.
func cmdDevices(args []string) error {
	fs := flag.NewFlagSet("devices", flag.ExitOnError)
	extra := fs.Bool("extra-devices", false, "also register the built-in non-paper devices")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *extra {
		a10g.Register()
	}
	tbl := &textutil.Table{
		Title:  "Registered GPU devices",
		Header: []string{"id", "name", "family", "mem GB", "TFLOPS", "GB/s", "launch us"},
	}
	for _, id := range gpu.All() {
		d := gpu.MustLookup(id)
		tbl.AddRow(string(d.ID), d.Name, d.Family,
			fmt.Sprintf("%d", d.MemoryGB),
			fmt.Sprintf("%.1f", d.ComputeTFLOPS),
			fmt.Sprintf("%.0f", d.MemBWGBps),
			fmt.Sprintf("%.0f", d.LaunchUS))
	}
	tbl.AddNote("throughputs are effective (calibrated) rates, not datasheet peaks")
	tbl.AddNote("new devices register as pure data (gpu.Register); no core package changes")
	return tbl.Render(os.Stdout)
}

func cmdZoo() error {
	tbl := &textutil.Table{
		Title:  "Built-in CNN zoo",
		Header: []string{"model", "split", "params (M)", "DAG nodes"},
	}
	split := map[string]string{}
	for _, n := range ceer.TrainingModels() {
		split[n] = "train"
	}
	for _, n := range ceer.TestModels() {
		split[n] = "test"
	}
	for _, name := range ceer.Models() {
		g, err := ceer.BuildModelCached(name, 32)
		if err != nil {
			return err
		}
		tbl.AddRow(name, split[name], fmt.Sprintf("%.1f", float64(g.Params)/1e6),
			fmt.Sprintf("%d", g.Len()))
	}
	return tbl.Render(os.Stdout)
}
