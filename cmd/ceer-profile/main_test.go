package main

import (
	"context"
	"os"
	"testing"
)

// quietStdout redirects os.Stdout to /dev/null for the duration of the
// test, keeping table and JSON output out of the test logs.
func quietStdout(t *testing.T) {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = orig
		_ = devnull.Close() // test cleanup; the close error is irrelevant
	})
}

func TestRunTableMode(t *testing.T) {
	quietStdout(t)
	if err := run(context.Background(), "alexnet", "P2", 5, 8, 5, 1, false, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONMode(t *testing.T) {
	quietStdout(t)
	if err := run(context.Background(), "inception-v1", "G4", 3, 4, 5, 1, false, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunDOTMode(t *testing.T) {
	quietStdout(t)
	if err := run(context.Background(), "vgg-11", "P3", 1, 2, 5, 1, true, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "nope", "P3", 5, 8, 5, 1, false, false, false); err == nil {
		t.Error("unknown model should error")
	}
	if err := run(context.Background(), "alexnet", "ZZ", 5, 8, 5, 1, false, false, false); err == nil {
		t.Error("unknown GPU family should error")
	}
	if err := run(context.Background(), "alexnet", "P3", 0, 8, 5, 1, false, false, false); err == nil {
		t.Error("zero iterations should error")
	}
}
