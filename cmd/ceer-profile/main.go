// Command ceer-profile runs the simulated op-level profiler on one CNN
// and GPU model and prints the aggregated trace — the raw material of
// the paper's Section III analysis. With -dot it instead emits the
// CNN's training DAG in Graphviz format (paper Figure 1).
//
// Usage:
//
//	ceer-profile -model inception-v3 -gpu P3 [-iters 200] [-batch 32] [-top 30]
//	ceer-profile -model inception-v3 -dot > inception_v3.dot
//	ceer-profile -devices
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ceer/internal/devices/a10g"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
	"ceer/internal/sim"
	"ceer/internal/textutil"
	"ceer/internal/trace"
	"ceer/internal/zoo"
)

func main() {
	model := flag.String("model", "inception-v3", "CNN name")
	family := flag.String("gpu", "P3", "GPU family code (see -devices)")
	iters := flag.Int("iters", 200, "profiling iterations")
	batch := flag.Int64("batch", 32, "per-GPU batch size")
	top := flag.Int("top", 30, "rows to print (by total time)")
	seed := flag.Uint64("seed", 1, "noise seed")
	dot := flag.Bool("dot", false, "emit the DAG in Graphviz DOT format and exit")
	jsonOut := flag.Bool("json", false, "emit the raw profile as JSON instead of a table")
	phases := flag.Bool("phases", false, "also print the per-phase time breakdown")
	devices := flag.Bool("devices", false, "print the registered GPU device table and exit")
	extra := flag.Bool("extra-devices", false, "also register the extra (non-paper) devices, e.g. the A10G")
	timeout := flag.Duration("timeout", 0, "overall deadline for the profile run (0 = none)")
	flag.Parse()

	if *extra {
		a10g.Register()
	}
	if *devices {
		if err := renderDevices(); err != nil {
			fmt.Fprintln(os.Stderr, "ceer-profile:", err)
			os.Exit(1)
		}
		return
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *model, *family, *iters, *batch, *top, *seed, *dot, *jsonOut, *phases); err != nil {
		fmt.Fprintln(os.Stderr, "ceer-profile:", err)
		os.Exit(1)
	}
}

// renderDevices prints the gpu registry as a table: one row per
// registered device with its spec-level effective throughputs.
func renderDevices() error {
	tbl := &textutil.Table{
		Title:  "Registered GPU devices",
		Header: []string{"id", "name", "family", "mem GB", "TFLOPS", "GB/s", "launch us"},
	}
	for _, id := range gpu.All() {
		d := gpu.MustLookup(id)
		tbl.AddRow(string(d.ID), d.Name, d.Family,
			fmt.Sprintf("%d", d.MemoryGB),
			fmt.Sprintf("%.1f", d.ComputeTFLOPS),
			fmt.Sprintf("%.0f", d.MemBWGBps),
			fmt.Sprintf("%.0f", d.LaunchUS))
	}
	tbl.AddNote("throughputs are effective (calibrated) rates, not datasheet peaks")
	tbl.AddNote("register additional devices as data with gpu.Register; -extra-devices adds the built-in extras")
	return tbl.Render(os.Stdout)
}

// builds memoizes zoo graph construction so repeated builds of one
// architecture (e.g. -dot plus a profile run) share a single DAG.
var builds = graph.NewBuildCache(zoo.Build)

func run(ctx context.Context, model, family string, iters int, batch int64, top int, seed uint64, dot, jsonOut, phases bool) error {
	g, err := builds.Build(model, batch)
	if err != nil {
		return err
	}
	if dot {
		_, err := fmt.Print(g.DOT())
		return err
	}
	m, ok := gpu.ByFamily(family)
	if !ok {
		return fmt.Errorf("unknown GPU family %q (want one of %s)", family, strings.Join(gpu.Families(), ", "))
	}
	prof, err := (&sim.Profiler{Seed: seed, Iterations: iters, Retain: 16}).Profile(ctx, g, m)
	if err != nil {
		return err
	}
	if jsonOut {
		return prof.ExportJSON(os.Stdout)
	}

	// Aggregate by op type.
	type agg struct {
		count int
		total float64
		nsd   float64
	}
	byType := make(map[ops.Type]*agg)
	for _, s := range prof.Series {
		a := byType[s.OpType]
		if a == nil {
			a = &agg{}
			byType[s.OpType] = a
		}
		a.count++
		a.total += s.Agg.Mean()
		a.nsd += s.Agg.NormalizedStd()
	}
	var types []ops.Type
	grand := 0.0
	for t, a := range byType {
		types = append(types, t)
		grand += a.total
	}
	sort.Slice(types, func(i, j int) bool { return byType[types[i]].total > byType[types[j]].total })
	if top > len(types) {
		top = len(types)
	}

	tbl := &textutil.Table{
		Title: fmt.Sprintf("Op-level profile: %s on %s (%s), %d iterations, batch %d",
			model, family, m, iters, batch),
		Header: []string{"operation", "class", "instances", "total ms/iter", "share", "avg nsd"},
	}
	for _, t := range types[:top] {
		a := byType[t]
		tbl.AddRow(string(t), ops.MustLookup(t).Class.String(),
			fmt.Sprintf("%d", a.count), textutil.Ms(a.total),
			textutil.Pct(a.total/grand),
			fmt.Sprintf("%.3f", a.nsd/float64(a.count)))
	}
	tbl.AddNote("graph: %d nodes, %d unique op types, %.1fM params",
		g.Len(), len(byType), float64(g.Params)/1e6)
	tbl.AddNote("mean iteration op time: %s ms (excl. communication overhead)",
		textutil.Ms(prof.MeanIterSeconds()))
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	if phases {
		return renderPhases(prof)
	}
	return nil
}

// renderPhases prints how iteration time splits across the training
// phases (input pipeline, forward, backward, optimizer update).
func renderPhases(prof *trace.Profile) error {
	sums := map[graph.Phase]float64{}
	counts := map[graph.Phase]int{}
	total := 0.0
	for _, s := range prof.Series {
		sums[s.Phase] += s.Agg.Mean()
		counts[s.Phase]++
		total += s.Agg.Mean()
	}
	tbl := &textutil.Table{
		Title:  "Per-phase breakdown",
		Header: []string{"phase", "ops", "ms/iter", "share"},
	}
	for _, ph := range []graph.Phase{graph.InputPhase, graph.ForwardPhase, graph.BackwardPhase, graph.UpdatePhase} {
		tbl.AddRow(ph.String(), fmt.Sprintf("%d", counts[ph]),
			textutil.Ms(sums[ph]), textutil.Pct(sums[ph]/total))
	}
	tbl.AddNote("the backward pass dominates CNN training (roughly 2x the forward pass)")
	return tbl.Render(os.Stdout)
}
