// Command ceer-experiments regenerates the paper's tables and figures
// (Figures 1–12, the Section III-A class shares, the Section IV model
// quality and ablation analyses, and the overall accuracy summary).
//
// Usage:
//
//	ceer-experiments                  # run everything
//	ceer-experiments -run fig8,fig11  # run a subset
//	ceer-experiments -list            # list experiment IDs
//	ceer-experiments -run fig1 -dot   # also dump the Fig. 1 DOT graph
//	ceer-experiments -markdown        # emit results as Markdown sections
//	ceer-experiments -workers 8       # bound campaign/figure parallelism
//	ceer-experiments -calibrate observations.jsonl
//	                                  # replay an observation log and print
//	                                  # the drift/refit calibration report
//
// Independent figures execute concurrently over one trained context
// (-workers; 0 = GOMAXPROCS, 1 = serial). Output is rendered in the
// requested order and is identical for every worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	ceer "ceer/internal/ceer"
	"ceer/internal/experiments"
	"ceer/internal/faults"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	seed := flag.Uint64("seed", 42, "measurement noise seed")
	iters := flag.Int("iters", 200, "profiling iterations for Ceer training")
	measure := flag.Int("measure", 20, "iterations sampled per observed run")
	dot := flag.Bool("dot", false, "with fig1: print the full DOT graph")
	markdown := flag.Bool("markdown", false, "wrap each experiment in a Markdown section")
	workers := flag.Int("workers", 0, "parallel workers for the campaign and across figures; 0 = GOMAXPROCS, 1 = serial")
	timeout := flag.Duration("timeout", 0, "overall deadline for the run (0 = none)")
	retries := flag.Int("retries", 0, "per-cell retry budget for transient campaign faults")
	faultSpec := flag.String("fault-spec", "", "JSON fault-injection spec file for the training campaign (chaos testing)")
	checkpoint := flag.String("checkpoint", "", "journal campaign progress to this file and resume from it")
	calibrate := flag.String("calibrate", "", "replay this JSONL observation log against the trained predictor and print the calibration report instead of running experiments")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	if err := runAll(*run, *seed, *iters, *measure, *workers, *dot, *markdown,
		*timeout, *retries, *faultSpec, *checkpoint, *calibrate); err != nil {
		fmt.Fprintln(os.Stderr, "ceer-experiments:", err)
		os.Exit(1)
	}
}

func runAll(runList string, seed uint64, iters, measure, workers int, dot, markdown bool,
	timeout time.Duration, retries int, faultSpec, checkpoint, calibrate string) error {
	var names []string
	if runList != "" {
		names = strings.Split(runList, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var spec *faults.Spec
	if faultSpec != "" {
		var err error
		spec, err = faults.LoadSpec(faultSpec)
		if err != nil {
			return err
		}
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "training Ceer on the 8 training-set CNNs (seed %d)...\n", seed)
	ectx, err := experiments.NewContext(ctx, experiments.Options{
		Seed:              seed,
		ProfileIterations: iters,
		MeasureIters:      measure,
		Workers:           workers,
		Retries:           retries,
		Faults:            spec,
		Checkpoint:        checkpoint,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trained in %.1fs\n\n", time.Since(start).Seconds())
	if !ectx.Coverage.Complete() {
		fmt.Fprintf(os.Stderr, "warning: campaign incomplete (%s); degraded devices: %v\n\n",
			ectx.Coverage, ectx.Pred.DegradedDevices())
	}

	if calibrate != "" {
		return runCalibration(ectx, calibrate, spec)
	}

	results, err := experiments.RunAll(ctx, ectx, names, workers)
	if err != nil {
		return err
	}
	for _, r := range results {
		if markdown {
			fmt.Printf("## %s\n\n```\n", r.Name)
		}
		if err := r.Res.Table().Render(os.Stdout); err != nil {
			return err
		}
		if markdown {
			fmt.Printf("```\n\n")
		}
		if r.Name == "fig1" && dot {
			if f1, ok := r.Res.(*experiments.Fig01Result); ok {
				fmt.Println(f1.DOT)
			}
		}
	}
	return nil
}

// runCalibration replays a JSONL observation log through the trained
// predictor's observe→predict→calibrate loop and prints the report.
// The -fault-spec, when given, also injects into the replay (stage
// "calibrate": transient faults drop observations).
func runCalibration(ectx *experiments.Context, obsPath string, spec *faults.Spec) error {
	cal, err := ceer.NewCalibrator(ectx.Pred, ceer.DefaultCalibrationPolicy())
	if err != nil {
		return err
	}
	var inj *faults.Injector
	if spec != nil {
		if inj, err = faults.NewInjector(spec); err != nil {
			return err
		}
	}
	f, err := os.Open(obsPath)
	if err != nil {
		return err
	}
	//lint:ignore errdrop read-side close; there are no buffered writes to lose
	defer f.Close()
	if err := cal.Replay(f, inj); err != nil {
		return err
	}
	return cal.Report().Render(os.Stdout)
}
