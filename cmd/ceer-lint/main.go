// Command ceer-lint runs the project's static analyzer suite
// (internal/lint) over the module: ctxflow, devicegeneric,
// determinism, errdrop, and floatcmp. It exits 0 when the tree is
// clean, 1 when
// any diagnostic survives, and 2 when the module fails to load or
// type-check.
//
// Usage:
//
//	ceer-lint [-C dir] [-json] [-analyzers a,b] [-list]
//
// Findings print as file:line:col: analyzer: message, sorted by
// (file, line, col, analyzer), or as a JSON array with -json — the
// ordering is identical in both modes so CI diffs are deterministic.
// Individual findings are suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"

	"ceer/internal/lint"
)

func main() {
	var (
		dir       = flag.String("C", ".", "module root (directory containing go.mod)")
		jsonOut   = flag.Bool("json", false, "emit diagnostics as a JSON array")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list      = flag.Bool("list", false, "list the available analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceer-lint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(lint.Config{Dir: *dir}, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceer-lint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "ceer-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "ceer-lint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
