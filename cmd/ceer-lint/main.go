// Command ceer-lint runs the project's static analyzer suite
// (internal/lint) over the module: allocfree, atomics, ctxflow,
// devicegeneric, determinism, errdrop, floatcmp, hotpath, and
// poolpair. It exits 0 when the tree is clean, 1 when any diagnostic
// survives, and 2 when the module fails to load or type-check.
//
// Usage:
//
//	ceer-lint [-C dir] [-json|-sarif] [-analyzers a,b] [-list]
//	ceer-lint [-C dir] [-json|-sarif] -escape-log build.log
//
// Findings print as file:line:col: analyzer: message, sorted by
// (file, line, col, analyzer), as a JSON array with -json, or as a
// SARIF 2.1.0 log with -sarif — the ordering is identical in every
// mode so CI diffs are deterministic. Individual findings are
// suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it.
//
// With -escape-log, ceer-lint instead cross-checks the compiler's own
// escape analysis against the hot-path call graph: the log is the
// stderr of `go build -gcflags=-m ./...`, and any "escapes to heap"
// or "moved to heap" diagnostic landing inside a //hot:path-reachable
// function is reported (under the allocfree analyzer name, so the
// same line suppressions apply). See scripts/lint-escape.sh.
package main

import (
	"flag"
	"fmt"
	"os"

	"ceer/internal/lint"
)

func main() {
	var (
		dir       = flag.String("C", ".", "module root (directory containing go.mod)")
		jsonOut   = flag.Bool("json", false, "emit diagnostics as a JSON array")
		sarifOut  = flag.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list      = flag.Bool("list", false, "list the available analyzers and exit")
		escapeLog = flag.String("escape-log", "", "cross-check a `go build -gcflags=-m` log against the hot-path call graph")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "ceer-lint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	var diags []lint.Diagnostic
	if *escapeLog != "" {
		f, err := os.Open(*escapeLog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ceer-lint:", err)
			os.Exit(2)
		}
		diags, err = lint.CrossCheckEscapes(lint.Config{Dir: *dir}, f)
		// read-only file; nothing buffered to flush on close
		_ = f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ceer-lint:", err)
			os.Exit(2)
		}
	} else {
		suite, err := lint.ByName(*analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ceer-lint:", err)
			os.Exit(2)
		}
		diags, err = lint.Run(lint.Config{Dir: *dir}, suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ceer-lint:", err)
			os.Exit(2)
		}
	}

	switch {
	case *jsonOut:
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "ceer-lint:", err)
			os.Exit(2)
		}
	case *sarifOut:
		if err := lint.WriteSARIF(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "ceer-lint:", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(os.Stderr, "ceer-lint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
