// Package cloud models the AWS EC2 GPU offerings the paper evaluates:
// the eight concrete instance types (four single-GPU, four multi-GPU)
// with their On-Demand prices, the paper's proxy pricing rule for GPU
// counts AWS does not sell directly, the market-price-ratio scenario of
// Figure 12, and the ground-truth communication overhead of data-parallel
// training (CPU↔GPU transfers plus inter-GPU synchronization).
//
// Like the gpu package's device registry, the instance catalog is open:
// new offerings for any registered device can be added with
// RegisterInstance — no code changes here — and every pricing and
// enumeration helper generalizes over whatever is registered.
package cloud

import (
	"fmt"
	"sort"
	"sync"

	"ceer/internal/gpu"
)

// Instance describes one concrete AWS EC2 GPU instance offering.
type Instance struct {
	// Name is the AWS API name, e.g. "p3.2xlarge".
	Name string
	// GPU is the registered device the instance carries.
	GPU gpu.ID
	// NumGPUs is the GPU count of the offering.
	NumGPUs int
	// HourlyUSD is the On-Demand hourly price.
	HourlyUSD float64
}

var (
	catMu   sync.RWMutex
	catalog []Instance
)

// RegisterInstance adds an offering to the catalog. The instance must
// name a device already present in the gpu registry, carry at least one
// GPU, have a positive price, and not reuse a registered instance name.
func RegisterInstance(inst Instance) error {
	if inst.Name == "" {
		return fmt.Errorf("cloud: instance needs a non-empty name")
	}
	if _, ok := gpu.Lookup(inst.GPU); !ok {
		return fmt.Errorf("cloud: instance %q references unregistered device %q", inst.Name, string(inst.GPU))
	}
	if inst.NumGPUs < 1 {
		return fmt.Errorf("cloud: instance %q needs at least one GPU", inst.Name)
	}
	if inst.HourlyUSD <= 0 {
		return fmt.Errorf("cloud: instance %q needs a positive hourly price", inst.Name)
	}
	catMu.Lock()
	defer catMu.Unlock()
	for _, prev := range catalog {
		if prev.Name == inst.Name {
			return fmt.Errorf("cloud: instance %q already registered", inst.Name)
		}
	}
	catalog = append(catalog, inst)
	return nil
}

// MustRegisterInstance is RegisterInstance, panicking on error.
func MustRegisterInstance(inst Instance) {
	if err := RegisterInstance(inst); err != nil {
		panic(err)
	}
}

// The eight instances of Section V, registered in the paper's order:
// the four basic single-GPU instances followed by the four multi-GPU
// instances.
func init() {
	MustRegisterInstance(Instance{Name: "p3.2xlarge", GPU: gpu.V100, NumGPUs: 1, HourlyUSD: 3.06})
	MustRegisterInstance(Instance{Name: "p2.xlarge", GPU: gpu.K80, NumGPUs: 1, HourlyUSD: 0.90})
	MustRegisterInstance(Instance{Name: "g4dn.2xlarge", GPU: gpu.T4, NumGPUs: 1, HourlyUSD: 0.752})
	MustRegisterInstance(Instance{Name: "g3s.xlarge", GPU: gpu.M60, NumGPUs: 1, HourlyUSD: 0.75})
	MustRegisterInstance(Instance{Name: "p3.8xlarge", GPU: gpu.V100, NumGPUs: 4, HourlyUSD: 12.24})
	MustRegisterInstance(Instance{Name: "p2.8xlarge", GPU: gpu.K80, NumGPUs: 8, HourlyUSD: 7.20})
	MustRegisterInstance(Instance{Name: "g4dn.12xlarge", GPU: gpu.T4, NumGPUs: 4, HourlyUSD: 3.912})
	MustRegisterInstance(Instance{Name: "g3.16xlarge", GPU: gpu.M60, NumGPUs: 4, HourlyUSD: 4.56})
}

// Catalog returns the registered instances in registration order.
func Catalog() []Instance {
	catMu.RLock()
	defer catMu.RUnlock()
	return append([]Instance(nil), catalog...)
}

// FindInstance returns the catalog entry with the given name.
func FindInstance(name string) (Instance, bool) {
	catMu.RLock()
	defer catMu.RUnlock()
	for _, inst := range catalog {
		if inst.Name == name {
			return inst, true
		}
	}
	return Instance{}, false
}

// multiGPUInstance returns the largest offering of a device with more
// than one GPU.
func multiGPUInstance(id gpu.ID) (Instance, bool) {
	catMu.RLock()
	defer catMu.RUnlock()
	best, found := Instance{}, false
	for _, inst := range catalog {
		if inst.GPU != id || inst.NumGPUs <= 1 {
			continue
		}
		if !found || inst.NumGPUs > best.NumGPUs {
			best, found = inst, true
		}
	}
	return best, found
}

// maxOffered returns the largest GPU count offered for a device (0 if
// the device has no registered instances).
func maxOffered(id gpu.ID) int {
	catMu.RLock()
	defer catMu.RUnlock()
	most := 0
	for _, inst := range catalog {
		if inst.GPU == id && inst.NumGPUs > most {
			most = inst.NumGPUs
		}
	}
	return most
}

// Pricing selects the price table of a scenario.
type Pricing int

const (
	// OnDemand uses AWS's published On-Demand prices (with the paper's
	// proxy rule for unoffered GPU counts: a k-GPU configuration costs
	// k/n of the n-GPU instance).
	OnDemand Pricing = iota
	// MarketRatio re-prices the instances to reflect commodity GPU
	// market price ratios (paper Figure 12): P3 $3.06, G4 $0.95,
	// G3 $0.55, P2 $0.15 per GPU-hour, scaling linearly with GPU count.
	// The per-GPU-hour prices come from each device's registered
	// MarketUSDPerGPUHour spec field.
	MarketRatio
)

// String names the pricing scheme.
func (p Pricing) String() string {
	if p == MarketRatio {
		return "market-ratio"
	}
	return "on-demand"
}

// Config identifies one deployable training configuration: a GPU device
// and a GPU count on a single host.
type Config struct {
	GPU gpu.ID
	K   int // number of GPUs (>= 1)
}

// String renders, e.g., "3xP3".
func (c Config) String() string { return fmt.Sprintf("%dx%s", c.K, c.GPU.Family()) }

// Valid reports whether the configuration is deployable: between 1 GPU
// and the device's largest registered single-host offering (1–8 for P2,
// 1–4 for the other paper families). Devices with no registered
// instances have no valid configurations.
func (c Config) Valid() bool {
	if c.K < 1 {
		return false
	}
	return c.K <= maxOffered(c.GPU)
}

// HourlyCost returns the hourly rental price of the configuration under
// the chosen pricing scheme. Under OnDemand, exact catalog offerings
// use their published price; other GPU counts use the paper's proxy
// rule (k/n of the n-GPU instance price, Section V).
func (c Config) HourlyCost(p Pricing) (float64, error) {
	if !c.Valid() {
		return 0, fmt.Errorf("cloud: invalid config %s", c)
	}
	if p == MarketRatio {
		dev, ok := gpu.Lookup(c.GPU)
		if !ok || dev.MarketUSDPerGPUHour <= 0 {
			return 0, fmt.Errorf("cloud: no market price for device %q", string(c.GPU))
		}
		return float64(c.K) * dev.MarketUSDPerGPUHour, nil
	}
	if inst, ok := exactInstance(c.GPU, c.K); ok {
		return inst.HourlyUSD, nil
	}
	multi, ok := multiGPUInstance(c.GPU)
	if !ok {
		return 0, fmt.Errorf("cloud: no multi-GPU instance for device %q", string(c.GPU))
	}
	return float64(c.K) / float64(multi.NumGPUs) * multi.HourlyUSD, nil
}

// exactInstance returns the cheapest offering with exactly k GPUs of a
// device.
func exactInstance(id gpu.ID, k int) (Instance, bool) {
	catMu.RLock()
	defer catMu.RUnlock()
	best, found := Instance{}, false
	for _, inst := range catalog {
		if inst.GPU != id || inst.NumGPUs != k {
			continue
		}
		if !found || inst.HourlyUSD < best.HourlyUSD {
			best, found = inst, true
		}
	}
	return best, found
}

// InstanceName returns the closest AWS instance name for the
// configuration, with a "(k of n GPUs)" annotation for proxy sizes.
func (c Config) InstanceName() string {
	if inst, ok := exactInstance(c.GPU, c.K); ok {
		return inst.Name
	}
	multi, ok := multiGPUInstance(c.GPU)
	if !ok {
		return fmt.Sprintf("unoffered(%s x%d)", string(c.GPU), c.K)
	}
	return fmt.Sprintf("%s (%d of %d GPUs)", multi.Name, c.K, multi.NumGPUs)
}

// Configs enumerates every configuration with 1..maxK GPUs per
// registered device that has catalog instances (clamped to each
// device's largest offering), sorted by family then K — the candidate
// set Ceer's recommender searches.
func Configs(maxK int) []Config {
	var out []Config
	for _, id := range gpu.All() {
		limit := maxOffered(id)
		if limit == 0 {
			continue
		}
		if maxK < limit {
			limit = maxK
		}
		for k := 1; k <= limit; k++ {
			out = append(out, Config{GPU: id, K: k})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].GPU.Family() != out[j].GPU.Family() {
			return out[i].GPU.Family() < out[j].GPU.Family()
		}
		return out[i].K < out[j].K
	})
	return out
}
