// Package cloud models the AWS EC2 GPU offerings the paper evaluates:
// the eight concrete instance types (four single-GPU, four multi-GPU)
// with their On-Demand prices, the paper's proxy pricing rule for GPU
// counts AWS does not sell directly, the market-price-ratio scenario of
// Figure 12, and the ground-truth communication overhead of data-parallel
// training (CPU↔GPU transfers plus inter-GPU synchronization).
package cloud

import (
	"fmt"
	"sort"

	"ceer/internal/gpu"
)

// Instance describes one concrete AWS EC2 GPU instance offering.
type Instance struct {
	// Name is the AWS API name, e.g. "p3.2xlarge".
	Name string
	// GPU is the device model the instance carries.
	GPU gpu.Model
	// NumGPUs is the GPU count of the offering.
	NumGPUs int
	// HourlyUSD is the On-Demand hourly price.
	HourlyUSD float64
}

// Catalog lists the eight instances of Section V, in the paper's order:
// the four basic single-GPU instances followed by the four multi-GPU
// instances.
var Catalog = []Instance{
	{Name: "p3.2xlarge", GPU: gpu.V100, NumGPUs: 1, HourlyUSD: 3.06},
	{Name: "p2.xlarge", GPU: gpu.K80, NumGPUs: 1, HourlyUSD: 0.90},
	{Name: "g4dn.2xlarge", GPU: gpu.T4, NumGPUs: 1, HourlyUSD: 0.752},
	{Name: "g3s.xlarge", GPU: gpu.M60, NumGPUs: 1, HourlyUSD: 0.75},
	{Name: "p3.8xlarge", GPU: gpu.V100, NumGPUs: 4, HourlyUSD: 12.24},
	{Name: "p2.8xlarge", GPU: gpu.K80, NumGPUs: 8, HourlyUSD: 7.20},
	{Name: "g4dn.12xlarge", GPU: gpu.T4, NumGPUs: 4, HourlyUSD: 3.912},
	{Name: "g3.16xlarge", GPU: gpu.M60, NumGPUs: 4, HourlyUSD: 4.56},
}

// FindInstance returns the catalog entry with the given name.
func FindInstance(name string) (Instance, bool) {
	for _, inst := range Catalog {
		if inst.Name == name {
			return inst, true
		}
	}
	return Instance{}, false
}

// singleGPUInstance returns the basic 1-GPU instance of a GPU model.
func singleGPUInstance(m gpu.Model) Instance {
	for _, inst := range Catalog {
		if inst.GPU == m && inst.NumGPUs == 1 {
			return inst
		}
	}
	panic(fmt.Sprintf("cloud: no single-GPU instance for %v", m))
}

// multiGPUInstance returns the multi-GPU instance of a GPU model.
func multiGPUInstance(m gpu.Model) Instance {
	for _, inst := range Catalog {
		if inst.GPU == m && inst.NumGPUs > 1 {
			return inst
		}
	}
	panic(fmt.Sprintf("cloud: no multi-GPU instance for %v", m))
}

// Pricing selects the price table of a scenario.
type Pricing int

const (
	// OnDemand uses AWS's published On-Demand prices (with the paper's
	// proxy rule for unoffered GPU counts: a k-GPU configuration costs
	// k/n of the n-GPU instance).
	OnDemand Pricing = iota
	// MarketRatio re-prices the instances to reflect commodity GPU
	// market price ratios (paper Figure 12): P3 $3.06, G4 $0.95,
	// G3 $0.55, P2 $0.15 per GPU-hour, scaling linearly with GPU count.
	MarketRatio
)

// String names the pricing scheme.
func (p Pricing) String() string {
	if p == MarketRatio {
		return "market-ratio"
	}
	return "on-demand"
}

// marketSingleGPU holds the Figure 12 per-GPU hourly prices.
var marketSingleGPU = map[gpu.Model]float64{
	gpu.V100: 3.06,
	gpu.T4:   0.95,
	gpu.M60:  0.55,
	gpu.K80:  0.15,
}

// Config identifies one deployable training configuration: a GPU model
// and a GPU count on a single host.
type Config struct {
	GPU gpu.Model
	K   int // number of GPUs (>= 1)
}

// String renders, e.g., "3xP3".
func (c Config) String() string { return fmt.Sprintf("%dx%s", c.K, c.GPU.Family()) }

// Valid reports whether the configuration is deployable (1–8 GPUs for
// P2, 1–4 for the others, matching the largest single-host offerings).
func (c Config) Valid() bool {
	if c.K < 1 {
		return false
	}
	return c.K <= multiGPUInstance(c.GPU).NumGPUs
}

// HourlyCost returns the hourly rental price of the configuration under
// the chosen pricing scheme. Under OnDemand, exact catalog offerings
// use their published price; other GPU counts use the paper's proxy
// rule (k/n of the n-GPU instance price, Section V).
func (c Config) HourlyCost(p Pricing) (float64, error) {
	if !c.Valid() {
		return 0, fmt.Errorf("cloud: invalid config %s", c)
	}
	if p == MarketRatio {
		return float64(c.K) * marketSingleGPU[c.GPU], nil
	}
	if c.K == 1 {
		return singleGPUInstance(c.GPU).HourlyUSD, nil
	}
	multi := multiGPUInstance(c.GPU)
	if c.K == multi.NumGPUs {
		return multi.HourlyUSD, nil
	}
	return float64(c.K) / float64(multi.NumGPUs) * multi.HourlyUSD, nil
}

// InstanceName returns the closest AWS instance name for the
// configuration, with a "(k of n GPUs)" annotation for proxy sizes.
func (c Config) InstanceName() string {
	if c.K == 1 {
		return singleGPUInstance(c.GPU).Name
	}
	multi := multiGPUInstance(c.GPU)
	if c.K == multi.NumGPUs {
		return multi.Name
	}
	return fmt.Sprintf("%s (%d of %d GPUs)", multi.Name, c.K, multi.NumGPUs)
}

// Configs enumerates every configuration with 1..maxK GPUs per model
// (clamped to each model's largest offering), sorted by family then K —
// the candidate set Ceer's recommender searches.
func Configs(maxK int) []Config {
	var out []Config
	for _, m := range gpu.AllModels() {
		limit := multiGPUInstance(m).NumGPUs
		if maxK < limit {
			limit = maxK
		}
		for k := 1; k <= limit; k++ {
			out = append(out, Config{GPU: m, K: k})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].GPU.Family() != out[j].GPU.Family() {
			return out[i].GPU.Family() < out[j].GPU.Family()
		}
		return out[i].K < out[j].K
	})
	return out
}
