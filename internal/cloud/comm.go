package cloud

import (
	"fmt"

	"ceer/internal/gpu"
	"ceer/internal/rng"
)

// Communication-overhead ground truth (Sections III-D and IV-C).
//
// Every training iteration pays a communication penalty on top of the
// GPU compute time: CPU↔GPU weight and gradient transfers on a single
// GPU, plus gradient aggregation and synchronization stragglers under
// data parallelism. Empirically (paper Figure 7) this penalty is nearly
// linear in the number of model parameters for every GPU model and GPU
// count, so the simulator generates it as
//
//	S(g, k, P) = (base_g + slope_g · P) · m(k) · noise
//
// where m(k) encodes the superlinear growth of synchronization cost
// with the number of GPUs (stragglers become more likely, paper
// Section III-D), calibrated so the training-time reductions at
// k=2,3,4 land near the paper's observed 35.8%, 46.6%, and 53.6%.
//
// The per-device constants base_g and slope_g live on the registered
// device spec (gpu.Device.CommBaseSeconds / CommSecondsPerByte): slower
// platform interconnects (the K80-era P2 hosts) have both higher fixed
// cost and higher per-parameter cost.

// commScale is m(k) for k = 1..8: the multiplier on the per-GPU
// communication unit (base + slope·params). m(1) = 2.5 reflects that
// even single-GPU training pays host↔device weight and gradient
// transfers beyond the marginal sync unit (Section IV-A: ignoring this
// hurts single-GPU predictions),
// calibrated so Inception-v1 training time drops by roughly the paper's
// 35.8% / 46.6% / 53.6% at k = 2 / 3 / 4. Values beyond k=4 extrapolate
// the same straggler trend (needed for the 8-GPU P2 instance).
var commScale = [9]float64{0, 2.5, 10.0, 19.0, 27.0, 34.0, 41.0, 48.0, 55.0}

// commNoiseSigma is the lognormal noise level of the per-iteration
// communication overhead (synchronization jitter).
const commNoiseSigma = 0.06

// bytesPerParam is the gradient element width (fp32).
const bytesPerParam = 4

// CommOverheadBase returns the noiseless per-iteration communication
// overhead, in seconds, of training a model with the given parameter
// count on k GPUs of the given device.
func CommOverheadBase(id gpu.ID, k int, params int64) (float64, error) {
	dev, ok := gpu.Lookup(id)
	if !ok {
		return 0, fmt.Errorf("cloud: unknown device %q", string(id))
	}
	if dev.CommBaseSeconds <= 0 || dev.CommSecondsPerByte <= 0 {
		return 0, fmt.Errorf("cloud: no communication parameters for %v", id)
	}
	if k < 1 || k >= len(commScale) {
		return 0, fmt.Errorf("cloud: unsupported GPU count %d", k)
	}
	if params < 0 {
		return 0, fmt.Errorf("cloud: negative parameter count %d", params)
	}
	unit := dev.CommBaseSeconds + dev.CommSecondsPerByte*float64(params)*bytesPerParam
	return unit * commScale[k], nil
}

// SampleCommOverhead draws one noisy per-iteration communication
// overhead measurement.
func SampleCommOverhead(id gpu.ID, k int, params int64, src *rng.Source) (float64, error) {
	base, err := CommOverheadBase(id, k, params)
	if err != nil {
		return 0, err
	}
	return base * src.LogNormalFactor(commNoiseSigma), nil
}
