package cloud

import (
	"math"
	"testing"
	"testing/quick"

	"ceer/internal/gpu"
	"ceer/internal/rng"
	"ceer/internal/stats"
)

func TestCatalogPrices(t *testing.T) {
	// Exact prices from the paper (Section V).
	want := map[string]float64{
		"p3.2xlarge": 3.06, "p2.xlarge": 0.90, "g4dn.2xlarge": 0.752, "g3s.xlarge": 0.75,
		"p3.8xlarge": 12.24, "p2.8xlarge": 7.20, "g4dn.12xlarge": 3.912, "g3.16xlarge": 4.56,
	}
	if len(Catalog()) != len(want) {
		t.Fatalf("catalog has %d instances, want %d", len(Catalog()), len(want))
	}
	for name, price := range want {
		inst, ok := FindInstance(name)
		if !ok {
			t.Errorf("missing instance %q", name)
			continue
		}
		if !eqExact(inst.HourlyUSD, price) {
			t.Errorf("%s price = %v, want %v", name, inst.HourlyUSD, price)
		}
	}
	if _, ok := FindInstance("m5.large"); ok {
		t.Error("non-GPU instance should not resolve")
	}
}

func TestProxyPricing(t *testing.T) {
	// The paper's Section V proxy: a 3-GPU P2 costs 3/8 of p2.8xlarge
	// ($2.70); 3-GPU G3 costs $3.42; 3-GPU G4 costs $2.934.
	cases := []struct {
		cfg  Config
		want float64
	}{
		{Config{gpu.K80, 3}, 2.70},
		{Config{gpu.M60, 3}, 3.42},
		{Config{gpu.T4, 3}, 2.934},
		{Config{gpu.V100, 1}, 3.06},
		{Config{gpu.V100, 4}, 12.24},
		{Config{gpu.K80, 8}, 7.20},
		{Config{gpu.K80, 1}, 0.90},
	}
	for _, c := range cases {
		got, err := c.cfg.HourlyCost(OnDemand)
		if err != nil {
			t.Fatalf("%s: %v", c.cfg, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s cost = %v, want %v", c.cfg, got, c.want)
		}
	}
}

func TestMarketPricing(t *testing.T) {
	cases := []struct {
		cfg  Config
		want float64
	}{
		{Config{gpu.K80, 1}, 0.15},
		{Config{gpu.K80, 4}, 0.60},
		{Config{gpu.M60, 1}, 0.55},
		{Config{gpu.T4, 2}, 1.90},
		{Config{gpu.V100, 1}, 3.06},
	}
	for _, c := range cases {
		got, err := c.cfg.HourlyCost(MarketRatio)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s market cost = %v, want %v", c.cfg, got, c.want)
		}
	}
}

func TestConfigValidity(t *testing.T) {
	if (Config{gpu.V100, 0}).Valid() {
		t.Error("0 GPUs should be invalid")
	}
	if (Config{gpu.V100, 5}).Valid() {
		t.Error("5-GPU P3 exceeds p3.8xlarge")
	}
	if !(Config{gpu.K80, 8}).Valid() {
		t.Error("8-GPU P2 should be valid (p2.8xlarge)")
	}
	if _, err := (Config{gpu.V100, 9}).HourlyCost(OnDemand); err == nil {
		t.Error("invalid config should not price")
	}
}

func TestInstanceName(t *testing.T) {
	cases := map[Config]string{
		{gpu.V100, 1}: "p3.2xlarge",
		{gpu.V100, 4}: "p3.8xlarge",
		{gpu.K80, 3}:  "p2.8xlarge (3 of 8 GPUs)",
	}
	for cfg, want := range cases {
		if got := cfg.InstanceName(); got != want {
			t.Errorf("%s InstanceName = %q, want %q", cfg, got, want)
		}
	}
	if (Config{gpu.V100, 3}).String() != "3xP3" {
		t.Error("Config.String format changed")
	}
}

func TestConfigsEnumeration(t *testing.T) {
	cfgs := Configs(4)
	// 4 per model (P2 clamped to 4 despite supporting 8).
	if len(cfgs) != 16 {
		t.Errorf("Configs(4) = %d entries, want 16", len(cfgs))
	}
	for _, c := range cfgs {
		if !c.Valid() {
			t.Errorf("enumerated invalid config %s", c)
		}
	}
	cfgs8 := Configs(8)
	if len(cfgs8) != 20 { // P2 gets 8, others 4
		t.Errorf("Configs(8) = %d entries, want 20", len(cfgs8))
	}
}

func TestCommOverheadLinearInParams(t *testing.T) {
	// Fixing (model, k), overhead must be exactly affine in params.
	for _, m := range gpu.All() {
		s0, err := CommOverheadBase(m, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		s1, _ := CommOverheadBase(m, 2, 10_000_000) // registered device; cannot fail
		s2, _ := CommOverheadBase(m, 2, 20_000_000) // registered device; cannot fail
		if math.Abs((s2-s1)-(s1-s0)) > 1e-12 {
			t.Errorf("%v overhead not affine in params", m)
		}
		if s1 <= s0 {
			t.Errorf("%v overhead not increasing in params", m)
		}
	}
}

func TestCommOverheadMonotoneInK(t *testing.T) {
	for _, m := range gpu.All() {
		prev := 0.0
		for k := 1; k <= 8; k++ {
			s, err := CommOverheadBase(m, k, 25_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if s <= prev {
				t.Errorf("%v overhead not increasing at k=%d", m, k)
			}
			prev = s
		}
	}
}

func TestCommOverheadErrors(t *testing.T) {
	if _, err := CommOverheadBase(gpu.V100, 0, 1000); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := CommOverheadBase(gpu.V100, 9, 1000); err == nil {
		t.Error("k=9 should error")
	}
	if _, err := CommOverheadBase(gpu.V100, 2, -5); err == nil {
		t.Error("negative params should error")
	}
	if _, err := CommOverheadBase(gpu.ID("no-such-device"), 2, 5); err == nil {
		t.Error("unknown model should error")
	}
}

func TestSampleCommOverheadNoise(t *testing.T) {
	src := rng.New(3)
	var xs []float64
	for i := 0; i < 2000; i++ {
		s, err := SampleCommOverhead(gpu.T4, 2, 25_000_000, src)
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, s)
	}
	nsd := stats.NormalizedStdDev(xs)
	if nsd < 0.02 || nsd > 0.15 {
		t.Errorf("comm noise normalized stddev = %v, want ~0.06", nsd)
	}
	base, _ := CommOverheadBase(gpu.T4, 2, 25_000_000) // registered device; cannot fail
	if m := stats.Mean(xs); math.Abs(m-base)/base > 0.05 {
		t.Errorf("sample mean %v deviates from base %v", m, base)
	}
	if _, err := SampleCommOverhead(gpu.T4, 0, 1, src); err == nil {
		t.Error("sample with bad k should error")
	}
}

func TestPricingString(t *testing.T) {
	if OnDemand.String() != "on-demand" || MarketRatio.String() != "market-ratio" {
		t.Error("pricing labels wrong")
	}
}

// Property: proxy pricing is linear in k between offered sizes and never
// cheaper per GPU than the multi-GPU instance's per-GPU price.
func TestProxyPricingProperty(t *testing.T) {
	f := func(kRaw uint8, mRaw uint8) bool {
		models := gpu.All()
		m := models[int(mRaw)%len(models)]
		maxK := 4
		if m == gpu.K80 {
			maxK = 8
		}
		k := int(kRaw)%maxK + 1
		cfg := Config{GPU: m, K: k}
		cost, err := cfg.HourlyCost(OnDemand)
		if err != nil || cost <= 0 {
			return false
		}
		if k == 1 {
			return true
		}
		multiCost, _ := Config{GPU: m, K: maxK}.HourlyCost(OnDemand) // catalog-backed config; cannot fail
		perGPU := multiCost / float64(maxK)
		return math.Abs(cost-float64(k)*perGPU) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCommScaleDiminishingReturns verifies the ground-truth shape behind
// the paper's Figure 6: with a compute time C and overhead S(k), the
// per-sample time C/k improvements shrink with k.
func TestCommScaleDiminishingReturns(t *testing.T) {
	const params = 6_600_000 // inception-v1
	for _, m := range gpu.All() {
		// A plausible per-iteration compute time: ~28x the k=1 overhead
		// (the u ≈ 0.036 calibration).
		s1, err := CommOverheadBase(m, 1, params)
		if err != nil {
			t.Fatal(err)
		}
		c := s1 / 0.09 // S1 = m(1)*unit = 2.5*unit; unit/C = 0.036
		var perSample [5]float64
		for k := 1; k <= 4; k++ {
			sk, err := CommOverheadBase(m, k, params)
			if err != nil {
				t.Fatal(err)
			}
			perSample[k] = (c + sk) / float64(k)
		}
		// Monotone improvement with diminishing steps.
		for k := 2; k <= 4; k++ {
			if perSample[k] >= perSample[k-1] {
				t.Errorf("%v: per-sample time not improving at k=%d", m, k)
			}
		}
		step2 := perSample[1] - perSample[2]
		step3 := perSample[2] - perSample[3]
		step4 := perSample[3] - perSample[4]
		if !(step2 > step3 && step3 > step4) {
			t.Errorf("%v: returns not diminishing: %v %v %v", m, step2, step3, step4)
		}
	}
}

func TestInstanceCatalogIntegrity(t *testing.T) {
	// Exactly one single-GPU and one multi-GPU offering per model; all
	// prices positive; names unique.
	singles := map[gpu.ID]int{}
	multis := map[gpu.ID]int{}
	names := map[string]bool{}
	for _, inst := range Catalog() {
		if inst.HourlyUSD <= 0 || inst.NumGPUs < 1 {
			t.Errorf("%s: bad price or GPU count", inst.Name)
		}
		if names[inst.Name] {
			t.Errorf("duplicate instance name %s", inst.Name)
		}
		names[inst.Name] = true
		if inst.NumGPUs == 1 {
			singles[inst.GPU]++
		} else {
			multis[inst.GPU]++
		}
	}
	for _, m := range gpu.All() {
		if singles[m] != 1 || multis[m] != 1 {
			t.Errorf("%v: %d single and %d multi offerings, want 1 and 1", m, singles[m], multis[m])
		}
	}
}

// Property: market pricing is exactly linear in k for every model.
func TestMarketPricingLinearProperty(t *testing.T) {
	f := func(kRaw, mRaw uint8) bool {
		models := gpu.All()
		m := models[int(mRaw)%len(models)]
		maxK := 4
		if m == gpu.K80 {
			maxK = 8
		}
		k := int(kRaw)%maxK + 1
		c1, err1 := Config{GPU: m, K: 1}.HourlyCost(MarketRatio)
		ck, err2 := Config{GPU: m, K: k}.HourlyCost(MarketRatio)
		return err1 == nil && err2 == nil && math.Abs(ck-float64(k)*c1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegisterInstanceErrors(t *testing.T) {
	// Each rejected registration must leave the catalog untouched.
	before := len(Catalog())
	cases := map[string]Instance{
		"empty name":          {GPU: gpu.V100, NumGPUs: 1, HourlyUSD: 1},
		"unregistered device": {Name: "x9.large", GPU: gpu.ID("no-such-device"), NumGPUs: 1, HourlyUSD: 1},
		"zero GPUs":           {Name: "x9.large", GPU: gpu.V100, NumGPUs: 0, HourlyUSD: 1},
		"free instance":       {Name: "x9.large", GPU: gpu.V100, NumGPUs: 1, HourlyUSD: 0},
		"duplicate name":      {Name: "p3.2xlarge", GPU: gpu.V100, NumGPUs: 2, HourlyUSD: 9},
	}
	for name, inst := range cases {
		if err := RegisterInstance(inst); err == nil {
			t.Errorf("%s: RegisterInstance accepted %+v", name, inst)
		}
	}
	if got := len(Catalog()); got != before {
		t.Fatalf("failed registrations changed the catalog: %d -> %d", before, got)
	}
}

func TestConfigForUnregisteredDeviceIsInvalid(t *testing.T) {
	cfg := Config{GPU: gpu.ID("no-such-device"), K: 1}
	if cfg.Valid() {
		t.Error("config on a device with no instances must be invalid")
	}
	if _, err := cfg.HourlyCost(OnDemand); err == nil {
		t.Error("pricing a config on an unregistered device must error")
	}
}

// eqExact reports a == b. Exact float equality is the contract under
// test here: catalog prices and overhead bases are
// exact spec data.
func eqExact(a, b float64) bool { return a == b }
