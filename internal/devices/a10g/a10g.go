// Package a10g registers the NVIDIA A10G (AWS G5 instances) as a pure
// data extension of the device registry: it touches no core package —
// everything the simulator, predictor, and recommender need is carried
// by the gpu.Device spec and the cloud instance catalog entries below.
//
// The A10G postdates the paper's measurement campaign, so its spec is
// not calibrated against published figures; the values are plausible
// effective rates for an Ampere-generation inference/graphics part
// (between the T4 and the V100 on most axes, with a large 24 GB
// memory). The package exists primarily to prove the registry's
// extensibility claim: registration is explicit (call Register), never
// an import side effect, so binaries that do not opt in keep the exact
// four-device catalog — and the exact output bytes — they had before
// this package existed.
package a10g

import (
	"sync"

	"ceer/internal/cloud"
	"ceer/internal/gpu"
	"ceer/internal/ops"
)

// A10G is the registry ID of the NVIDIA A10G.
const A10G = gpu.ID("a10g")

var once sync.Once

// Register adds the A10G device and its two G5 instance offerings to
// the registries. It is idempotent and safe to call from multiple
// goroutines.
func Register() {
	once.Do(func() {
		gpu.MustRegister(gpu.Device{
			ID: A10G, Name: "NVIDIA A10G", Family: "G5",
			// SeedID 4 is frozen: changing it would change every simulated
			// A10G measurement.
			SeedID:   4,
			MemoryGB: 24, CUDACores: 9216,
			ComputeTFLOPS: 6.5, MemBWGBps: 480, LaunchUS: 4,
			RooflineR0: 30, BPFContention: 0.38, CPUFactor: 1.0,
			OpEfficiency: map[ops.Type]float64{
				// Ampere pooling kernels are close to streaming speed.
				ops.MaxPool: 0.90, ops.AvgPool: 0.90, ops.MaxPoolGrad: 0.90, ops.AvgPoolGrad: 0.90,
				ops.FusedBatchNormGradV3: 0.95,
				ops.FusedBatchNormV3:     0.70,
				ops.AddV2:                1.05, ops.AddN: 1.05, ops.Mul: 1.05,
				ops.Transpose: 0.050,
			},
			Conv1x1Factor: 1.8, ConvAsymFactor: 0.85,
			CommBaseSeconds: 1.8e-3, CommSecondsPerByte: 0.008e-9,
			MarketUSDPerGPUHour: 1.30,
		})
		cloud.MustRegisterInstance(cloud.Instance{Name: "g5.xlarge", GPU: A10G, NumGPUs: 1, HourlyUSD: 1.006})
		cloud.MustRegisterInstance(cloud.Instance{Name: "g5.12xlarge", GPU: A10G, NumGPUs: 4, HourlyUSD: 5.672})
	})
}
