package a10g

// These tests exercise the whole stack over the five-device catalog
// (four paper GPUs + the A10G registered by this package). They live
// here — not in internal/ceer — because registration is global to the
// test binary: keeping the extras out of the core packages' test
// binaries preserves their exact four-device golden values.

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"

	"ceer/internal/ceer"
	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/zoo"
)

func TestRegisterIdempotent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Register()
		}()
	}
	wg.Wait()
	Register()

	dev, ok := gpu.Lookup(A10G)
	if !ok {
		t.Fatal("A10G not registered")
	}
	if dev.Family != "G5" || dev.MemoryGB != 24 {
		t.Errorf("unexpected A10G spec: %+v", dev)
	}
	if len(gpu.All()) != 5 {
		t.Fatalf("registry has %d devices, want 5", len(gpu.All()))
	}
	if _, ok := cloud.FindInstance("g5.xlarge"); !ok {
		t.Error("g5.xlarge not in catalog")
	}
	if _, ok := cloud.FindInstance("g5.12xlarge"); !ok {
		t.Error("g5.12xlarge not in catalog")
	}
}

// testPipeline mirrors internal/ceer's campaign test configuration.
func testPipeline(workers int) ceer.Pipeline {
	pl := ceer.DefaultPipeline(11)
	pl.ProfileIterations = 40
	pl.CommIterations = 10
	pl.Retain = 16
	pl.Workers = workers
	return pl
}

var campaignNames = []string{"vgg-11", "inception-v1", "resnet-50"}

// TestCampaignParallelDeterminismFiveDevices extends the PR 1
// serial-vs-parallel gate to the five-device catalog: with the A10G
// registered, a Workers=8 campaign must still be indistinguishable from
// Workers=1 — deeply equal bundle and observations and a byte-identical
// serialized predictor.
func TestCampaignParallelDeterminismFiveDevices(t *testing.T) {
	Register()
	if n := len(gpu.All()); n != 5 {
		t.Fatalf("expected the five-device catalog, got %d devices", n)
	}
	serialRes, err := testPipeline(1).Campaign(context.Background(), zoo.Build, campaignNames)
	if err != nil {
		t.Fatal(err)
	}
	serialBundle, serialObs := serialRes.Bundle, serialRes.CommObs
	parallelRes, err := testPipeline(8).Campaign(context.Background(), zoo.Build, campaignNames)
	if err != nil {
		t.Fatal(err)
	}
	parallelBundle, parallelObs := parallelRes.Bundle, parallelRes.CommObs
	if !reflect.DeepEqual(serialBundle, parallelBundle) {
		t.Error("parallel five-device campaign bundle differs from serial")
	}
	if !reflect.DeepEqual(serialObs, parallelObs) {
		t.Error("parallel five-device comm observations differ from serial")
	}
	if got := len(serialObs); got != len(campaignNames)*5*testPipeline(1).MaxK {
		t.Errorf("observation count %d does not cover 5 devices", got)
	}

	serialPred, err := ceer.Train(serialBundle, serialObs)
	if err != nil {
		t.Fatal(err)
	}
	parallelPred, err := ceer.Train(parallelBundle, parallelObs)
	if err != nil {
		t.Fatal(err)
	}
	var serialJSON, parallelJSON bytes.Buffer
	if err := serialPred.Save(&serialJSON); err != nil {
		t.Fatal(err)
	}
	if err := parallelPred.Save(&parallelJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON.Bytes(), parallelJSON.Bytes()) {
		t.Error("five-device predictors serialize differently for serial vs parallel campaigns")
	}
	if !bytes.Contains(serialJSON.Bytes(), []byte(`"a10g"`)) {
		t.Error("serialized predictor lacks a10g op models")
	}
}

// TestFiveDeviceTrainPersistRecommend drives the full user journey over
// the extended catalog: train on all five devices, persist, reload, and
// recommend — with the A10G competing in (and the G5 instances pricing)
// the candidate set. Running the journey twice must give identical
// bytes and an identical recommendation.
func TestFiveDeviceTrainPersistRecommend(t *testing.T) {
	Register()
	run := func() ([]byte, cloud.Config) {
		pred, _, err := testPipeline(0).TrainOn(context.Background(), zoo.Build, zoo.TrainingSet())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := pred.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := ceer.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		g := zoo.MustBuild("inception-v3", 32)
		cfgs := cloud.Configs(4)
		sawG5 := false
		for _, c := range cfgs {
			if c.GPU == A10G {
				sawG5 = true
			}
		}
		if !sawG5 {
			t.Fatal("candidate set lacks G5 configurations")
		}
		rec, err := loaded.Recommend(g, dataset.ImageNet, cloud.OnDemand, cfgs, ceer.MinimizeCost)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Candidates) != 20 { // 5 devices × 4 counts (P2 clamped to maxK=4)
			t.Errorf("expected 20 candidates over five devices, got %d", len(rec.Candidates))
		}
		return buf.Bytes(), rec.Best.Cfg
	}
	bytes1, best1 := run()
	bytes2, best2 := run()
	if !bytes.Equal(bytes1, bytes2) {
		t.Error("five-device training is not run-to-run deterministic")
	}
	if best1 != best2 {
		t.Errorf("recommendation not deterministic: %s vs %s", best1, best2)
	}

	// A prediction on the A10G itself must work end-to-end.
	loaded, err := ceer.Load(bytes.NewReader(bytes1))
	if err != nil {
		t.Fatal(err)
	}
	g := zoo.MustBuild("inception-v3", 32)
	pred, err := loaded.PredictTraining(g, cloud.Config{GPU: A10G, K: 2}, dataset.ImageNet, cloud.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if pred.TotalSeconds <= 0 || pred.CostUSD <= 0 {
		t.Errorf("degenerate A10G prediction: %+v", pred)
	}
	if len(pred.Iter.UnseenHeavy) != 0 {
		t.Errorf("A10G prediction has unseen heavy ops %v after five-device training", pred.Iter.UnseenHeavy)
	}
}
