package ceer

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/zoo"
)

// testPipeline is a small but complete campaign configuration: enough
// iterations for stable fits, few enough to keep the test fast.
func testPipeline(workers int) Pipeline {
	pl := DefaultPipeline(11)
	pl.ProfileIterations = 40
	pl.CommIterations = 10
	pl.Retain = 16
	pl.Workers = workers
	return pl
}

var campaignNames = []string{"vgg-11", "inception-v1", "resnet-50"}

// TestCampaignParallelDeterminism is the serial-vs-parallel regression
// gate: a campaign run with Workers=8 must be indistinguishable from
// Workers=1 — deeply equal bundle and observations, and a byte-identical
// serialized predictor.
func TestCampaignParallelDeterminism(t *testing.T) {
	serialRes, err := testPipeline(1).Campaign(context.Background(), zoo.Build, campaignNames)
	if err != nil {
		t.Fatal(err)
	}
	serialBundle, serialObs := serialRes.Bundle, serialRes.CommObs
	parallelRes, err := testPipeline(8).Campaign(context.Background(), zoo.Build, campaignNames)
	if err != nil {
		t.Fatal(err)
	}
	parallelBundle, parallelObs := parallelRes.Bundle, parallelRes.CommObs

	if !reflect.DeepEqual(serialBundle, parallelBundle) {
		t.Error("parallel campaign bundle differs from serial")
	}
	if !reflect.DeepEqual(serialObs, parallelObs) {
		t.Error("parallel comm observations differ from serial")
	}

	serialPred, err := Train(serialBundle, serialObs)
	if err != nil {
		t.Fatal(err)
	}
	parallelPred, err := Train(parallelBundle, parallelObs)
	if err != nil {
		t.Fatal(err)
	}
	var serialJSON, parallelJSON bytes.Buffer
	if err := serialPred.Save(&serialJSON); err != nil {
		t.Fatal(err)
	}
	if err := parallelPred.Save(&parallelJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON.Bytes(), parallelJSON.Bytes()) {
		t.Error("trained predictors serialize differently for serial vs parallel campaigns")
	}

	// Spot-check a downstream prediction too: same graph, same config,
	// same numbers.
	g, err := zoo.Build("alexnet", 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cloud.Config{GPU: gpu.V100, K: 2}
	a, err := serialPred.PredictTraining(g, cfg, dataset.ImageNetSubset6400, cloud.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallelPred.PredictTraining(g, cfg, dataset.ImageNetSubset6400, cloud.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("predictions diverge: %+v vs %+v", a, b)
	}
}

// TestCampaignBuildsEachGraphOnce pins the BuildCache fix: the campaign
// used to build every CNN twice (once for profiling, once for the
// communication stage).
func TestCampaignBuildsEachGraphOnce(t *testing.T) {
	var mu sync.Mutex
	counts := make(map[string]int)
	counting := func(name string, batch int64) (*graph.Graph, error) {
		mu.Lock()
		counts[name]++
		mu.Unlock()
		return zoo.Build(name, batch)
	}
	for _, workers := range []int{1, 4} {
		mu.Lock()
		for k := range counts {
			delete(counts, k)
		}
		mu.Unlock()
		pl := testPipeline(workers)
		if _, err := pl.Campaign(context.Background(), counting, campaignNames); err != nil {
			t.Fatal(err)
		}
		for _, name := range campaignNames {
			if counts[name] != 1 {
				t.Errorf("workers=%d: %s built %d times, want exactly 1", workers, name, counts[name])
			}
		}
	}
}

// TestCollectCommObsParallelMatchesSerial exercises the comm stage's
// fan-out in isolation (the campaign test covers it end to end).
func TestCollectCommObsParallelMatchesSerial(t *testing.T) {
	serial, err := testPipeline(1).CollectCommObs(context.Background(), zoo.Build, campaignNames)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := testPipeline(6).CollectCommObs(context.Background(), zoo.Build, campaignNames)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("parallel CollectCommObs differs from serial")
	}
	wantLen := len(campaignNames) * 4 * testPipeline(1).MaxK
	if len(serial) != wantLen {
		t.Errorf("got %d observations, want %d", len(serial), wantLen)
	}
}
