package ceer

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/zoo"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	p, _ := predictor(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Classification identical.
	if len(loaded.Class.Heavy) != len(p.Class.Heavy) {
		t.Errorf("heavy set size %d != %d", len(loaded.Class.Heavy), len(p.Class.Heavy))
	}
	if !eqExact(loaded.LightMedian, p.LightMedian) || !eqExact(loaded.CPUMedian, p.CPUMedian) {
		t.Error("medians changed across roundtrip")
	}

	// Predictions identical for a test CNN across configurations.
	g := zoo.MustBuild("inception-v3", 32)
	for _, m := range gpu.All() {
		for _, k := range []int{1, 2, 4} {
			cfg := cloud.Config{GPU: m, K: k}
			a, err := p.PredictTraining(g, cfg, dataset.ImageNet, cloud.OnDemand)
			if err != nil {
				t.Fatal(err)
			}
			b, err := loaded.PredictTraining(g, cfg, dataset.ImageNet, cloud.OnDemand)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(a.TotalSeconds-b.TotalSeconds) > 1e-9*a.TotalSeconds {
				t.Errorf("%s: prediction changed: %v vs %v", cfg, a.TotalSeconds, b.TotalSeconds)
			}
			if !eqExact(a.CostUSD, b.CostUSD) {
				t.Errorf("%s: cost changed", cfg)
			}
		}
	}

	// A reloaded predictor can also drive the recommender.
	rec, err := loaded.Recommend(g, dataset.ImageNet, cloud.OnDemand, cloud.Configs(4), MinimizeCost)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Cfg.GPU != gpu.T4 || rec.Best.Cfg.K != 1 {
		t.Errorf("reloaded recommendation = %s, want 1xG4", rec.Best.Cfg)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "{nope",
		"wrong version": `{"version": 99}`,
		"old version":   `{"version": 1, "light_median": 1e-6, "cpu_median": 1e-5}`,
		"bad medians":   `{"version": 2, "light_median": 0, "cpu_median": 1}`,
		"unknown device": `{"version": 2, "light_median": 1e-6, "cpu_median": 1e-5,
			"op_models": [{"gpu": "no-such-device", "op": "Conv2D", "model": {"degree":1,"num_features":1,"coef":[0,1],"r2":1,"n":2,"scale":[1]}}]}`,
		"missing model": `{"version": 2, "light_median": 1e-6, "cpu_median": 1e-5,
			"op_models": [{"gpu": "v100", "op": "Conv2D"}]}`,
		"bad comm": `{"version": 2, "light_median": 1e-6, "cpu_median": 1e-5,
			"comm_models": [{"gpu": "v100", "k": 0, "model": {"degree":1,"num_features":1,"coef":[0,1],"r2":1,"n":2,"scale":[1]}}]}`,
		"comm unknown device": `{"version": 2, "light_median": 1e-6, "cpu_median": 1e-5,
			"comm_models": [{"gpu": "no-such-device", "k": 1, "model": {"degree":1,"num_features":1,"coef":[0,1],"r2":1,"n":2,"scale":[1]}}]}`,
	}
	for name, payload := range cases {
		if _, err := Load(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: Load should fail", name)
		}
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	p, _ := predictor(t)
	var a, b bytes.Buffer
	if err := p.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Save output should be deterministic")
	}
	if !strings.Contains(a.String(), "Conv2DBackpropFilter") {
		t.Error("serialized predictor should contain op models")
	}
}

// TestSaveLoadSurvivesRegistryReorder proves persisted models are keyed
// by stable device IDs, not registry positions: loading (and re-saving)
// under a permuted device registration order reproduces the predictor
// exactly.
func TestSaveLoadSurvivesRegistryReorder(t *testing.T) {
	p, _ := predictor(t)
	var orig bytes.Buffer
	if err := p.Save(&orig); err != nil {
		t.Fatal(err)
	}
	// Loading drops the rejected regression candidates, so the reorder
	// comparison is against a predictor loaded under the original order.
	want, err := Load(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	before := gpu.All()
	rev := make([]gpu.ID, len(before))
	for i, id := range before {
		rev[len(before)-1-i] = id
	}
	if err := gpu.ReorderForTest(rev...); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := gpu.ReorderForTest(before...); err != nil {
			t.Fatal(err)
		}
	}()

	loaded, err := Load(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.opModels, want.opModels) {
		t.Error("op models differ after reorder round-trip")
	}
	if !reflect.DeepEqual(loaded.commModels, want.commModels) {
		t.Error("comm models differ after reorder round-trip")
	}
	if !reflect.DeepEqual(loaded.Class, want.Class) {
		t.Error("classification differs after reorder round-trip")
	}
	var again bytes.Buffer
	if err := loaded.Save(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != orig.String() {
		t.Error("re-serialized predictor is not byte-identical under reordered registry")
	}
}

// TestLoadPersistError pins the typed error contract: every load
// failure is a *PersistError carrying the declared file version (0 when
// decoding never reached it) and, for file loads, the source path.
func TestLoadPersistError(t *testing.T) {
	cases := []struct {
		name        string
		payload     string
		wantVersion int
	}{
		{"truncated JSON", `{"version": 2, "light_median": 1e-`, 0},
		{"empty input", ``, 0},
		{"binary garbage", "\x00\x01\x02predictor", 0},
		{"stale version", `{"version": 1, "light_median": 1e-6, "cpu_median": 1e-5}`, 1},
		{"future version", `{"version": 99}`, 99},
		{"corrupt medians", `{"version": 2, "light_median": 0, "cpu_median": 1}`, 2},
		{"unregistered device", `{"version": 2, "light_median": 1e-6, "cpu_median": 1e-5,
			"op_models": [{"gpu": "no-such-device", "op": "Conv2D", "model": {"degree":1,"num_features":1,"coef":[0,1],"r2":1,"n":2,"scale":[1]}}]}`, 2},
		{"degraded without reason", `{"version": 2, "light_median": 1e-6, "cpu_median": 1e-5,
			"degraded": [{"gpu": "v100", "reason": ""}]}`, 2},
		{"degraded unknown device", `{"version": 2, "light_median": 1e-6, "cpu_median": 1e-5,
			"degraded": [{"gpu": "no-such-device", "reason": "x"}]}`, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(c.payload))
			if err == nil {
				t.Fatal("Load should fail")
			}
			var pe *PersistError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %T (%v), want *PersistError", err, err)
			}
			if pe.Version != c.wantVersion {
				t.Errorf("version = %d, want %d", pe.Version, c.wantVersion)
			}
			if pe.Path != "" {
				t.Errorf("stream load should carry no path, got %q", pe.Path)
			}
		})
	}
}

// TestLoadFilePersistError checks that file-based loads carry the path
// in the typed error, for both open failures and corrupt contents.
func TestLoadFilePersistError(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.json")
	_, err := LoadFile(missing)
	var pe *PersistError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T (%v), want *PersistError", err, err)
	}
	if pe.Path != missing {
		t.Errorf("path = %q, want %q", pe.Path, missing)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("open failure should unwrap to os.ErrNotExist, got %v", err)
	}

	corrupt := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(corrupt, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadFile(corrupt)
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T (%v), want *PersistError", err, err)
	}
	if pe.Path != corrupt || pe.Version != 99 {
		t.Errorf("got path=%q version=%d, want path=%q version=99", pe.Path, pe.Version, corrupt)
	}
	if !strings.Contains(err.Error(), corrupt) {
		t.Errorf("message %q should name the file", err.Error())
	}
}

// TestLoadVersionTable pins the version gate: every unsupported
// version is rejected with a message naming the supported list, and
// every supported version decodes.
func TestLoadVersionTable(t *testing.T) {
	minimal := func(v int) string {
		return fmt.Sprintf(`{"version": %d, "light_median": 1e-6, "cpu_median": 1e-5}`, v)
	}
	for _, v := range []int{1, 4, 99} {
		t.Run(fmt.Sprintf("unsupported-v%d", v), func(t *testing.T) {
			_, err := Load(strings.NewReader(minimal(v)))
			if err == nil {
				t.Fatalf("version %d should be rejected", v)
			}
			for _, want := range []string{
				fmt.Sprintf("unsupported predictor version %d", v),
				"supported: 2, 3",
			} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err.Error(), want)
				}
			}
			var pe *PersistError
			if !errors.As(err, &pe) || pe.Version != v {
				t.Errorf("err = %T version %d, want *PersistError carrying %d", err, pe.Version, v)
			}
		})
	}
	for _, v := range supportedVersions {
		t.Run(fmt.Sprintf("supported-v%d", v), func(t *testing.T) {
			if _, err := Load(strings.NewReader(minimal(v))); err != nil {
				t.Errorf("version %d should load: %v", v, err)
			}
		})
	}
}

// TestV2UpgradeRoundTrip is the forward-compatibility journey: a v2
// file (the pre-statistics golden) loads under the v3 code with empty
// statistics, predicts identically to the v3 golden, and re-saves as a
// v3 container without inventing statistics.
func TestV2UpgradeRoundTrip(t *testing.T) {
	v2, err := LoadFile(filepath.Join("testdata", "predictor_seed1_v2.json"))
	if err != nil {
		t.Fatal(err)
	}
	v3, err := LoadFile(filepath.Join("testdata", "predictor_seed1_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, om := range v2.OpModels() {
		if om.Stats != nil {
			t.Fatalf("v2 load invented statistics for %s/%s", om.GPU, om.OpType)
		}
	}
	withStats := 0
	for _, om := range v3.OpModels() {
		if om.Stats != nil {
			withStats++
		}
	}
	if withStats == 0 {
		t.Fatal("v3 load restored no statistics")
	}

	// Same campaign, same coefficients: the upgrade is prediction-invisible.
	g := zoo.MustBuild("inception-v3", 32)
	for _, m := range gpu.All() {
		a, err := v2.PredictIteration(g, m, 2, Full)
		if err != nil {
			t.Fatal(err)
		}
		b, err := v3.PredictIteration(g, m, 2, Full)
		if err != nil {
			t.Fatal(err)
		}
		if !eqExact(a.PerIterSeconds, b.PerIterSeconds) {
			t.Errorf("%s: v2 predicts %v, v3 predicts %v", m, a.PerIterSeconds, b.PerIterSeconds)
		}
	}

	// Re-saving writes the current container version; absent statistics
	// stay absent (omitempty, never fabricated).
	var up bytes.Buffer
	if err := v2.Save(&up); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(up.String(), `"version": 3`) {
		t.Error("re-saved v2 predictor should carry version 3")
	}
	if strings.Contains(up.String(), `"stats"`) {
		t.Error("upgrading a v2 file must not fabricate statistics")
	}
	back, err := Load(bytes.NewReader(up.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range gpu.All() {
		a, err := v2.PredictIteration(g, m, 1, Full)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.PredictIteration(g, m, 1, Full)
		if err != nil {
			t.Fatal(err)
		}
		if !eqExact(a.PerIterSeconds, b.PerIterSeconds) {
			t.Errorf("%s: upgraded round-trip changed prediction: %v vs %v", m, a.PerIterSeconds, b.PerIterSeconds)
		}
	}
	// The upgraded container is itself byte-stable.
	var again bytes.Buffer
	if err := back.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(up.Bytes(), again.Bytes()) {
		t.Error("upgraded container is not byte-stable across a save/load cycle")
	}
}

// TestSaveLoadDegradedRoundtrip proves degraded-device annotations
// survive persistence and that their presence is the only difference
// from a clean predictor's serialization.
func TestSaveLoadDegradedRoundtrip(t *testing.T) {
	p, _ := predictor(t)
	var clean bytes.Buffer
	if err := p.Save(&clean); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.String(), `"degraded"`) {
		t.Fatal("fully-covered predictor must not serialize a degraded field")
	}

	marked, err := Load(bytes.NewReader(clean.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	marked.setDegraded(gpu.M60, "2 campaign cells missing")
	var dirty bytes.Buffer
	if err := marked.Save(&dirty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dirty.String(), `"degraded"`) {
		t.Fatal("degraded predictor must serialize the annotation")
	}
	back, err := Load(bytes.NewReader(dirty.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	reason, ok := back.Degraded(gpu.M60)
	if !ok || reason != "2 campaign cells missing" {
		t.Errorf("degraded annotation lost: %q, %v", reason, ok)
	}
	if got := back.DegradedDevices(); len(got) != 1 || got[0] != gpu.M60 {
		t.Errorf("DegradedDevices = %v, want [m60]", got)
	}
}
