package ceer

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/zoo"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	p, _ := predictor(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Classification identical.
	if len(loaded.Class.Heavy) != len(p.Class.Heavy) {
		t.Errorf("heavy set size %d != %d", len(loaded.Class.Heavy), len(p.Class.Heavy))
	}
	if loaded.LightMedian != p.LightMedian || loaded.CPUMedian != p.CPUMedian {
		t.Error("medians changed across roundtrip")
	}

	// Predictions identical for a test CNN across configurations.
	g := zoo.MustBuild("inception-v3", 32)
	for _, m := range gpu.AllModels() {
		for _, k := range []int{1, 2, 4} {
			cfg := cloud.Config{GPU: m, K: k}
			a, err := p.PredictTraining(g, cfg, dataset.ImageNet, cloud.OnDemand)
			if err != nil {
				t.Fatal(err)
			}
			b, err := loaded.PredictTraining(g, cfg, dataset.ImageNet, cloud.OnDemand)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(a.TotalSeconds-b.TotalSeconds) > 1e-9*a.TotalSeconds {
				t.Errorf("%s: prediction changed: %v vs %v", cfg, a.TotalSeconds, b.TotalSeconds)
			}
			if a.CostUSD != b.CostUSD {
				t.Errorf("%s: cost changed", cfg)
			}
		}
	}

	// A reloaded predictor can also drive the recommender.
	rec, err := loaded.Recommend(g, dataset.ImageNet, cloud.OnDemand, cloud.Configs(4), MinimizeCost)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Cfg.GPU != gpu.T4 || rec.Best.Cfg.K != 1 {
		t.Errorf("reloaded recommendation = %s, want 1xG4", rec.Best.Cfg)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "{nope",
		"wrong version": `{"version": 99}`,
		"bad medians":   `{"version": 1, "light_median": 0, "cpu_median": 1}`,
		"bad family": `{"version": 1, "light_median": 1e-6, "cpu_median": 1e-5,
			"op_models": [{"gpu": "ZZ", "op": "Conv2D", "model": {"degree":1,"num_features":1,"coef":[0,1],"r2":1,"n":2,"scale":[1]}}]}`,
		"missing model": `{"version": 1, "light_median": 1e-6, "cpu_median": 1e-5,
			"op_models": [{"gpu": "P3", "op": "Conv2D"}]}`,
		"bad comm": `{"version": 1, "light_median": 1e-6, "cpu_median": 1e-5,
			"comm_models": [{"gpu": "P3", "k": 0, "model": {"degree":1,"num_features":1,"coef":[0,1],"r2":1,"n":2,"scale":[1]}}]}`,
	}
	for name, payload := range cases {
		if _, err := Load(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: Load should fail", name)
		}
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	p, _ := predictor(t)
	var a, b bytes.Buffer
	if err := p.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Save output should be deterministic")
	}
	if !strings.Contains(a.String(), "Conv2DBackpropFilter") {
		t.Error("serialized predictor should contain op models")
	}
}
