package ceer

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
)

// ErrNotCompiled reports a prediction request outside a
// CompiledPredictor's compiled set — a graph that was not folded or a
// device registered after Compile. Callers typically fall back to the
// folded Predictor path (errors.Is).
var ErrNotCompiled = errors.New("not in the compiled set")

// Class kinds of the compiled per-(device, class) table.
const (
	kindHeavy  uint8 = iota // heavy with a trained model: times holds the regression value
	kindUnseen              // heavy without a model: estimated by the light median, reported
	kindLight               // light GPU op: the light median
	kindCPU                 // CPU op: the CPU median
)

// CompiledPredictor is the serving core compiled from a trained
// Predictor and a fixed set of graphs: every (device, signature class)
// time is evaluated once at compile time into immutable flat arrays,
// so the read path — PredictIteration, Recommend — is a pure
// gather-and-sum over precomputed tables. No mutex, no map lookups,
// and no allocations on the warm path; a CompiledPredictor is
// immutable after Compile and safe for any number of concurrent
// readers. Hot-swap a rebuilt instance atomically through CompiledBox.
//
// Compared to the folded Predictor path (which memoizes per (device,
// signature) under an RWMutex on first use), the compiled path moves
// all model evaluation to build time and dedups signatures across the
// whole graph set: classes shared by several CNNs — the common case in
// a CNN zoo — occupy one table slot total, not one memo fill per
// graph.
//
// IterPrediction.UnseenHeavy values returned by the compiled path
// alias immutable compile-time storage; treat them as read-only.
type CompiledPredictor struct {
	p    *Predictor
	fold *graph.GlobalFold

	// devices holds the compiled device set sorted by ID; degraded
	// carries each device's partial-coverage reason ("" = clean).
	devices  []gpu.ID
	degraded []string

	nd, nc, ng, maxK int

	// kinds and times are the per-(device, class) tables, indexed
	// di*nc+ci: the class kind and the per-instance predicted seconds.
	kinds []uint8
	times []float64

	// unseen holds, per (graph, device) at gi*nd+di, the sorted heavy
	// types lacking a trained model (nil when none) — precomputed so
	// the hot path never appends.
	unseen [][]ops.Type

	// comm holds the precomputed communication overhead per (graph,
	// device, k) at (gi*nd+di)*(maxK+1)+k; hasComm, per (device, k) at
	// di*(maxK+1)+k, records whether a comm model exists there.
	comm    []float64
	hasComm []bool

	buildEvals int
}

// Compile builds the compiled serving core for a trained predictor
// over a fixed set of graphs: it folds the graphs into one global
// signature-class table (graph.FoldAll), batch-evaluates every heavy
// class on every registered device (regress.PredictBatch, one
// struct-of-arrays matrix per (device, op type)), and precomputes the
// per-(graph, device, k) communication terms. Compile-time cost is
// amortized across every subsequent prediction; see Stats.
func Compile(p *Predictor, graphs []*graph.Graph) (*CompiledPredictor, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("ceer: compile with no graphs")
	}
	gf := graph.FoldAll(graphs)
	devices := append([]gpu.ID(nil), gpu.All()...)
	sort.Slice(devices, func(i, j int) bool { return devices[i] < devices[j] })

	c := &CompiledPredictor{
		p:        p,
		fold:     gf,
		devices:  devices,
		degraded: make([]string, len(devices)),
		nd:       len(devices),
		nc:       gf.Len(),
		ng:       gf.NumGraphs(),
	}
	for _, byK := range p.commModels {
		for k := range byK {
			if k > c.maxK {
				c.maxK = k
			}
		}
	}
	classes := gf.Classes()
	c.kinds = make([]uint8, c.nd*c.nc)
	c.times = make([]float64, c.nd*c.nc)
	for di, m := range devices {
		if reason, ok := p.Degraded(m); ok {
			c.degraded[di] = reason
		}
		byType := p.opModels[m]
		base := di * c.nc
		// Classify every class on this device, deferring heavy modeled
		// classes to batched evaluation below.
		for ci := range classes {
			t := classes[ci].Rep.Op.Type
			switch p.Class.Of(t) {
			case ops.HeavyGPU:
				if _, ok := byType[t]; ok {
					c.kinds[base+ci] = kindHeavy
				} else {
					c.kinds[base+ci] = kindUnseen
				}
			case ops.LightGPU:
				c.kinds[base+ci] = kindLight
				c.times[base+ci] = p.LightMedian
			case ops.CPU:
				c.kinds[base+ci] = kindCPU
				c.times[base+ci] = p.CPUMedian
			}
		}
		// Classes are signature-sorted and a signature starts with its
		// op type, so one type's classes are contiguous: evaluate each
		// (device, type) run as one struct-of-arrays batch.
		for start := 0; start < c.nc; {
			if c.kinds[base+start] != kindHeavy {
				start++
				continue
			}
			t := classes[start].Rep.Op.Type
			end := start + 1
			for end < c.nc && c.kinds[base+end] == kindHeavy && classes[end].Rep.Op.Type == t {
				end++
			}
			om := byType[t]
			arity := om.Model().NumFeatures
			feats := make([]float64, 0, (end-start)*arity)
			for ci := start; ci < end; ci++ {
				if len(classes[ci].Features) != arity {
					return nil, fmt.Errorf("ceer: compile: class %q has %d features, %s model wants %d",
						classes[ci].Sig, len(classes[ci].Features), t, arity)
				}
				feats = append(feats, classes[ci].Features...)
			}
			dst := c.times[base+start : base+end]
			om.Model().PredictBatch(dst, feats)
			for i := range dst {
				if dst[i] < 0 {
					dst[i] = 0
				}
			}
			c.buildEvals += end - start
			start = end
		}
	}

	// Per-(graph, device) unseen heavy types, precomputed and sorted so
	// the hot path only hands out shared slices.
	c.unseen = make([][]ops.Type, c.ng*c.nd)
	for gi := 0; gi < c.ng; gi++ {
		for di := 0; di < c.nd; di++ {
			base := di * c.nc
			var types []ops.Type
			for _, pc := range gf.PerGraph(gi) {
				if c.kinds[base+pc.Class] != kindUnseen {
					continue
				}
				t := classes[pc.Class].Rep.Op.Type
				dup := false
				for _, seen := range types {
					if seen == t {
						dup = true
						break
					}
				}
				if !dup {
					types = append(types, t)
				}
			}
			sortTypes(types)
			c.unseen[gi*c.nd+di] = types
		}
	}

	// Communication terms, batched per (device, k) over the graphs'
	// parameter counts (one single-feature struct-of-arrays matrix).
	c.comm = make([]float64, c.ng*c.nd*(c.maxK+1))
	c.hasComm = make([]bool, c.nd*(c.maxK+1))
	params := make([]float64, c.ng)
	for gi := 0; gi < c.ng; gi++ {
		params[gi] = float64(gf.Graph(gi).Params)
	}
	vals := make([]float64, c.ng)
	for di, m := range devices {
		for k := 1; k <= c.maxK; k++ {
			cm, ok := p.commModels[m][k]
			if !ok {
				continue
			}
			c.hasComm[di*(c.maxK+1)+k] = true
			cm.Fit.PredictBatch(vals, params)
			for gi, v := range vals {
				if v < 0 {
					v = 0
				}
				c.comm[(gi*c.nd+di)*(c.maxK+1)+k] = v
			}
			c.buildEvals += c.ng
		}
	}
	return c, nil
}

// deviceIndex returns the compiled index of m, or -1.
//
//hot:path
func (c *CompiledPredictor) deviceIndex(m gpu.ID) int {
	// Linear scan: the device set is small (a handful of registered
	// GPUs) and this avoids a map read on the serving path.
	for i, id := range c.devices {
		if id == m {
			return i
		}
	}
	return -1
}

// classSums gathers graph gi's op-sum on device di from the compiled
// tables: Σ count × table time over the graph's class pairs, with
// median-estimated instances counted for later assembly. This is the
// whole per-prediction compute of the compiled path.
//
//hot:path
func (c *CompiledPredictor) classSums(gi, di int) opSums {
	var s opSums
	base := di * c.nc
	for _, pc := range c.fold.PerGraph(gi) {
		switch c.kinds[base+pc.Class] {
		case kindHeavy:
			s.modeledHeavy += float64(pc.Count) * c.times[base+pc.Class]
		case kindUnseen:
			s.unseenHeavy += pc.Count
		case kindLight:
			s.light += pc.Count
		case kindCPU:
			s.cpu += pc.Count
		}
	}
	s.unseenTypes = c.unseen[gi*c.nd+di]
	return s
}

// assemble builds an IterPrediction from gathered sums plus the
// precomputed communication term, mirroring Predictor.assembleIter.
//
//hot:path
func (c *CompiledPredictor) assemble(gi, di, k int, v Variant, s opSums) (IterPrediction, error) {
	var out IterPrediction
	out.HeavySeconds = s.modeledHeavy
	if v == Full || v == NoComm {
		out.HeavySeconds += float64(s.unseenHeavy) * c.p.LightMedian
		out.LightSeconds = float64(s.light) * c.p.LightMedian
		out.CPUSeconds = float64(s.cpu) * c.p.CPUMedian
	}
	if v == Full || v == HeavyOnly {
		if k < 1 || k > c.maxK || !c.hasComm[di*(c.maxK+1)+k] {
			//lint:ignore allocfree error construction on the failure exit only; the success path never reaches it
			return IterPrediction{}, fmt.Errorf("ceer: no communication model for %s k=%d", c.devices[di].Family(), k)
		}
		out.CommSeconds = c.comm[(gi*c.nd+di)*(c.maxK+1)+k]
	}
	out.PerIterSeconds = out.HeavySeconds + out.LightSeconds + out.CPUSeconds + out.CommSeconds
	if len(s.unseenTypes) > 0 {
		out.UnseenHeavy = s.unseenTypes
	}
	return out, nil
}

// PredictIteration predicts the per-iteration training time of a
// compiled graph on k GPUs of a compiled device — the compiled
// equivalent of Predictor.PredictIteration: a gather-and-sum over the
// flat class table plus one precomputed communication lookup. It
// returns ErrNotCompiled (wrapped) for graphs or devices outside the
// compiled set.
//
//hot:path
func (c *CompiledPredictor) PredictIteration(g *graph.Graph, m gpu.ID, k int, v Variant) (IterPrediction, error) {
	gi := c.fold.GraphIndex(g)
	if gi < 0 {
		//lint:ignore allocfree error construction on the failure exit only; the success path never reaches it
		return IterPrediction{}, fmt.Errorf("ceer: graph %q: %w", g.Name, ErrNotCompiled)
	}
	di := c.deviceIndex(m)
	if di < 0 {
		//lint:ignore allocfree error construction on the failure exit only; the success path never reaches it
		return IterPrediction{}, fmt.Errorf("ceer: device %s: %w", m, ErrNotCompiled)
	}
	return c.assemble(gi, di, k, v, c.classSums(gi, di))
}

// PredictTraining predicts end-to-end training time and cost through
// the compiled tables; see Predictor.PredictTraining.
func (c *CompiledPredictor) PredictTraining(g *graph.Graph, cfg cloud.Config, ds dataset.Dataset, pricing cloud.Pricing) (Prediction, error) {
	if !cfg.Valid() {
		return Prediction{}, fmt.Errorf("ceer: invalid config %s", cfg)
	}
	iter, err := c.PredictIteration(g, cfg.GPU, cfg.K, Full)
	if err != nil {
		return Prediction{}, err
	}
	return c.p.finishPrediction(g, cfg, ds, pricing, iter)
}

// Recommend is the compiled equivalent of Predictor.Recommend: a table
// scan over the candidates with the per-device op-sum gathered once
// per device run. Semantics (degraded preference, constraint handling,
// candidate order) match Predictor.Recommend exactly.
func (c *CompiledPredictor) Recommend(g *graph.Graph, ds dataset.Dataset, pricing cloud.Pricing,
	candidates []cloud.Config, obj Objective, constraints ...Constraint) (Recommendation, error) {
	var rec Recommendation
	if err := c.RecommendInto(&rec, g, ds, pricing, candidates, obj, constraints...); err != nil {
		return Recommendation{}, err
	}
	return rec, nil
}

// RecommendInto is Recommend writing into a caller-owned
// Recommendation, reusing rec.Candidates' capacity so a steady-state
// serving loop recommends with zero allocations. rec is fully
// overwritten.
func (c *CompiledPredictor) RecommendInto(rec *Recommendation, g *graph.Graph, ds dataset.Dataset,
	pricing cloud.Pricing, candidates []cloud.Config, obj Objective, constraints ...Constraint) error {
	if len(candidates) == 0 {
		return fmt.Errorf("ceer: no candidate configurations")
	}
	gi := c.fold.GraphIndex(g)
	if gi < 0 {
		return fmt.Errorf("ceer: graph %q: %w", g.Name, ErrNotCompiled)
	}
	rec.Best = Candidate{}
	rec.Candidates = rec.Candidates[:0]
	bestScore, bestDegradedScore := math.Inf(1), math.Inf(1)
	var bestDegraded Candidate
	found, foundDegraded := false, false
	// Candidate lists group one device's ks together (cloud.Configs
	// order), so caching the last device's gather covers the sweep with
	// one gather per device without any per-call map or scratch table.
	lastDI := -1
	var sums opSums
	for _, cfg := range candidates {
		if !cfg.Valid() {
			return fmt.Errorf("ceer: invalid config %s", cfg)
		}
		di := c.deviceIndex(cfg.GPU)
		if di < 0 {
			return fmt.Errorf("ceer: device %s: %w", cfg.GPU, ErrNotCompiled)
		}
		if di != lastDI {
			sums = c.classSums(gi, di)
			lastDI = di
		}
		degradedReason := c.degraded[di]
		isDegraded := degradedReason != ""
		commMissing := false
		iter, err := c.assemble(gi, di, cfg.K, Full, sums)
		if err != nil {
			if !isDegraded {
				return err
			}
			// A degraded device may lack its comm model for this k:
			// predict without the comm term and disqualify the candidate
			// instead of aborting the sweep (mirrors Predictor.Recommend).
			commMissing = true
			iter, err = c.assemble(gi, di, cfg.K, NoComm, sums)
			if err != nil {
				return err
			}
		}
		pred, err := c.p.finishPrediction(g, cfg, ds, pricing, iter)
		if err != nil {
			return err
		}
		cand := Candidate{Prediction: pred, Feasible: !commMissing, Degraded: degradedReason}
		if cand.Feasible {
			for _, cons := range constraints {
				if !cons(pred) {
					cand.Feasible = false
					break
				}
			}
		}
		if cand.Feasible {
			cand.Score = obj(pred.TotalSeconds, pred.CostUSD)
			switch {
			case !isDegraded && cand.Score < bestScore:
				bestScore = cand.Score
				rec.Best = cand
				found = true
			case isDegraded && cand.Score < bestDegradedScore:
				bestDegradedScore = cand.Score
				bestDegraded = cand
				foundDegraded = true
			}
		}
		rec.Candidates = append(rec.Candidates, cand)
	}
	if !found && foundDegraded {
		rec.Best = bestDegraded
		found = true
	}
	if !found {
		return fmt.Errorf("ceer: no feasible configuration among %d candidates", len(candidates))
	}
	return nil
}

// Predictor returns the trained predictor the tables were compiled
// from.
func (c *CompiledPredictor) Predictor() *Predictor { return c.p }

// CompiledStats sizes the compiled artifact for reporting: how much
// table memory the zoo costs and how much evaluation work compilation
// front-loaded.
type CompiledStats struct {
	// Graphs, Devices, Classes count the compiled dimensions; Pairs is
	// the total gather length across all graph reductions.
	Graphs, Devices, Classes, Pairs int
	// BuildEvals is the number of regression rows evaluated at compile
	// time (heavy classes × devices plus comm cells × graphs) — the
	// work every later prediction skips.
	BuildEvals int
	// TableBytes approximates the resident size of the flat tables
	// (class times + kinds + comm + presence bits + reduction pairs).
	TableBytes int
}

// Stats reports the compiled table's dimensions and build cost.
func (c *CompiledPredictor) Stats() CompiledStats {
	const (
		f64   = 8
		pairB = 16 // graph.ClassCount{int, int}
	)
	return CompiledStats{
		Graphs:     c.ng,
		Devices:    c.nd,
		Classes:    c.nc,
		Pairs:      c.fold.Pairs(),
		BuildEvals: c.buildEvals,
		TableBytes: len(c.times)*f64 + len(c.kinds) + len(c.comm)*f64 + len(c.hasComm) + c.fold.Pairs()*pairB,
	}
}

// CompiledBox atomically publishes a CompiledPredictor to concurrent
// readers — the hot-swap point for serve-mode model reloads. Readers
// Load the current instance and use it for a whole request; a rebuild
// (retrain, new device, new graph set) Compiles off to the side and
// Stores the replacement. Both sides are wait-free; a reader holding
// the old instance keeps reading consistent (immutable) tables until
// it drops the reference.
type CompiledBox struct {
	v atomic.Pointer[CompiledPredictor]
}

// Store publishes c as the current compiled predictor.
func (b *CompiledBox) Store(c *CompiledPredictor) { b.v.Store(c) }

// Load returns the current compiled predictor, or nil before the first
// Store.
func (b *CompiledBox) Load() *CompiledPredictor { return b.v.Load() }
