package ceer

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/zoo"
)

var (
	compiledOnce   sync.Once
	compiledGraphs []*graph.Graph
	compiledCore   *CompiledPredictor
	compiledErr    error
)

// compiled returns a package-shared compiled core over the whole zoo,
// built from the shared trained predictor. The graphs are built once:
// the compiled set is keyed by graph pointer identity, so tests must
// predict through these exact instances.
func compiled(t *testing.T) (*CompiledPredictor, []*graph.Graph) {
	t.Helper()
	p, _ := predictor(t)
	compiledOnce.Do(func() {
		for _, name := range zoo.Names() {
			compiledGraphs = append(compiledGraphs, zoo.MustBuild(name, 32))
		}
		compiledCore, compiledErr = Compile(p, compiledGraphs)
	})
	if compiledErr != nil {
		t.Fatal(compiledErr)
	}
	return compiledCore, compiledGraphs
}

// TestCompiledMatchesFoldedAndNaive is the tentpole correctness pin:
// the compiled gather-and-sum must reproduce both the folded and the
// naive per-node paths on every zoo CNN × every registered device ×
// k ∈ {1,2,4,8}, within 1e-9 relative.
func TestCompiledMatchesFoldedAndNaive(t *testing.T) {
	c, graphs := compiled(t)
	p := c.Predictor()
	for _, g := range graphs {
		for _, m := range gpu.All() {
			for _, k := range []int{1, 2, 4} {
				got, err := c.PredictIteration(g, m, k, Full)
				if err != nil {
					t.Fatalf("%s/%s/k=%d compiled: %v", g.Name, m, k, err)
				}
				folded, err := p.PredictIteration(g, m, k, Full)
				if err != nil {
					t.Fatalf("%s/%s/k=%d folded: %v", g.Name, m, k, err)
				}
				naive, err := p.PredictIterationUnfolded(g, m, k, Full)
				if err != nil {
					t.Fatalf("%s/%s/k=%d naive: %v", g.Name, m, k, err)
				}
				checkIterEqual(t, g.Name+"/"+string(m)+"/compiled-vs-folded", got, folded)
				checkIterEqual(t, g.Name+"/"+string(m)+"/compiled-vs-naive", got, naive)
			}
			// k=8 exceeds the trained comm range: NoComm still compares,
			// Full must fail on the compiled path like on the others.
			got, err := c.PredictIteration(g, m, 8, NoComm)
			if err != nil {
				t.Fatalf("%s/%s/k=8 compiled no-comm: %v", g.Name, m, err)
			}
			naive, err := p.PredictIterationUnfolded(g, m, 8, NoComm)
			if err != nil {
				t.Fatalf("%s/%s/k=8 naive no-comm: %v", g.Name, m, err)
			}
			checkIterEqual(t, g.Name+"/"+string(m)+"/k=8", got, naive)
			if _, err := c.PredictIteration(g, m, 8, Full); err == nil {
				t.Errorf("%s/%s: compiled Full at untrained k=8 should error", g.Name, m)
			} else if !strings.Contains(err.Error(), "no communication model") {
				t.Errorf("%s/%s: compiled k=8 error %q, want a no-communication-model error", g.Name, m, err)
			}
		}
	}
}

// TestCompiledVariantsMatchFolded covers the ablation assembly through
// the compiled tables.
func TestCompiledVariantsMatchFolded(t *testing.T) {
	c, graphs := compiled(t)
	p := c.Predictor()
	for _, g := range graphs[:2] {
		for _, v := range []Variant{Full, NoComm, HeavyOnly, HeavyOnlyNoComm} {
			got, err := c.PredictIteration(g, gpu.V100, 2, v)
			if err != nil {
				t.Fatal(err)
			}
			folded, err := p.PredictIteration(g, gpu.V100, 2, v)
			if err != nil {
				t.Fatal(err)
			}
			checkIterEqual(t, g.Name+"/"+v.String(), got, folded)
		}
	}
}

// TestCompiledRecommendMatchesPredictor requires identical
// recommendations from the compiled table scan and the folded
// recommender: same winner, same feasibility, same candidate order,
// predictions within tolerance.
func TestCompiledRecommendMatchesPredictor(t *testing.T) {
	c, graphs := compiled(t)
	p := c.Predictor()
	cands := cloud.Configs(4)
	for _, g := range graphs {
		for _, obj := range []Objective{MinimizeCost, MinimizeTime} {
			cons := []Constraint{MaxHourlyBudget(20, 0), FitsGPUMemory(g)}
			got, err := c.Recommend(g, dataset.ImageNetSubset6400, cloud.OnDemand, cands, obj, cons...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := p.Recommend(g, dataset.ImageNetSubset6400, cloud.OnDemand, cands, obj, cons...)
			if err != nil {
				t.Fatal(err)
			}
			if got.Best.Cfg != want.Best.Cfg {
				t.Errorf("%s: compiled picks %s, folded picks %s", g.Name, got.Best.Cfg, want.Best.Cfg)
			}
			if got.Best.Degraded != want.Best.Degraded {
				t.Errorf("%s: degraded label differs: %q vs %q", g.Name, got.Best.Degraded, want.Best.Degraded)
			}
			if len(got.Candidates) != len(want.Candidates) {
				t.Fatalf("%s: candidate counts differ: %d vs %d", g.Name, len(got.Candidates), len(want.Candidates))
			}
			for i := range got.Candidates {
				gc, wc := got.Candidates[i], want.Candidates[i]
				if gc.Cfg != wc.Cfg || gc.Feasible != wc.Feasible || gc.Degraded != wc.Degraded {
					t.Errorf("%s: candidate %d differs: %s/%v/%q vs %s/%v/%q",
						g.Name, i, gc.Cfg, gc.Feasible, gc.Degraded, wc.Cfg, wc.Feasible, wc.Degraded)
				}
				if d := relDiff(gc.TotalSeconds, wc.TotalSeconds); d > equivTol {
					t.Errorf("%s %s: TotalSeconds %v vs %v (rel diff %.2e)",
						g.Name, gc.Cfg, gc.TotalSeconds, wc.TotalSeconds, d)
				}
				if d := relDiff(gc.CostUSD, wc.CostUSD); d > equivTol {
					t.Errorf("%s %s: CostUSD %v vs %v (rel diff %.2e)",
						g.Name, gc.Cfg, gc.CostUSD, wc.CostUSD, d)
				}
			}
		}
	}
}

// TestCompiledPredictTrainingMatches spot-checks the end-to-end
// prediction (iterations, time, cost) through the compiled path.
func TestCompiledPredictTrainingMatches(t *testing.T) {
	c, graphs := compiled(t)
	p := c.Predictor()
	cfg := cloud.Config{GPU: gpu.V100, K: 4}
	for _, g := range graphs {
		got, err := c.PredictTraining(g, cfg, dataset.ImageNet, cloud.OnDemand)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.PredictTraining(g, cfg, dataset.ImageNet, cloud.OnDemand)
		if err != nil {
			t.Fatal(err)
		}
		if got.Iterations != want.Iterations || got.CNN != want.CNN || got.Cfg != want.Cfg {
			t.Errorf("%s: metadata differs: %+v vs %+v", g.Name, got, want)
		}
		if d := relDiff(got.TotalSeconds, want.TotalSeconds); d > equivTol {
			t.Errorf("%s: TotalSeconds %v vs %v", g.Name, got.TotalSeconds, want.TotalSeconds)
		}
		if d := relDiff(got.CostUSD, want.CostUSD); d > equivTol {
			t.Errorf("%s: CostUSD %v vs %v", g.Name, got.CostUSD, want.CostUSD)
		}
	}
}

// TestCompiledNotCompiled pins the escape hatch: graphs and devices
// outside the compiled set return ErrNotCompiled (errors.Is), so
// callers can fall back to the folded path.
func TestCompiledNotCompiled(t *testing.T) {
	c, graphs := compiled(t)
	rebuilt := zoo.MustBuild(graphs[0].Name, 32) // same shape, different pointer
	if _, err := c.PredictIteration(rebuilt, gpu.V100, 1, Full); !errors.Is(err, ErrNotCompiled) {
		t.Errorf("rebuilt graph: err = %v, want ErrNotCompiled", err)
	}
	if _, err := c.PredictIteration(graphs[0], gpu.ID("no-such-device"), 1, Full); !errors.Is(err, ErrNotCompiled) {
		t.Errorf("unknown device: err = %v, want ErrNotCompiled", err)
	}
	var rec Recommendation
	err := c.RecommendInto(&rec, rebuilt, dataset.ImageNet, cloud.OnDemand,
		cloud.Configs(4), MinimizeCost)
	if !errors.Is(err, ErrNotCompiled) {
		t.Errorf("RecommendInto on rebuilt graph: err = %v, want ErrNotCompiled", err)
	}
}

// TestCompiledAllocFree pins the compiled hot path at zero allocations:
// PredictIteration always (no warm-up needed — there is no memo to
// fill), and RecommendInto once its Candidates buffer has capacity.
func TestCompiledAllocFree(t *testing.T) {
	c, graphs := compiled(t)
	g := graphs[0]
	var err error
	n := testing.AllocsPerRun(100, func() {
		_, err = c.PredictIteration(g, gpu.V100, 4, Full)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("compiled PredictIteration allocates %v per call, want 0", n)
	}

	cands := cloud.Configs(4)
	var rec Recommendation
	if err := c.RecommendInto(&rec, g, dataset.ImageNet, cloud.OnDemand, cands, MinimizeCost); err != nil {
		t.Fatal(err)
	}
	n = testing.AllocsPerRun(100, func() {
		err = c.RecommendInto(&rec, g, dataset.ImageNet, cloud.OnDemand, cands, MinimizeCost)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("compiled RecommendInto allocates %v per sweep, want 0", n)
	}
}

// TestCompiledStats sanity-checks the reported table dimensions.
func TestCompiledStats(t *testing.T) {
	c, graphs := compiled(t)
	s := c.Stats()
	if s.Graphs != len(graphs) {
		t.Errorf("Stats.Graphs = %d, want %d", s.Graphs, len(graphs))
	}
	if s.Devices != len(gpu.All()) {
		t.Errorf("Stats.Devices = %d, want %d", s.Devices, len(gpu.All()))
	}
	if s.Classes <= 0 || s.Pairs < s.Graphs || s.BuildEvals <= 0 || s.TableBytes <= 0 {
		t.Errorf("implausible stats: %+v", s)
	}
	t.Logf("compiled stats: %+v", s)
}

// TestCompiledBoxHotSwapRace hammers the compiled read path from 8
// goroutines while the table is rebuilt and atomically swapped — the
// serve-mode reload scenario. Run under -race (make race), this proves
// the immutable-table + atomic-pointer contract: readers never observe
// a partially built table.
func TestCompiledBoxHotSwapRace(t *testing.T) {
	c, graphs := compiled(t)
	p := c.Predictor()

	var box CompiledBox
	box.Store(c)

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			g := graphs[r%len(graphs)]
			devs := gpu.All()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cur := box.Load()
				iter, err := cur.PredictIteration(g, devs[i%len(devs)], 1+i%4, Full)
				if err != nil {
					errCh <- err
					return
				}
				if !(iter.PerIterSeconds > 0) {
					errCh <- errors.New("non-positive prediction under swap")
					return
				}
			}
		}(r)
	}
	// Rebuild and hot-swap the table repeatedly under the readers.
	for i := 0; i < 5; i++ {
		fresh, err := Compile(p, graphs)
		if err != nil {
			t.Fatal(err)
		}
		box.Store(fresh)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
