package ceer

// The observe→predict→calibrate loop. A Calibrator consumes live op
// timing observations (trace.Obs), folds each into the matching
// per-(device, op type) sufficient statistics as a rank-1 update,
// tracks the model's live residuals through the drift statistics
// (internal/drift), and — when a cell drifts or its refit interval
// elapses — re-solves that cell's model from the accumulated
// statistics and publishes a recalibrated predictor. Publication is
// copy-on-write: the served Predictor is never mutated; a refit clones
// it with the one op model replaced (and a fresh memo), and, when a
// CompiledBox is bound, compiles and atomically hot-swaps the serving
// tables so concurrent readers never observe a half-updated model.
//
// Everything is deterministic: the same observation sequence against
// the same starting predictor produces the same refits, the same
// coefficients, and the same report, byte for byte.

import (
	"fmt"
	"io"
	"sort"

	"ceer/internal/drift"
	"ceer/internal/faults"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
	"ceer/internal/regress"
	"ceer/internal/trace"
)

// CalibrationPolicy fixes the calibration loop's thresholds.
type CalibrationPolicy struct {
	// Drift holds the windowed drift thresholds.
	Drift drift.Policy
	// RefitEvery forces a refit after this many applied observations
	// per cell even without drift (0 disables scheduled refits; drift
	// still triggers them).
	RefitEvery int
	// MinRefitObs is the minimum accumulated observation count before
	// a cell may refit; values below the model's parameter count are
	// raised to it (a solve needs at least that many).
	MinRefitObs int
}

// DefaultCalibrationPolicy pairs the default drift thresholds with
// drift-triggered refits only.
func DefaultCalibrationPolicy() CalibrationPolicy {
	return CalibrationPolicy{Drift: drift.DefaultPolicy()}
}

// Validate rejects unusable policies.
func (p CalibrationPolicy) Validate() error {
	if err := p.Drift.Validate(); err != nil {
		return err
	}
	if p.RefitEvery < 0 {
		return fmt.Errorf("ceer: calibration RefitEvery %d must be non-negative", p.RefitEvery)
	}
	if p.MinRefitObs < 0 {
		return fmt.Errorf("ceer: calibration MinRefitObs %d must be non-negative", p.MinRefitObs)
	}
	return nil
}

// calibKey identifies one calibration cell.
type calibKey struct {
	gpu gpu.ID
	op  ops.Type
}

// calibCell is the mutable calibration state of one (device, op type)
// model.
type calibCell struct {
	stats      *regress.SuffStats
	applied    int // observations folded into this cell
	sinceRefit int
	refits     int
	// driftEvents counts entries into the drifted state; firstDrift is
	// the 1-based applied index at the first entry (0 = never).
	driftEvents int
	firstDrift  int
	inDrift     bool
	last        drift.Verdict
}

// Calibrator drives the observe→predict→calibrate loop over one
// predictor. Not safe for concurrent use: observations are a single
// ordered stream (concurrent readers of the published predictor are
// fine — that is the CompiledBox contract).
type Calibrator struct {
	pol  CalibrationPolicy
	pred *Predictor

	box    *CompiledBox
	graphs []*graph.Graph

	cells map[calibKey]*calibCell

	seen             int
	applied          int
	skippedClass     int
	skippedUnmodeled int
	skippedShape     int
	dropped          int
	refits           int
	failedRefits     int
	swaps            int
}

// NewCalibrator wraps a trained predictor for calibration.
func NewCalibrator(p *Predictor, pol CalibrationPolicy) (*Calibrator, error) {
	if p == nil {
		return nil, fmt.Errorf("ceer: calibrating a nil predictor")
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	return &Calibrator{pol: pol, pred: p, cells: make(map[calibKey]*calibCell)}, nil
}

// BindBox attaches a hot-swap target: after every successful refit the
// recalibrated predictor is compiled over the given graphs and Stored
// into the box. The box receives the initial compilation immediately,
// so readers have tables before the first observation arrives.
func (c *Calibrator) BindBox(box *CompiledBox, graphs []*graph.Graph) error {
	cp, err := Compile(c.pred, graphs)
	if err != nil {
		return err
	}
	c.box = box
	c.graphs = graphs
	box.Store(cp)
	return nil
}

// Predictor returns the current (latest recalibrated) predictor.
func (c *Calibrator) Predictor() *Predictor { return c.pred }

// cell returns (creating on first touch) the calibration state for an
// op model, seeded from the model's persisted training statistics when
// present (a v3 predictor) or an empty accumulator of the model's
// shape otherwise (v2).
func (c *Calibrator) cell(om *OpModel) (*calibCell, error) {
	key := calibKey{om.GPU, om.OpType}
	if cl, ok := c.cells[key]; ok {
		return cl, nil
	}
	var st *regress.SuffStats
	var err error
	if om.Stats != nil {
		// Clone through the codec: calibration must not mutate the
		// accumulator owned by the (possibly still serving) predictor.
		st, err = regress.RestoreSuffStats(om.Stats.State())
	} else {
		st, err = regress.StatsForModel(om.Model())
	}
	if err != nil {
		return nil, fmt.Errorf("ceer: seeding calibration stats for %s/%s: %w", om.GPU, om.OpType, err)
	}
	st.SetResidualWindowCap(c.pol.Drift.Window)
	st.ResetResidualWindow()
	cl := &calibCell{stats: st}
	c.cells[key] = cl
	return cl, nil
}

// Calibrate folds one observation into the loop: residual tracking,
// rank-1 statistics update, drift evaluation, and (when triggered) a
// refit plus hot-swap. Non-heavy and unmodeled observations are
// counted and skipped — the loop only maintains models that exist.
func (c *Calibrator) Calibrate(o trace.Obs) error {
	c.seen++
	if err := o.Validate(); err != nil {
		return err
	}
	if c.pred.Class.Of(o.Op) != ops.HeavyGPU {
		c.skippedClass++
		return nil
	}
	om, ok := c.pred.OpModelFor(o.GPU, o.Op)
	if !ok {
		c.skippedUnmodeled++
		return nil
	}
	model := om.Model()
	if len(o.Features) != model.NumFeatures {
		c.skippedShape++
		return nil
	}
	cl, err := c.cell(om)
	if err != nil {
		return err
	}

	// Observe: residual of the live model, clamped like the serving
	// path clamps.
	pred := model.Predict(o.Features)
	if pred < 0 {
		pred = 0
	}
	cl.stats.AddResidual(pred, o.Seconds)
	cl.stats.Add(o.Features, o.Seconds)
	cl.applied++
	cl.sinceRefit++
	c.applied++

	// Judge.
	v := drift.Evaluate(c.pol.Drift, cl.stats)
	cl.last = v
	if v.Drifted && !cl.inDrift {
		cl.inDrift = true
		cl.driftEvents++
		if cl.firstDrift == 0 {
			cl.firstDrift = cl.applied
		}
	}
	if !v.Drifted {
		cl.inDrift = false
	}

	// Refit when drifted or scheduled, once enough data accumulated.
	due := v.Drifted || (c.pol.RefitEvery > 0 && cl.sinceRefit >= c.pol.RefitEvery)
	minObs := c.pol.MinRefitObs
	if minObs < cl.stats.NumParams() {
		minObs = cl.stats.NumParams()
	}
	if !due || cl.stats.N() < minObs {
		return nil
	}
	return c.refit(om, cl)
}

// refit re-solves one cell's model from its accumulated statistics and
// publishes the recalibrated predictor.
func (c *Calibrator) refit(om *OpModel, cl *calibCell) error {
	model, err := cl.stats.Solve()
	if err != nil {
		// A singular accumulation cannot produce a better model; keep
		// serving the current one and try again as data arrives.
		c.failedRefits++
		cl.sinceRefit = 0
		return nil
	}
	snap := cl.stats.State()
	stats, err := regress.RestoreSuffStats(snap)
	if err != nil {
		return fmt.Errorf("ceer: snapshotting recalibrated stats for %s/%s: %w", om.GPU, om.OpType, err)
	}
	next := &OpModel{
		GPU:       om.GPU,
		OpType:    om.OpType,
		Selection: &regress.Selection{Chosen: model},
		TrainObs:  cl.stats.N(),
		Stats:     stats,
	}
	c.pred = c.pred.withOpModel(next)
	cl.refits++
	cl.sinceRefit = 0
	cl.inDrift = false
	cl.stats.ResetResidualWindow()
	cl.last = drift.Verdict{}
	c.refits++
	if c.box != nil {
		cp, err := Compile(c.pred, c.graphs)
		if err != nil {
			return fmt.Errorf("ceer: compiling recalibrated predictor: %w", err)
		}
		c.box.Store(cp)
		c.swaps++
	}
	return nil
}

// withOpModel returns a copy-on-write clone of the predictor with one
// op model replaced. The clone gets fresh op-model maps and an empty
// memo (the replaced model invalidates memoized predictions for its
// device); classification, comm models, medians, and degraded flags
// are shared — they are immutable after training.
func (p *Predictor) withOpModel(next *OpModel) *Predictor {
	q := &Predictor{
		Class:       p.Class,
		opModels:    make(map[gpu.ID]map[ops.Type]*OpModel, len(p.opModels)),
		commModels:  p.commModels,
		LightMedian: p.LightMedian,
		CPUMedian:   p.CPUMedian,
		degraded:    p.degraded,
	}
	for m, byType := range p.opModels {
		inner := make(map[ops.Type]*OpModel, len(byType))
		for t, om := range byType {
			inner[t] = om
		}
		q.opModels[m] = inner
	}
	if q.opModels[next.GPU] == nil {
		q.opModels[next.GPU] = make(map[ops.Type]*OpModel)
	}
	q.opModels[next.GPU][next.OpType] = next
	return q
}

// Replay streams a JSONL observation log through the calibrator. A
// non-nil injector subjects each observation to deterministic fault
// injection (stage "calibrate", the observation's 1-based index as K):
// transient and permanent faults drop that observation — the loop
// degrades gracefully, counting the loss — while a preemption aborts
// the replay with the injected error.
func (c *Calibrator) Replay(r io.Reader, inj *faults.Injector) error {
	or := trace.NewObsReader(r)
	idx := 0
	for {
		o, err := or.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		idx++
		if inj != nil {
			fop := faults.Op{Stage: "calibrate", CNN: o.CNN, Device: string(o.GPU), K: idx, Attempt: 1}
			if _, ferr := inj.Inject(fop); ferr != nil {
				if faults.IsPreempted(ferr) {
					return ferr
				}
				c.seen++
				c.dropped++
				continue
			}
		}
		if err := c.Calibrate(o); err != nil {
			return err
		}
	}
}

// CellReport is the per-(device, op type) slice of a CalibrationReport.
type CellReport struct {
	GPU    gpu.ID   `json:"gpu"`
	OpType ops.Type `json:"op"`
	// Applied counts observations folded into the cell; TrainObs is
	// the accumulator's total (training seed plus applied).
	Applied  int `json:"applied"`
	TrainObs int `json:"train_obs"`
	// Refits counts re-solves; DriftEvents counts entries into the
	// drifted state; FirstDriftObs is the 1-based applied index at the
	// first drift onset (0 = never drifted).
	Refits        int `json:"refits"`
	DriftEvents   int `json:"drift_events"`
	FirstDriftObs int `json:"first_drift_obs"`
	// Drifted, MAPE, MaxSignRun, WindowFill snapshot the latest drift
	// verdict.
	Drifted    bool    `json:"drifted"`
	MAPE       float64 `json:"mape"`
	MaxSignRun int     `json:"max_sign_run"`
	WindowFill int     `json:"window_fill"`
}

// CalibrationReport is the structured outcome of a calibration run.
type CalibrationReport struct {
	// Observations counts every record offered; Applied the ones folded
	// into a cell; the Skipped counters the ones ignored by class,
	// missing model, or feature arity; Dropped the ones lost to
	// injected faults.
	Observations     int `json:"observations"`
	Applied          int `json:"applied"`
	SkippedClass     int `json:"skipped_class"`
	SkippedUnmodeled int `json:"skipped_unmodeled"`
	SkippedShape     int `json:"skipped_shape"`
	Dropped          int `json:"dropped"`
	// Refits and FailedRefits count re-solves across all cells; Swaps
	// counts CompiledBox publications.
	Refits       int `json:"refits"`
	FailedRefits int `json:"failed_refits"`
	Swaps        int `json:"swaps"`
	// Cells reports every touched cell, sorted by (device, op type).
	Cells []CellReport `json:"cells"`
}

// Report snapshots the calibration state. Cells are sorted by (device
// ID, op type), so the report is deterministic.
func (c *Calibrator) Report() CalibrationReport {
	rep := CalibrationReport{
		Observations:     c.seen,
		Applied:          c.applied,
		SkippedClass:     c.skippedClass,
		SkippedUnmodeled: c.skippedUnmodeled,
		SkippedShape:     c.skippedShape,
		Dropped:          c.dropped,
		Refits:           c.refits,
		FailedRefits:     c.failedRefits,
		Swaps:            c.swaps,
	}
	for key, cl := range c.cells {
		rep.Cells = append(rep.Cells, CellReport{
			GPU:           key.gpu,
			OpType:        key.op,
			Applied:       cl.applied,
			TrainObs:      cl.stats.N(),
			Refits:        cl.refits,
			DriftEvents:   cl.driftEvents,
			FirstDriftObs: cl.firstDrift,
			Drifted:       cl.last.Drifted,
			MAPE:          cl.last.MAPE,
			MaxSignRun:    cl.last.MaxSignRun,
			WindowFill:    cl.last.WindowFill,
		})
	}
	sort.Slice(rep.Cells, func(i, j int) bool {
		if rep.Cells[i].GPU != rep.Cells[j].GPU {
			return rep.Cells[i].GPU < rep.Cells[j].GPU
		}
		return rep.Cells[i].OpType < rep.Cells[j].OpType
	})
	return rep
}

// Render writes the report as deterministic plain text.
func (r CalibrationReport) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "calibration: %d observations, %d applied, %d skipped (%d class, %d unmodeled, %d shape), %d dropped\n",
		r.Observations, r.Applied, r.SkippedClass+r.SkippedUnmodeled+r.SkippedShape,
		r.SkippedClass, r.SkippedUnmodeled, r.SkippedShape, r.Dropped); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "refits: %d (%d failed), hot-swaps: %d\n", r.Refits, r.FailedRefits, r.Swaps); err != nil {
		return err
	}
	for _, cl := range r.Cells {
		status := "ok"
		if cl.Drifted {
			status = "DRIFTED"
		}
		// The stable registry ID, not the marketing name: reports must
		// key devices the way the persisted predictor does.
		if _, err := fmt.Fprintf(w, "%-6s %-22s %-7s applied=%d refits=%d drift_events=%d first_drift=%d mape=%.4f sign_run=%d window=%d train_obs=%d\n",
			string(cl.GPU), cl.OpType, status, cl.Applied, cl.Refits, cl.DriftEvents, cl.FirstDriftObs,
			cl.MAPE, cl.MaxSignRun, cl.WindowFill, cl.TrainObs); err != nil {
			return err
		}
	}
	return nil
}
