package ceer

import (
	"fmt"
	"math"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/graph"
)

// Objective scores a (training time, training cost) pair; the
// recommender minimizes it (Section IV-D's Obj(T, C)).
type Objective func(totalSeconds, costUSD float64) float64

// MinimizeTime is the pure-performance objective.
func MinimizeTime(t, _ float64) float64 { return t }

// MinimizeCost is the pure-cost objective.
func MinimizeCost(_, c float64) float64 { return c }

// WeightedObjective blends normalized time and cost with weight w on
// time (0 ≤ w ≤ 1); normalizers should be representative scales.
func WeightedObjective(w, timeScale, costScale float64) Objective {
	return func(t, c float64) float64 {
		return w*t/timeScale + (1-w)*c/costScale
	}
}

// Constraint accepts or rejects a candidate prediction (budget caps).
type Constraint func(pred Prediction) bool

// MaxHourlyBudget rejects configurations whose hourly price exceeds the
// budget (with an optional slack matching the paper's trivially-violated
// budgets in Figure 9: "+6 cents for P3").
func MaxHourlyBudget(usdPerHour, slack float64) Constraint {
	return func(p Prediction) bool { return p.HourlyUSD <= usdPerHour+slack }
}

// MaxTotalBudget rejects configurations whose predicted training cost
// exceeds the budget (Figure 10's $10 cap).
func MaxTotalBudget(usd float64) Constraint {
	return func(p Prediction) bool { return p.CostUSD <= usd }
}

// FitsGPUMemory rejects configurations whose per-GPU training footprint
// (weights + optimizer state + retained activations) exceeds the GPU
// model's memory. Under data parallelism every GPU holds a full model
// replica (Section II), so the per-GPU footprint is independent of k.
func FitsGPUMemory(g *graph.Graph) Constraint {
	need := g.EstimateMemory().TotalBytes()
	return func(p Prediction) bool {
		dev, ok := gpu.Lookup(p.Cfg.GPU)
		if !ok {
			return false
		}
		return need <= int64(dev.MemoryGB)*1e9
	}
}

// Candidate pairs a configuration with its prediction and feasibility.
type Candidate struct {
	Prediction
	// Feasible reports whether every constraint accepted the candidate.
	Feasible bool
	// Score is the objective value (only meaningful when feasible).
	Score float64
	// Degraded explains why the candidate's device trained on
	// incomplete campaign coverage; empty for clean devices.
	Degraded string
}

// Recommendation is the outcome of a recommender run.
type Recommendation struct {
	// Best is the feasible candidate with the minimal objective.
	// Candidates on cleanly-covered devices always win over degraded
	// ones; a degraded Best (Best.Degraded != "") means no clean
	// feasible candidate existed.
	Best Candidate
	// Candidates lists every evaluated configuration (feasible or not)
	// in the order given.
	Candidates []Candidate
}

// Recommend evaluates every candidate configuration for training the
// CNN over the dataset and returns the feasible one minimizing the
// objective — the runtime loop of Section IV-D. It returns an error if
// no candidate is feasible.
//
// Candidates on devices with degraded (partial-coverage) training data
// are labeled and only win when no cleanly-covered feasible candidate
// exists. A degraded device missing its communication model entirely
// is predicted without the comm term and marked infeasible rather than
// failing the sweep.
//
// The sweep hoists the k-independent op-sum out of the per-k loop: the
// graph's fold is costed once per distinct device (only the
// communication term of Eq. (2) depends on k), so sweeping devices × k
// costs one fold evaluation per device plus one comm-model evaluation
// per candidate.
func (p *Predictor) Recommend(g *graph.Graph, ds dataset.Dataset, pricing cloud.Pricing,
	candidates []cloud.Config, obj Objective, constraints ...Constraint) (Recommendation, error) {
	if len(candidates) == 0 {
		return Recommendation{}, fmt.Errorf("ceer: no candidate configurations")
	}
	rec := Recommendation{}
	bestScore, bestDegradedScore := math.Inf(1), math.Inf(1)
	var bestDegraded Candidate
	found, foundDegraded := false, false
	sumsByGPU := make(map[gpu.ID]opSums, 4)
	for _, cfg := range candidates {
		if !cfg.Valid() {
			return Recommendation{}, fmt.Errorf("ceer: invalid config %s", cfg)
		}
		sums, ok := sumsByGPU[cfg.GPU]
		if !ok {
			sums = p.foldSums(g, cfg.GPU)
			sumsByGPU[cfg.GPU] = sums
		}
		degradedReason, isDegraded := p.Degraded(cfg.GPU)
		commMissing := false
		iter, err := p.assembleIter(g, cfg.GPU, cfg.K, Full, sums)
		if err != nil {
			if !isDegraded {
				return Recommendation{}, err
			}
			// A degraded device may lack its comm model for this k:
			// predict without the comm term and disqualify the candidate
			// instead of aborting the sweep.
			commMissing = true
			iter, err = p.assembleIter(g, cfg.GPU, cfg.K, NoComm, sums)
			if err != nil {
				return Recommendation{}, err
			}
		}
		pred, err := p.finishPrediction(g, cfg, ds, pricing, iter)
		if err != nil {
			return Recommendation{}, err
		}
		cand := Candidate{Prediction: pred, Feasible: !commMissing, Degraded: degradedReason}
		if cand.Feasible {
			for _, c := range constraints {
				if !c(pred) {
					cand.Feasible = false
					break
				}
			}
		}
		if cand.Feasible {
			cand.Score = obj(pred.TotalSeconds, pred.CostUSD)
			switch {
			case !isDegraded && cand.Score < bestScore:
				bestScore = cand.Score
				rec.Best = cand
				found = true
			case isDegraded && cand.Score < bestDegradedScore:
				bestDegradedScore = cand.Score
				bestDegraded = cand
				foundDegraded = true
			}
		}
		rec.Candidates = append(rec.Candidates, cand)
	}
	if !found && foundDegraded {
		rec.Best = bestDegraded
		found = true
	}
	if !found {
		return rec, fmt.Errorf("ceer: no feasible configuration among %d candidates", len(candidates))
	}
	return rec, nil
}
