// Package ceer implements the paper's primary contribution: the Ceer
// model-driven predictor of CNN training time and cost on cloud GPU
// instances (Section IV).
//
// Ceer is trained purely on op-level profiles and end-to-end
// measurements of the 8 training-set CNNs. Its components are:
//
//   - an empirical heavy/light classification of GPU operation types by
//     mean compute time on the P2 (K80) instance (threshold 0.5 ms);
//   - one regression model per (GPU model, heavy operation type)
//     relating compute time to the op's input sizes, with automatic
//     linear-vs-quadratic selection (Section IV-B);
//   - a single GPU-, CNN-, and operation-oblivious sample-median
//     estimate for light GPU ops and another for CPU ops;
//   - a per-(GPU model, GPU count) linear model of the per-iteration
//     communication overhead as a function of the CNN's trainable
//     parameter count (Section IV-C);
//   - Eq. (2): per-iteration time = S_GPU(CNN) + Σᵢ t_GPU,op(inputᵢ),
//     scaled by D/(k·B) iterations, and cost = time × hourly price;
//   - an objective-driven recommender over candidate configurations
//     (Section IV-D).
package ceer

import (
	"fmt"

	"ceer/internal/gpu"
	"ceer/internal/ops"
	"ceer/internal/trace"
)

// HeavyThresholdSeconds is the paper's heavy/light boundary: operations
// whose mean compute time on the P2 instance is below 0.5 ms are light.
const HeavyThresholdSeconds = 0.5e-3

// ThresholdGPU is the GPU model on which the threshold is evaluated.
const ThresholdGPU = gpu.K80

// Classification is the empirically derived partition of operation
// types observed in the training data.
type Classification struct {
	// Heavy, Light, and CPUOps partition the observed op types.
	Heavy  map[ops.Type]bool
	Light  map[ops.Type]bool
	CPUOps map[ops.Type]bool
	// MeanOnThresholdGPU records the evidence: mean compute time per op
	// type on the threshold GPU.
	MeanOnThresholdGPU map[ops.Type]float64
}

// Classify derives the heavy/light/CPU partition from a profile bundle.
// CPU residency comes from the framework (the op catalog); GPU ops are
// split by their mean time on the threshold GPU, exactly as in
// Section III-A.
func Classify(b *trace.Bundle) (*Classification, error) {
	means := b.MeanTimeByType(ThresholdGPU)
	if len(means) == 0 {
		return nil, fmt.Errorf("ceer: no %s profiles in bundle; cannot classify", ThresholdGPU.Family())
	}
	c := &Classification{
		Heavy:              make(map[ops.Type]bool),
		Light:              make(map[ops.Type]bool),
		CPUOps:             make(map[ops.Type]bool),
		MeanOnThresholdGPU: means,
	}
	for t, mean := range means {
		meta, ok := ops.Lookup(t)
		if !ok {
			return nil, fmt.Errorf("ceer: profiled op type %q not in catalog", t)
		}
		switch {
		case meta.Class == ops.CPU:
			c.CPUOps[t] = true
		case mean >= HeavyThresholdSeconds:
			c.Heavy[t] = true
		default:
			c.Light[t] = true
		}
	}
	return c, nil
}

// Of returns the class assigned to an op type. Types never observed in
// training fall back to the catalog's expected class: unseen light/CPU
// ops reuse the median estimates (the paper's fallback), while unseen
// heavy ops have no model and are reported by the predictor as warnings
// (Section IV-D: Ceer must be retrained to cover them).
func (c *Classification) Of(t ops.Type) ops.Class {
	switch {
	case c.Heavy[t]:
		return ops.HeavyGPU
	case c.CPUOps[t]:
		return ops.CPU
	case c.Light[t]:
		return ops.LightGPU
	}
	if meta, ok := ops.Lookup(t); ok {
		return meta.Class
	}
	return ops.LightGPU
}

// Observed reports whether the type appeared in the training data.
func (c *Classification) Observed(t ops.Type) bool {
	return c.Heavy[t] || c.Light[t] || c.CPUOps[t]
}

// HeavyTypes returns the heavy types, sorted.
func (c *Classification) HeavyTypes() []ops.Type {
	out := make([]ops.Type, 0, len(c.Heavy))
	for t := range c.Heavy {
		out = append(out, t)
	}
	sortTypes(out)
	return out
}

func sortTypes(ts []ops.Type) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
