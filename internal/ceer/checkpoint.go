// Campaign checkpointing: an append-only JSONL journal of completed
// cells and consumed attempts. A campaign aborted by preemption (or a
// crash) re-opens the journal, skips every completed cell, and resumes
// interrupted cells at the attempt after their last consumed one.
// Profiles round-trip through the exact trace state codec, so a
// resumed campaign produces the very bytes an uninterrupted run would
// have.

package ceer

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"ceer/internal/gpu"
	"ceer/internal/trace"
)

// checkpointVersion guards the journal format.
const checkpointVersion = 1

// checkpointHeader pins the campaign parameters a journal belongs to.
// Resuming under different parameters would splice incompatible
// measurements into one bundle, so mismatches are rejected.
type checkpointHeader struct {
	Version           int    `json:"version"`
	Seed              uint64 `json:"seed"`
	Batch             int64  `json:"batch"`
	ProfileIterations int    `json:"profile_iters"`
	CommIterations    int    `json:"comm_iters"`
	MaxK              int    `json:"max_k"`
}

func (pl Pipeline) checkpointHeader() checkpointHeader {
	return checkpointHeader{
		Version:           checkpointVersion,
		Seed:              pl.Seed,
		Batch:             pl.Batch,
		ProfileIterations: pl.ProfileIterations,
		CommIterations:    pl.CommIterations,
		MaxK:              pl.MaxK,
	}
}

// checkpointRecord is one journal line. Type selects which payload
// field is populated: "header", "profile", "comm", or "attempt".
type checkpointRecord struct {
	Type     string            `json:"type"`
	Header   *checkpointHeader `json:"header,omitempty"`
	Cell     string            `json:"cell,omitempty"`
	Profile  json.RawMessage   `json:"profile,omitempty"`
	Comm     *commObsJSON      `json:"comm,omitempty"`
	Attempts int               `json:"attempts,omitempty"`
}

// commObsJSON is the journal form of a CommObs.
type commObsJSON struct {
	CNN      string  `json:"cnn"`
	GPU      string  `json:"gpu"`
	K        int     `json:"k"`
	Params   int64   `json:"params"`
	Overhead float64 `json:"overhead"`
}

// counter is a race-free failed-attempt tally.
type counter struct{ n atomic.Int64 }

func (c *counter) add(d int)  { c.n.Add(int64(d)) }
func (c *counter) value() int { return int(c.n.Load()) }

// checkpoint is the live journal: in-memory maps of everything loaded
// or recorded, plus the append-side file. All methods are safe for
// concurrent use by campaign workers, and read-side methods tolerate a
// nil receiver (no checkpoint configured).
type checkpoint struct {
	mu       sync.Mutex
	f        *os.File
	enc      *json.Encoder
	profiles map[string]*trace.Profile
	comms    map[string]CommObs
	attempts map[string]int
}

// openCheckpoint loads the journal at path (if any), validates its
// header against the campaign's, and opens it for appending. It
// returns the checkpoint and the number of completed cells restored.
func openCheckpoint(path string, h checkpointHeader) (*checkpoint, int, error) {
	cp := &checkpoint{
		profiles: make(map[string]*trace.Profile),
		comms:    make(map[string]CommObs),
		attempts: make(map[string]int),
	}
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, 0, fmt.Errorf("ceer: reading checkpoint %s: %w", path, err)
	}
	if len(bytes.TrimSpace(data)) > 0 {
		if err := cp.load(path, data, h); err != nil {
			return nil, 0, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("ceer: opening checkpoint %s: %w", path, err)
	}
	cp.f = f
	cp.enc = json.NewEncoder(f)
	if len(bytes.TrimSpace(data)) == 0 {
		if err := cp.append(checkpointRecord{Type: "header", Header: &h}); err != nil {
			// The header write error is the one to surface; the close
			// cannot lose buffered data (nothing was written).
			_ = f.Close()
			return nil, 0, err
		}
	}
	return cp, len(cp.profiles) + len(cp.comms), nil
}

// load replays an existing journal. A torn final line — the footprint
// of a process killed mid-write — is ignored; corruption anywhere else
// is an error.
func (c *checkpoint) load(path string, data []byte, want checkpointHeader) error {
	lines := bytes.Split(data, []byte("\n"))
	sawHeader := false
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec checkpointRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 {
				return nil // torn tail from an interrupted append
			}
			return fmt.Errorf("ceer: checkpoint %s line %d: %w", path, i+1, err)
		}
		if !sawHeader {
			if rec.Type != "header" || rec.Header == nil {
				return fmt.Errorf("ceer: checkpoint %s does not start with a header record", path)
			}
			if *rec.Header != want {
				return fmt.Errorf("ceer: checkpoint %s was written by a different campaign configuration (have %+v, want %+v)",
					path, *rec.Header, want)
			}
			sawHeader = true
			continue
		}
		switch rec.Type {
		case "profile":
			p, err := trace.UnmarshalState(rec.Profile)
			if err != nil {
				return fmt.Errorf("ceer: checkpoint %s line %d: %w", path, i+1, err)
			}
			c.profiles[rec.Cell] = p
		case "comm":
			if rec.Comm == nil {
				return fmt.Errorf("ceer: checkpoint %s line %d: comm record without payload", path, i+1)
			}
			m := gpu.ID(rec.Comm.GPU)
			if _, ok := gpu.Lookup(m); !ok {
				return fmt.Errorf("ceer: checkpoint %s line %d: unregistered device %q", path, i+1, rec.Comm.GPU)
			}
			c.comms[rec.Cell] = CommObs{
				CNN:      rec.Comm.CNN,
				GPU:      m,
				K:        rec.Comm.K,
				Params:   rec.Comm.Params,
				Overhead: rec.Comm.Overhead,
			}
		case "attempt":
			if rec.Attempts > c.attempts[rec.Cell] {
				c.attempts[rec.Cell] = rec.Attempts
			}
		case "header":
			return fmt.Errorf("ceer: checkpoint %s line %d: duplicate header record", path, i+1)
		default:
			return fmt.Errorf("ceer: checkpoint %s line %d: unknown record type %q", path, i+1, rec.Type)
		}
	}
	return nil
}

// append journals one record. json.Encoder writes straight to the
// file, so a record is durable as soon as append returns.
func (c *checkpoint) append(rec checkpointRecord) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(rec); err != nil {
		return fmt.Errorf("ceer: writing checkpoint: %w", err)
	}
	return nil
}

// restoreProfile returns the checkpointed profile of a cell, if any.
func (c *checkpoint) restoreProfile(key string) (*trace.Profile, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	p, ok := c.profiles[key]
	c.mu.Unlock()
	return p, ok
}

// restoreComm returns the checkpointed observation of a cell, if any.
func (c *checkpoint) restoreComm(key string) (CommObs, bool) {
	if c == nil {
		return CommObs{}, false
	}
	c.mu.Lock()
	o, ok := c.comms[key]
	c.mu.Unlock()
	return o, ok
}

// consumed returns how many attempts the cell has already used across
// this and prior runs.
func (c *checkpoint) consumed(key string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	n := c.attempts[key]
	c.mu.Unlock()
	return n
}

// noteAttempt journals a failed attempt so a resumed run continues
// past it. Journal write errors here are deliberately swallowed: the
// attempt record only optimizes resumption, and failing the cell over
// it would turn a bookkeeping hiccup into lost measurements.
func (c *checkpoint) noteAttempt(key string, attempt int) {
	c.mu.Lock()
	if attempt > c.attempts[key] {
		c.attempts[key] = attempt
	}
	c.mu.Unlock()
	// Best-effort journal append; see the function comment.
	_ = c.append(checkpointRecord{Type: "attempt", Cell: key, Attempts: attempt})
}

// recordProfile journals a completed profile cell.
func (c *checkpoint) recordProfile(key string, p *trace.Profile) error {
	data, err := p.MarshalState()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.profiles[key] = p
	c.mu.Unlock()
	return c.append(checkpointRecord{Type: "profile", Cell: key, Profile: data})
}

// recordComm journals a completed communication cell.
func (c *checkpoint) recordComm(key string, o CommObs) error {
	c.mu.Lock()
	c.comms[key] = o
	c.mu.Unlock()
	return c.append(checkpointRecord{Type: "comm", Cell: key, Comm: &commObsJSON{
		CNN:      o.CNN,
		GPU:      string(o.GPU),
		K:        o.K,
		Params:   o.Params,
		Overhead: o.Overhead,
	}})
}

// close releases the journal file.
func (c *checkpoint) close() error {
	if c == nil || c.f == nil {
		return nil
	}
	if err := c.f.Close(); err != nil {
		return fmt.Errorf("ceer: closing checkpoint: %w", err)
	}
	return nil
}
