package ceer

// Calibration loop tests: drift detection on an injected slowdown,
// hot-swap publication under concurrent readers, deterministic replay,
// skip accounting, v2 seeding, and the golden report gate.

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ceer/internal/faults"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
	"ceer/internal/trace"
	"ceer/internal/zoo"
)

// updateCalibGolden regenerates testdata/calib_obs.jsonl and
// testdata/calib_report_golden.txt:
//
//	go test ./internal/ceer -run TestCalibrateGoldenReport -update-calib-golden
var updateCalibGolden = flag.Bool("update-calib-golden", false,
	"regenerate the calibration golden fixtures")

// bundleObsList materializes a bundle's observation stream for tests
// that reorder or rewrite it.
func bundleObsList(t *testing.T, b *trace.Bundle) []trace.Obs {
	t.Helper()
	var out []trace.Obs
	if err := b.Observations(func(o trace.Obs) error { out = append(out, o); return nil }); err != nil {
		t.Fatal(err)
	}
	return out
}

// slowObs scales the observed seconds of one device — the "this GPU
// model got slower" drift scenario.
func slowObs(obs []trace.Obs, m gpu.ID, factor float64) []trace.Obs {
	out := make([]trace.Obs, len(obs))
	for i, o := range obs {
		if o.GPU == m {
			o.Seconds *= factor
		}
		out[i] = o
	}
	return out
}

// TestCalibrateDriftHotSwap is the acceptance journey: a 2× slowdown
// injected on one device must be flagged within a bounded observation
// window, trigger refits, and publish the recalibrated predictor
// through the CompiledBox while readers hammer it concurrently.
func TestCalibrateDriftHotSwap(t *testing.T) {
	pred, res, err := testPipeline(1).TrainOn(context.Background(), zoo.Build, campaignNames)
	if err != nil {
		t.Fatal(err)
	}
	graphs := make([]*graph.Graph, len(campaignNames))
	for i, name := range campaignNames {
		graphs[i] = zoo.MustBuild(name, 32)
	}
	g := graphs[0]
	orig, err := pred.PredictIteration(g, gpu.T4, 1, Full)
	if err != nil {
		t.Fatal(err)
	}

	pol := DefaultCalibrationPolicy()
	cal, err := NewCalibrator(pred, pol)
	if err != nil {
		t.Fatal(err)
	}
	box := &CompiledBox{}
	if err := cal.BindBox(box, graphs); err != nil {
		t.Fatal(err)
	}
	if box.Load() == nil {
		t.Fatal("BindBox should publish an initial compilation")
	}

	// Reader hammer: concurrent predictions against whatever tables the
	// box currently serves, racing the calibration loop's hot-swaps.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := box.Load().PredictIteration(g, gpu.T4, 1, Full); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	stream := slowObs(bundleObsList(t, res.Bundle), gpu.T4, 2)
	for pass := 0; pass < 2; pass++ {
		for _, o := range stream {
			if err := cal.Calibrate(o); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	rep := cal.Report()
	if rep.Refits == 0 {
		t.Fatal("a sustained 2x slowdown should trigger refits")
	}
	if rep.Swaps != rep.Refits {
		t.Errorf("with a bound box every refit should hot-swap: %d refits, %d swaps", rep.Refits, rep.Swaps)
	}
	drifted := 0
	for _, cl := range rep.Cells {
		if cl.GPU != gpu.T4 || cl.DriftEvents == 0 {
			continue
		}
		drifted++
		if cl.FirstDriftObs == 0 || cl.FirstDriftObs > 2*pol.Drift.Window {
			t.Errorf("cell %s/%s first drift at observation %d, want within %d",
				cl.GPU, cl.OpType, cl.FirstDriftObs, 2*pol.Drift.Window)
		}
	}
	if drifted == 0 {
		t.Fatal("no T4 cell detected the 2x slowdown")
	}

	// The recalibrated predictor has moved toward the slowed timings,
	// and the box serves it.
	recal, err := cal.Predictor().PredictIteration(g, gpu.T4, 1, Full)
	if err != nil {
		t.Fatal(err)
	}
	if recal.HeavySeconds <= orig.HeavySeconds {
		t.Errorf("recalibrated heavy seconds %v should exceed the original %v after a 2x slowdown",
			recal.HeavySeconds, orig.HeavySeconds)
	}
	if box.Load().Predictor() != cal.Predictor() {
		t.Error("box should serve the latest recalibrated predictor")
	}
	// The original predictor was never mutated: copy-on-write refits.
	after, err := pred.PredictIteration(g, gpu.T4, 1, Full)
	if err != nil {
		t.Fatal(err)
	}
	if !eqExact(after.HeavySeconds, orig.HeavySeconds) {
		t.Error("calibration mutated the original predictor")
	}
}

// TestCalibrateDeterministicReplay: the same observation log against
// the same predictor yields byte-identical reports and recalibrated
// predictors, run after run.
func TestCalibrateDeterministicReplay(t *testing.T) {
	p, bundle := predictor(t)
	var log bytes.Buffer
	if err := trace.WriteObsLog(&log, bundle); err != nil {
		t.Fatal(err)
	}
	pol := DefaultCalibrationPolicy()
	pol.Drift.Window = 8
	pol.Drift.SignRun = 4
	pol.RefitEvery = 64
	run := func() (CalibrationReport, []byte, []byte) {
		cal, err := NewCalibrator(p, pol)
		if err != nil {
			t.Fatal(err)
		}
		if err := cal.Replay(bytes.NewReader(log.Bytes()), nil); err != nil {
			t.Fatal(err)
		}
		rep := cal.Report()
		var text bytes.Buffer
		if err := rep.Render(&text); err != nil {
			t.Fatal(err)
		}
		return rep, text.Bytes(), savedBytes(t, cal.Predictor())
	}
	rep1, text1, pred1 := run()
	_, text2, pred2 := run()
	if rep1.Applied == 0 {
		t.Fatal("replay applied no observations")
	}
	if rep1.Refits == 0 {
		t.Error("RefitEvery=64 over the training stream should force refits")
	}
	if !bytes.Equal(text1, text2) {
		t.Error("calibration report is not deterministic")
	}
	if !bytes.Equal(pred1, pred2) {
		t.Error("recalibrated predictor is not byte-deterministic")
	}
}

// TestCalibrateSkipCounters pins the skip accounting: non-heavy ops,
// unmodeled cells, and feature-arity mismatches are counted and
// ignored; invalid observations are errors.
func TestCalibrateSkipCounters(t *testing.T) {
	p, _ := predictor(t)
	om, ok := p.OpModelFor(gpu.V100, ops.Conv2D)
	if !ok {
		t.Fatal("trained predictor lacks a v100 Conv2D model")
	}
	// Clone before deleting a model: the cached predictor is shared.
	clone := p.withOpModel(om)
	delete(clone.opModels[gpu.T4], ops.Conv2D)
	cal, err := NewCalibrator(clone, DefaultCalibrationPolicy())
	if err != nil {
		t.Fatal(err)
	}

	feats := make([]float64, om.Model().NumFeatures)
	for i := range feats {
		feats[i] = float64(i + 1)
	}
	for _, o := range []trace.Obs{
		{CNN: "x", GPU: gpu.V100, Op: ops.ApplyMomentum, Features: []float64{1}, Seconds: 1e-5},
		{CNN: "x", GPU: gpu.T4, Op: ops.Conv2D, Features: feats, Seconds: 1e-3},
		{CNN: "x", GPU: gpu.V100, Op: ops.Conv2D, Features: append([]float64{1}, feats...), Seconds: 1e-3},
		{CNN: "x", GPU: gpu.V100, Op: ops.Conv2D, Features: feats, Seconds: 1e-3},
	} {
		if err := cal.Calibrate(o); err != nil {
			t.Fatal(err)
		}
	}
	rep := cal.Report()
	if rep.Observations != 4 || rep.Applied != 1 ||
		rep.SkippedClass != 1 || rep.SkippedUnmodeled != 1 || rep.SkippedShape != 1 {
		t.Errorf("counters = %+v, want 4 seen / 1 applied / 1+1+1 skipped", rep)
	}
	if len(rep.Cells) != 1 || rep.Cells[0].GPU != gpu.V100 || rep.Cells[0].OpType != ops.Conv2D {
		t.Errorf("cells = %+v, want exactly the applied v100/Conv2D cell", rep.Cells)
	}
	if err := cal.Calibrate(trace.Obs{CNN: "x", GPU: "nope", Op: ops.Conv2D, Features: feats, Seconds: 1}); err == nil {
		t.Error("an invalid observation should be an error, not a skip")
	}
}

// TestCalibrateV2PredictorSeedsEmptyStats: calibrating a predictor
// loaded from a v2 file (no persisted statistics) seeds empty
// accumulators from the model shapes, so the loop still works — the
// cell's total just starts at zero.
func TestCalibrateV2PredictorSeedsEmptyStats(t *testing.T) {
	p, err := LoadFile(filepath.Join("testdata", "predictor_seed1_v2.json"))
	if err != nil {
		t.Fatal(err)
	}
	om, ok := p.OpModelFor(gpu.V100, ops.Conv2D)
	if !ok {
		t.Fatal("v2 predictor lacks a v100 Conv2D model")
	}
	if om.Stats != nil {
		t.Fatal("a v2 file must not carry statistics")
	}
	cal, err := NewCalibrator(p, DefaultCalibrationPolicy())
	if err != nil {
		t.Fatal(err)
	}
	feats := make([]float64, om.Model().NumFeatures)
	for i := range feats {
		feats[i] = float64(i + 1)
	}
	for i := 0; i < 5; i++ {
		o := trace.Obs{CNN: "x", GPU: gpu.V100, Op: ops.Conv2D, Features: feats, Seconds: 1e-3}
		if err := cal.Calibrate(o); err != nil {
			t.Fatal(err)
		}
	}
	rep := cal.Report()
	if len(rep.Cells) != 1 {
		t.Fatalf("touched %d cells, want 1", len(rep.Cells))
	}
	cl := rep.Cells[0]
	if cl.Applied != 5 || cl.TrainObs != 5 {
		t.Errorf("v2 cell applied=%d train_obs=%d, want 5/5 (empty seed)", cl.Applied, cl.TrainObs)
	}
	if cl.Refits != 0 {
		t.Errorf("5 observations under a 24-window should not refit, got %d", cl.Refits)
	}
}

// TestCalibrateReplayPreemption: an injected preemption aborts the
// replay with the typed fault; everything before it was processed.
func TestCalibrateReplayPreemption(t *testing.T) {
	p, bundle := predictor(t)
	var log bytes.Buffer
	if err := trace.WriteObsLog(&log, bundle); err != nil {
		t.Fatal(err)
	}
	cal, err := NewCalibrator(p, DefaultCalibrationPolicy())
	if err != nil {
		t.Fatal(err)
	}
	inj := mustInjector(t, &faults.Spec{Seed: 1, Preempt: []faults.PreemptPoint{
		{Stage: "calibrate", K: 3, Attempt: 1},
	}})
	err = cal.Replay(bytes.NewReader(log.Bytes()), inj)
	if !faults.IsPreempted(err) {
		t.Fatalf("replay should abort preempted, got %v", err)
	}
	if got := cal.Report().Observations; got != 2 {
		t.Errorf("observations before the preemption = %d, want 2", got)
	}
}

// calibGoldenPolicy is the fixed policy of the golden report gate: a
// small window so the vgg-11 fixture stream drifts, plus scheduled
// refits.
func calibGoldenPolicy() CalibrationPolicy {
	pol := DefaultCalibrationPolicy()
	pol.Drift.Window = 8
	pol.Drift.SignRun = 4
	pol.RefitEvery = 32
	return pol
}

// TestCalibrateGoldenReport is the byte-level regression gate of the
// calibration loop: replaying the committed observation log (a vgg-11
// campaign with a 2x T4 slowdown, streamed twice) against the
// committed predictor under a 5% transient fault rate must reproduce
// the committed report byte for byte.
func TestCalibrateGoldenReport(t *testing.T) {
	obsPath := filepath.Join("testdata", "calib_obs.jsonl")
	goldenPath := filepath.Join("testdata", "calib_report_golden.txt")
	if *updateCalibGolden {
		res, err := testPipeline(1).Campaign(context.Background(), zoo.Build, campaignNames[:1])
		if err != nil {
			t.Fatal(err)
		}
		stream := slowObs(bundleObsList(t, res.Bundle), gpu.T4, 2)
		var buf bytes.Buffer
		ow := trace.NewObsWriter(&buf)
		for pass := 0; pass < 2; pass++ {
			for _, o := range stream {
				if err := ow.Write(o); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := ow.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(obsPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	pred, err := LoadFile(filepath.Join("testdata", "predictor_seed1_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	obsData, err := os.ReadFile(obsPath)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := NewCalibrator(pred, calibGoldenPolicy())
	if err != nil {
		t.Fatal(err)
	}
	inj := mustInjector(t, &faults.Spec{Seed: 7, TransientRate: 0.05})
	if err := cal.Replay(bytes.NewReader(obsData), inj); err != nil {
		t.Fatalf("transient faults must degrade gracefully, not abort: %v", err)
	}
	rep := cal.Report()
	var got bytes.Buffer
	if err := rep.Render(&got); err != nil {
		t.Fatal(err)
	}
	if *updateCalibGolden {
		if err := os.WriteFile(goldenPath, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("calibration report drifted from golden:\n--- got ---\n%s--- want ---\n%s", got.Bytes(), want)
	}
	if rep.Dropped == 0 {
		t.Error("the 5% transient rate should drop at least one observation")
	}
	if rep.Refits == 0 {
		t.Error("the golden stream should trigger at least one refit")
	}
}
