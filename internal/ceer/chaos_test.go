package ceer

// Chaos tests: the resilience machinery must never change what a
// healthy campaign measures, and a faulted campaign must stay
// deterministic — same spec, same seed, same bytes, at any worker
// count.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/faults"
	"ceer/internal/gpu"
	"ceer/internal/trace"
	"ceer/internal/trace/corrupt"
	"ceer/internal/zoo"
)

// chaosPolicy is the test retry policy: a real budget and backoff
// schedule with sleeping disabled, so retried campaigns run at full
// speed.
func chaosPolicy(seed uint64, retries int) Pipeline {
	pl := testPipeline(0)
	pl.Retry = DefaultRetryPolicy(seed, retries)
	pl.Retry.Sleep = func(time.Duration) {}
	return pl
}

func mustInjector(t *testing.T, spec *faults.Spec) *faults.Injector {
	t.Helper()
	in, err := faults.NewInjector(spec)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func savedBytes(t *testing.T, p *Predictor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFaultFreeMatchesGolden is the no-regression gate of the
// resilience work: with no fault spec and no retry policy, the
// paper-default campaign must reproduce the pre-resilience predictor
// byte for byte (testdata/predictor_seed1_golden.json, the exact
// output of `ceer train -seed 1`).
func TestFaultFreeMatchesGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "predictor_seed1_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	pred, res, err := DefaultPipeline(1).TrainOn(context.Background(), zoo.Build, zoo.TrainingSet())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coverage.Complete() {
		t.Errorf("healthy campaign reported incomplete coverage: %s", res.Coverage)
	}
	if len(res.Bundle.Missing) != 0 {
		t.Errorf("healthy campaign recorded missing cells: %v", res.Bundle.Missing)
	}
	if got := savedBytes(t, pred); !bytes.Equal(got, want) {
		t.Error("fault-free predictor drifted from the pre-resilience golden bytes")
	}
}

// TestRetryPolicyAloneChangesNothing: arming the retry machinery with
// no faults to handle must be invisible in the results.
func TestRetryPolicyAloneChangesNothing(t *testing.T) {
	base, err := testPipeline(0).Campaign(context.Background(), zoo.Build, campaignNames)
	if err != nil {
		t.Fatal(err)
	}
	armed, err := chaosPolicy(11, 3).Campaign(context.Background(), zoo.Build, campaignNames)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Bundle, armed.Bundle) || !reflect.DeepEqual(base.CommObs, armed.CommObs) {
		t.Error("an armed retry policy changed a healthy campaign's measurements")
	}
	if armed.Coverage.Retries != 0 || !armed.Coverage.Complete() {
		t.Errorf("healthy campaign coverage = %s", armed.Coverage)
	}
}

// TestChaosTransientDeterminism pins the seeded-chaos contract: under
// a 10% transient fault rate with retries, the campaign recovers fully
// and produces byte-identical results at 1 and 8 workers.
func TestChaosTransientDeterminism(t *testing.T) {
	spec := &faults.Spec{Seed: 99, TransientRate: 0.10}
	run := func(workers int) (*CampaignResult, []byte) {
		pl := chaosPolicy(11, 4)
		pl.Workers = workers
		pl.Faults = mustInjector(t, spec)
		res, err := pl.Campaign(context.Background(), zoo.Build, campaignNames)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := Train(res.Bundle, res.CommObs)
		if err != nil {
			t.Fatal(err)
		}
		return res, savedBytes(t, pred)
	}
	serial, serialJSON := run(1)
	parallel, parallelJSON := run(8)

	if serial.Coverage.Retries == 0 {
		t.Error("a 10% transient rate should have forced at least one retry")
	}
	if !serial.Coverage.Complete() {
		t.Errorf("transient faults within budget should leave full coverage, got %s", serial.Coverage)
	}
	if serial.Coverage != parallel.Coverage {
		t.Errorf("coverage differs across worker counts: %s vs %s", serial.Coverage, parallel.Coverage)
	}
	if !reflect.DeepEqual(serial.Bundle, parallel.Bundle) {
		t.Error("chaos bundle differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(serial.CommObs, parallel.CommObs) {
		t.Error("chaos comm observations differ between 1 and 8 workers")
	}
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Error("chaos predictor JSON differs between 1 and 8 workers")
	}

	// The recommendation downstream of the chaos campaign is equally
	// worker-independent.
	recFrom := func(data []byte) Recommendation {
		p, err := Load(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		rec, err := p.Recommend(zoo.MustBuild("inception-v3", 32), dataset.ImageNet,
			cloud.OnDemand, cloud.Configs(4), MinimizeCost)
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	a, b := recFrom(serialJSON), recFrom(parallelJSON)
	if a.Best.Cfg != b.Best.Cfg || !eqExact(a.Best.CostUSD, b.Best.CostUSD) {
		t.Errorf("recommendation differs across worker counts: %v vs %v", a.Best.Cfg, b.Best.Cfg)
	}
}

// TestChaosPermanentDeviceDegrades drives the graceful-degradation
// journey: every cell of one device fails permanently, yet the
// campaign completes, training succeeds, the device is flagged
// degraded, and the recommender routes around it.
func TestChaosPermanentDeviceDegrades(t *testing.T) {
	pl := chaosPolicy(11, 2)
	pl.Faults = mustInjector(t, &faults.Spec{Seed: 5, PermanentDevices: []string{string(gpu.M60)}})
	pred, res, err := pl.TrainOn(context.Background(), zoo.Build, campaignNames)
	if err != nil {
		t.Fatalf("a permanently failing device must degrade, not abort: %v", err)
	}
	if res.Coverage.Complete() {
		t.Fatal("coverage should be incomplete with a dead device")
	}
	wantMissing := len(campaignNames)           // profile cells
	wantMissing += len(campaignNames) * pl.MaxK // comm cells
	if got := len(res.Bundle.MissingForGPU(gpu.M60)); got != wantMissing {
		t.Errorf("m60 missing cells = %d, want %d", got, wantMissing)
	}
	if got := res.Coverage.ProfileMissing; got != len(campaignNames) {
		t.Errorf("profile missing = %d, want %d", got, len(campaignNames))
	}

	reason, degraded := pred.Degraded(gpu.M60)
	if !degraded || reason == "" {
		t.Fatalf("m60 should be flagged degraded, got (%q, %v)", reason, degraded)
	}
	for _, m := range gpu.All() {
		if m == gpu.M60 {
			continue
		}
		if r, d := pred.Degraded(m); d {
			t.Errorf("%s wrongly flagged degraded: %s", m, r)
		}
	}

	// The degraded flag survives persistence.
	loaded, err := Load(bytes.NewReader(savedBytes(t, pred)))
	if err != nil {
		t.Fatal(err)
	}
	if _, d := loaded.Degraded(gpu.M60); !d {
		t.Error("degraded flag lost across save/load")
	}

	// Recommend routes around the degraded device: the winner is clean,
	// and every m60 candidate is labeled and infeasible (its comm model
	// never trained).
	rec, err := loaded.Recommend(zoo.MustBuild("inception-v3", 32), dataset.ImageNet,
		cloud.OnDemand, cloud.Configs(4), MinimizeCost)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Cfg.GPU == gpu.M60 || rec.Best.Degraded != "" {
		t.Errorf("best candidate %v should be a clean device", rec.Best.Cfg)
	}
	for _, c := range rec.Candidates {
		if c.Cfg.GPU != gpu.M60 {
			continue
		}
		if c.Degraded == "" {
			t.Errorf("m60 candidate %v lacks its degraded label", c.Cfg)
		}
		if c.Feasible {
			t.Errorf("m60 candidate %v should be infeasible without a comm model", c.Cfg)
		}
	}
}

// TestChaosPreemptionCheckpointResume is the preemption journey: run 1
// is killed by an injected preemption, run 2 reuses the checkpoint,
// skips every completed cell, and finishes with the exact bytes an
// uninterrupted fault-free campaign produces.
func TestChaosPreemptionCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	mk := func(spec *faults.Spec) Pipeline {
		pl := chaosPolicy(11, 2)
		pl.CheckpointPath = ckpt
		pl.Faults = mustInjector(t, spec)
		return pl
	}
	preempt := &faults.Spec{Seed: 1, Preempt: []faults.PreemptPoint{
		{Stage: "comm", CNN: campaignNames[1], Device: string(gpu.T4), K: 2, Attempt: 1},
	}}

	_, err := mk(preempt).Campaign(context.Background(), zoo.Build, campaignNames)
	if !faults.IsPreempted(err) {
		t.Fatalf("run 1 should die preempted, got %v", err)
	}

	// Run 2: same spec, same checkpoint. The interrupted cell resumes at
	// attempt 2, so the one-shot preemption point cannot re-fire.
	res, err := mk(preempt).Campaign(context.Background(), zoo.Build, campaignNames)
	if err != nil {
		t.Fatalf("resumed run should complete, got %v", err)
	}
	if res.Coverage.Resumed == 0 {
		t.Error("run 2 restored no cells from the checkpoint")
	}
	if !res.Coverage.Complete() {
		t.Errorf("resumed campaign incomplete: %s", res.Coverage)
	}

	// The stitched-together result is bit-identical to an uninterrupted
	// fault-free campaign of the same configuration.
	clean, err := chaosPolicy(11, 2).Campaign(context.Background(), zoo.Build, campaignNames)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean.Bundle, res.Bundle) {
		t.Error("resumed bundle differs from an uninterrupted run")
	}
	if !reflect.DeepEqual(clean.CommObs, res.CommObs) {
		t.Error("resumed comm observations differ from an uninterrupted run")
	}
	a, err := Train(clean.Bundle, clean.CommObs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(res.Bundle, res.CommObs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(savedBytes(t, a), savedBytes(t, b)) {
		t.Error("resumed predictor JSON differs from an uninterrupted run")
	}
}

// TestCheckpointSkipsCompletedCells: re-running a finished campaign
// over its checkpoint restores every cell instead of re-measuring.
func TestCheckpointSkipsCompletedCells(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	pl := chaosPolicy(11, 0)
	pl.CheckpointPath = ckpt
	first, err := pl.Campaign(context.Background(), zoo.Build, campaignNames)
	if err != nil {
		t.Fatal(err)
	}
	if first.Coverage.Resumed != 0 {
		t.Errorf("fresh run resumed %d cells", first.Coverage.Resumed)
	}
	second, err := pl.Campaign(context.Background(), zoo.Build, campaignNames)
	if err != nil {
		t.Fatal(err)
	}
	total := first.Coverage.ProfileCells + first.Coverage.CommCells
	if second.Coverage.Resumed != total {
		t.Errorf("second run resumed %d cells, want all %d", second.Coverage.Resumed, total)
	}
	if !reflect.DeepEqual(first.Bundle, second.Bundle) || !reflect.DeepEqual(first.CommObs, second.CommObs) {
		t.Error("checkpoint-restored campaign differs from the measured one")
	}
}

// TestCheckpointRejectsConfigMismatch: resuming under different
// campaign parameters would splice incompatible measurements, so the
// journal is rejected.
func TestCheckpointRejectsConfigMismatch(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	pl := chaosPolicy(11, 0)
	pl.CheckpointPath = ckpt
	if _, err := pl.Campaign(context.Background(), zoo.Build, campaignNames[:1]); err != nil {
		t.Fatal(err)
	}
	other := pl
	other.Seed = 12
	if _, err := other.Campaign(context.Background(), zoo.Build, campaignNames[:1]); err == nil {
		t.Error("a checkpoint from a different seed must be rejected")
	}
}

// TestCheckpointCorruption: a torn final line (interrupted append) is
// tolerated; corruption anywhere else is an error.
func TestCheckpointCorruption(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "campaign.ckpt")
	pl := chaosPolicy(11, 0)
	pl.CheckpointPath = ckpt
	if _, err := pl.Campaign(context.Background(), zoo.Build, campaignNames[:1]); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	// Torn tail: drop the last half-line, as a crash mid-append would.
	torn := append(append([]byte(nil), data...), []byte(`{"type":"profile","cell":"pro`)...)
	if err := os.WriteFile(ckpt, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := pl.Campaign(context.Background(), zoo.Build, campaignNames[:1])
	if err != nil {
		t.Fatalf("a torn final line must be tolerated: %v", err)
	}
	if res.Coverage.Resumed == 0 {
		t.Error("the intact prefix should still restore cells")
	}

	// Mid-file corruption is not recoverable.
	lines := bytes.SplitN(data, []byte("\n"), 3)
	if len(lines) < 3 {
		t.Fatal("journal too short to corrupt")
	}
	corrupt := bytes.Join([][]byte{lines[0], []byte(`{broken`), lines[2]}, []byte("\n"))
	bad := filepath.Join(dir, "corrupt.ckpt")
	if err := os.WriteFile(bad, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	pl.CheckpointPath = bad
	if _, err := pl.Campaign(context.Background(), zoo.Build, campaignNames[:1]); err == nil {
		t.Error("mid-file corruption must be rejected")
	}

	// A journal that does not start with a header is rejected too.
	headerless := filepath.Join(dir, "headerless.ckpt")
	if err := os.WriteFile(headerless, bytes.Join(lines[1:], []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	pl.CheckpointPath = headerless
	if _, err := pl.Campaign(context.Background(), zoo.Build, campaignNames[:1]); err == nil {
		t.Error("a headerless journal must be rejected")
	}
}

// TestCheckpointCorruptionShared drives the shared journal-corruption
// table (internal/trace/corrupt) through the checkpoint reader: the
// same mutations the observation-log reader pins, with the same
// verdicts — a torn final line resumes from the intact prefix, damage
// anywhere else rejects the journal.
func TestCheckpointCorruptionShared(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "campaign.ckpt")
	pl := chaosPolicy(11, 0)
	pl.CheckpointPath = ckpt
	if _, err := pl.Campaign(context.Background(), zoo.Build, campaignNames[:1]); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range corrupt.Cases() {
		mutated := tc.Mutate(append([]byte{}, data...))
		path := filepath.Join(dir, tc.Name+".ckpt")
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		run := pl
		run.CheckpointPath = path
		res, err := run.Campaign(context.Background(), zoo.Build, campaignNames[:1])
		switch tc.Want {
		case corrupt.WantAll, corrupt.WantTorn:
			if err != nil {
				t.Errorf("%s: must be tolerated, got %v", tc.Name, err)
				continue
			}
			if res.Coverage.Resumed == 0 {
				t.Errorf("%s: the intact prefix should still restore cells", tc.Name)
			}
		case corrupt.WantErr:
			if err == nil {
				t.Errorf("%s: corruption must reject the journal", tc.Name)
			}
		}
	}
}

// TestChaosCalibrationStream extends the chaos determinism contract to
// the observe→calibrate loop: a campaign's observation log and a
// fault-injected calibration replay over it (transient drops
// mid-stream) degrade gracefully and produce byte-identical logs,
// reports, and recalibrated predictors at 1 and 8 workers.
func TestChaosCalibrationStream(t *testing.T) {
	pol := DefaultCalibrationPolicy()
	pol.Drift.Window = 8
	pol.Drift.SignRun = 4
	pol.RefitEvery = 32
	spec := &faults.Spec{Seed: 42, TransientRate: 0.10}
	run := func(workers int) (obsLog, report, predJSON []byte, dropped int) {
		pl := testPipeline(workers)
		res, err := pl.Campaign(context.Background(), zoo.Build, campaignNames)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := Train(res.Bundle, res.CommObs)
		if err != nil {
			t.Fatal(err)
		}
		var log bytes.Buffer
		if err := trace.WriteObsLog(&log, res.Bundle); err != nil {
			t.Fatal(err)
		}
		cal, err := NewCalibrator(pred, pol)
		if err != nil {
			t.Fatal(err)
		}
		if err := cal.Replay(bytes.NewReader(log.Bytes()), mustInjector(t, spec)); err != nil {
			t.Fatalf("transient faults must degrade gracefully, not abort: %v", err)
		}
		rep := cal.Report()
		var text bytes.Buffer
		if err := rep.Render(&text); err != nil {
			t.Fatal(err)
		}
		return log.Bytes(), text.Bytes(), savedBytes(t, cal.Predictor()), rep.Dropped
	}
	sLog, sRep, sPred, sDropped := run(1)
	pLog, pRep, pPred, pDropped := run(8)

	if sDropped == 0 {
		t.Error("a 10% transient rate should drop at least one observation")
	}
	if sDropped != pDropped {
		t.Errorf("dropped count differs across worker counts: %d vs %d", sDropped, pDropped)
	}
	if !bytes.Equal(sLog, pLog) {
		t.Error("observation log differs between 1 and 8 workers")
	}
	if !bytes.Equal(sRep, pRep) {
		t.Error("calibration report differs between 1 and 8 workers")
	}
	if !bytes.Equal(sPred, pPred) {
		t.Error("recalibrated predictor JSON differs between 1 and 8 workers")
	}
}

// TestTrainDegradedThresholdDevice: losing the classification
// threshold device (K80) leaves nothing to classify against, so
// training fails loudly rather than fitting nonsense.
func TestTrainDegradedThresholdDevice(t *testing.T) {
	pl := chaosPolicy(11, 0)
	pl.Faults = mustInjector(t, &faults.Spec{Seed: 5, PermanentDevices: []string{string(gpu.K80)}})
	_, _, err := pl.TrainOn(context.Background(), zoo.Build, campaignNames)
	if err == nil {
		t.Fatal("training without the threshold device should fail")
	}
	if faults.IsPreempted(err) {
		t.Errorf("failure should be a training error, not an abort: %v", err)
	}
}
