package ceer

import (
	"context"

	"math"
	"testing"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/zoo"
)

// equivTol is the folded-vs-naive tolerance: count × prediction differs
// from count repeated additions only at ulp level.
const equivTol = 1e-9

func relDiff(a, b float64) float64 {
	//lint:ignore floatcmp exact equality is the fast path of this tolerance helper
	if a == b {
		return 0
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

func checkIterEqual(t *testing.T, ctx string, folded, naive IterPrediction) {
	t.Helper()
	fields := []struct {
		name string
		f, n float64
	}{
		{"HeavySeconds", folded.HeavySeconds, naive.HeavySeconds},
		{"LightSeconds", folded.LightSeconds, naive.LightSeconds},
		{"CPUSeconds", folded.CPUSeconds, naive.CPUSeconds},
		{"CommSeconds", folded.CommSeconds, naive.CommSeconds},
		{"PerIterSeconds", folded.PerIterSeconds, naive.PerIterSeconds},
	}
	for _, f := range fields {
		if d := relDiff(f.f, f.n); d > equivTol {
			t.Errorf("%s: %s folded %v vs naive %v (rel diff %.2e)", ctx, f.name, f.f, f.n, d)
		}
	}
	if len(folded.UnseenHeavy) != len(naive.UnseenHeavy) {
		t.Errorf("%s: unseen-heavy lists differ: %v vs %v", ctx, folded.UnseenHeavy, naive.UnseenHeavy)
		return
	}
	for i := range folded.UnseenHeavy {
		if folded.UnseenHeavy[i] != naive.UnseenHeavy[i] {
			t.Errorf("%s: unseen-heavy lists differ: %v vs %v", ctx, folded.UnseenHeavy, naive.UnseenHeavy)
			return
		}
	}
}

// TestFoldedMatchesUnfolded is the tentpole correctness pin: the folded
// serving path must reproduce the naive per-node walk on every zoo CNN
// × every registered device × every trained k, within float tolerance.
func TestFoldedMatchesUnfolded(t *testing.T) {
	p, _ := predictor(t)
	for _, name := range zoo.Names() {
		g := zoo.MustBuild(name, 32)
		for _, m := range gpu.All() {
			for _, k := range []int{1, 2, 4} {
				folded, err := p.PredictIteration(g, m, k, Full)
				if err != nil {
					t.Fatalf("%s/%s/k=%d folded: %v", name, m, k, err)
				}
				naive, err := p.PredictIterationUnfolded(g, m, k, Full)
				if err != nil {
					t.Fatalf("%s/%s/k=%d naive: %v", name, m, k, err)
				}
				checkIterEqual(t, name+"/"+string(m), folded, naive)
			}
			// k=8 exceeds the trained comm range (Pipeline.MaxK = 4): the
			// op-sum is k-independent, so NoComm still compares, and the
			// Full variant must fail identically on both paths.
			folded, err := p.PredictIteration(g, m, 8, NoComm)
			if err != nil {
				t.Fatalf("%s/%s/k=8 folded no-comm: %v", name, m, err)
			}
			naive, err := p.PredictIterationUnfolded(g, m, 8, NoComm)
			if err != nil {
				t.Fatalf("%s/%s/k=8 naive no-comm: %v", name, m, err)
			}
			checkIterEqual(t, name+"/"+string(m)+"/k=8", folded, naive)
			if _, err := p.PredictIteration(g, m, 8, Full); err == nil {
				t.Errorf("%s/%s: folded Full at untrained k=8 should error", name, m)
			}
			if _, err := p.PredictIterationUnfolded(g, m, 8, Full); err == nil {
				t.Errorf("%s/%s: naive Full at untrained k=8 should error", name, m)
			}
		}
	}
}

// TestFoldedMatchesUnfoldedVariants covers the ablation assembly.
func TestFoldedMatchesUnfoldedVariants(t *testing.T) {
	p, _ := predictor(t)
	for _, name := range []string{"alexnet", "inception-resnet-v2"} {
		g := zoo.MustBuild(name, 32)
		for _, v := range []Variant{Full, NoComm, HeavyOnly, HeavyOnlyNoComm} {
			folded, err := p.PredictIteration(g, gpu.V100, 2, v)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := p.PredictIterationUnfolded(g, gpu.V100, 2, v)
			if err != nil {
				t.Fatal(err)
			}
			checkIterEqual(t, name+"/"+v.String(), folded, naive)
		}
	}
}

// TestFoldedMatchesUnfoldedUnseen pins the degraded-prediction path: a
// predictor trained without the inception family must fold identically,
// unseen-heavy warnings included.
func TestFoldedMatchesUnfoldedUnseen(t *testing.T) {
	pl := DefaultPipeline(13)
	pl.ProfileIterations = 20
	pl.CommIterations = 5
	p, _, err := pl.TrainOn(context.Background(), zoo.Build, []string{"vgg-11", "resnet-50", "alexnet"})
	if err != nil {
		t.Fatal(err)
	}
	g := zoo.MustBuild("inception-v4", 32)
	folded, err := p.PredictIteration(g, gpu.T4, 1, Full)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := p.PredictIterationUnfolded(g, gpu.T4, 1, Full)
	if err != nil {
		t.Fatal(err)
	}
	checkIterEqual(t, "inception-v4/unseen", folded, naive)
	if len(folded.UnseenHeavy) == 0 {
		t.Error("expected unseen heavy types for an inception net on a vgg/resnet-trained predictor")
	}
}

// naiveRecommend mirrors Recommend candidate for candidate but predicts
// through the unfolded path — the reference for the sweep-hoist test.
func naiveRecommend(p *Predictor, g *graph.Graph, ds dataset.Dataset, pricing cloud.Pricing,
	candidates []cloud.Config, obj Objective, constraints ...Constraint) (Recommendation, error) {
	rec := Recommendation{}
	bestScore := math.Inf(1)
	for _, cfg := range candidates {
		iter, err := p.PredictIterationUnfolded(g, cfg.GPU, cfg.K, Full)
		if err != nil {
			return Recommendation{}, err
		}
		pred, err := p.finishPrediction(g, cfg, ds, pricing, iter)
		if err != nil {
			return Recommendation{}, err
		}
		cand := Candidate{Prediction: pred, Feasible: true}
		for _, c := range constraints {
			if !c(pred) {
				cand.Feasible = false
				break
			}
		}
		if cand.Feasible {
			cand.Score = obj(pred.TotalSeconds, pred.CostUSD)
			if cand.Score < bestScore {
				bestScore = cand.Score
				rec.Best = cand
			}
		}
		rec.Candidates = append(rec.Candidates, cand)
	}
	return rec, nil
}

// TestRecommendMatchesNaiveSweep verifies the hoisted device×k sweep
// against a per-candidate unfolded sweep: identical winner, identical
// feasibility, and per-candidate predictions within tolerance.
func TestRecommendMatchesNaiveSweep(t *testing.T) {
	p, _ := predictor(t)
	for _, name := range zoo.TestSet() {
		g := zoo.MustBuild(name, 32)
		for _, obj := range []Objective{MinimizeCost, MinimizeTime} {
			cons := []Constraint{MaxHourlyBudget(20, 0), FitsGPUMemory(g)}
			got, err := p.Recommend(g, dataset.ImageNetSubset6400, cloud.OnDemand, cloud.Configs(4), obj, cons...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := naiveRecommend(p, g, dataset.ImageNetSubset6400, cloud.OnDemand, cloud.Configs(4), obj, cons...)
			if err != nil {
				t.Fatal(err)
			}
			if got.Best.Cfg != want.Best.Cfg {
				t.Errorf("%s: hoisted sweep picks %s, naive picks %s", name, got.Best.Cfg, want.Best.Cfg)
			}
			if len(got.Candidates) != len(want.Candidates) {
				t.Fatalf("%s: candidate counts differ: %d vs %d", name, len(got.Candidates), len(want.Candidates))
			}
			for i := range got.Candidates {
				gc, wc := got.Candidates[i], want.Candidates[i]
				if gc.Cfg != wc.Cfg || gc.Feasible != wc.Feasible {
					t.Errorf("%s: candidate %d differs: %s/%v vs %s/%v",
						name, i, gc.Cfg, gc.Feasible, wc.Cfg, wc.Feasible)
				}
				if d := relDiff(gc.TotalSeconds, wc.TotalSeconds); d > equivTol {
					t.Errorf("%s %s: TotalSeconds %v vs %v (rel diff %.2e)",
						name, gc.Cfg, gc.TotalSeconds, wc.TotalSeconds, d)
				}
				if d := relDiff(gc.CostUSD, wc.CostUSD); d > equivTol {
					t.Errorf("%s %s: CostUSD %v vs %v (rel diff %.2e)",
						name, gc.Cfg, gc.CostUSD, wc.CostUSD, d)
				}
			}
		}
	}
}

// TestFoldEvalReduction measures the tentpole's point on a cold
// predictor: serving the whole zoo through the folded path must run at
// least 5x fewer heavy-op regressions than the naive per-node sweep.
func TestFoldEvalReduction(t *testing.T) {
	pl := DefaultPipeline(17)
	pl.ProfileIterations = 20
	pl.CommIterations = 5
	p, _, err := pl.TrainOn(context.Background(), zoo.Build, zoo.TrainingSet())
	if err != nil {
		t.Fatal(err)
	}
	graphs := make([]*graph.Graph, 0, len(zoo.Names()))
	for _, name := range zoo.Names() {
		graphs = append(graphs, zoo.MustBuild(name, 32))
	}
	cands := cloud.Configs(4)

	base := p.ModelEvaluations()
	for _, g := range graphs {
		for _, cfg := range cands {
			if _, err := p.PredictIterationUnfolded(g, cfg.GPU, cfg.K, Full); err != nil {
				t.Fatal(err)
			}
		}
	}
	naive := p.ModelEvaluations() - base

	base = p.ModelEvaluations()
	for _, g := range graphs {
		if _, err := p.Recommend(g, dataset.ImageNet, cloud.OnDemand, cands, MinimizeCost); err != nil {
			t.Fatal(err)
		}
	}
	folded := p.ModelEvaluations() - base
	if folded == 0 {
		t.Fatal("folded sweep ran zero evaluations on a cold memo — counter broken")
	}
	ratio := float64(naive) / float64(folded)
	t.Logf("zoo sweep: naive %d evals, folded %d evals (%.1fx reduction)", naive, folded, ratio)
	if ratio < 5 {
		t.Errorf("eval reduction %.1fx, want >= 5x", ratio)
	}

	// A second folded sweep hits the memo exclusively.
	base = p.ModelEvaluations()
	for _, g := range graphs {
		if _, err := p.Recommend(g, dataset.ImageNet, cloud.OnDemand, cands, MinimizeCost); err != nil {
			t.Fatal(err)
		}
	}
	if warm := p.ModelEvaluations() - base; warm != 0 {
		t.Errorf("warm folded sweep re-ran %d evaluations, want 0", warm)
	}
}

// TestPredictIterationAllocFree pins the warm serving path at zero
// allocations per prediction.
func TestPredictIterationAllocFree(t *testing.T) {
	p, _ := predictor(t)
	g := zoo.MustBuild("resnet-152", 32)
	if _, err := p.PredictIteration(g, gpu.V100, 4, Full); err != nil {
		t.Fatal(err)
	}
	var err error
	n := testing.AllocsPerRun(100, func() {
		_, err = p.PredictIteration(g, gpu.V100, 4, Full)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("warm PredictIteration allocates %v per call, want 0", n)
	}
}
