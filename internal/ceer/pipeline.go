package ceer

import (
	"fmt"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
	"ceer/internal/sim"
	"ceer/internal/trace"
)

// Pipeline drives the full measurement-and-training campaign of
// Sections III and IV: profile the training-set CNNs on every GPU
// model, measure multi-GPU runs to obtain communication-overhead
// observations, and fit all Ceer models.
type Pipeline struct {
	// Seed drives the simulated measurement noise.
	Seed uint64
	// ProfileIterations is the op-level profiling depth (the paper uses
	// 1,000 iterations).
	ProfileIterations int
	// CommIterations is the number of iterations measured per
	// (CNN, GPU, k) for the communication observations.
	CommIterations int
	// Batch is the per-GPU batch size (the paper's default is 32).
	Batch int64
	// MaxK is the largest GPU count measured for the comm model.
	MaxK int
	// Retain caps raw samples kept per op for the median estimators.
	Retain int
}

// DefaultPipeline returns the paper's configuration. A moderate
// profiling depth is statistically equivalent to the paper's 1,000
// iterations here because heavy-op noise is tight; raise
// ProfileIterations for the variability study.
func DefaultPipeline(seed uint64) Pipeline {
	return Pipeline{
		Seed:              seed,
		ProfileIterations: 200,
		CommIterations:    30,
		Batch:             32,
		MaxK:              4,
		Retain:            64,
	}
}

// Build is the graph-construction callback (normally zoo.Build).
type Build func(name string, batch int64) (*graph.Graph, error)

// CollectCommObs measures the per-iteration communication overhead of
// each CNN on each (GPU, k) configuration: the measured iteration time
// minus the summed op compute time, as derived from training logs
// (Section IV-C).
func (pl Pipeline) CollectCommObs(build Build, names []string) ([]CommObs, error) {
	var out []CommObs
	ds := dataset.ImageNetSubset6400
	for _, name := range names {
		g, err := build(name, pl.Batch)
		if err != nil {
			return nil, fmt.Errorf("ceer: building %s: %w", name, err)
		}
		for _, m := range gpu.AllModels() {
			for k := 1; k <= pl.MaxK; k++ {
				meas, err := sim.Train(g, cloud.Config{GPU: m, K: k}, ds, pl.CommIterations, pl.Seed+7)
				if err != nil {
					return nil, err
				}
				out = append(out, CommObs{
					CNN:      name,
					GPU:      m,
					K:        k,
					Params:   g.Params,
					Overhead: meas.PerIterSeconds - meas.ComputeSeconds,
				})
			}
		}
	}
	return out, nil
}

// Campaign runs the measurement campaign only: op-level profiles plus
// communication observations, without fitting models.
func (pl Pipeline) Campaign(build Build, names []string) (*trace.Bundle, []CommObs, error) {
	prof := &sim.Profiler{Seed: pl.Seed, Iterations: pl.ProfileIterations, Retain: pl.Retain}
	bundle, err := prof.ProfileAll(build, names, pl.Batch, gpu.AllModels())
	if err != nil {
		return nil, nil, err
	}
	commObs, err := pl.CollectCommObs(build, names)
	if err != nil {
		return nil, nil, err
	}
	return bundle, commObs, nil
}

// TrainOn runs the full campaign over the named training-set CNNs and
// returns both the trained predictor and the profile bundle (useful for
// reporting).
func (pl Pipeline) TrainOn(build Build, names []string) (*Predictor, *trace.Bundle, error) {
	bundle, commObs, err := pl.Campaign(build, names)
	if err != nil {
		return nil, nil, err
	}
	pred, err := Train(bundle, commObs)
	if err != nil {
		return nil, nil, err
	}
	return pred, bundle, nil
}

// EvaluateOpModels measures each heavy-op model's held-out accuracy on
// a test bundle (profiles of the test-set CNNs), returning the MAPE per
// (GPU, op type) — the 2%–10% per-op validation of Section IV-B.
func (p *Predictor) EvaluateOpModels(test *trace.Bundle) []OpModelEval {
	var out []OpModelEval
	for _, om := range p.OpModels() {
		var xs [][]float64
		var ys []float64
		for _, prof := range test.ForGPU(om.GPU) {
			for _, s := range prof.Series {
				if s.OpType == om.OpType {
					xs = append(xs, s.Features)
					ys = append(ys, s.Agg.Mean())
				}
			}
		}
		if len(xs) == 0 {
			continue
		}
		out = append(out, OpModelEval{
			GPU:      om.GPU,
			OpType:   om.OpType,
			Degree:   om.Model().Degree,
			TrainR2:  om.Model().R2,
			TestMAPE: om.Model().MAPE(xs, ys),
			TestObs:  len(xs),
		})
	}
	return out
}

// OpModelEval is one heavy-op model's quality summary.
type OpModelEval struct {
	GPU      gpu.Model
	OpType   ops.Type
	Degree   int
	TrainR2  float64
	TestMAPE float64
	TestObs  int
}
