package ceer

import (
	"context"
	"fmt"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
	"ceer/internal/par"
	"ceer/internal/sim"
	"ceer/internal/trace"
)

// Pipeline drives the full measurement-and-training campaign of
// Sections III and IV: profile the training-set CNNs on every GPU
// model, measure multi-GPU runs to obtain communication-overhead
// observations, and fit all Ceer models.
type Pipeline struct {
	// Seed drives the simulated measurement noise.
	Seed uint64
	// ProfileIterations is the op-level profiling depth (the paper uses
	// 1,000 iterations).
	ProfileIterations int
	// CommIterations is the number of iterations measured per
	// (CNN, GPU, k) for the communication observations.
	CommIterations int
	// Batch is the per-GPU batch size (the paper's default is 32).
	Batch int64
	// MaxK is the largest GPU count measured for the comm model.
	MaxK int
	// Retain caps raw samples kept per op for the median estimators.
	Retain int
	// Devices selects which registered GPU devices the campaign
	// profiles and measures. nil means every registered device
	// (gpu.All()) in registration order.
	Devices []gpu.ID
	// Workers bounds the campaign's parallelism across independent
	// (CNN, GPU) profiles and (CNN, GPU, k) training measurements:
	// <= 0 selects GOMAXPROCS, 1 preserves the serial code path. Any
	// worker count produces byte-identical bundles and observations
	// because all measurement noise is derived from (seed, CNN, GPU,
	// node) and results are collected in input order.
	Workers int
}

// DefaultPipeline returns the paper's configuration. A moderate
// profiling depth is statistically equivalent to the paper's 1,000
// iterations here because heavy-op noise is tight; raise
// ProfileIterations for the variability study.
func DefaultPipeline(seed uint64) Pipeline {
	return Pipeline{
		Seed:              seed,
		ProfileIterations: 200,
		CommIterations:    30,
		Batch:             32,
		MaxK:              4,
		Retain:            64,
	}
}

// devices resolves the campaign's device set.
func (pl Pipeline) devices() []gpu.ID {
	if pl.Devices != nil {
		return pl.Devices
	}
	return gpu.All()
}

// Build is the graph-construction callback (normally zoo.Build).
type Build func(name string, batch int64) (*graph.Graph, error)

// CollectCommObs measures the per-iteration communication overhead of
// each CNN on each (GPU, k) configuration: the measured iteration time
// minus the summed op compute time, as derived from training logs
// (Section IV-C). The (CNN, GPU, k) measurements are independent and
// fan out over Workers goroutines; the observation order (names-major,
// then GPU, then k) matches the serial run exactly.
func (pl Pipeline) CollectCommObs(build Build, names []string) ([]CommObs, error) {
	ctx := context.Background()
	graphs, err := par.Map(ctx, pl.Workers, len(names), func(_ context.Context, i int) (*graph.Graph, error) {
		g, err := build(names[i], pl.Batch)
		if err != nil {
			return nil, fmt.Errorf("ceer: building %s: %w", names[i], err)
		}
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	type commTask struct {
		name string
		g    *graph.Graph
		m    gpu.ID
		k    int
	}
	var tasks []commTask
	for i, name := range names {
		for _, m := range pl.devices() {
			for k := 1; k <= pl.MaxK; k++ {
				tasks = append(tasks, commTask{name, graphs[i], m, k})
			}
		}
	}
	ds := dataset.ImageNetSubset6400
	return par.Map(ctx, pl.Workers, len(tasks), func(_ context.Context, i int) (CommObs, error) {
		t := tasks[i]
		meas, err := sim.Train(t.g, cloud.Config{GPU: t.m, K: t.k}, ds, pl.CommIterations, pl.Seed+7)
		if err != nil {
			return CommObs{}, err
		}
		return CommObs{
			CNN:      t.name,
			GPU:      t.m,
			K:        t.k,
			Params:   t.g.Params,
			Overhead: meas.PerIterSeconds - meas.ComputeSeconds,
		}, nil
	})
}

// Campaign runs the measurement campaign only: op-level profiles plus
// communication observations, without fitting models. Both stages
// share one graph.BuildCache, so each architecture is constructed
// exactly once per campaign (profiling and the communication stage
// used to rebuild every CNN independently).
func (pl Pipeline) Campaign(build Build, names []string) (*trace.Bundle, []CommObs, error) {
	cache := graph.NewBuildCache(graph.BuildFunc(build))
	prof := &sim.Profiler{Seed: pl.Seed, Iterations: pl.ProfileIterations, Retain: pl.Retain, Workers: pl.Workers}
	bundle, err := prof.ProfileAll(cache.Build, names, pl.Batch, pl.devices())
	if err != nil {
		return nil, nil, err
	}
	commObs, err := pl.CollectCommObs(cache.Build, names)
	if err != nil {
		return nil, nil, err
	}
	return bundle, commObs, nil
}

// TrainOn runs the full campaign over the named training-set CNNs and
// returns both the trained predictor and the profile bundle (useful for
// reporting).
func (pl Pipeline) TrainOn(build Build, names []string) (*Predictor, *trace.Bundle, error) {
	bundle, commObs, err := pl.Campaign(build, names)
	if err != nil {
		return nil, nil, err
	}
	pred, err := Train(bundle, commObs)
	if err != nil {
		return nil, nil, err
	}
	return pred, bundle, nil
}

// EvaluateOpModels measures each heavy-op model's held-out accuracy on
// a test bundle (profiles of the test-set CNNs), returning the MAPE per
// (GPU, op type) — the 2%–10% per-op validation of Section IV-B.
func (p *Predictor) EvaluateOpModels(test *trace.Bundle) []OpModelEval {
	var out []OpModelEval
	for _, om := range p.OpModels() {
		var xs [][]float64
		var ys []float64
		for _, prof := range test.ForGPU(om.GPU) {
			for _, s := range prof.Series {
				if s.OpType == om.OpType {
					xs = append(xs, s.Features)
					ys = append(ys, s.Agg.Mean())
				}
			}
		}
		if len(xs) == 0 {
			continue
		}
		out = append(out, OpModelEval{
			GPU:      om.GPU,
			OpType:   om.OpType,
			Degree:   om.Model().Degree,
			TrainR2:  om.Model().R2,
			TestMAPE: om.Model().MAPE(xs, ys),
			TestObs:  len(xs),
		})
	}
	return out
}

// OpModelEval is one heavy-op model's quality summary.
type OpModelEval struct {
	GPU      gpu.ID
	OpType   ops.Type
	Degree   int
	TrainR2  float64
	TestMAPE float64
	TestObs  int
}
