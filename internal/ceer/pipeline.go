package ceer

import (
	"context"
	"fmt"
	"time"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/faults"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
	"ceer/internal/par"
	"ceer/internal/retry"
	"ceer/internal/sim"
	"ceer/internal/trace"
)

// Pipeline drives the full measurement-and-training campaign of
// Sections III and IV: profile the training-set CNNs on every GPU
// model, measure multi-GPU runs to obtain communication-overhead
// observations, and fit all Ceer models.
type Pipeline struct {
	// Seed drives the simulated measurement noise.
	Seed uint64
	// ProfileIterations is the op-level profiling depth (the paper uses
	// 1,000 iterations).
	ProfileIterations int
	// CommIterations is the number of iterations measured per
	// (CNN, GPU, k) for the communication observations.
	CommIterations int
	// Batch is the per-GPU batch size (the paper's default is 32).
	Batch int64
	// MaxK is the largest GPU count measured for the comm model.
	MaxK int
	// Retain caps raw samples kept per op for the median estimators.
	Retain int
	// Devices selects which registered GPU devices the campaign
	// profiles and measures. nil means every registered device
	// (gpu.All()) in registration order.
	Devices []gpu.ID
	// Workers bounds the campaign's parallelism across independent
	// (CNN, GPU) profiles and (CNN, GPU, k) training measurements:
	// <= 0 selects GOMAXPROCS, 1 preserves the serial code path. Any
	// worker count produces byte-identical bundles and observations
	// because all measurement noise is derived from (seed, CNN, GPU,
	// node) and results are collected in input order.
	Workers int
	// Retry governs per-cell fault handling: transient failures retry
	// with deterministic backoff up to the policy's attempt budget. The
	// zero value allows one attempt per cell with no retries, exactly
	// the pre-resilience behaviour.
	Retry retry.Policy
	// Faults optionally injects deterministic faults into every
	// campaign cell (nil injects nothing). Injection outcomes are a
	// pure function of (spec, cell, attempt), never of scheduling, so a
	// faulted campaign remains byte-reproducible at any worker count.
	Faults *faults.Injector
	// CheckpointPath, when non-empty, journals every completed cell
	// (and every consumed attempt) to the named file. A campaign
	// aborted by preemption resumes from the checkpoint without
	// re-measuring completed cells, and resumed cells continue at the
	// attempt after their last consumed one, so one-shot preemption
	// points do not re-fire.
	CheckpointPath string
}

// DefaultPipeline returns the paper's configuration. A moderate
// profiling depth is statistically equivalent to the paper's 1,000
// iterations here because heavy-op noise is tight; raise
// ProfileIterations for the variability study.
func DefaultPipeline(seed uint64) Pipeline {
	return Pipeline{
		Seed:              seed,
		ProfileIterations: 200,
		CommIterations:    30,
		Batch:             32,
		MaxK:              4,
		Retain:            64,
	}
}

// DefaultRetryPolicy returns the campaign's standard fault handling:
// retries+1 total attempts per cell, exponential backoff from 10ms
// capped at 500ms with ±25% seeded jitter, transient faults retried,
// preemptions aborting the run, and everything else failing the cell.
func DefaultRetryPolicy(seed uint64, retries int) retry.Policy {
	return retry.Policy{
		MaxAttempts: retries + 1,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		Multiplier:  2,
		JitterFrac:  0.25,
		Seed:        seed ^ 0xBACC0FF,
		Classify:    retry.FaultErrors,
	}
}

// devices resolves the campaign's device set.
func (pl Pipeline) devices() []gpu.ID {
	if pl.Devices != nil {
		return pl.Devices
	}
	return gpu.All()
}

// Build is the graph-construction callback (normally zoo.Build).
type Build func(name string, batch int64) (*graph.Graph, error)

// Coverage summarizes how completely a campaign measured its cells.
type Coverage struct {
	// ProfileCells and CommCells count the campaign's op-profile and
	// communication cells; the Missing counters say how many produced
	// no surviving observation.
	ProfileCells   int
	ProfileMissing int
	CommCells      int
	CommMissing    int
	// Retries counts failed attempts observed during this run,
	// including ones a later attempt recovered from.
	Retries int
	// Resumed counts cells restored from a checkpoint instead of
	// re-measured.
	Resumed int
}

// Complete reports whether every cell produced an observation.
func (c Coverage) Complete() bool { return c.ProfileMissing == 0 && c.CommMissing == 0 }

// String renders a one-line coverage summary.
func (c Coverage) String() string {
	return fmt.Sprintf("profiles %d/%d, comm %d/%d, retries %d, resumed %d",
		c.ProfileCells-c.ProfileMissing, c.ProfileCells,
		c.CommCells-c.CommMissing, c.CommCells, c.Retries, c.Resumed)
}

// CampaignResult is a measurement campaign's full outcome: the profile
// bundle (whose Missing list names uncovered cells), the communication
// observations, and the coverage summary.
type CampaignResult struct {
	Bundle   *trace.Bundle
	CommObs  []CommObs
	Coverage Coverage
}

// CollectCommObs measures the per-iteration communication overhead of
// each CNN on each (GPU, k) configuration: the measured iteration time
// minus the summed op compute time, as derived from training logs
// (Section IV-C). The (CNN, GPU, k) measurements are independent and
// fan out over Workers goroutines; the observation order (names-major,
// then GPU, then k) matches the serial run exactly. This path is
// fault-free; Campaign is the resilient entry point.
func (pl Pipeline) CollectCommObs(ctx context.Context, build Build, names []string) ([]CommObs, error) {
	graphs, err := pl.buildGraphs(ctx, build, names)
	if err != nil {
		return nil, err
	}
	cells := pl.commCells(names, graphs)
	ds := dataset.ImageNetSubset6400
	return par.Map(ctx, pl.Workers, len(cells), func(ctx context.Context, i int) (CommObs, error) {
		return pl.measureComm(ctx, cells[i], ds)
	})
}

// buildGraphs constructs the named CNNs at the campaign batch size.
// Build failures are programmer errors (unknown architecture), not
// measurement faults, so they fail the campaign outright.
func (pl Pipeline) buildGraphs(ctx context.Context, build Build, names []string) ([]*graph.Graph, error) {
	return par.Map(ctx, pl.Workers, len(names), func(_ context.Context, i int) (*graph.Graph, error) {
		g, err := build(names[i], pl.Batch)
		if err != nil {
			return nil, fmt.Errorf("ceer: building %s: %w", names[i], err)
		}
		return g, nil
	})
}

// profCell is one op-profiling cell of the campaign grid.
type profCell struct {
	name string
	g    *graph.Graph
	m    gpu.ID
}

func (c profCell) op(attempt int) faults.Op {
	return faults.Op{Stage: "profile", CNN: c.name, Device: string(c.m), Attempt: attempt}
}

// commCell is one communication-measurement cell.
type commCell struct {
	name string
	g    *graph.Graph
	m    gpu.ID
	k    int
}

func (c commCell) op(attempt int) faults.Op {
	return faults.Op{Stage: "comm", CNN: c.name, Device: string(c.m), K: c.k, Attempt: attempt}
}

func (pl Pipeline) profCells(names []string, graphs []*graph.Graph) []profCell {
	var cells []profCell
	for i, name := range names {
		for _, m := range pl.devices() {
			cells = append(cells, profCell{name, graphs[i], m})
		}
	}
	return cells
}

func (pl Pipeline) commCells(names []string, graphs []*graph.Graph) []commCell {
	var cells []commCell
	for i, name := range names {
		for _, m := range pl.devices() {
			for k := 1; k <= pl.MaxK; k++ {
				cells = append(cells, commCell{name, graphs[i], m, k})
			}
		}
	}
	return cells
}

// measureComm runs one communication cell.
func (pl Pipeline) measureComm(ctx context.Context, c commCell, ds dataset.Dataset) (CommObs, error) {
	meas, err := sim.Train(ctx, c.g, cloud.Config{GPU: c.m, K: c.k}, ds, pl.CommIterations, pl.Seed+7)
	if err != nil {
		return CommObs{}, err
	}
	return CommObs{
		CNN:      c.name,
		GPU:      c.m,
		K:        c.k,
		Params:   c.g.Params,
		Overhead: meas.PerIterSeconds - meas.ComputeSeconds,
	}, nil
}

// pause sleeps d honoring ctx — injected straggler latency. The retry
// policy's injected Sleep, when set, replaces the timer (tests make
// delays instantaneous).
func (pl Pipeline) pause(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if pl.Retry.Sleep != nil {
		pl.Retry.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// campaignState carries the per-run resilience bookkeeping shared by
// both campaign stages.
type campaignState struct {
	cp      *checkpoint
	retries *counter
}

// runCells executes one campaign stage's cells through the retry
// policy, returning input-ordered results and per-cell final errors.
// fn measures a cell given the fault-injection op for the attempt;
// restore returns a checkpointed result, if any.
func runCells[T any](ctx context.Context, pl Pipeline, st campaignState, n int,
	opAt func(i, attempt int) faults.Op,
	restore func(key string) (T, bool),
	fn func(ctx context.Context, i int, op faults.Op) (T, error)) ([]T, []error, error) {
	key := func(i int) string { return opAt(i, 1).CellKey() }
	opts := retry.MapOptions{
		Key: key,
		FirstAttempt: func(i int) int {
			if st.cp == nil {
				return 1
			}
			return st.cp.consumed(key(i)) + 1
		},
		OnFailure: func(i, attempt int, err error) {
			st.retries.add(1)
			if st.cp != nil {
				st.cp.noteAttempt(key(i), attempt)
			}
		},
	}
	return retry.Map(ctx, pl.Workers, n, pl.Retry, opts, func(ctx context.Context, i, attempt int) (T, error) {
		var zero T
		op := opAt(i, attempt)
		if v, ok := restore(op.CellKey()); ok {
			return v, nil
		}
		delay, ferr := pl.Faults.Inject(op)
		if delay > 0 {
			if werr := pl.pause(ctx, delay); werr != nil {
				return zero, werr
			}
		}
		if ferr != nil {
			return zero, ferr
		}
		return fn(ctx, i, op)
	})
}

// Campaign runs the measurement campaign: op-level profiles plus
// communication observations, without fitting models. Both stages
// share one graph.BuildCache, so each architecture is constructed
// exactly once per campaign.
//
// The campaign degrades gracefully instead of aborting: a cell whose
// attempts are exhausted (or that fails permanently) is recorded in
// the bundle's Missing list and the coverage summary, and measurement
// continues. Only preemption (faults.Preempted), context
// cancellation, and infrastructure errors (checkpoint I/O, graph
// construction) abort the run. With a checkpoint configured, an
// aborted campaign resumes where it stopped.
func (pl Pipeline) Campaign(ctx context.Context, build Build, names []string) (res *CampaignResult, retErr error) {
	cache := graph.NewBuildCache(graph.BuildFunc(build))
	graphs, err := pl.buildGraphs(ctx, cache.Build, names)
	if err != nil {
		return nil, err
	}

	st := campaignState{retries: &counter{}}
	resumed := 0
	if pl.CheckpointPath != "" {
		st.cp, resumed, err = openCheckpoint(pl.CheckpointPath, pl.checkpointHeader())
		if err != nil {
			return nil, err
		}
		defer func() {
			if cerr := st.cp.close(); cerr != nil && retErr == nil {
				res, retErr = nil, cerr
			}
		}()
	}

	// Stage 1: op-level profiles, one cell per (CNN, device).
	prof := &sim.Profiler{Seed: pl.Seed, Iterations: pl.ProfileIterations, Retain: pl.Retain, Workers: pl.Workers}
	pCells := pl.profCells(names, graphs)
	profiles, profErrs, abortErr := runCells(ctx, pl, st, len(pCells),
		func(i, attempt int) faults.Op { return pCells[i].op(attempt) },
		func(key string) (*trace.Profile, bool) { return st.cp.restoreProfile(key) },
		func(ctx context.Context, i int, op faults.Op) (*trace.Profile, error) {
			p, err := prof.Profile(ctx, pCells[i].g, pCells[i].m)
			if err != nil {
				return nil, err
			}
			if st.cp != nil {
				if err := st.cp.recordProfile(op.CellKey(), p); err != nil {
					return nil, par.Abort(err)
				}
			}
			return p, nil
		})
	if abortErr != nil {
		return nil, abortErr
	}

	bundle := &trace.Bundle{}
	for i, p := range profiles {
		if profErrs[i] == nil {
			bundle.Add(p)
			continue
		}
		bundle.AddMissing(trace.MissingCell{CNN: pCells[i].name, GPU: pCells[i].m, Reason: profErrs[i].Error()})
	}

	// Stage 2: communication observations, one cell per (CNN, device, k).
	cCells := pl.commCells(names, graphs)
	ds := dataset.ImageNetSubset6400
	obs, commErrs, abortErr := runCells(ctx, pl, st, len(cCells),
		func(i, attempt int) faults.Op { return cCells[i].op(attempt) },
		func(key string) (CommObs, bool) { return st.cp.restoreComm(key) },
		func(ctx context.Context, i int, op faults.Op) (CommObs, error) {
			o, err := pl.measureComm(ctx, cCells[i], ds)
			if err != nil {
				return CommObs{}, err
			}
			if st.cp != nil {
				if err := st.cp.recordComm(op.CellKey(), o); err != nil {
					return CommObs{}, par.Abort(err)
				}
			}
			return o, nil
		})
	if abortErr != nil {
		return nil, abortErr
	}

	var commObs []CommObs
	commMissing := 0
	for i, o := range obs {
		if commErrs[i] == nil {
			commObs = append(commObs, o)
			continue
		}
		commMissing++
		bundle.AddMissing(trace.MissingCell{CNN: cCells[i].name, GPU: cCells[i].m, K: cCells[i].k, Reason: commErrs[i].Error()})
	}

	return &CampaignResult{
		Bundle:  bundle,
		CommObs: commObs,
		Coverage: Coverage{
			ProfileCells:   len(pCells),
			ProfileMissing: len(pCells) - len(bundle.Profiles),
			CommCells:      len(cCells),
			CommMissing:    commMissing,
			Retries:        st.retries.value(),
			Resumed:        resumed,
		},
	}, nil
}

// TrainOn runs the full campaign over the named training-set CNNs and
// returns both the trained predictor and the campaign result (bundle,
// observations, coverage). Devices with missing cells are flagged
// degraded on the predictor rather than failing training, as long as
// enough data survives to fit the models at all.
func (pl Pipeline) TrainOn(ctx context.Context, build Build, names []string) (*Predictor, *CampaignResult, error) {
	res, err := pl.Campaign(ctx, build, names)
	if err != nil {
		return nil, nil, err
	}
	pred, err := Train(res.Bundle, res.CommObs)
	if err != nil {
		return nil, nil, err
	}
	return pred, res, nil
}

// EvaluateOpModels measures each heavy-op model's held-out accuracy on
// a test bundle (profiles of the test-set CNNs), returning the MAPE per
// (GPU, op type) — the 2%–10% per-op validation of Section IV-B.
func (p *Predictor) EvaluateOpModels(test *trace.Bundle) []OpModelEval {
	var out []OpModelEval
	for _, om := range p.OpModels() {
		var xs [][]float64
		var ys []float64
		for _, prof := range test.ForGPU(om.GPU) {
			for _, s := range prof.Series {
				if s.OpType == om.OpType {
					xs = append(xs, s.Features)
					ys = append(ys, s.Agg.Mean())
				}
			}
		}
		if len(xs) == 0 {
			continue
		}
		out = append(out, OpModelEval{
			GPU:      om.GPU,
			OpType:   om.OpType,
			Degree:   om.Model().Degree,
			TrainR2:  om.Model().R2,
			TestMAPE: om.Model().MAPE(xs, ys),
			TestObs:  len(xs),
		})
	}
	return out
}

// OpModelEval is one heavy-op model's quality summary.
type OpModelEval struct {
	GPU      gpu.ID
	OpType   ops.Type
	Degree   int
	TrainR2  float64
	TestMAPE float64
	TestObs  int
}
