package ceer

import (
	"math"
	"testing"

	"ceer/internal/gpu"
	"ceer/internal/ops"
	"ceer/internal/zoo"
)

func TestExplainIteration(t *testing.T) {
	p, _ := predictor(t)
	g := zoo.MustBuild("vgg-19", 32)
	ex, err := p.ExplainIteration(g, gpu.V100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Contributions) == 0 {
		t.Fatal("no contributions")
	}
	// Contributions sorted descending.
	for i := 1; i < len(ex.Contributions); i++ {
		if ex.Contributions[i].Seconds > ex.Contributions[i-1].Seconds {
			t.Error("contributions not sorted by predicted time")
		}
	}
	// Attribution plus comm must reassemble the prediction.
	sum := ex.Iter.CommSeconds
	for _, c := range ex.Contributions {
		sum += c.Seconds
		if c.Count <= 0 {
			t.Errorf("%s has non-positive count", c.OpType)
		}
	}
	if math.Abs(sum-ex.Iter.PerIterSeconds) > 1e-9*ex.Iter.PerIterSeconds {
		t.Errorf("attribution sums to %v, prediction is %v", sum, ex.Iter.PerIterSeconds)
	}
	// VGG-19's top contributor must be a conv-family op.
	top := ex.Contributions[0].OpType
	if top != ops.Conv2DBackpropFilter && top != ops.Conv2D && top != ops.Conv2DBackpropInput {
		t.Errorf("VGG-19 top contributor = %s, want a convolution op", top)
	}
	// Shares sum to ~1.
	shareSum := ex.CommShare
	for _, c := range ex.Contributions {
		shareSum += c.Share
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Errorf("shares sum to %v", shareSum)
	}
}

func TestExplainIterationPropagatesErrors(t *testing.T) {
	p, _ := predictor(t)
	g := zoo.MustBuild("alexnet", 32)
	if _, err := p.ExplainIteration(g, gpu.V100, 7); err == nil {
		t.Error("untrained k should error")
	}
}
