package ceer

import (
	"context"
	"math"
	"sync"
	"testing"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/ops"
	"ceer/internal/sim"
	"ceer/internal/stats"
	"ceer/internal/trace"
	"ceer/internal/zoo"
)

var (
	trainedOnce sync.Once
	trained     *Predictor
	trainBundle *trace.Bundle
	trainErr    error
)

// predictor trains Ceer once (on the 8 training CNNs) and caches it for
// every test in the package.
func predictor(t *testing.T) (*Predictor, *trace.Bundle) {
	t.Helper()
	trainedOnce.Do(func() {
		pl := DefaultPipeline(11)
		pl.ProfileIterations = 60
		pl.CommIterations = 12
		var res *CampaignResult
		trained, res, trainErr = pl.TrainOn(context.Background(), zoo.Build, zoo.TrainingSet())
		if trainErr == nil {
			trainBundle = res.Bundle
		}
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	return trained, trainBundle
}

func TestClassificationMatchesPaper(t *testing.T) {
	p, _ := predictor(t)
	heavy := p.Class.HeavyTypes()
	if len(heavy) != 20 {
		t.Errorf("derived %d heavy op types, want 20 (Fig. 2): %v", len(heavy), heavy)
	}
	for _, h := range heavy {
		if ops.MustLookup(h).Class != ops.HeavyGPU {
			t.Errorf("empirically heavy op %s is not catalog-heavy", h)
		}
	}
	// Known members called out in the paper.
	for _, want := range []ops.Type{ops.Conv2D, ops.Conv2DBackpropFilter, ops.MaxPoolGrad,
		ops.AvgPool, ops.FusedBatchNormGradV3, ops.Relu, ops.BiasAdd, ops.AddV2} {
		if !p.Class.Heavy[want] {
			t.Errorf("op %s should classify heavy", want)
		}
	}
	if p.Class.Heavy[ops.ApplyMomentum] || p.Class.Heavy[ops.Identity] {
		t.Error("optimizer/identity ops should not classify heavy")
	}
	if !p.Class.CPUOps[ops.IteratorGetNext] || !p.Class.CPUOps[ops.SparseToDense] {
		t.Error("host ops should classify CPU")
	}
}

func TestClassificationFallbacks(t *testing.T) {
	p, _ := predictor(t)
	// Pad never appears in the zoo graphs: unseen. Falls back by catalog.
	if p.Class.Observed(ops.Pad) {
		t.Skip("Pad unexpectedly observed; fallback path not exercised")
	}
	if got := p.Class.Of(ops.Pad); got != ops.LightGPU {
		t.Errorf("unseen light op class = %v", got)
	}
	if got := p.Class.Of(ops.NoOp); got != ops.CPU {
		t.Errorf("unseen CPU op class = %v", got)
	}
}

func TestMedianEstimators(t *testing.T) {
	p, _ := predictor(t)
	if p.LightMedian <= 0 || p.CPUMedian <= 0 {
		t.Fatalf("medians must be positive: light=%v cpu=%v", p.LightMedian, p.CPUMedian)
	}
	if p.LightMedian >= HeavyThresholdSeconds {
		t.Errorf("light median %v should sit below the heavy threshold", p.LightMedian)
	}
	if p.CPUMedian <= p.LightMedian {
		t.Errorf("CPU median %v should exceed light median %v here", p.CPUMedian, p.LightMedian)
	}
}

func TestHeavyOpModelQuality(t *testing.T) {
	// Section IV-B: training R² 0.84–0.98 across operations; per-op test
	// MAPE 2%–10%.
	p, _ := predictor(t)
	models := p.OpModels()
	if len(models) != 20*4 {
		t.Errorf("trained %d op models, want 80 (20 types × 4 GPUs)", len(models))
	}
	lowR2 := 0
	for _, om := range models {
		if om.Model().R2 < 0.80 {
			lowR2++
			t.Logf("low R² %.3f for %s on %s (n=%d, degree %d)",
				om.Model().R2, om.OpType, om.GPU.Family(), om.TrainObs, om.Model().Degree)
		}
	}
	if lowR2 > 8 {
		t.Errorf("%d/80 op models have R² < 0.80; paper reports 0.84–0.98", lowR2)
	}

	// Held-out evaluation on the test CNNs.
	prof := &sim.Profiler{Seed: 99, Iterations: 40, Retain: 8}
	testBundle, err := prof.ProfileAll(context.Background(), zoo.Build, zoo.TestSet(), 32, gpu.All())
	if err != nil {
		t.Fatal(err)
	}
	evals := p.EvaluateOpModels(testBundle)
	if len(evals) == 0 {
		t.Fatal("no op-model evaluations")
	}
	var mapes []float64
	for _, e := range evals {
		mapes = append(mapes, e.TestMAPE)
	}
	if med := stats.Median(mapes); med > 0.10 {
		t.Errorf("median per-op test MAPE = %.1f%%, paper band is 2–10%%", med*100)
	}
	if frac := float64(countBelow(mapes, 0.15)) / float64(len(mapes)); frac < 0.8 {
		t.Errorf("only %.0f%% of op models have test MAPE < 15%%", frac*100)
	}
}

func countBelow(xs []float64, limit float64) int {
	n := 0
	for _, x := range xs {
		if x < limit {
			n++
		}
	}
	return n
}

func TestQuadraticSelectedForBackpropFilter(t *testing.T) {
	// Section IV-B: Conv2DBackpropFilter needs a quadratic fit.
	p, _ := predictor(t)
	quadCount := 0
	for _, m := range gpu.All() {
		om, ok := p.OpModelFor(m, ops.Conv2DBackpropFilter)
		if !ok {
			t.Fatalf("no Conv2DBackpropFilter model for %s", m.Family())
		}
		if om.Model().Degree == 2 {
			quadCount++
		}
	}
	if quadCount < 3 {
		t.Errorf("quadratic chosen for Conv2DBackpropFilter on %d/4 GPUs, want >= 3", quadCount)
	}
	// Most pure memory-bound ops should stay linear.
	linCount := 0
	for _, m := range gpu.All() {
		if om, ok := p.OpModelFor(m, ops.Relu); ok && om.Model().Degree == 1 {
			linCount++
		}
	}
	if linCount < 3 {
		t.Errorf("linear chosen for Relu on %d/4 GPUs, want >= 3", linCount)
	}
}

func TestCommModelQuality(t *testing.T) {
	// Section IV-C: R² 0.88–0.98 for the comm regressions.
	p, _ := predictor(t)
	for _, m := range gpu.All() {
		for k := 1; k <= 4; k++ {
			cm, ok := p.CommModelFor(m, k)
			if !ok {
				t.Fatalf("missing comm model %s k=%d", m.Family(), k)
			}
			if cm.Fit.R2 < 0.85 {
				t.Errorf("comm model %s k=%d R² = %.3f, want >= 0.85", m.Family(), k, cm.Fit.R2)
			}
		}
	}
	// Overhead grows with params and with k.
	s2a, err := p.PredictComm(gpu.T4, 2, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	s2b, _ := p.PredictComm(gpu.T4, 2, 100_000_000) // same shape as the checked call above
	s4a, _ := p.PredictComm(gpu.T4, 4, 10_000_000)  // same shape as the checked call above
	if s2b <= s2a || s4a <= s2a {
		t.Errorf("comm predictions not monotone: %v %v %v", s2a, s2b, s4a)
	}
	if _, err := p.PredictComm(gpu.T4, 7, 1000); err == nil {
		t.Error("untrained k should error")
	}
}

func TestEndToEndPredictionAccuracy(t *testing.T) {
	// The paper's validation: ~4.2% average test-set prediction error;
	// Figure 8 reports 5.4% on 4-GPU instances. Allow a conservative
	// band: mean < 10%, max < 25%.
	p, _ := predictor(t)
	ds := dataset.ImageNetSubset6400
	var errs []float64
	for _, name := range zoo.TestSet() {
		g := zoo.MustBuild(name, 32)
		for _, m := range gpu.All() {
			for _, k := range []int{1, 4} {
				cfg := cloud.Config{GPU: m, K: k}
				obs, err := sim.Train(context.Background(), g, cfg, ds, 25, 555)
				if err != nil {
					t.Fatal(err)
				}
				pred, err := p.PredictTraining(g, cfg, ds, cloud.OnDemand)
				if err != nil {
					t.Fatal(err)
				}
				e := math.Abs(stats.RelErr(obs.TotalSeconds, pred.TotalSeconds))
				errs = append(errs, e)
				if e > 0.25 {
					t.Errorf("%s on %s: prediction error %.1f%% (obs %.1fs pred %.1fs)",
						name, cfg, e*100, obs.TotalSeconds, pred.TotalSeconds)
				}
			}
		}
	}
	if mean := stats.Mean(errs); mean > 0.10 {
		t.Errorf("mean test-set prediction error = %.1f%%, want < 10%% (paper: ~4-6%%)", mean*100)
	}
}

func TestPredictedRankingMatchesObserved(t *testing.T) {
	// Figure 8: the predicted training-time ranking across GPU models
	// must match the observed ranking for every test CNN (4-GPU case).
	p, _ := predictor(t)
	ds := dataset.ImageNetSubset6400
	for _, name := range zoo.TestSet() {
		g := zoo.MustBuild(name, 32)
		type pair struct {
			obs, pred float64
		}
		vals := map[gpu.ID]pair{}
		for _, m := range gpu.All() {
			cfg := cloud.Config{GPU: m, K: 4}
			obs, err := sim.Train(context.Background(), g, cfg, ds, 20, 777)
			if err != nil {
				t.Fatal(err)
			}
			pred, err := p.PredictTraining(g, cfg, ds, cloud.OnDemand)
			if err != nil {
				t.Fatal(err)
			}
			vals[m] = pair{obs.TotalSeconds, pred.TotalSeconds}
		}
		for _, a := range gpu.All() {
			for _, b := range gpu.All() {
				if (vals[a].obs < vals[b].obs) != (vals[a].pred < vals[b].pred) {
					t.Errorf("%s: ranking mismatch between %s and %s", name, a.Family(), b.Family())
				}
			}
		}
	}
}

func TestAblations(t *testing.T) {
	// Section IV: ignoring comm costs accuracy (up to ~30% for AlexNet);
	// ignoring light+CPU ops costs accuracy as well.
	p, _ := predictor(t)
	ds := dataset.ImageNetSubset6400
	g := zoo.MustBuild("alexnet", 32)
	cfg := cloud.Config{GPU: gpu.V100, K: 1}
	obs, err := sim.Train(context.Background(), g, cfg, ds, 25, 31)
	if err != nil {
		t.Fatal(err)
	}
	full, err := p.PredictTrainingVariant(g, cfg, ds, cloud.OnDemand, Full)
	if err != nil {
		t.Fatal(err)
	}
	noComm, err := p.PredictTrainingVariant(g, cfg, ds, cloud.OnDemand, NoComm)
	if err != nil {
		t.Fatal(err)
	}
	fullErr := math.Abs(stats.RelErr(obs.TotalSeconds, full.TotalSeconds))
	noCommErr := math.Abs(stats.RelErr(obs.TotalSeconds, noComm.TotalSeconds))
	// The paper reports ~30%% for AlexNet; in this reproduction the
	// communication calibration that preserves Figs. 6 and 10 puts
	// AlexNet's single-GPU communication share near 6-12%% (see
	// EXPERIMENTS.md), so the ablation penalty is smaller but must still
	// be clearly visible and clearly worse than the full model.
	if noCommErr < 0.04 {
		t.Errorf("AlexNet no-comm error = %.1f%%, want >= 4%%", noCommErr*100)
	}
	if fullErr > noCommErr {
		t.Errorf("full model error %.1f%% should be below no-comm %.1f%%", fullErr*100, noCommErr*100)
	}

	// Heavy-only must underestimate vs full (dropping positive terms).
	heavyOnly, err := p.PredictTrainingVariant(g, cfg, ds, cloud.OnDemand, HeavyOnly)
	if err != nil {
		t.Fatal(err)
	}
	if heavyOnly.TotalSeconds >= full.TotalSeconds {
		t.Error("heavy-only prediction should be below full prediction")
	}
}

func TestVariantString(t *testing.T) {
	if Full.String() != "full" || NoComm.String() != "no-comm" ||
		HeavyOnly.String() != "heavy-only" || HeavyOnlyNoComm.String() != "heavy-only-no-comm" {
		t.Error("variant labels wrong")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant should render")
	}
}

func TestRecommendCostMinimization(t *testing.T) {
	// Figure 11: minimizing cost for Inception-v3 picks the 1-GPU G4.
	p, _ := predictor(t)
	g := zoo.MustBuild("inception-v3", 32)
	rec, err := p.Recommend(g, dataset.ImageNet, cloud.OnDemand, cloud.Configs(4), MinimizeCost)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Cfg.GPU != gpu.T4 || rec.Best.Cfg.K != 1 {
		t.Errorf("cost-min recommendation = %s, paper says 1xG4", rec.Best.Cfg)
	}
	if len(rec.Candidates) != 16 {
		t.Errorf("evaluated %d candidates, want 16", len(rec.Candidates))
	}
}

func TestRecommendMarketPrices(t *testing.T) {
	// Figure 12: with market-ratio prices the 1-GPU P2 wins.
	p, _ := predictor(t)
	g := zoo.MustBuild("inception-v3", 32)
	rec, err := p.Recommend(g, dataset.ImageNet, cloud.MarketRatio, cloud.Configs(4), MinimizeCost)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Cfg.GPU != gpu.K80 || rec.Best.Cfg.K != 1 {
		t.Errorf("market cost-min recommendation = %s, paper says 1xP2", rec.Best.Cfg)
	}
}

func TestRecommendConstraints(t *testing.T) {
	p, _ := predictor(t)
	g := zoo.MustBuild("resnet-101", 32)
	// Impossible budget: no feasible candidate.
	_, err := p.Recommend(g, dataset.ImageNet, cloud.OnDemand, cloud.Configs(4),
		MinimizeTime, MaxTotalBudget(0.01))
	if err == nil {
		t.Error("impossible budget should error")
	}
	// Hourly budget with slack admits the $3.06 P3 at $3 + 6¢ slack.
	rec, err := p.Recommend(g, dataset.ImageNet, cloud.OnDemand, cloud.Configs(4),
		MinimizeTime, MaxHourlyBudget(3.0, 0.42))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rec.Candidates {
		if c.Feasible && c.HourlyUSD > 3.42 {
			t.Errorf("feasible candidate %s exceeds budget at $%.2f/hr", c.Cfg, c.HourlyUSD)
		}
	}
	if _, err := p.Recommend(g, dataset.ImageNet, cloud.OnDemand, nil, MinimizeTime); err == nil {
		t.Error("empty candidate set should error")
	}
}

func TestObjectives(t *testing.T) {
	if !eqExact(MinimizeTime(5, 100), 5) || !eqExact(MinimizeCost(5, 100), 100) {
		t.Error("basic objectives wrong")
	}
	obj := WeightedObjective(0.5, 10, 20)
	if got := obj(10, 20); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("weighted objective = %v, want 1.0", got)
	}
}

func TestUnseenHeavyOpWarning(t *testing.T) {
	// Train a predictor WITHOUT the inception models: ConcatV2 (heavy)
	// then never appears in training, and predictions for inception-v3
	// must carry an unseen-heavy warning.
	pl := DefaultPipeline(13)
	pl.ProfileIterations = 20
	pl.CommIterations = 5
	subset := []string{"vgg-11", "resnet-50", "alexnet"}
	p, _, err := pl.TrainOn(context.Background(), zoo.Build, subset)
	if err != nil {
		t.Fatal(err)
	}
	g := zoo.MustBuild("inception-v3", 32)
	iter, err := p.PredictIteration(g, gpu.V100, 1, Full)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range iter.UnseenHeavy {
		if u == ops.ConcatV2 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected ConcatV2 in unseen-heavy warnings, got %v", iter.UnseenHeavy)
	}
}

func TestPredictTrainingInvalidConfig(t *testing.T) {
	p, _ := predictor(t)
	g := zoo.MustBuild("alexnet", 32)
	if _, err := p.PredictTraining(g, cloud.Config{GPU: gpu.V100, K: 0}, dataset.ImageNet, cloud.OnDemand); err == nil {
		t.Error("invalid config should error")
	}
}

func TestFitsGPUMemoryConstraint(t *testing.T) {
	p, _ := predictor(t)
	// VGG-19 at batch 64 needs well over 8 GB: every M60 (G3, 8 GB)
	// configuration must be rejected while 16 GB GPUs survive.
	g := zoo.MustBuild("vgg-19", 64)
	needGB := g.EstimateMemory().TotalGB()
	if needGB < 8 || needGB > 16 {
		t.Fatalf("vgg-19@64 estimate = %.1f GB, expected between 8 and 16", needGB)
	}
	rec, err := p.Recommend(g, dataset.ImageNetSubset6400, cloud.OnDemand, cloud.Configs(4),
		MinimizeCost, FitsGPUMemory(g))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rec.Candidates {
		isG3orP2 := c.Cfg.GPU == gpu.M60 || c.Cfg.GPU == gpu.K80
		if c.Feasible && isG3orP2 {
			t.Errorf("%s should be memory-infeasible for vgg-19@64", c.Cfg)
		}
		if !c.Feasible && (c.Cfg.GPU == gpu.V100 || c.Cfg.GPU == gpu.T4) {
			t.Errorf("%s (16 GB) should fit vgg-19@64", c.Cfg)
		}
	}
	// At batch 32, everything fits.
	g32 := zoo.MustBuild("vgg-19", 32)
	rec32, err := p.Recommend(g32, dataset.ImageNetSubset6400, cloud.OnDemand, cloud.Configs(4),
		MinimizeCost, FitsGPUMemory(g32))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rec32.Candidates {
		if !c.Feasible {
			t.Errorf("%s should fit vgg-19@32", c.Cfg)
		}
	}
}

// eqExact reports a == b. Exact float equality is the contract under
// test here: the objectives pass their inputs through
// verbatim and persistence must round-trip bit-for-bit.
func eqExact(a, b float64) bool { return a == b }
