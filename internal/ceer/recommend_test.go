package ceer

import (
	"testing"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/zoo"
)

// TestRecommendAllFilteredOut: when every candidate fails a constraint,
// Recommend must error but still return the full candidate table (the
// CLI renders it so the user sees why nothing fit).
func TestRecommendAllFilteredOut(t *testing.T) {
	p, _ := predictor(t)
	g := zoo.MustBuild("resnet-50", 32)
	rec, err := p.Recommend(g, dataset.ImageNet, cloud.OnDemand, cloud.Configs(4),
		MinimizeCost, MaxHourlyBudget(0.001, 0))
	if err == nil {
		t.Fatal("all-infeasible sweep should error")
	}
	if len(rec.Candidates) != 16 {
		t.Fatalf("error path returned %d candidates, want the full 16", len(rec.Candidates))
	}
	for _, c := range rec.Candidates {
		if c.Feasible {
			t.Errorf("%s marked feasible under an impossible hourly budget", c.Cfg)
		}
	}
	if rec.Best.Cfg != (cloud.Config{}) {
		t.Errorf("Best should be zero-valued when nothing is feasible, got %s", rec.Best.Cfg)
	}
}

// TestMaxTotalBudgetFilters checks the total-cost cap against the
// sweep's own unconstrained costs: a budget just above the cheapest
// candidate keeps the cost winner and rejects pricier configurations.
func TestMaxTotalBudgetFilters(t *testing.T) {
	p, _ := predictor(t)
	g := zoo.MustBuild("alexnet", 32)
	free, err := p.Recommend(g, dataset.ImageNetSubset6400, cloud.OnDemand, cloud.Configs(4), MinimizeCost)
	if err != nil {
		t.Fatal(err)
	}
	budget := free.Best.CostUSD * 1.01
	rec, err := p.Recommend(g, dataset.ImageNetSubset6400, cloud.OnDemand, cloud.Configs(4),
		MinimizeCost, MaxTotalBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Cfg != free.Best.Cfg {
		t.Errorf("budget %.4f changed the cost winner: %s vs %s", budget, rec.Best.Cfg, free.Best.Cfg)
	}
	infeasible := 0
	for _, c := range rec.Candidates {
		if c.Feasible && c.CostUSD > budget {
			t.Errorf("%s feasible at cost %.4f over budget %.4f", c.Cfg, c.CostUSD, budget)
		}
		if !c.Feasible {
			infeasible++
		}
	}
	if infeasible == 0 {
		t.Error("a near-minimal total budget should reject some candidates")
	}
}

// TestRecommendCombinedConstraints stacks all three built-in constraint
// kinds on one sweep.
func TestRecommendCombinedConstraints(t *testing.T) {
	p, _ := predictor(t)
	g := zoo.MustBuild("vgg-19", 64) // over 8 GB: excludes the 8 GB M60 and 12 GB K80
	rec, err := p.Recommend(g, dataset.ImageNetSubset6400, cloud.OnDemand, cloud.Configs(4),
		MinimizeTime, MaxHourlyBudget(15, 0), MaxTotalBudget(1000), FitsGPUMemory(g))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Best.Feasible {
		t.Error("Best must be feasible")
	}
	for _, c := range rec.Candidates {
		if !c.Feasible {
			continue
		}
		if c.HourlyUSD > 15 || c.CostUSD > 1000 {
			t.Errorf("%s violates a budget: $%.2f/hr, $%.2f total", c.Cfg, c.HourlyUSD, c.CostUSD)
		}
		if c.Cfg.GPU == gpu.M60 || c.Cfg.GPU == gpu.K80 {
			t.Errorf("%s should be memory-infeasible for vgg-19@64", c.Cfg)
		}
	}
}

// TestRecommendInvalidConfig: an invalid candidate aborts the sweep.
func TestRecommendInvalidConfig(t *testing.T) {
	p, _ := predictor(t)
	g := zoo.MustBuild("alexnet", 32)
	bad := []cloud.Config{{GPU: gpu.V100, K: 0}}
	if _, err := p.Recommend(g, dataset.ImageNet, cloud.OnDemand, bad, MinimizeCost); err == nil {
		t.Error("invalid config should error")
	}
}
