package ceer

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ceer/internal/gpu"
	"ceer/internal/ops"
	"ceer/internal/regress"
)

// persistVersion guards the on-disk format. Version 2 keys op and comm
// models by stable device ID strings (version 1 used AWS family codes
// resolved through the then-closed model enum).
const persistVersion = 2

// predictorJSON is the serialized form of a trained Predictor. Only the
// chosen per-op models are persisted (the rejected selection candidates
// are training-time artifacts). Devices appear exclusively as their
// registry ID strings, so a saved predictor round-trips regardless of
// the order (or number) of devices registered by the loading process.
type predictorJSON struct {
	Version int `json:"version"`

	HeavyTypes []ops.Type           `json:"heavy_types"`
	LightTypes []ops.Type           `json:"light_types"`
	CPUTypes   []ops.Type           `json:"cpu_types"`
	ClassMeans map[ops.Type]float64 `json:"class_means"`

	OpModels []opModelJSON `json:"op_models"`

	LightMedian float64 `json:"light_median"`
	CPUMedian   float64 `json:"cpu_median"`

	CommModels []commModelJSON `json:"comm_models"`
}

type opModelJSON struct {
	// Device is the stable gpu registry ID (e.g. "v100").
	Device   string         `json:"gpu"`
	OpType   ops.Type       `json:"op"`
	TrainObs int            `json:"train_obs"`
	Model    *regress.Model `json:"model"`
}

type commModelJSON struct {
	Device string         `json:"gpu"`
	K      int            `json:"k"`
	Model  *regress.Model `json:"model"`
}

// Save serializes the trained predictor as JSON. Output is
// deterministic and independent of registry registration order: op
// models are emitted in sorted (family, op type) order and comm models
// in sorted (device ID, k) order.
func (p *Predictor) Save(w io.Writer) error {
	out := predictorJSON{
		Version:     persistVersion,
		ClassMeans:  p.Class.MeanOnThresholdGPU,
		LightMedian: p.LightMedian,
		CPUMedian:   p.CPUMedian,
	}
	for t := range p.Class.Heavy {
		out.HeavyTypes = append(out.HeavyTypes, t)
	}
	for t := range p.Class.Light {
		out.LightTypes = append(out.LightTypes, t)
	}
	for t := range p.Class.CPUOps {
		out.CPUTypes = append(out.CPUTypes, t)
	}
	sortTypes(out.HeavyTypes)
	sortTypes(out.LightTypes)
	sortTypes(out.CPUTypes)
	for _, om := range p.OpModels() {
		out.OpModels = append(out.OpModels, opModelJSON{
			Device:   string(om.GPU),
			OpType:   om.OpType,
			TrainObs: om.TrainObs,
			Model:    om.Model(),
		})
	}
	commIDs := make([]gpu.ID, 0, len(p.commModels))
	for m := range p.commModels {
		commIDs = append(commIDs, m)
	}
	sort.Slice(commIDs, func(i, j int) bool { return commIDs[i] < commIDs[j] })
	for _, m := range commIDs {
		ks := make([]int, 0, len(p.commModels[m]))
		for k := range p.commModels[m] {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		for _, k := range ks {
			out.CommModels = append(out.CommModels, commModelJSON{
				Device: string(m), K: k, Model: p.commModels[m][k].Fit,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load restores a predictor previously written by Save. Every device ID
// in the file must be registered in the gpu registry of the loading
// process (load the extra-device data packages before calling Load if
// the predictor was trained with extras).
func Load(r io.Reader) (*Predictor, error) {
	var in predictorJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("ceer: decoding predictor: %w", err)
	}
	if in.Version != persistVersion {
		return nil, fmt.Errorf("ceer: unsupported predictor version %d (want %d)", in.Version, persistVersion)
	}
	if in.LightMedian <= 0 || in.CPUMedian <= 0 {
		return nil, fmt.Errorf("ceer: serialized medians must be positive")
	}
	p := &Predictor{
		Class: &Classification{
			Heavy:              make(map[ops.Type]bool, len(in.HeavyTypes)),
			Light:              make(map[ops.Type]bool, len(in.LightTypes)),
			CPUOps:             make(map[ops.Type]bool, len(in.CPUTypes)),
			MeanOnThresholdGPU: in.ClassMeans,
		},
		opModels:    make(map[gpu.ID]map[ops.Type]*OpModel),
		commModels:  make(map[gpu.ID]map[int]*CommModel),
		LightMedian: in.LightMedian,
		CPUMedian:   in.CPUMedian,
	}
	for _, t := range in.HeavyTypes {
		p.Class.Heavy[t] = true
	}
	for _, t := range in.LightTypes {
		p.Class.Light[t] = true
	}
	for _, t := range in.CPUTypes {
		p.Class.CPUOps[t] = true
	}
	for _, om := range in.OpModels {
		m := gpu.ID(om.Device)
		if _, ok := gpu.Lookup(m); !ok {
			return nil, fmt.Errorf("ceer: op model references unregistered device %q", om.Device)
		}
		if om.Model == nil {
			return nil, fmt.Errorf("ceer: op model %s/%s missing regression", om.Device, om.OpType)
		}
		if p.opModels[m] == nil {
			p.opModels[m] = make(map[ops.Type]*OpModel)
		}
		p.opModels[m][om.OpType] = &OpModel{
			GPU:       m,
			OpType:    om.OpType,
			TrainObs:  om.TrainObs,
			Selection: &regress.Selection{Chosen: om.Model},
		}
	}
	for _, cm := range in.CommModels {
		m := gpu.ID(cm.Device)
		if _, ok := gpu.Lookup(m); !ok {
			return nil, fmt.Errorf("ceer: comm model references unregistered device %q", cm.Device)
		}
		if cm.Model == nil || cm.K < 1 {
			return nil, fmt.Errorf("ceer: malformed comm model %s k=%d", cm.Device, cm.K)
		}
		if p.commModels[m] == nil {
			p.commModels[m] = make(map[int]*CommModel)
		}
		p.commModels[m][cm.K] = &CommModel{GPU: m, K: cm.K, Fit: cm.Model}
	}
	return p, nil
}
