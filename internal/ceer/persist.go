package ceer

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ceer/internal/gpu"
	"ceer/internal/ops"
	"ceer/internal/regress"
)

// persistVersion guards the on-disk format. Version 2 keys op and comm
// models by stable device ID strings (version 1 used AWS family codes
// resolved through the then-closed model enum); version 3 carries each
// op model's training-time sufficient statistics alongside its
// coefficients, so calibration can continue a loaded fit incrementally.
const persistVersion = 3

// supportedVersions lists the formats load accepts, ascending. Version
// 2 files load cleanly — their op models simply lack statistics, and
// the calibrator seeds empty accumulators from the model shapes.
var supportedVersions = []int{2, persistVersion}

// versionSupported reports whether load understands the version.
func versionSupported(v int) bool {
	for _, s := range supportedVersions {
		if v == s {
			return true
		}
	}
	return false
}

// supportedVersionList renders supportedVersions for error messages.
func supportedVersionList() string {
	parts := make([]string, len(supportedVersions))
	for i, v := range supportedVersions {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ", ")
}

// Sentinel causes inside a PersistError, for errors.Is classification
// by reload paths that must report *why* a model file was rejected
// (stale format vs unknown hardware vs plain corruption).
var (
	// ErrUnsupportedVersion: the file declares a version load does not
	// understand.
	ErrUnsupportedVersion = errors.New("unsupported predictor version")
	// ErrUnknownDevice: the file references a device ID absent from
	// the loading process's gpu registry.
	ErrUnknownDevice = errors.New("unregistered device")
)

// PersistError is the typed failure of loading a serialized predictor:
// it carries the source path (empty when loading from a stream) and
// the file's declared version (0 when the JSON never decoded), so
// callers can distinguish a stale-format file from a corrupt one.
type PersistError struct {
	// Path is the file being loaded, when known.
	Path string
	// Version is the version field of the decoded file, 0 if decoding
	// never got that far.
	Version int
	// Err is the underlying cause.
	Err error
}

// Error renders the failure with its source context.
func (e *PersistError) Error() string {
	where := e.Path
	if where == "" {
		where = "predictor"
	}
	if e.Version != 0 {
		return fmt.Sprintf("ceer: loading %s (version %d): %v", where, e.Version, e.Err)
	}
	return fmt.Sprintf("ceer: loading %s: %v", where, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *PersistError) Unwrap() error { return e.Err }

// predictorJSON is the serialized form of a trained Predictor. Only the
// chosen per-op models are persisted (the rejected selection candidates
// are training-time artifacts). Devices appear exclusively as their
// registry ID strings, so a saved predictor round-trips regardless of
// the order (or number) of devices registered by the loading process.
type predictorJSON struct {
	Version int `json:"version"`

	HeavyTypes []ops.Type           `json:"heavy_types"`
	LightTypes []ops.Type           `json:"light_types"`
	CPUTypes   []ops.Type           `json:"cpu_types"`
	ClassMeans map[ops.Type]float64 `json:"class_means"`

	OpModels []opModelJSON `json:"op_models"`

	LightMedian float64 `json:"light_median"`
	CPUMedian   float64 `json:"cpu_median"`

	CommModels []commModelJSON `json:"comm_models"`

	// Degraded lists devices trained on incomplete campaign coverage.
	// omitempty keeps fully-covered predictors byte-identical to files
	// written before partial coverage existed.
	Degraded []degradedJSON `json:"degraded,omitempty"`
}

type opModelJSON struct {
	// Device is the stable gpu registry ID (e.g. "v100").
	Device   string         `json:"gpu"`
	OpType   ops.Type       `json:"op"`
	TrainObs int            `json:"train_obs"`
	Model    *regress.Model `json:"model"`
	// Stats is the chosen model's sufficient-statistics state (v3;
	// absent in v2 files and on models that never carried statistics).
	Stats *regress.SuffStatsState `json:"stats,omitempty"`
}

type commModelJSON struct {
	Device string         `json:"gpu"`
	K      int            `json:"k"`
	Model  *regress.Model `json:"model"`
}

type degradedJSON struct {
	Device string `json:"gpu"`
	Reason string `json:"reason"`
}

// Save serializes the trained predictor as JSON. Output is
// deterministic and independent of registry registration order: op
// models are emitted in sorted (family, op type) order, comm models in
// sorted (device ID, k) order, and degraded devices sorted by ID.
func (p *Predictor) Save(w io.Writer) error {
	out := predictorJSON{
		Version:     persistVersion,
		ClassMeans:  p.Class.MeanOnThresholdGPU,
		LightMedian: p.LightMedian,
		CPUMedian:   p.CPUMedian,
	}
	for t := range p.Class.Heavy {
		out.HeavyTypes = append(out.HeavyTypes, t)
	}
	for t := range p.Class.Light {
		out.LightTypes = append(out.LightTypes, t)
	}
	for t := range p.Class.CPUOps {
		out.CPUTypes = append(out.CPUTypes, t)
	}
	sortTypes(out.HeavyTypes)
	sortTypes(out.LightTypes)
	sortTypes(out.CPUTypes)
	for _, om := range p.OpModels() {
		oj := opModelJSON{
			Device:   string(om.GPU),
			OpType:   om.OpType,
			TrainObs: om.TrainObs,
			Model:    om.Model(),
		}
		if om.Stats != nil {
			st := om.Stats.State()
			oj.Stats = &st
		}
		out.OpModels = append(out.OpModels, oj)
	}
	commIDs := make([]gpu.ID, 0, len(p.commModels))
	for m := range p.commModels {
		commIDs = append(commIDs, m)
	}
	sort.Slice(commIDs, func(i, j int) bool { return commIDs[i] < commIDs[j] })
	for _, m := range commIDs {
		ks := make([]int, 0, len(p.commModels[m]))
		for k := range p.commModels[m] {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		for _, k := range ks {
			out.CommModels = append(out.CommModels, commModelJSON{
				Device: string(m), K: k, Model: p.commModels[m][k].Fit,
			})
		}
	}
	for _, m := range p.DegradedDevices() {
		out.Degraded = append(out.Degraded, degradedJSON{Device: string(m), Reason: p.degraded[m]})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load restores a predictor previously written by Save. Every device ID
// in the file must be registered in the gpu registry of the loading
// process (load the extra-device data packages before calling Load if
// the predictor was trained with extras). Failures are *PersistError
// values carrying the decoded version when available.
func Load(r io.Reader) (*Predictor, error) {
	return load(r, "")
}

// LoadFile is Load from a file path; the path is carried in any
// resulting *PersistError.
func LoadFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, &PersistError{Path: path, Err: err}
	}
	//lint:ignore errdrop read-side close; there are no buffered writes to lose
	defer f.Close()
	return load(f, path)
}

func load(r io.Reader, path string) (*Predictor, error) {
	fail := func(version int, format string, args ...any) (*Predictor, error) {
		return nil, &PersistError{Path: path, Version: version, Err: fmt.Errorf(format, args...)}
	}
	var in predictorJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fail(0, "decoding predictor: %w", err)
	}
	if !versionSupported(in.Version) {
		return fail(in.Version, "%w %d (supported: %s)",
			ErrUnsupportedVersion, in.Version, supportedVersionList())
	}
	if in.LightMedian <= 0 || in.CPUMedian <= 0 {
		return fail(in.Version, "serialized medians must be positive")
	}
	p := &Predictor{
		Class: &Classification{
			Heavy:              make(map[ops.Type]bool, len(in.HeavyTypes)),
			Light:              make(map[ops.Type]bool, len(in.LightTypes)),
			CPUOps:             make(map[ops.Type]bool, len(in.CPUTypes)),
			MeanOnThresholdGPU: in.ClassMeans,
		},
		opModels:    make(map[gpu.ID]map[ops.Type]*OpModel),
		commModels:  make(map[gpu.ID]map[int]*CommModel),
		LightMedian: in.LightMedian,
		CPUMedian:   in.CPUMedian,
	}
	for _, t := range in.HeavyTypes {
		p.Class.Heavy[t] = true
	}
	for _, t := range in.LightTypes {
		p.Class.Light[t] = true
	}
	for _, t := range in.CPUTypes {
		p.Class.CPUOps[t] = true
	}
	for _, om := range in.OpModels {
		m := gpu.ID(om.Device)
		if _, ok := gpu.Lookup(m); !ok {
			return fail(in.Version, "op model references %w %q", ErrUnknownDevice, om.Device)
		}
		if om.Model == nil {
			return fail(in.Version, "op model %s/%s missing regression", om.Device, om.OpType)
		}
		if p.opModels[m] == nil {
			p.opModels[m] = make(map[ops.Type]*OpModel)
		}
		loaded := &OpModel{
			GPU:       m,
			OpType:    om.OpType,
			TrainObs:  om.TrainObs,
			Selection: &regress.Selection{Chosen: om.Model},
		}
		if om.Stats != nil {
			st, err := regress.RestoreSuffStats(*om.Stats)
			if err != nil {
				return fail(in.Version, "op model %s/%s statistics: %w", om.Device, om.OpType, err)
			}
			if err := st.CompatibleWith(om.Model); err != nil {
				return fail(in.Version, "op model %s/%s statistics: %w", om.Device, om.OpType, err)
			}
			loaded.Stats = st
		}
		p.opModels[m][om.OpType] = loaded
	}
	for _, cm := range in.CommModels {
		m := gpu.ID(cm.Device)
		if _, ok := gpu.Lookup(m); !ok {
			return fail(in.Version, "comm model references %w %q", ErrUnknownDevice, cm.Device)
		}
		if cm.Model == nil || cm.K < 1 {
			return fail(in.Version, "malformed comm model %s k=%d", cm.Device, cm.K)
		}
		if p.commModels[m] == nil {
			p.commModels[m] = make(map[int]*CommModel)
		}
		p.commModels[m][cm.K] = &CommModel{GPU: m, K: cm.K, Fit: cm.Model}
	}
	for _, d := range in.Degraded {
		m := gpu.ID(d.Device)
		if _, ok := gpu.Lookup(m); !ok {
			return fail(in.Version, "degraded entry references %w %q", ErrUnknownDevice, d.Device)
		}
		if d.Reason == "" {
			return fail(in.Version, "degraded entry for %q lacks a reason", d.Device)
		}
		p.setDegraded(m, d.Reason)
	}
	return p, nil
}
