package ceer

import (
	"encoding/json"
	"fmt"
	"io"

	"ceer/internal/gpu"
	"ceer/internal/ops"
	"ceer/internal/regress"
)

// persistVersion guards the on-disk format.
const persistVersion = 1

// predictorJSON is the serialized form of a trained Predictor. Only the
// chosen per-op models are persisted (the rejected selection candidates
// are training-time artifacts).
type predictorJSON struct {
	Version int `json:"version"`

	HeavyTypes []ops.Type           `json:"heavy_types"`
	LightTypes []ops.Type           `json:"light_types"`
	CPUTypes   []ops.Type           `json:"cpu_types"`
	ClassMeans map[ops.Type]float64 `json:"class_means"`

	OpModels []opModelJSON `json:"op_models"`

	LightMedian float64 `json:"light_median"`
	CPUMedian   float64 `json:"cpu_median"`

	CommModels []commModelJSON `json:"comm_models"`
}

type opModelJSON struct {
	Family   string         `json:"gpu"`
	OpType   ops.Type       `json:"op"`
	TrainObs int            `json:"train_obs"`
	Model    *regress.Model `json:"model"`
}

type commModelJSON struct {
	Family string         `json:"gpu"`
	K      int            `json:"k"`
	Model  *regress.Model `json:"model"`
}

// Save serializes the trained predictor as JSON.
func (p *Predictor) Save(w io.Writer) error {
	out := predictorJSON{
		Version:     persistVersion,
		ClassMeans:  p.Class.MeanOnThresholdGPU,
		LightMedian: p.LightMedian,
		CPUMedian:   p.CPUMedian,
	}
	for t := range p.Class.Heavy {
		out.HeavyTypes = append(out.HeavyTypes, t)
	}
	for t := range p.Class.Light {
		out.LightTypes = append(out.LightTypes, t)
	}
	for t := range p.Class.CPUOps {
		out.CPUTypes = append(out.CPUTypes, t)
	}
	sortTypes(out.HeavyTypes)
	sortTypes(out.LightTypes)
	sortTypes(out.CPUTypes)
	for _, om := range p.OpModels() {
		out.OpModels = append(out.OpModels, opModelJSON{
			Family:   om.GPU.Family(),
			OpType:   om.OpType,
			TrainObs: om.TrainObs,
			Model:    om.Model(),
		})
	}
	for _, m := range gpu.AllModels() {
		for k := 1; k < 16; k++ {
			if cm, ok := p.commModels[m][k]; ok {
				out.CommModels = append(out.CommModels, commModelJSON{
					Family: m.Family(), K: k, Model: cm.Fit,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load restores a predictor previously written by Save.
func Load(r io.Reader) (*Predictor, error) {
	var in predictorJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("ceer: decoding predictor: %w", err)
	}
	if in.Version != persistVersion {
		return nil, fmt.Errorf("ceer: unsupported predictor version %d (want %d)", in.Version, persistVersion)
	}
	if in.LightMedian <= 0 || in.CPUMedian <= 0 {
		return nil, fmt.Errorf("ceer: serialized medians must be positive")
	}
	p := &Predictor{
		Class: &Classification{
			Heavy:              make(map[ops.Type]bool, len(in.HeavyTypes)),
			Light:              make(map[ops.Type]bool, len(in.LightTypes)),
			CPUOps:             make(map[ops.Type]bool, len(in.CPUTypes)),
			MeanOnThresholdGPU: in.ClassMeans,
		},
		opModels:    make(map[gpu.Model]map[ops.Type]*OpModel),
		commModels:  make(map[gpu.Model]map[int]*CommModel),
		LightMedian: in.LightMedian,
		CPUMedian:   in.CPUMedian,
	}
	for _, t := range in.HeavyTypes {
		p.Class.Heavy[t] = true
	}
	for _, t := range in.LightTypes {
		p.Class.Light[t] = true
	}
	for _, t := range in.CPUTypes {
		p.Class.CPUOps[t] = true
	}
	for _, om := range in.OpModels {
		m, ok := gpu.ModelByFamily(om.Family)
		if !ok {
			return nil, fmt.Errorf("ceer: unknown GPU family %q in op model", om.Family)
		}
		if om.Model == nil {
			return nil, fmt.Errorf("ceer: op model %s/%s missing regression", om.Family, om.OpType)
		}
		if p.opModels[m] == nil {
			p.opModels[m] = make(map[ops.Type]*OpModel)
		}
		p.opModels[m][om.OpType] = &OpModel{
			GPU:       m,
			OpType:    om.OpType,
			TrainObs:  om.TrainObs,
			Selection: &regress.Selection{Chosen: om.Model},
		}
	}
	for _, cm := range in.CommModels {
		m, ok := gpu.ModelByFamily(cm.Family)
		if !ok {
			return nil, fmt.Errorf("ceer: unknown GPU family %q in comm model", cm.Family)
		}
		if cm.Model == nil || cm.K < 1 {
			return nil, fmt.Errorf("ceer: malformed comm model %s k=%d", cm.Family, cm.K)
		}
		if p.commModels[m] == nil {
			p.commModels[m] = make(map[int]*CommModel)
		}
		p.commModels[m][cm.K] = &CommModel{GPU: m, K: cm.K, Fit: cm.Model}
	}
	return p, nil
}
