package ceer

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
	"ceer/internal/regress"
	"ceer/internal/stats"
	"ceer/internal/trace"
)

// OpModel is one fitted heavy-operation compute-time model.
type OpModel struct {
	GPU    gpu.ID
	OpType ops.Type
	// Selection holds the linear and (when fit) quadratic candidates and
	// the chosen model.
	Selection *regress.Selection
	// TrainObs is the number of (instance) observations used.
	TrainObs int
	// Stats holds the chosen model's training-time sufficient
	// statistics, the seed for incremental recalibration (nil on
	// predictors loaded from pre-v3 files; the calibrator seeds an
	// empty accumulator from the model shape instead).
	Stats *regress.SuffStats
}

// Model returns the chosen regression model.
func (m *OpModel) Model() *regress.Model { return m.Selection.Chosen }

// CommModel is the fitted per-(GPU, k) communication-overhead model:
// overhead seconds as a linear function of the parameter count.
type CommModel struct {
	GPU gpu.ID
	K   int
	Fit *regress.Model
}

// CommObs is one observed communication overhead: the measured
// per-iteration training time minus the summed op compute time, for one
// training-set CNN on one (GPU, k) configuration (Section IV-C).
type CommObs struct {
	CNN      string
	GPU      gpu.ID
	K        int
	Params   int64
	Overhead float64 // seconds per iteration
}

// Predictor is a trained Ceer instance.
type Predictor struct {
	Class *Classification
	// opModels maps GPU → heavy op type → fitted model.
	opModels map[gpu.ID]map[ops.Type]*OpModel
	// LightMedian and CPUMedian are the t̃_l and t̃_c estimators of
	// Section IV-B: GPU-, CNN-, and operation-oblivious sample medians.
	LightMedian float64
	CPUMedian   float64
	// commModels maps GPU → k → fitted overhead model.
	commModels map[gpu.ID]map[int]*CommModel
	// degraded maps devices with incomplete campaign coverage to a
	// human-readable reason. Predictions on a degraded device rest on
	// partial training data; the recommender prefers clean devices and
	// labels degraded candidates.
	degraded map[gpu.ID]string

	// memoMu guards memo, the cross-call heavy-op prediction cache of
	// the serving path, keyed by (device, op signature). A trained
	// predictor's models are immutable, and a signature determines the
	// feature vector, so entries never invalidate; the memo is shared
	// by every graph predicted through this instance (identical layers
	// in different CNNs hit the same entry).
	memoMu sync.RWMutex
	memo   map[memoKey]float64

	// evals counts heavy-op regression evaluations — the work the fold
	// and memo exist to avoid; see ModelEvaluations.
	evals atomic.Uint64
}

// memoKey identifies one memoized heavy-op prediction.
type memoKey struct {
	gpu gpu.ID
	sig ops.Signature
}

// Train fits all Ceer models from an op-level profile bundle (the 8
// training CNNs × 4 GPU models) and end-to-end communication
// observations, with automatic linear-vs-quadratic selection per heavy
// operation.
func Train(bundle *trace.Bundle, commObs []CommObs) (*Predictor, error) {
	return TrainWithDegree(bundle, commObs, 0)
}

// TrainWithDegree is Train with the per-op polynomial degree forced:
// 1 = all-linear, 2 = all-quadratic (falling back to linear only when a
// quadratic cannot be fit), 0 = automatic selection (Section IV-B).
// Forcing the degree supports the model-selection ablation.
func TrainWithDegree(bundle *trace.Bundle, commObs []CommObs, degree int) (*Predictor, error) {
	if degree < 0 || degree > 2 {
		return nil, fmt.Errorf("ceer: unsupported forced degree %d", degree)
	}
	class, err := Classify(bundle)
	if err != nil {
		return nil, err
	}
	p := &Predictor{
		Class:      class,
		opModels:   make(map[gpu.ID]map[ops.Type]*OpModel),
		commModels: make(map[gpu.ID]map[int]*CommModel),
	}

	// Heavy-op regressions, one per (GPU, type), with rows collected
	// from the bundle's observation stream — the same incremental path
	// live calibration replays. The stream's deterministic order
	// (profiles in bundle order, series in node order) is exactly the
	// row order the materialized loop used, so the fits are
	// bit-identical to the historical batch path.
	type cellRows struct {
		xs [][]float64
		ys []float64
	}
	rows := make(map[gpu.ID]map[ops.Type]*cellRows)
	if err := bundle.Observations(func(o trace.Obs) error {
		if !class.Heavy[o.Op] {
			return nil
		}
		byType := rows[o.GPU]
		if byType == nil {
			byType = make(map[ops.Type]*cellRows)
			rows[o.GPU] = byType
		}
		c := byType[o.Op]
		if c == nil {
			c = &cellRows{}
			byType[o.Op] = c
		}
		c.xs = append(c.xs, o.Features)
		c.ys = append(c.ys, o.Seconds)
		return nil
	}); err != nil {
		return nil, err
	}
	for _, m := range gpu.All() {
		byType := rows[m]
		if len(byType) == 0 {
			continue
		}
		p.opModels[m] = make(map[ops.Type]*OpModel, len(byType))
		for t, c := range byType {
			sel, st, err := fitOpModel(c.xs, c.ys, degree)
			if err != nil {
				return nil, fmt.Errorf("ceer: fitting %s on %s: %w", t, m.Family(), err)
			}
			p.opModels[m][t] = &OpModel{GPU: m, OpType: t, Selection: sel, TrainObs: len(c.ys), Stats: st}
		}
	}

	// Median estimators over all light / CPU op instances across all
	// GPUs and CNNs (raw retained samples).
	var lightSamples, cpuSamples []float64
	for _, prof := range bundle.Profiles {
		for _, s := range prof.Series {
			switch class.Of(s.OpType) {
			case ops.LightGPU:
				lightSamples = append(lightSamples, s.Agg.Retained()...)
			case ops.CPU:
				cpuSamples = append(cpuSamples, s.Agg.Retained()...)
			}
		}
	}
	if len(lightSamples) == 0 || len(cpuSamples) == 0 {
		return nil, fmt.Errorf("ceer: bundle lacks light (%d) or CPU (%d) samples",
			len(lightSamples), len(cpuSamples))
	}
	p.LightMedian = stats.Median(lightSamples)
	p.CPUMedian = stats.Median(cpuSamples)

	// Communication models: per (GPU, k), linear in the parameter count.
	grouped := make(map[gpu.ID]map[int][]CommObs)
	for _, o := range commObs {
		if grouped[o.GPU] == nil {
			grouped[o.GPU] = make(map[int][]CommObs)
		}
		grouped[o.GPU][o.K] = append(grouped[o.GPU][o.K], o)
	}
	for m, byK := range grouped {
		p.commModels[m] = make(map[int]*CommModel, len(byK))
		for k, obs := range byK {
			xs := make([][]float64, len(obs))
			ys := make([]float64, len(obs))
			for i, o := range obs {
				xs[i] = []float64{float64(o.Params)}
				ys[i] = o.Overhead
			}
			fit, err := regress.Fit(xs, ys, 1)
			if err != nil {
				return nil, fmt.Errorf("ceer: fitting comm model %s k=%d: %w", m.Family(), k, err)
			}
			p.commModels[m][k] = &CommModel{GPU: m, K: k, Fit: fit}
		}
	}

	// Devices whose campaign cells went missing trained on partial
	// data: flag them degraded so serving can prefer clean devices.
	// Missing is sorted, so the derived reasons are deterministic.
	for _, m := range gpu.All() {
		if missing := bundle.MissingForGPU(m); len(missing) > 0 {
			p.setDegraded(m, fmt.Sprintf("%d campaign cells missing (e.g. %s)",
				len(missing), missing[0]))
		}
	}
	return p, nil
}

// setDegraded marks a device as trained on incomplete campaign data.
func (p *Predictor) setDegraded(m gpu.ID, reason string) {
	if p.degraded == nil {
		p.degraded = make(map[gpu.ID]string)
	}
	p.degraded[m] = reason
}

// Degraded reports whether the device's models were fit on incomplete
// campaign coverage, and why.
func (p *Predictor) Degraded(m gpu.ID) (string, bool) {
	reason, ok := p.degraded[m]
	return reason, ok
}

// DegradedDevices lists the degraded devices, sorted by ID.
func (p *Predictor) DegradedDevices() []gpu.ID {
	out := make([]gpu.ID, 0, len(p.degraded))
	for m := range p.degraded {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// fitOpModel fits one heavy-op model, honoring a forced degree, and
// accumulates the chosen model's sufficient statistics so calibration
// can continue the fit incrementally from its exact training state.
func fitOpModel(xs [][]float64, ys []float64, degree int) (*regress.Selection, *regress.SuffStats, error) {
	sel, err := selectOpModel(xs, ys, degree)
	if err != nil {
		return nil, nil, err
	}
	st, err := regress.StatsForModel(sel.Chosen)
	if err != nil {
		return nil, nil, err
	}
	for i := range xs {
		st.Add(xs[i], ys[i])
	}
	return sel, st, nil
}

// selectOpModel picks the model per the forced-degree rules.
func selectOpModel(xs [][]float64, ys []float64, degree int) (*regress.Selection, error) {
	switch degree {
	case 0:
		return regress.SelectDegree(xs, ys)
	case 1:
		lin, err := regress.Fit(xs, ys, 1)
		if err != nil {
			return nil, err
		}
		return &regress.Selection{Chosen: lin, Linear: lin}, nil
	default:
		quad, err := regress.Fit(xs, ys, 2)
		if err != nil {
			// Too few observations for a quadratic: fall back to linear.
			lin, lerr := regress.Fit(xs, ys, 1)
			if lerr != nil {
				return nil, err
			}
			return &regress.Selection{Chosen: lin, Linear: lin}, nil
		}
		return &regress.Selection{Chosen: quad, Quadratic: quad}, nil
	}
}

// OpModelFor returns the heavy-op model for (GPU, type), if trained.
func (p *Predictor) OpModelFor(m gpu.ID, t ops.Type) (*OpModel, bool) {
	om, ok := p.opModels[m][t]
	return om, ok
}

// OpModels returns all heavy-op models sorted by (GPU family, type) for
// reporting.
func (p *Predictor) OpModels() []*OpModel {
	var out []*OpModel
	for _, byType := range p.opModels {
		for _, om := range byType {
			out = append(out, om)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].GPU.Family() != out[j].GPU.Family() {
			return out[i].GPU.Family() < out[j].GPU.Family()
		}
		return out[i].OpType < out[j].OpType
	})
	return out
}

// CommModelFor returns the communication model for (GPU, k), if trained.
func (p *Predictor) CommModelFor(m gpu.ID, k int) (*CommModel, bool) {
	cm, ok := p.commModels[m][k]
	return cm, ok
}

// PredictComm evaluates S_GPU(CNN): the predicted per-iteration
// communication overhead for a model with the given parameter count.
func (p *Predictor) PredictComm(m gpu.ID, k int, params int64) (float64, error) {
	cm, ok := p.commModels[m][k]
	if !ok {
		return 0, fmt.Errorf("ceer: no communication model for %s k=%d", m.Family(), k)
	}
	s := cm.Fit.PredictScalar(float64(params))
	if s < 0 {
		s = 0
	}
	return s, nil
}

// ModelEvaluations returns the cumulative number of heavy-op regression
// evaluations this predictor has performed across all serving-path
// calls (folded memo misses plus every unfolded per-node evaluation).
// The folded path evaluates each (device, signature) pair at most once
// per predictor lifetime, so the counter directly measures the fold's
// work reduction; see BenchmarkRecommendSweep.
func (p *Predictor) ModelEvaluations() uint64 { return p.evals.Load() }

// evalHeavy runs one heavy-op regression (counting it) and clamps the
// prediction at zero.
func (p *Predictor) evalHeavy(om *OpModel, feats []float64) float64 {
	p.evals.Add(1)
	pred := om.Model().Predict(feats)
	if pred < 0 {
		pred = 0
	}
	return pred
}

// memoizedHeavy returns the heavy-op prediction for a fold entry,
// evaluating the regression only on the first request per (device,
// signature). Reads are lock-striped by an RWMutex and allocation-free
// on the warm path.
func (p *Predictor) memoizedHeavy(m gpu.ID, om *OpModel, e *graph.FoldEntry) float64 {
	key := memoKey{m, e.Sig}
	p.memoMu.RLock()
	v, ok := p.memo[key]
	p.memoMu.RUnlock()
	if ok {
		return v
	}
	v = p.evalHeavy(om, e.Features)
	p.memoMu.Lock()
	if p.memo == nil {
		p.memo = make(map[memoKey]float64)
	}
	p.memo[key] = v
	p.memoMu.Unlock()
	return v
}

// Variant selects which model components a prediction uses, enabling
// the paper's ablation studies (Sections IV-A and IV-B).
type Variant int

const (
	// Full is the complete Ceer model of Eq. (2).
	Full Variant = iota
	// NoComm drops the communication overhead S_GPU(CNN) — Eq. (1).
	NoComm
	// HeavyOnly drops the light-GPU and CPU medians.
	HeavyOnly
	// HeavyOnlyNoComm drops both.
	HeavyOnlyNoComm
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Full:
		return "full"
	case NoComm:
		return "no-comm"
	case HeavyOnly:
		return "heavy-only"
	case HeavyOnlyNoComm:
		return "heavy-only-no-comm"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// IterPrediction decomposes a predicted per-iteration training time.
type IterPrediction struct {
	// HeavySeconds, LightSeconds, CPUSeconds, CommSeconds decompose
	// PerIterSeconds.
	HeavySeconds float64
	LightSeconds float64
	CPUSeconds   float64
	CommSeconds  float64
	// PerIterSeconds is the Eq. (2) parenthesized term.
	PerIterSeconds float64
	// UnseenHeavy lists heavy op types for which no trained model
	// exists; their instances were estimated with the light median and
	// the prediction should be treated as degraded (Section IV-D).
	UnseenHeavy []ops.Type
}

// opSums is the k-independent op-sum of Eq. (2)'s parenthesized term
// for one (graph, device): everything except the communication
// overhead, in count-weighted form so any ablation variant can be
// assembled from it without re-walking the graph.
type opSums struct {
	// modeledHeavy is Σ count × prediction over heavy classes with a
	// trained model.
	modeledHeavy float64
	// unseenHeavy, light, cpu count instances estimated by medians.
	unseenHeavy int
	light       int
	cpu         int
	// unseenTypes lists the heavy types lacking a model, sorted. The
	// slice is shared by repeated calls; callers must not modify it.
	unseenTypes []ops.Type
}

// foldSums evaluates the op-sum over the graph's signature fold: each
// unique (signature, phase) class is costed once and weighted by its
// multiplicity, so the work scales with the number of unique ops, not
// DAG nodes, and memoized classes cost a map read.
func (p *Predictor) foldSums(g *graph.Graph, m gpu.ID) opSums {
	var s opSums
	byType := p.opModels[m]
	entries := g.Fold().Entries()
	for i := range entries {
		e := &entries[i]
		t := e.Rep.Op.Type
		switch p.Class.Of(t) {
		case ops.HeavyGPU:
			if om, ok := byType[t]; ok {
				s.modeledHeavy += float64(e.Count) * p.memoizedHeavy(m, om, e)
				continue
			}
			s.unseenHeavy += e.Count
			// Entries are signature-sorted, so one type's classes are
			// contiguous: dedup against the last element suffices.
			if n := len(s.unseenTypes); n == 0 || s.unseenTypes[n-1] != t {
				s.unseenTypes = append(s.unseenTypes, t)
			}
		case ops.LightGPU:
			s.light += e.Count
		case ops.CPU:
			s.cpu += e.Count
		}
	}
	sortTypes(s.unseenTypes)
	return s
}

// assembleIter builds an IterPrediction from precomputed op-sums plus
// the (only k-dependent) communication term.
func (p *Predictor) assembleIter(g *graph.Graph, m gpu.ID, k int, v Variant, s opSums) (IterPrediction, error) {
	var out IterPrediction
	out.HeavySeconds = s.modeledHeavy
	if v == Full || v == NoComm {
		out.HeavySeconds += float64(s.unseenHeavy) * p.LightMedian
		out.LightSeconds = float64(s.light) * p.LightMedian
		out.CPUSeconds = float64(s.cpu) * p.CPUMedian
	}
	if v == Full || v == HeavyOnly {
		c, err := p.PredictComm(m, k, g.Params)
		if err != nil {
			return IterPrediction{}, err
		}
		out.CommSeconds = c
	}
	out.PerIterSeconds = out.HeavySeconds + out.LightSeconds + out.CPUSeconds + out.CommSeconds
	if len(s.unseenTypes) > 0 {
		out.UnseenHeavy = append([]ops.Type(nil), s.unseenTypes...)
	}
	return out, nil
}

// PredictIteration predicts the per-iteration training time of the CNN
// graph on k GPUs of the given model, per Eq. (2)'s parenthesized term.
// It evaluates the graph's signature fold — one regression per unique
// op class, memoized across calls per (device, signature) — and is
// allocation-free once warm; PredictIterationUnfolded is the per-node
// reference path.
func (p *Predictor) PredictIteration(g *graph.Graph, m gpu.ID, k int, v Variant) (IterPrediction, error) {
	return p.assembleIter(g, m, k, v, p.foldSums(g, m))
}

// PredictIterationUnfolded is PredictIteration computed the naive way:
// one model evaluation per DAG node, no fold, no memo. It exists as the
// reference implementation for the folded-vs-naive equivalence tests
// and benchmarks, and for per-node attribution (see ExplainNodes).
func (p *Predictor) PredictIterationUnfolded(g *graph.Graph, m gpu.ID, k int, v Variant) (IterPrediction, error) {
	var out IterPrediction
	unseen := make(map[ops.Type]bool)
	for _, n := range g.Nodes() {
		t := n.Op.Type
		switch p.Class.Of(t) {
		case ops.HeavyGPU:
			om, ok := p.opModels[m][t]
			if !ok {
				unseen[t] = true
				if v == Full || v == NoComm {
					out.HeavySeconds += p.LightMedian
				}
				continue
			}
			out.HeavySeconds += p.evalHeavy(om, n.Op.Features())
		case ops.LightGPU:
			if v == Full || v == NoComm {
				out.LightSeconds += p.LightMedian
			}
		case ops.CPU:
			if v == Full || v == NoComm {
				out.CPUSeconds += p.CPUMedian
			}
		}
	}
	if v == Full || v == HeavyOnly {
		s, err := p.PredictComm(m, k, g.Params)
		if err != nil {
			return IterPrediction{}, err
		}
		out.CommSeconds = s
	}
	out.PerIterSeconds = out.HeavySeconds + out.LightSeconds + out.CPUSeconds + out.CommSeconds
	for t := range unseen {
		out.UnseenHeavy = append(out.UnseenHeavy, t)
	}
	sortTypes(out.UnseenHeavy)
	return out, nil
}

// Prediction is a full training-time and cost prediction for one
// configuration.
type Prediction struct {
	CNN  string
	Cfg  cloud.Config
	Iter IterPrediction
	// Iterations is D/(k·B).
	Iterations int64
	// TotalSeconds is the predicted one-epoch training time T.
	TotalSeconds float64
	// HourlyUSD and CostUSD give the configuration's price and the
	// predicted training cost C = T × c.
	HourlyUSD float64
	CostUSD   float64
}

// PredictTraining predicts the end-to-end training time and cost of one
// epoch of the dataset on the configuration, per Eq. (2).
func (p *Predictor) PredictTraining(g *graph.Graph, cfg cloud.Config, ds dataset.Dataset, pricing cloud.Pricing) (Prediction, error) {
	return p.PredictTrainingVariant(g, cfg, ds, pricing, Full)
}

// PredictTrainingVariant is PredictTraining with an ablation variant.
func (p *Predictor) PredictTrainingVariant(g *graph.Graph, cfg cloud.Config, ds dataset.Dataset, pricing cloud.Pricing, v Variant) (Prediction, error) {
	if !cfg.Valid() {
		return Prediction{}, fmt.Errorf("ceer: invalid config %s", cfg)
	}
	iter, err := p.PredictIteration(g, cfg.GPU, cfg.K, v)
	if err != nil {
		return Prediction{}, err
	}
	return p.finishPrediction(g, cfg, ds, pricing, iter)
}

// finishPrediction extends a per-iteration prediction to one epoch's
// time and cost.
func (p *Predictor) finishPrediction(g *graph.Graph, cfg cloud.Config, ds dataset.Dataset, pricing cloud.Pricing, iter IterPrediction) (Prediction, error) {
	hourly, err := cfg.HourlyCost(pricing)
	if err != nil {
		return Prediction{}, err
	}
	iters := ds.Iterations(cfg.K, g.BatchSize)
	total := iter.PerIterSeconds * float64(iters)
	return Prediction{
		CNN:          g.Name,
		Cfg:          cfg,
		Iter:         iter,
		Iterations:   iters,
		TotalSeconds: total,
		HourlyUSD:    hourly,
		CostUSD:      total / 3600 * hourly,
	}, nil
}
