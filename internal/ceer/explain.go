package ceer

import (
	"sort"

	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
)

// TypeContribution attributes a slice of a predicted iteration to one
// operation type.
type TypeContribution struct {
	OpType ops.Type
	// Class is Ceer's classification of the type.
	Class ops.Class
	// Count is the number of instances in the graph.
	Count int
	// Seconds is the predicted per-iteration time attributed to the
	// type.
	Seconds float64
	// Share is Seconds over the whole predicted iteration (including
	// communication).
	Share float64
}

// Explanation decomposes one per-iteration prediction for reporting:
// per-type contributions sorted by predicted time, plus the
// communication overhead term.
type Explanation struct {
	Iter          IterPrediction
	Contributions []TypeContribution
	// CommShare is the communication overhead's share of the iteration.
	CommShare float64
}

// ExplainIteration predicts one training iteration and attributes the
// prediction to operation types — the "why is this CNN slow here"
// companion to PredictIteration (used by `ceer predict -explain`). The
// attribution walks the graph's signature fold, so it shares the
// serving path's per-(device, signature) memo; use ExplainNodes for a
// per-node breakdown.
func (p *Predictor) ExplainIteration(g *graph.Graph, m gpu.ID, k int) (*Explanation, error) {
	iter, err := p.PredictIteration(g, m, k, Full)
	if err != nil {
		return nil, err
	}
	type acc struct {
		count   int
		seconds float64
	}
	byType := make(map[ops.Type]*acc)
	entries := g.Fold().Entries()
	for i := range entries {
		e := &entries[i]
		t := e.Rep.Op.Type
		a := byType[t]
		if a == nil {
			a = &acc{}
			byType[t] = a
		}
		a.count += e.Count
		switch p.Class.Of(t) {
		case ops.HeavyGPU:
			if om, ok := p.opModels[m][t]; ok {
				a.seconds += float64(e.Count) * p.memoizedHeavy(m, om, e)
			} else {
				a.seconds += float64(e.Count) * p.LightMedian
			}
		case ops.LightGPU:
			a.seconds += float64(e.Count) * p.LightMedian
		case ops.CPU:
			a.seconds += float64(e.Count) * p.CPUMedian
		}
	}
	ex := &Explanation{Iter: iter}
	total := iter.PerIterSeconds
	for t, a := range byType {
		c := TypeContribution{
			OpType:  t,
			Class:   p.Class.Of(t),
			Count:   a.count,
			Seconds: a.seconds,
		}
		if total > 0 {
			c.Share = a.seconds / total
		}
		ex.Contributions = append(ex.Contributions, c)
	}
	sort.Slice(ex.Contributions, func(i, j int) bool {
		if ex.Contributions[i].Seconds > ex.Contributions[j].Seconds {
			return true
		}
		if ex.Contributions[i].Seconds < ex.Contributions[j].Seconds {
			return false
		}
		return ex.Contributions[i].OpType < ex.Contributions[j].OpType
	})
	if total > 0 {
		ex.CommShare = iter.CommSeconds / total
	}
	return ex, nil
}

// NodeContribution attributes predicted per-iteration time to one DAG
// node.
type NodeContribution struct {
	ID     graph.NodeID
	Name   string
	OpType ops.Type
	Class  ops.Class
	Phase  graph.Phase
	// Seconds is the node's predicted compute time.
	Seconds float64
}

// ExplainNodes attributes a predicted iteration node by node — the
// per-node attribution for pinpointing an individual layer (used by
// `ceer predict -explain-nodes`). Nodes are returned sorted by
// predicted time (descending), ties by ID. The communication term has
// no node to attach to; read it from ExplainIteration.
//
// Attribution reuses the graph's cached signature fold: each unique
// class is costed once (through the shared per-(device, signature)
// memo) and fanned out to its member nodes, so repeated invocations —
// the CLI re-explaining after every campaign — do no per-node model
// evaluations instead of one per DAG node.
func (p *Predictor) ExplainNodes(g *graph.Graph, m gpu.ID) []NodeContribution {
	fold := g.Fold()
	entries := fold.Entries()
	secs := make([]float64, len(entries))
	for i := range entries {
		e := &entries[i]
		t := e.Rep.Op.Type
		switch p.Class.Of(t) {
		case ops.HeavyGPU:
			if om, ok := p.opModels[m][t]; ok {
				secs[i] = p.memoizedHeavy(m, om, e)
			} else {
				secs[i] = p.LightMedian
			}
		case ops.LightGPU:
			secs[i] = p.LightMedian
		case ops.CPU:
			secs[i] = p.CPUMedian
		}
	}
	out := make([]NodeContribution, 0, g.Len())
	for ni, n := range g.Nodes() {
		t := n.Op.Type
		out = append(out, NodeContribution{
			ID: n.ID, Name: n.Name, OpType: t, Class: p.Class.Of(t), Phase: n.Phase,
			Seconds: secs[fold.ClassOf(ni)],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds > out[j].Seconds {
			return true
		}
		if out[i].Seconds < out[j].Seconds {
			return false
		}
		return out[i].ID < out[j].ID
	})
	return out
}
