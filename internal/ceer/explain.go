package ceer

import (
	"sort"

	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
)

// TypeContribution attributes a slice of a predicted iteration to one
// operation type.
type TypeContribution struct {
	OpType ops.Type
	// Class is Ceer's classification of the type.
	Class ops.Class
	// Count is the number of instances in the graph.
	Count int
	// Seconds is the predicted per-iteration time attributed to the
	// type.
	Seconds float64
	// Share is Seconds over the whole predicted iteration (including
	// communication).
	Share float64
}

// Explanation decomposes one per-iteration prediction for reporting:
// per-type contributions sorted by predicted time, plus the
// communication overhead term.
type Explanation struct {
	Iter          IterPrediction
	Contributions []TypeContribution
	// CommShare is the communication overhead's share of the iteration.
	CommShare float64
}

// ExplainIteration predicts one training iteration and attributes the
// prediction to operation types — the "why is this CNN slow here"
// companion to PredictIteration (used by `ceer predict -explain`).
func (p *Predictor) ExplainIteration(g *graph.Graph, m gpu.ID, k int) (*Explanation, error) {
	iter, err := p.PredictIteration(g, m, k, Full)
	if err != nil {
		return nil, err
	}
	type acc struct {
		count   int
		seconds float64
	}
	byType := make(map[ops.Type]*acc)
	for _, n := range g.Nodes() {
		t := n.Op.Type
		a := byType[t]
		if a == nil {
			a = &acc{}
			byType[t] = a
		}
		a.count++
		switch p.Class.Of(t) {
		case ops.HeavyGPU:
			if om, ok := p.opModels[m][t]; ok {
				pred := om.Model().Predict(n.Op.Features())
				if pred < 0 {
					pred = 0
				}
				a.seconds += pred
			} else {
				a.seconds += p.LightMedian
			}
		case ops.LightGPU:
			a.seconds += p.LightMedian
		case ops.CPU:
			a.seconds += p.CPUMedian
		}
	}
	ex := &Explanation{Iter: iter}
	total := iter.PerIterSeconds
	for t, a := range byType {
		c := TypeContribution{
			OpType:  t,
			Class:   p.Class.Of(t),
			Count:   a.count,
			Seconds: a.seconds,
		}
		if total > 0 {
			c.Share = a.seconds / total
		}
		ex.Contributions = append(ex.Contributions, c)
	}
	sort.Slice(ex.Contributions, func(i, j int) bool {
		if ex.Contributions[i].Seconds != ex.Contributions[j].Seconds {
			return ex.Contributions[i].Seconds > ex.Contributions[j].Seconds
		}
		return ex.Contributions[i].OpType < ex.Contributions[j].OpType
	})
	if total > 0 {
		ex.CommShare = iter.CommSeconds / total
	}
	return ex, nil
}
