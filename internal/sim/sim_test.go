package sim

import (
	"context"

	"math"
	"testing"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
	"ceer/internal/zoo"
)

func smallNet(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := zoo.Build("inception-v1", 8)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestProfileBasics(t *testing.T) {
	g := smallNet(t)
	p := &Profiler{Seed: 1, Iterations: 20, Retain: 8}
	prof, err := p.Profile(context.Background(), g, gpu.T4)
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(prof.Series) != g.Len() {
		t.Errorf("series count %d != node count %d", len(prof.Series), g.Len())
	}
	if prof.Params != g.Params || prof.BatchSize != 8 {
		t.Error("profile metadata wrong")
	}
	if prof.MeanIterSeconds() <= 0 {
		t.Error("iteration total should be positive")
	}
	// Per-iteration total must equal the sum of node means (within noise
	// bookkeeping, they are the same numbers).
	sum := 0.0
	for _, s := range prof.Series {
		sum += s.Agg.Mean()
	}
	if math.Abs(sum-prof.MeanIterSeconds())/sum > 1e-9 {
		t.Errorf("sum of node means %v != iter total %v", sum, prof.MeanIterSeconds())
	}
}

func TestProfileDeterministic(t *testing.T) {
	g := smallNet(t)
	p := &Profiler{Seed: 7, Iterations: 10, Retain: 4}
	a, err := p.Profile(context.Background(), g, gpu.V100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Profile(context.Background(), g, gpu.V100)
	if err != nil {
		t.Fatal(err)
	}
	if !eqExact(a.MeanIterSeconds(), b.MeanIterSeconds()) {
		t.Error("same seed should reproduce identical profiles")
	}
	p2 := &Profiler{Seed: 8, Iterations: 10, Retain: 4}
	c, err := p2.Profile(context.Background(), g, gpu.V100)
	if err != nil {
		t.Fatal(err)
	}
	if eqExact(a.MeanIterSeconds(), c.MeanIterSeconds()) {
		t.Error("different seeds should differ")
	}
}

func TestProfileErrors(t *testing.T) {
	g := smallNet(t)
	if _, err := (&Profiler{Seed: 1, Iterations: 0}).Profile(context.Background(), g, gpu.T4); err == nil {
		t.Error("zero iterations should error")
	}
	if _, err := (&Profiler{Seed: 1, Iterations: 5}).Profile(context.Background(), g, gpu.ID("no-such-device")); err == nil {
		t.Error("unknown GPU should error")
	}
}

func TestProfileAll(t *testing.T) {
	p := &Profiler{Seed: 3, Iterations: 5, Retain: 4}
	b, err := p.ProfileAll(context.Background(), zoo.Build, []string{"alexnet", "inception-v1"}, 4,
		[]gpu.ID{gpu.V100, gpu.K80})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Profiles) != 4 {
		t.Errorf("bundle has %d profiles, want 4", len(b.Profiles))
	}
	if _, err := p.ProfileAll(context.Background(), zoo.Build, []string{"nope"}, 4, []gpu.ID{gpu.V100}); err == nil {
		t.Error("unknown CNN should error")
	}
}

func TestHeavyOpsDominate(t *testing.T) {
	// Paper: heavy ops contribute 47%–94% of training time; light < 7%.
	p := &Profiler{Seed: 5, Iterations: 10, Retain: 4}
	for _, name := range []string{"inception-v1", "resnet-50", "vgg-16"} {
		g, err := zoo.Build(name, 32)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := p.Profile(context.Background(), g, gpu.K80)
		if err != nil {
			t.Fatal(err)
		}
		share := prof.ClassShare()
		if share[ops.HeavyGPU] < 0.47 {
			t.Errorf("%s heavy share = %.2f, want >= 0.47", name, share[ops.HeavyGPU])
		}
		if share[ops.LightGPU] > 0.10 {
			t.Errorf("%s light share = %.2f, want <= 0.10", name, share[ops.LightGPU])
		}
	}
}

func TestTrainMeasurement(t *testing.T) {
	g := smallNet(t)
	ds := dataset.Dataset{Name: "d", Samples: 6400}
	m, err := Train(context.Background(), g, cloud.Config{GPU: gpu.T4, K: 1}, ds, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if m.Iterations != 6400/8 {
		t.Errorf("iterations = %d, want %d", m.Iterations, 6400/8)
	}
	if m.PerIterSeconds <= 0 || m.TotalSeconds <= 0 {
		t.Error("non-positive times")
	}
	if math.Abs(m.PerIterSeconds-(m.ComputeSeconds+m.CommSeconds)) > 1e-12 {
		t.Error("per-iteration decomposition inconsistent")
	}
	cost, err := m.CostUSD(cloud.OnDemand)
	if err != nil || cost <= 0 {
		t.Errorf("cost = %v, %v", cost, err)
	}
	wantCost := m.TotalSeconds / 3600 * 0.752
	if math.Abs(cost-wantCost) > 1e-9 {
		t.Errorf("cost = %v, want %v", cost, wantCost)
	}
}

func TestTrainMultiGPUScaling(t *testing.T) {
	// More GPUs: fewer iterations, lower total time, but diminishing
	// returns (paper Fig. 6). Uses the paper's batch size of 32; at tiny
	// batch sizes data parallelism genuinely saturates.
	g, err := zoo.Build("inception-v1", 32)
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Dataset{Name: "d", Samples: 64000}
	var totals []float64
	for k := 1; k <= 4; k++ {
		m, err := Train(context.Background(), g, cloud.Config{GPU: gpu.T4, K: k}, ds, 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		totals = append(totals, m.TotalSeconds)
	}
	for k := 1; k < 4; k++ {
		if totals[k] >= totals[k-1] {
			t.Errorf("total time not decreasing at k=%d: %v", k+1, totals)
		}
	}
	// Speedup at 4 GPUs must be sub-linear.
	if speedup := totals[0] / totals[3]; speedup >= 4 {
		t.Errorf("4-GPU speedup %.2f should be sub-linear", speedup)
	}
}

func TestTrainErrors(t *testing.T) {
	g := smallNet(t)
	ds := dataset.Dataset{Name: "d", Samples: 100}
	if _, err := Train(context.Background(), g, cloud.Config{GPU: gpu.T4, K: 0}, ds, 5, 1); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := Train(context.Background(), g, cloud.Config{GPU: gpu.T4, K: 1}, ds, 0, 1); err == nil {
		t.Error("zero measureIters should error")
	}
}

func TestTrainDeterministic(t *testing.T) {
	g := smallNet(t)
	ds := dataset.Dataset{Name: "d", Samples: 1000}
	a, _ := Train(context.Background(), g, cloud.Config{GPU: gpu.M60, K: 2}, ds, 5, 9) // valid config; determinism, not errors, is under test
	b, _ := Train(context.Background(), g, cloud.Config{GPU: gpu.M60, K: 2}, ds, 5, 9) // valid config; determinism, not errors, is under test
	if !eqExact(a.TotalSeconds, b.TotalSeconds) {
		t.Error("Train not deterministic for fixed seed")
	}
}

func TestGPUSpeedOrderingEndToEnd(t *testing.T) {
	// P3 must beat G4, G3, P2 end to end on a real model (Fig. 8).
	g := smallNet(t)
	ds := dataset.Dataset{Name: "d", Samples: 3200}
	times := map[gpu.ID]float64{}
	for _, m := range gpu.All() {
		r, err := Train(context.Background(), g, cloud.Config{GPU: m, K: 1}, ds, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		times[m] = r.TotalSeconds
	}
	if !(times[gpu.V100] < times[gpu.T4] && times[gpu.T4] < times[gpu.M60] && times[gpu.M60] < times[gpu.K80]) {
		t.Errorf("end-to-end ordering violated: %v", times)
	}
}

func TestMeasurementArithmetic(t *testing.T) {
	g := smallNet(t)
	ds := dataset.Dataset{Name: "d", Samples: 3200}
	m, err := Train(context.Background(), g, cloud.Config{GPU: gpu.V100, K: 2}, ds, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PerIterSeconds * float64(m.Iterations); math.Abs(got-m.TotalSeconds) > 1e-9 {
		t.Errorf("TotalSeconds %v != perIter*iters %v", m.TotalSeconds, got)
	}
	if m.Iterations != ds.Iterations(2, g.BatchSize) {
		t.Errorf("iterations = %d", m.Iterations)
	}
}

func TestCommGrowsWithKComputeDoesNot(t *testing.T) {
	g := smallNet(t)
	ds := dataset.Dataset{Name: "d", Samples: 3200}
	var prevComm float64
	var computes []float64
	for k := 1; k <= 4; k++ {
		m, err := Train(context.Background(), g, cloud.Config{GPU: gpu.T4, K: k}, ds, 12, 9)
		if err != nil {
			t.Fatal(err)
		}
		if m.CommSeconds <= prevComm {
			t.Errorf("comm not increasing at k=%d", k)
		}
		prevComm = m.CommSeconds
		computes = append(computes, m.ComputeSeconds)
	}
	// Per-GPU compute is k-independent (same replica, same batch).
	for i := 1; i < len(computes); i++ {
		if math.Abs(computes[i]-computes[0])/computes[0] > 0.05 {
			t.Errorf("per-GPU compute drifted with k: %v", computes)
		}
	}
}

func TestCostUSDPropagatesPricingErrors(t *testing.T) {
	m := Measurement{Cfg: cloud.Config{GPU: gpu.V100, K: 99}, TotalSeconds: 10}
	if _, err := m.CostUSD(cloud.OnDemand); err == nil {
		t.Error("invalid config should fail pricing")
	}
}

// eqExact reports a == b. Exact float equality is the contract under
// test here: a fixed seed must reproduce bit-identical
// results.
func eqExact(a, b float64) bool { return a == b }
