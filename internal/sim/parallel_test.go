package sim

import (
	"context"

	"errors"
	"reflect"
	"testing"

	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/zoo"
)

// TestProfileAllParallelMatchesSerial checks the load-bearing property
// of the parallel campaign: because every node's noise stream is
// derived from (Seed, CNN, GPU, node), fanning (CNN, GPU) profiles out
// over many workers yields a bundle deeply equal to the serial one,
// profile order included.
func TestProfileAllParallelMatchesSerial(t *testing.T) {
	names := []string{"vgg-11", "inception-v1"}
	models := gpu.All()

	serial := &Profiler{Seed: 3, Iterations: 25, Retain: 8, Workers: 1}
	a, err := serial.ProfileAll(context.Background(), zoo.Build, names, 16, models)
	if err != nil {
		t.Fatal(err)
	}
	parallel := &Profiler{Seed: 3, Iterations: 25, Retain: 8, Workers: 8}
	b, err := parallel.ProfileAll(context.Background(), zoo.Build, names, 16, models)
	if err != nil {
		t.Fatal(err)
	}

	if len(a.Profiles) != len(names)*len(models) || len(a.Profiles) != len(b.Profiles) {
		t.Fatalf("profile counts: serial %d, parallel %d", len(a.Profiles), len(b.Profiles))
	}
	for i := range a.Profiles {
		if a.Profiles[i].CNN != b.Profiles[i].CNN || a.Profiles[i].GPU != b.Profiles[i].GPU {
			t.Fatalf("profile %d ordering differs: %s/%s vs %s/%s", i,
				a.Profiles[i].CNN, a.Profiles[i].GPU, b.Profiles[i].CNN, b.Profiles[i].GPU)
		}
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("parallel bundle is not byte-identical to serial")
	}
}

// TestProfileAllParallelBuildError checks that a failing graph build
// surfaces the same wrapped error in parallel as in serial runs.
func TestProfileAllParallelBuildError(t *testing.T) {
	boom := errors.New("boom")
	build := func(name string, batch int64) (*graph.Graph, error) {
		if name == "bad" {
			return nil, boom
		}
		return zoo.Build(name, batch)
	}
	for _, workers := range []int{1, 4} {
		p := &Profiler{Seed: 1, Iterations: 5, Retain: 4, Workers: workers}
		_, err := p.ProfileAll(context.Background(), build, []string{"vgg-11", "bad", "inception-v1"}, 16, gpu.All())
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
	}
}
