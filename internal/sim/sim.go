// Package sim replays CNN training-iteration DAGs against the gpu and
// cloud substrates, playing the role the paper's real AWS measurement
// campaign plays: it produces op-level profiles (the training data for
// Ceer's models) and end-to-end "observed" training-time measurements
// (the ground truth the evaluation compares Ceer's predictions against).
//
// All randomness is derived deterministically from a caller-provided
// seed, the CNN name, the GPU device's stable seed ID, and the node
// ID, so every
// experiment is exactly reproducible.
package sim

import (
	"context"
	"fmt"
	"hash/fnv"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/faults"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/par"
	"ceer/internal/rng"
	"ceer/internal/trace"
)

// Profiler collects op-level compute-time samples over repeated
// training iterations, like the paper's 1,000-iteration TensorFlow
// timeline captures (Section III-A).
type Profiler struct {
	// Seed drives all measurement noise.
	Seed uint64
	// Iterations is the number of training iterations sampled.
	Iterations int
	// Retain caps the raw samples kept per node for median estimators.
	Retain int
	// Workers bounds how many (CNN, GPU) profiles ProfileAll measures
	// concurrently: <= 0 selects GOMAXPROCS, 1 runs serially on the
	// calling goroutine. Parallel runs are byte-identical to serial
	// ones because every node's noise stream is derived solely from
	// (Seed, CNN, GPU, node) and results are collected in input order.
	Workers int
}

// NewProfiler returns a profiler with the paper's defaults: 1,000
// iterations, retaining 64 raw samples per node.
func NewProfiler(seed uint64) *Profiler {
	return &Profiler{Seed: seed, Iterations: 1000, Retain: 64}
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // fnv Write never fails
	return h.Sum64()
}

// streamFor derives the per-node noise stream. Streams are keyed by
// the device's frozen SeedID, never its registry position, so
// registering extra devices (or reordering registration) leaves every
// existing measurement byte-identical.
func (p *Profiler) streamFor(cnn string, dev *gpu.Device, node graph.NodeID) *rng.Source {
	base := rng.New(p.Seed ^ hashString(cnn))
	return base.Derive(dev.SeedID<<32 ^ uint64(node))
}

// Profile runs the graph for the configured number of iterations on one
// GPU model and returns the aggregated op-level trace. The context is
// checked between iterations, so a deadline or cancellation interrupts
// a long profile promptly. Configuration errors carry the
// faults.Permanent class: no retry can cure an unknown device or a
// non-positive iteration count.
func (p *Profiler) Profile(ctx context.Context, g *graph.Graph, m gpu.ID) (*trace.Profile, error) {
	if p.Iterations <= 0 {
		return nil, faults.Permanentf("sim: profiler iterations must be positive, got %d", p.Iterations)
	}
	dev, ok := gpu.Lookup(m)
	if !ok {
		return nil, faults.Permanentf("sim: unknown GPU device %q", string(m))
	}
	nodes := g.Nodes()
	prof := &trace.Profile{
		CNN:        g.Name,
		GPU:        m,
		Iterations: p.Iterations,
		Params:     g.Params,
		BatchSize:  g.BatchSize,
		Series:     make([]*trace.Series, len(nodes)),
		IterTotal:  trace.NewAgg(p.Retain),
	}
	streams := make([]*rng.Source, len(nodes))
	for i, n := range nodes {
		streams[i] = p.streamFor(g.Name, dev, n.ID)
		prof.Series[i] = &trace.Series{
			CNN:         g.Name,
			GPU:         m,
			Node:        n.ID,
			OpType:      n.Op.Type,
			Class:       n.Op.Class(),
			Phase:       n.Phase,
			Features:    n.Op.Features(),
			InputBytes:  n.Op.InputBytes(),
			OutputBytes: n.Op.OutputBytes(),
			Agg:         trace.NewAgg(p.Retain),
		}
	}
	for iter := 0; iter < p.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		total := 0.0
		for i, n := range nodes {
			t := dev.SampleTime(n.Op, streams[i])
			prof.Series[i].Agg.Add(t)
			total += t
		}
		prof.IterTotal.Add(total)
	}
	return prof, nil
}

// ProfileAll profiles each named CNN (built at the given batch size) on
// each listed GPU device, returning the combined bundle — the full measurement
// campaign of Section III. Independent (CNN, GPU) profiles are fanned
// out over Workers goroutines; the bundle's profile order (names-major,
// devices-minor) and every sample in it are identical to a serial run.
func (p *Profiler) ProfileAll(ctx context.Context, build func(string, int64) (*graph.Graph, error),
	names []string, batch int64, devices []gpu.ID) (*trace.Bundle, error) {
	graphs, err := par.Map(ctx, p.Workers, len(names), func(_ context.Context, i int) (*graph.Graph, error) {
		g, err := build(names[i], batch)
		if err != nil {
			return nil, fmt.Errorf("sim: building %s: %w", names[i], err)
		}
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	profs, err := par.Map(ctx, p.Workers, len(names)*len(devices), func(ctx context.Context, i int) (*trace.Profile, error) {
		return p.Profile(ctx, graphs[i/len(devices)], devices[i%len(devices)])
	})
	if err != nil {
		return nil, err
	}
	bundle := &trace.Bundle{}
	for _, prof := range profs {
		bundle.Add(prof)
	}
	return bundle, nil
}

// Measurement is one observed end-to-end training run.
type Measurement struct {
	CNN string
	Cfg cloud.Config
	// PerIterSeconds is the mean observed wall time of one training
	// iteration: summed op compute time plus communication overhead.
	PerIterSeconds float64
	// ComputeSeconds and CommSeconds decompose the per-iteration mean.
	ComputeSeconds float64
	CommSeconds    float64
	// Iterations is the iteration count for one epoch of the dataset.
	Iterations int64
	// TotalSeconds is the full training (one-epoch) wall time.
	TotalSeconds float64
}

// CostUSD returns the rental cost of the measured run under a pricing
// scheme.
func (m Measurement) CostUSD(p cloud.Pricing) (float64, error) {
	hourly, err := m.Cfg.HourlyCost(p)
	if err != nil {
		return 0, err
	}
	return m.TotalSeconds / 3600 * hourly, nil
}

// Train measures training the graph on a configuration over one epoch
// of the dataset, sampling measureIters iterations to estimate the
// per-iteration mean. Per the paper's data-parallel setup, the per-GPU
// batch size is fixed (the graph's), so k GPUs cut the iteration count
// by k while each iteration pays the communication overhead
// S(GPU, k, params).
func Train(ctx context.Context, g *graph.Graph, cfg cloud.Config, ds dataset.Dataset, measureIters int, seed uint64) (Measurement, error) {
	if !cfg.Valid() {
		return Measurement{}, faults.Permanentf("sim: invalid config %s", cfg)
	}
	if measureIters <= 0 {
		return Measurement{}, faults.Permanentf("sim: measureIters must be positive, got %d", measureIters)
	}
	dev, ok := gpu.Lookup(cfg.GPU)
	if !ok {
		return Measurement{}, faults.Permanentf("sim: unknown GPU device %q", string(cfg.GPU))
	}
	nodes := g.Nodes()
	base := rng.New(seed ^ hashString(g.Name))
	streams := make([]*rng.Source, len(nodes))
	for i, n := range nodes {
		streams[i] = base.Derive(dev.SeedID<<32 ^ uint64(n.ID))
	}
	commStream := base.Derive(0xC0111 ^ dev.SeedID<<16 ^ uint64(cfg.K))

	var compute, comm float64
	for iter := 0; iter < measureIters; iter++ {
		if err := ctx.Err(); err != nil {
			return Measurement{}, err
		}
		iterCompute := 0.0
		for i, n := range nodes {
			iterCompute += dev.SampleTime(n.Op, streams[i])
		}
		s, err := cloud.SampleCommOverhead(cfg.GPU, cfg.K, g.Params, commStream)
		if err != nil {
			return Measurement{}, err
		}
		compute += iterCompute
		comm += s
	}
	compute /= float64(measureIters)
	comm /= float64(measureIters)

	iters := ds.Iterations(cfg.K, g.BatchSize)
	perIter := compute + comm
	return Measurement{
		CNN:            g.Name,
		Cfg:            cfg,
		PerIterSeconds: perIter,
		ComputeSeconds: compute,
		CommSeconds:    comm,
		Iterations:     iters,
		TotalSeconds:   perIter * float64(iters),
	}, nil
}
