package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	before := *parent
	child1 := parent.Derive(1)
	child2 := parent.Derive(2)
	if parent.state != before.state {
		t.Error("Derive consumed parent state")
	}
	if child1.Uint64() == child2.Uint64() {
		t.Error("derived streams with different labels should differ")
	}
	// Same label derives the same stream.
	c1, c2 := New(7).Derive(9), New(7).Derive(9)
	if c1.Uint64() != c2.Uint64() {
		t.Error("same-label derivation should be deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit %d/10 values over 1000 draws", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalFactor(t *testing.T) {
	s := New(23)
	if f := s.LogNormalFactor(0); !eqExact(f, 1) {
		t.Errorf("sigma=0 factor = %v, want 1", f)
	}
	if f := s.LogNormalFactor(-1); !eqExact(f, 1) {
		t.Errorf("negative sigma factor = %v, want 1", f)
	}
	// For sigma=0.05 the factor should hover tightly around 1.
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		f := s.LogNormalFactor(0.05)
		if f <= 0 {
			t.Fatalf("non-positive factor %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("lognormal(0.05) mean = %v, want ~1", mean)
	}
}

// Property: LogNormalFactor's empirical normalized stddev tracks sigma for
// small sigma.
func TestLogNormalCVProperty(t *testing.T) {
	f := func(seed uint64, sigRaw uint8) bool {
		sigma := 0.01 + float64(sigRaw%10)*0.01 // 0.01..0.10
		s := New(seed)
		const n = 20000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := s.LogNormalFactor(sigma)
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		sd := math.Sqrt(math.Max(0, sumSq/n-mean*mean))
		cv := sd / mean
		return math.Abs(cv-sigma) < 0.35*sigma+0.002
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: Float64 never escapes [0,1) regardless of seed.
func TestFloat64RangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// eqExact reports a == b. Exact float equality is the contract under
// test here: a non-positive sigma must return exactly 1.
func eqExact(a, b float64) bool { return a == b }
