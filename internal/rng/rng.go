// Package rng implements a small, deterministic pseudo-random number
// generator used by the hardware simulator.
//
// The simulator must be reproducible across runs, platforms, and Go
// releases so that tests and experiment outputs are stable; math/rand's
// global source and its version-dependent algorithms are unsuitable. The
// generator here is SplitMix64 (Steele, Lea & Flood, OOPSLA'14), a tiny,
// well-distributed 64-bit mixer, combined with a Box–Muller transform for
// Gaussian variates.
package rng

import "math"

// Source is a deterministic stream of pseudo-random numbers. The zero
// value is a valid source seeded with 0.
type Source struct {
	state uint64
	// spare caches the second Box–Muller variate between Normal calls.
	spare    float64
	hasSpare bool
}

// New returns a source seeded with the given value. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *Source { return &Source{state: seed} }

// Derive returns a new source whose stream is a deterministic function of
// this source's seed and the given label, without consuming any values
// from the parent stream. It is used to give each (operation, GPU)
// simulation its own independent noise stream.
func (s *Source) Derive(label uint64) *Source {
	return &Source{state: mix(s.state ^ mix(label))}
}

// mix is the SplitMix64 finalizer.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 {
	// Use the top 53 bits for a full-precision mantissa.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Normal returns a standard Gaussian variate (mean 0, stddev 1) via the
// Box–Muller transform.
func (s *Source) Normal() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	var u, v float64
	for {
		u = s.Float64()
		if u > 0 {
			break
		}
	}
	v = s.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	s.spare = r * math.Sin(theta)
	s.hasSpare = true
	return r * math.Cos(theta)
}

// LogNormalFactor returns a multiplicative noise factor with median 1
// whose logarithm has the given standard deviation. For small sigma the
// factor's coefficient of variation is approximately sigma, which is how
// the simulator dials in a target normalized standard deviation.
func (s *Source) LogNormalFactor(sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(sigma * s.Normal())
}
