package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); !eqExact(got, 2.5) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestSum(t *testing.T) {
	if Sum(nil) != 0 {
		t.Error("empty sum should be 0")
	}
	if got := Sum([]float64{1.5, 2.5}); !eqExact(got, 4) {
		t.Errorf("Sum = %v", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Error("single-point variance should be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !approx(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !approx(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestNormalizedStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // mean 5, sd 2
	if got := NormalizedStdDev(xs); !approx(got, 0.4, 1e-12) {
		t.Errorf("NormalizedStdDev = %v, want 0.4", got)
	}
	if NormalizedStdDev([]float64{0, 0}) != 0 {
		t.Error("zero-mean normalized stddev should be 0")
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("empty median should be 0")
	}
	if got := Median([]float64{3, 1, 2}); !eqExact(got, 2) {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !eqExact(got, 2.5) {
		t.Errorf("even median = %v, want 2.5", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {105, 50}, {10, 14},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !approx(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input not modified.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if !eqExact(ys[0], 3) {
		t.Error("Percentile modified its input")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if !eqExact(min, -1) || !eqExact(max, 7) {
		t.Errorf("MinMax = %v,%v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("empty MinMax should be 0,0")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !approx(got, cse.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	empty := NewCDF(nil)
	if empty.At(5) != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty CDF should return zeros")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40}, {1.5, 40},
	}
	for _, cse := range cases {
		if got := c.Quantile(cse.q); !eqExact(got, cse.want) {
			t.Errorf("Quantile(%v) = %v, want %v", cse.q, got, cse.want)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 1, 2, 3, 4})
	xs, ys, err := c.Points(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 5 || len(ys) != 5 {
		t.Fatalf("Points lengths %d, %d", len(xs), len(ys))
	}
	if xs[0] != 0 || !eqExact(xs[4], 4) {
		t.Errorf("Points range [%v,%v]", xs[0], xs[4])
	}
	if !eqExact(ys[4], 1) {
		t.Errorf("final cumulative fraction = %v, want 1", ys[4])
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Error("CDF points must be non-decreasing")
		}
	}
	if _, _, err := c.Points(1); err == nil {
		t.Error("Points(1) should error")
	}
	if _, _, err := NewCDF(nil).Points(3); err == nil {
		t.Error("Points on empty CDF should error")
	}
}

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{100, 200}, []float64{110, 180})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 0.1, 1e-12) {
		t.Errorf("MAPE = %v, want 0.1", got)
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := MAPE([]float64{0}, []float64{5}); err == nil {
		t.Error("all-zero actuals should error")
	}
	// Zero actuals are skipped, not divided by.
	got, err = MAPE([]float64{0, 100}, []float64{5, 90})
	if err != nil || !approx(got, 0.1, 1e-12) {
		t.Errorf("MAPE with skipped zero = %v, %v", got, err)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(100, 95); !approx(got, -0.05, 1e-12) {
		t.Errorf("RelErr = %v", got)
	}
	if RelErr(0, 5) != 0 {
		t.Error("RelErr with zero actual should be 0")
	}
}

// Property: Median lies between min and max, and is order-invariant.
func TestMedianBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Median(xs)
		min, max := MinMax(xs)
		if m < min || m > max {
			return false
		}
		shuffled := make([]float64, len(xs))
		copy(shuffled, xs)
		sort.Float64s(shuffled)
		return eqExact(Median(shuffled), m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CDF.At is monotone non-decreasing.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		c := NewCDF(xs)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Quantile and At roundtrip — At(Quantile(q)) >= q for q in (0,1].
func TestQuantileRoundtripProperty(t *testing.T) {
	f := func(raw []float64, qRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := (float64(qRaw%100) + 1) / 100
		c := NewCDF(xs)
		return c.At(c.Quantile(q)) >= q-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// eqExact reports a == b. Exact float equality is the contract under
// test here: small-integer inputs make these
// aggregates exact in IEEE arithmetic.
func eqExact(a, b float64) bool { return a == b }
