// Package stats provides the descriptive statistics used throughout the
// empirical analysis: means, medians, percentiles, standard deviations,
// normalized deviation (coefficient of variation), and empirical CDFs.
//
// All functions treat the input slice as a sample and do not modify it.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the population variance of xs, or 0 for samples of
// fewer than two points.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// NormalizedStdDev returns the coefficient of variation, stddev/mean —
// the variability metric of the paper's Figure 5. It returns 0 when the
// mean is 0.
func NormalizedStdDev(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Median returns the sample median (the 50th percentile), or 0 for an
// empty sample.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns 0 for an empty sample
// and clamps p into [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the smallest and largest values of xs. It returns
// (0, 0) for an empty sample.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// CDF is an empirical cumulative distribution function built from a
// sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample. The input is copied.
func NewCDF(xs []float64) *CDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len returns the number of sample points.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns the fraction of the sample that is <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	idx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v such that At(v) >= q, for
// q in (0, 1]. It returns 0 for an empty sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Points returns n evenly spaced (value, cumulative fraction) pairs
// suitable for plotting the CDF curve. n must be at least 2.
func (c *CDF) Points(n int) ([]float64, []float64, error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("stats: CDF.Points needs n >= 2, got %d", n)
	}
	if len(c.sorted) == 0 {
		return nil, nil, fmt.Errorf("stats: CDF.Points on empty sample")
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = x
		ys[i] = c.At(x)
	}
	return xs, ys, nil
}

// MAPE returns the mean absolute percentage error of predictions against
// actuals, as a fraction (0.05 == 5%). Pairs with a zero actual are
// skipped; if every pair is skipped or the slices are empty or of
// different lengths, an error is returned.
func MAPE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, fmt.Errorf("stats: MAPE length mismatch: %d vs %d", len(actual), len(predicted))
	}
	sum, n := 0.0, 0
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(predicted[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("stats: MAPE has no usable pairs")
	}
	return sum / float64(n), nil
}

// RelErr returns the signed relative error (predicted-actual)/actual, or
// 0 when actual is 0.
func RelErr(actual, predicted float64) float64 {
	if actual == 0 {
		return 0
	}
	return (predicted - actual) / actual
}
