// Package lint is ceer's project-specific static analyzer suite. It
// machine-checks the invariants the repo's tests and review process
// rely on — determinism of the measurement → model → recommend
// pipeline, genericity over registered devices, and error hygiene — at
// the AST/type level rather than with greps.
//
// The engine is standard-library only: packages are parsed with
// go/parser and type-checked with go/types through a source-level
// importer (see load.go), so the suite runs offline with nothing but
// the Go toolchain installed. Analyzers implement the Analyzer
// interface below; cmd/ceer-lint is the CLI front end and
// scripts/check.sh wires the suite into the repo's verification gate.
//
// A finding can be suppressed, one line at a time, with
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory; a malformed directive is itself reported (as
// analyzer "ignore").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding. File is relative to the module root, in
// slash form, so output is stable across checkouts.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// An Analyzer inspects one type-checked analysis unit and reports
// findings through the pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in lint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Scope restricts the analyzer to packages whose import path equals
	// or ends with one of these suffixes (matched at a path-segment
	// boundary). Nil means every package. Module analyzers ignore Scope.
	Scope []string
	// Run inspects one unit. Exactly one of Run and RunModule is set.
	Run func(*Pass)
	// RunModule inspects the whole module at once. Whole-program
	// analyzers (the hot-path call-graph family) need every unit in one
	// pass: a finding in package a can be caused by a directive in
	// package b.
	RunModule func(*ModulePass)
}

// Pass carries one unit through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Info     *types.Info

	report func(token.Pos, string)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// ModulePass carries every analysis unit through one module-wide
// analyzer. Cross-package identity caveat: each package is
// type-checked twice (once for importers, once as its own unit), so
// *types.Object values do NOT compare equal across units. Module
// analyzers key functions by path strings (see funcKey) and objects by
// token.Pos, both of which are stable because every check shares the
// same parsed files and FileSet.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkgs holds every unit sorted by import path, external test units
	// last within a path.
	Pkgs []*Package

	report func(token.Pos, string)
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// IsTestFile reports whether the node lives in a _test.go file.
func (p *ModulePass) IsTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.Fset.Position(n.Pos()).Filename, "_test.go")
}

// Filename returns the name of the file a node belongs to.
func (p *Pass) Filename(n ast.Node) string {
	return p.Fset.Position(n.Pos()).Filename
}

// IsTestFile reports whether the node lives in a _test.go file.
func (p *Pass) IsTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.Filename(n), "_test.go")
}

// inScope implements Analyzer.Scope matching.
func inScope(scope []string, path string) bool {
	if len(scope) == 0 {
		return true
	}
	for _, s := range scope {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// Run loads the module at cfg and applies the analyzers, returning the
// surviving diagnostics sorted by (file, line, col, analyzer, message).
// Suppressed findings are dropped; malformed lint:ignore directives are
// reported. The returned error covers load/type-check failures only —
// a non-empty diagnostic list is a normal return.
func Run(cfg Config, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, fset, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	root, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	return runUnits(root, fset, pkgs, analyzers), nil
}

// runUnits applies the analyzers to already-loaded units.
func runUnits(root string, fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(Analyzers))
	for _, a := range Analyzers {
		known[a.Name] = true
	}

	var diags []Diagnostic
	relFile := func(abs string) string {
		if rel, err := filepath.Rel(root, abs); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
		return filepath.ToSlash(abs)
	}
	// Merge every unit's ignore directives before any analyzer runs:
	// module-wide analyzers report across package boundaries, so a
	// finding must be matched against the directives of the file it
	// lands in, not of the unit that happened to trigger the walk. Each
	// source file belongs to exactly one unit, so merging is a disjoint
	// union.
	ignores := &ignoreSet{byFileLine: make(map[string]map[int]map[string]bool)}
	for _, pkg := range pkgs {
		unitIgnores, bad := collectIgnores(fset, pkg, known)
		for file, lines := range unitIgnores.byFileLine {
			ignores.byFileLine[file] = lines
		}
		for _, d := range bad {
			d.File = relFile(d.File)
			diags = append(diags, d)
		}
	}
	reporterFor := func(a *Analyzer) func(token.Pos, string) {
		return func(pos token.Pos, msg string) {
			p := fset.Position(pos)
			if ignores.suppressed(a.Name, p.Filename, p.Line) {
				return
			}
			diags = append(diags, Diagnostic{
				File:     relFile(p.Filename),
				Line:     p.Line,
				Col:      p.Column,
				Analyzer: a.Name,
				Message:  msg,
			})
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil || !inScope(a.Scope, pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Pkg:      pkg,
				Info:     pkg.Info,
				report:   reporterFor(a),
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		a.RunModule(&ModulePass{
			Analyzer: a,
			Fset:     fset,
			Pkgs:     pkgs,
			report:   reporterFor(a),
		})
	}
	sortDiagnostics(diags)
	// Nested constructs (e.g. a map range inside a map range) can make
	// two walks report the identical finding; keep one.
	uniq := diags[:0]
	for _, d := range diags {
		if len(uniq) == 0 || uniq[len(uniq)-1] != d {
			uniq = append(uniq, d)
		}
	}
	return uniq
}

// sortDiagnostics orders findings by (file, line, col, analyzer,
// message) — the stable order every output mode shares.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Analyzers is the full default suite, in reporting-name order.
var Analyzers = []*Analyzer{
	AnalyzerAllocFree,
	AnalyzerAtomics,
	AnalyzerCtxFlow,
	AnalyzerDeviceGeneric,
	AnalyzerDeterminism,
	AnalyzerErrDrop,
	AnalyzerFloatCmp,
	AnalyzerHotPath,
	AnalyzerPoolPair,
}

// ByName returns the subset of the default suite matching the given
// comma-separated names, or an error naming the first unknown one.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range Analyzers {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}
