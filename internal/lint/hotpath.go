package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerHotPath machine-checks the compiled serving core's contract
// (DESIGN.md §9): a function marked with a `//hot:path` doc directive
// is on the lock-free, allocation-free read path, so it must not
// acquire a sync mutex (Lock/RLock/TryLock/TryRLock), index a map, or
// call append. Those all belong at compile/build time — the hot path
// gathers from precomputed flat arrays. The directive is an explicit
// opt-in, so the analyzer runs everywhere but stays silent on unmarked
// functions; function literals nested in a marked function inherit the
// marking.
var AnalyzerHotPath = &Analyzer{
	Name: "hotpath",
	Doc: "forbids mutex acquisition, map indexing, and append in " +
		"functions marked //hot:path",
	Run: runHotPath,
}

// hotPathDirective is the doc-comment line opting a function into the
// hot-path checks.
const hotPathDirective = "//hot:path"

// mutexAcquire is the set of sync methods that take a lock.
var mutexAcquire = map[string]bool{
	"Lock":     true,
	"RLock":    true,
	"TryLock":  true,
	"TryRLock": true,
}

func runHotPath(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				continue
			}
			checkHotBody(pass, fn.Name.Name, fn.Body)
		}
	}
}

// isHotPath reports whether the function's doc comment carries the
// //hot:path directive on a line of its own.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == hotPathDirective {
			return true
		}
	}
	return false
}

// checkHotBody walks one marked function body (including nested
// function literals) and reports banned constructs. Direct tracks
// selectors in call position — ast.Inspect visits a CallExpr before
// its Fun child — so a banned sync method reached as a bare selector
// is a method value: creating one both allocates and smuggles the lock
// acquisition past the call check.
func checkHotBody(pass *Pass, name string, body *ast.BlockStmt) {
	direct := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				direct[sel] = true
			}
			checkHotCall(pass, name, n)
		case *ast.SelectorExpr:
			if !direct[n] {
				if fn := bannedSyncMethod(pass, n); fn != nil {
					pass.Reportf(n.Pos(),
						"method value of sync %s captured in //hot:path function %s; the hot path must be lock-free",
						fn.Name(), name)
				}
			}
		case *ast.IndexExpr:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(),
						"map index in //hot:path function %s; gather from precompiled flat arrays instead",
						name)
				}
			}
		}
		return true
	})
}

// checkHotCall flags append calls and sync lock acquisitions.
func checkHotCall(pass *Pass, name string, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
			pass.Reportf(call.Pos(),
				"append in //hot:path function %s; preallocate at compile/build time instead",
				name)
		}
	case *ast.SelectorExpr:
		fn := bannedSyncMethod(pass, fun)
		if fn == nil {
			return
		}
		pass.Reportf(call.Pos(),
			"sync %s acquired in //hot:path function %s; the hot path must be lock-free",
			fn.Name(), name)
	}
}

// bannedSyncMethod resolves sel to a sync lock-acquisition method, or
// nil.
func bannedSyncMethod(pass *Pass, sel *ast.SelectorExpr) *types.Func {
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || !mutexAcquire[fn.Name()] {
		return nil
	}
	return fn
}
