// Package linttest is a from-scratch analogue of analysistest: it runs
// analyzers over a self-contained module tree under testdata and
// matches the reported diagnostics against `// want "regexp"` comments
// in the sources. Each analyzer in internal/lint keeps one
// true-positive and one clean fixture there, so `go test
// ./internal/lint/...` proves the suite both fires and stays silent.
package linttest

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ceer/internal/lint"
)

// expectation is one `// want "regexp"` comment: a diagnostic must be
// reported on its file and line, and "analyzer: message" must match
// the pattern.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

// Run applies the analyzers to the module rooted at dir and compares
// the diagnostics with the tree's want comments. A diagnostic with no
// matching want, or a want with no matching diagnostic, fails the
// test. Several wants on one line each consume one diagnostic.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	diags, err := lint.Run(lint.Config{Dir: dir}, analyzers)
	if err != nil {
		t.Fatalf("lint.Run(%s): %v", dir, err)
	}
	wants, err := collectWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		got := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.File || w.line != d.Line || !w.re.MatchString(got) {
				continue
			}
			w.hit = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.File, d.Line, got)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q, got no matching diagnostic", w.file, w.line, w.text)
		}
	}
}

// wantMarker introduces expectations; the rest of the comment is one
// or more Go-quoted regexps.
const wantMarker = "// want "

// collectWants scans every .go file under dir for want comments.
func collectWants(dir string) ([]*expectation, error) {
	var wants []*expectation
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, wantMarker)
			if idx < 0 {
				continue
			}
			ws, err := parseWants(filepath.ToSlash(rel), i+1, line[idx+len(wantMarker):])
			if err != nil {
				return err
			}
			wants = append(wants, ws...)
		}
		return nil
	})
	return wants, err
}

// parseWants decodes the quoted patterns following a want marker.
func parseWants(file string, line int, rest string) ([]*expectation, error) {
	var wants []*expectation
	for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: malformed want comment %q: %v", file, line, rest, err)
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: unquoting %s: %v", file, line, q, err)
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", file, line, q, err)
		}
		wants = append(wants, &expectation{file: file, line: line, re: re, text: pat})
		rest = rest[len(q):]
	}
	return wants, nil
}
