package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerDeviceGeneric enforces the device-registry invariant from the
// PR 2 refactor: core packages must stay generic over registered
// devices. Branching control flow on a concrete device identity —
// switching on a gpu.ID, or comparing one against an identity constant
// like gpu.V100 — reintroduces a closed device set and breaks the
// "add a GPU as pure data" contract (internal/devices/a10g is the
// proof case). Reading per-device *data* keyed by an identity (paper
// figure tables in experiments, spec fields) is fine and is not
// flagged; test files are exempt because tests pin per-device
// expectations by design.
var AnalyzerDeviceGeneric = &Analyzer{
	Name: "devicegeneric",
	Doc: "forbids switch/if dispatch on concrete gpu device identities " +
		"in core packages; device behaviour belongs in gpu.Device spec fields",
	Scope: []string{
		"internal/ceer",
		"internal/sim",
		"internal/cloud",
		"internal/experiments",
		"internal/graph",
	},
	Run: runDeviceGeneric,
}

func runDeviceGeneric(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				if n.Tag != nil && isDeviceID(pass.Info.TypeOf(n.Tag)) {
					pass.Reportf(n.Switch,
						"switch on concrete device identity (%s); dispatch on gpu.Device spec data instead",
						types.ExprString(n.Tag))
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isDeviceID(pass.Info.TypeOf(n.X)) && !isDeviceID(pass.Info.TypeOf(n.Y)) {
					return true
				}
				for _, op := range [2]ast.Expr{n.X, n.Y} {
					if name, ok := deviceIdentityConst(pass.Info, op); ok {
						pass.Reportf(n.OpPos,
							"comparison against concrete device identity %s; branch on gpu.Device spec data instead",
							name)
						break
					}
				}
			}
			return true
		})
	}
}

// isDeviceID reports whether t is the device registry's key type: a
// named type called ID declared in a package whose path ends in "gpu".
func isDeviceID(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != "ID" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "gpu" || strings.HasSuffix(path, "/gpu")
}

// deviceIdentityConst reports whether expr is a non-empty constant of
// the device ID type — a concrete registered identity such as gpu.V100.
// The empty string is excluded so `id == ""` unset-checks stay legal.
func deviceIdentityConst(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || !isDeviceID(tv.Type) {
		return "", false
	}
	if tv.Value.ExactString() == `""` {
		return "", false
	}
	return types.ExprString(expr), true
}
