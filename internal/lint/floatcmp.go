package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// AnalyzerFloatCmp forbids exact equality on floating-point operands:
// the model pipeline is regression arithmetic end to end, and a `==`
// that happens to hold on one machine's rounding is the classic way a
// "deterministic" reproduction silently stops being one. Three
// well-defined idioms stay legal everywhere:
//
//   - comparison against an exact constant zero (`x == 0` guards a
//     division; zero is exactly representable),
//   - comparison between two constants (evaluated at compile time),
//   - the self-comparison NaN test (`x != x`).
//
// In _test.go files, comparisons inside an approved helper are also
// allowed: a tolerance helper (a function whose name mentions
// approx/almost/close/near/within/tol/eps), or a named exact-equality
// helper (name mentioning "exact", e.g. eqExact) for the places where
// exact equality IS the contract under test — determinism checks,
// verbatim registry copies, integer-exact arithmetic. The helper name
// is the declaration of intent; a raw == carries none. Test/Benchmark/
// Fuzz/Example functions themselves never count as helpers.
var AnalyzerFloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "forbids ==/!= on floating-point operands outside constant-zero " +
		"guards, NaN self-tests, and (in tests) approved tolerance helpers",
	Run: runFloatCmp,
}

// toleranceHelper matches function names sanctioned to compare floats
// exactly in test files: tolerance helpers plus named exact-equality
// helpers.
var toleranceHelper = regexp.MustCompile(`(?i)(approx|almost|close|near|within|tol|eps|exact)`)

// testEntryPoint matches the go test entry-point naming scheme; such
// functions are never helpers, whatever their name mentions.
var testEntryPoint = regexp.MustCompile(`^(Test|Benchmark|Fuzz|Example)`)

func isApprovedHelper(name string) bool {
	return toleranceHelper.MatchString(name) && !testEntryPoint.MatchString(name)
}

func runFloatCmp(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		inTest := pass.IsTestFile(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exempt := inTest && isApprovedHelper(fd.Name.Name)
			if exempt {
				continue
			}
			checkFloatCmpFunc(pass, fd, inTest)
		}
	}
}

func checkFloatCmpFunc(pass *Pass, fd *ast.FuncDecl, inTest bool) {
	exemptLits := map[*ast.FuncLit]bool{}
	if inTest {
		// A tolerance helper defined as a closure (approx := func(...))
		// is approved the same way a named one is.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(n.Lhs) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && isApprovedHelper(id.Name) {
						exemptLits[lit] = true
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					lit, ok := v.(*ast.FuncLit)
					if !ok || i >= len(n.Names) {
						continue
					}
					if isApprovedHelper(n.Names[i].Name) {
						exemptLits[lit] = true
					}
				}
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return !exemptLits[n]
		case *ast.SwitchStmt:
			if n.Tag != nil && isFloat(pass.Info.TypeOf(n.Tag)) {
				pass.Reportf(n.Switch, "switch on a floating-point value compares exactly; use explicit tolerance checks")
			}
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if !isFloat(pass.Info.TypeOf(n.X)) && !isFloat(pass.Info.TypeOf(n.Y)) {
				return true
			}
			if isExactZero(pass.Info, n.X) || isExactZero(pass.Info, n.Y) {
				return true
			}
			if bothConstant(pass.Info, n) {
				return true
			}
			if types.ExprString(n.X) == types.ExprString(n.Y) {
				return true // NaN self-test: x != x
			}
			helperHint := "compare with a tolerance"
			if inTest {
				helperHint = "use a tolerance helper"
			}
			pass.Reportf(n.OpPos, "%s on floating-point operands is exact; %s", n.Op, helperHint)
		}
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isExactZero reports whether expr is a compile-time constant equal to
// exactly zero.
func isExactZero(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

func bothConstant(info *types.Info, n *ast.BinaryExpr) bool {
	x, okx := info.Types[n.X]
	y, oky := info.Types[n.Y]
	return okx && oky && x.Value != nil && y.Value != nil
}
