package lint

import (
	"encoding/json"
	"io"
)

// WriteJSON emits diagnostics as an indented JSON array (an empty
// slice marshals as [], not null). The slice order produced by Run —
// (file, line, col, analyzer, message) — is preserved, so the output
// is byte-stable for a given tree; cmd/ceer-lint and the golden test
// share this encoder.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
