package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// ignoreSet records, per file and line, which analyzers the source has
// asked to silence. A directive suppresses findings of the named
// analyzer (or "all") on its own line and on the line below — covering
// both the trailing-comment and the line-above idioms.
type ignoreSet struct {
	// byFileLine maps filename -> line -> analyzer names ("all" wins).
	byFileLine map[string]map[int]map[string]bool
}

func (s *ignoreSet) suppressed(analyzer, file string, line int) bool {
	lines := s.byFileLine[file]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		if names := lines[l]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// collectIgnores parses every //lint:ignore directive of a unit.
// Malformed directives — a missing reason, or a name that is neither
// "all" nor a known analyzer — come back as diagnostics under the
// pseudo-analyzer "ignore" (File holds the absolute filename; the
// runner relativizes it).
func collectIgnores(fset *token.FileSet, pkg *Package, known map[string]bool) (*ignoreSet, []Diagnostic) {
	set := &ignoreSet{byFileLine: make(map[string]map[int]map[string]bool)}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					bad = append(bad, malformed(pos, "lint:ignore needs an analyzer name and a reason"))
					continue
				case len(fields) == 1:
					bad = append(bad, malformed(pos, "lint:ignore "+fields[0]+" needs a reason"))
					continue
				case fields[0] != "all" && !known[fields[0]]:
					bad = append(bad, malformed(pos, fmt.Sprintf("lint:ignore names unknown analyzer %q", fields[0])))
					continue
				}
				lines := set.byFileLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					set.byFileLine[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[pos.Line] = names
				}
				names[fields[0]] = true
			}
		}
	}
	return set, bad
}

func malformed(pos token.Position, msg string) Diagnostic {
	return Diagnostic{
		File:     pos.Filename, // absolute here; relativized by the runner
		Line:     pos.Line,
		Col:      pos.Column,
		Analyzer: "ignore",
		Message:  msg,
	}
}
