package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerAllocFree proves the serving path's zero-allocation contract
// (DESIGN.md §13) statically: every function reachable from a
// //hot:path root through static calls must be free of
// allocation-inducing constructs. Where the hotpath analyzer checks
// each marked body in isolation, allocfree walks the whole call graph,
// so a helper refactor cannot smuggle an allocation under an
// unmarked function. Interface and function-value calls cannot be
// proven and are reported as such; each one either gets a
// //lint:ignore allocfree with a reason or the code is restructured.
// //hot:exempt <reason> functions are vetted boundaries (amortized
// append encoders, cold admin endpoints) the walk does not enter.
var AnalyzerAllocFree = &Analyzer{
	Name: "allocfree",
	Doc: "proves every function reachable from a //hot:path root free " +
		"of allocating constructs",
	RunModule: runAllocFree,
}

// allocFreePkgs are external packages every function of which is
// allocation-free: pure arithmetic or atomic word operations.
var allocFreePkgs = map[string]bool{
	"math":         true,
	"math/bits":    true,
	"sync/atomic":  true,
	"unicode/utf8": true,
}

// allocFreeFuncs are individually vetted external functions and
// methods, keyed like funcKey. Mutex operations and sync.Pool Get/Put
// never allocate (Pool recycling is amortized; lifecycle discipline is
// the poolpair analyzer's job); the strconv parsers and append-style
// formatters work in caller storage or on the stack; the strings
// scanners only read.
var allocFreeFuncs = map[string]bool{
	"errors.Is":                 true,
	"strconv.AppendBool":        true,
	"strconv.AppendFloat":       true,
	"strconv.AppendInt":         true,
	"strconv.AppendUint":        true,
	"strconv.Atoi":              true,
	"strconv.ParseBool":         true,
	"strconv.ParseFloat":        true,
	"strconv.ParseInt":          true,
	"strconv.ParseUint":         true,
	"strings.Compare":           true,
	"strings.Count":             true,
	"strings.EqualFold":         true,
	"strings.HasPrefix":         true,
	"strings.HasSuffix":         true,
	"strings.Index":             true,
	"strings.IndexByte":         true,
	"strings.LastIndex":         true,
	"sync.Mutex.Lock":           true,
	"sync.Mutex.TryLock":        true,
	"sync.Mutex.Unlock":         true,
	"sync.Pool.Get":             true,
	"sync.Pool.Put":             true,
	"sync.RWMutex.Lock":         true,
	"sync.RWMutex.RLock":        true,
	"sync.RWMutex.RUnlock":      true,
	"sync.RWMutex.TryLock":      true,
	"sync.RWMutex.Unlock":       true,
	"time.Duration.Nanoseconds": true,
	"time.Duration.Seconds":     true,
	"time.Now":                  true,
	"time.Since":                true,
}

func runAllocFree(p *ModulePass) {
	idx := buildCallIndex(p)
	visited := make(map[string]bool)
	var visit func(fi *funcInfo, root *funcInfo)
	visit = func(fi, root *funcInfo) {
		if visited[fi.key] {
			return
		}
		visited[fi.key] = true
		if fi.exempt {
			return
		}
		w := &allocWalker{p: p, fi: fi, root: root, idx: idx, seen: make(map[string]bool)}
		w.walk(fi.decl.Type, fi.decl.Body)
		for _, callee := range w.callees {
			visit(callee, root)
		}
	}
	for _, key := range idx.keys {
		if fi := idx.fns[key]; fi.root {
			visit(fi, fi)
		}
	}
}

// allocWalker checks one function body for allocating constructs,
// collecting its static in-module callees for the transitive walk.
type allocWalker struct {
	p    *ModulePass
	fi   *funcInfo
	root *funcInfo
	idx  *callIndex

	callees []*funcInfo
	seen    map[string]bool
}

func (w *allocWalker) info() *types.Info { return w.fi.pkg.Info }

func (w *allocWalker) reportf(pos token.Pos, format string, args ...any) {
	where := "in //hot:path function " + w.fi.display()
	if w.fi != w.root {
		where = "in " + w.fi.display() + " (reachable from //hot:path " + w.root.display() + ")"
	}
	w.p.Reportf(pos, format+" "+where, args...)
}

// walk inspects one function or literal body. Nested literals are
// recursed into explicitly so return statements always resolve against
// the innermost signature.
func (w *allocWalker) walk(ftype *ast.FuncType, body *ast.BlockStmt) {
	results := resultTypes(w.info(), ftype)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.reportf(n.Pos(), "function literal allocates a closure")
			w.walk(n.Type, n.Body)
			return false
		case *ast.CallExpr:
			w.call(n)
		case *ast.CompositeLit:
			switch w.typeOf(n).Underlying().(type) {
			case *types.Slice:
				w.reportf(n.Pos(), "slice literal allocates")
			case *types.Map:
				w.reportf(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					w.reportf(n.Pos(), "address of composite literal escapes and allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(w.typeOf(n.X)) && !isConstExpr(w.info(), n) {
				w.reportf(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.ReturnStmt:
			for i, res := range n.Results {
				if i < len(results) && w.boxes(res, results[i]) {
					w.reportf(res.Pos(), "return boxes %s into interface %s",
						w.typeOf(res), results[i])
				}
			}
		case *ast.GoStmt:
			w.reportf(n.Pos(), "go statement allocates a goroutine")
		}
		return true
	})
}

func (w *allocWalker) typeOf(e ast.Expr) types.Type {
	if t := w.info().TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

func (w *allocWalker) call(call *ast.CallExpr) {
	kind, obj := resolveCall(w.info(), call)
	switch kind {
	case calleeConversion:
		w.conversion(call)
	case calleeBuiltin:
		switch obj.Name() {
		case "make":
			w.reportf(call.Pos(), "make allocates")
		case "new":
			w.reportf(call.Pos(), "new allocates")
		case "append":
			w.reportf(call.Pos(), "append may grow its backing array")
		}
	case calleeStatic:
		f := obj.(*types.Func)
		if f.Pkg() != nil && w.idx.modulePkgs[f.Pkg().Path()] {
			w.checkArgs(call, f.Type().(*types.Signature))
			key := funcKey(f)
			if callee := w.idx.fns[key]; callee != nil {
				if !w.seen[key] {
					w.seen[key] = true
					w.callees = append(w.callees, callee)
				}
			} else {
				// A module function without an indexed body (declared
				// in a test file, say) would leave a hole in the proof.
				w.reportf(call.Pos(), "call to %s has no vetted body (unprovable)", key)
			}
		} else {
			w.external(call, f)
		}
	case calleeDynamic:
		f := obj.(*types.Func)
		w.reportf(call.Pos(),
			"dynamic call %s through an interface is unprovable; vet the implementations and add //lint:ignore allocfree <reason>",
			f.Name())
	case calleeUnknown:
		w.reportf(call.Pos(),
			"call through a function value is unprovable; add //lint:ignore allocfree <reason>")
	case calleeLiteral:
		// The literal node itself reports and recurses.
	}
}

// external vets a call that leaves the module against the allowlist.
func (w *allocWalker) external(call *ast.CallExpr, f *types.Func) {
	path := ""
	if f.Pkg() != nil {
		path = f.Pkg().Path()
	}
	if allocFreePkgs[path] {
		w.checkArgs(call, f.Type().(*types.Signature))
		return
	}
	key := funcKey(f)
	if allocFreeFuncs[key] {
		w.checkArgs(call, f.Type().(*types.Signature))
		return
	}
	if path == "fmt" || path == "errors" {
		w.reportf(call.Pos(),
			"%s formats through interfaces and allocates; hot paths return precomputed values or static errors",
			key)
		return
	}
	w.reportf(call.Pos(), "call to %s is outside the allocation-free allowlist (unprovable)", key)
}

// checkArgs flags interface boxing of concrete arguments and implicit
// variadic slice construction at a call whose signature is known.
// Everything is reported at the call position, so one line-level
// lint:ignore covers a call however its arguments wrap.
func (w *allocWalker) checkArgs(call *ast.CallExpr, sig *types.Signature) {
	if sig == nil {
		return
	}
	params := sig.Params()
	n := params.Len()
	if sig.Variadic() {
		if call.Ellipsis == token.NoPos && len(call.Args) >= n {
			w.reportf(call.Pos(), "variadic call allocates its argument slice")
		}
		for i, arg := range call.Args {
			var pt types.Type
			if i < n-1 {
				pt = params.At(i).Type()
			} else if call.Ellipsis == token.NoPos {
				pt = params.At(n - 1).Type().(*types.Slice).Elem()
			} else {
				break
			}
			if w.boxes(arg, pt) {
				w.reportf(call.Pos(), "argument %d is boxed into interface %s", i+1, pt)
			}
		}
		return
	}
	for i, arg := range call.Args {
		if i >= n {
			break
		}
		if w.boxes(arg, params.At(i).Type()) {
			w.reportf(call.Pos(), "argument %d is boxed into interface %s", i+1, params.At(i).Type())
		}
	}
}

// conversion flags the converting forms that copy: to string, string
// to byte/rune slice, and into an interface.
func (w *allocWalker) conversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	target := w.typeOf(call.Fun)
	src := w.typeOf(call.Args[0])
	switch {
	case isStringType(target) && !isStringType(src) && !isUntypedConst(w.info(), call.Args[0]):
		w.reportf(call.Pos(), "conversion to string allocates")
	case isByteOrRuneSlice(target) && isStringType(src):
		w.reportf(call.Pos(), "string to %s conversion copies and allocates", target)
	case w.boxes(call.Args[0], target):
		w.reportf(call.Pos(), "conversion boxes %s into interface %s", src, target)
	}
}

func (w *allocWalker) assign(n *ast.AssignStmt) {
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(w.typeOf(n.Lhs[0])) {
		w.reportf(n.Pos(), "string concatenation allocates")
	}
	for _, lhs := range n.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if _, isMap := w.typeOf(ix.X).Underlying().(*types.Map); isMap {
				w.reportf(lhs.Pos(), "map assignment may allocate")
			}
		}
	}
	if (n.Tok == token.ASSIGN) && len(n.Lhs) == len(n.Rhs) {
		for i := range n.Lhs {
			if w.boxes(n.Rhs[i], w.typeOf(n.Lhs[i])) {
				w.reportf(n.Rhs[i].Pos(), "assignment boxes %s into interface %s",
					w.typeOf(n.Rhs[i]), w.typeOf(n.Lhs[i]))
			}
		}
	}
}

// boxes reports whether assigning expr to target converts a concrete
// non-pointer-shaped value into an interface — the conversion that
// calls the allocator. Pointer-shaped values (pointers, maps, chans,
// funcs) fit the interface word directly.
func (w *allocWalker) boxes(expr ast.Expr, target types.Type) bool {
	if target == nil || !types.IsInterface(target) {
		return false
	}
	t := w.typeOf(expr)
	if t == types.Typ[types.Invalid] || types.IsInterface(t) {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	return true
}

// resultTypes lists a signature's declared result types, expanding
// grouped fields ("(a, b int)").
func resultTypes(info *types.Info, ftype *ast.FuncType) []types.Type {
	if ftype.Results == nil {
		return nil
	}
	var out []types.Type
	for _, field := range ftype.Results.List {
		t := info.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, t)
		}
	}
	return out
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Info()&types.IsUntyped != 0
}

// isConstExpr reports whether the expression folds to a constant (a
// constant string concatenation happens at compile time).
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
