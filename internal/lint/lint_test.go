package lint_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ceer/internal/lint"
	"ceer/internal/lint/linttest"
)

// Each analyzer has a self-contained module under testdata with one
// true-positive fixture (every expected finding marked by a
// `// want "regexp"` comment) and one clean fixture that must stay
// silent. linttest.Run fails on any mismatch in either direction.

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "ctxflow"), lint.AnalyzerCtxFlow)
}

func TestDeviceGeneric(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "devicegeneric"), lint.AnalyzerDeviceGeneric)
}

func TestDeterminism(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "determinism"), lint.AnalyzerDeterminism)
}

func TestErrDrop(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "errdrop"), lint.AnalyzerErrDrop)
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "floatcmp"), lint.AnalyzerFloatCmp)
}

func TestHotPath(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "hotpath"), lint.AnalyzerHotPath)
}

// TestJSONGolden pins the -json encoding byte for byte: ordering is
// (file, line, col, analyzer, message) and the encoder is shared with
// cmd/ceer-lint, so a drift here is a drift in the CLI's contract.
func TestJSONGolden(t *testing.T) {
	dir := filepath.Join("testdata", "golden")
	diags, err := lint.Run(lint.Config{Dir: dir}, lint.Analyzers)
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("golden tree produced no diagnostics; the fixture is broken")
	}
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want, err := os.ReadFile(filepath.Join(dir, "want.json"))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("JSON output drifted from golden file\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestJSONEmpty pins the no-findings encoding: an empty array, never
// null, so downstream jq pipelines don't need a guard.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("WriteJSON(nil) = %q, want %q", got, "[]\n")
	}
}

// TestByName covers analyzer selection for the CLI's -analyzers flag.
func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil || len(all) != len(lint.Analyzers) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := lint.ByName("errdrop, floatcmp")
	if err != nil || len(two) != 2 || two[0].Name != "errdrop" || two[1].Name != "floatcmp" {
		t.Fatalf("ByName(errdrop, floatcmp) = %v, err %v", two, err)
	}
	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) did not fail")
	}
}

func TestAllocFree(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "allocfree"), lint.AnalyzerAllocFree)
}

func TestAtomics(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "atomics"), lint.AnalyzerAtomics)
}

func TestPoolPair(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "poolpair"), lint.AnalyzerPoolPair)
}

// TestSARIFGolden pins the -sarif encoding byte for byte, like
// TestJSONGolden does for -json; the two modes share diagnostics and
// ordering, so only the envelope differs.
func TestSARIFGolden(t *testing.T) {
	dir := filepath.Join("testdata", "golden")
	diags, err := lint.Run(lint.Config{Dir: dir}, lint.Analyzers)
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("golden tree produced no diagnostics; the fixture is broken")
	}
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, diags); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	want, err := os.ReadFile(filepath.Join(dir, "want.sarif"))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("SARIF output drifted from golden file\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestCrossCheckEscapes feeds a hand-written -gcflags=-m log into the
// escape cross-check: a hit inside a hot-reachable helper must
// surface, hits inside an exempt boundary, an unreachable function,
// or under a lint:ignore must not. Line numbers are recovered from
// the fixture source so edits don't silently rot the log.
func TestCrossCheckEscapes(t *testing.T) {
	dir := filepath.Join("testdata", "escape")
	src, err := os.ReadFile(filepath.Join(dir, "hot", "hot.go"))
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	// The four &node{...} returns appear in a fixed order: alloc,
	// Exempted, Cold, ignored.
	var lines []int
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "&node{v:") {
			lines = append(lines, i+1)
		}
	}
	if len(lines) != 4 {
		t.Fatalf("fixture has %d &node returns, want 4", len(lines))
	}
	log := fmt.Sprintf(`# example.com/escape/hot
hot/hot.go:16:13: leaking param: n
hot/hot.go:%d:9: &node{...} escapes to heap
hot/hot.go:%d:9: &node{...} escapes to heap
hot/hot.go:%d:9: &node{...} escapes to heap
hot/hot.go:%d:9: &node{...} escapes to heap
not a diagnostic line
`, lines[0], lines[1], lines[2], lines[3])
	diags, err := lint.CrossCheckEscapes(lint.Config{Dir: dir}, strings.NewReader(log))
	if err != nil {
		t.Fatalf("CrossCheckEscapes: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "allocfree" || d.File != "hot/hot.go" || d.Line != lines[0] {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
	if !strings.Contains(d.Message, "compiler escape analysis") || !strings.Contains(d.Message, "alloc") {
		t.Errorf("unexpected message: %s", d.Message)
	}
}
