package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerCtxFlow guards the cancellation contract introduced with the
// resilient campaign (DESIGN.md Section 11): deadlines and
// cancellation flow from the CLIs down through Pipeline, Profiler, and
// par.ForEach as explicit context.Context parameters. A
// context.Background() (or context.TODO()) conjured in the middle of
// that path silently detaches the work below it from the caller's
// deadline, so on the campaign packages the analyzer forbids both and
// demands the context be threaded from the caller instead.
//
// The root ceer package and the cmd/ binaries are deliberately out of
// scope — they are the top of the call tree, where a root context is
// legitimately minted. Test files are exempt too: a test is its own
// top of tree.
var AnalyzerCtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "forbids context.Background/TODO on the campaign path; " +
		"contexts must be threaded from the caller",
	Scope: []string{
		"internal/sim",
		"internal/ceer",
		"internal/experiments",
	},
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			switch fn.Name() {
			case "Background", "TODO":
				pass.Reportf(call.Pos(),
					"context.%s detaches this call tree from the caller's deadline; thread a ctx parameter instead",
					fn.Name())
			}
			return true
		})
	}
}
