package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Config locates the module to analyze.
type Config struct {
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// ModulePath is the module's import path. When empty it is read
	// from go.mod in Dir.
	ModulePath string
}

// Package is one analysis unit: either a package together with its
// in-package _test.go files, or an external test package (package
// foo_test). Non-test files therefore appear in exactly one unit.
type Package struct {
	// Path is the unit's import path. External test units share the
	// path of the package under test and set ExternalTest.
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// ExternalTest marks a package foo_test unit.
	ExternalTest bool

	// Files are the parsed files of the unit, sorted by filename.
	Files []*ast.File
	// Types and Info hold the unit's type-check results.
	Types *types.Package
	Info  *types.Info
}

// loader type-checks the module's packages from source in dependency
// order: importing a module-local package triggers a memoized
// type-check of that package's non-test files, and everything else
// (the standard library) is resolved by the stdlib source importer.
// No compiled export data and no network access are needed.
type loader struct {
	fset    *token.FileSet
	root    string
	modpath string
	std     types.Importer

	exports map[string]*exportEntry
	parsed  map[string][]*ast.File // dir -> parsed files (all .go files)
}

type exportEntry struct {
	pkg      *types.Package
	err      error
	checking bool
}

// Load parses and type-checks every package under cfg.Dir (skipping
// testdata, hidden, and underscore directories) and returns the
// analysis units sorted by import path, external test units last
// within a path.
func Load(cfg Config) ([]*Package, *token.FileSet, error) {
	root, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	modpath := cfg.ModulePath
	if modpath == "" {
		modpath, err = readModulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			return nil, nil, err
		}
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		root:    root,
		modpath: modpath,
		std:     importer.ForCompiler(fset, "source", nil),
		exports: make(map[string]*exportEntry),
		parsed:  make(map[string][]*ast.File),
	}

	dirs, err := l.packageDirs()
	if err != nil {
		return nil, nil, err
	}

	var units []*Package
	for _, dir := range dirs {
		us, err := l.unitsFor(dir)
		if err != nil {
			return nil, nil, err
		}
		units = append(units, us...)
	}
	sort.Slice(units, func(i, j int) bool {
		if units[i].Path != units[j].Path {
			return units[i].Path < units[j].Path
		}
		return !units[i].ExternalTest && units[j].ExternalTest
	})
	return units, fset, nil
}

// packageDirs returns every directory under the root that contains .go
// files, sorted, as root-relative slash paths ("" for the root itself).
func (l *loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			rel, err := filepath.Rel(l.root, filepath.Dir(path))
			if err != nil {
				return err
			}
			rel = filepath.ToSlash(rel)
			if rel == "." {
				rel = ""
			}
			if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
				dirs = append(dirs, rel)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	uniq := dirs[:0]
	for _, d := range dirs {
		if len(uniq) == 0 || uniq[len(uniq)-1] != d {
			uniq = append(uniq, d)
		}
	}
	return uniq, nil
}

func (l *loader) importPath(relDir string) string {
	if relDir == "" {
		return l.modpath
	}
	return l.modpath + "/" + relDir
}

func (l *loader) dirFor(path string) (string, bool) {
	if path == l.modpath {
		return l.root, true
	}
	if rest, ok := strings.CutPrefix(path, l.modpath+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// parseDir parses every .go file of a directory once (with comments);
// results are shared between the export pass and the analysis passes.
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	if files, ok := l.parsed[dir]; ok {
		return files, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if !buildIncluded(f) {
			continue
		}
		files = append(files, f)
	}
	l.parsed[dir] = files
	return files, nil
}

// buildIncluded evaluates a file's //go:build constraint (if any)
// against the default build configuration — GOOS, GOARCH, and the
// compiler, no extra tags — mirroring what `go build` without -tags
// would compile. Tag-gated files (e.g. the chaosserve fault-injection
// hooks) are excluded exactly as the compiler excludes them, so their
// alternates don't collide during type-checking.
func buildIncluded(f *ast.File) bool {
	for _, group := range f.Comments {
		if group.Pos() >= f.Package {
			break
		}
		for _, c := range group.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				// An unparseable constraint is the compiler's problem;
				// include the file so its error surfaces normally.
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH || tag == runtime.Compiler
			})
		}
	}
	return true
}

// splitFiles partitions a directory's files into the package's own
// files, its in-package tests, and its external (package foo_test)
// tests.
func splitFiles(fset *token.FileSet, files []*ast.File) (pkg, inTest, extTest []*ast.File) {
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			pkg = append(pkg, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	return pkg, inTest, extTest
}

// importFor resolves one import: module-local packages are type-checked
// from source (non-test files only, memoized), everything else is
// delegated to the standard library's source importer.
func (l *loader) importFor(path string) (*types.Package, error) {
	if dir, ok := l.dirFor(path); ok {
		return l.exportCheck(path, dir)
	}
	return l.std.Import(path)
}

// Import implements types.Importer for module-local and stdlib paths.
func (l *loader) Import(path string) (*types.Package, error) { return l.importFor(path) }

// exportCheck type-checks the importable (non-test) half of a
// module-local package, recursing into its own imports first.
func (l *loader) exportCheck(path, dir string) (*types.Package, error) {
	if e, ok := l.exports[path]; ok {
		if e.checking {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	e := &exportEntry{checking: true}
	l.exports[path] = e

	files, err := l.parseDir(dir)
	if err == nil {
		pkgFiles, _, _ := splitFiles(l.fset, files)
		if len(pkgFiles) == 0 {
			err = fmt.Errorf("lint: no non-test Go files in %s", dir)
		} else {
			e.pkg, err = l.check(path, pkgFiles, nil)
		}
	}
	e.err = err
	e.checking = false
	return e.pkg, e.err
}

// check runs the type checker over one set of files.
func (l *loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	var errs []error
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		return pkg, fmt.Errorf("lint: type-checking %s: %v", path, errs[0])
	}
	if err != nil {
		return pkg, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// unitsFor builds the analysis units of one directory: the package with
// its in-package tests, plus the external test package if present.
func (l *loader) unitsFor(relDir string) ([]*Package, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(relDir))
	path := l.importPath(relDir)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	pkgFiles, inTest, extTest := splitFiles(l.fset, files)
	var units []*Package

	if len(pkgFiles)+len(inTest) > 0 {
		all := append(append([]*ast.File(nil), pkgFiles...), inTest...)
		info := newInfo()
		tpkg, err := l.check(path, all, info)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{Path: path, Dir: dir, Files: all, Types: tpkg, Info: info})
	}
	if len(extTest) > 0 {
		info := newInfo()
		tpkg, err := l.check(path+"_test", extTest, info)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{Path: path, Dir: dir, ExternalTest: true, Files: extTest, Types: tpkg, Info: info})
	}
	return units, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}
