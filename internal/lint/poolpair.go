package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerPoolPair enforces sync.Pool lifecycle discipline
// (DESIGN.md §13's arena contract): a value obtained from a pool Get —
// directly or through a wrapper like arena.get — must reach exactly
// one Put on every path out of the function (a deferred Put or
// exhaustive explicit Puts), must not be Put twice, and must not
// escape the request scope (stored into a non-local, returned, sent on
// a channel, captured by a closure, or handed to a goroutine). Getter
// and putter wrappers (a function that returns a pool Get, a function
// that Puts its parameter) are recognized module-wide and excluded
// from the lifecycle analysis of their own bodies. The flow analysis
// is branch-sensitive but loop-approximate: a value obtained inside a
// loop body must be Put inside that body. Test files are not checked.
var AnalyzerPoolPair = &Analyzer{
	Name: "poolpair",
	Doc: "checks sync.Pool Get/Put pairing on all return paths, " +
		"double Puts, and pool values escaping request scope",
	RunModule: runPoolPair,
}

func runPoolPair(p *ModulePass) {
	pools := collectPoolWrappers(p)
	p.eachNonTestFile(func(pkg *Package, file *ast.File) {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
				key := funcKey(obj)
				if pools.getters[key] || pools.putters[key] {
					continue // the wrapper IS the lifecycle primitive
				}
			}
			analyzePoolUse(p, pkg, fn.Body, pools)
		}
	})
}

// poolWrappers records module functions that wrap pool Get/Put.
type poolWrappers struct {
	getters map[string]bool
	putters map[string]bool
}

// collectPoolWrappers classifies, module-wide, the functions whose
// body is just a pool Get (return a.pool.Get().(*T)) or a pool Put of
// a parameter. One wrapper level is recognized — the arena idiom.
func collectPoolWrappers(p *ModulePass) *poolWrappers {
	pools := &poolWrappers{getters: make(map[string]bool), putters: make(map[string]bool)}
	p.eachNonTestFile(func(pkg *Package, file *ast.File) {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			params := make(map[types.Object]bool)
			if fn.Type.Params != nil {
				for _, field := range fn.Type.Params.List {
					for _, name := range field.Names {
						if po := pkg.Info.Defs[name]; po != nil {
							params[po] = true
						}
					}
				}
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ReturnStmt:
					if len(n.Results) == 1 {
						if call, ok := unwrapToCall(n.Results[0]); ok && isPoolMethod(pkg.Info, call, "Get") {
							pools.getters[funcKey(obj)] = true
						}
					}
				case *ast.CallExpr:
					if isPoolMethod(pkg.Info, n, "Put") && len(n.Args) == 1 {
						if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok && params[pkg.Info.Uses[id]] {
							pools.putters[funcKey(obj)] = true
						}
					}
				}
				return true
			})
		}
	})
	return pools
}

// unwrapToCall strips parens and type assertions around a call.
func unwrapToCall(e ast.Expr) (*ast.CallExpr, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			return x, true
		default:
			return nil, false
		}
	}
}

// isPoolMethod reports whether call is (*sync.Pool).Get or Put.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	kind, obj := resolveCall(info, call)
	if kind != calleeStatic {
		return false
	}
	f := obj.(*types.Func)
	if f.Name() != name || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return false
	}
	sig := f.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// analyzePoolUse finds every pool-derived local in one body and runs
// the lifecycle walker over it.
func analyzePoolUse(p *ModulePass, pkg *Package, body *ast.BlockStmt, pools *poolWrappers) {
	bound := make(map[token.Pos]bool) // get-call positions bound to a variable
	var targets []*poolTracker
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 || len(n.Lhs) != 1 {
				return true
			}
			call, ok := unwrapToCall(n.Rhs[0])
			if !ok || !isGetCall(pkg.Info, call, pools) {
				return true
			}
			bound[call.Pos()] = true
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := pkg.Info.Defs[id]
			if obj == nil {
				obj = pkg.Info.Uses[id]
			}
			if obj != nil && !trackedObj(targets, obj) {
				targets = append(targets, &poolTracker{
					p: p, pkg: pkg, pools: pools, obj: obj, getPos: call.Pos(),
				})
			}
		case *ast.ValueSpec:
			if len(n.Values) == 1 && len(n.Names) == 1 {
				if call, ok := unwrapToCall(n.Values[0]); ok && isGetCall(pkg.Info, call, pools) {
					bound[call.Pos()] = true
					if obj := pkg.Info.Defs[n.Names[0]]; obj != nil && !trackedObj(targets, obj) {
						targets = append(targets, &poolTracker{
							p: p, pkg: pkg, pools: pools, obj: obj, getPos: call.Pos(),
						})
					}
				}
			}
		}
		return true
	})
	// A Get whose result is not bound to a local cannot be tracked.
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isGetCall(pkg.Info, call, pools) && !bound[call.Pos()] {
			p.Reportf(call.Pos(),
				"pool Get result is not bound to a local variable; its Put lifecycle is unprovable")
		}
		return true
	})
	for _, t := range targets {
		t.checkClosures(body)
		end, terminated := t.stmts(body.List, poolState{})
		if !terminated {
			t.atExit(end, t.getPos)
		}
	}
}

func trackedObj(targets []*poolTracker, obj types.Object) bool {
	for _, t := range targets {
		if t.obj == obj {
			return true
		}
	}
	return false
}

// isGetCall matches a direct (*sync.Pool).Get or a known getter
// wrapper; isPutOf matches Put the same way and returns the argument.
func isGetCall(info *types.Info, call *ast.CallExpr, pools *poolWrappers) bool {
	if isPoolMethod(info, call, "Get") {
		return true
	}
	kind, obj := resolveCall(info, call)
	return kind == calleeStatic && pools.getters[funcKey(obj.(*types.Func))]
}

func isPutCall(info *types.Info, call *ast.CallExpr, pools *poolWrappers) (ast.Expr, bool) {
	if isPoolMethod(info, call, "Put") && len(call.Args) == 1 {
		return call.Args[0], true
	}
	kind, obj := resolveCall(info, call)
	if kind == calleeStatic && pools.putters[funcKey(obj.(*types.Func))] && len(call.Args) >= 1 {
		return call.Args[0], true
	}
	return nil, false
}

// triState is the walker's three-valued liveness lattice.
type triState uint8

const (
	stNo triState = iota
	stMaybe
	stYes
)

func mergeTri(a, b triState) triState {
	if a == b {
		return a
	}
	return stMaybe
}

// poolState tracks one pool value through the statement walk: live is
// "holds an un-Put value", deferred is "a deferred Put covers function
// exit from here on".
type poolState struct {
	live     triState
	deferred triState
}

func (s poolState) merge(o poolState) poolState {
	return poolState{live: mergeTri(s.live, o.live), deferred: mergeTri(s.deferred, o.deferred)}
}

// poolTracker walks one function body for one pool-derived variable.
type poolTracker struct {
	p      *ModulePass
	pkg    *Package
	pools  *poolWrappers
	obj    types.Object
	getPos token.Pos
}

func (t *poolTracker) info() *types.Info { return t.pkg.Info }

// isVar reports whether e is exactly the tracked variable.
func (t *poolTracker) isVar(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := t.info().Uses[id]
	if obj == nil {
		obj = t.info().Defs[id]
	}
	return obj == t.obj
}

// stmts walks a statement list, returning the out state and whether
// every path through the list terminated (returned or branched).
func (t *poolTracker) stmts(list []ast.Stmt, st poolState) (poolState, bool) {
	for _, s := range list {
		var terminated bool
		st, terminated = t.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (t *poolTracker) stmt(s ast.Stmt, st poolState) (poolState, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return t.assign(s, st), false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						if call, ok := unwrapToCall(v); ok && isGetCall(t.info(), call, t.pools) &&
							i < len(vs.Names) && t.info().Defs[vs.Names[i]] == t.obj {
							st = t.get(call.Pos(), st)
						}
					}
				}
			}
		}
		return st, false
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			return t.call(call, st), false
		}
		return st, false
	case *ast.DeferStmt:
		if arg, ok := isPutCall(t.info(), s.Call, t.pools); ok && t.isVar(arg) {
			if st.deferred != stNo {
				t.p.Reportf(s.Pos(), "second deferred Put of %s (double Put)", t.obj.Name())
			}
			st.deferred = stYes
		}
		return st, false
	case *ast.ReturnStmt:
		escaped := false
		for _, res := range s.Results {
			if t.isVar(res) {
				escaped = true
				t.p.Reportf(res.Pos(),
					"pool-derived %s is returned; it must not outlive the request scope",
					t.obj.Name())
			}
		}
		if !escaped {
			// Returning the value already got its report; an un-Put
			// complaint on the same line would be noise.
			t.atExit(st, s.Pos())
		}
		return st, true
	case *ast.BlockStmt:
		return t.stmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = t.stmt(s.Init, st)
		}
		thenSt, thenTerm := t.stmts(s.Body.List, st)
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = t.stmt(s.Else, st)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		}
		return thenSt.merge(elseSt), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return t.branches(s, st)
	case *ast.ForStmt:
		return t.loop(s.Body, st), false
	case *ast.RangeStmt:
		return t.loop(s.Body, st), false
	case *ast.LabeledStmt:
		return t.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto: approximate as path-terminating; the
		// enclosing loop/switch already re-walks from the entry state.
		return st, true
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			if t.isVar(arg) {
				t.p.Reportf(arg.Pos(),
					"pool-derived %s is passed to a goroutine; it must not escape the request scope",
					t.obj.Name())
			}
		}
		return st, false
	case *ast.SendStmt:
		if t.isVar(s.Value) {
			t.p.Reportf(s.Value.Pos(),
				"pool-derived %s is sent on a channel; it must not escape the request scope",
				t.obj.Name())
		}
		return st, false
	}
	return st, false
}

// branches merges the clause bodies of a switch/type-switch/select.
func (t *poolTracker) branches(s ast.Stmt, st poolState) (poolState, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = t.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = t.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var out poolState
	outSet, allTerm := false, true
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
			}
		}
		cs, cterm := t.stmts(stmts, st)
		if cterm {
			continue
		}
		allTerm = false
		if !outSet {
			out, outSet = cs, true
		} else {
			out = out.merge(cs)
		}
	}
	if !hasDefault {
		// No default: the zero-clause path falls through untouched.
		allTerm = false
		if !outSet {
			out, outSet = st, true
		} else {
			out = out.merge(st)
		}
	}
	if allTerm && len(body.List) > 0 {
		return st, true
	}
	if !outSet {
		out = st
	}
	return out, false
}

// loop walks a loop body once from the entry state. A value obtained
// inside the body must be put inside it — liveness must not leak into
// the next iteration.
func (t *poolTracker) loop(body *ast.BlockStmt, st poolState) poolState {
	end, _ := t.stmts(body.List, st)
	if st.live == stNo && end.live != stNo && end.deferred == stNo {
		t.p.Reportf(t.getPos,
			"pool Get of %s inside a loop body is not Put before the iteration ends",
			t.obj.Name())
	}
	return st
}

// assign handles Gets, escapes-by-store, and aliasing.
func (t *poolTracker) assign(s *ast.AssignStmt, st poolState) poolState {
	if len(s.Rhs) == 1 && len(s.Lhs) == 1 {
		if call, ok := unwrapToCall(s.Rhs[0]); ok && isGetCall(t.info(), call, t.pools) {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				obj := t.info().Defs[id]
				if obj == nil {
					obj = t.info().Uses[id]
				}
				if obj == t.obj {
					return t.get(call.Pos(), st)
				}
			}
			return st
		}
	}
	for i, rhs := range s.Rhs {
		if !t.isVar(rhs) {
			continue
		}
		if i >= len(s.Lhs) {
			break
		}
		if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok {
			if id.Name == "_" {
				continue // a blank discard keeps nothing alive
			}
			obj := t.info().Defs[id]
			if obj == nil {
				obj = t.info().Uses[id]
			}
			if v, isVar := obj.(*types.Var); isVar && !v.IsField() && v.Parent() != v.Pkg().Scope() {
				continue // local alias; conservative, but aliases are rare and reviewed
			}
		}
		t.p.Reportf(rhs.Pos(),
			"pool-derived %s is stored outside the request scope; it must stay local until Put",
			t.obj.Name())
	}
	return st
}

// get transitions on a pool Get of the tracked variable.
func (t *poolTracker) get(pos token.Pos, st poolState) poolState {
	if st.live != stNo && st.deferred == stNo {
		t.p.Reportf(pos, "pool Get overwrites %s while it still holds an un-Put value", t.obj.Name())
	}
	st.live = stYes
	return st
}

// call transitions on an expression-statement call (the Put site).
func (t *poolTracker) call(call *ast.CallExpr, st poolState) poolState {
	arg, ok := isPutCall(t.info(), call, t.pools)
	if !ok || !t.isVar(arg) {
		return st
	}
	switch {
	case st.deferred != stNo:
		t.p.Reportf(call.Pos(), "Put of %s is already deferred (double Put)", t.obj.Name())
	case st.live == stNo:
		t.p.Reportf(call.Pos(), "double Put of %s", t.obj.Name())
	case st.live == stMaybe:
		t.p.Reportf(call.Pos(), "Put of %s, which is live on only some paths here", t.obj.Name())
	}
	st.live = stNo
	return st
}

// atExit reports an un-Put value at a return or the function end.
func (t *poolTracker) atExit(st poolState, pos token.Pos) {
	if st.deferred == stYes {
		return
	}
	if st.deferred == stMaybe && st.live != stNo {
		t.p.Reportf(pos, "Put of %s is deferred on only some paths to this exit", t.obj.Name())
		return
	}
	switch st.live {
	case stYes:
		t.p.Reportf(pos, "pool-derived %s is not Put on this return path", t.obj.Name())
	case stMaybe:
		t.p.Reportf(pos, "pool-derived %s is Put on only some paths to this exit", t.obj.Name())
	}
}

// checkClosures flags closures capturing the tracked variable.
func (t *poolTracker) checkClosures(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && t.info().Uses[id] == t.obj {
				t.p.Reportf(id.Pos(),
					"pool-derived %s is captured by a closure; it must not escape the request scope",
					t.obj.Name())
				return false
			}
			return true
		})
		return false
	})
}
