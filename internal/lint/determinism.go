package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerDeterminism guards the repo's byte-identical reproducibility
// contract (ROADMAP: same campaign, same predictor JSON, same
// recommendation, every run). On the packages that sit on the result
// path it forbids the three classic nondeterminism leaks:
//
//   - wall-clock reads (time.Now/Since/Until),
//   - the global math/rand source (seeded per-process; internal/rng
//     derives streams from device SeedIDs instead),
//   - process environment reads (os.Getenv and friends), and
//   - iterating a map while feeding an output slice, string, or
//     emitted line without an intervening sort — Go randomizes map
//     iteration order per run.
//
// Test files are exempt: they are not on a result path and routinely
// time things.
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc: "forbids wall-clock, global rand, env reads, and unsorted " +
		"map-order-dependent output on the result path",
	Scope: []string{
		"internal/sim",
		"internal/ceer",
		"internal/graph",
		"internal/experiments",
		"internal/par",
		"internal/regress",
		"internal/drift",
		// The linter lints itself: diagnostic order is part of the
		// CLI contract (golden-pinned), so its own output paths must
		// not depend on map iteration order or wall-clock.
		"internal/lint",
	},
	Run: runDeterminism,
}

// bannedFuncs maps package path -> function name -> why it is banned.
// Only package-level functions are matched; methods (e.g. a seeded
// (*rand.Rand).Int63) are deterministic and stay legal.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
	},
	"os": {
		"Getenv":    "reads the process environment",
		"LookupEnv": "reads the process environment",
		"Environ":   "reads the process environment",
	},
	"math/rand":    globalRandFuncs,
	"math/rand/v2": globalRandFuncs,
}

var globalRandFuncs = map[string]string{
	"Int": "draws from the global rand source", "Intn": "draws from the global rand source",
	"IntN": "draws from the global rand source", "Int31": "draws from the global rand source",
	"Int31n": "draws from the global rand source", "Int32": "draws from the global rand source",
	"Int32N": "draws from the global rand source", "Int63": "draws from the global rand source",
	"Int63n": "draws from the global rand source", "Int64": "draws from the global rand source",
	"Int64N": "draws from the global rand source", "Uint32": "draws from the global rand source",
	"Uint32N": "draws from the global rand source", "Uint64": "draws from the global rand source",
	"Uint64N": "draws from the global rand source", "UintN": "draws from the global rand source",
	"Uint": "draws from the global rand source", "Float32": "draws from the global rand source",
	"Float64": "draws from the global rand source", "ExpFloat64": "draws from the global rand source",
	"NormFloat64": "draws from the global rand source", "Perm": "draws from the global rand source",
	"Shuffle": "draws from the global rand source", "Read": "draws from the global rand source",
	"Seed": "reseeds the global rand source", "N": "draws from the global rand source",
}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkBannedCall(pass, call)
			}
			return true
		})
		checkMapOrderedOutput(pass, file)
	}
}

// checkBannedCall flags calls to the nondeterministic package-level
// functions in bannedFuncs.
func checkBannedCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return
	}
	if why, banned := bannedFuncs[fn.Pkg().Path()][fn.Name()]; banned {
		pass.Reportf(call.Pos(), "%s.%s %s; results become run-dependent",
			fn.Pkg().Name(), fn.Name(), why)
	}
}

// checkMapOrderedOutput flags range-over-map loops whose iteration
// order escapes into ordered output: an append to a variable declared
// outside the loop (unless a later call in the same function sorts
// it), string concatenation onto an outer variable, or a direct
// fmt/Write emission from inside the loop body.
func checkMapOrderedOutput(pass *Pass, file *ast.File) {
	var funcs []*ast.FuncDecl
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			funcs = append(funcs, fd)
		}
	}
	for _, fd := range funcs {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, fd, rs)
			return true
		})
	}
}

func checkMapRangeBody(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isEmissionCall(pass, n) {
				pass.Reportf(n.Pos(), "emits output inside map iteration; map order is randomized per run")
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, fd, rs, n)
		}
		return true
	})
}

// checkMapRangeAssign handles `x = append(x, ...)` and `s += ...`
// inside a map-range body when the target is declared outside the loop.
func checkMapRangeAssign(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) {
			continue
		}
		lhs := as.Lhs[i]
		if !declaredOutside(pass, rs, lhs) {
			continue
		}
		target := types.ExprString(lhs)
		if sortedAfter(pass, fd, rs, target) {
			continue
		}
		pass.Reportf(as.Pos(),
			"append to %s inside map iteration without a later sort; map order is randomized per run", target)
	}
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if t := pass.Info.TypeOf(as.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 &&
				declaredOutside(pass, rs, as.Lhs[0]) {
				pass.Reportf(as.Pos(),
					"string concatenation onto %s inside map iteration; map order is randomized per run",
					types.ExprString(as.Lhs[0]))
			}
		}
	}
}

// isEmissionCall reports whether a call writes a line out: the fmt
// print family, or a Write/WriteString-style method.
func isEmissionCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
				return true
			}
			if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
				return true
			}
		}
		switch fun.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			// Method writes (builders, buffers, writers) emit in loop order.
			if sel, ok := pass.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				return true
			}
		}
	}
	return false
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredOutside reports whether the root identifier of expr refers to
// an object declared outside the range statement (so loop-local
// accumulators don't count — their order dependence dies with the
// loop... unless they're emitted, which the emission check catches).
func declaredOutside(pass *Pass, rs *ast.RangeStmt, expr ast.Expr) bool {
	id := rootIdent(expr)
	if id == nil {
		return false
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// rootIdent digs the base identifier out of selector/index chains:
// out.HeavyTypes -> out, keys[i] -> keys.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether, later in the same function, a call whose
// name mentions "sort" receives the appended target (sort.Slice(keys,
// ...), sortTypes(out.HeavyTypes), slices.Sort(ids), ...). That is the
// repo's canonical collect-keys-then-sort idiom and it launders the map
// order out of the result.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		name := calleeName(call)
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if strings.Contains(types.ExprString(arg), target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// calleeName renders the full called expression (sort.Slice,
// sortTypes, slices.SortFunc, ...) so the "mentions sort" test sees
// the package qualifier too.
func calleeName(call *ast.CallExpr) string {
	return types.ExprString(ast.Unparen(call.Fun))
}
