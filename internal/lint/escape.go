package lint

import (
	"bufio"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Cross-check of the compiler's own escape analysis against the
// hot-path call graph. allocfree proves allocation-freedom from the
// AST up; `go build -gcflags=-m` proves it from the SSA down. The two
// disagree exactly where one of them is wrong, so check.sh runs both:
// this file parses the compiler's diagnostics and reports any
// "escapes to heap" / "moved to heap" that lands inside a function
// the //hot:path walk covers. Findings are reported under the
// allocfree analyzer name so one //lint:ignore allocfree line
// suppresses both sides.

// escapeHit is one heap diagnostic from the compiler log.
type escapeHit struct {
	file string // as printed by the compiler (build-dir relative)
	line int
	col  int
	msg  string
}

// parseEscapeLog extracts the heap-allocation diagnostics from the
// stderr of `go build -gcflags=-m`. Package headers (`# path`) and
// non-allocation notes (leaking param, inlining) are skipped; a line
// that does not parse as file:line:col is skipped rather than fatal,
// because the compiler interleaves free-form notes.
func parseEscapeLog(r io.Reader) ([]escapeHit, error) {
	var hits []escapeHit
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 {
			continue
		}
		ln, err1 := strconv.Atoi(parts[1])
		col, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		hits = append(hits, escapeHit{
			file: parts[0],
			line: ln,
			col:  col,
			msg:  strings.TrimSpace(parts[3]),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lint: reading escape log: %w", err)
	}
	return hits, nil
}

// fnRange is one covered function's source extent.
type fnRange struct {
	startLine int
	endLine   int
	fi        *funcInfo
}

// CrossCheckEscapes loads the module at cfg, parses a
// `go build -gcflags=-m` log, and returns one allocfree diagnostic for
// every heap allocation the compiler found inside a hot-path-covered
// function. lint:ignore suppressions apply; malformed directives are
// NOT re-reported here (the regular run owns that).
func CrossCheckEscapes(cfg Config, log io.Reader) ([]Diagnostic, error) {
	hits, err := parseEscapeLog(log)
	if err != nil {
		return nil, err
	}
	pkgs, fset, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	root, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}

	mp := &ModulePass{Fset: fset, Pkgs: pkgs, report: func(token.Pos, string) {}}
	covered := hotReachable(buildCallIndex(mp))
	ranges := make(map[string][]fnRange)
	for _, key := range sortedKeys(covered) {
		fi := covered[key]
		pos := fset.Position(fi.decl.Pos())
		ranges[pos.Filename] = append(ranges[pos.Filename], fnRange{
			startLine: pos.Line,
			endLine:   fset.Position(fi.decl.End()).Line,
			fi:        fi,
		})
	}

	known := make(map[string]bool, len(Analyzers))
	for _, a := range Analyzers {
		known[a.Name] = true
	}
	ignores := &ignoreSet{byFileLine: make(map[string]map[int]map[string]bool)}
	for _, pkg := range pkgs {
		unitIgnores, _ := collectIgnores(fset, pkg, known)
		for file, lines := range unitIgnores.byFileLine {
			ignores.byFileLine[file] = lines
		}
	}

	var diags []Diagnostic
	for _, h := range hits {
		abs := h.file
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(root, filepath.FromSlash(h.file))
		}
		fi := enclosing(ranges[abs], h.line)
		if fi == nil || ignores.suppressed(AnalyzerAllocFree.Name, abs, h.line) {
			continue
		}
		where := "reachable from a //hot:path root"
		if fi.root {
			where = "a //hot:path function"
		}
		rel := h.file
		if r, err := filepath.Rel(root, abs); err == nil && !strings.HasPrefix(r, "..") {
			rel = filepath.ToSlash(r)
		}
		diags = append(diags, Diagnostic{
			File:     rel,
			Line:     h.line,
			Col:      h.col,
			Analyzer: AnalyzerAllocFree.Name,
			Message: fmt.Sprintf("compiler escape analysis: %s in %s (%s)",
				h.msg, fi.display(), where),
		})
	}
	sortDiagnostics(diags)
	return diags, nil
}

// enclosing finds the covered function containing line, preferring the
// innermost (latest-starting) range so methods declared after one
// another resolve correctly.
func enclosing(ranges []fnRange, line int) *funcInfo {
	var best *fnRange
	for i := range ranges {
		r := &ranges[i]
		if line < r.startLine || line > r.endLine {
			continue
		}
		if best == nil || r.startLine > best.startLine {
			best = r
		}
	}
	if best == nil {
		return nil
	}
	return best.fi
}

// sortedKeys returns the map's keys in sorted order, for deterministic
// range building.
func sortedKeys(m map[string]*funcInfo) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
