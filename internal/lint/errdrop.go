package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerErrDrop enforces error hygiene across the whole module: an
// error return may never vanish silently. A call whose error result is
// discarded entirely (expression statement, defer, or go) is always
// flagged; assigning the error to the blank identifier is allowed only
// when the line (or the line above) carries a comment justifying it —
// otherwise `x, _ := f()` is exactly the silent drop the analyzer
// exists to catch.
//
// Writers that are documented to never fail are exempt: the fmt print
// family writing to stdout, fmt.Fprint* into a *bytes.Buffer or
// *strings.Builder, and the Write* methods of those two types.
var AnalyzerErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "forbids silently discarded error returns; blank-assign with a " +
		"justifying comment (or lint:ignore) where dropping is intentional",
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		commented := commentLines(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDiscardedCall(pass, n.X, "")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call, "spawned ")
			case *ast.AssignStmt:
				checkBlankError(pass, n, commented)
			}
			return true
		})
	}
}

// checkDiscardedCall flags a statement-position call that returns an
// error among its results.
func checkDiscardedCall(pass *Pass, expr ast.Expr, kind string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	idx := errorResultIndex(pass, call)
	if idx < 0 || neverFails(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "%scall to %s discards its error result", kind, calleeString(call))
}

// checkBlankError flags `_ = f()` / `x, _ := g()` where the blank slot
// holds an error, unless a comment on the line (or the line above)
// justifies the drop.
func checkBlankError(pass *Pass, as *ast.AssignStmt, commented map[int]bool) {
	blankAt := func(i int) bool {
		if i >= len(as.Lhs) {
			return false
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		return ok && id.Name == "_"
	}
	justified := func() bool {
		line := pass.Fset.Position(as.Pos()).Line
		return commented[line] || commented[line-1]
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// x, _ := f(): one call, tuple result.
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		idx := errorResultIndex(pass, call)
		if idx < 0 || !blankAt(idx) || neverFails(pass, call) || justified() {
			return
		}
		pass.Reportf(as.Lhs[idx].Pos(),
			"error result of %s assigned to _ without a justifying comment", calleeString(call))
		return
	}
	for i, rhs := range as.Rhs {
		if !blankAt(i) {
			continue
		}
		t := pass.Info.TypeOf(rhs)
		if t == nil || !isErrorType(t) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || neverFails(pass, call) || justified() {
			continue
		}
		pass.Reportf(as.Lhs[i].Pos(),
			"error result of %s assigned to _ without a justifying comment", calleeString(call))
	}
}

// errorResultIndex returns the index of the first error among the
// call's results, or -1.
func errorResultIndex(pass *Pass, call *ast.CallExpr) int {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return -1
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
		return -1
	default:
		if isErrorType(t) {
			return 0
		}
		return -1
	}
}

// calleeString renders the called expression for the message.
func calleeString(call *ast.CallExpr) string {
	return types.ExprString(ast.Unparen(call.Fun))
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorIface) }

// neverFails exempts calls whose error result is structurally always
// nil: fmt.Print* (best-effort terminal output) and fmt.Fprint* or
// Write* methods targeting a *bytes.Buffer or *strings.Builder.
func neverFails(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if strings.HasPrefix(fn.Name(), "Print") {
			return true
		}
		if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
			return isInfallibleWriter(pass.Info.TypeOf(call.Args[0])) ||
				isStdStream(pass, call.Args[0])
		}
		return false
	}
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal &&
		strings.HasPrefix(fn.Name(), "Write") {
		return isInfallibleWriter(s.Recv())
	}
	return false
}

// isStdStream reports whether expr is the package-level os.Stdout or
// os.Stderr var: terminal output is best-effort by convention, same as
// the fmt.Print family.
func isStdStream(pass *Pass, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}

func isInfallibleWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// commentLines returns the set of lines carrying a comment — candidate
// justifications for blank-assigned errors. Directive comments
// (//go:..., //lint:...) don't count as prose justification.
func commentLines(pass *Pass, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			if text == "" || strings.HasPrefix(c.Text, "//go:") {
				continue
			}
			if strings.HasPrefix(c.Text, "//lint:") {
				continue
			}
			lines[pass.Fset.Position(c.Pos()).Line] = true
		}
	}
	return lines
}
