// Package hot is the escape-log cross-check fixture. The test feeds
// CrossCheckEscapes a hand-written `go build -gcflags=-m` log whose
// line numbers point into this file, so keep the layout stable (the
// test names lines by function, not by magic numbers).
package hot

type node struct{ v int }

// Root reaches alloc and ignored through helper.
//
//hot:path
func Root(n int) int {
	return helper(n)
}

func helper(n int) int {
	return alloc(n).v + ignored(n).v
}

func alloc(n int) *node {
	return &node{v: n}
}

// Exempted is a vetted boundary: compiler hits inside it are skipped.
//
//hot:exempt vetted cold boundary
func Exempted() *node {
	return &node{v: 1}
}

// Cold is unreachable from any root: hits inside it are skipped.
func Cold() *node {
	return &node{v: 2}
}

func ignored(n int) *node {
	//lint:ignore allocfree fixture: justified allocation, applies to compiler hits too
	return &node{v: n}
}
