module example.com/escape

go 1.22
