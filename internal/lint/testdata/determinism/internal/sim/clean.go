package sim

import (
	"math/rand"
	"sort"
)

// CleanCollect sorts after collecting, laundering map order out: the
// repo's canonical collect-keys-then-sort idiom.
func CleanCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CleanRand draws from an explicitly seeded stream; only the global
// source is banned.
func CleanRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
