package sim

import (
	"testing"
	"time"
)

// TestClockAllowed may read the clock: _test.go files are off the
// result path and the analyzer skips them.
func TestClockAllowed(t *testing.T) {
	if time.Now().IsZero() {
		t.Fatal("clock is zero")
	}
}
