// Package sim exercises the determinism analyzer: nothing on the
// result path may depend on the clock, the environment, the global
// rand source, or map iteration order.
package sim

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

// BadClock stamps results with the wall clock.
func BadClock() int64 {
	return time.Now().Unix() // want `time\.Now reads the wall clock`
}

// BadRand draws from the process-global source.
func BadRand() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the global rand source`
}

// BadEnv lets the process environment leak into results.
func BadEnv() string {
	return os.Getenv("CEER_MODE") // want `os\.Getenv reads the process environment`
}

// BadCollect feeds an output slice straight from map order.
func BadCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration without a later sort`
	}
	return keys
}

// BadEmit prints lines in map order.
func BadEmit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `emits output inside map iteration`
	}
}
