// Package regress exercises the determinism analyzer on the
// sufficient-statistics fitting path: accumulators and solvers must
// produce byte-identical coefficients on every run, so nothing here
// may read the clock, the environment, or the global rand source.
package regress

import (
	"math/rand"
	"sort"
	"time"
)

// BadFitStamp timestamps a fit with the wall clock.
func BadFitStamp() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// BadJitter perturbs coefficients from the process-global source.
func BadJitter(coef []float64) {
	for i := range coef {
		coef[i] += rand.NormFloat64() * 1e-9 // want `rand\.NormFloat64 draws from the global rand source`
	}
}

// BadCellOrder feeds per-cell coefficients out in map order.
func BadCellOrder(cells map[string][]float64) [][]float64 {
	var out [][]float64
	for _, c := range cells {
		out = append(out, c) // want `append to out inside map iteration without a later sort`
	}
	return out
}

// CleanCellOrder sorts the keys first: the canonical idiom.
func CleanCellOrder(cells map[string][]float64) [][]float64 {
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]float64, 0, len(keys))
	for _, k := range keys {
		out = append(out, cells[k])
	}
	return out
}
