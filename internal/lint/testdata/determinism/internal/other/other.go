// Package other is outside the determinism scope.
package other

import "time"

// Stamp is legal here: this package is not on the result path.
func Stamp() int64 { return time.Now().UnixNano() }
