// Package drift exercises the determinism analyzer on the drift
// detection path: verdicts must be a pure function of the residual
// window, so thresholds cannot come from the environment and windows
// cannot be sampled from the global rand source.
package drift

import (
	"math/rand"
	"os"
)

// BadThreshold lets an env var tune the drift threshold.
func BadThreshold() string {
	return os.Getenv("CEER_DRIFT_MAPE") // want `os\.Getenv reads the process environment`
}

// BadSample subsamples residuals via the process-global source.
func BadSample(resid []float64) float64 {
	return resid[rand.Intn(len(resid))] // want `rand\.Intn draws from the global rand source`
}

// CleanSample draws from an explicitly seeded stream instead.
func CleanSample(resid []float64, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return resid[r.Intn(len(resid))]
}

// CleanWindow is pure arithmetic over the window: always legal.
func CleanWindow(resid []float64) float64 {
	var sum float64
	for _, r := range resid {
		if r < 0 {
			r = -r
		}
		sum += r
	}
	return sum / float64(len(resid))
}
