module example.com/determinism

go 1.22
