module example.com/devicegeneric

go 1.22
