// Package gpu is a miniature stand-in for the real device registry:
// just enough for the devicegeneric fixtures to type-check.
package gpu

// ID names a registered device.
type ID string

// Device is the spec record core code should branch on.
type Device struct {
	ID       ID
	MemGB    float64
	Parallel bool
}

// The registered identities.
const (
	V100 ID = "v100"
	T4   ID = "t4"
)

// Lookup returns a canned spec.
func Lookup(id ID) Device {
	return Device{ID: id, MemGB: 16, Parallel: id == V100}
}
