// Package ceer exercises the devicegeneric analyzer: inside core
// packages, concrete device identities must not drive control flow.
package ceer

import "example.com/devicegeneric/internal/gpu"

// BadSwitch dispatches on a concrete device identity.
func BadSwitch(id gpu.ID) float64 {
	switch id { // want `switch on concrete device identity`
	case gpu.V100:
		return 2.0
	default:
		return 1.0
	}
}

// BadCompare branches on an identity comparison.
func BadCompare(id gpu.ID) bool {
	return id == gpu.V100 // want `comparison against concrete device identity gpu\.V100`
}
