package ceer

import "example.com/devicegeneric/internal/gpu"

// CleanDispatch branches on spec data, never on identity.
func CleanDispatch(d gpu.Device) float64 {
	if d.Parallel && d.MemGB > 12 {
		return 2.0
	}
	return 1.0
}

// CleanEmpty may compare against the zero ID: "is this set at all" is
// not identity dispatch.
func CleanEmpty(id gpu.ID) bool { return id != "" }
