// Package tools sits outside the devicegeneric scope; reporting code
// may name devices directly.
package tools

import "example.com/devicegeneric/internal/gpu"

// Describe switches on identity, legally: this is not a core package.
func Describe(id gpu.ID) string {
	switch id {
	case gpu.V100:
		return "datacenter-class"
	default:
		return "other"
	}
}
