// Package other is outside the ctxflow scope.
package other

import "context"

// Root is legal here: this package is the top of its own call tree.
func Root() context.Context { return context.Background() }
