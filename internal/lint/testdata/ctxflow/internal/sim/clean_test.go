package sim

import (
	"context"
	"testing"
)

// TestBackgroundAllowed may mint a root context: a test is its own top
// of the call tree and the analyzer skips _test.go files.
func TestBackgroundAllowed(t *testing.T) {
	if err := CleanThreaded(context.Background()); err != nil {
		t.Fatal(err)
	}
}
