package sim

import "context"

// CleanThreaded receives its context from the caller — deriving from a
// threaded ctx is the sanctioned pattern.
func CleanThreaded(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return sub.Err()
}
