// Package sim exercises the ctxflow analyzer: campaign-path packages
// must thread contexts from their callers, never mint root ones.
package sim

import "context"

// BadBackground conjures a root context mid-path, detaching everything
// below it from the caller's deadline.
func BadBackground() error {
	ctx := context.Background() // want `context\.Background detaches this call tree from the caller's deadline`
	return ctx.Err()
}

// BadTODO is the same leak wearing a to-do sign.
func BadTODO() error {
	return context.TODO().Err() // want `context\.TODO detaches this call tree from the caller's deadline`
}
