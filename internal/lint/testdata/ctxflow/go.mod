module example.com/ctxflow

go 1.22
