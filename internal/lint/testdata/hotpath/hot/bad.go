// Package hot exercises the hotpath analyzer: functions marked with a
// //hot:path doc directive must not take locks, index maps, or append.
package hot

import "sync"

// table mixes compiled flat arrays with the memo-style state the
// compiled serving core exists to retire.
type table struct {
	mu    sync.Mutex
	rwmu  sync.RWMutex
	memo  map[string]float64
	times []float64
}

// badLookup acquires a mutex and reads a map on a marked hot path.
//
//hot:path
func (t *table) badLookup(key string) float64 {
	t.mu.Lock() // want `sync Lock acquired in //hot:path function badLookup`
	defer t.mu.Unlock()
	return t.memo[key] // want `map index in //hot:path function badLookup`
}

// badReadLock takes a read lock and tries an upgrade.
//
//hot:path
func (t *table) badReadLock() int {
	t.rwmu.RLock() // want `sync RLock acquired in //hot:path function badReadLock`
	n := len(t.times)
	t.rwmu.RUnlock()
	if t.mu.TryLock() { // want `sync TryLock acquired in //hot:path function badReadLock`
		t.mu.Unlock()
	}
	return n
}

// badAppend grows a slice per call, including inside a nested function
// literal (which inherits the marking).
//
//hot:path
func (t *table) badAppend(v float64) []float64 {
	out := append(t.times, v) // want `append in //hot:path function badAppend`
	grow := func() {
		out = append(out, v) // want `append in //hot:path function badAppend`
	}
	grow()
	return out
}

// badStore writes through a map index on the hot path.
//
//hot:path
func (t *table) badStore(key string, v float64) {
	t.memo[key] = v // want `map index in //hot:path function badStore`
}
