package hot

import "sync"

// buildTable is unmarked compile-time code: locks, maps, and append
// are all fine off the hot path.
func buildTable(src map[string]float64) *table {
	t := &table{memo: make(map[string]float64)}
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, v := range src {
		t.memo[k] = v
		t.times = append(t.times, v)
	}
	return t
}

// cleanGather is the sanctioned hot-path shape: a pure gather-and-sum
// over precompiled flat arrays. Slice indexing stays legal.
//
//hot:path
func (t *table) cleanGather(idx []int) float64 {
	var sum float64
	for _, i := range idx {
		sum += t.times[i]
	}
	return sum
}

// cleanSuppressed documents a deliberate, reviewed exception with the
// standard suppression directive.
//
//hot:path
func (t *table) cleanSuppressed(key string) float64 {
	var once sync.Once
	once.Do(func() {})
	//lint:ignore hotpath fixture proves the suppression path works
	return t.memo[key]
}
