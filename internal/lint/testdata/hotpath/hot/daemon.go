package hot

import (
	"strings"
	"sync"
	"sync/atomic"
)

// The shapes below mirror the serving daemon (internal/serve): a
// request router, a query parser, an admission gate, and a metrics
// recorder all run per-request and are marked //hot:path; response
// rendering is append-heavy by design and therefore deliberately
// UNMARKED (the analyzer bans append on marked functions, so the
// daemon keeps its encoders off the marked set and pins their
// allocation behavior with benchmarks instead).

// daemon is a miniature of serve.Server's hot state.
type daemon struct {
	mu       sync.Mutex
	routes   map[string]int
	counters [4]atomic.Uint64
	inflight atomic.Int64
	buf      []byte
}

// badRoute resolves an endpoint through a map on the marked path —
// the daemon uses a switch on the path literal instead.
//
//hot:path
func (d *daemon) badRoute(path string) int {
	return d.routes[path] // want `map index in //hot:path function badRoute`
}

// badAdmit guards admission state with a mutex — the daemon uses
// lock-free atomics (token bucket CAS, in-flight counter).
//
//hot:path
func (d *daemon) badAdmit() bool {
	d.mu.Lock() // want `sync Lock acquired in //hot:path function badAdmit`
	defer d.mu.Unlock()
	return d.inflight.Load() < 8
}

// badRender appends the response body inside a marked function — body
// assembly belongs in an unmarked encoder over a pooled scratch.
//
//hot:path
func (d *daemon) badRender(msg string) {
	d.buf = append(d.buf, msg...) // want `append in //hot:path function badRender`
}

// cleanRoute is the daemon's sanctioned router shape: a switch on the
// path string, no map.
//
//hot:path
func (d *daemon) cleanRoute(path string) int {
	switch path {
	case "/v1/predict":
		return 0
	case "/v1/recommend":
		return 1
	default:
		return 3
	}
}

// cleanParse scans a query string by substring — no url.Values map.
//
//hot:path
func (d *daemon) cleanParse(raw string) (model string) {
	for len(raw) > 0 {
		pair := raw
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			raw = ""
		}
		if v, ok := strings.CutPrefix(pair, "model="); ok {
			model = v
		}
	}
	return model
}

// cleanObserve records a request outcome with atomics only.
//
//hot:path
func (d *daemon) cleanObserve(ep int) {
	d.counters[ep].Add(1)
	d.inflight.Add(-1)
}

// render is the deliberately-unmarked encoder: append into a reused
// buffer is the whole point of the pooled-scratch design, and the
// zero-allocation contract is enforced by benchmarks, not by this
// analyzer.
func (d *daemon) render(msg string) {
	d.buf = append(d.buf[:0], '{')
	d.buf = append(d.buf, msg...)
	d.buf = append(d.buf, '}')
}
