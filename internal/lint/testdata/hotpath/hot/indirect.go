package hot

// badMethodValue captures a lock acquisition as a method value: the
// capture itself allocates, and calling the value later takes the lock
// without a direct call expression for the analyzer's call check to
// see.
//
//hot:path
func (t *table) badMethodValue() func() {
	lock := t.mu.Lock // want `method value of sync Lock captured in //hot:path function badMethodValue`
	return lock
}

// badDeferLock acquires the lock through a defer statement.
//
//hot:path
func (t *table) badDeferLock() {
	defer t.mu.Lock() // want `sync Lock acquired in //hot:path function badDeferLock`
}

// cleanMethodValue is unmarked: method values are fine off the hot
// path.
func (t *table) cleanMethodValue() func() {
	return t.mu.Lock
}
