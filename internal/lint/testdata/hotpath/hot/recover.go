package hot

// The daemon's panic-recovery wrapper: the marked request path defers
// a DIRECT call to an unmarked guard method, so the guard's
// append-heavy failure rendering stays outside the marked set (it only
// runs after a panic). Inlining the guard as a deferred closure drags
// that rendering INTO the marked set — nested literals inherit the
// marking — and the analyzer rejects it.

// recoverGuard is deliberately unmarked: it renders the failure body
// after a panic, off the hot path.
func (d *daemon) recoverGuard(ep int) {
	if r := recover(); r != nil {
		d.counters[ep].Add(1)
		d.buf = append(d.buf[:0], "panic"...)
	}
}

// cleanRecover is the sanctioned shape: deferred direct method call.
//
//hot:path
func (d *daemon) cleanRecover(ep int) {
	defer d.recoverGuard(ep)
	d.counters[ep].Add(1)
}

// badRecoverClosure inlines the guard as a literal, pulling its
// rendering onto the marked path.
//
//hot:path
func (d *daemon) badRecoverClosure(ep int) {
	defer func() {
		if r := recover(); r != nil {
			d.buf = append(d.buf[:0], "panic"...) // want `append in //hot:path function badRecoverClosure`
		}
	}()
	d.counters[ep].Add(1)
}
