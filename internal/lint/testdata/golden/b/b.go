// Package b seeds one errdrop diagnostic for the JSON golden test.
package b

import "errors"

func fail() error { return errors.New("no") }

// Drop loses the error, on purpose.
func Drop() { fail() }
