// Package a seeds one floatcmp diagnostic for the JSON golden test.
package a

// Equal compares exactly, on purpose.
func Equal(x, y float64) bool { return x == y }
