// Package c seeds one malformed-directive diagnostic: a reasonless
// //lint:ignore cannot be exercised by inline want comments (the
// comment text would merge into the directive), so the golden trees
// pin it instead.
package c

// Hot allocates under a reasonless suppression, which must be
// reported as malformed rather than honored.
//
//hot:path
func Hot() []int {
	//lint:ignore allocfree
	return make([]int, 4)
}
