module example.com/poolpair

go 1.22
