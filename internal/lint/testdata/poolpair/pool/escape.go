package pool

var sink *buf

// escapeStore parks the pool value in a package variable.
func escapeStore() {
	b := scratch.Get().(*buf)
	sink = b // want `pool-derived b is stored outside the request scope`
	scratch.Put(b)
}

// escapeReturn hands the pool value to the caller.
func escapeReturn() *buf {
	b := scratch.Get().(*buf)
	return b // want `pool-derived b is returned`
}

// escapeGo hands the pool value to a goroutine.
func escapeGo() {
	b := scratch.Get().(*buf)
	go consume(b) // want `pool-derived b is passed to a goroutine`
	scratch.Put(b)
}

// escapeChan sends the pool value on a channel.
func escapeChan(ch chan *buf) {
	b := scratch.Get().(*buf)
	ch <- b // want `pool-derived b is sent on a channel`
	scratch.Put(b)
}

// escapeClosure captures the pool value; the walker cannot see the
// Put inside the literal, so the Get is also reported un-Put.
func escapeClosure() {
	b := scratch.Get().(*buf) // want `pool-derived b is not Put on this return path`
	f := func() {
		scratch.Put(b) // want `pool-derived b is captured by a closure`
	}
	f()
}

func consume(b *buf) {}

// badDirective exercises the malformed-directive path for this
// analyzer's name.
func badDirective() {
	//lint:ignore poolpair,typo bogus reason // want `unknown analyzer`
	b := scratch.Get().(*buf) // want `pool-derived b is Put on only some paths to this exit`
	if len(b.b) > 0 {
		scratch.Put(b)
	}
}
