package pool

import "sync"

// arena is the wrapper idiom from the serving path: get/put are the
// lifecycle primitives, so their own bodies are exempt from pairing.
type arena struct{ pool sync.Pool }

func (a *arena) get() *buf  { return a.pool.Get().(*buf) }
func (a *arena) put(b *buf) { a.pool.Put(b) }

// cleanDefer is the canonical request shape.
func cleanDefer() int {
	b := scratch.Get().(*buf)
	defer scratch.Put(b)
	return len(b.b)
}

// cleanLinear puts explicitly on every path.
func cleanLinear(cond bool) int {
	b := scratch.Get().(*buf)
	if cond {
		scratch.Put(b)
		return 1
	}
	scratch.Put(b)
	return 0
}

// cleanWrapped pairs through the arena wrappers.
func (a *arena) cleanWrapped() int {
	b := a.get()
	defer a.put(b)
	return len(b.b)
}

// leakyWrapped proves wrapper calls count as real Gets.
func (a *arena) leakyWrapped(cond bool) int {
	b := a.get()
	if cond {
		return 0 // want `pool-derived b is not Put on this return path`
	}
	a.put(b)
	return 1
}

// cleanSwitch puts in every case including default.
func cleanSwitch(mode int) {
	b := scratch.Get().(*buf)
	switch mode {
	case 0:
		scratch.Put(b)
	default:
		scratch.Put(b)
	}
}

// cleanSuppressed documents a reviewed ownership transfer. The
// analyzer cannot prove the transfer, so both of its findings — the
// store and the resulting un-Put value — carry a justification.
func cleanSuppressed() {
	//lint:ignore poolpair ownership transfers to the sink registry, which Puts it
	b := scratch.Get().(*buf)
	//lint:ignore poolpair ownership transfers to the sink registry, which Puts it
	sink = b
}
