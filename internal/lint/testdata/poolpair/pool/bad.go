// Package pool exercises the poolpair analyzer: every Get must reach
// exactly one Put on every path out, and the value must not escape
// the request scope.
package pool

import "sync"

type buf struct{ b [64]byte }

var scratch = sync.Pool{New: func() any { return new(buf) }}

// leaky misses the Put on the early return.
func leaky(cond bool) int {
	b := scratch.Get().(*buf)
	if cond {
		return 1 // want `pool-derived b is not Put on this return path`
	}
	scratch.Put(b)
	return 0
}

// double puts twice on the same path.
func double() {
	b := scratch.Get().(*buf)
	scratch.Put(b)
	scratch.Put(b) // want `double Put of b`
}

// deferredDouble puts explicitly under an armed deferred Put.
func deferredDouble() {
	b := scratch.Get().(*buf)
	defer scratch.Put(b)
	scratch.Put(b) // want `Put of b is already deferred`
}

// partial puts on only one branch; the finding lands on the Get so it
// names the value whose lifecycle is broken.
func partial(cond bool) {
	b := scratch.Get().(*buf) // want `pool-derived b is Put on only some paths to this exit`
	if cond {
		scratch.Put(b)
	}
}

// overwrite drops the first value by re-Getting into the same name.
func overwrite() {
	b := scratch.Get().(*buf)
	b = scratch.Get().(*buf) // want `pool Get overwrites b while it still holds an un-Put value`
	scratch.Put(b)
}

// inLoop gets per iteration without putting back.
func inLoop(n int) {
	total := 0
	for i := 0; i < n; i++ {
		b := scratch.Get().(*buf) // want `pool Get of b inside a loop body is not Put before the iteration ends`
		total += len(b.b)
	}
	_ = total
}

// unbound discards the Get result, so no Put can ever match it.
func unbound() {
	scratch.Get() // want `pool Get result is not bound to a local variable`
}
