package pool

// The serving daemon's recover() wrapper pattern: a deferred guard
// method recovers handler panics, and the pooled scratch is returned
// by its own deferred Put — armed after the guard, so LIFO unwinding
// runs the Put before the guard's recover and no panic path leaks the
// value. The guard itself contains no Get/Put, so it is
// lifecycle-neutral to this analyzer.

type guarded struct{ panics int }

// recoverGuard is the deferred recovery boundary.
func (g *guarded) recoverGuard() {
	if r := recover(); r != nil {
		g.panics++
	}
}

// recoverClean is the sanctioned handler shape: guard deferred first,
// Put deferred second, so every exit — normal return or unwinding — is
// covered.
func (g *guarded) recoverClean() int {
	defer g.recoverGuard()
	b := scratch.Get().(*buf)
	defer scratch.Put(b)
	return len(b.b)
}

// recoverLeaky proves the guard does not count as a Put: with only the
// explicit Put on the fallthrough path, the early return leaks the
// value no matter what the deferred guard does.
func (g *guarded) recoverLeaky(cond bool) int {
	defer g.recoverGuard()
	b := scratch.Get().(*buf)
	if cond {
		return 0 // want `pool-derived b is not Put on this return path`
	}
	scratch.Put(b)
	return 1
}
