// Package stats exercises the atomics analyzer: anything touched by
// sync/atomic anywhere must be touched by it everywhere, and 64-bit
// function-style atomics need 8-byte alignment under 32-bit layout.
package stats

import "sync/atomic"

// counters puts a 32-bit field first, so the 64-bit atomic word lands
// on a 4-byte boundary under GOARCH=386.
type counters struct {
	flag uint32
	hits uint64 // want `64-bit atomic field hits sits at offset 4 under 32-bit layout`
}

func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
}

// load is sanctioned: the access goes through sync/atomic.
func (c *counters) load() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *counters) peek() uint64 {
	return c.hits // want `plain read of hits`
}

func (c *counters) reset() {
	c.hits = 0 // want `plain write of hits`
}

// total is a package-level counter mixed between atomic and plain use.
var total uint64

func addTotal(n uint64) {
	atomic.AddUint64(&total, n)
}

func readTotal() uint64 {
	return total // want `plain read of total`
}

func bumpTotal() {
	total++ // want `plain write of total`
}

// suppressed documents a reviewed exception.
func suppressedRead(c *counters) uint64 {
	//lint:ignore atomics snapshot under external lock, reviewed
	return c.hits
}

// badDirective exercises the malformed-directive path for this
// analyzer's name.
func badDirective(c *counters) uint64 {
	//lint:ignore atomics,typo bogus reason // want `unknown analyzer`
	return c.hits // want `plain read of hits`
}
