package stats

import "testing"

// Test files are excluded: a test may read counters plainly to assert
// on them after the goroutines are joined.
func TestPlainReadAllowed(t *testing.T) {
	c := &counters{}
	c.bump()
	if c.hits != 1 {
		t.Fatal("bump")
	}
	if total != 0 {
		t.Fatal("total")
	}
}
