package stats

import "sync/atomic"

// typedCounters uses the typed wrappers exclusively: every access is
// atomic by construction and the runtime aligns the 64-bit words, so
// the analyzer stays silent — this is the shape the serving path uses.
type typedCounters struct {
	flag uint32
	hits atomic.Uint64
}

func (c *typedCounters) bump()        { c.hits.Add(1) }
func (c *typedCounters) peek() uint64 { return c.hits.Load() }

// aligned64 keeps its 64-bit atomic word first: offset 0 passes the
// 32-bit layout check.
type aligned64 struct {
	hits uint64
	flag uint32
}

func (a *aligned64) bump() {
	atomic.AddUint64(&a.hits, 1)
}

func (a *aligned64) load() uint64 {
	return atomic.LoadUint64(&a.hits)
}
