module example.com/atomics

go 1.22
