module example.com/allocfree

go 1.22
