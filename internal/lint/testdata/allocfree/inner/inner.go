// Package inner proves the allocfree walk crosses package boundaries:
// the root lives in package hot, the allocation here.
package inner

// Grow allocates; reached from hot.crossRoot.
func Grow(xs []int, v int) []int {
	return append(xs, v) // want `append may grow its backing array in Grow .reachable from //hot:path crossRoot.`
}
