package hot

// The serving daemon's recover() wrapper pattern: the recovery guard
// is deferred as a DIRECT method call, which the compiler open-codes —
// no closure, nothing to allocate on the success path. Deferring a
// function literal instead would allocate the closure on every
// request, panic or not.

// onPanic is the recovery boundary. Its body only runs after a panic —
// off the success path — so its append-rendered error body is a vetted
// boundary, like render above.
//
//hot:exempt recovery boundary: renders the failure body only after a panic, off the success path
func (c *core) onPanic() {
	if r := recover(); r != nil {
		c.hits.Add(1)
		c.buf = append(c.buf[:0], "panic"...)
	}
}

// recoverDirect is the sanctioned shape: a directly deferred method
// call, open-coded by the compiler.
//
//hot:path
func (c *core) recoverDirect(idx []int) float64 {
	defer c.onPanic()
	var sum float64
	for _, i := range idx {
		sum += c.vals[i]
	}
	return sum
}

// recoverClosure pays for a closure on every call — the shape the
// daemon must avoid.
//
//hot:path
func (c *core) recoverClosure() {
	defer func() { // want `function literal allocates a closure`
		if recover() != nil {
			c.hits.Add(1)
		}
	}()
}
