package hot

import "fmt"

type ticker interface{ tick() int }

func takeAny(v any)             {}
func sum(vs ...int) int         { return len(vs) }
func sink(dst []float64) int    { return len(dst) }
func pair(a float64, b any) int { return 0 }

// badBoxing exercises boxing at call sites, assignments, and returns.
//
//hot:path
func badBoxing(v float64) any {
	takeAny(v) // want `argument 1 is boxed into interface`
	sum(1, 2)  // want `variadic call allocates its argument slice`
	pair(v, v) // want `argument 2 is boxed into interface`
	sink(nil)  // clean: nil and concrete params don't box
	var x any
	x = v // want `assignment boxes float64 into interface`
	_ = x
	return v // want `return boxes float64 into interface`
}

// badCalls exercises the unprovable-call and denylist reports.
//
//hot:path
func badCalls(t ticker, f func() int, name string) error {
	t.tick()                          // want `dynamic call tick through an interface is unprovable`
	f()                               // want `call through a function value is unprovable`
	return fmt.Errorf("bad %s", name) // want `fmt.Errorf formats through interfaces and allocates`
}
