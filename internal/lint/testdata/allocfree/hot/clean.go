package hot

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

type core struct {
	mu   sync.Mutex
	hits atomic.Uint64
	vals []float64
	buf  []byte
}

// render is a vetted boundary: the append encoding is amortized into
// a reused buffer and pinned by allocation benchmarks, so the walk
// stops here instead of flagging the appends.
//
//hot:exempt amortized append encoder, pinned by AllocsPerRun benches
func (c *core) render(v float64) {
	c.buf = append(c.buf[:0], 'v')
	c.buf = strconv.AppendFloat(c.buf, v, 'f', -1, 64)
}

// cleanRoot is the sanctioned hot-path shape: atomics, flat-array
// gathers, math, allowlisted externals, and a vetted boundary call.
//
//hot:path
func (c *core) cleanRoot(idx []int, v float64) float64 {
	c.hits.Add(1)
	c.mu.Lock()
	var sum float64
	for _, i := range idx {
		sum += c.vals[i]
	}
	c.mu.Unlock()
	c.render(v)
	return math.Sqrt(sum)
}

// cleanParse uses the allowlisted strconv parser.
//
//hot:path
func cleanParse(s string) (float64, bool) {
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}
