package hot

import "example.com/allocfree/inner"

// helper allocates. It is unmarked: the transitive walk must find it
// through the root below.
func helper(n int) []int {
	return make([]int, n) // want `make allocates in helper .reachable from //hot:path transRoot.`
}

// transRoot is clean in isolation; the finding belongs to the callee.
// The suppression on the call line is deliberately useless: a
// //lint:ignore on the root's call site must NOT silence the callee's
// finding, which is at a different position.
//
//hot:path
func transRoot(n int) []int {
	//lint:ignore allocfree suppressions are line-scoped and must not leak to callees
	return helper(n)
}

// crossRoot proves the walk crosses package boundaries.
//
//hot:path
func crossRoot(xs []int) []int {
	return inner.Grow(xs, 1)
}

// quiet carries a justified allocation: the suppression sits on the
// allocating line itself, so it works even though the finding was
// produced by a module-wide analyzer walking from another package's
// root.
func quiet(n int) []int {
	//lint:ignore allocfree fixture: amortized growth, justified
	return make([]int, n)
}

// quietRoot stays silent end to end.
//
//hot:path
func quietRoot(n int) []int {
	return quiet(n)
}

// badDirective exercises the malformed-directive path for this
// analyzer's name.
//
//hot:path
func badDirective(n int) []int {
	//lint:ignore allocfree,typo bogus reason // want `unknown analyzer`
	return make([]int, n) // want `make allocates in //hot:path function badDirective`
}
