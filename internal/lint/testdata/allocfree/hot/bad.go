// Package hot exercises the allocfree analyzer: every allocating
// construct inside a //hot:path root must be reported, one finding
// per line so the want comments stay unambiguous.
package hot

type stats struct{ n int }

// badBasics trips each local allocating construct once.
//
//hot:path
func badBasics(k string, n int) float64 {
	xs := make([]float64, n) // want `make allocates in //hot:path function badBasics`
	p := new(stats)          // want `new allocates in //hot:path function badBasics`
	xs = append(xs, 1)       // want `append may grow its backing array in //hot:path function badBasics`
	ys := []int{1, 2}        // want `slice literal allocates in //hot:path function badBasics`
	m := map[string]int{}    // want `map literal allocates in //hot:path function badBasics`
	m[k] = n                 // want `map assignment may allocate in //hot:path function badBasics`
	q := &stats{n: n}        // want `address of composite literal escapes and allocates`
	s := k + "!"             // want `string concatenation allocates in //hot:path function badBasics`
	s += k                   // want `string concatenation allocates in //hot:path function badBasics`
	_, _, _ = s, ys, q
	return xs[0] + float64(p.n)
}

// badConvert trips the copying conversions.
//
//hot:path
func badConvert(bs []byte, s string, v float64) int {
	str := string(bs) // want `conversion to string allocates`
	b2 := []byte(s)   // want `conversion copies and allocates`
	x := any(v)       // want `conversion boxes float64 into interface`
	_, _ = str, x
	return len(b2)
}

// badClosure allocates a closure and a goroutine.
//
//hot:path
func badClosure(v float64) float64 {
	f := func() float64 { // want `function literal allocates a closure`
		return v
	}
	_ = f
	go noop() // want `go statement allocates a goroutine`
	return v
}

func noop() {}

// badExempt is a boundary missing its mandatory reason.
//
//hot:exempt
func badExempt() {} // want `hot:exempt on badExempt needs a reason`

// badBoth claims to be a root and a boundary at once.
//
//hot:path
//hot:exempt can't be both
func badBoth() {} // want `badBoth is marked both`
