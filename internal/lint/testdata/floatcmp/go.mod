module example.com/floatcmp

go 1.22
