// Package calc exercises the floatcmp analyzer.
package calc

// BadEqual compares computed floats exactly.
func BadEqual(a, b float64) bool {
	return a == b // want `== on floating-point operands is exact`
}

// BadSwitch switches on a float, which compares exactly per case.
func BadSwitch(x float64) int {
	switch x { // want `switch on a floating-point value compares exactly`
	case 1.5:
		return 1
	}
	return 0
}

// CleanZero guards a division with an exact zero test; zero is exactly
// representable.
func CleanZero(x float64) float64 {
	if x == 0 {
		return 0
	}
	return 1 / x
}

// CleanNaN is the self-comparison NaN test.
func CleanNaN(x float64) bool { return x != x }

// CleanInt compares integers; only float operands are the analyzer's
// business.
func CleanInt(a, b int) bool { return a == b }
