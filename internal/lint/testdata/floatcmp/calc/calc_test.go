package calc

import (
	"math"
	"testing"
)

// approxEqual is an approved tolerance helper: exact comparison inside
// it is the fast path, and the name declares the intent.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

// TestRaw compares raw floats in a test body, which is flagged even in
// tests.
func TestRaw(t *testing.T) {
	got := 0.1 + 0.2
	if got != 0.3 { // want `!= on floating-point operands is exact; use a tolerance helper`
		t.Log("expected: 0.1+0.2 rounds away from 0.3")
	}
	if !approxEqual(got, 0.3, 1e-9) {
		t.Fatal("tolerance check failed")
	}
}
