// Package work exercises the errdrop analyzer: an error return may
// never vanish silently.
package work

import (
	"errors"
	"os"
)

// mightFail always fails, so the fixtures have an error to drop.
func mightFail() error { return errors.New("boom") }

// parse returns a value and an error.
func parse(s string) (int, error) { return len(s), nil }

// BadDiscard drops the error on the floor.
func BadDiscard() {
	mightFail() // want `call to mightFail discards its error result`
}

// BadDefer defers a failing close without looking at the result.
func BadDefer(f *os.File) {
	defer f.Close() // want `deferred call to f\.Close discards its error result`
}

// BadBlank blank-assigns the error with no justification. The
// statement is split across two lines so the want comment is not
// itself mistaken for a justifying comment.
func BadBlank(s string) int {
	n,
		_ := parse(s) // want `error result of parse assigned to _ without a justifying comment`
	return n
}

// BadDirective misnames the analyzer, so nothing is suppressed and the
// directive itself is reported.
func BadDirective() {
	//lint:ignore nosuch not a real analyzer // want `ignore: lint:ignore names unknown analyzer "nosuch"`
	mightFail() // want `call to mightFail discards its error result`
}
