package work

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

// CleanChecked propagates the error.
func CleanChecked() error {
	if err := mightFail(); err != nil {
		return err
	}
	return nil
}

// CleanJustified documents why the drop is fine.
func CleanJustified() {
	// Best-effort: failure here only loses a cache warm-up.
	_ = mightFail()
}

// CleanIgnored uses the lint escape, with the mandatory reason.
func CleanIgnored() {
	//lint:ignore errdrop shutdown path; nothing can be done with the error
	mightFail()
}

// CleanInfallible exercises the never-fails exemptions: the fmt print
// family, writes into Buffer/Builder, and the standard streams.
func CleanInfallible() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d", 1)
	b.WriteString("!")
	fmt.Println("done")
	fmt.Fprintln(os.Stderr, "note")
	var buf bytes.Buffer
	buf.Write([]byte("ok"))
	return b.String()
}
