package lint

import (
	"encoding/json"
	"io"
	"sort"
)

// SARIF 2.1.0 output, the minimal subset code-scanning UIs ingest: one
// run, one tool driver, every analyzer (plus the synthetic "ignore"
// reporter for malformed directives) as a rule, and one result per
// diagnostic. Field order is fixed by the struct declarations and the
// diagnostic order by sortDiagnostics, so the encoding is byte-stable
// for a given tree — TestSARIFGolden pins it the same way the JSON
// golden does.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF emits diagnostics as a SARIF 2.1.0 log. Diagnostic File
// fields are already slash-relative to the module root, which is
// exactly SARIF's relative-URI convention.
func WriteSARIF(w io.Writer, diags []Diagnostic) error {
	rules := []sarifRule{{
		ID:               "ignore",
		ShortDescription: sarifMessage{Text: "malformed //lint:ignore directive"},
	}}
	for _, a := range Analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	index := make(map[string]int, len(rules))
	for i, r := range rules {
		index[r.ID] = i
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: index[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: d.File},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			}}},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ceer-lint", Rules: rules}},
			Results: results,
		}},
	})
}
