package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// The call graph shared by the hot-path proof analyzers. It is built
// once per module pass from the non-test function declarations:
// //hot:path marks a root, //hot:exempt <reason> marks a vetted
// boundary the transitive walk does not cross (the append-encoder and
// cold-admin functions, whose amortized allocation behaviour is pinned
// by benchmarks instead). Static calls resolve through go/types;
// interface and function-value calls cannot be resolved statically and
// are the caller's problem to justify (see allocfree.go).

// hotExemptDirective marks a function as a vetted hot-path boundary.
// The reason is mandatory, mirroring lint:ignore.
const hotExemptDirective = "//hot:exempt"

// funcInfo is one module function declaration in the call-graph index.
type funcInfo struct {
	key    string
	pkg    *Package
	decl   *ast.FuncDecl
	root   bool // carries //hot:path
	exempt bool // carries //hot:exempt <reason>
}

// display renders the function for diagnostics: "recv.name" for
// methods, "name" otherwise.
func (fi *funcInfo) display() string {
	if i := strings.LastIndexByte(fi.key, '/'); i >= 0 {
		return fi.key[i+1:][strings.IndexByte(fi.key[i+1:], '.')+1:]
	}
	return fi.key[strings.IndexByte(fi.key, '.')+1:]
}

// callIndex is the module-wide function index.
type callIndex struct {
	// fns maps funcKey strings to declarations; keys holds the same
	// keys sorted, for deterministic iteration.
	fns  map[string]*funcInfo
	keys []string
	// modulePkgs holds the import path of every analysis unit, so a
	// resolved callee can be classified in-module vs external without
	// relying on cross-unit object identity.
	modulePkgs map[string]bool
}

// buildCallIndex indexes every non-test function declaration of the
// module and parses the hot-path directives, reporting malformed or
// contradictory ones through the pass.
func buildCallIndex(p *ModulePass) *callIndex {
	idx := &callIndex{
		fns:        make(map[string]*funcInfo),
		modulePkgs: make(map[string]bool),
	}
	for _, pkg := range p.Pkgs {
		idx.modulePkgs[pkg.Path] = true
		if pkg.ExternalTest {
			continue
		}
		for _, file := range pkg.Files {
			if p.IsTestFile(file) {
				continue
			}
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{key: funcKey(obj), pkg: pkg, decl: fn, root: isHotPath(fn)}
				fi.exempt = parseExempt(p, fn)
				if fi.root && fi.exempt {
					p.Reportf(fn.Name.Pos(),
						"%s is marked both //hot:path and //hot:exempt; pick one", fn.Name.Name)
					fi.exempt = false
				}
				idx.fns[fi.key] = fi
				idx.keys = append(idx.keys, fi.key)
			}
		}
	}
	sort.Strings(idx.keys)
	return idx
}

// parseExempt reports whether fn carries a //hot:exempt directive,
// flagging a directive without a reason (at the function name, where a
// fixture want comment can sit).
func parseExempt(p *ModulePass, fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(c.Text)
		rest, ok := strings.CutPrefix(text, hotExemptDirective)
		if !ok {
			continue
		}
		if strings.TrimSpace(rest) == "" {
			p.Reportf(fn.Name.Pos(),
				"//hot:exempt on %s needs a reason (why is this boundary allocation-vetted?)",
				fn.Name.Name)
		}
		return true
	}
	return false
}

// funcKey names a function by "pkgpath.[RecvType.]Name". Object
// identity does not survive the loader's double type-check, so the
// call graph keys functions by these strings instead.
func funcKey(f *types.Func) string {
	key := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		name := t.String()
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name()
		}
		key = name + "." + key
	}
	if f.Pkg() != nil {
		key = f.Pkg().Path() + "." + key
	}
	return key
}

// calleeKind classifies what a call expression's function position
// resolved to.
type calleeKind uint8

const (
	// calleeUnknown is a function value (local variable, field, stored
	// method value): statically unresolvable.
	calleeUnknown calleeKind = iota
	// calleeStatic is a named function or a method on a concrete type.
	calleeStatic
	// calleeDynamic is a method called through an interface.
	calleeDynamic
	// calleeBuiltin is a builtin (make, new, append, len, ...).
	calleeBuiltin
	// calleeConversion is a type conversion, not a call.
	calleeConversion
	// calleeLiteral is an immediately invoked function literal; its
	// body is walked where the literal appears.
	calleeLiteral
)

// resolveCall classifies call and returns the resolved object:
// *types.Func for static and dynamic calls, *types.Builtin for
// builtins, nil otherwise.
func resolveCall(info *types.Info, call *ast.CallExpr) (calleeKind, types.Object) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return calleeConversion, nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			return calleeBuiltin, obj
		case *types.Func:
			return calleeStatic, obj
		}
		return calleeUnknown, nil
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, isFunc := sel.Obj().(*types.Func)
			if !isFunc {
				return calleeUnknown, nil // func-typed struct field
			}
			if sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
				return calleeDynamic, f
			}
			return calleeStatic, f
		}
		// Package-qualified: strconv.Atoi, sync/atomic vars, ...
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return calleeStatic, obj
		case *types.Builtin:
			return calleeBuiltin, obj
		}
		return calleeUnknown, nil
	case *ast.FuncLit:
		return calleeLiteral, nil
	}
	return calleeUnknown, nil
}

// hotReachable walks the call graph from every //hot:path root and
// returns the set of functions the allocation-freedom proof covers:
// roots plus every statically reachable module function, stopping at
// //hot:exempt boundaries (which are excluded). Iteration over the
// sorted root keys and in-source call order keeps the walk
// deterministic.
func hotReachable(idx *callIndex) map[string]*funcInfo {
	covered := make(map[string]*funcInfo)
	var visit func(fi *funcInfo)
	visit = func(fi *funcInfo) {
		if fi.exempt || covered[fi.key] != nil {
			return
		}
		covered[fi.key] = fi
		for _, callee := range staticCallees(idx, fi) {
			visit(callee)
		}
	}
	for _, key := range idx.keys {
		if fi := idx.fns[key]; fi.root {
			visit(fi)
		}
	}
	return covered
}

// staticCallees lists fi's statically resolved in-module callees in
// source order.
func staticCallees(idx *callIndex, fi *funcInfo) []*funcInfo {
	var out []*funcInfo
	seen := make(map[string]bool)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, obj := resolveCall(fi.pkg.Info, call)
		if kind != calleeStatic {
			return true
		}
		f := obj.(*types.Func)
		if f.Pkg() == nil || !idx.modulePkgs[f.Pkg().Path()] {
			return true
		}
		if callee := idx.fns[funcKey(f)]; callee != nil && !seen[callee.key] {
			seen[callee.key] = true
			out = append(out, callee)
		}
		return true
	})
	return out
}
