package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerAtomics enforces atomic-access discipline module-wide: any
// variable or struct field that is ever passed to a sync/atomic
// function must be accessed through sync/atomic everywhere — one plain
// read racing an atomic writer is the classic metrics/token-bucket
// footgun, invisible until the race detector happens to interleave it.
// It also checks the 32-bit alignment contract: a 64-bit field used
// with the function-style atomics must sit at an 8-byte-aligned offset
// (under 32-bit struct layout), or atomic.Add/Load panic on 386/arm.
// The typed atomic.Int64/Uint64 wrappers are exempt from the alignment
// check — the runtime aligns them — which is one more reason the
// serving path uses them exclusively. Test files are not checked.
var AnalyzerAtomics = &Analyzer{
	Name: "atomics",
	Doc: "flags plain access to variables that are accessed with " +
		"sync/atomic elsewhere, and misaligned 64-bit atomic fields",
	RunModule: runAtomics,
}

// atomicTarget is one variable the module accesses atomically
// somewhere. Objects are keyed by their defining position: the loader
// type-checks shared ASTs, so Pos survives the double type-check that
// breaks object identity (see ModulePass).
type atomicTarget struct {
	name string
	// where is the first atomic call site, for the diagnostic.
	where token.Position
}

func runAtomics(p *ModulePass) {
	targets := make(map[token.Pos]*atomicTarget)
	// sanctioned records the positions of the &x arguments inside
	// atomic calls themselves, so pass 2 can tell a sanctioned access
	// from a plain one.
	sanctioned := make(map[token.Pos]bool)
	aligned := make(map[token.Pos]bool) // 64-bit fields already checked

	// Pass 1: collect every object passed to a sync/atomic function.
	p.eachNonTestFile(func(pkg *Package, file *ast.File) {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := atomicCallee(pkg.Info, call)
			if f == nil || len(call.Args) == 0 {
				return true
			}
			ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				return true
			}
			ref := ast.Unparen(ue.X)
			obj := referent(pkg.Info, ref)
			if obj == nil {
				return true
			}
			if targets[obj.Pos()] == nil {
				targets[obj.Pos()] = &atomicTarget{
					name:  obj.Name(),
					where: p.Fset.Position(call.Pos()),
				}
			}
			sanctioned[ref.Pos()] = true
			if sel, ok := ref.(*ast.SelectorExpr); ok && is64BitAtomic(f) && !aligned[obj.Pos()] {
				aligned[obj.Pos()] = true
				checkAlignment(p, pkg.Info, sel, obj)
			}
			return true
		})
	})
	if len(targets) == 0 {
		return
	}

	// Pass 2: flag every other access of a collected object.
	p.eachNonTestFile(func(pkg *Package, file *ast.File) {
		writes := make(map[token.Pos]bool)
		handledSel := make(map[token.Pos]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					writes[ast.Unparen(lhs).Pos()] = true
				}
			case *ast.IncDecStmt:
				writes[ast.Unparen(n.X).Pos()] = true
			case *ast.SelectorExpr:
				handledSel[n.Sel.Pos()] = true
				obj := referent(pkg.Info, n)
				flagPlain(p, targets, sanctioned, writes, n, obj)
			case *ast.Ident:
				if handledSel[n.Pos()] {
					return true
				}
				obj, _ := pkg.Info.Uses[n].(*types.Var)
				if obj != nil && !obj.IsField() {
					flagPlain(p, targets, sanctioned, writes, n, obj)
				}
			}
			return true
		})
	})
}

// flagPlain reports a non-atomic access of an atomically used object.
func flagPlain(p *ModulePass, targets map[token.Pos]*atomicTarget, sanctioned, writes map[token.Pos]bool, n ast.Expr, obj types.Object) {
	if obj == nil {
		return
	}
	t := targets[obj.Pos()]
	if t == nil || sanctioned[n.Pos()] || n.Pos() == obj.Pos() {
		return
	}
	kind := "read"
	if writes[n.Pos()] {
		kind = "write"
	}
	p.Reportf(n.Pos(),
		"plain %s of %s, which is accessed with sync/atomic (at %s:%d); every access must go through sync/atomic",
		kind, t.name, t.where.Filename[lastSlash(t.where.Filename)+1:], t.where.Line)
}

// atomicCallee returns the callee when call is a package-level
// sync/atomic function taking a pointer target (AddUint64, LoadInt32,
// CompareAndSwapPointer, ...), nil otherwise. Methods on the typed
// atomic wrappers have a receiver and fall out naturally.
func atomicCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	kind, obj := resolveCall(info, call)
	if kind != calleeStatic {
		return nil
	}
	f := obj.(*types.Func)
	if f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return nil
	}
	sig := f.Type().(*types.Signature)
	if sig.Recv() != nil || sig.Params().Len() == 0 {
		return nil
	}
	if _, ok := sig.Params().At(0).Type().(*types.Pointer); !ok {
		return nil
	}
	return f
}

// is64BitAtomic reports whether f operates on a 64-bit word.
func is64BitAtomic(f *types.Func) bool {
	name := f.Name()
	return len(name) > 2 && name[len(name)-2:] == "64"
}

// referent resolves the object a plain identifier or field selector
// denotes, or nil for anything more exotic.
func referent(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if sel.Kind() != types.FieldVal {
				return nil
			}
			return sel.Obj()
		}
		// Package-qualified variable (pkg.Counter).
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && !v.IsField() {
			return v
		}
	}
	return nil
}

// checkAlignment verifies the 32-bit layout contract for a 64-bit
// atomically accessed struct field: under GOARCH=386 sizes its offset
// must be a multiple of 8, assuming (conservatively, like the runtime
// guarantees for allocated structs) that the struct itself starts
// aligned. The finding is reported at the field declaration.
func checkAlignment(p *ModulePass, info *types.Info, sel *ast.SelectorExpr, obj types.Object) {
	selection, ok := info.Selections[sel]
	if !ok {
		return
	}
	t := selection.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	sizes := types.SizesFor("gc", "386")
	var offset int64
	for _, fieldIdx := range selection.Index() {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offset += sizes.Offsetsof(fields)[fieldIdx]
		t = st.Field(fieldIdx).Type()
	}
	if offset%8 != 0 {
		p.Reportf(obj.Pos(),
			"64-bit atomic field %s sits at offset %d under 32-bit layout; it must be 8-byte aligned (move it first or use the typed atomic wrappers)",
			obj.Name(), offset)
	}
}

// eachNonTestFile applies fn to every non-test file of every
// non-external-test unit, in the deterministic load order.
func (p *ModulePass) eachNonTestFile(fn func(pkg *Package, file *ast.File)) {
	for _, pkg := range p.Pkgs {
		if pkg.ExternalTest {
			continue
		}
		for _, file := range pkg.Files {
			if p.IsTestFile(file) {
				continue
			}
			fn(pkg, file)
		}
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == '\\' {
			return i
		}
	}
	return -1
}
