package gpu

import (
	"hash/fnv"

	"ceer/internal/ops"
	"ceer/internal/rng"
)

// Unit conventions: all times are seconds (float64).

const (
	us = 1e-6
	// gb is 10^9 bytes, matching bandwidth units.
	gb = 1e9
	// tflop is 10^12 floating-point operations.
	tflop = 1e12
	// bpfRefBytes is the reference input size of the
	// Conv2DBackpropFilter contention term.
	bpfRefBytes = 64e6
	// hostBWGBps approximates host memory streaming bandwidth for
	// CPU-resident ops.
	hostBWGBps = 25
	// decodeBWGBps is the effective throughput of minibatch decode and
	// augmentation in the host input pipeline.
	decodeBWGBps = 1.5
)

// defaultOpEfficiency holds the architecture-neutral per-op-type
// memory-path efficiency multipliers — the values that held for every
// paper device not carrying a spec override. A device's
// Device.OpEfficiency entries take precedence; types in neither table
// run at 1.0.
var defaultOpEfficiency = map[ops.Type]float64{
	// Multi-output fused kernel.
	ops.FusedBatchNormGradV3: 0.80,
	// Two reduction passes before the scale/shift pass.
	ops.FusedBatchNormV3: 0.65,
	// Multi-pass fused kernel over small tensors: low effective BW.
	ops.SoftmaxXent: 0.05,
	ops.Relu:        0.85,
	// Offset reads from the (larger) source tensor.
	ops.Slice:    0.75,
	ops.ConcatV2: 0.8,
}

// opEfficiency resolves the per-(device, op type) memory-path
// efficiency multiplier: spec override, then neutral default, then 1.0.
func (d *Device) opEfficiency(t ops.Type) float64 {
	if eff, ok := d.OpEfficiency[t]; ok {
		return eff
	}
	if eff, ok := defaultOpEfficiency[t]; ok {
		return eff
	}
	return 1.0
}

// typeHash gives a stable per-op-type value in [0, 1) used to derive
// type-specific constants (noise levels, host bases) deterministically.
func typeHash(t ops.Type) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(t)) // fnv Write never fails
	return float64(h.Sum64()>>11) / (1 << 53)
}

// Sigma returns the lognormal noise level of an op on this device:
// tight for heavy GPU ops (the paper's Figure 5 shows 95% of
// normalized deviations below 0.1), loose for light GPU and CPU ops.
// A device spec may scale the whole profile via NoiseScale.
func (d *Device) Sigma(op *ops.Op) float64 {
	h := typeHash(op.Type)
	var sigma float64
	switch op.Class() {
	case ops.HeavyGPU:
		sigma = 0.015 + 0.055*h
	case ops.LightGPU:
		sigma = 0.18 + 0.27*h
	default: // CPU
		sigma = 0.25 + 0.45*h
	}
	if d.NoiseScale > 0 {
		sigma *= d.NoiseScale
	}
	return sigma
}

// cpuBase returns the host dispatch/compute base time of a CPU op type.
func cpuBase(t ops.Type) float64 {
	switch t {
	case ops.IteratorGetNext:
		return 300 * us
	case ops.SparseToDense:
		return 250 * us
	case ops.OneHot:
		return 150 * us
	default:
		return (90 + 90*typeHash(t)) * us
	}
}

// BaseTime returns the noiseless execution time of an op on this
// device, in seconds.
//
// GPU ops follow a utilization-corrected roofline:
//
//	t = launch + max(t_compute, t_memory)
//
// with t_memory = bytes / (BW · eff(device, type)) and, for
// compute-bound kernels, t_compute = (flops + r0·bytes) / C — the r0
// term shifts low-arithmetic-intensity kernels away from peak, which is
// what makes compute times imperfectly linear in any single size
// feature (the scatter visible in the paper's Figure 4).
// Conv2DBackpropFilter additionally pays a contention factor that grows
// linearly with input size, which is why a quadratic regression fits it
// best (Section IV-B).
func (d *Device) BaseTime(op *ops.Op) float64 {
	meta := op.Meta()
	if meta.Class == ops.CPU {
		bytes := float64(op.BytesMoved())
		bw := hostBWGBps * gb
		if op.Type == ops.IteratorGetNext {
			// Decode + augmentation of a minibatch: far below memcpy
			// speed, and the part of the input pipeline that does not
			// overlap with GPU compute.
			bw = decodeBWGBps * gb
		}
		return d.CPUFactor * (cpuBase(op.Type) + bytes/bw)
	}

	bytes := float64(op.BytesMoved())
	flops := float64(op.FLOPs())
	launch := d.LaunchUS * us

	eff := d.opEfficiency(op.Type)
	tMem := bytes / (d.MemBWGBps * gb * eff)

	var tComp float64
	switch meta.Kind {
	case ops.ComputeBound:
		tComp = (flops + d.RooflineR0*bytes) / (d.ComputeTFLOPS * tflop * d.convShapeFactor(op))
	case ops.MemoryBound:
		tComp = flops / (d.ComputeTFLOPS * tflop)
	case ops.OverheadBound:
		// Metadata-only ops (Reshape, Identity, Shape): no real kernel
		// body; a sliver of traffic models descriptor updates.
		return launch + bytes/(d.MemBWGBps*gb*50)
	}

	t := launch + max(tComp, tMem)
	if op.Type == ops.Conv2DBackpropFilter {
		t *= 1 + d.BPFContention*float64(op.InputBytes())/bpfRefBytes
	}
	return t * d.shapeJitter(op)
}

// shapeJitterAmp bounds the per-shape systematic efficiency deviation.
const shapeJitterAmp = 0.05

// shapeJitter returns a deterministic per-(device, op type, exact
// shape) efficiency factor in [1-amp, 1+amp]. It models cuDNN's
// shape-dependent kernel selection: two ops with identical shapes always
// run the same kernel (so repeated measurements stay tight, preserving
// the Figure 5 variability result), but an unseen shape lands on a
// slightly different point of the efficiency surface — which is what
// keeps the paper's regression R² below 1.0 and its per-op prediction
// errors in the 2-10% band. The hash folds in the device's SeedID (not
// its registry position), so jitter survives registration reordering.
func (d *Device) shapeJitter(op *ops.Op) float64 {
	if op.Meta().Class == ops.CPU {
		return 1
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte{byte(d.SeedID)}) // fnv Write never fails
	_, _ = h.Write([]byte(op.Type))        // fnv Write never fails
	var buf [8]byte
	for _, in := range op.Inputs {
		putUint64(&buf, uint64(in.Bytes()))
		_, _ = h.Write(buf[:]) // fnv Write never fails
	}
	putUint64(&buf, uint64(op.OutputBytes()))
	_, _ = h.Write(buf[:])                  // fnv Write never fails
	u := float64(h.Sum64()>>11) / (1 << 53) // uniform [0,1)
	return 1 - shapeJitterAmp + 2*shapeJitterAmp*u
}

func putUint64(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

// convShapeFactor returns a kernel-shape-dependent compute-efficiency
// multiplier for conv-family ops (1.0 for everything else), from the
// spec's Conv1x1Factor / ConvAsymFactor fields. Both effects are
// responsible for the paper's finding that the cost/performance winner
// depends on the CNN's operation mix: 1×1 convolutions lower to plain
// GEMMs (near-peak on tensor-core parts, eroding the V100's advantage
// on the 1×1-heavy ResNet bottlenecks), while asymmetric 1×N / N×1
// kernels (Inception's factorized 7×7s) hit slow paths on some
// generations, widening the V100's lead on the Inception family.
func (d *Device) convShapeFactor(op *ops.Op) float64 {
	switch op.Type {
	case ops.Conv2D, ops.Conv2DBackpropFilter, ops.Conv2DBackpropInput:
	default:
		return 1.0
	}
	w := op.Window
	if w == nil {
		return 1.0
	}
	if w.KernelH == 1 && w.KernelW == 1 {
		if d.Conv1x1Factor > 0 {
			return d.Conv1x1Factor
		}
		return 1.0
	}
	if w.KernelH != w.KernelW && d.ConvAsymFactor > 0 {
		return d.ConvAsymFactor
	}
	return 1.0
}

// SampleTime draws one noisy execution-time measurement for an op from
// the given noise stream.
func (d *Device) SampleTime(op *ops.Op, src *rng.Source) float64 {
	return d.BaseTime(op) * src.LogNormalFactor(d.Sigma(op))
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
