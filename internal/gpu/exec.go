package gpu

import (
	"hash/fnv"

	"ceer/internal/ops"
	"ceer/internal/rng"
)

// Unit conventions: all times are seconds (float64).

const (
	us = 1e-6
	// gb is 10^9 bytes, matching bandwidth units.
	gb = 1e9
	// tflop is 10^12 floating-point operations.
	tflop = 1e12
	// bpfRefBytes is the reference input size of the
	// Conv2DBackpropFilter contention term.
	bpfRefBytes = 64e6
	// hostBWGBps approximates host memory streaming bandwidth for
	// CPU-resident ops.
	hostBWGBps = 25
	// decodeBWGBps is the effective throughput of minibatch decode and
	// augmentation in the host input pipeline.
	decodeBWGBps = 1.5
)

// opEfficiency returns the per-(device, op type) memory-path efficiency
// multiplier. Values below 1 model poorly coalesced access patterns
// (windowed pooling on pre-Volta parts, strided transposes); values
// above 1 model unusually well-tuned kernels. The table encodes the
// paper's observed crossovers: pooling disproportionately favors V100,
// FusedBatchNormGradV3 favors T4, and transposes and max-pool gradients
// are the cases where the M60 (G3) falls behind even the K80 (P2).
func opEfficiency(m Model, t ops.Type) float64 {
	switch t {
	case ops.MaxPool, ops.AvgPool, ops.MaxPoolGrad, ops.AvgPoolGrad:
		switch m {
		case V100:
			return 1.0
		case T4:
			return 0.40
		case M60:
			if t == ops.MaxPoolGrad {
				return 0.30 // G3 behind even P2 here
			}
			return 0.55
		case K80:
			return 0.60
		}
	case ops.FusedBatchNormGradV3:
		// Multi-output fused kernel; T4's rendition is unusually good.
		if m == T4 {
			return 1.05
		}
		return 0.80
	case ops.FusedBatchNormV3:
		// Two reduction passes before the scale/shift pass.
		if m == T4 {
			return 0.75
		}
		return 0.65
	case ops.AddV2, ops.AddN, ops.Mul:
		// Plain element-wise kernels run close to peak on Turing.
		if m == T4 {
			return 1.10
		}
		return 1.0
	case ops.Transpose:
		// Strided access: slow everywhere, disastrous on M60.
		switch m {
		case V100:
			return 0.048
		case T4:
			return 0.044
		case M60:
			return 0.022
		case K80:
			return 0.040
		}
	case ops.SoftmaxXent:
		// Multi-pass fused kernel over small tensors: low effective BW.
		return 0.05
	case ops.Relu:
		return 0.85
	case ops.Slice:
		// Offset reads from the (larger) source tensor.
		return 0.75
	case ops.ConcatV2:
		return 0.8
	}
	return 1.0
}

// typeHash gives a stable per-op-type value in [0, 1) used to derive
// type-specific constants (noise levels, host bases) deterministically.
func typeHash(t ops.Type) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(t))
	return float64(h.Sum64()>>11) / (1 << 53)
}

// Sigma returns the lognormal noise level of an op on this device:
// tight for heavy GPU ops (the paper's Figure 5 shows 95% of
// normalized deviations below 0.1), loose for light GPU and CPU ops.
func (d *Device) Sigma(op *ops.Op) float64 {
	h := typeHash(op.Type)
	switch op.Class() {
	case ops.HeavyGPU:
		return 0.015 + 0.055*h
	case ops.LightGPU:
		return 0.18 + 0.27*h
	default: // CPU
		return 0.25 + 0.45*h
	}
}

// cpuBase returns the host dispatch/compute base time of a CPU op type.
func cpuBase(t ops.Type) float64 {
	switch t {
	case ops.IteratorGetNext:
		return 300 * us
	case ops.SparseToDense:
		return 250 * us
	case ops.OneHot:
		return 150 * us
	default:
		return (90 + 90*typeHash(t)) * us
	}
}

// BaseTime returns the noiseless execution time of an op on this
// device, in seconds.
//
// GPU ops follow a utilization-corrected roofline:
//
//	t = launch + max(t_compute, t_memory)
//
// with t_memory = bytes / (BW · eff(device, type)) and, for
// compute-bound kernels, t_compute = (flops + r0·bytes) / C — the r0
// term shifts low-arithmetic-intensity kernels away from peak, which is
// what makes compute times imperfectly linear in any single size
// feature (the scatter visible in the paper's Figure 4).
// Conv2DBackpropFilter additionally pays a contention factor that grows
// linearly with input size, which is why a quadratic regression fits it
// best (Section IV-B).
func (d *Device) BaseTime(op *ops.Op) float64 {
	meta := op.Meta()
	if meta.Class == ops.CPU {
		bytes := float64(op.BytesMoved())
		bw := hostBWGBps * gb
		if op.Type == ops.IteratorGetNext {
			// Decode + augmentation of a minibatch: far below memcpy
			// speed, and the part of the input pipeline that does not
			// overlap with GPU compute.
			bw = decodeBWGBps * gb
		}
		return d.cpuFactor * (cpuBase(op.Type) + bytes/bw)
	}

	bytes := float64(op.BytesMoved())
	flops := float64(op.FLOPs())
	launch := d.launchUS * us

	eff := opEfficiency(d.Model, op.Type)
	tMem := bytes / (d.memBWGBps * gb * eff)

	var tComp float64
	switch meta.Kind {
	case ops.ComputeBound:
		tComp = (flops + d.rooflineR0*bytes) / (d.computeTFLOPS * tflop * d.convShapeFactor(op))
	case ops.MemoryBound:
		tComp = flops / (d.computeTFLOPS * tflop)
	case ops.OverheadBound:
		// Metadata-only ops (Reshape, Identity, Shape): no real kernel
		// body; a sliver of traffic models descriptor updates.
		return launch + bytes/(d.memBWGBps*gb*50)
	}

	t := launch + max(tComp, tMem)
	if op.Type == ops.Conv2DBackpropFilter {
		t *= 1 + d.bpfContention*float64(op.InputBytes())/bpfRefBytes
	}
	return t * d.shapeJitter(op)
}

// shapeJitterAmp bounds the per-shape systematic efficiency deviation.
const shapeJitterAmp = 0.05

// shapeJitter returns a deterministic per-(device, op type, exact
// shape) efficiency factor in [1-amp, 1+amp]. It models cuDNN's
// shape-dependent kernel selection: two ops with identical shapes always
// run the same kernel (so repeated measurements stay tight, preserving
// the Figure 5 variability result), but an unseen shape lands on a
// slightly different point of the efficiency surface — which is what
// keeps the paper's regression R² below 1.0 and its per-op prediction
// errors in the 2-10% band.
func (d *Device) shapeJitter(op *ops.Op) float64 {
	if op.Meta().Class == ops.CPU {
		return 1
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte{byte(d.Model)})
	_, _ = h.Write([]byte(op.Type))
	var buf [8]byte
	for _, in := range op.Inputs {
		putUint64(&buf, uint64(in.Bytes()))
		_, _ = h.Write(buf[:])
	}
	putUint64(&buf, uint64(op.OutputBytes()))
	_, _ = h.Write(buf[:])
	u := float64(h.Sum64()>>11) / (1 << 53) // uniform [0,1)
	return 1 - shapeJitterAmp + 2*shapeJitterAmp*u
}

func putUint64(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

// convShapeFactor returns a kernel-shape-dependent compute-efficiency
// multiplier for conv-family ops (1.0 for everything else). Two effects
// are modeled, both responsible for the paper's finding that the
// cost/performance winner depends on the CNN's operation mix:
//
//   - 1×1 convolutions lower to plain GEMMs, which Turing (T4) executes
//     near peak — eroding the V100's advantage on the 1×1-heavy ResNet
//     bottlenecks;
//   - asymmetric 1×N / N×1 kernels (Inception's factorized 7×7s) hit a
//     slow path in the T4-generation kernels, widening the V100's lead
//     on the Inception family.
func (d *Device) convShapeFactor(op *ops.Op) float64 {
	switch op.Type {
	case ops.Conv2D, ops.Conv2DBackpropFilter, ops.Conv2DBackpropInput:
	default:
		return 1.0
	}
	w := op.Window
	if w == nil {
		return 1.0
	}
	if w.KernelH == 1 && w.KernelW == 1 {
		if d.Model == T4 {
			return 2.0
		}
		return 1.0
	}
	if w.KernelH != w.KernelW {
		switch d.Model {
		case T4:
			return 0.70
		case M60, K80:
			return 0.90
		}
	}
	return 1.0
}

// SampleTime draws one noisy execution-time measurement for an op from
// the given noise stream.
func (d *Device) SampleTime(op *ops.Op, src *rng.Source) float64 {
	return d.BaseTime(op) * src.LogNormalFactor(d.Sigma(op))
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
