package gpu

import (
	"fmt"
	"sort"
	"sync"

	"ceer/internal/ops"
)

// The device registry. All access goes through Register/Lookup/All so
// the rest of the stack never enumerates a compiled-in device set.
var (
	regMu    sync.RWMutex
	regByID  = make(map[ID]*Device)
	regOrder []ID
)

// Register adds a device spec to the registry. It returns an error for
// structurally invalid specs and for collisions on ID, Family, or
// SeedID (each must be unique: IDs key persisted artifacts, families
// key CLI flags and profile exports, seed IDs key noise streams).
// Registered specs are copied; later mutation of the argument has no
// effect.
func Register(spec Device) error {
	if err := validate(&spec); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByID[spec.ID]; dup {
		return fmt.Errorf("gpu: device %q already registered", string(spec.ID))
	}
	for _, id := range regOrder {
		prev := regByID[id]
		if prev.Family == spec.Family {
			return fmt.Errorf("gpu: device %q reuses family %q of device %q", string(spec.ID), spec.Family, string(prev.ID))
		}
		if prev.SeedID == spec.SeedID {
			return fmt.Errorf("gpu: device %q reuses seed id %d of device %q", string(spec.ID), spec.SeedID, string(prev.ID))
		}
	}
	cp := spec
	if spec.OpEfficiency != nil {
		cp.OpEfficiency = make(map[ops.Type]float64, len(spec.OpEfficiency))
		for t, eff := range spec.OpEfficiency {
			cp.OpEfficiency[t] = eff
		}
	}
	regByID[cp.ID] = &cp
	regOrder = append(regOrder, cp.ID)
	return nil
}

// MustRegister is Register, panicking on error (for init-time data
// files, where a bad spec is a programming error).
func MustRegister(spec Device) {
	if err := Register(spec); err != nil {
		panic(err)
	}
}

func validate(spec *Device) error {
	switch {
	case spec.ID == "":
		return fmt.Errorf("gpu: device spec needs a non-empty ID")
	case spec.Name == "" || spec.Family == "":
		return fmt.Errorf("gpu: device %q needs Name and Family", string(spec.ID))
	case spec.MemoryGB <= 0:
		return fmt.Errorf("gpu: device %q needs positive MemoryGB", string(spec.ID))
	case spec.ComputeTFLOPS <= 0 || spec.MemBWGBps <= 0 || spec.LaunchUS <= 0:
		return fmt.Errorf("gpu: device %q needs positive effective throughputs", string(spec.ID))
	case spec.CPUFactor <= 0:
		return fmt.Errorf("gpu: device %q needs positive CPUFactor", string(spec.ID))
	case spec.RooflineR0 < 0 || spec.BPFContention < 0 || spec.NoiseScale < 0:
		return fmt.Errorf("gpu: device %q has negative model parameters", string(spec.ID))
	case spec.Conv1x1Factor < 0 || spec.ConvAsymFactor < 0:
		return fmt.Errorf("gpu: device %q has negative conv shape factors", string(spec.ID))
	case spec.CommBaseSeconds < 0 || spec.CommSecondsPerByte < 0 || spec.MarketUSDPerGPUHour < 0:
		return fmt.Errorf("gpu: device %q has negative pricing/communication constants", string(spec.ID))
	}
	for t, eff := range spec.OpEfficiency {
		if eff <= 0 {
			return fmt.Errorf("gpu: device %q has non-positive efficiency for op %s", string(spec.ID), t)
		}
	}
	return nil
}

// Lookup returns the registered device spec for an ID.
func Lookup(id ID) (*Device, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := regByID[id]
	return d, ok
}

// MustLookup returns the device for a registered ID, panicking
// otherwise.
func MustLookup(id ID) *Device {
	d, ok := Lookup(id)
	if !ok {
		panic(fmt.Sprintf("gpu: unknown device %q", string(id)))
	}
	return d
}

// All returns every registered device ID in registration order — for
// the built-in data files that is the paper's presentation order
// (P3, P2, G4, G3), followed by any extra devices in the order they
// were registered.
func All() []ID {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]ID(nil), regOrder...)
}

// ByFamily resolves an AWS family code ("P3") to its device ID.
func ByFamily(family string) (ID, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, id := range regOrder {
		if regByID[id].Family == family {
			return id, true
		}
	}
	return "", false
}

// Families returns the registered family codes sorted alphabetically.
func Families() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(regOrder))
	for _, id := range regOrder {
		out = append(out, regByID[id].Family)
	}
	sort.Strings(out)
	return out
}

// ReorderForTest permutes the registry iteration order. ids must be a
// permutation of All(). It exists solely so tests can prove that
// persisted artifacts keyed by device ID survive devices being
// registered in a different order; production code must never call it.
func ReorderForTest(ids ...ID) error {
	regMu.Lock()
	defer regMu.Unlock()
	if len(ids) != len(regOrder) {
		return fmt.Errorf("gpu: reorder wants %d ids, got %d", len(regOrder), len(ids))
	}
	seen := make(map[ID]bool, len(ids))
	for _, id := range ids {
		if _, ok := regByID[id]; !ok {
			return fmt.Errorf("gpu: reorder of unregistered device %q", string(id))
		}
		if seen[id] {
			return fmt.Errorf("gpu: duplicate device %q in reorder", string(id))
		}
		seen[id] = true
	}
	copy(regOrder, ids)
	return nil
}
