// Package gpu simulates the op-level execution behaviour of the four
// AWS GPU models the paper studies: NVIDIA Tesla V100 (P3 instances),
// K80 (P2), T4 Tensor Core (G4), and Tesla M60 (G3).
//
// Because real GPU hardware is unavailable in this reproduction, the
// package substitutes an analytic roofline execution model per device:
// each operation's noiseless compute time is derived from its FLOP count
// and memory traffic against the device's *effective* throughputs
// (architecture efficiency folded in), with shape-dependent utilization
// and per-(device, op-type) efficiency factors calibrated so the paper's
// empirical relationships hold — the P3 ≈ 10× P2 and ≈ 4× G4 average
// heavy-op speedups, G3 ≈ 1.5× faster than P2, the pooling-operation
// cost crossover where P3 beats G4, and the quadratic input-size scaling
// of Conv2DBackpropFilter. Measurement noise is multiplicative
// lognormal, tight for heavy GPU ops (normalized stddev mostly < 0.1,
// Figure 5) and loose for light GPU and CPU ops.
package gpu

import (
	"fmt"
	"sort"
)

// Model identifies one of the four AWS GPU device models.
type Model int

const (
	// V100 is the NVIDIA Tesla V100 (P3 instances).
	V100 Model = iota
	// K80 is the NVIDIA K80 (P2 instances).
	K80
	// T4 is the NVIDIA T4 Tensor Core (G4 instances).
	T4
	// M60 is the NVIDIA Tesla M60 (G3 instances).
	M60
)

// String returns the device model name.
func (m Model) String() string {
	switch m {
	case V100:
		return "Tesla V100"
	case K80:
		return "K80"
	case T4:
		return "T4"
	case M60:
		return "Tesla M60"
	default:
		return fmt.Sprintf("gpu(%d)", int(m))
	}
}

// Family returns the AWS instance family letter code for the model
// ("P3", "P2", "G4", "G3").
func (m Model) Family() string {
	switch m {
	case V100:
		return "P3"
	case K80:
		return "P2"
	case T4:
		return "G4"
	case M60:
		return "G3"
	default:
		return "??"
	}
}

// Device holds the simulation parameters of one GPU model. Throughputs
// are *effective* values: the sustained rates a well-tuned cuDNN kernel
// achieves, not datasheet peaks.
type Device struct {
	Model    Model
	MemoryGB int
	// CUDACores is informational (Section II's hardware description).
	CUDACores int

	// computeTFLOPS is the effective dense fp32 arithmetic throughput.
	computeTFLOPS float64
	// memBWGBps is the effective memory bandwidth.
	memBWGBps float64
	// launchUS is the per-kernel launch overhead in microseconds.
	launchUS float64
	// rooflineR0 shifts the utilization knee: compute time is modeled as
	// flops/C + r0·bytes/C, so kernels with low arithmetic intensity pay
	// proportionally more (tensor-core devices have a higher knee).
	rooflineR0 float64
	// bpfContention scales the superlinear (quadratic) term of
	// Conv2DBackpropFilter: gradient accumulation contention grows with
	// input size.
	bpfContention float64
	// cpuFactor scales host-side op times (instance families ship
	// different host CPUs).
	cpuFactor float64
}

var devices = map[Model]*Device{
	V100: {
		Model: V100, MemoryGB: 16, CUDACores: 5120,
		computeTFLOPS: 10.0, memBWGBps: 750, launchUS: 4,
		rooflineR0: 40, bpfContention: 0.35, cpuFactor: 0.95,
	},
	K80: {
		Model: K80, MemoryGB: 12, CUDACores: 2496,
		computeTFLOPS: 1.0, memBWGBps: 80, launchUS: 10,
		rooflineR0: 12.5, bpfContention: 0.55, cpuFactor: 1.15,
	},
	T4: {
		Model: T4, MemoryGB: 16, CUDACores: 2560,
		computeTFLOPS: 2.5, memBWGBps: 220, launchUS: 5,
		rooflineR0: 9, bpfContention: 0.40, cpuFactor: 1.0,
	},
	M60: {
		Model: M60, MemoryGB: 8, CUDACores: 2048,
		computeTFLOPS: 1.6, memBWGBps: 135, launchUS: 8,
		rooflineR0: 13, bpfContention: 0.50, cpuFactor: 1.1,
	},
}

// Lookup returns the device for a model.
func Lookup(m Model) (*Device, bool) {
	d, ok := devices[m]
	return d, ok
}

// MustLookup returns the device for a known model, panicking otherwise.
func MustLookup(m Model) *Device {
	d, ok := devices[m]
	if !ok {
		panic(fmt.Sprintf("gpu: unknown model %v", m))
	}
	return d
}

// AllModels returns the four models in a stable order (P3, P2, G4, G3 —
// the paper's presentation order).
func AllModels() []Model { return []Model{V100, K80, T4, M60} }

// ModelByFamily resolves an AWS family code ("P3") to its GPU model.
func ModelByFamily(family string) (Model, bool) {
	for _, m := range AllModels() {
		if m.Family() == family {
			return m, true
		}
	}
	return 0, false
}

// Families returns the four family codes sorted alphabetically.
func Families() []string {
	out := make([]string, 0, 4)
	for _, m := range AllModels() {
		out = append(out, m.Family())
	}
	sort.Strings(out)
	return out
}
