// Package gpu simulates the op-level execution behaviour of cloud GPU
// devices. The four AWS GPU models the paper studies — NVIDIA Tesla
// V100 (P3 instances), K80 (P2), T4 Tensor Core (G4), and Tesla M60
// (G3) — ship as data files registered at init; additional devices can
// be registered by callers as pure data, with no changes to this
// package or its consumers (see Register).
//
// Because real GPU hardware is unavailable in this reproduction, the
// package substitutes an analytic roofline execution model per device:
// each operation's noiseless compute time is derived from its FLOP count
// and memory traffic against the device's *effective* throughputs
// (architecture efficiency folded in), with shape-dependent utilization
// and per-(device, op-type) efficiency factors calibrated so the paper's
// empirical relationships hold — the P3 ≈ 10× P2 and ≈ 4× G4 average
// heavy-op speedups, G3 ≈ 1.5× faster than P2, the pooling-operation
// cost crossover where P3 beats G4, and the quadratic input-size scaling
// of Conv2DBackpropFilter. Measurement noise is multiplicative
// lognormal, tight for heavy GPU ops (normalized stddev mostly < 0.1,
// Figure 5) and loose for light GPU and CPU ops.
//
// Every behaviour that used to be a switch on a closed device enum is
// now a declarative field of the Device spec, so the whole stack —
// cloud catalog, simulator, predictor, experiments — is generic over
// registered devices.
package gpu

import "ceer/internal/ops"

// ID is the stable string identifier of a registered GPU device (e.g.
// "v100"). IDs are the only device handle the rest of the system
// threads around; specs are resolved through Lookup. IDs — never
// registry positions — key every serialized artifact, so persisted
// models survive devices being registered in a different order.
type ID string

// String returns the device's marketing name when registered (e.g.
// "Tesla V100"), or a placeholder rendering for unknown IDs.
func (id ID) String() string {
	if d, ok := Lookup(id); ok {
		return d.Name
	}
	return "gpu(" + string(id) + ")"
}

// Family returns the AWS instance family letter code of the device
// ("P3", "P2", "G4", "G3", ...), or "??" for unknown IDs.
func (id ID) Family() string {
	if d, ok := Lookup(id); ok {
		return d.Family
	}
	return "??"
}

// Device is the declarative simulation spec of one GPU model.
// Throughputs are *effective* values: the sustained rates a well-tuned
// cuDNN kernel achieves, not datasheet peaks. A Device is pure data —
// registering a new one requires no code changes anywhere else (see
// the calibration provenance notes in DESIGN.md §"Device registry").
type Device struct {
	// ID is the stable registry key (e.g. "v100"). It must never change
	// once artifacts referencing it exist.
	ID ID
	// Name is the marketing name ("Tesla V100").
	Name string
	// Family is the AWS instance family letter code ("P3"); unique per
	// device so profiles and CLI flags can resolve it.
	Family string
	// SeedID tags the device's deterministic noise streams. It must be
	// unique among registered devices and must never be reused or
	// renumbered: simulated measurements are derived from it, so
	// changing it silently changes every "observed" value.
	SeedID uint64

	MemoryGB int
	// CUDACores is informational (Section II's hardware description).
	CUDACores int

	// ComputeTFLOPS is the effective dense fp32 arithmetic throughput.
	ComputeTFLOPS float64
	// MemBWGBps is the effective memory bandwidth.
	MemBWGBps float64
	// LaunchUS is the per-kernel launch overhead in microseconds.
	LaunchUS float64
	// RooflineR0 shifts the utilization knee: compute time is modeled as
	// flops/C + r0·bytes/C, so kernels with low arithmetic intensity pay
	// proportionally more (tensor-core devices have a higher knee).
	RooflineR0 float64
	// BPFContention scales the superlinear (quadratic) term of
	// Conv2DBackpropFilter: gradient accumulation contention grows with
	// input size.
	BPFContention float64
	// CPUFactor scales host-side op times (instance families ship
	// different host CPUs).
	CPUFactor float64

	// OpEfficiency overrides the per-op-type memory-path efficiency
	// multiplier for this device; types absent here fall back to the
	// architecture-neutral defaults, then to 1.0. Values below 1 model
	// poorly coalesced access patterns (windowed pooling on pre-Volta
	// parts, strided transposes); values above 1 model unusually
	// well-tuned kernels.
	OpEfficiency map[ops.Type]float64
	// Conv1x1Factor multiplies compute throughput for 1×1 convolutions
	// (which lower to plain GEMMs); 0 means neutral (1.0).
	Conv1x1Factor float64
	// ConvAsymFactor multiplies compute throughput for asymmetric
	// 1×N / N×1 convolution kernels; 0 means neutral (1.0).
	ConvAsymFactor float64
	// NoiseScale scales the lognormal measurement-noise sigma of every
	// op class on this device; 0 means the default profile (1.0).
	NoiseScale float64

	// CommBaseSeconds and CommSecondsPerByte are the k=1 data-parallel
	// communication constants of the device's host platform (paper
	// Section III-D): fixed per-iteration sync cost and per-gradient-byte
	// transfer cost. Devices with either unset cannot be trained on in
	// multi-GPU simulations (cloud.CommOverheadBase errors).
	CommBaseSeconds    float64
	CommSecondsPerByte float64
	// MarketUSDPerGPUHour is the commodity market price per GPU-hour
	// used by the Figure 12 market-ratio pricing scenario; 0 means the
	// device has no market-scenario price.
	MarketUSDPerGPUHour float64
}
