package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"ceer/internal/ops"
	"ceer/internal/rng"
	"ceer/internal/stats"
	"ceer/internal/tensor"
)

func TestDeviceLookup(t *testing.T) {
	for _, m := range All() {
		d, ok := Lookup(m)
		if !ok || d.ID != m {
			t.Errorf("Lookup(%v) failed", m)
		}
		if d.ComputeTFLOPS <= 0 || d.MemBWGBps <= 0 || d.LaunchUS <= 0 {
			t.Errorf("%v has non-positive throughput parameters", m)
		}
	}
	if _, ok := Lookup(ID("no-such-device")); ok {
		t.Error("unknown device should miss")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup should panic")
		}
	}()
	MustLookup(ID("no-such-device"))
}

func TestFamilies(t *testing.T) {
	cases := map[ID]string{V100: "P3", K80: "P2", T4: "G4", M60: "G3"}
	for m, fam := range cases {
		if m.Family() != fam {
			t.Errorf("%v.Family() = %q, want %q", m, m.Family(), fam)
		}
		got, ok := ByFamily(fam)
		if !ok || got != m {
			t.Errorf("ByFamily(%q) = %v, %v", fam, got, ok)
		}
	}
	if _, ok := ByFamily("ZZ"); ok {
		t.Error("unknown family should miss")
	}
	if len(Families()) < 4 {
		t.Error("Families should return at least the four paper codes")
	}
	if ID("nope").Family() != "??" || ID("nope").String() == "" {
		t.Error("unknown device rendering wrong")
	}
}

func bigConv() *ops.Op {
	w := tensor.Win(3, 1, tensor.Same)
	return &ops.Op{
		Type:   ops.Conv2D,
		Inputs: []tensor.Spec{tensor.F32(32, 56, 56, 128), tensor.F32(3, 3, 128, 128)},
		Output: tensor.F32(32, 56, 56, 128),
		Window: &w,
	}
}

func bigPool() *ops.Op {
	w := tensor.Win(2, 2, tensor.Valid)
	return &ops.Op{
		Type:   ops.MaxPool,
		Inputs: []tensor.Spec{tensor.F32(32, 112, 112, 128)},
		Output: tensor.F32(32, 56, 56, 128),
		Window: &w,
	}
}

func reluOp(elems int64) *ops.Op {
	in := tensor.F32(elems)
	return &ops.Op{Type: ops.Relu, Inputs: []tensor.Spec{in}, Output: in}
}

func TestSpeedOrdering(t *testing.T) {
	// P3 fastest, P2 slowest on representative heavy ops (Fig. 2).
	for _, op := range []*ops.Op{bigConv(), bigPool(), reluOp(20e6)} {
		tP3 := MustLookup(V100).BaseTime(op)
		tG4 := MustLookup(T4).BaseTime(op)
		tG3 := MustLookup(M60).BaseTime(op)
		tP2 := MustLookup(K80).BaseTime(op)
		if !(tP3 < tG4 && tG4 < tG3 && tG3 < tP2) {
			t.Errorf("%s: ordering violated: P3=%.3gms G4=%.3gms G3=%.3gms P2=%.3gms",
				op.Type, tP3*1e3, tG4*1e3, tG3*1e3, tP2*1e3)
		}
	}
}

func TestSpeedRatios(t *testing.T) {
	// The paper's average heavy-op ratios: P3 ~10× vs P2, ~4× vs G4,
	// and P2 ~1.5× slower than G3. Check a compute-heavy op lands in
	// generous bands around those.
	op := bigConv()
	tP3 := MustLookup(V100).BaseTime(op)
	tP2 := MustLookup(K80).BaseTime(op)
	tG4 := MustLookup(T4).BaseTime(op)
	tG3 := MustLookup(M60).BaseTime(op)
	if r := tP2 / tP3; r < 6 || r > 14 {
		t.Errorf("P2/P3 conv ratio = %.1f, want ~10", r)
	}
	if r := tG4 / tP3; r < 2.5 || r > 6 {
		t.Errorf("G4/P3 conv ratio = %.1f, want ~4", r)
	}
	if r := tP2 / tG3; r < 1.2 || r > 2.2 {
		t.Errorf("P2/G3 conv ratio = %.1f, want ~1.5", r)
	}
}

func TestPoolingCostCrossover(t *testing.T) {
	// On pooling ops, P3's time advantage over G4 must exceed the price
	// ratio 3.06/0.752 ≈ 4.07, so P3 is the cheaper choice (Fig. 3);
	// on BN-grad, it must be below it, so G4 wins.
	pool := bigPool()
	rPool := MustLookup(T4).BaseTime(pool) / MustLookup(V100).BaseTime(pool)
	if rPool < 4.5 {
		t.Errorf("G4/P3 pooling time ratio = %.2f, want > 4.5 for cost crossover", rPool)
	}
	bn := &ops.Op{
		Type:   ops.FusedBatchNormGradV3,
		Inputs: []tensor.Spec{tensor.F32(32, 56, 56, 128), tensor.F32(32, 56, 56, 128), tensor.F32(128)},
		Output: tensor.F32(32, 56, 56, 128),
	}
	rBN := MustLookup(T4).BaseTime(bn) / MustLookup(V100).BaseTime(bn)
	if rBN > 3.6 {
		t.Errorf("G4/P3 BN-grad time ratio = %.2f, want < 3.6 so G4 is cost-optimal", rBN)
	}
}

func TestG3SlowerThanP2OnSomeOps(t *testing.T) {
	// Paper: "for some operations, G3 has higher compute times than P2".
	w := tensor.Win(2, 2, tensor.Valid)
	mpg := &ops.Op{
		Type:   ops.MaxPoolGrad,
		Inputs: []tensor.Spec{tensor.F32(32, 112, 112, 64), tensor.F32(32, 56, 56, 64), tensor.F32(32, 56, 56, 64)},
		Output: tensor.F32(32, 112, 112, 64),
		Window: &w,
	}
	if MustLookup(M60).BaseTime(mpg) <= MustLookup(K80).BaseTime(mpg) {
		t.Error("MaxPoolGrad should be slower on G3 than on P2")
	}
}

func TestMonotoneInInputSize(t *testing.T) {
	d := MustLookup(T4)
	prev := 0.0
	for _, elems := range []int64{1e5, 1e6, 1e7, 5e7} {
		cur := d.BaseTime(reluOp(elems))
		if cur <= prev {
			t.Errorf("Relu time not monotone at %d elems", elems)
		}
		prev = cur
	}
}

func TestBackpropFilterSuperlinear(t *testing.T) {
	// Doubling the spatial input more than doubles Conv2DBackpropFilter
	// time (the quadratic term), while plain Conv2D stays near-linear.
	mk := func(tp ops.Type, h int64) *ops.Op {
		w := tensor.Win(3, 1, tensor.Same)
		x := tensor.F32(32, h, h, 64)
		f := tensor.F32(3, 3, 64, 64)
		if tp == ops.Conv2D {
			return &ops.Op{Type: tp, Inputs: []tensor.Spec{x, f}, Output: x, Window: &w}
		}
		return &ops.Op{Type: tp, Inputs: []tensor.Spec{x, x}, Output: f, Window: &w}
	}
	d := MustLookup(V100)
	rBPF := d.BaseTime(mk(ops.Conv2DBackpropFilter, 112)) / d.BaseTime(mk(ops.Conv2DBackpropFilter, 56))
	rFwd := d.BaseTime(mk(ops.Conv2D, 112)) / d.BaseTime(mk(ops.Conv2D, 56))
	// Spatial doubling quadruples FLOPs; the BPF ratio must exceed the
	// forward ratio by a clear margin.
	if rBPF <= rFwd*1.2 {
		t.Errorf("BPF scaling %.2f not superlinear vs fwd %.2f", rBPF, rFwd)
	}
}

func TestHeavyNoiseTight(t *testing.T) {
	// Sampled heavy-op times must show normalized stddev < 0.1 (Fig. 5).
	d := MustLookup(K80)
	op := bigConv()
	src := rng.New(42)
	var xs []float64
	for i := 0; i < 1000; i++ {
		xs = append(xs, d.SampleTime(op, src))
	}
	if nsd := stats.NormalizedStdDev(xs); nsd >= 0.1 || nsd <= 0 {
		t.Errorf("heavy op normalized stddev = %v, want (0, 0.1)", nsd)
	}
}

func TestLightAndCPUNoiseLoose(t *testing.T) {
	d := MustLookup(K80)
	light := &ops.Op{Type: ops.Cast, Inputs: []tensor.Spec{tensor.F32(1000)}, Output: tensor.F32(1000)}
	cpu := &ops.Op{Type: ops.OneHot, Inputs: []tensor.Spec{tensor.F32(32)}, Output: tensor.F32(32, 1000)}
	for _, op := range []*ops.Op{light, cpu} {
		src := rng.New(7)
		var xs []float64
		for i := 0; i < 2000; i++ {
			xs = append(xs, d.SampleTime(op, src))
		}
		if nsd := stats.NormalizedStdDev(xs); nsd < 0.1 {
			t.Errorf("%s normalized stddev = %v, want >= 0.1 (high variability)", op.Type, nsd)
		}
	}
	if hSig := d.Sigma(bigConv()); hSig >= d.Sigma(light) {
		t.Error("heavy sigma should be below light sigma")
	}
}

func TestCPUOpsUseHostModel(t *testing.T) {
	op := &ops.Op{Type: ops.IteratorGetNext, Output: tensor.SpecOf(tensor.NHWC(32, 224, 224, 3), tensor.Uint8)}
	// Different GPU devices only differ by cpuFactor for CPU ops.
	tP3 := MustLookup(V100).BaseTime(op)
	tP2 := MustLookup(K80).BaseTime(op)
	wantRatio := MustLookup(K80).CPUFactor / MustLookup(V100).CPUFactor
	if got := tP2 / tP3; math.Abs(got-wantRatio) > 1e-9 {
		t.Errorf("CPU op ratio = %v, want cpuFactor ratio %v", got, wantRatio)
	}
	if tP3 < 100*us {
		t.Errorf("IteratorGetNext too fast: %v s", tP3)
	}
}

func TestHeavyThresholdSeparation(t *testing.T) {
	// The paper's heavy/light boundary: heavy ops exceed 0.5 ms on P2
	// for realistic training-scale tensors; metadata ops never do.
	d := MustLookup(K80)
	if got := d.BaseTime(bigConv()); got < 0.5e-3 {
		t.Errorf("big conv on P2 = %v s, want > 0.5ms", got)
	}
	meta := &ops.Op{Type: ops.Reshape, Inputs: []tensor.Spec{tensor.F32(32, 4096)}, Output: tensor.F32(32, 4096)}
	if got := d.BaseTime(meta); got > 0.1e-3 {
		t.Errorf("Reshape on P2 = %v s, want < 0.1ms", got)
	}
}

// Property: sampled times are always positive and the noiseless base is
// deterministic.
func TestBaseTimeDeterministicProperty(t *testing.T) {
	f := func(seed uint64, elemsRaw uint32) bool {
		elems := int64(elemsRaw%1e7) + 1
		op := reluOp(elems)
		for _, m := range All() {
			d := MustLookup(m)
			a, b := d.BaseTime(op), d.BaseTime(op)
			if !eqExact(a, b) || a <= 0 {
				return false
			}
			if d.SampleTime(op, rng.New(seed)) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: across all devices, times for the same op preserve the
// P3 < G4 ordering for sufficiently large memory-bound tensors.
func TestOrderingProperty(t *testing.T) {
	f := func(elemsRaw uint32) bool {
		elems := int64(elemsRaw%5e7) + 1e6
		op := reluOp(elems)
		return MustLookup(V100).BaseTime(op) < MustLookup(T4).BaseTime(op) &&
			MustLookup(T4).BaseTime(op) < MustLookup(K80).BaseTime(op)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConvShapeFactorRegimes(t *testing.T) {
	mk := func(kh, kw int64) *ops.Op {
		w := tensor.Window{KernelH: kh, KernelW: kw, StrideH: 1, StrideW: 1, Padding: tensor.Same}
		in := tensor.F32(8, 14, 14, 64)
		f := tensor.SpecOf(tensor.NewShape(kh, kw, 64, 64), tensor.Float32)
		return &ops.Op{Type: ops.Conv2D, Inputs: []tensor.Spec{in, f}, Output: in, Window: &w}
	}
	t4 := MustLookup(T4)
	p3 := MustLookup(V100)
	// T4 runs 1x1 convs (GEMMs) with a boost and asymmetric kernels with
	// a penalty; V100 is neutral to both.
	if t4.convShapeFactor(mk(1, 1)) <= 1.0 {
		t.Error("T4 should boost 1x1 convs")
	}
	if t4.convShapeFactor(mk(1, 7)) >= 1.0 {
		t.Error("T4 should penalize asymmetric kernels")
	}
	if !eqExact(p3.convShapeFactor(mk(1, 1)), 1.0) || !eqExact(p3.convShapeFactor(mk(7, 1)), 1.0) {
		t.Error("V100 should be regime-neutral")
	}
	if !eqExact(t4.convShapeFactor(mk(3, 3)), 1.0) {
		t.Error("square non-1x1 kernels should be neutral on T4")
	}
	// Non-conv ops are never affected.
	relu := reluOp(1000)
	if !eqExact(t4.convShapeFactor(relu), 1.0) {
		t.Error("non-conv op should have factor 1")
	}
	noWin := &ops.Op{Type: ops.Conv2D, Inputs: []tensor.Spec{tensor.F32(1, 4, 4, 1)}, Output: tensor.F32(1, 4, 4, 1)}
	if !eqExact(t4.convShapeFactor(noWin), 1.0) {
		t.Error("windowless conv should have factor 1")
	}
}

func TestShapeJitterProperties(t *testing.T) {
	d := MustLookup(V100)
	op1 := reluOp(1_000_000)
	op2 := reluOp(1_000_001)
	// Deterministic per shape.
	if d.shapeJitter(op1) != d.shapeJitter(op1) {
		t.Error("jitter must be deterministic")
	}
	// Bounded.
	for _, elems := range []int64{10, 1e4, 1e6, 3e7} {
		j := d.shapeJitter(reluOp(elems))
		if j < 1-shapeJitterAmp || j > 1+shapeJitterAmp {
			t.Errorf("jitter %v out of [%v, %v]", j, 1-shapeJitterAmp, 1+shapeJitterAmp)
		}
	}
	// Different shapes generally differ (kernel-selection surface).
	if eqExact(d.shapeJitter(op1), d.shapeJitter(op2)) {
		t.Error("distinct shapes should land on distinct jitter points")
	}
	// CPU ops are exempt (host code has no kernel-selection effect).
	cpuOp := &ops.Op{Type: ops.OneHot, Inputs: []tensor.Spec{tensor.F32(32)}, Output: tensor.F32(32, 1000)}
	if !eqExact(d.shapeJitter(cpuOp), 1) {
		t.Error("CPU op jitter must be 1")
	}
}

func TestOpEfficiencyTableSanity(t *testing.T) {
	// Every efficiency is positive and within a plausible band, for
	// every (device, heavy type) pair.
	for _, m := range All() {
		for _, tp := range ops.HeavyTypes() {
			eff := MustLookup(m).opEfficiency(tp)
			if eff <= 0 || eff > 1.5 {
				t.Errorf("efficiency(%v, %s) = %v out of (0, 1.5]", m, tp, eff)
			}
		}
	}
	// The calibrated inequalities behind the paper's crossovers.
	if MustLookup(T4).opEfficiency(ops.MaxPool) >= MustLookup(V100).opEfficiency(ops.MaxPool) {
		t.Error("pooling must be relatively worse on T4 than V100")
	}
	if MustLookup(T4).opEfficiency(ops.FusedBatchNormGradV3) <= MustLookup(V100).opEfficiency(ops.FusedBatchNormGradV3) {
		t.Error("BN-grad must be relatively better on T4")
	}
	if MustLookup(M60).opEfficiency(ops.MaxPoolGrad) >= MustLookup(K80).opEfficiency(ops.MaxPoolGrad) {
		t.Error("MaxPoolGrad must be worse on M60 than K80 (Fig. 2 inversion)")
	}
}

func TestDepthwiseConvTiming(t *testing.T) {
	w := tensor.Win(3, 1, tensor.Same)
	in := tensor.F32(32, 56, 56, 64)
	f := tensor.SpecOf(tensor.NewShape(3, 3, 64, 1), tensor.Float32)
	dw := &ops.Op{Type: ops.DepthwiseConv2D, Inputs: []tensor.Spec{in, f}, Output: in, Window: &w}
	full := &ops.Op{Type: ops.Conv2D,
		Inputs: []tensor.Spec{in, tensor.SpecOf(tensor.NewShape(3, 3, 64, 64), tensor.Float32)},
		Output: in, Window: &w}
	for _, m := range All() {
		d := MustLookup(m)
		if d.BaseTime(dw) >= d.BaseTime(full) {
			t.Errorf("%v: depthwise conv should be cheaper than the full conv", m)
		}
		if d.BaseTime(dw) <= 0 {
			t.Errorf("%v: depthwise time non-positive", m)
		}
	}
}

// eqExact reports a == b. Exact float equality is the contract under
// test here: base-time determinism, regime-neutral shape
// factors, and jitter pinning are exact contracts.
func eqExact(a, b float64) bool { return a == b }
