package gpu

import "ceer/internal/ops"

// Stable IDs of the four AWS GPU devices the paper studies. They are
// plain registry keys — nothing in the stack depends on this set being
// closed — exported as constants only for convenience at call sites.
const (
	// V100 is the NVIDIA Tesla V100 (P3 instances).
	V100 = ID("v100")
	// K80 is the NVIDIA K80 (P2 instances).
	K80 = ID("k80")
	// T4 is the NVIDIA T4 Tensor Core (G4 instances).
	T4 = ID("t4")
	// M60 is the NVIDIA Tesla M60 (G3 instances).
	M60 = ID("m60")
)

// The paper's four devices, registered at init in the paper's
// presentation order (P3, P2, G4, G3). Every field is calibration data
// (see DESIGN.md §"Device registry" for the per-figure provenance):
//
//   - effective throughputs and roofline knees reproduce the Figure 2
//     heavy-op speed ordering and ratios (P3 ≈ 10× P2, ≈ 4× G4);
//   - the OpEfficiency overrides encode the observed crossovers:
//     pooling disproportionately favors V100 (the Figure 3 cost
//     crossover), FusedBatchNormGradV3 favors T4, and transposes and
//     max-pool gradients are where the M60 (G3) falls behind even the
//     K80 (P2);
//   - SeedID values 0–3 are frozen forever: they reproduce the noise
//     streams of the original enum-based simulator byte for byte.
func init() {
	MustRegister(Device{
		ID: V100, Name: "Tesla V100", Family: "P3", SeedID: 0,
		MemoryGB: 16, CUDACores: 5120,
		ComputeTFLOPS: 10.0, MemBWGBps: 750, LaunchUS: 4,
		RooflineR0: 40, BPFContention: 0.35, CPUFactor: 0.95,
		OpEfficiency: map[ops.Type]float64{
			ops.MaxPool: 1.0, ops.AvgPool: 1.0, ops.MaxPoolGrad: 1.0, ops.AvgPoolGrad: 1.0,
			ops.Transpose: 0.048,
		},
		CommBaseSeconds: 1.2e-3, CommSecondsPerByte: 0.0050e-9,
		MarketUSDPerGPUHour: 3.06,
	})
	MustRegister(Device{
		ID: K80, Name: "K80", Family: "P2", SeedID: 1,
		MemoryGB: 12, CUDACores: 2496,
		ComputeTFLOPS: 1.0, MemBWGBps: 80, LaunchUS: 10,
		RooflineR0: 12.5, BPFContention: 0.55, CPUFactor: 1.15,
		OpEfficiency: map[ops.Type]float64{
			ops.MaxPool: 0.60, ops.AvgPool: 0.60, ops.MaxPoolGrad: 0.60, ops.AvgPoolGrad: 0.60,
			ops.Transpose: 0.040,
		},
		ConvAsymFactor:  0.90,
		CommBaseSeconds: 13.0e-3, CommSecondsPerByte: 0.1000e-9,
		MarketUSDPerGPUHour: 0.15,
	})
	MustRegister(Device{
		ID: T4, Name: "T4", Family: "G4", SeedID: 2,
		MemoryGB: 16, CUDACores: 2560,
		ComputeTFLOPS: 2.5, MemBWGBps: 220, LaunchUS: 5,
		RooflineR0: 9, BPFContention: 0.40, CPUFactor: 1.0,
		OpEfficiency: map[ops.Type]float64{
			ops.MaxPool: 0.40, ops.AvgPool: 0.40, ops.MaxPoolGrad: 0.40, ops.AvgPoolGrad: 0.40,
			// Multi-output fused kernel; T4's rendition is unusually good.
			ops.FusedBatchNormGradV3: 1.05,
			ops.FusedBatchNormV3:     0.75,
			// Plain element-wise kernels run close to peak on Turing.
			ops.AddV2: 1.10, ops.AddN: 1.10, ops.Mul: 1.10,
			ops.Transpose: 0.044,
		},
		// 1×1 convolutions lower to plain GEMMs, which Turing executes
		// near peak; asymmetric 1×N / N×1 kernels (Inception's factorized
		// 7×7s) hit a slow path in the T4-generation kernels.
		Conv1x1Factor: 2.0, ConvAsymFactor: 0.70,
		CommBaseSeconds: 2.3e-3, CommSecondsPerByte: 0.0150e-9,
		MarketUSDPerGPUHour: 0.95,
	})
	MustRegister(Device{
		ID: M60, Name: "Tesla M60", Family: "G3", SeedID: 3,
		MemoryGB: 8, CUDACores: 2048,
		ComputeTFLOPS: 1.6, MemBWGBps: 135, LaunchUS: 8,
		RooflineR0: 13, BPFContention: 0.50, CPUFactor: 1.1,
		OpEfficiency: map[ops.Type]float64{
			ops.MaxPool: 0.55, ops.AvgPool: 0.55, ops.AvgPoolGrad: 0.55,
			// G3 behind even P2 here.
			ops.MaxPoolGrad: 0.30,
			// Strided access: slow everywhere, disastrous on M60.
			ops.Transpose: 0.022,
		},
		ConvAsymFactor:  0.90,
		CommBaseSeconds: 5.0e-3, CommSecondsPerByte: 0.0370e-9,
		MarketUSDPerGPUHour: 0.55,
	})
}
