package gpu

import (
	"strings"
	"testing"

	"ceer/internal/ops"
)

// snapshotRegistry saves the private registry state and returns a
// restore function, so error-path tests can mutate the global registry
// without leaking devices into other tests in this binary.
func snapshotRegistry(t *testing.T) {
	t.Helper()
	regMu.Lock()
	savedByID := make(map[ID]*Device, len(regByID))
	for id, d := range regByID {
		savedByID[id] = d
	}
	savedOrder := append([]ID(nil), regOrder...)
	regMu.Unlock()
	t.Cleanup(func() {
		regMu.Lock()
		regByID = savedByID
		regOrder = savedOrder
		regMu.Unlock()
	})
}

// validSpec returns a structurally valid spec that collides with
// nothing registered by the paper data file.
func validSpec() Device {
	return Device{
		ID: "test-gpu", Name: "Test GPU", Family: "ZZ", SeedID: 900,
		MemoryGB: 8, CUDACores: 1024,
		ComputeTFLOPS: 1, MemBWGBps: 100, LaunchUS: 5,
		CPUFactor: 1,
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	snapshotRegistry(t)
	if err := Register(validSpec()); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := map[string]Device{
		"duplicate id": validSpec(),
		"duplicate family": func() Device {
			d := validSpec()
			d.ID, d.SeedID = "test-gpu-2", 901
			return d
		}(),
		"duplicate seed id": func() Device {
			d := validSpec()
			d.ID, d.Family = "test-gpu-3", "ZY"
			return d
		}(),
	}
	for name, spec := range cases {
		if err := Register(spec); err == nil {
			t.Errorf("%s: Register accepted %+v", name, spec)
		}
	}
	// Collisions with the init-registered paper devices too.
	dup := validSpec()
	dup.ID = V100
	if err := Register(dup); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("re-registering %q: got %v", V100, err)
	}
}

func TestRegisterValidatesSpecs(t *testing.T) {
	snapshotRegistry(t)
	mutations := map[string]func(*Device){
		"empty id":           func(d *Device) { d.ID = "" },
		"empty name":         func(d *Device) { d.Name = "" },
		"empty family":       func(d *Device) { d.Family = "" },
		"zero memory":        func(d *Device) { d.MemoryGB = 0 },
		"zero compute":       func(d *Device) { d.ComputeTFLOPS = 0 },
		"zero bandwidth":     func(d *Device) { d.MemBWGBps = 0 },
		"zero launch":        func(d *Device) { d.LaunchUS = 0 },
		"zero cpu factor":    func(d *Device) { d.CPUFactor = 0 },
		"negative roofline":  func(d *Device) { d.RooflineR0 = -1 },
		"negative noise":     func(d *Device) { d.NoiseScale = -0.5 },
		"negative conv":      func(d *Device) { d.Conv1x1Factor = -1 },
		"negative comm":      func(d *Device) { d.CommBaseSeconds = -1 },
		"zero op efficiency": func(d *Device) { d.OpEfficiency = map[ops.Type]float64{ops.MaxPool: 0} },
	}
	for name, mutate := range mutations {
		spec := validSpec()
		mutate(&spec)
		if err := Register(spec); err == nil {
			t.Errorf("%s: Register accepted invalid spec", name)
		}
	}
}

func TestRegisterCopiesEfficiencyTable(t *testing.T) {
	snapshotRegistry(t)
	spec := validSpec()
	spec.OpEfficiency = map[ops.Type]float64{ops.MaxPool: 0.5}
	if err := Register(spec); err != nil {
		t.Fatal(err)
	}
	spec.OpEfficiency[ops.MaxPool] = 99 // must not reach the registry
	if got := MustLookup(spec.ID).opEfficiency(ops.MaxPool); !eqExact(got, 0.5) {
		t.Errorf("registered efficiency mutated through caller's map: %v", got)
	}
}

func TestMustRegisterPanicsOnCollision(t *testing.T) {
	snapshotRegistry(t)
	defer func() {
		if recover() == nil {
			t.Error("MustRegister should panic on duplicate ID")
		}
	}()
	spec := validSpec()
	spec.ID = V100
	MustRegister(spec)
}

func TestReorderForTest(t *testing.T) {
	snapshotRegistry(t)
	orig := All()
	rev := make([]ID, len(orig))
	for i, id := range orig {
		rev[len(orig)-1-i] = id
	}
	if err := ReorderForTest(rev...); err != nil {
		t.Fatalf("reorder: %v", err)
	}
	got := All()
	for i := range rev {
		if got[i] != rev[i] {
			t.Fatalf("All() after reorder = %v, want %v", got, rev)
		}
	}
	if err := ReorderForTest(orig[:1]...); err == nil {
		t.Error("short permutation should be rejected")
	}
	if err := ReorderForTest(append([]ID{"no-such"}, orig[1:]...)...); err == nil {
		t.Error("permutation with unknown ID should be rejected")
	}
	dup := append([]ID{orig[0]}, orig[:len(orig)-1]...)
	if err := ReorderForTest(dup...); err == nil {
		t.Error("permutation with duplicate ID should be rejected")
	}
}
