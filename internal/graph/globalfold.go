package graph

import (
	"sort"

	"ceer/internal/ops"
)

// GlobalClass is one zoo-wide signature equivalence class: every node,
// in every folded graph, whose op carries one canonical signature.
// Where the per-graph Fold partitions by (signature, phase) to keep
// phase attribution possible, the global fold merges phases — cost is a
// pure function of the signature alone — so the class table is the
// smallest set of distinct evaluations that can serve the whole zoo.
type GlobalClass struct {
	// Sig is the canonical signature shared by the class.
	Sig ops.Signature
	// Rep is a representative node (from the first graph, in fold order,
	// containing the class); any member is cost-interchangeable.
	Rep *Node
	// Features is the class's cached feature vector (shared with the
	// owning per-graph fold entry; do not modify).
	Features []float64
	// Count is the total number of node instances across all folded
	// graphs.
	Count int
	// Graphs is the number of folded graphs containing the class.
	Graphs int
}

// ClassCount is one term of a graph's reduction under a GlobalFold: the
// graph holds Count instances of the global class at index Class.
type ClassCount struct {
	// Class indexes GlobalFold.Classes.
	Class int
	// Count is the number of instances in this graph.
	Count int
}

// GlobalFold is the cross-graph signature fold of a fixed set of
// graphs: one table of unique signature classes (ascending signature)
// plus, per graph, its reduction to (class index, count) pairs
// (ascending class index). CNN zoos overlap heavily — different
// architectures reuse identical convolution and pooling shapes — so
// the global class table is typically far smaller than the sum of the
// per-graph folds, and a consumer that precomputes one value per
// (context, class) serves every graph from the same table.
//
// A GlobalFold is immutable after construction and safe for concurrent
// readers.
type GlobalFold struct {
	classes  []GlobalClass
	graphs   []*Graph
	perGraph [][]ClassCount
	nodes    int
}

// FoldAll builds the global fold of the given graphs, reusing each
// graph's cached per-graph Fold. Graph order is preserved; the class
// table depends only on the set of signatures (ascending), so two
// FoldAll calls over permutations of the same graphs agree on classes
// and per-graph reductions (representatives may differ).
func FoldAll(graphs []*Graph) *GlobalFold {
	gf := &GlobalFold{
		graphs:   append([]*Graph(nil), graphs...),
		perGraph: make([][]ClassCount, len(graphs)),
	}
	idx := make(map[ops.Signature]int)
	for gi, g := range graphs {
		entries := g.Fold().Entries()
		gf.nodes += g.Fold().Nodes()
		pairs := make([]ClassCount, 0, len(entries))
		for i := range entries {
			e := &entries[i]
			ci, ok := idx[e.Sig]
			if !ok {
				ci = len(gf.classes)
				idx[e.Sig] = ci
				gf.classes = append(gf.classes, GlobalClass{
					Sig:      e.Sig,
					Rep:      e.Rep,
					Features: e.Features,
				})
			}
			gf.classes[ci].Count += e.Count
			// Per-graph entries are (signature, phase)-sorted, so one
			// signature's phases are adjacent: merge into the last pair.
			if n := len(pairs); n > 0 && pairs[n-1].Class == ci {
				pairs[n-1].Count += e.Count
				continue
			}
			gf.classes[ci].Graphs++
			pairs = append(pairs, ClassCount{Class: ci, Count: e.Count})
		}
		gf.perGraph[gi] = pairs
	}

	// Renumber classes into ascending-signature order so the table is
	// independent of graph iteration order.
	perm := make([]int, len(gf.classes)) // old index → sorted index
	order := make([]int, len(gf.classes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return gf.classes[order[i]].Sig < gf.classes[order[j]].Sig
	})
	sorted := make([]GlobalClass, len(gf.classes))
	for newIdx, oldIdx := range order {
		sorted[newIdx] = gf.classes[oldIdx]
		perm[oldIdx] = newIdx
	}
	gf.classes = sorted
	for gi, pairs := range gf.perGraph {
		for i := range pairs {
			pairs[i].Class = perm[pairs[i].Class]
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].Class < pairs[j].Class })
		gf.perGraph[gi] = pairs
	}
	return gf
}

// Classes returns the global class table in ascending signature order.
// The slice is shared; do not modify it.
func (gf *GlobalFold) Classes() []GlobalClass { return gf.classes }

// Len returns the number of unique global classes.
func (gf *GlobalFold) Len() int { return len(gf.classes) }

// Nodes returns the total node count folded across all graphs.
func (gf *GlobalFold) Nodes() int { return gf.nodes }

// NumGraphs returns the number of folded graphs.
func (gf *GlobalFold) NumGraphs() int { return len(gf.graphs) }

// Graph returns the gi-th folded graph.
func (gf *GlobalFold) Graph(gi int) *Graph { return gf.graphs[gi] }

// PerGraph returns graph gi's reduction: its (class index, count)
// pairs in ascending class order. The slice is shared; do not modify.
func (gf *GlobalFold) PerGraph(gi int) []ClassCount { return gf.perGraph[gi] }

// GraphIndex returns the fold index of g, or -1 when g was not folded.
// Identity is pointer identity: the compiled serving path hands out the
// same immutable *Graph it folded (see graph.BuildCache).
//
//hot:path
func (gf *GlobalFold) GraphIndex(g *Graph) int {
	for i, fg := range gf.graphs {
		if fg == g {
			return i
		}
	}
	return -1
}

// Pairs returns the total number of (graph, class) reduction pairs —
// the per-prediction gather length summed over the zoo.
func (gf *GlobalFold) Pairs() int {
	n := 0
	for _, p := range gf.perGraph {
		n += len(p)
	}
	return n
}
