package graph_test

import (
	"sort"
	"testing"

	"ceer/internal/graph"
	"ceer/internal/zoo"
)

// TestFoldInvariants checks the documented Fold invariants on every zoo
// CNN: counts sum to the node count, entries are sorted, and each
// class's cached features match its representative.
func TestFoldInvariants(t *testing.T) {
	for _, name := range zoo.Names() {
		g := zoo.MustBuild(name, 32)
		f := g.Fold()
		if f.Nodes() != g.Len() {
			t.Errorf("%s: fold Nodes() = %d, want %d", name, f.Nodes(), g.Len())
		}
		entries := f.Entries()
		if len(entries) != f.Len() {
			t.Errorf("%s: Len() = %d but %d entries", name, f.Len(), len(entries))
		}
		sum := 0
		for i := range entries {
			e := &entries[i]
			sum += e.Count
			if e.Count < 1 {
				t.Errorf("%s: entry %d has count %d", name, i, e.Count)
			}
			if e.Rep == nil {
				t.Fatalf("%s: entry %d has nil representative", name, i)
			}
			if got := e.Rep.Op.Signature(); got != e.Sig {
				t.Errorf("%s: entry %d signature %q but rep signs %q", name, i, e.Sig, got)
			}
			if e.Rep.Phase != e.Phase {
				t.Errorf("%s: entry %d phase %v but rep in %v", name, i, e.Phase, e.Rep.Phase)
			}
			want := e.Rep.Op.Features()
			if len(e.Features) != len(want) {
				t.Fatalf("%s: entry %d cached %d features, want %d", name, i, len(e.Features), len(want))
			}
			for j := range want {
				if !eqExact(e.Features[j], want[j]) {
					t.Errorf("%s: entry %d feature %d = %v, want %v", name, i, j, e.Features[j], want[j])
				}
			}
		}
		if sum != g.Len() {
			t.Errorf("%s: Σ Count = %d, want %d nodes", name, sum, g.Len())
		}
		if !sort.SliceIsSorted(entries, func(i, j int) bool {
			if entries[i].Sig != entries[j].Sig {
				return entries[i].Sig < entries[j].Sig
			}
			return entries[i].Phase < entries[j].Phase
		}) {
			t.Errorf("%s: fold entries not sorted by (signature, phase)", name)
		}
		if f.Len() >= g.Len() {
			t.Errorf("%s: fold has %d classes for %d nodes — no folding happened",
				name, f.Len(), g.Len())
		}
	}
}

// TestFoldClassMembersAgree verifies the core folding premise directly:
// every node of a class derives the same feature vector as the cached
// representative, so costing the representative × count is exact.
func TestFoldClassMembersAgree(t *testing.T) {
	g := zoo.MustBuild("resnet-50", 32)
	type key struct {
		sig   string
		phase graph.Phase
	}
	feats := map[key][]float64{}
	for _, e := range g.Fold().Entries() {
		feats[key{string(e.Sig), e.Phase}] = e.Features
	}
	for _, n := range g.Nodes() {
		want, ok := feats[key{string(n.Op.Signature()), n.Phase}]
		if !ok {
			t.Fatalf("node %d (%s) missing from fold", n.ID, n.Name)
		}
		got := n.Op.Features()
		if len(got) != len(want) {
			t.Fatalf("node %d: %d features, class has %d", n.ID, len(got), len(want))
		}
		for j := range got {
			if !eqExact(got[j], want[j]) {
				t.Fatalf("node %d: feature %d = %v, class caches %v", n.ID, j, got[j], want[j])
			}
		}
	}
}

func TestFoldCachedAndDeterministic(t *testing.T) {
	g := zoo.MustBuild("inception-v3", 32)
	if f1, f2 := g.Fold(), g.Fold(); f1 != f2 {
		t.Error("Fold() did not return the cached fold")
	}
	// An independently built graph folds to the identical class sequence.
	h := zoo.MustBuild("inception-v3", 32)
	fg, fh := g.Fold().Entries(), h.Fold().Entries()
	if len(fg) != len(fh) {
		t.Fatalf("rebuild changed class count: %d vs %d", len(fg), len(fh))
	}
	for i := range fg {
		if fg[i].Sig != fh[i].Sig || fg[i].Phase != fh[i].Phase || fg[i].Count != fh[i].Count {
			t.Errorf("entry %d differs across rebuilds: (%s,%v,%d) vs (%s,%v,%d)", i,
				fg[i].Sig, fg[i].Phase, fg[i].Count, fh[i].Sig, fh[i].Phase, fh[i].Count)
		}
	}
}

// TestFoldAllocs pins the warm path: once computed, Fold() must not
// allocate.
func TestFoldAllocs(t *testing.T) {
	g := zoo.MustBuild("resnet-152", 32)
	g.Fold()
	if n := testing.AllocsPerRun(100, func() { g.Fold() }); n != 0 {
		t.Errorf("warm Fold() allocates %v per call, want 0", n)
	}
}

// TestFoldRatio records that folding is worthwhile on the deepest zoo
// member: ResNet-152's DAG must fold to well under half its node count.
func TestFoldRatio(t *testing.T) {
	g := zoo.MustBuild("resnet-152", 32)
	f := g.Fold()
	ratio := float64(f.Len()) / float64(g.Len())
	if ratio > 0.5 {
		t.Errorf("resnet-152 fold ratio %.2f (%d classes / %d nodes), want ≤ 0.5",
			ratio, f.Len(), g.Len())
	}
	t.Logf("resnet-152: %d nodes fold to %d classes (%.1f%%)", g.Len(), f.Len(), 100*ratio)
}

// eqExact reports a == b. Exact float equality is the contract under
// test here: the fold caches feature vectors verbatim.
func eqExact(a, b float64) bool { return a == b }
