package graph

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func testBuilder(calls *atomic.Int64) BuildFunc {
	return func(name string, batch int64) (*Graph, error) {
		calls.Add(1)
		if name == "bad" {
			return nil, errors.New("no such net")
		}
		g := New(name, batch)
		g.MustAdd("relu", reluOp(), ForwardPhase)
		return g, nil
	}
}

func TestBuildCacheMemoizes(t *testing.T) {
	var calls atomic.Int64
	c := NewBuildCache(testBuilder(&calls))

	a1, err := c.Build("a", 32)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Build("a", 32)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("same key returned distinct graphs")
	}
	// Distinct batch is a distinct key.
	a3, err := c.Build("a", 16)
	if err != nil {
		t.Fatal(err)
	}
	if a3 == a1 {
		t.Error("distinct batch shared a graph")
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("builder ran %d times, want 2", n)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 2)", hits, misses)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestBuildCacheMemoizesErrors(t *testing.T) {
	var calls atomic.Int64
	c := NewBuildCache(testBuilder(&calls))
	for i := 0; i < 3; i++ {
		if _, err := c.Build("bad", 32); err == nil {
			t.Fatal("expected error")
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("failing build ran %d times, want 1 (memoized)", n)
	}
}

// TestBuildCacheConcurrentSingleflight hammers one key from many
// goroutines and checks the builder ran exactly once and every caller
// saw the same graph. Run under -race this also audits the locking.
func TestBuildCacheConcurrentSingleflight(t *testing.T) {
	var calls atomic.Int64
	c := NewBuildCache(testBuilder(&calls))

	const goroutines = 32
	results := make([]*Graph, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			g, err := c.Build("shared", 32)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = g
		}(i)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("builder ran %d times for one key, want 1", n)
	}
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d saw a different graph", i)
		}
	}
	hits, misses := c.Stats()
	if hits+misses != goroutines || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (%d, 1)", hits, misses, goroutines-1)
	}
}

func TestBuildCacheConcurrentDistinctKeys(t *testing.T) {
	var calls atomic.Int64
	c := NewBuildCache(testBuilder(&calls))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := c.Build(fmt.Sprintf("net-%d", i), 32); err != nil {
					t.Error(err)
				}
			}(i)
		}
	}
	wg.Wait()
	if n := calls.Load(); n != 8 {
		t.Errorf("builder ran %d times, want 8", n)
	}
}
