package graph_test

import (
	"sort"
	"testing"

	"ceer/internal/graph"
	"ceer/internal/zoo"
)

// zooGraphs builds every zoo CNN once for the global-fold tests.
func zooGraphs(t *testing.T) []*graph.Graph {
	t.Helper()
	names := zoo.Names()
	graphs := make([]*graph.Graph, len(names))
	for i, name := range names {
		graphs[i] = zoo.MustBuild(name, 32)
	}
	return graphs
}

// TestGlobalFoldInvariants checks the documented GlobalFold contract
// over the whole zoo: classes ascend by signature, per-graph pairs
// ascend by class, every count is conserved, and the cross-graph dedup
// actually shrinks the table.
func TestGlobalFoldInvariants(t *testing.T) {
	graphs := zooGraphs(t)
	gf := graph.FoldAll(graphs)

	if gf.NumGraphs() != len(graphs) {
		t.Fatalf("NumGraphs() = %d, want %d", gf.NumGraphs(), len(graphs))
	}
	classes := gf.Classes()
	if len(classes) != gf.Len() {
		t.Fatalf("Len() = %d but %d classes", gf.Len(), len(classes))
	}
	if !sort.SliceIsSorted(classes, func(i, j int) bool { return classes[i].Sig < classes[j].Sig }) {
		t.Error("classes not in ascending signature order")
	}
	for i := 1; i < len(classes); i++ {
		if classes[i].Sig == classes[i-1].Sig {
			t.Errorf("duplicate class signature %q", classes[i].Sig)
		}
	}

	totalNodes, sumClassCounts := 0, 0
	for i := range classes {
		c := &classes[i]
		if c.Rep == nil {
			t.Fatalf("class %d has nil representative", i)
		}
		if got := c.Rep.Op.Signature(); got != c.Sig {
			t.Errorf("class %d signature %q but rep signs %q", i, c.Sig, got)
		}
		if c.Count < 1 || c.Graphs < 1 || c.Graphs > len(graphs) {
			t.Errorf("class %d has Count=%d Graphs=%d", i, c.Count, c.Graphs)
		}
		sumClassCounts += c.Count
	}

	pairCount := 0
	for gi, g := range graphs {
		if gf.Graph(gi) != g {
			t.Errorf("Graph(%d) is not the folded graph", gi)
		}
		pairs := gf.PerGraph(gi)
		pairCount += len(pairs)
		if !sort.SliceIsSorted(pairs, func(i, j int) bool { return pairs[i].Class < pairs[j].Class }) {
			t.Errorf("%s: per-graph pairs not in ascending class order", g.Name)
		}
		sum := 0
		perClass := map[int]bool{}
		for _, pc := range pairs {
			if pc.Class < 0 || pc.Class >= gf.Len() {
				t.Fatalf("%s: class index %d out of range", g.Name, pc.Class)
			}
			if perClass[pc.Class] {
				t.Errorf("%s: class %d appears in two pairs", g.Name, pc.Class)
			}
			perClass[pc.Class] = true
			if pc.Count < 1 {
				t.Errorf("%s: class %d count %d", g.Name, pc.Class, pc.Count)
			}
			sum += pc.Count
		}
		if sum != g.Len() {
			t.Errorf("%s: Σ pair counts = %d, want %d nodes", g.Name, sum, g.Len())
		}
		totalNodes += g.Len()
	}
	if gf.Nodes() != totalNodes {
		t.Errorf("Nodes() = %d, want %d", gf.Nodes(), totalNodes)
	}
	if sumClassCounts != totalNodes {
		t.Errorf("Σ class counts = %d, want %d", sumClassCounts, totalNodes)
	}
	if gf.Pairs() != pairCount {
		t.Errorf("Pairs() = %d, want %d", gf.Pairs(), pairCount)
	}

	// The point of the global fold: cross-model overlap must shrink the
	// table below the sum of the per-graph folds.
	perGraphClasses := 0
	for _, g := range graphs {
		perGraphClasses += g.Fold().Len()
	}
	if gf.Len() >= perGraphClasses {
		t.Errorf("global fold has %d classes; per-graph folds total %d — no cross-graph dedup",
			gf.Len(), perGraphClasses)
	}
}

// TestGlobalFoldMatchesPerGraphFolds cross-checks each graph's
// reduction against its own fold: for every (class, count) pair, the
// graph's per-graph fold must hold entries with the same signature
// totalling the same count (the global fold merges phases).
func TestGlobalFoldMatchesPerGraphFolds(t *testing.T) {
	graphs := zooGraphs(t)
	gf := graph.FoldAll(graphs)
	classes := gf.Classes()
	for gi, g := range graphs {
		bySig := map[string]int{}
		for _, e := range g.Fold().Entries() {
			bySig[string(e.Sig)] += e.Count
		}
		for _, pc := range gf.PerGraph(gi) {
			sig := string(classes[pc.Class].Sig)
			if bySig[sig] != pc.Count {
				t.Errorf("%s: class %q count %d, per-graph fold says %d",
					g.Name, sig, pc.Count, bySig[sig])
			}
			delete(bySig, sig)
		}
		for sig, n := range bySig {
			t.Errorf("%s: signature %q (count %d) missing from reduction", g.Name, sig, n)
		}
	}
}

// TestGlobalFoldOrderIndependent folds a permutation of the zoo and
// checks the class table (signatures and totals) is unchanged — the
// table depends only on the signature set.
func TestGlobalFoldOrderIndependent(t *testing.T) {
	graphs := zooGraphs(t)
	reversed := make([]*graph.Graph, len(graphs))
	for i, g := range graphs {
		reversed[len(graphs)-1-i] = g
	}
	a, b := graph.FoldAll(graphs), graph.FoldAll(reversed)
	if a.Len() != b.Len() {
		t.Fatalf("class counts differ across orders: %d vs %d", a.Len(), b.Len())
	}
	ca, cb := a.Classes(), b.Classes()
	for i := range ca {
		if ca[i].Sig != cb[i].Sig || ca[i].Count != cb[i].Count || ca[i].Graphs != cb[i].Graphs {
			t.Errorf("class %d differs across orders: (%s,%d,%d) vs (%s,%d,%d)", i,
				ca[i].Sig, ca[i].Count, ca[i].Graphs, cb[i].Sig, cb[i].Count, cb[i].Graphs)
		}
	}
	// Reductions must agree too, graph by graph.
	for gi, g := range graphs {
		pa := a.PerGraph(gi)
		pb := b.PerGraph(b.GraphIndex(g))
		if len(pa) != len(pb) {
			t.Fatalf("%s: pair counts differ across orders: %d vs %d", g.Name, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Errorf("%s: pair %d differs across orders: %+v vs %+v", g.Name, i, pa[i], pb[i])
			}
		}
	}
}

// TestGlobalFoldGraphIndex pins the pointer-identity contract of
// GraphIndex: folded graphs resolve to their position, and an
// identically-shaped rebuild (a different pointer) does not.
func TestGlobalFoldGraphIndex(t *testing.T) {
	graphs := zooGraphs(t)
	gf := graph.FoldAll(graphs)
	for gi, g := range graphs {
		if got := gf.GraphIndex(g); got != gi {
			t.Errorf("GraphIndex(%s) = %d, want %d", g.Name, got, gi)
		}
	}
	rebuilt := zoo.MustBuild(zoo.Names()[0], 32)
	if got := gf.GraphIndex(rebuilt); got != -1 {
		t.Errorf("GraphIndex(rebuilt graph) = %d, want -1 (identity is by pointer)", got)
	}
}

// TestGlobalFoldClassOf spot-checks Fold.ClassOf on a zoo graph: every
// node maps to the entry carrying its (signature, phase).
func TestGlobalFoldClassOf(t *testing.T) {
	g := zoo.MustBuild("resnet-50", 32)
	f := g.Fold()
	entries := f.Entries()
	for ni, n := range g.Nodes() {
		ci := f.ClassOf(ni)
		if ci < 0 || ci >= len(entries) {
			t.Fatalf("node %d: class index %d out of range", ni, ci)
		}
		e := &entries[ci]
		if e.Sig != n.Op.Signature() || e.Phase != n.Phase {
			t.Errorf("node %d: ClassOf → (%s,%v), node is (%s,%v)",
				ni, e.Sig, e.Phase, n.Op.Signature(), n.Phase)
		}
	}
}
