package graph

import (
	"sort"

	"ceer/internal/ops"
)

// FoldEntry is one equivalence class of a graph's fold: every node
// whose op carries one canonical signature within one training phase.
// CNN DAGs are overwhelmingly repeated identical modules (a ResNet-152
// iteration holds hundreds of structurally identical convolutions), so
// the number of classes is typically a small fraction of the node
// count — the redundancy the folded serving path exploits.
type FoldEntry struct {
	// Sig is the ops-level canonical signature shared by the class.
	Sig ops.Signature
	// Phase is the training phase shared by the class's nodes. Folding
	// per phase keeps phase-level attribution possible; predictors that
	// are phase-oblivious simply see a slightly finer partition.
	Phase Phase
	// Rep is the first (lowest-ID) node of the class; any member is
	// interchangeable for cost purposes.
	Rep *Node
	// Count is the number of node instances in the class.
	Count int
	// Features caches Rep.Op.Features(), so per-class feature vectors
	// are extracted once at fold time rather than per prediction.
	Features []float64
}

// Fold is the multiset of unique (signature, phase) classes of one
// graph, in a deterministic order (ascending signature, then phase).
// Invariants: Σ Count over Entries equals the graph's node count, every
// class's nodes have pairwise identical feature vectors, and the fold
// of an immutable graph never changes.
type Fold struct {
	entries []FoldEntry
	// classOf maps a node's position in Graph.Nodes() to the index of
	// its class in entries, so per-node consumers (attribution) can
	// reuse one evaluation per class instead of re-deriving signatures.
	classOf []int
	nodes   int
}

// Entries returns the classes ordered by (signature, phase). The slice
// is shared and cached; do not modify it.
func (f *Fold) Entries() []FoldEntry { return f.entries }

// Len returns the number of unique classes.
func (f *Fold) Len() int { return len(f.entries) }

// ClassOf returns the index into Entries of the class containing the
// i-th node of Graph.Nodes().
func (f *Fold) ClassOf(i int) int { return f.classOf[i] }

// Nodes returns the total number of nodes folded (Σ Count).
func (f *Fold) Nodes() int { return f.nodes }

// Fold returns the graph's signature fold, computing it on first use
// and caching it for the graph's lifetime. Graphs are immutable once
// construction finishes, so the cache is never invalidated; call Fold
// only after the last Add.
func (g *Graph) Fold() *Fold {
	g.foldOnce.Do(func() { g.fold = g.computeFold() })
	return g.fold
}

type foldKey struct {
	sig   ops.Signature
	phase Phase
}

func (g *Graph) computeFold() *Fold {
	f := &Fold{nodes: len(g.nodes), classOf: make([]int, len(g.nodes))}
	idx := make(map[foldKey]int, len(g.nodes)/4+1)
	for ni, n := range g.nodes {
		k := foldKey{n.Op.Signature(), n.Phase}
		if i, ok := idx[k]; ok {
			f.entries[i].Count++
			f.classOf[ni] = i
			continue
		}
		idx[k] = len(f.entries)
		f.classOf[ni] = len(f.entries)
		f.entries = append(f.entries, FoldEntry{
			Sig:      k.sig,
			Phase:    n.Phase,
			Rep:      n,
			Count:    1,
			Features: n.Op.Features(),
		})
	}
	// Sort classes by (signature, phase), tracking the permutation so
	// classOf keeps pointing at the right entry.
	order := make([]int, len(f.entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := &f.entries[order[i]], &f.entries[order[j]]
		if a.Sig != b.Sig {
			return a.Sig < b.Sig
		}
		return a.Phase < b.Phase
	})
	sorted := make([]FoldEntry, len(f.entries))
	perm := make([]int, len(f.entries)) // pre-sort index → sorted index
	for newIdx, oldIdx := range order {
		sorted[newIdx] = f.entries[oldIdx]
		perm[oldIdx] = newIdx
	}
	f.entries = sorted
	for ni := range f.classOf {
		f.classOf[ni] = perm[f.classOf[ni]]
	}
	return f
}
