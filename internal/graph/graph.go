// Package graph represents a CNN training iteration as a directed
// acyclic graph of operation instances, the same abstraction TensorFlow
// exposes through tf.Session (paper Section II, Figure 1).
//
// Each node is one ops.Op; each edge records that a node consumes the
// output tensor of another. Ceer consumes graphs purely structurally: it
// walks the nodes, reads each op's type and input sizes, and reads the
// graph's trainable-parameter count for the communication model.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ceer/internal/ops"
)

// NodeID identifies a node within one Graph.
type NodeID int

// Phase tags which part of a training iteration a node belongs to. The
// tag is informational (used in reports and DOT rendering); Ceer's
// models are phase-oblivious.
type Phase int

const (
	// InputPhase covers the input pipeline (iterator, decode, one-hot).
	InputPhase Phase = iota
	// ForwardPhase covers the forward pass.
	ForwardPhase
	// BackwardPhase covers gradient computation.
	BackwardPhase
	// UpdatePhase covers optimizer parameter updates.
	UpdatePhase
)

// String returns a short phase label.
func (p Phase) String() string {
	switch p {
	case InputPhase:
		return "input"
	case ForwardPhase:
		return "forward"
	case BackwardPhase:
		return "backward"
	case UpdatePhase:
		return "update"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Node is one operation instance in the DAG.
type Node struct {
	ID     NodeID
	Name   string
	Op     *ops.Op
	Phase  Phase
	Inputs []NodeID // producer nodes whose outputs this node consumes
}

// Graph is a CNN training-iteration DAG plus the model-level metadata
// Ceer needs (trainable parameter count, batch size).
type Graph struct {
	// Name identifies the CNN, e.g. "inception-v3".
	Name string
	// BatchSize is the per-GPU minibatch size the graph was built for.
	BatchSize int64
	// Params is the number of trainable parameters (weights) in the
	// model, the predictor of the communication-overhead model.
	Params int64

	nodes []*Node
	byID  map[NodeID]*Node

	// foldOnce/fold cache the graph's signature fold (see Fold): graphs
	// are immutable once built, so the fold is computed at most once and
	// never invalidated.
	foldOnce sync.Once
	fold     *Fold
}

// New creates an empty graph.
func New(name string, batchSize int64) *Graph {
	return &Graph{Name: name, BatchSize: batchSize, byID: make(map[NodeID]*Node)}
}

// Add appends a node for op with the given name, phase, and producer
// dependencies, returning its ID. Dependencies must already exist.
func (g *Graph) Add(name string, op *ops.Op, phase Phase, deps ...NodeID) (NodeID, error) {
	if op == nil {
		return 0, errors.New("graph: nil op")
	}
	for _, d := range deps {
		if _, ok := g.byID[d]; !ok {
			return 0, fmt.Errorf("graph: node %q depends on unknown node %d", name, d)
		}
	}
	id := NodeID(len(g.nodes))
	n := &Node{ID: id, Name: name, Op: op, Phase: phase, Inputs: append([]NodeID(nil), deps...)}
	g.nodes = append(g.nodes, n)
	g.byID[id] = n
	return id, nil
}

// MustAdd is Add for programmatically built graphs where dependency IDs
// are known-valid; it panics on error.
func (g *Graph) MustAdd(name string, op *ops.Op, phase Phase, deps ...NodeID) NodeID {
	id, err := g.Add(name, op, phase, deps...)
	if err != nil {
		panic(err)
	}
	return id
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id NodeID) *Node {
	return g.byID[id]
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Nodes returns the nodes in insertion order. The slice is shared; do
// not modify it.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Validate checks that the graph is a well-formed DAG: every node's op
// validates, every dependency exists, and insertion order is a valid
// topological order (Add enforces this by construction, making cycles
// impossible; Validate re-checks defensively).
func (g *Graph) Validate() error {
	if g.BatchSize <= 0 {
		return fmt.Errorf("graph %q: non-positive batch size %d", g.Name, g.BatchSize)
	}
	for _, n := range g.nodes {
		if err := n.Op.Validate(); err != nil {
			return fmt.Errorf("graph %q node %q: %w", g.Name, n.Name, err)
		}
		for _, d := range n.Inputs {
			if d >= n.ID {
				return fmt.Errorf("graph %q node %q: dependency %d not before node %d", g.Name, n.Name, d, n.ID)
			}
			if _, ok := g.byID[d]; !ok {
				return fmt.Errorf("graph %q node %q: unknown dependency %d", g.Name, n.Name, d)
			}
		}
	}
	return nil
}

// TopoOrder returns the node IDs in a valid topological order. Because
// Add only accepts already-present dependencies, insertion order is one.
func (g *Graph) TopoOrder() []NodeID {
	out := make([]NodeID, len(g.nodes))
	for i, n := range g.nodes {
		out[i] = n.ID
	}
	return out
}

// CountByType returns the number of node instances per operation type.
func (g *Graph) CountByType() map[ops.Type]int {
	out := make(map[ops.Type]int)
	for _, n := range g.nodes {
		out[n.Op.Type]++
	}
	return out
}

// CountByClass returns the number of node instances per execution class
// — the n_h, n_l, n_c of Section IV-B.
func (g *Graph) CountByClass() map[ops.Class]int {
	out := make(map[ops.Class]int)
	for _, n := range g.nodes {
		out[n.Op.Class()]++
	}
	return out
}

// UniqueTypes returns the distinct operation types present, sorted.
func (g *Graph) UniqueTypes() []ops.Type {
	seen := g.CountByType()
	out := make([]ops.Type, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalFLOPs sums the per-op FLOP estimates over the whole iteration.
func (g *Graph) TotalFLOPs() int64 {
	var total int64
	for _, n := range g.nodes {
		total += n.Op.FLOPs()
	}
	return total
}

// Stats summarizes a graph for reports.
type Stats struct {
	Name        string
	Nodes       int
	UniqueTypes int
	Heavy       int
	Light       int
	CPU         int
	Params      int64
	TotalFLOPs  int64
}

// Summarize computes the graph's Stats.
func (g *Graph) Summarize() Stats {
	byClass := g.CountByClass()
	return Stats{
		Name:        g.Name,
		Nodes:       g.Len(),
		UniqueTypes: len(g.CountByType()),
		Heavy:       byClass[ops.HeavyGPU],
		Light:       byClass[ops.LightGPU],
		CPU:         byClass[ops.CPU],
		Params:      g.Params,
		TotalFLOPs:  g.TotalFLOPs(),
	}
}

// DOT renders the graph in Graphviz DOT format (paper Figure 1 shows
// such a rendering for Inception-v3). Heavy ops are drawn as filled
// boxes, light ops as plain boxes, CPU ops as ellipses.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=TB;\n  node [fontsize=10];\n")
	for _, n := range g.nodes {
		shape, style := "box", ""
		switch n.Op.Class() {
		case ops.HeavyGPU:
			style = ` style=filled fillcolor="#cde3f7"`
		case ops.CPU:
			shape = "ellipse"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s%s];\n", n.ID, fmt.Sprintf("%s\\n%s", n.Name, n.Op.Type), shape, style)
	}
	for _, n := range g.nodes {
		for _, d := range n.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", d, n.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
