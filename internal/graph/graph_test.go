package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"ceer/internal/ops"
	"ceer/internal/tensor"
)

func reluOp() *ops.Op {
	in := tensor.F32(4, 8, 8, 16)
	return &ops.Op{Type: ops.Relu, Inputs: []tensor.Spec{in}, Output: in}
}

func cpuOp() *ops.Op {
	return &ops.Op{Type: ops.IteratorGetNext, Output: tensor.F32(4, 8, 8, 16)}
}

func buildChain(t *testing.T, n int) *Graph {
	t.Helper()
	g := New("chain", 4)
	prev, err := g.Add("input", cpuOp(), InputPhase)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		prev, err = g.Add("relu", reluOp(), ForwardPhase, prev)
		if err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddAndLookup(t *testing.T) {
	g := buildChain(t, 3)
	if g.Len() != 4 {
		t.Errorf("Len = %d, want 4", g.Len())
	}
	if g.Node(0) == nil || g.Node(0).Name != "input" {
		t.Error("Node(0) lookup failed")
	}
	if g.Node(99) != nil {
		t.Error("unknown ID should return nil")
	}
}

func TestAddRejectsUnknownDependency(t *testing.T) {
	g := New("g", 1)
	if _, err := g.Add("bad", reluOp(), ForwardPhase, 5); err == nil {
		t.Error("dependency on unknown node should fail")
	}
	if _, err := g.Add("nil", nil, ForwardPhase); err == nil {
		t.Error("nil op should fail")
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAdd should panic on error")
		}
	}()
	New("g", 1).MustAdd("bad", reluOp(), ForwardPhase, 7)
}

func TestValidate(t *testing.T) {
	g := buildChain(t, 2)
	if err := g.Validate(); err != nil {
		t.Errorf("valid graph failed validation: %v", err)
	}
	bad := New("bad", 0)
	bad.MustAdd("x", reluOp(), ForwardPhase)
	if err := bad.Validate(); err == nil {
		t.Error("zero batch size should fail validation")
	}
	// A graph with an op missing its window fails node validation.
	g2 := New("g2", 4)
	w := tensor.Win(3, 1, tensor.Same)
	_ = w
	badConv := &ops.Op{Type: ops.Conv2D,
		Inputs: []tensor.Spec{tensor.F32(1, 4, 4, 1), tensor.F32(3, 3, 1, 1)},
		Output: tensor.F32(1, 4, 4, 1)}
	g2.MustAdd("conv", badConv, ForwardPhase)
	if err := g2.Validate(); err == nil {
		t.Error("invalid op should fail graph validation")
	}
}

func TestTopoOrder(t *testing.T) {
	g := buildChain(t, 5)
	order := g.TopoOrder()
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, n := range g.Nodes() {
		for _, d := range n.Inputs {
			if pos[d] >= pos[n.ID] {
				t.Errorf("dependency %d not before node %d in topo order", d, n.ID)
			}
		}
	}
}

func TestCounts(t *testing.T) {
	g := buildChain(t, 3)
	byType := g.CountByType()
	if byType[ops.Relu] != 3 || byType[ops.IteratorGetNext] != 1 {
		t.Errorf("CountByType = %v", byType)
	}
	byClass := g.CountByClass()
	if byClass[ops.HeavyGPU] != 3 || byClass[ops.CPU] != 1 {
		t.Errorf("CountByClass = %v", byClass)
	}
	uniq := g.UniqueTypes()
	if len(uniq) != 2 {
		t.Errorf("UniqueTypes = %v", uniq)
	}
	for i := 1; i < len(uniq); i++ {
		if uniq[i] < uniq[i-1] {
			t.Error("UniqueTypes not sorted")
		}
	}
}

func TestSummarize(t *testing.T) {
	g := buildChain(t, 2)
	g.Params = 1234
	s := g.Summarize()
	if s.Nodes != 3 || s.Heavy != 2 || s.CPU != 1 || s.Light != 0 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Params != 1234 {
		t.Errorf("Params = %d", s.Params)
	}
	if s.TotalFLOPs != g.TotalFLOPs() || s.TotalFLOPs <= 0 {
		t.Errorf("TotalFLOPs = %d", s.TotalFLOPs)
	}
}

func TestTotalFLOPs(t *testing.T) {
	g := buildChain(t, 2)
	want := 2 * reluOp().FLOPs()
	want += cpuOp().FLOPs()
	if got := g.TotalFLOPs(); got != want {
		t.Errorf("TotalFLOPs = %d, want %d", got, want)
	}
}

func TestDOT(t *testing.T) {
	g := buildChain(t, 1)
	dot := g.DOT()
	for _, want := range []string{"digraph", "n0 -> n1", "Relu", "fillcolor"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if !strings.HasSuffix(dot, "}\n") {
		t.Error("DOT not terminated")
	}
}

func TestPhaseString(t *testing.T) {
	for p, want := range map[Phase]string{
		InputPhase: "input", ForwardPhase: "forward",
		BackwardPhase: "backward", UpdatePhase: "update", Phase(9): "phase(9)",
	} {
		if p.String() != want {
			t.Errorf("Phase(%d).String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

// Property: random layered DAGs built through Add always validate and
// their topo order respects every edge.
func TestRandomDAGProperty(t *testing.T) {
	f := func(sizes []uint8, edgeSeed uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 6 {
			sizes = sizes[:6]
		}
		g := New("rand", 2)
		var prevLayer []NodeID
		seed := uint32(edgeSeed)
		next := func(n int) int {
			seed = seed*1664525 + 1013904223
			return int(seed>>16) % n
		}
		for _, szRaw := range sizes {
			sz := int(szRaw%4) + 1
			var layer []NodeID
			for i := 0; i < sz; i++ {
				var deps []NodeID
				if len(prevLayer) > 0 {
					deps = append(deps, prevLayer[next(len(prevLayer))])
				}
				id, err := g.Add("n", reluOp(), ForwardPhase, deps...)
				if err != nil {
					return false
				}
				layer = append(layer, id)
			}
			prevLayer = layer
		}
		if err := g.Validate(); err != nil {
			return false
		}
		order := g.TopoOrder()
		pos := make(map[NodeID]int, len(order))
		for i, id := range order {
			pos[id] = i
		}
		for _, n := range g.Nodes() {
			for _, d := range n.Inputs {
				if pos[d] >= pos[n.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEstimateMemory(t *testing.T) {
	g := buildChain(t, 3)
	g.Params = 1_000_000
	est := g.EstimateMemory()
	if est.WeightsBytes != 4_000_000 {
		t.Errorf("weights bytes = %d", est.WeightsBytes)
	}
	if est.OptimizerBytes != 8_000_000 {
		t.Errorf("optimizer bytes = %d", est.OptimizerBytes)
	}
	// Three forward relu outputs of 4*8*8*16 floats each.
	wantAct := int64(3 * 4 * 8 * 8 * 16 * 4)
	if est.ActivationBytes != wantAct {
		t.Errorf("activation bytes = %d, want %d", est.ActivationBytes, wantAct)
	}
	if est.TotalBytes() != est.WeightsBytes+est.OptimizerBytes+est.ActivationBytes {
		t.Error("total inconsistent")
	}
	if est.TotalGB() <= 0 {
		t.Error("TotalGB non-positive")
	}
}
