package graph

// MemoryEstimate approximates the GPU-resident footprint of training
// one iteration of the graph. CNN training under a momentum optimizer
// keeps three kinds of state on the device:
//
//   - the weights themselves,
//   - the optimizer state (one momentum slot per weight) plus a
//     gradient buffer,
//   - every forward activation, retained for the backward pass.
//
// The estimate is intentionally simple (no operator workspace, no
// allocator fragmentation) but captures the first-order effect the
// instance tables imply: an 8 GB M60 cannot train what a 16 GB V100
// can at the same batch size.
type MemoryEstimate struct {
	// WeightsBytes is the parameter storage (fp32).
	WeightsBytes int64
	// OptimizerBytes covers the momentum slot and the gradient buffer.
	OptimizerBytes int64
	// ActivationBytes sums the forward-pass output tensors retained for
	// the backward pass.
	ActivationBytes int64
}

// TotalBytes returns the combined estimate.
func (m MemoryEstimate) TotalBytes() int64 {
	return m.WeightsBytes + m.OptimizerBytes + m.ActivationBytes
}

// TotalGB returns the combined estimate in gigabytes (10^9 bytes).
func (m MemoryEstimate) TotalGB() float64 { return float64(m.TotalBytes()) / 1e9 }

// EstimateMemory computes the training-memory footprint of the graph.
func (g *Graph) EstimateMemory() MemoryEstimate {
	const bytesPerParam = 4
	est := MemoryEstimate{
		WeightsBytes:   g.Params * bytesPerParam,
		OptimizerBytes: 2 * g.Params * bytesPerParam,
	}
	for _, n := range g.nodes {
		if n.Phase == ForwardPhase {
			est.ActivationBytes += n.Op.Output.Bytes()
		}
	}
	return est
}
