package graph

import "sync"

// BuildFunc constructs a named graph at a per-GPU batch size; zoo.Build
// satisfies it.
type BuildFunc func(name string, batch int64) (*Graph, error)

type buildKey struct {
	name  string
	batch int64
}

type buildEntry struct {
	once sync.Once
	g    *Graph
	err  error
}

// BuildCache memoizes graph construction per (name, batch) so one
// measurement campaign builds each architecture exactly once, however
// many (GPU, k) tasks consume it. It is safe for concurrent use:
// concurrent Build calls for the same key block until the single
// construction finishes, and the returned *Graph is shared — graphs
// are immutable after construction, so readers need no locking.
type BuildCache struct {
	build BuildFunc

	mu      sync.Mutex
	entries map[buildKey]*buildEntry
	hits    int
	misses  int
}

// NewBuildCache wraps a builder in a memoizing, concurrency-safe cache.
func NewBuildCache(build BuildFunc) *BuildCache {
	return &BuildCache{build: build, entries: make(map[buildKey]*buildEntry)}
}

// Build returns the cached graph for (name, batch), constructing it on
// first use. Both successful graphs and construction errors are
// memoized, so a failing architecture fails identically on every call.
func (c *BuildCache) Build(name string, batch int64) (*Graph, error) {
	key := buildKey{name, batch}
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		e = &buildEntry{}
		c.entries[key] = e
		c.misses++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.g, e.err = c.build(name, batch) })
	return e.g, e.err
}

// Stats returns the cumulative hit and miss counts. The miss count
// equals the number of distinct (name, batch) keys ever requested.
func (c *BuildCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of distinct cached entries.
func (c *BuildCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
