package ops

import (
	"strings"
	"testing"

	"ceer/internal/tensor"
)

// sigConv builds a fresh Conv2D instance; separate calls must produce
// distinct *Op values with identical signatures.
func sigConv() *Op {
	w := tensor.Win(3, 1, tensor.Same)
	return &Op{
		Type:   Conv2D,
		Inputs: []tensor.Spec{tensor.F32(32, 224, 224, 3), tensor.F32(3, 3, 3, 64)},
		Output: tensor.F32(32, 224, 224, 64),
		Window: &w,
	}
}

func TestSignatureDeterministic(t *testing.T) {
	a, b := sigConv(), sigConv()
	if a == b {
		t.Fatal("test bug: same op instance")
	}
	if a.Signature() != b.Signature() {
		t.Errorf("identical ops disagree: %q vs %q", a.Signature(), b.Signature())
	}
	if a.Signature() != a.Signature() {
		t.Error("signature not stable across calls")
	}
}

func TestSignatureRendering(t *testing.T) {
	// Characterize the documented encoding on the doc comment's example
	// (Float32 = dtype code 0, Same = padding code 0).
	got := string(sigConv().Signature())
	want := "Conv2D|0[32,224,224,3];0[3,3,3,64]>0[32,224,224,64]|w3x3s1x1p0"
	if got != want {
		t.Errorf("signature = %q, want %q", got, want)
	}
}

// TestSignatureDiscriminates flips each field that affects cost and
// checks the signature changes: equal signatures must imply identical
// predictions, so no cost-relevant field may be dropped.
func TestSignatureDiscriminates(t *testing.T) {
	base := sigConv().Signature()
	mutate := func(name string, f func(o *Op)) {
		o := sigConv()
		f(o)
		if o.Signature() == base {
			t.Errorf("%s: signature unchanged (%q)", name, base)
		}
	}
	mutate("type", func(o *Op) { o.Type = Conv2DBackpropInput })
	mutate("input dim", func(o *Op) { o.Inputs[0] = tensor.F32(32, 224, 224, 4) })
	mutate("input dtype", func(o *Op) { o.Inputs[0].DType = tensor.Int32 })
	mutate("input order", func(o *Op) { o.Inputs[0], o.Inputs[1] = o.Inputs[1], o.Inputs[0] })
	mutate("dropped input", func(o *Op) { o.Inputs = o.Inputs[:1] })
	mutate("output dim", func(o *Op) { o.Output = tensor.F32(32, 112, 112, 64) })
	mutate("kernel", func(o *Op) { o.Window.KernelW = 5 })
	mutate("stride", func(o *Op) { o.Window.StrideH = 2 })
	mutate("padding", func(o *Op) { o.Window.Padding = tensor.Valid })
	mutate("window removed", func(o *Op) { o.Window = nil })
}

// TestSignatureRankVsSplit guards against delimiter ambiguity: a [6]
// input and a [2,3] input must not collide, nor may shape digits bleed
// into neighboring fields.
func TestSignatureRankVsSplit(t *testing.T) {
	a := &Op{Type: Relu, Inputs: []tensor.Spec{tensor.F32(6)}, Output: tensor.F32(6)}
	b := &Op{Type: Relu, Inputs: []tensor.Spec{tensor.F32(2, 3)}, Output: tensor.F32(6)}
	if a.Signature() == b.Signature() {
		t.Errorf("rank-1 [6] and rank-2 [2,3] collide: %q", a.Signature())
	}
	// Two rank-1 inputs vs one rank-2 input with the same digit stream.
	c := &Op{Type: AddN, Inputs: []tensor.Spec{tensor.F32(1), tensor.F32(2)}, Output: tensor.F32(2)}
	d := &Op{Type: AddN, Inputs: []tensor.Spec{tensor.F32(1, 2)}, Output: tensor.F32(2)}
	if c.Signature() == d.Signature() {
		t.Errorf("[1];[2] and [1,2] collide: %q", c.Signature())
	}
}

// TestSignatureImpliesEqualCost samples cost-relevant derived quantities:
// ops agreeing on signature must agree on Features, FLOPs, and BytesMoved.
func TestSignatureImpliesEqualCost(t *testing.T) {
	a, b := sigConv(), sigConv()
	if a.Signature() != b.Signature() {
		t.Fatal("setup: signatures differ")
	}
	fa, fb := a.Features(), b.Features()
	if len(fa) != len(fb) {
		t.Fatalf("feature arity differs: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if !eqExact(fa[i], fb[i]) {
			t.Errorf("feature %d differs: %v vs %v", i, fa[i], fb[i])
		}
	}
	if a.FLOPs() != b.FLOPs() || a.BytesMoved() != b.BytesMoved() {
		t.Error("derived costs differ for equal signatures")
	}
}

func TestSignatureTypePrefix(t *testing.T) {
	// The type is recoverable as the prefix up to the first '|' — the
	// property the fold's contiguous-type grouping relies on.
	sig := string(sigConv().Signature())
	if !strings.HasPrefix(sig, "Conv2D|") {
		t.Errorf("signature %q does not start with its type", sig)
	}
}

func BenchmarkSignature(b *testing.B) {
	o := sigConv()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = o.Signature()
	}
}
