package ops

import (
	"sort"
	"testing"
	"testing/quick"

	"ceer/internal/tensor"
)

func TestCatalogConsistency(t *testing.T) {
	for _, tp := range AllTypes() {
		m, ok := Lookup(tp)
		if !ok {
			t.Fatalf("AllTypes returned unknown type %q", tp)
		}
		if m.Type != tp {
			t.Errorf("catalog entry for %q reports type %q", tp, m.Type)
		}
		if m.FeatureArity < 2 || m.FeatureArity > 6 {
			t.Errorf("%q has unexpected feature arity %d", tp, m.FeatureArity)
		}
	}
}

func TestHeavyTypesCount(t *testing.T) {
	heavy := HeavyTypes()
	// The paper's 20 heavy ops plus DepthwiseConv2dNative, which exists
	// in the catalog solely to exercise the unseen-heavy-op path.
	if len(heavy) != 21 {
		t.Errorf("heavy op count = %d, want 21 (paper Fig. 2's 20 + depthwise)", len(heavy))
	}
	if !sort.SliceIsSorted(heavy, func(i, j int) bool { return heavy[i] < heavy[j] }) {
		t.Error("HeavyTypes not sorted")
	}
	want := map[Type]bool{
		Conv2D: true, Conv2DBackpropFilter: true, Conv2DBackpropInput: true,
		MaxPool: true, MaxPoolGrad: true, AvgPool: true, AvgPoolGrad: true,
		FusedBatchNormV3: true, FusedBatchNormGradV3: true,
		Relu: true, ReluGrad: true, BiasAdd: true, BiasAddGrad: true,
		AddV2: true, AddN: true, MatMul: true, Mul: true,
		Transpose: true, ConcatV2: true, Slice: true,
		DepthwiseConv2D: true,
	}
	for _, h := range heavy {
		if !want[h] {
			t.Errorf("unexpected heavy type %q", h)
		}
	}
}

func TestTypesByClassPartition(t *testing.T) {
	total := len(TypesByClass(HeavyGPU)) + len(TypesByClass(LightGPU)) + len(TypesByClass(CPU))
	if total != len(AllTypes()) {
		t.Errorf("classes partition %d types, catalog has %d", total, len(AllTypes()))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("Bogus"); ok {
		t.Error("Lookup should miss unknown type")
	}
	if Known("Bogus") {
		t.Error("Known should be false for unknown type")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup should panic on unknown type")
		}
	}()
	MustLookup("Bogus")
}

func TestClassAndKindStrings(t *testing.T) {
	if HeavyGPU.String() != "heavy-gpu" || LightGPU.String() != "light-gpu" || CPU.String() != "cpu" {
		t.Error("class labels wrong")
	}
	if Class(9).String() == "" || ResourceKind(9).String() == "" {
		t.Error("unknown enum values should still render")
	}
	if ComputeBound.String() != "compute" || MemoryBound.String() != "memory" || OverheadBound.String() != "overhead" {
		t.Error("kind labels wrong")
	}
}

func convOp(batch int64) *Op {
	w := tensor.Win(3, 1, tensor.Same)
	in := tensor.F32(batch, 56, 56, 64)
	filter := tensor.F32(3, 3, 64, 128)
	out := tensor.F32(batch, 56, 56, 128)
	return &Op{Type: Conv2D, Inputs: []tensor.Spec{in, filter}, Output: out, Window: &w}
}

func TestConvOpValidateAndCosts(t *testing.T) {
	op := convOp(32)
	if err := op.Validate(); err != nil {
		t.Fatal(err)
	}
	wantFLOPs := int64(2) * 32 * 56 * 56 * 128 * 3 * 3 * 64
	if got := op.FLOPs(); got != wantFLOPs {
		t.Errorf("Conv2D FLOPs = %d, want %d", got, wantFLOPs)
	}
	if op.InputBytes() != (32*56*56*64+3*3*64*128)*4 {
		t.Errorf("InputBytes = %d", op.InputBytes())
	}
	if op.OutputBytes() != 32*56*56*128*4 {
		t.Errorf("OutputBytes = %d", op.OutputBytes())
	}
	if op.BytesMoved() != op.InputBytes()+op.OutputBytes() {
		t.Error("BytesMoved != in+out")
	}
	f := op.Features()
	if len(f) != 6 {
		t.Fatalf("Conv2D features len = %d", len(f))
	}
	if f[4] != 0 || f[5] != 0 {
		t.Errorf("3x3 conv regime indicators = %v,%v, want 0,0", f[4], f[5])
	}
	if !eqExact(f[0], float64(32*56*56*64*4)) || !eqExact(f[1], float64(3*3*64*128*4)) {
		t.Errorf("Conv2D features = %v", f)
	}
	if !eqExact(f[3], float64(3*3*64)) {
		t.Errorf("Conv2D MAC depth = %v, want %v", f[3], 3*3*64)
	}
}

func TestConvBackpropFLOPsMatchForward(t *testing.T) {
	w := tensor.Win(3, 1, tensor.Same)
	x := tensor.F32(8, 28, 28, 32)
	filter := tensor.F32(3, 3, 32, 64)
	dy := tensor.F32(8, 28, 28, 64)

	fwd := &Op{Type: Conv2D, Inputs: []tensor.Spec{x, filter}, Output: dy, Window: &w}
	dIn := &Op{Type: Conv2DBackpropInput, Inputs: []tensor.Spec{filter, dy}, Output: x, Window: &w}
	dW := &Op{Type: Conv2DBackpropFilter, Inputs: []tensor.Spec{x, dy}, Output: filter, Window: &w}

	for _, op := range []*Op{dIn, dW} {
		if err := op.Validate(); err != nil {
			t.Fatal(err)
		}
		if op.FLOPs() != fwd.FLOPs() {
			t.Errorf("%s FLOPs = %d, want forward %d", op.Type, op.FLOPs(), fwd.FLOPs())
		}
	}
}

func TestPoolOps(t *testing.T) {
	w := tensor.Win(2, 2, tensor.Valid)
	in := tensor.F32(4, 8, 8, 16)
	out := tensor.F32(4, 4, 4, 16)
	pool := &Op{Type: MaxPool, Inputs: []tensor.Spec{in}, Output: out, Window: &w}
	if err := pool.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := pool.FLOPs(); got != 4*4*4*16*4 {
		t.Errorf("MaxPool FLOPs = %d", got)
	}
	f := pool.Features()
	if len(f) != 3 || !eqExact(f[2], 4) {
		t.Errorf("pool features = %v", f)
	}

	grad := &Op{Type: MaxPoolGrad, Inputs: []tensor.Spec{in, out, out}, Output: in, Window: &w}
	if err := grad.Validate(); err != nil {
		t.Fatal(err)
	}
	if grad.FLOPs() <= 0 {
		t.Error("MaxPoolGrad FLOPs should be positive")
	}
}

func TestMatMulOp(t *testing.T) {
	a := tensor.F32(32, 4096)
	b := tensor.F32(4096, 1000)
	out := tensor.F32(32, 1000)
	op := &Op{Type: MatMul, Inputs: []tensor.Spec{a, b}, Output: out}
	if err := op.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := op.FLOPs(); got != 2*32*4096*1000 {
		t.Errorf("MatMul FLOPs = %d", got)
	}
	if len(op.Features()) != 3 {
		t.Error("MatMul features should have arity 3")
	}
}

func TestElementwiseOps(t *testing.T) {
	in := tensor.F32(32, 56, 56, 64)
	relu := &Op{Type: Relu, Inputs: []tensor.Spec{in}, Output: in}
	if err := relu.Validate(); err != nil {
		t.Fatal(err)
	}
	if relu.FLOPs() != in.Elements() {
		t.Errorf("Relu FLOPs = %d, want %d", relu.FLOPs(), in.Elements())
	}
	if len(relu.Features()) != 2 {
		t.Error("Relu features should have arity 2")
	}

	bn := &Op{Type: FusedBatchNormV3, Inputs: []tensor.Spec{in, tensor.F32(64), tensor.F32(64)}, Output: in}
	if bn.FLOPs() != in.Elements()*8 {
		t.Errorf("BN FLOPs = %d", bn.FLOPs())
	}

	addN := &Op{Type: AddN, Inputs: []tensor.Spec{in, in, in}, Output: in}
	if addN.FLOPs() != in.Elements()*2 {
		t.Errorf("AddN(3) FLOPs = %d, want %d", addN.FLOPs(), in.Elements()*2)
	}
}

func TestSoftmaxXentFLOPs(t *testing.T) {
	logits := tensor.F32(32, 1000)
	op := &Op{Type: SoftmaxXent, Inputs: []tensor.Spec{logits, logits}, Output: tensor.F32(32)}
	if got := op.FLOPs(); got != 32*1000*6 {
		t.Errorf("SoftmaxXent FLOPs = %d", got)
	}
}

func TestValidateRejects(t *testing.T) {
	w := tensor.Win(3, 1, tensor.Same)
	cases := []*Op{
		{Type: "Bogus", Output: tensor.F32(1)},
		{Type: Relu, Inputs: []tensor.Spec{tensor.F32(1)}, Output: tensor.SpecOf(tensor.NewShape(0), tensor.Float32)},
		{Type: Relu, Inputs: []tensor.Spec{tensor.SpecOf(tensor.NewShape(-1), tensor.Float32)}, Output: tensor.F32(1)},
		{Type: Conv2D, Inputs: []tensor.Spec{tensor.F32(1, 4, 4, 1), tensor.F32(3, 3, 1, 1)}, Output: tensor.F32(1, 4, 4, 1)}, // missing window
		{Type: Conv2D, Inputs: []tensor.Spec{tensor.F32(1, 4, 4, 1), tensor.F32(3, 3, 1, 1)}, Output: tensor.F32(1, 4, 4, 1), Window: &tensor.Window{}},
		{Type: Relu, Output: tensor.F32(1)}, // no inputs
	}
	for i, op := range cases {
		if err := op.Validate(); err == nil {
			t.Errorf("case %d should fail validation: %s", i, op)
		}
	}
	_ = w
}

func TestOpString(t *testing.T) {
	op := &Op{Type: Relu, Inputs: []tensor.Spec{tensor.F32(2, 2)}, Output: tensor.F32(2, 2)}
	want := "Relu(float32[2x2]) -> float32[2x2]"
	if got := op.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: Conv2D FLOPs scale linearly with batch size.
func TestConvFLOPsBatchProperty(t *testing.T) {
	f := func(bRaw uint8) bool {
		b := int64(bRaw%16) + 1
		return convOp(b).FLOPs() == b*convOp(1).FLOPs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: feature vectors always match the catalogued arity and are
// non-negative.
func TestFeatureArityProperty(t *testing.T) {
	mk := func(tp Type, b int64) *Op {
		in := tensor.F32(b, 14, 14, 32)
		switch tp {
		case Conv2D:
			return convOp(b)
		case MatMul:
			return &Op{Type: MatMul, Inputs: []tensor.Spec{tensor.F32(b, 64), tensor.F32(64, 10)}, Output: tensor.F32(b, 10)}
		case MaxPool, AvgPool:
			w := tensor.Win(2, 2, tensor.Valid)
			return &Op{Type: tp, Inputs: []tensor.Spec{in}, Output: tensor.F32(b, 7, 7, 32), Window: &w}
		default:
			return &Op{Type: tp, Inputs: []tensor.Spec{in}, Output: in}
		}
	}
	types := []Type{Conv2D, MatMul, MaxPool, AvgPool, Relu, AddV2, BiasAdd, Identity, IteratorGetNext}
	f := func(bRaw, tRaw uint8) bool {
		b := int64(bRaw%8) + 1
		tp := types[int(tRaw)%len(types)]
		op := mk(tp, b)
		feats := op.Features()
		if len(feats) != MustLookup(tp).FeatureArity {
			return false
		}
		for _, v := range feats {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHeavyOpCostTable exercises FLOPs, BytesMoved, and Features for a
// realistic instance of every heavy type in one table.
func TestHeavyOpCostTable(t *testing.T) {
	w3 := tensor.Win(3, 1, tensor.Same)
	w2 := tensor.Win(2, 2, tensor.Valid)
	act := tensor.F32(8, 28, 28, 64)
	half := tensor.F32(8, 14, 14, 64)
	filt := tensor.F32(3, 3, 64, 64)
	dwFilt := tensor.F32(3, 3, 64, 1)
	perC := tensor.F32(64)

	cases := []struct {
		op        *Op
		wantFLOPs int64
	}{
		{&Op{Type: Conv2D, Inputs: []tensor.Spec{act, filt}, Output: act, Window: &w3},
			2 * 8 * 28 * 28 * 64 * 9 * 64},
		{&Op{Type: Conv2DBackpropInput, Inputs: []tensor.Spec{filt, act}, Output: act, Window: &w3},
			2 * 8 * 28 * 28 * 64 * 9 * 64},
		{&Op{Type: Conv2DBackpropFilter, Inputs: []tensor.Spec{act, act}, Output: filt, Window: &w3},
			2 * 8 * 28 * 28 * 64 * 9 * 64},
		{&Op{Type: DepthwiseConv2D, Inputs: []tensor.Spec{act, dwFilt}, Output: act, Window: &w3},
			2 * 8 * 28 * 28 * 64 * 9},
		{&Op{Type: MatMul, Inputs: []tensor.Spec{tensor.F32(8, 64), tensor.F32(64, 10)}, Output: tensor.F32(8, 10)},
			2 * 8 * 64 * 10},
		{&Op{Type: MaxPool, Inputs: []tensor.Spec{act}, Output: half, Window: &w2},
			8 * 14 * 14 * 64 * 4},
		{&Op{Type: AvgPool, Inputs: []tensor.Spec{act}, Output: half, Window: &w2},
			8 * 14 * 14 * 64 * 4},
		{&Op{Type: MaxPoolGrad, Inputs: []tensor.Spec{act, half, half}, Output: act, Window: &w2},
			8 * 28 * 28 * 64 * 4},
		{&Op{Type: AvgPoolGrad, Inputs: []tensor.Spec{half}, Output: act, Window: &w2},
			8 * 28 * 28 * 64 * 4},
		{&Op{Type: FusedBatchNormV3, Inputs: []tensor.Spec{act, perC, perC}, Output: act},
			8 * 28 * 28 * 64 * 8},
		{&Op{Type: FusedBatchNormGradV3, Inputs: []tensor.Spec{act, act, perC}, Output: act},
			8 * 28 * 28 * 64 * 11},
		{&Op{Type: Relu, Inputs: []tensor.Spec{act}, Output: act}, 8 * 28 * 28 * 64},
		{&Op{Type: ReluGrad, Inputs: []tensor.Spec{act, act}, Output: act}, 8 * 28 * 28 * 64},
		{&Op{Type: BiasAdd, Inputs: []tensor.Spec{act, perC}, Output: act}, 8 * 28 * 28 * 64},
		{&Op{Type: BiasAddGrad, Inputs: []tensor.Spec{act}, Output: perC}, 64},
		{&Op{Type: AddV2, Inputs: []tensor.Spec{act, act}, Output: act}, 8 * 28 * 28 * 64},
		{&Op{Type: AddN, Inputs: []tensor.Spec{act, act, act}, Output: act}, 2 * 8 * 28 * 28 * 64},
		{&Op{Type: Mul, Inputs: []tensor.Spec{act, tensor.F32(1)}, Output: act}, 8 * 28 * 28 * 64},
		{&Op{Type: Transpose, Inputs: []tensor.Spec{tensor.F32(64, 128)}, Output: tensor.F32(128, 64)}, 128 * 64},
		{&Op{Type: ConcatV2, Inputs: []tensor.Spec{act, act}, Output: tensor.F32(8, 28, 28, 128)}, 8 * 28 * 28 * 128},
		{&Op{Type: Slice, Inputs: []tensor.Spec{tensor.F32(8, 28, 28, 128)}, Output: act}, 8 * 28 * 28 * 64},
	}
	covered := map[Type]bool{}
	for _, c := range cases {
		covered[c.op.Type] = true
		if err := c.op.Validate(); err != nil {
			t.Errorf("%s: %v", c.op.Type, err)
			continue
		}
		if got := c.op.FLOPs(); got != c.wantFLOPs {
			t.Errorf("%s FLOPs = %d, want %d", c.op.Type, got, c.wantFLOPs)
		}
		if c.op.BytesMoved() != c.op.InputBytes()+c.op.OutputBytes() {
			t.Errorf("%s BytesMoved inconsistent", c.op.Type)
		}
		feats := c.op.Features()
		if len(feats) != MustLookup(c.op.Type).FeatureArity {
			t.Errorf("%s features arity %d, want %d", c.op.Type, len(feats), MustLookup(c.op.Type).FeatureArity)
		}
	}
	for _, h := range HeavyTypes() {
		if !covered[h] {
			t.Errorf("heavy type %s not covered by the cost table", h)
		}
	}
}

// eqExact reports a == b. Exact float equality is the contract under
// test here: feature encodings are integer-valued floats
// computed exactly.
func eqExact(a, b float64) bool { return a == b }
