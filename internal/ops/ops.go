// Package ops defines the vocabulary of CNN compute operations that
// appear in the training DAGs: their names (matching TensorFlow's
// operation types), their execution class (heavy GPU, light GPU, or
// CPU-resident), their resource profile (compute- vs. memory-bound), and
// the cost formulas (FLOPs, bytes moved) and regression features derived
// from each operation instance.
//
// The paper's key empirical observation (Section III-A) is that CNNs are
// composed from a small set of unique operation types, with roughly 20
// "heavy" GPU operations contributing 47%–94% of training time. This
// package is the shared definition of that vocabulary for the graph
// builder, the hardware simulator, and the Ceer predictor.
package ops

import "fmt"

// Type names an operation type, e.g. "Conv2D". Values match TensorFlow's
// operation type strings so traces read like real TF timelines.
type Type string

// GPU operation types observed as heavy in the paper's Figure 2.
const (
	Conv2D               Type = "Conv2D"
	Conv2DBackpropFilter Type = "Conv2DBackpropFilter"
	Conv2DBackpropInput  Type = "Conv2DBackpropInput"
	MatMul               Type = "MatMul"
	MaxPool              Type = "MaxPool"
	MaxPoolGrad          Type = "MaxPoolGrad"
	AvgPool              Type = "AvgPool"
	AvgPoolGrad          Type = "AvgPoolGrad"
	FusedBatchNormV3     Type = "FusedBatchNormV3"
	FusedBatchNormGradV3 Type = "FusedBatchNormGradV3"
	Relu                 Type = "Relu"
	ReluGrad             Type = "ReluGrad"
	BiasAdd              Type = "BiasAdd"
	BiasAddGrad          Type = "BiasAddGrad"
	AddV2                Type = "AddV2"
	AddN                 Type = "AddN"
	Mul                  Type = "Mul"
	Transpose            Type = "Transpose"
	ConcatV2             Type = "ConcatV2"
	Slice                Type = "Slice"
)

// Heavy GPU operation types that do NOT occur in the paper's 12 CNNs.
// They exercise Ceer's unseen-heavy-operation path (Section IV-D): a
// predictor trained on the standard zoo has no model for them until it
// is retrained on graphs that contain them.
const (
	DepthwiseConv2D Type = "DepthwiseConv2dNative"
)

// Light GPU operation types: present in every training iteration but
// individually cheap (< 0.5 ms on a P2 instance, per the paper's
// threshold), and highly variable.
const (
	Identity      Type = "Identity"
	Reshape       Type = "Reshape"
	Squeeze       Type = "Squeeze"
	Cast          Type = "Cast"
	Pad           Type = "Pad"
	SoftmaxXent   Type = "SoftmaxCrossEntropyWithLogits"
	StridedSlice  Type = "StridedSlice"
	Shape         Type = "Shape"
	Fill          Type = "Fill"
	Sum           Type = "Sum"
	Mean          Type = "Mean"
	Sub           Type = "Sub"
	RealDiv       Type = "RealDiv"
	Sqrt          Type = "Sqrt"
	Rsqrt         Type = "Rsqrt"
	Maximum       Type = "Maximum"
	Softmax       Type = "Softmax"
	L2Loss        Type = "L2Loss"
	Tile          Type = "Tile"
	ZerosLike     Type = "ZerosLike"
	ApplyMomentum Type = "ApplyMomentum"
	ApplyGradDesc Type = "ApplyGradientDescent"
)

// CPU-resident operation types: parts of the DAG that lack a GPU kernel
// (e.g. SparseToDense) or belong to the input pipeline.
const (
	IteratorGetNext Type = "IteratorGetNext"
	SparseToDense   Type = "SparseToDense"
	OneHot          Type = "OneHot"
	Range           Type = "Range"
	Pack            Type = "Pack"
	ExpandDims      Type = "ExpandDims"
	ArgMax          Type = "ArgMax"
	Equal           Type = "Equal"
	Prod            Type = "Prod"
	Floor           Type = "Floor"
	RandomUniform   Type = "RandomUniform"
	NoOp            Type = "NoOp"
)

// Class partitions operations by where and how expensively they execute,
// mirroring the paper's heavy GPU / light GPU / CPU taxonomy.
type Class int

const (
	// HeavyGPU operations dominate training time and have low per-(type,
	// input size) variability; Ceer models them with per-type regressions.
	HeavyGPU Class = iota
	// LightGPU operations are individually negligible (< 0.5 ms on P2)
	// but numerous and highly variable; Ceer uses a global sample median.
	LightGPU
	// CPU operations run on the host because they lack a GPU kernel;
	// Ceer uses a global sample median for them as well.
	CPU
)

// String returns a short class label.
func (c Class) String() string {
	switch c {
	case HeavyGPU:
		return "heavy-gpu"
	case LightGPU:
		return "light-gpu"
	case CPU:
		return "cpu"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ResourceKind captures which hardware resource bounds an operation in
// the roofline execution model.
type ResourceKind int

const (
	// ComputeBound operations are limited by arithmetic throughput
	// (convolutions, matrix multiplies).
	ComputeBound ResourceKind = iota
	// MemoryBound operations are limited by memory bandwidth (pooling,
	// normalization, element-wise ops).
	MemoryBound
	// OverheadBound operations cost little beyond kernel-launch or host
	// dispatch overhead.
	OverheadBound
)

// String returns a short kind label.
func (k ResourceKind) String() string {
	switch k {
	case ComputeBound:
		return "compute"
	case MemoryBound:
		return "memory"
	case OverheadBound:
		return "overhead"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Meta is the static description of one operation type.
type Meta struct {
	Type  Type
	Class Class
	Kind  ResourceKind
	// FeatureArity is the length of the regression feature vector
	// produced by Op.Features for this type.
	FeatureArity int
}

// catalog lists every known operation type. Heavy ops carry richer
// feature vectors (the paper's "supplemental inputs": filters, windows).
var catalog = map[Type]Meta{
	// Heavy GPU — compute bound.
	Conv2D:               {Conv2D, HeavyGPU, ComputeBound, 6},
	Conv2DBackpropFilter: {Conv2DBackpropFilter, HeavyGPU, ComputeBound, 6},
	Conv2DBackpropInput:  {Conv2DBackpropInput, HeavyGPU, ComputeBound, 6},
	MatMul:               {MatMul, HeavyGPU, ComputeBound, 3},
	// Heavy GPU — memory bound.
	MaxPool:              {MaxPool, HeavyGPU, MemoryBound, 3},
	MaxPoolGrad:          {MaxPoolGrad, HeavyGPU, MemoryBound, 3},
	AvgPool:              {AvgPool, HeavyGPU, MemoryBound, 3},
	AvgPoolGrad:          {AvgPoolGrad, HeavyGPU, MemoryBound, 3},
	FusedBatchNormV3:     {FusedBatchNormV3, HeavyGPU, MemoryBound, 2},
	FusedBatchNormGradV3: {FusedBatchNormGradV3, HeavyGPU, MemoryBound, 2},
	Relu:                 {Relu, HeavyGPU, MemoryBound, 2},
	ReluGrad:             {ReluGrad, HeavyGPU, MemoryBound, 2},
	BiasAdd:              {BiasAdd, HeavyGPU, MemoryBound, 2},
	BiasAddGrad:          {BiasAddGrad, HeavyGPU, MemoryBound, 2},
	AddV2:                {AddV2, HeavyGPU, MemoryBound, 2},
	AddN:                 {AddN, HeavyGPU, MemoryBound, 2},
	Mul:                  {Mul, HeavyGPU, MemoryBound, 2},
	Transpose:            {Transpose, HeavyGPU, MemoryBound, 2},
	ConcatV2:             {ConcatV2, HeavyGPU, MemoryBound, 2},
	Slice:                {Slice, HeavyGPU, MemoryBound, 2},
	DepthwiseConv2D:      {DepthwiseConv2D, HeavyGPU, ComputeBound, 6},

	// Light GPU.
	Identity:      {Identity, LightGPU, OverheadBound, 2},
	Reshape:       {Reshape, LightGPU, OverheadBound, 2},
	Squeeze:       {Squeeze, LightGPU, OverheadBound, 2},
	Cast:          {Cast, LightGPU, MemoryBound, 2},
	Pad:           {Pad, LightGPU, MemoryBound, 2},
	SoftmaxXent:   {SoftmaxXent, LightGPU, MemoryBound, 2},
	StridedSlice:  {StridedSlice, LightGPU, MemoryBound, 2},
	Shape:         {Shape, LightGPU, OverheadBound, 2},
	Fill:          {Fill, LightGPU, MemoryBound, 2},
	Sum:           {Sum, LightGPU, MemoryBound, 2},
	Mean:          {Mean, LightGPU, MemoryBound, 2},
	Sub:           {Sub, LightGPU, MemoryBound, 2},
	RealDiv:       {RealDiv, LightGPU, MemoryBound, 2},
	Sqrt:          {Sqrt, LightGPU, MemoryBound, 2},
	Rsqrt:         {Rsqrt, LightGPU, MemoryBound, 2},
	Maximum:       {Maximum, LightGPU, MemoryBound, 2},
	Softmax:       {Softmax, LightGPU, MemoryBound, 2},
	L2Loss:        {L2Loss, LightGPU, MemoryBound, 2},
	Tile:          {Tile, LightGPU, MemoryBound, 2},
	ZerosLike:     {ZerosLike, LightGPU, MemoryBound, 2},
	ApplyMomentum: {ApplyMomentum, LightGPU, MemoryBound, 2},
	ApplyGradDesc: {ApplyGradDesc, LightGPU, MemoryBound, 2},

	// CPU.
	IteratorGetNext: {IteratorGetNext, CPU, OverheadBound, 2},
	SparseToDense:   {SparseToDense, CPU, OverheadBound, 2},
	OneHot:          {OneHot, CPU, OverheadBound, 2},
	Range:           {Range, CPU, OverheadBound, 2},
	Pack:            {Pack, CPU, OverheadBound, 2},
	ExpandDims:      {ExpandDims, CPU, OverheadBound, 2},
	ArgMax:          {ArgMax, CPU, OverheadBound, 2},
	Equal:           {Equal, CPU, OverheadBound, 2},
	Prod:            {Prod, CPU, OverheadBound, 2},
	Floor:           {Floor, CPU, OverheadBound, 2},
	RandomUniform:   {RandomUniform, CPU, OverheadBound, 2},
	NoOp:            {NoOp, CPU, OverheadBound, 2},
}

// Lookup returns the metadata for an operation type.
func Lookup(t Type) (Meta, bool) {
	m, ok := catalog[t]
	return m, ok
}

// MustLookup returns the metadata for a type known to exist, panicking
// otherwise. The graph builder only emits catalogued types.
func MustLookup(t Type) Meta {
	m, ok := catalog[t]
	if !ok {
		panic(fmt.Sprintf("ops: unknown operation type %q", t))
	}
	return m
}

// Known reports whether t is in the catalog.
func Known(t Type) bool {
	_, ok := catalog[t]
	return ok
}

// AllTypes returns every catalogued operation type in deterministic
// (sorted) order.
func AllTypes() []Type {
	out := make([]Type, 0, len(catalog))
	for t := range catalog {
		out = append(out, t)
	}
	sortTypes(out)
	return out
}

// TypesByClass returns the catalogued types of one class in sorted order.
func TypesByClass(c Class) []Type {
	var out []Type
	for t, m := range catalog {
		if m.Class == c {
			out = append(out, t)
		}
	}
	sortTypes(out)
	return out
}

// HeavyTypes returns the 20 heavy GPU operation types of Figure 2.
func HeavyTypes() []Type { return TypesByClass(HeavyGPU) }

func sortTypes(ts []Type) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
