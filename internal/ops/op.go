package ops

import (
	"fmt"

	"ceer/internal/tensor"
)

// Op is one operation instance: a type applied to concrete input tensors
// producing one output tensor. Window carries the kernel/stride/padding
// attributes of convolution and pooling operations; it is nil for all
// other types.
type Op struct {
	Type   Type
	Inputs []tensor.Spec
	Output tensor.Spec
	Window *tensor.Window
}

// Meta returns the catalog entry for the op's type.
func (o *Op) Meta() Meta { return MustLookup(o.Type) }

// Class returns the op's execution class.
func (o *Op) Class() Class { return o.Meta().Class }

// Validate checks structural consistency: a known type, at least one
// input (except source ops), valid shapes, and window attributes present
// exactly when required.
func (o *Op) Validate() error {
	m, ok := Lookup(o.Type)
	if !ok {
		return fmt.Errorf("ops: unknown type %q", o.Type)
	}
	if !o.Output.Shape.Valid() {
		return fmt.Errorf("ops: %s has invalid output shape %s", o.Type, o.Output.Shape)
	}
	for i, in := range o.Inputs {
		if !in.Shape.Valid() {
			return fmt.Errorf("ops: %s input %d has invalid shape %s", o.Type, i, in.Shape)
		}
	}
	if windowRequired(o.Type) {
		if o.Window == nil {
			return fmt.Errorf("ops: %s requires window attributes", o.Type)
		}
		if !o.Window.Valid() {
			return fmt.Errorf("ops: %s has invalid window %+v", o.Type, *o.Window)
		}
	}
	if len(o.Inputs) == 0 && m.Class != CPU && o.Type != Fill {
		return fmt.Errorf("ops: %s has no inputs", o.Type)
	}
	return nil
}

func windowRequired(t Type) bool {
	switch t {
	case Conv2D, Conv2DBackpropFilter, Conv2DBackpropInput,
		DepthwiseConv2D, MaxPool, MaxPoolGrad, AvgPool, AvgPoolGrad:
		return true
	}
	return false
}

// InputBytes returns the total byte size of all inputs.
func (o *Op) InputBytes() int64 {
	var n int64
	for _, in := range o.Inputs {
		n += in.Bytes()
	}
	return n
}

// OutputBytes returns the byte size of the output tensor.
func (o *Op) OutputBytes() int64 { return o.Output.Bytes() }

// BytesMoved returns the total memory traffic of the op: every input
// read once plus the output written once. Gradient pooling ops also
// re-read the forward output, which the formula approximates by counting
// their (already enlarged) input lists.
func (o *Op) BytesMoved() int64 { return o.InputBytes() + o.OutputBytes() }

// FLOPs estimates the floating-point operation count of the op. The
// estimates follow standard per-type formulas (2 FLOPs per MAC for
// convolutions and matrix multiplies, a small constant per element for
// element-wise and normalization ops). Ops whose cost is pure data
// movement or host overhead report their element count.
func (o *Op) FLOPs() int64 {
	switch o.Type {
	case Conv2D:
		return o.convFLOPs()
	case DepthwiseConv2D:
		// One kh×kw filter per channel: each output element accumulates
		// kh·kw products.
		if o.Window != nil {
			return 2 * o.Output.Elements() * o.Window.KernelH * o.Window.KernelW
		}
		return o.Output.Elements() * 2
	case Conv2DBackpropInput:
		// dX = dY ⊛ rot180(W): same MAC count as the forward pass.
		return o.convFLOPs()
	case Conv2DBackpropFilter:
		// dW = X ⊛ dY: same MAC count as the forward pass.
		return o.convFLOPs()
	case MatMul:
		if len(o.Inputs) >= 2 {
			if f, err := tensor.MatMulFLOPs(o.Inputs[0].Shape, o.Inputs[1].Shape); err == nil {
				return f
			}
		}
		return o.Output.Elements() * 2
	case MaxPool, AvgPool:
		if o.Window != nil && len(o.Inputs) >= 1 {
			if f, err := tensor.PoolFLOPs(o.Inputs[0].Shape, *o.Window); err == nil {
				return f
			}
		}
		return o.Output.Elements()
	case MaxPoolGrad, AvgPoolGrad:
		// Scatter one contribution per forward-window element.
		if o.Window != nil {
			return o.Output.Elements() * o.Window.KernelH * o.Window.KernelW
		}
		return o.Output.Elements() * 2
	case FusedBatchNormV3:
		// Two reduction passes plus scale/shift: ~8 FLOPs per element.
		return o.Output.Elements() * 8
	case FusedBatchNormGradV3:
		return o.Output.Elements() * 11
	case SoftmaxXent:
		// exp + sum + log + subtract per logit.
		return firstInputElements(o) * 6
	case AddN:
		// (n-1) adds per element.
		n := int64(len(o.Inputs))
		if n < 2 {
			n = 2
		}
		return o.Output.Elements() * (n - 1)
	case L2Loss:
		return firstInputElements(o) * 2
	case ApplyMomentum, ApplyGradDesc:
		return firstInputElements(o) * 3
	default:
		// One op per output element: Relu, adds, muls, casts, pads, ...
		return o.Output.Elements()
	}
}

func (o *Op) convFLOPs() int64 {
	// Convolution instances carry [input, filter] (forward), or gradient
	// equivalents with the same shape population; locate the rank-4
	// NHWC input and the rank-4 HWIO filter among inputs/output.
	in, filter := o.convShapes()
	if in == nil || filter == nil || o.Window == nil {
		return o.Output.Elements() * 2
	}
	if f, err := tensor.ConvFLOPs(in, filter, *o.Window); err == nil {
		return f
	}
	return o.Output.Elements() * 2
}

// convShapes identifies the image-input and filter shapes of a conv-family
// op, regardless of the direction (forward, input-grad, filter-grad).
func (o *Op) convShapes() (in, filter tensor.Shape) {
	pick := func(s tensor.Shape) {
		if s.Rank() != 4 {
			return
		}
		// HWIO filters in these networks are small spatially (<= 11) and
		// their first two dims equal the window kernel.
		if o.Window != nil && s.Dim(0) == o.Window.KernelH && s.Dim(1) == o.Window.KernelW && filter == nil {
			filter = s
			return
		}
		if in == nil {
			in = s
		}
	}
	switch o.Type {
	case Conv2D:
		if len(o.Inputs) >= 2 {
			return o.Inputs[0].Shape, o.Inputs[1].Shape
		}
	case Conv2DBackpropInput:
		// Inputs: [filter, dY]; output is dX with the forward input shape.
		if len(o.Inputs) >= 2 {
			return o.Output.Shape, o.Inputs[0].Shape
		}
	case Conv2DBackpropFilter:
		// Inputs: [X, dY]; output is dW with the filter shape.
		if len(o.Inputs) >= 2 {
			return o.Inputs[0].Shape, o.Output.Shape
		}
	}
	for _, i := range o.Inputs {
		pick(i.Shape)
	}
	pick(o.Output.Shape)
	return in, filter
}

// Features returns the regression feature vector of the op, the "input
// size" predictors of Section IV-B. The arity is fixed per type (see
// Meta.FeatureArity): conv ops expose [data-input bytes, filter bytes,
// output bytes, MAC depth], where MAC depth = kh·kw·inC is derived from
// the filter and stride attributes (the paper's "supplemental inputs");
// matmul ops expose [operand bytes ×2, output bytes]; windowed pooling
// ops expose [input bytes, output bytes, window area]; all remaining
// ops expose [total input bytes, output bytes].
func (o *Op) Features() []float64 {
	switch o.Type {
	case Conv2D:
		return append([]float64{inBytesAt(o, 0), inBytesAt(o, 1), float64(o.OutputBytes()), o.macDepth()}, o.kernelRegime()...)
	case DepthwiseConv2D:
		depth := float64(0)
		if o.Window != nil {
			depth = float64(o.Window.KernelH * o.Window.KernelW)
		}
		return append([]float64{inBytesAt(o, 0), inBytesAt(o, 1), float64(o.OutputBytes()), depth}, o.kernelRegime()...)
	case Conv2DBackpropInput:
		// Inputs [filter, dY]: report the gradient tensor first so the
		// leading feature is always the "image-like" operand.
		return append([]float64{inBytesAt(o, 1), inBytesAt(o, 0), float64(o.OutputBytes()), o.macDepth()}, o.kernelRegime()...)
	case Conv2DBackpropFilter:
		return append([]float64{inBytesAt(o, 0), inBytesAt(o, 1), float64(o.OutputBytes()), o.macDepth()}, o.kernelRegime()...)
	case MatMul:
		return []float64{inBytesAt(o, 0), inBytesAt(o, 1), float64(o.OutputBytes())}
	case MaxPool, AvgPool, MaxPoolGrad, AvgPoolGrad:
		area := float64(0)
		if o.Window != nil {
			area = float64(o.Window.KernelH * o.Window.KernelW)
		}
		return []float64{float64(o.InputBytes()), float64(o.OutputBytes()), area}
	default:
		return []float64{float64(o.InputBytes()), float64(o.OutputBytes())}
	}
}

// macDepth returns kh·kw·inC, the multiply-accumulate count per output
// element of a conv-family op — a deterministic function of the filter
// shape and window attributes.
func (o *Op) macDepth() float64 {
	_, filter := o.convShapes()
	if filter == nil || filter.Rank() != 4 || o.Window == nil {
		return 0
	}
	return float64(o.Window.KernelH * o.Window.KernelW * filter.Dim(2))
}

// kernelRegime returns two bounded indicator features — [is 1×1,
// is asymmetric] — letting per-op regressions separate the 1×1-GEMM and
// 1×N/N×1 kernel regimes without extrapolation risk (supplemental
// inputs, as in Section IV-B).
func (o *Op) kernelRegime() []float64 {
	out := []float64{0, 0}
	if o.Window == nil {
		return out
	}
	if o.Window.KernelH == 1 && o.Window.KernelW == 1 {
		out[0] = 1
	} else if o.Window.KernelH != o.Window.KernelW {
		out[1] = 1
	}
	return out
}

func inBytesAt(o *Op, i int) float64 {
	if i < len(o.Inputs) {
		return float64(o.Inputs[i].Bytes())
	}
	return 0
}

func firstInputElements(o *Op) int64 {
	if len(o.Inputs) > 0 {
		return o.Inputs[0].Elements()
	}
	return o.Output.Elements()
}

// String renders a compact description such as
// "Conv2D(float32[32x224x224x3], float32[3x3x3x64]) -> float32[32x224x224x64]".
func (o *Op) String() string {
	s := string(o.Type) + "("
	for i, in := range o.Inputs {
		if i > 0 {
			s += ", "
		}
		s += in.String()
	}
	return s + ") -> " + o.Output.String()
}
