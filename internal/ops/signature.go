package ops

import (
	"strconv"

	"ceer/internal/tensor"
)

// Signature is a canonical, stable key identifying an operation
// instance up to compute equivalence: two ops share a signature exactly
// when they have the same type, the same input specs (dtype and
// dimensions, in order), the same output spec, and the same window
// attributes. Because every cost quantity Ceer derives from an op —
// Features, FLOPs, BytesMoved — is a pure function of those fields,
// equal signatures imply identical predictions, which is what lets the
// serving path evaluate each signature once and multiply by its
// multiplicity (see graph.Fold).
//
// The encoding is compact and deterministic but otherwise unspecified;
// treat signatures as opaque comparable keys, not a parseable format.
type Signature string

// Signature computes the op's canonical signature. The rendering is,
// e.g., "Conv2D|0[32,224,224,3];0[3,3,3,64]>0[32,224,224,64]|w3x3s1x1p0"
// (dtypes appear as their numeric codes).
func (o *Op) Signature() Signature {
	b := make([]byte, 0, 96)
	b = append(b, o.Type...)
	for i, in := range o.Inputs {
		if i == 0 {
			b = append(b, '|')
		} else {
			b = append(b, ';')
		}
		b = appendSpec(b, in)
	}
	b = append(b, '>')
	b = appendSpec(b, o.Output)
	if o.Window != nil {
		w := o.Window
		b = append(b, '|', 'w')
		b = strconv.AppendInt(b, w.KernelH, 10)
		b = append(b, 'x')
		b = strconv.AppendInt(b, w.KernelW, 10)
		b = append(b, 's')
		b = strconv.AppendInt(b, w.StrideH, 10)
		b = append(b, 'x')
		b = strconv.AppendInt(b, w.StrideW, 10)
		b = append(b, 'p')
		b = strconv.AppendInt(b, int64(w.Padding), 10)
	}
	return Signature(b)
}

func appendSpec(b []byte, s tensor.Spec) []byte {
	b = strconv.AppendInt(b, int64(s.DType), 10)
	b = append(b, '[')
	for i, d := range s.Shape {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, d, 10)
	}
	return append(b, ']')
}
