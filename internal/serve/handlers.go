package serve

import (
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"ceer"
)

// endpointOf routes a path to its endpoint index.
//
//hot:path
func endpointOf(path string) int {
	switch path {
	case "/v1/predict":
		return epPredict
	case "/v1/recommend":
		return epRecommend
	case "/v1/explain":
		return epExplain
	case "/v1/observe":
		return epObserve
	case "/healthz":
		return epHealthz
	case "/metrics":
		return epMetrics
	case "/admin/reload":
		return epAdmin
	default:
		return epOther
	}
}

// ServeHTTP is the daemon's single entry point: route, admission
// (draining → queue depth → token bucket, /v1/* only), then dispatch.
// The admission decisions are pure functions of the Clock and the
// request sequence, so a virtual clock makes shedding deterministic.
//
//hot:path
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	//lint:ignore allocfree Clock is an interface for virtual-time tests; both implementations (monotonic wrapper, test clock) are allocation-free
	start := s.clock.Nanos()
	ep := endpointOf(r.URL.Path)
	// Panic isolation boundary: a directly deferred method call (no
	// closure), so a panicking handler becomes a structured 500 and a
	// breaker event instead of killing the daemon. Handlers return
	// their arena scratches with their own, later defers, which unwind
	// first — a panic never leaks a scratch.
	defer s.recoverPanic(w, ep, start)
	switch ep {
	case epOther:
		s.respondError(w, ep, http.StatusNotFound, "unknown path", start)
		return
	case epHealthz:
		if r.Method != http.MethodGet {
			s.respondError(w, ep, http.StatusMethodNotAllowed, "GET only", start)
			return
		}
		s.handleHealthz(w, start)
		return
	case epMetrics:
		if r.Method != http.MethodGet {
			s.respondError(w, ep, http.StatusMethodNotAllowed, "GET only", start)
			return
		}
		s.handleMetrics(w, start)
		return
	case epAdmin:
		if r.Method != http.MethodPost {
			s.respondError(w, ep, http.StatusMethodNotAllowed, "POST only", start)
			return
		}
		if s.draining.Load() {
			s.respondError(w, ep, http.StatusServiceUnavailable, "draining", start)
			return
		}
		s.handleReload(w, start)
		return
	}
	// /v1/* from here on. Observe ingests a body; the read-only
	// endpoints stay GET-only.
	if ep == epObserve {
		if r.Method != http.MethodPost {
			s.respondError(w, ep, http.StatusMethodNotAllowed, "POST only", start)
			return
		}
	} else if r.Method != http.MethodGet {
		s.respondError(w, ep, http.StatusMethodNotAllowed, "GET only", start)
		return
	}
	// Count in-flight before re-checking draining: Shutdown sets the
	// flag and then waits for the in-flight count to reach zero, so a
	// request is either counted (and drains) or sees the flag (and is
	// refused) — never dropped mid-flight.
	n := s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		s.respondError(w, ep, http.StatusServiceUnavailable, "draining", start)
		return
	}
	if s.maxInfl > 0 && n > s.maxInfl {
		s.met.eps[ep].shedQueue.Add(1)
		s.respondError(w, ep, http.StatusTooManyRequests, "shed: queue depth", start)
		return
	}
	if s.bucket != nil && !s.bucket.take(start) {
		s.met.eps[ep].shedRate.Add(1)
		s.respondError(w, ep, http.StatusTooManyRequests, "shed: rate limit", start)
		return
	}
	if hook := s.afterAdmit; hook != nil {
		//lint:ignore allocfree test-only admission hook, nil in production; the race/chaos tests install allocation-free counters
		hook(ep)
	}
	switch ep {
	case epPredict:
		s.handlePredict(w, r, start)
	case epRecommend:
		s.handleRecommend(w, r, start)
	case epExplain:
		s.handleExplain(w, r, start)
	case epObserve:
		s.handleObserve(w, r, start)
	}
}

// query is a request's parsed parameters, living in the scratch so
// parsing allocates nothing.
type query struct {
	model     string
	config    string
	gpu       string
	objective string
	pricing   string
	samples   int64
	batch     int64
	k         int
	maxk      int
	market    bool
	hasHourly bool
	hasTotal  bool

	hourlyBudget float64
	totalBudget  float64

	// chaosPanic is set only by chaosserve-tagged builds (the chaos
	// suite's live panic injection); production parse rejects the
	// parameter and nothing else writes the field.
	chaosPanic bool
}

// reset restores a query to the server's defaults.
//
//hot:path
func (q *query) reset(s *Server) *query {
	q.model, q.config, q.gpu = "", "", ""
	q.objective, q.pricing = "cost", "on-demand"
	q.samples = ceer.ImageNet.Samples
	q.batch = s.batch
	q.k = 0
	q.maxk = s.maxK
	q.market = false
	q.hasHourly, q.hasTotal = false, false
	q.hourlyBudget, q.totalBudget = 0, 0
	q.chaosPanic = false
	return q
}

// parse scans a raw query string ("a=b&c=d") by substring — no
// url.Values, no allocation for unescaped values (the common case). It
// returns "" on success or a short diagnostic.
//
//hot:path
func (q *query) parse(raw string, maxK int) string {
	for len(raw) > 0 {
		pair := raw
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			raw = ""
		}
		if pair == "" {
			continue
		}
		key, val := pair, ""
		if i := strings.IndexByte(pair, '='); i >= 0 {
			key, val = pair[:i], pair[i+1:]
		}
		if strings.IndexByte(val, '%') >= 0 || strings.IndexByte(val, '+') >= 0 {
			//lint:ignore allocfree rare branch: only percent- or plus-escaped values unescape, and model/gpu names never contain either
			u, err := url.QueryUnescape(val) // rare: escaped value (allocates)
			if err != nil {
				return "malformed query escape"
			}
			val = u
		}
		var err error
		switch key {
		case "model":
			q.model = val
		case "config":
			q.config = val
		case "gpu":
			q.gpu = val
		case "objective":
			if val != "cost" && val != "time" {
				return "objective must be cost or time"
			}
			q.objective = val
		case "pricing":
			switch val {
			case "on-demand":
				q.market = false
			case "market":
				q.market = true
			default:
				return "pricing must be on-demand or market"
			}
			q.pricing = val
		case "samples":
			q.samples, err = strconv.ParseInt(val, 10, 64)
			if err != nil || q.samples < 1 {
				return "samples must be a positive integer"
			}
		case "batch":
			q.batch, err = strconv.ParseInt(val, 10, 64)
			if err != nil || q.batch < 1 {
				return "batch must be a positive integer"
			}
		case "k":
			q.k, err = strconv.Atoi(val)
			if err != nil || q.k < 1 || q.k > maxK {
				return "k out of range"
			}
		case "maxk":
			q.maxk, err = strconv.Atoi(val)
			if err != nil || q.maxk < 1 || q.maxk > maxK {
				return "maxk out of range"
			}
		case "max_hourly_usd":
			q.hourlyBudget, err = strconv.ParseFloat(val, 64)
			if err != nil {
				return "max_hourly_usd must be a number"
			}
			q.hasHourly = true
		case "max_total_usd":
			q.totalBudget, err = strconv.ParseFloat(val, 64)
			if err != nil {
				return "max_total_usd must be a number"
			}
			q.hasTotal = true
		default:
			if !chaosQueryParam(q, key, val) {
				return "unknown parameter"
			}
		}
	}
	return ""
}

// findModel resolves a zoo model by name: a linear scan over the 12
// entries (cheaper than a map at this size, and map reads are banned on
// the marked hot path anyway).
//
//hot:path
func (s *Server) findModel(name string) *modelEntry {
	for i := range s.models {
		if s.models[i].name == name {
			return &s.models[i]
		}
	}
	return nil
}

// findCand resolves a "<k>x<family>" (or bare "<family>", k=1)
// configuration string against the precomputed candidate metadata,
// returning its index in the full candidate set or -1.
//
//hot:path
func (s *Server) findCand(val string) int {
	k, fam := 1, val
	if i := strings.IndexByte(val, 'x'); i > 0 {
		n, err := strconv.Atoi(val[:i])
		if err != nil {
			return -1
		}
		k, fam = n, val[i+1:]
	}
	metas := s.metaByK[s.maxK]
	for i := range metas {
		if metas[i].k == k && strings.EqualFold(metas[i].family, fam) {
			return i
		}
	}
	return -1
}

// overBudget reports whether a request has exhausted its compute
// budget (Options.RequestTimeout) — the allocation-free equivalent of
// a per-request context deadline (see DESIGN.md §13).
//
//hot:path
func (s *Server) overBudget(start int64) bool {
	//lint:ignore allocfree Clock is an interface for virtual-time tests; both implementations are allocation-free
	return s.budget > 0 && s.clock.Nanos()-start > s.budget
}

// finish sends a rendered hot response, downgrading to 504 if the
// request ran over budget.
//
//hot:path
func (s *Server) finish(w http.ResponseWriter, ep int, sc *scratch, start int64) {
	if s.overBudget(start) {
		s.met.eps[ep].timeouts.Add(1)
		s.respondError(w, ep, http.StatusGatewayTimeout, "deadline exceeded", start)
		return
	}
	s.reply(w, ep, http.StatusOK, sc.buf, start)
}

//hot:path
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, start int64) {
	sc := s.arena.get()
	defer s.arena.put(sc)
	if msg := sc.q.reset(s).parse(r.URL.RawQuery, s.maxK); msg != "" {
		s.respondError(w, epPredict, http.StatusBadRequest, msg, start)
		return
	}
	if sc.q.model == "" {
		s.respondError(w, epPredict, http.StatusBadRequest, "missing model parameter", start)
		return
	}
	me := s.findModel(sc.q.model)
	if me == nil {
		s.respondError(w, epPredict, http.StatusNotFound, "unknown model", start)
		return
	}
	chaosMaybePanic(&sc.q)
	cands := s.candsByK[sc.q.maxk]
	metas := s.metaByK[sc.q.maxk]
	if sc.q.config != "" {
		ci := s.findCand(sc.q.config)
		if ci < 0 {
			s.respondError(w, epPredict, http.StatusBadRequest, "unknown config", start)
			return
		}
		cands = s.candsByK[s.maxK][ci : ci+1]
		metas = s.metaByK[s.maxK][ci : ci+1]
	}
	status, msg := s.renderPredict(sc, me, cands, metas)
	if status != http.StatusOK {
		s.respondError(w, epPredict, status, msg, start)
		return
	}
	s.finish(w, epPredict, sc, start)
}

//hot:path
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request, start int64) {
	sc := s.arena.get()
	defer s.arena.put(sc)
	if msg := sc.q.reset(s).parse(r.URL.RawQuery, s.maxK); msg != "" {
		s.respondError(w, epRecommend, http.StatusBadRequest, msg, start)
		return
	}
	if sc.q.model == "" {
		s.respondError(w, epRecommend, http.StatusBadRequest, "missing model parameter", start)
		return
	}
	me := s.findModel(sc.q.model)
	if me == nil {
		s.respondError(w, epRecommend, http.StatusNotFound, "unknown model", start)
		return
	}
	status, msg := s.renderRecommend(sc, me, s.candsByK[sc.q.maxk], s.metaByK[sc.q.maxk])
	if status != http.StatusOK {
		s.respondError(w, epRecommend, status, msg, start)
		return
	}
	s.finish(w, epRecommend, sc, start)
}

//hot:path
func (s *Server) handleHealthz(w http.ResponseWriter, start int64) {
	sc := s.arena.get()
	defer s.arena.put(sc)
	s.renderHealthz(sc, start)
	s.reply(w, epHealthz, http.StatusOK, sc.buf, start)
}
