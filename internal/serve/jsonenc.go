package serve

// Append-based JSON encoding for the daemon's hot responses. The hot
// path never touches encoding/json: every response is assembled by
// appending into a pooled, capacity-stable scratch buffer, so a warm
// request serializes with zero allocations. The encoding is, by
// construction and by test (TestJSONEncoderEquivalence), byte-identical
// to encoding/json over the response structs in response.go — cold
// paths (/v1/explain, /metrics) and tests keep using encoding/json and
// the two must never drift.

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// appendJSONString appends s as a JSON string literal, matching
// encoding/json's escaping (HTML-escaping included: <, >, & become
// <, >, &).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if jsonSafe[c] {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, `�`...)
			i += size
			start = i
			continue
		}
		// U+2028/U+2029 are valid JSON but break JS; encoding/json
		// escapes them.
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

const hexDigits = "0123456789abcdef"

// jsonSafe marks the ASCII bytes encoding/json emits verbatim inside a
// string (its HTML-escaping safe set).
var jsonSafe = func() (t [utf8.RuneSelf]bool) {
	for c := 0; c < utf8.RuneSelf; c++ {
		t[c] = c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
	}
	return
}()

// appendJSONFloat appends f exactly as encoding/json encodes a float64:
// shortest representation, 'f' form except for very small/large
// magnitudes, with the exponent's leading zero trimmed. Non-finite
// values (which encoding/json rejects) encode as null; the serving
// model never produces them.
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return append(b, "null"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Trim "e-09" to "e-9", as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendJSONInt appends a decimal integer.
func appendJSONInt(b []byte, v int64) []byte { return strconv.AppendInt(b, v, 10) }

// appendJSONBool appends true or false.
func appendJSONBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// appendKey appends a comma (unless first) plus a `"key":` prefix. Keys
// are compile-time constants, so no escaping is needed.
func appendKey(b []byte, first bool, key string) []byte {
	if !first {
		b = append(b, ',')
	}
	b = append(b, '"')
	b = append(b, key...)
	return append(b, '"', ':')
}
