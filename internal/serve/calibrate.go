package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"ceer"
	"ceer/internal/trace"
)

// CalibrationOptions enables the in-daemon observe→predict→calibrate
// loop (PR 7's Calibrator behind POST /v1/observe).
//
// Crash-safety contract: with JournalPath set, every accepted
// observation is appended to the JSONL journal — flushed, and fsynced
// under FsyncAlways — BEFORE its rank-1 update applies. A kill -9 at
// any instant therefore loses at most a torn, never-acknowledged final
// line; restarting with the same journal replays the intact prefix
// through the same calibrator and reconstructs byte-identical
// predictor state (the chaos suite pins this).
type CalibrationOptions struct {
	// Policy fixes drift thresholds and the refit schedule. A zero
	// drift policy selects ceer.DefaultDriftPolicy.
	Policy ceer.CalibrationPolicy
	// JournalPath is the write-ahead observation journal ("" = apply
	// in memory only; state dies with the process).
	JournalPath string
	// Fsync is the journal durability policy: FsyncAlways (default)
	// or FsyncNever.
	Fsync string
}

// calibLoop owns the daemon's calibrator. The calibrator is not
// concurrency-safe — observations are one ordered stream — so every
// mutation serializes on mu; served requests never touch it (they read
// the atomic CompiledBox).
//
// Refits do not publish directly to the serving box: the calibrator is
// bound to a private staging box, and each newly staged table goes
// through the same golden probe as a file reload before Install. A
// poisoned observation stream that drags a refit beyond tolerance is
// rejected — the daemon keeps serving the last good generation while
// the calibrator keeps accumulating (the journal preserves everything
// for offline triage).
type calibLoop struct {
	mu      sync.Mutex
	cal     *ceer.Calibrator
	journal *obsJournal

	staging ceer.CompiledBox
	// lastStaged is the most recently probed staging table (accepted
	// or rejected), so a rejected table is not re-probed every batch.
	lastStaged *ceer.CompiledSystem
}

// initCalibration builds the calibration loop and, when a journal
// exists, replays it before the server goes ready — the restart half
// of the crash-safety contract.
func (s *Server) initCalibration(sys *ceer.System, co *CalibrationOptions) error {
	pol := co.Policy
	if pol.Drift.Window == 0 {
		pol.Drift = ceer.DefaultDriftPolicy()
	}
	cal, err := sys.NewCalibrator(pol)
	if err != nil {
		return fmt.Errorf("serve: calibration: %w", err)
	}
	graphs := make([]*ceer.Graph, len(s.models))
	for i := range s.models {
		graphs[i] = s.models[i].g
	}
	cl := &calibLoop{cal: cal}
	if err := cal.BindBox(&cl.staging, graphs); err != nil {
		return fmt.Errorf("serve: calibration: %w", err)
	}
	cl.lastStaged = cl.staging.Load()
	s.calib = cl

	if co.JournalPath != "" {
		j, err := openObsJournal(co.JournalPath, co.Fsync, cal.Calibrate)
		if err != nil {
			return err
		}
		cl.journal = j
		s.met.srv.calibObs.Add(uint64(j.replayed))
		// Replayed refits staged new tables; validate and install them
		// exactly as the live loop would have.
		s.maybeInstallCalibrated()
		s.updateDriftGauge()
	}
	return nil
}

// JournalReplayed reports what the observation journal contributed at
// startup: replayed observation count and the 1-based line of a
// tolerated torn tail (0 = clean), for the boot log.
func (s *Server) JournalReplayed() (obs, tornLine int) {
	if s.calib == nil || s.calib.journal == nil {
		return 0, 0
	}
	return s.calib.journal.replayed, s.calib.journal.tornLine
}

// maybeInstallCalibrated publishes a newly staged calibration table —
// if it passes the golden probe against the serving tables. Rejected
// tables keep the old generation serving and count calib_swap_rejected.
func (s *Server) maybeInstallCalibrated() {
	cur := s.calib.staging.Load()
	if cur == s.calib.lastStaged {
		return
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	s.calib.lastStaged = cur
	if err := s.probe(cur); err != nil {
		s.met.srv.calibSwapsRejected.Add(1)
		cause := ReloadCauseProbe
		s.lastReloadCause.Store(&cause)
		fmt.Fprintf(os.Stderr, "ceer serve: calibration swap rejected: %v\n", err)
		return
	}
	s.met.srv.calibSwaps.Add(1)
	s.Install(cur)
}

// updateDriftGauge refreshes the drifted-cells gauge from the
// calibrator's report. Callers need not hold cl.mu exactly — the gauge
// is advisory.
func (s *Server) updateDriftGauge() {
	s.calib.mu.Lock()
	rep := s.calib.cal.Report()
	s.calib.mu.Unlock()
	drifted := int64(0)
	for i := range rep.Cells {
		if rep.Cells[i].Drifted {
			drifted++
		}
	}
	s.met.srv.driftedCells.Store(drifted)
}

// handleObserve is POST /v1/observe: a JSONL body of observations,
// each journaled (write-ahead) then folded into the calibrator. While
// degraded, calibration work is shed with 503 — the breaker's contract
// is "keep serving, stop mutating".
//
//hot:exempt cold calibration endpoint; observation decode and rank-1 updates allocate by design
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request, start int64) {
	if s.calib == nil {
		s.respondError(w, epObserve, http.StatusNotFound, "calibration not enabled (start with -observe)", start)
		return
	}
	if s.healthState(start) == stateDegraded {
		s.met.srv.calibShed.Add(1)
		s.respondError(w, epObserve, http.StatusServiceUnavailable, "degraded: calibration shed", start)
		return
	}
	if r.Body == nil {
		s.respondError(w, epObserve, http.StatusBadRequest, "missing request body", start)
		return
	}
	resp, err := s.ingestObs(r.Body)
	if err != nil {
		s.respondError(w, epObserve, http.StatusBadRequest, err.Error(), start)
		return
	}
	s.replyJSON(w, epObserve, http.StatusOK, resp, start)
}

// ingestObs streams one observe request body through the
// journal→calibrate path. The batch is ordered and atomic with respect
// to other batches (cl.mu); on a mid-body error the already-journaled
// prefix stays applied — the journal and the in-memory state never
// diverge — and the client learns the failing line.
func (s *Server) ingestObs(body io.Reader) (ObserveResponse, error) {
	cl := s.calib
	cl.mu.Lock()
	before := cl.cal.Report()
	or := trace.NewObsReader(body)
	accepted := 0
	var ingestErr error
	for {
		o, err := or.Read()
		if err == io.EOF {
			if t := or.Torn(); t > 0 {
				ingestErr = fmt.Errorf("truncated observation on line %d (a request body cannot be torn)", t)
			}
			break
		}
		if err != nil {
			ingestErr = err
			break
		}
		if cl.journal != nil {
			if jerr := cl.journal.append(o); jerr != nil {
				ingestErr = jerr
				break
			}
		}
		if cerr := cl.cal.Calibrate(o); cerr != nil {
			ingestErr = cerr
			break
		}
		accepted++
	}
	after := cl.cal.Report()
	cl.mu.Unlock()

	s.met.srv.calibObs.Add(uint64(accepted))
	s.maybeInstallCalibrated()
	drifted := int64(0)
	for i := range after.Cells {
		if after.Cells[i].Drifted {
			drifted++
		}
	}
	s.met.srv.driftedCells.Store(drifted)
	if ingestErr != nil {
		return ObserveResponse{}, ingestErr
	}
	return ObserveResponse{
		Status:     "accepted",
		Accepted:   accepted,
		Applied:    after.Applied - before.Applied,
		Skipped:    skippedOf(after) - skippedOf(before),
		Refits:     after.Refits - before.Refits,
		Generation: s.gen.Load(),
		Journaled:  cl.journal != nil,
	}, nil
}

// skippedOf sums a report's skip counters.
func skippedOf(r ceer.CalibrationReport) int {
	return r.SkippedClass + r.SkippedUnmodeled + r.SkippedShape
}

// SaveCalibrated writes the calibrator's current (latest recalibrated)
// predictor — the same bytes an uninterrupted run would save, which is
// what the chaos suite byte-compares across a kill -9.
func (s *Server) SaveCalibrated(w io.Writer) error {
	if s.calib == nil {
		return errors.New("serve: calibration not enabled")
	}
	s.calib.mu.Lock()
	defer s.calib.mu.Unlock()
	return s.calib.cal.Predictor().Save(w)
}

// TailObsLog follows a growing observation log, feeding each complete
// appended line through the same journal→calibrate path as POST
// /v1/observe (the optional obs-log tail mode). Malformed lines are
// counted and dropped — a poisoned stream degrades calibration, never
// serving — and lines arriving while degraded are shed. An incomplete
// final line waits for its terminator. Returns nil when ctx ends or
// the daemon drains; file-system errors (other than the file not
// existing yet) are returned.
func (s *Server) TailObsLog(ctx context.Context, path string, interval time.Duration) error {
	if s.calib == nil {
		return errors.New("serve: calibration not enabled")
	}
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	var off int64
	var partial []byte
	for {
		if ctx.Err() != nil || s.draining.Load() {
			return nil
		}
		if err := s.tailChunk(path, &off, &partial); err != nil {
			return err
		}
		time.Sleep(interval)
	}
}

// tailChunk reads whatever the log grew since the last poll and applies
// every complete line. Truncation (rotation) restarts from offset 0.
func (s *Server) tailChunk(path string, off *int64, partial *[]byte) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil // not created yet; keep polling
	}
	if err != nil {
		return err
	}
	//lint:ignore errdrop read side; there are no buffered writes to lose
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < *off {
		*off = 0 // rotated/truncated: start over
		*partial = (*partial)[:0]
	}
	if st.Size() == *off {
		return nil
	}
	if _, err := f.Seek(*off, io.SeekStart); err != nil {
		return err
	}
	grown, err := io.ReadAll(f)
	if err != nil {
		return err
	}
	*off += int64(len(grown))
	buf := append(*partial, grown...)
	for {
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			break
		}
		line := bytes.TrimSpace(buf[:nl])
		buf = buf[nl+1:]
		if len(line) == 0 {
			continue
		}
		s.tailApply(line)
	}
	*partial = append((*partial)[:0], buf...)
	return nil
}

// tailApply parses and applies one complete tailed line, dropping (and
// counting) malformed or shed observations.
func (s *Server) tailApply(line []byte) {
	var o trace.Obs
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&o); err != nil {
		s.met.srv.calibDropped.Add(1)
		return
	}
	if err := o.Validate(); err != nil {
		s.met.srv.calibDropped.Add(1)
		return
	}
	if s.healthState(s.clock.Nanos()) == stateDegraded {
		s.met.srv.calibShed.Add(1)
		return
	}
	cl := s.calib
	cl.mu.Lock()
	var applyErr error
	if cl.journal != nil {
		applyErr = cl.journal.append(o)
	}
	if applyErr == nil {
		applyErr = cl.cal.Calibrate(o)
	}
	cl.mu.Unlock()
	if applyErr != nil {
		s.met.srv.calibDropped.Add(1)
		return
	}
	s.met.srv.calibObs.Add(1)
	s.maybeInstallCalibrated()
}

// close flushes and closes the journal (clean drain).
func (cl *calibLoop) close() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.journal != nil {
		if err := cl.journal.close(); err != nil {
			fmt.Fprintf(os.Stderr, "ceer serve: closing observation journal: %v\n", err)
		}
		cl.journal = nil
	}
}
