package serve

import (
	"net/http"
	"net/url"
	"runtime"
	"testing"
)

// nopWriter is a ResponseWriter with zero steady-state allocation: the
// header map is built once and the body is discarded.
type nopWriter struct {
	h      http.Header
	status int
	n      int
}

// newNopWriter pre-inserts the Content-Type key: a Go map allocates its
// first bucket on first insert, and that harness-side allocation must
// not be charged to the server's first-request window.
func newNopWriter() *nopWriter {
	w := &nopWriter{h: make(http.Header, 4)}
	w.h["Content-Type"] = nil
	return w
}

func (w *nopWriter) Header() http.Header         { return w.h }
func (w *nopWriter) WriteHeader(status int)      { w.status = status }
func (w *nopWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

func hotRequest(path, rawQuery string) *http.Request {
	return &http.Request{Method: http.MethodGet, URL: &url.URL{Path: path, RawQuery: rawQuery}}
}

// warmServer returns a warmed-up server: Options.Warmup pre-compiles
// the tables, pre-faults the arena, and exercises every hot endpoint.
func warmServer(t testing.TB) *Server {
	return newTestServer(t, Options{Warmup: true})
}

func assertZeroAlloc(t *testing.T, name string, w *nopWriter, s *Server, req *http.Request) {
	t.Helper()
	if avg := testing.AllocsPerRun(100, func() {
		w.status = 0
		s.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("%s: status %d", name, w.status)
		}
	}); avg != 0 {
		t.Errorf("%s: %v allocs/op warm, want 0", name, avg)
	}
}

// TestHotPathZeroAlloc pins the steady-state hot-path contract: once
// warm, predict (full sweep and single config), recommend (both
// objectives, with constraints), and healthz allocate nothing.
func TestHotPathZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	s := warmServer(t)
	w := newNopWriter()
	cases := []struct {
		name, path, query string
	}{
		{"predict-sweep", "/v1/predict", "model=resnet-50"},
		{"predict-config", "/v1/predict", "model=alexnet&config=2xP3&samples=100000"},
		{"recommend-cost", "/v1/recommend", "model=vgg-16&objective=cost"},
		{"recommend-constrained", "/v1/recommend", "model=inception-v3&objective=time&max_hourly_usd=50&max_total_usd=100"},
		{"healthz", "/healthz", ""},
	}
	for _, c := range cases {
		req := hotRequest(c.path, c.query)
		// One manual pass so per-query state (none expected) is settled.
		w.status = 0
		s.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("%s: warmup status %d", c.name, w.status)
		}
		assertZeroAlloc(t, c.name, w, s, req)
	}
}

// TestErrorPathZeroAlloc pins that even refused requests (shed, bad
// query, unknown model) stay allocation-free — load shedding that
// allocates would defeat its purpose.
func TestErrorPathZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	s := warmServer(t)
	w := newNopWriter()
	for _, c := range []struct {
		name, path, query string
		status            int
	}{
		{"unknown-model", "/v1/predict", "model=nope", http.StatusNotFound},
		{"bad-param", "/v1/predict", "model=alexnet&bogus=1", http.StatusBadRequest},
		{"not-found", "/v1/frobnicate", "", http.StatusNotFound},
	} {
		req := hotRequest(c.path, c.query)
		w.status = 0
		s.ServeHTTP(w, req)
		if w.status != c.status {
			t.Fatalf("%s: warmup status %d, want %d", c.name, w.status, c.status)
		}
		if avg := testing.AllocsPerRun(100, func() {
			s.ServeHTTP(w, req)
		}); avg != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, avg)
		}
	}
}

// TestFirstRequestZeroAllocAfterWarmup pins the -warmup contract: the
// FIRST request after New(Options{Warmup: true}) already runs the
// zero-allocation path. testing.AllocsPerRun silently runs the body
// once as its own warm-up, so it cannot test "first"; instead the
// malloc counter is read around exactly one request.
func TestFirstRequestZeroAllocAfterWarmup(t *testing.T) {
	skipUnderRace(t)
	s := newTestServer(t, Options{Warmup: true})
	w := newNopWriter()
	req := hotRequest("/v1/predict", "model=resnet-50")

	// No runtime.GC() here: a GC clears the pool's per-P locals, and
	// the next Get re-allocates pool internals — exactly the cold-start
	// cost Warmup exists to pay in advance. The window below holds one
	// request and nothing else.
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	s.ServeHTTP(w, req)
	runtime.ReadMemStats(&after)

	if w.status != http.StatusOK {
		t.Fatalf("first request: status %d", w.status)
	}
	if d := after.Mallocs - before.Mallocs; d != 0 {
		t.Errorf("first request after warmup allocated %d objects, want 0", d)
	}
}

// raceEnabled is set by the tagged init in race_on_test.go.
var raceEnabled bool

// skipUnderRace skips allocation pins when the race detector is on:
// its instrumentation allocates on paths the production build does
// not, so alloc counts only mean anything in the plain build.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
}
