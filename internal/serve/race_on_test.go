//go:build race

package serve

// The race detector's instrumentation allocates on paths the
// production build does not, so the zero-allocation pins skip
// themselves under -race (the same tests still run in the plain pass
// of scripts/check.sh). An init under a build tag — rather than two
// tagged declarations of a constant — keeps every file in the package
// type-checkable at once, which the ceer-lint loader requires.
func init() { raceEnabled = true }
