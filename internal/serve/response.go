package serve

// Response document shapes. The hot endpoints (/v1/predict,
// /v1/recommend, /healthz) never instantiate these — their bodies are
// assembled by the append encoder in encode.go — but the structs are
// the normative schema: TestJSONEncoderEquivalence marshals them with
// encoding/json and byte-compares against the append encoder, so any
// drift between the two representations fails the suite. Cold endpoints
// (/v1/explain, /metrics) marshal them directly.

// PredictionJSON is one configuration's prediction.
type PredictionJSON struct {
	// Config is the "<k>x<family>" form ("2xP3").
	Config string `json:"config"`
	// Instance is the closest AWS offering ("p3.8xlarge").
	Instance string `json:"instance"`
	// GPU is the device ID ("v100"); K the GPU count.
	GPU string `json:"gpu"`
	K   int    `json:"k"`
	// HourlyUSD is the configuration's rental price under the request's
	// pricing scheme.
	HourlyUSD float64 `json:"hourly_usd"`
	// Iterations is D/(k·B) — Eq. (2)'s iteration count.
	Iterations int64 `json:"iterations"`
	// HeavyS..IterS decompose the predicted per-iteration seconds.
	HeavyS float64 `json:"heavy_s"`
	LightS float64 `json:"light_s"`
	CPUS   float64 `json:"cpu_s"`
	CommS  float64 `json:"comm_s"`
	IterS  float64 `json:"iter_s"`
	// TotalS and CostUSD are the epoch time T and cost C = T × price.
	TotalS  float64 `json:"total_s"`
	CostUSD float64 `json:"cost_usd"`
	// UnseenHeavy lists heavy op types predicted without a trained
	// model (degraded prediction).
	UnseenHeavy []string `json:"unseen_heavy,omitempty"`
}

// PredictResponse is the /v1/predict document.
type PredictResponse struct {
	CNN         string           `json:"cnn"`
	Batch       int64            `json:"batch"`
	Samples     int64            `json:"samples"`
	Pricing     string           `json:"pricing"`
	Predictions []PredictionJSON `json:"predictions"`
}

// CandidateJSON is one evaluated configuration of a recommendation.
type CandidateJSON struct {
	PredictionJSON
	// Feasible reports whether every constraint accepted the candidate.
	Feasible bool `json:"feasible"`
	// Score is the objective value (meaningful only when feasible).
	Score float64 `json:"score"`
	// Degraded explains partial training coverage of the device.
	Degraded string `json:"degraded,omitempty"`
}

// RecommendResponse is the /v1/recommend document.
type RecommendResponse struct {
	CNN        string          `json:"cnn"`
	Objective  string          `json:"objective"`
	Batch      int64           `json:"batch"`
	Samples    int64           `json:"samples"`
	Pricing    string          `json:"pricing"`
	Best       CandidateJSON   `json:"best"`
	Candidates []CandidateJSON `json:"candidates"`
}

// HealthzResponse is the /healthz document.
type HealthzResponse struct {
	// Status is the health state machine value: "starting" while New
	// builds tables and replays the journal, "healthy" when serving,
	// "degraded" while the panic breaker is tripped (still serving;
	// calibration shed), "draining" once Shutdown has begun.
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Models     int    `json:"models"`
	Devices    int    `json:"devices"`
	Batch      int64  `json:"batch"`
	MaxK       int    `json:"max_k"`
	// Panics counts recovered handler panics; ReloadRejected rejected
	// model swaps; DriftedCells the calibrator cells currently flagged
	// drifted (0 without calibration).
	Panics         uint64 `json:"panics"`
	ReloadRejected uint64 `json:"reload_rejected"`
	DriftedCells   int64  `json:"drifted_cells"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ContributionJSON attributes a slice of a predicted iteration to one
// op type (/v1/explain).
type ContributionJSON struct {
	Op      string  `json:"op"`
	Class   string  `json:"class"`
	Count   int     `json:"count"`
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"`
}

// ExplainResponse is the /v1/explain document.
type ExplainResponse struct {
	CNN           string             `json:"cnn"`
	GPU           string             `json:"gpu"`
	K             int                `json:"k"`
	HeavyS        float64            `json:"heavy_s"`
	LightS        float64            `json:"light_s"`
	CPUS          float64            `json:"cpu_s"`
	CommS         float64            `json:"comm_s"`
	IterS         float64            `json:"iter_s"`
	CommShare     float64            `json:"comm_share"`
	UnseenHeavy   []string           `json:"unseen_heavy,omitempty"`
	Contributions []ContributionJSON `json:"contributions"`
}

// ReloadResponse is the /admin/reload document. Status is "reloaded"
// (200) or "rejected" (422); a rejection carries the typed cause
// ("load", "version", "registry", "compile", "probe") and the
// underlying error, and Generation is the still-serving old generation.
type ReloadResponse struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Cause      string `json:"cause,omitempty"`
	Error      string `json:"error,omitempty"`
}

// ObserveResponse is the POST /v1/observe document: what this batch of
// observations did to the calibrator.
type ObserveResponse struct {
	Status string `json:"status"`
	// Accepted observations were journaled and folded in; Applied of
	// those updated a trained cell, Skipped matched nothing trainable.
	Accepted int `json:"accepted"`
	Applied  int `json:"applied"`
	Skipped  int `json:"skipped"`
	// Refits counts refit rounds this batch triggered; Generation is
	// the serving generation after any validated swap.
	Refits     int    `json:"refits"`
	Generation uint64 `json:"generation"`
	// Journaled reports whether a write-ahead journal is persisting the
	// stream.
	Journaled bool `json:"journaled"`
}
