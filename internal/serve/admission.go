package serve

import "sync/atomic"

// nanoTokens is the token bucket's internal unit: one admission token =
// 1e9 nano-tokens, so refill arithmetic stays in integers (one
// nano-token per nanosecond at rate 1 req/s) and the bucket state fits
// a single atomic word.
const nanoTokens = 1_000_000_000

// tokenBucket is a lock-free token-bucket admission controller. take is
// wait-free for readers: a CAS on the refill timestamp elects at most
// one caller to credit the elapsed time, then a CAS loop debits one
// token. Driven by the server Clock, its admit/shed sequence is a pure
// function of the request arrival times — the determinism the admission
// tests pin under a virtual clock and seeded Poisson arrivals.
type tokenBucket struct {
	// ratePerSec is tokens credited per second (equivalently,
	// nano-tokens per nanosecond). Immutable after construction.
	ratePerSec float64
	// burst is the bucket capacity in nano-tokens.
	burst int64

	tokens atomic.Int64 // current level, nano-tokens
	last   atomic.Int64 // Clock nanos of the last refill
}

// newTokenBucket returns a full bucket refilling at ratePerSec with the
// given burst depth (whole tokens), anchored at now.
func newTokenBucket(ratePerSec float64, burst int, now int64) *tokenBucket {
	tb := &tokenBucket{ratePerSec: ratePerSec, burst: int64(burst) * nanoTokens}
	tb.tokens.Store(tb.burst)
	tb.last.Store(now)
	return tb
}

// reset refills the bucket to its burst capacity and re-anchors the
// refill timestamp (used after warmup so synthetic traffic does not
// shed the first real request).
func (tb *tokenBucket) reset(now int64) {
	tb.tokens.Store(tb.burst)
	tb.last.Store(now)
}

// take debits one token at the given Clock time, refilling for the
// elapsed interval first. It reports whether the request is admitted.
//
//hot:path
func (tb *tokenBucket) take(now int64) bool {
	last := tb.last.Load()
	if now > last && tb.last.CompareAndSwap(last, now) {
		// This caller won the refill for (last, now]; credit it.
		credit := int64(float64(now-last) * tb.ratePerSec)
		for {
			cur := tb.tokens.Load()
			next := cur + credit
			if next > tb.burst {
				next = tb.burst
			}
			if tb.tokens.CompareAndSwap(cur, next) {
				break
			}
		}
	}
	for {
		cur := tb.tokens.Load()
		if cur < nanoTokens {
			return false
		}
		if tb.tokens.CompareAndSwap(cur, cur-nanoTokens) {
			return true
		}
	}
}
