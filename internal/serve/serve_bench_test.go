package serve

import (
	"testing"

	"ceer/internal/serve/loadgen"
)

// BenchmarkServePredict measures the full-sweep /v1/predict hot path —
// route, admission, parse, 17-candidate prediction, append-encoded
// body. Must report 0 allocs/op warm (gated via BENCH_serve.json).
func BenchmarkServePredict(b *testing.B) {
	s := warmServer(b)
	w := newNopWriter()
	req := hotRequest("/v1/predict", "model=resnet-50")
	s.ServeHTTP(w, req) // settle
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ServeHTTP(w, req)
	}
}

// BenchmarkServeRecommend measures the /v1/recommend hot path:
// RecommendInto over the full candidate set with a budget constraint.
// Must report 0 allocs/op warm.
func BenchmarkServeRecommend(b *testing.B) {
	s := warmServer(b)
	w := newNopWriter()
	req := hotRequest("/v1/recommend", "model=resnet-50&objective=cost&max_hourly_usd=50")
	s.ServeHTTP(w, req) // settle
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ServeHTTP(w, req)
	}
}

var benchSpec = loadgen.Spec{
	Seed:     1,
	Requests: 256,
	Models:   []string{"alexnet", "resnet-50", "vgg-16", "inception-v3"},
	Configs:  []string{"1xP2", "2xP3", "1xG4"},
}

// BenchmarkServeLoadgenClosed drives the daemon in-process with the
// deterministic load generator in closed-loop mode (4 workers,
// back-to-back) and reports latency percentiles and throughput — the
// numbers recorded into BENCH_serve.json by `make bench-serve`.
func BenchmarkServeLoadgenClosed(b *testing.B) {
	s := warmServer(b)
	target := loadgen.NewHandlerTarget(s)
	reqs := loadgen.Prepare(loadgen.Generate(benchSpec))
	var res *loadgen.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = loadgen.RunClosed(target, reqs, 4)
	}
	b.StopTimer()
	reportLoadgen(b, res)
}

// BenchmarkServeLoadgenOpen is the open-loop variant: Poisson arrivals
// at 20k req/s, latency measured from scheduled arrival (queueing
// delay included).
func BenchmarkServeLoadgenOpen(b *testing.B) {
	s := warmServer(b)
	target := loadgen.NewHandlerTarget(s)
	reqs := loadgen.Prepare(loadgen.Generate(benchSpec))
	arrivals := loadgen.PoissonArrivals(benchSpec.Seed, 20_000, len(reqs))
	var res *loadgen.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = loadgen.RunOpen(target, reqs, arrivals, 4)
	}
	b.StopTimer()
	reportLoadgen(b, res)
}

func reportLoadgen(b *testing.B, res *loadgen.Result) {
	b.Helper()
	if res == nil {
		return
	}
	for i, o := range res.Outcomes {
		if o.Status != 200 {
			b.Fatalf("request %d: status %d", i, o.Status)
		}
	}
	p50, p99, p999 := res.Percentiles()
	b.ReportMetric(p50, "p50_us")
	b.ReportMetric(p99, "p99_us")
	b.ReportMetric(p999, "p999_us")
	b.ReportMetric(res.Throughput(), "req_s")
}

// BenchmarkServeEncodePredict isolates the encoder: render the predict
// document into a warm scratch without the HTTP layer.
func BenchmarkServeEncodePredict(b *testing.B) {
	s := warmServer(b)
	sc := s.arena.get()
	defer s.arena.put(sc)
	sc.q.reset(s)
	sc.q.model = "resnet-50"
	me := s.findModel("resnet-50")
	if me == nil {
		b.Fatal("resnet-50 not in zoo")
	}
	cands := s.candsByK[s.maxK]
	metas := s.metaByK[s.maxK]
	if status, msg := s.renderPredict(sc, me, cands, metas); status != 200 {
		b.Fatalf("render: %d %s", status, msg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if status, _ := s.renderPredict(sc, me, cands, metas); status != 200 {
			b.Fatal("render failed")
		}
	}
}
