package serve

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ceer"
	"ceer/internal/retry"
)

// Typed reload-rejection causes. Every rejected swap keeps the old
// generation serving; the cause says why the new one never made it.
const (
	// ReloadCauseLoad: the file would not read or decode (corruption,
	// missing file) even after the mid-write retry budget.
	ReloadCauseLoad = "load"
	// ReloadCauseVersion: the file declares an unsupported persist
	// version.
	ReloadCauseVersion = "version"
	// ReloadCauseRegistry: the file references a device ID this
	// process never registered.
	ReloadCauseRegistry = "registry"
	// ReloadCauseCompile: the loaded predictor would not compile into
	// serving tables.
	ReloadCauseCompile = "compile"
	// ReloadCauseProbe: the golden prediction set diverged beyond
	// Options.ReloadTolerance from the outgoing tables.
	ReloadCauseProbe = "probe"
)

// ReloadError is a rejected swap: the typed cause plus the underlying
// error. The serving generation is unchanged when one is returned.
type ReloadError struct {
	Cause string
	Err   error
}

func (e *ReloadError) Error() string {
	return fmt.Sprintf("serve: reload rejected (%s): %v", e.Cause, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ReloadError) Unwrap() error { return e.Err }

// classifyReloadFault retries only the mid-write signature: a
// *PersistError whose JSON never decoded (Version == 0) — the
// footprint of reading a model file while a writer is replacing it.
// Version and registry mismatches are deterministic; retrying them
// cannot help.
func classifyReloadFault(err error) retry.Decision {
	var pe *ceer.PersistError
	if errors.As(err, &pe) && pe.Version == 0 {
		return retry.Retry
	}
	return retry.Fail
}

// reject records a rejected swap: metric, last-cause marker, typed
// error. Callers hold reloadMu.
func (s *Server) reject(cause string, err error) (uint64, error) {
	s.met.srv.reloadRejected.Add(1)
	s.lastReloadCause.Store(&cause)
	return 0, &ReloadError{Cause: cause, Err: err}
}

// probe validates incoming tables against the outgoing ones over the
// golden prediction set: every zoo model × every candidate
// configuration at the serving batch. Each incoming prediction must be
// finite, positive, and within Options.ReloadTolerance (relative) of
// the outgoing table's value — a corrupt or stale-but-plausible model
// file cannot silently replace a good generation. Callers hold
// reloadMu.
func (s *Server) probe(next *ceer.CompiledSystem) error {
	old := s.box.Load()
	cands := s.candsByK[s.maxK]
	metas := s.metaByK[s.maxK]
	ds := ceer.ImageNet
	for mi := range s.models {
		me := &s.models[mi]
		for ci := range cands {
			np, err := next.PredictTraining(me.g, cands[ci], ds, ceer.OnDemand)
			if err != nil {
				return fmt.Errorf("probe %s/%s: %w", me.name, metas[ci].config, err)
			}
			if !(np.TotalSeconds > 0) || math.IsInf(np.TotalSeconds, 0) ||
				!(np.CostUSD > 0) || math.IsInf(np.CostUSD, 0) {
				return fmt.Errorf("probe %s/%s: non-finite or non-positive prediction (total_s=%v cost_usd=%v)",
					me.name, metas[ci].config, np.TotalSeconds, np.CostUSD)
			}
			op, err := old.PredictTraining(me.g, cands[ci], ds, ceer.OnDemand)
			if err != nil {
				// The outgoing tables cannot score this cell; nothing
				// to compare against.
				continue
			}
			if rel := math.Abs(np.TotalSeconds-op.TotalSeconds) / op.TotalSeconds; rel > s.tol {
				return fmt.Errorf("probe %s/%s: total_s diverges %.1f%% (have %v, incoming %v, tolerance %.0f%%)",
					me.name, metas[ci].config, rel*100, op.TotalSeconds, np.TotalSeconds, s.tol*100)
			}
		}
	}
	return nil
}

// Reload re-reads Options.ModelPath and swaps the serving tables —
// after validation. A mid-write file is retried with backoff; version
// and registry mismatches, compile failures, and golden-probe
// divergence reject the swap, keep the old generation serving,
// increment reload_rejected, and return a *ReloadError carrying the
// typed cause. Concurrent Reloads serialize; requests are never
// blocked. Returns the new generation on an accepted swap.
func (s *Server) Reload() (uint64, error) {
	if s.opts.ModelPath == "" {
		return 0, errors.New("serve: no model path configured (start with -models to enable reload)")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()

	var sys *ceer.System
	err := s.reloadRetry.Do(context.Background(), "reload", 1, func(int) error {
		loaded, lerr := ceer.LoadFile(s.opts.ModelPath)
		if lerr == nil {
			sys = loaded
		}
		return lerr
	})
	if err != nil {
		switch {
		case errors.Is(err, ceer.ErrUnsupportedVersion):
			return s.reject(ReloadCauseVersion, err)
		case errors.Is(err, ceer.ErrUnknownDevice):
			return s.reject(ReloadCauseRegistry, err)
		default:
			return s.reject(ReloadCauseLoad, err)
		}
	}
	comp, err := sys.Compiled(s.batch)
	if err != nil {
		return s.reject(ReloadCauseCompile, err)
	}
	if err := s.probe(comp); err != nil {
		return s.reject(ReloadCauseProbe, err)
	}
	s.sys.Store(sys)
	s.met.srv.reloads.Add(1)
	s.lastReloadCause.Store(nil)
	return s.Install(comp), nil
}
