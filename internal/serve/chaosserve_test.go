//go:build chaosserve

package serve

// Run with: go test -tags chaosserve ./internal/serve -run TestChaosServe
// (scripts/chaos-serve.sh builds the daemon with the same tag and
// drives the identical injection over real HTTP).

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// TestChaosServeInjectedPanic: under the chaosserve tag, `chaos=panic`
// fires a real panic mid-handler — after the arena scratch is checked
// out — and the request must come back as a structured 500 while
// subsequent requests still produce byte-identical predictions (no
// leaked or corrupted scratch).
func TestChaosServeInjectedPanic(t *testing.T) {
	s := newTestServer(t, Options{PanicThreshold: 1 << 30})
	_, want := s.DoLocal(http.MethodGet, "/v1/predict", "model=resnet-50")

	for i := 0; i < 32; i++ {
		status, body := s.DoLocal(http.MethodGet, "/v1/predict", "model=resnet-50&chaos=panic")
		if status != http.StatusInternalServerError || !strings.Contains(string(body), "panic") {
			t.Fatalf("injected panic %d: status %d, body %s (want 500 mentioning panic)", i, status, body)
		}
		if _, got := s.DoLocal(http.MethodGet, "/v1/predict", "model=resnet-50"); !bytes.Equal(got, want) {
			t.Fatalf("prediction changed after %d injected panics", i+1)
		}
	}
	if got := s.met.srv.panics.Load(); got != 32 {
		t.Errorf("panics = %d, want 32", got)
	}

	// Non-panic chaos values are rejected like any unknown parameter.
	if status, _ := s.DoLocal(http.MethodGet, "/v1/predict", "model=resnet-50&chaos=nope"); status != http.StatusBadRequest {
		t.Errorf("chaos=nope: status %d, want 400", status)
	}
}
