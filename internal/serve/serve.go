// Package serve is the prediction daemon: a stdlib net/http server
// exposing the trained system's predict / recommend / explain paths as
// JSON endpoints over the compiled serving tables (see DESIGN.md §13).
//
// The request hot path is allocation-free in steady state: requests
// resolve through an atomic CompiledBox (lock-free reads), per-request
// scratch comes from a typed sync.Pool arena, queries are parsed by
// substring scanning (no net/url allocation), and responses are
// serialized by the append encoder in jsonenc.go/encode.go. Admission
// is a lock-free token bucket plus a queue-depth cap, both driven by an
// injectable Clock so shedding behaviour is deterministic under test.
// Model hot-swap (SIGHUP, /admin/reload, or Calibrator.BindBox on
// Server.Box) atomically replaces the compiled tables; in-flight
// requests finish on the tables they loaded at entry.
package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"ceer"
	"ceer/internal/retry"
)

// Options configures a Server. The zero value serves the default zoo
// batch with no admission limits.
type Options struct {
	// Batch is the per-GPU batch size the zoo tables are compiled at
	// (0 = the paper default, 32). Requests for other batch sizes fall
	// back to the uncompiled folded predictor (cold path).
	Batch int64
	// MaxK bounds candidate GPU counts per family (0 = 4, the paper's
	// sweep).
	MaxK int
	// ModelPath, when non-empty, is the persist-v3 model file Reload
	// (and SIGHUP / POST /admin/reload) re-reads for hot-swap.
	ModelPath string
	// RatePerSec caps sustained admitted request rate over the /v1/*
	// endpoints via a token bucket (0 = unlimited).
	RatePerSec float64
	// Burst is the token-bucket depth in requests (0 = max(1, ⌈rate⌉)).
	Burst int
	// MaxInFlight caps concurrent /v1/* requests; excess sheds with 429
	// (0 = unlimited).
	MaxInFlight int
	// RequestTimeout is the per-request compute budget; a request over
	// budget answers 504 (0 = none).
	RequestTimeout time.Duration
	// Warmup pre-compiles the tables, pre-faults the arena, and runs
	// synthetic requests through every hot endpoint before the server
	// accepts traffic, so the first real request is already on the
	// zero-allocation warm path.
	Warmup bool
	// Clock overrides the time source (tests; nil = monotonic clock).
	Clock Clock

	// Calibration enables the in-daemon observe→predict→calibrate loop
	// behind POST /v1/observe (nil = endpoint answers 404). See
	// CalibrationOptions for the crash-safety contract.
	Calibration *CalibrationOptions

	// ReloadTolerance bounds the golden-probe divergence a reload (or
	// calibration refit) may introduce: every probe prediction of the
	// incoming tables must be finite, positive, and within this
	// relative fraction of the outgoing tables' value (0 = 0.5). Swaps
	// outside tolerance are rejected; the old generation keeps serving.
	ReloadTolerance float64

	// PanicThreshold trips the breaker into the degraded state after
	// this many recovered handler panics within PanicWindow (0 = 3).
	PanicThreshold int
	// PanicWindow is the breaker's sliding window (0 = 10s).
	PanicWindow time.Duration
	// RecoveryWindow is how long after the last recovered panic the
	// breaker un-trips back to healthy (0 = 30s).
	RecoveryWindow time.Duration
}

// modelEntry pairs a zoo model with its cached graph. Entries live in a
// slice scanned linearly — 12 string compares beat a map lookup at this
// size and keep the resolver legal under the hotpath analyzer.
type modelEntry struct {
	name string
	g    *ceer.Graph
}

// candMeta precomputes every string the encoder needs for one candidate
// configuration. Config.String, InstanceName, and ID.Family allocate or
// take the registry lock, so they run once at construction, never per
// request.
type candMeta struct {
	config   string // "2xP3"
	instance string // "p3.8xlarge"
	gpu      string // "v100"
	family   string // "P3"
	k        int
}

// Server is the daemon. Create with New, expose via Handler or Serve,
// stop with Shutdown.
type Server struct {
	batch  int64
	maxK   int
	opts   Options
	clock  Clock
	budget int64 // RequestTimeout in nanos (0 = none)

	// box holds the compiled serving tables; swaps go through Store via
	// Reload/Install (or a Calibrator bound to Box()). sys is the System
	// behind the current tables, for the cold non-default-batch path.
	box ceer.CompiledBox
	gen atomic.Uint64
	sys atomic.Pointer[ceer.System]

	models []modelEntry
	// candsByK[k] / metaByK[k] list every candidate configuration with
	// 1..k GPUs per family (cloud.Configs order), k = 1..maxK.
	candsByK [][]ceer.InstanceConfig
	metaByK  [][]candMeta

	arena    *arena
	met      metrics
	bucket   *tokenBucket
	maxInfl  int64
	inflight atomic.Int64
	draining atomic.Bool
	ready    atomic.Bool

	// breaker is the panic circuit breaker behind the health state
	// machine; tol bounds golden-probe divergence on swaps.
	breaker *panicBreaker
	tol     float64

	// calib is the in-daemon calibration loop (nil when disabled).
	calib *calibLoop

	reloadMu sync.Mutex
	httpSrv  *http.Server
	startNs  int64
	// reloadRetry absorbs mid-write model files: load attempts whose
	// JSON never decoded (PersistError.Version == 0) retry with
	// backoff before the reload is rejected.
	reloadRetry retry.Policy
	// lastReloadCause names the most recent rejected swap's typed
	// cause ("" after a success); surfaced by /metrics.
	lastReloadCause atomic.Pointer[string]

	// afterAdmit is a test hook invoked after admission, before the
	// endpoint handler (drain and race tests park requests here).
	afterAdmit func(ep int)
}

// New builds a Server over a trained (or loaded) system: compiles the
// zoo tables at the serving batch size, caches every zoo graph and
// candidate-configuration string, and (with Options.Warmup) pre-faults
// the arena and exercises every hot endpoint.
func New(sys *ceer.System, opts Options) (*Server, error) {
	s := &Server{opts: opts, batch: opts.Batch, maxK: opts.MaxK, clock: opts.Clock}
	if s.batch == 0 {
		s.batch = 32 // the zoo default batch (paper Section III)
	}
	if s.maxK <= 0 {
		s.maxK = 4
	}
	if s.clock == nil {
		s.clock = NewRealClock()
	}
	s.budget = opts.RequestTimeout.Nanoseconds()
	s.startNs = s.clock.Nanos()

	comp, err := sys.Compiled(s.batch)
	if err != nil {
		return nil, fmt.Errorf("serve: compiling zoo tables: %w", err)
	}
	s.box.Store(comp)
	s.sys.Store(sys)

	names := ceer.Models()
	s.models = make([]modelEntry, 0, len(names))
	for _, name := range names {
		g, err := ceer.BuildModelCached(name, s.batch)
		if err != nil {
			return nil, fmt.Errorf("serve: building %s: %w", name, err)
		}
		s.models = append(s.models, modelEntry{name: name, g: g})
	}

	s.candsByK = make([][]ceer.InstanceConfig, s.maxK+1)
	s.metaByK = make([][]candMeta, s.maxK+1)
	for k := 1; k <= s.maxK; k++ {
		cands := ceer.AllConfigs(k)
		metas := make([]candMeta, len(cands))
		for i, cfg := range cands {
			metas[i] = candMeta{
				config:   cfg.String(),
				instance: cfg.InstanceName(),
				gpu:      string(cfg.GPU),
				family:   cfg.GPU.Family(),
				k:        cfg.K,
			}
		}
		s.candsByK[k] = cands
		s.metaByK[k] = metas
	}

	s.arena = newArena()
	if opts.RatePerSec > 0 {
		burst := opts.Burst
		if burst <= 0 {
			burst = int(opts.RatePerSec)
			if float64(burst) < opts.RatePerSec {
				burst++
			}
			if burst < 1 {
				burst = 1
			}
		}
		s.bucket = newTokenBucket(opts.RatePerSec, burst, s.clock.Nanos())
	}
	s.maxInfl = int64(opts.MaxInFlight)

	s.tol = opts.ReloadTolerance
	if s.tol <= 0 {
		s.tol = 0.5
	}
	s.breaker = newPanicBreaker(opts.PanicThreshold, opts.PanicWindow, opts.RecoveryWindow)
	s.reloadRetry = retry.Policy{
		MaxAttempts: 3,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Multiplier:  2,
		Classify:    classifyReloadFault,
	}

	if opts.Calibration != nil {
		if err := s.initCalibration(sys, opts.Calibration); err != nil {
			return nil, err
		}
	}

	if opts.Warmup {
		s.warmup()
	}
	s.ready.Store(true)
	return s, nil
}

// Handler returns the daemon's http.Handler (the Server itself).
func (s *Server) Handler() http.Handler { return s }

// Generation returns the model generation: 0 at start, +1 per
// successful Reload/Install.
func (s *Server) Generation() uint64 { return s.gen.Load() }

// Box exposes the server's hot-swap point so a calibration loop can
// publish recalibrated tables directly (Calibrator.BindBox(s.Box(),
// graphs)); requests pick up the new tables on their next Load.
func (s *Server) Box() *ceer.CompiledBox { return &s.box }

// Install atomically publishes pre-compiled tables (programmatic
// hot-swap; Reload is the file-based form). In-flight requests finish
// on the tables they already loaded.
func (s *Server) Install(comp *ceer.CompiledSystem) uint64 {
	s.box.Store(comp)
	return s.gen.Add(1)
}

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s}
	s.reloadMu.Lock()
	s.httpSrv = srv
	s.reloadMu.Unlock()
	return srv.Serve(ln)
}

// DrainError reports a drain that hit its deadline with requests still
// in flight. The listener is force-closed before it is returned — the
// daemon does not hang on a stuck request — and the straggler count is
// carried for the operator log.
type DrainError struct {
	// InFlight is the number of requests still running at the deadline.
	InFlight int64
	// Err is the context error that ended the wait.
	Err error
}

func (e *DrainError) Error() string {
	return fmt.Sprintf("serve: drain deadline reached with %d requests still in flight: %v", e.InFlight, e.Err)
}

// Unwrap exposes the deadline cause to errors.Is.
func (e *DrainError) Unwrap() error { return e.Err }

// Shutdown drains the daemon: new /v1/* and /admin requests answer 503
// immediately, every in-flight request runs to completion on its
// already-loaded tables, then the listener closes. /healthz keeps
// answering (status "draining") throughout, so orchestrators can watch
// the drain. If ctx expires first, the listener is force-closed —
// cutting the stragglers — and a *DrainError carrying their count is
// returned, so a stuck in-flight request can never wedge shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	for s.inflight.Load() != 0 {
		select {
		case <-ctx.Done():
			n := s.inflight.Load()
			s.reloadMu.Lock()
			srv := s.httpSrv
			s.reloadMu.Unlock()
			if srv != nil {
				_ = srv.Close() // cut the stragglers; Serve returns
			}
			return &DrainError{InFlight: n, Err: ctx.Err()}
		default:
			time.Sleep(200 * time.Microsecond)
		}
	}
	if s.calib != nil {
		// All in-flight observations are journaled and applied; close
		// the journal so its final bytes are flushed and fsynced.
		s.calib.close()
	}
	s.reloadMu.Lock()
	srv := s.httpSrv
	s.reloadMu.Unlock()
	if srv != nil {
		return srv.Shutdown(ctx)
	}
	return nil
}

// DoLocal runs one request through the handler in-process — no
// listener, no TCP — and returns the status code and body. It is the
// warmup driver, the `ceer predict -json` back end (which is how the
// smoke test byte-compares CLI and daemon output), and a convenient
// test primitive.
func (s *Server) DoLocal(method, path, rawQuery string) (int, []byte) {
	return s.DoLocalBody(method, path, rawQuery, nil)
}

// DoLocalBody is DoLocal with a request body (POST /v1/observe).
func (s *Server) DoLocalBody(method, path, rawQuery string, body []byte) (int, []byte) {
	w := &memWriter{}
	r := &http.Request{Method: method, URL: &url.URL{Path: path, RawQuery: rawQuery}}
	if body != nil {
		r.Body = io.NopCloser(bytes.NewReader(body))
	}
	s.ServeHTTP(w, r)
	status := w.status
	if status == 0 {
		status = http.StatusOK
	}
	return status, w.body
}

// memWriter is the in-process ResponseWriter behind DoLocal.
type memWriter struct {
	h      http.Header
	status int
	body   []byte
}

func (w *memWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 4)
	}
	return w.h
}
func (w *memWriter) WriteHeader(status int) { w.status = status }
func (w *memWriter) Write(p []byte) (int, error) {
	w.body = append(w.body, p...)
	return len(p), nil
}

// warmup exercises every hot endpoint over every zoo model with
// synthetic in-process requests, pre-faults the arena, then resets the
// metrics and refills the admission bucket so warmup traffic is
// invisible to clients. After warmup the first real request runs the
// steady-state zero-allocation path (pinned by the first-request test).
func (s *Server) warmup() {
	s.arena.prefault(4, len(s.candsByK[s.maxK]))
	for _, m := range s.models {
		q := "model=" + m.name
		s.DoLocal(http.MethodGet, "/v1/predict", q)
		s.DoLocal(http.MethodGet, "/v1/recommend", q+"&objective=cost")
		s.DoLocal(http.MethodGet, "/v1/recommend", q+"&objective=time&max_hourly_usd=1e9")
	}
	s.DoLocal(http.MethodGet, "/healthz", "")
	s.met.reset()
	if s.bucket != nil {
		s.bucket.reset(s.clock.Nanos())
	}
}
