package serve

import (
	"sync"

	"ceer"
)

// scratch is one request's worth of reusable state: the response
// buffer, the parsed query, the RecommendInto target (candidate slice
// reused across requests), and pre-bound budget constraints. Scratches
// live in a typed sync.Pool — steady state never allocates one, and a
// warmed scratch's buffer never regrows (responses are bounded by the
// fixed candidate set).
type scratch struct {
	buf []byte
	q   query
	rec ceer.Recommendation

	// consHourly/consTotal are closures bound once, at scratch
	// construction, over this scratch's query fields — constructing a
	// ceer.MaxHourlyBudget per request would allocate a closure on the
	// hot path. consSel is the per-request selection (an array slice, so
	// assembling the active set is index assignment, not append).
	consHourly ceer.Constraint
	consTotal  ceer.Constraint
	consSel    [2]ceer.Constraint
}

// newScratch builds a scratch with its constraint closures pre-bound
// and a response buffer sized for a full-candidate response.
func newScratch() *scratch {
	s := &scratch{buf: make([]byte, 0, 8192)}
	s.consHourly = func(p ceer.Prediction) bool { return p.HourlyUSD <= s.q.hourlyBudget }
	s.consTotal = func(p ceer.Prediction) bool { return p.CostUSD <= s.q.totalBudget }
	return s
}

// constraints assembles the active constraint set for the current
// query into consSel and returns it as a slice (len 0..2).
//
//hot:path
func (s *scratch) constraints() []ceer.Constraint {
	n := 0
	if s.q.hasHourly {
		s.consSel[n] = s.consHourly
		n++
	}
	if s.q.hasTotal {
		s.consSel[n] = s.consTotal
		n++
	}
	return s.consSel[:n]
}

// arena is the typed sync.Pool of scratches.
type arena struct {
	pool sync.Pool
}

func newArena() *arena {
	a := &arena{}
	a.pool.New = func() any { return newScratch() }
	return a
}

//hot:path
func (a *arena) get() *scratch {
	return a.pool.Get().(*scratch)
}

//hot:path
func (a *arena) put(s *scratch) {
	a.pool.Put(s)
}

// prefault warms the arena: it instantiates n scratches, grows their
// buffers and candidate slices to steady-state capacity, and returns
// them to the pool, so even a cold pool hit after warmup serves without
// growing anything.
func (a *arena) prefault(n, candidates int) {
	scs := make([]*scratch, n)
	for i := range scs {
		//lint:ignore poolpair warmup holds all n scratches at once so Get returns distinct ones; the second loop Puts every one back
		s := a.get()
		if cap(s.rec.Candidates) < candidates {
			s.rec.Candidates = make([]ceer.Candidate, 0, candidates)
		}
		//lint:ignore poolpair parked in the local warmup slice, returned to the pool by the loop below
		scs[i] = s
	}
	for _, s := range scs {
		a.put(s)
	}
}
