package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"

	"ceer/internal/trace"
)

// Fsync policies for the observation journal.
const (
	// FsyncAlways fsyncs after every appended observation: a kill -9
	// at any instant loses at most the torn final line — and that
	// observation was never acknowledged, so replay is exact.
	FsyncAlways = "always"
	// FsyncNever leaves flushing to the OS: faster ingestion, and a
	// hard crash may lose the tail of *acknowledged* observations
	// (replay still recovers a consistent prefix).
	FsyncNever = "never"
)

// obsJournal is the calibration loop's write-ahead log: every accepted
// observation is encoded, flushed, and (policy permitting) fsynced
// BEFORE its rank-1 update applies, so the on-disk journal is always
// at or ahead of the in-memory state and a restart replays to
// byte-identical predictor state. The format is the plain JSONL
// observation log (trace.ObsWriter) — `ceer calibrate -obs` reads it
// directly — and the reader tolerates a torn final line exactly like
// the campaign checkpoint.
type obsJournal struct {
	f    *os.File
	w    *trace.ObsWriter
	sync bool

	// appended counts observations written by this process; replayed /
	// tornLine describe what the existing file contributed at open.
	appended int
	replayed int
	tornLine int
}

// openObsJournal opens (creating if absent) the journal at path,
// replays any existing observations through apply, and leaves the file
// positioned for appending. A torn final line is tolerated and
// recorded; corruption anywhere else fails the open — a damaged
// journal must not silently shrink the calibration state.
func openObsJournal(path, fsync string, apply func(trace.Obs) error) (*obsJournal, error) {
	switch fsync {
	case "", FsyncAlways, FsyncNever:
	default:
		return nil, fmt.Errorf("serve: unknown fsync policy %q (want %q or %q)", fsync, FsyncAlways, FsyncNever)
	}
	j := &obsJournal{sync: fsync != FsyncNever}

	rf, err := os.Open(path)
	switch {
	case err == nil:
		or := trace.NewObsReader(rf)
		for {
			o, rerr := or.Read()
			if rerr == io.EOF {
				j.tornLine = or.Torn()
				break
			}
			if rerr != nil {
				_ = rf.Close() // read side; nothing buffered to lose
				return nil, fmt.Errorf("serve: replaying observation journal %s: %w", path, rerr)
			}
			if aerr := apply(o); aerr != nil {
				_ = rf.Close() // read side; nothing buffered to lose
				return nil, fmt.Errorf("serve: replaying observation journal %s line %d: %w", path, or.Line(), aerr)
			}
			j.replayed++
		}
		if cerr := rf.Close(); cerr != nil {
			return nil, cerr
		}
	case errors.Is(err, os.ErrNotExist):
		// Fresh journal.
	default:
		return nil, fmt.Errorf("serve: opening observation journal %s: %w", path, err)
	}

	if j.tornLine > 0 {
		// Cut the torn fragment before appending: a new record written
		// after an unterminated tail would concatenate into one corrupt
		// line and poison the *next* replay.
		if err := truncateToLine(path, j.tornLine); err != nil {
			return nil, fmt.Errorf("serve: trimming torn journal tail %s: %w", path, err)
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening observation journal %s for append: %w", path, err)
	}
	j.f = f
	j.w = trace.NewObsWriter(f)
	return j, nil
}

// truncateToLine truncates the file so only physical lines before the
// 1-based line number remain.
func truncateToLine(path string, line int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off := 0
	for i := 1; i < line; i++ {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			off = len(data)
			break
		}
		off += nl + 1
	}
	return os.Truncate(path, int64(off))
}

// append writes one observation through to disk (write-ahead: callers
// apply the update only after this returns nil).
func (j *obsJournal) append(o trace.Obs) error {
	if err := j.w.Write(o); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("serve: flushing observation journal: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("serve: fsyncing observation journal: %w", err)
		}
	}
	j.appended++
	return nil
}

// close flushes and closes the journal file.
func (j *obsJournal) close() error {
	if err := j.w.Flush(); err != nil {
		_ = j.f.Close() // flush already failed; surface that error
		return err
	}
	return j.f.Close()
}
