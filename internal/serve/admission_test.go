package serve

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"ceer"
	"ceer/internal/serve/loadgen"
)

const quickQuery = "model=alexnet&config=1xP2"

// TestTokenBucketExactSequence pins the admission arithmetic under a
// virtual clock: rate 1 req/s, burst 1 starts full, so the outcomes at
// t=0, 0, 0.5s, 1.5s are admit, shed, shed, admit.
func TestTokenBucketExactSequence(t *testing.T) {
	vc := &vClock{}
	s := newTestServer(t, Options{RatePerSec: 1, Burst: 1, Clock: vc})

	steps := []struct {
		atNanos int64
		status  int
	}{
		{0, http.StatusOK},                        // burst token
		{0, http.StatusTooManyRequests},           // empty, no credit
		{500_000_000, http.StatusTooManyRequests}, // 0.5 tokens accrued
		{1_500_000_000, http.StatusOK},            // >= 1 token accrued
	}
	for i, st := range steps {
		vc.set(st.atNanos)
		status, body := s.DoLocal(http.MethodGet, "/v1/predict", quickQuery)
		if status != st.status {
			t.Fatalf("step %d (t=%dns): status %d, want %d (%s)", i, st.atNanos, status, st.status, body)
		}
	}
	if shed := s.met.eps[epPredict].shedRate.Load(); shed != 2 {
		t.Errorf("shedRate = %d, want 2", shed)
	}
}

// TestTokenBucketRefillDeterminism replays a Poisson arrival schedule
// (the loadgen's seeded stream) through two fresh servers on virtual
// clocks: the admit/shed decision sequence must be identical, and the
// overload must actually shed.
func TestTokenBucketRefillDeterminism(t *testing.T) {
	arrivals := loadgen.PoissonArrivals(7, 4000, 200)
	run := func() []int {
		vc := &vClock{}
		s := newTestServer(t, Options{RatePerSec: 1000, Burst: 2, Clock: vc})
		statuses := make([]int, len(arrivals))
		for i, at := range arrivals {
			vc.set(at)
			statuses[i], _ = s.DoLocal(http.MethodGet, "/v1/predict", quickQuery)
		}
		return statuses
	}
	a, b := run(), run()
	admitted, shed := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: run A status %d, run B status %d", i, a[i], b[i])
		}
		switch a[i] {
		case http.StatusOK:
			admitted++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("request %d: unexpected status %d", i, a[i])
		}
	}
	if admitted == 0 || shed == 0 {
		t.Errorf("want a mix of admits and sheds at 4x overload, got %d admitted / %d shed", admitted, shed)
	}
}

// TestQueueDepthCap saturates MaxInFlight with parked requests (via the
// afterAdmit test hook) and verifies the next request sheds with 429
// and the shed_queue counter moves.
func TestQueueDepthCap(t *testing.T) {
	s := newTestServer(t, Options{MaxInFlight: 2})
	park := make(chan struct{})
	admitted := make(chan struct{}, 2)
	s.afterAdmit = func(int) {
		admitted <- struct{}{}
		<-park
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if status, _ := s.DoLocal(http.MethodGet, "/v1/predict", quickQuery); status != http.StatusOK {
				t.Errorf("parked request: status %d", status)
			}
		}()
	}
	<-admitted
	<-admitted

	// Both slots held: the third request must shed on queue depth.
	s.afterAdmit = nil
	if status, _ := s.DoLocal(http.MethodGet, "/v1/predict", quickQuery); status != http.StatusTooManyRequests {
		t.Errorf("over-cap request: status %d, want 429", status)
	}
	if n := s.met.eps[epPredict].shedQueue.Load(); n != 1 {
		t.Errorf("shedQueue = %d, want 1", n)
	}
	close(park)
	wg.Wait()
}

// TestGracefulDrain parks in-flight requests, starts Shutdown, and
// verifies: new work answers 503, /healthz reports draining, the parked
// requests complete with 200 (never dropped), and Shutdown returns nil.
func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, Options{})
	park := make(chan struct{})
	admitted := make(chan struct{}, 3)
	s.afterAdmit = func(int) {
		admitted <- struct{}{}
		<-park
	}

	statuses := make([]int, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _ = s.DoLocal(http.MethodGet, "/v1/predict", quickQuery)
		}(i)
	}
	for i := 0; i < 3; i++ {
		<-admitted
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// Wait for the draining flag so the refusal below is deterministic.
	for !s.draining.Load() {
		time.Sleep(100 * time.Microsecond)
	}

	if status, _ := s.DoLocal(http.MethodGet, "/v1/predict", quickQuery); status != http.StatusServiceUnavailable {
		t.Errorf("request during drain: status %d, want 503", status)
	}
	m := getJSON(t, s, "/healthz", "", http.StatusOK)
	if m["status"] != "draining" {
		t.Errorf("healthz during drain: %v", m["status"])
	}

	close(park)
	wg.Wait()
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i, status := range statuses {
		if status != http.StatusOK {
			t.Errorf("in-flight request %d finished with %d, want 200", i, status)
		}
	}
}

// TestRequestTimeout drives a handler on a clock that leaps past the
// request budget between admission and finish: the response must be 504
// and the timeouts counter must move.
func TestRequestTimeout(t *testing.T) {
	s := newTestServer(t, Options{
		RequestTimeout: time.Millisecond,
		Clock:          &stepClock{step: 2_000_000}, // +2ms per reading
	})
	status, body := s.DoLocal(http.MethodGet, "/v1/predict", quickQuery)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", status, body)
	}
	if n := s.met.eps[epPredict].timeouts.Load(); n != 1 {
		t.Errorf("timeouts = %d, want 1", n)
	}
}

// TestHotSwapHammer swaps the compiled tables while readers hammer the
// predict and recommend paths. The swapped-in tables come from a
// save/load round trip of the same system, so every response must be
// byte-identical to the pre-swap reference no matter which generation a
// request lands on — a torn or inconsistent swap shows up as a body
// mismatch, and `go test -race` catches unsynchronized access.
func TestHotSwapHammer(t *testing.T) {
	sys := testSystem(t)
	s := newTestServer(t, Options{})

	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sys2, err := ceer.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	comp2, err := sys2.Compiled(32)
	if err != nil {
		t.Fatal(err)
	}
	comp1 := s.box.Load()

	queries := []struct{ path, q string }{
		{"/v1/predict", "model=alexnet"},
		{"/v1/predict", "model=resnet-50&config=2xP3"},
		{"/v1/recommend", "model=vgg-16&objective=cost"},
	}
	want := make([]string, len(queries))
	for i, qq := range queries {
		status, body := s.DoLocal(http.MethodGet, qq.path, qq.q)
		if status != http.StatusOK {
			t.Fatalf("reference %s?%s: status %d", qq.path, qq.q, status)
		}
		want[i] = string(body)
	}

	stop := make(chan struct{})
	swapperDone := make(chan struct{})
	go func() {
		defer close(swapperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Install(comp2)
			s.Install(comp1)
		}
	}()

	const readers, rounds = 4, 50
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				i := (r + n) % len(queries)
				status, body := s.DoLocal(http.MethodGet, queries[i].path, queries[i].q)
				if status != http.StatusOK {
					t.Errorf("reader %d round %d: status %d", r, n, status)
					return
				}
				if string(body) != want[i] {
					t.Errorf("reader %d round %d: body diverged under hot swap", r, n)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	<-swapperDone
	if g := s.Generation(); g == 0 {
		t.Error("swapper never ran")
	} else {
		t.Logf("hammer: %d generations", g)
	}
}
