package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ceer"
	"ceer/internal/trace"
)

// obsLog materializes the shared test system's training observation
// stream once: realistic calibration input (every line matches a
// trained cell).
var (
	obsOnce  sync.Once
	obsLines [][]byte
)

func testObsLines(t *testing.T, n int) [][]byte {
	t.Helper()
	obsOnce.Do(func() {
		var buf bytes.Buffer
		if err := testSystem(t).WriteObsLog(&buf); err != nil {
			t.Fatalf("WriteObsLog: %v", err)
		}
		for _, ln := range bytes.Split(buf.Bytes(), []byte("\n")) {
			if len(bytes.TrimSpace(ln)) > 0 {
				obsLines = append(obsLines, ln)
			}
		}
	})
	if n > len(obsLines) {
		n = len(obsLines)
	}
	return obsLines[:n]
}

func obsBody(lines [][]byte) []byte {
	return append(bytes.Join(lines, []byte("\n")), '\n')
}

// scaleObs rewrites observation lines with seconds multiplied by
// factor (the "this hardware got slower" drift input).
func scaleObs(t *testing.T, lines [][]byte, factor float64) [][]byte {
	t.Helper()
	out := make([][]byte, len(lines))
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal(ln, &m); err != nil {
			t.Fatalf("obs line %d: %v", i, err)
		}
		m["seconds"] = m["seconds"].(float64) * factor
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

func postObserve(t *testing.T, s *Server, body []byte, wantStatus int) map[string]any {
	t.Helper()
	status, resp := s.DoLocalBody(http.MethodPost, "/v1/observe", "", body)
	if status != wantStatus {
		t.Fatalf("POST /v1/observe: status %d (want %d): %s", status, wantStatus, resp)
	}
	var m map[string]any
	if err := json.Unmarshal(resp, &m); err != nil {
		t.Fatalf("observe response: %v\n%s", err, resp)
	}
	return m
}

// TestObserveJournalCrashReplayIdentity is the tentpole's crash-safety
// contract: observations applied through POST /v1/observe with a
// write-ahead journal, then the process "dies" (the server is simply
// abandoned — no clean close, like kill -9 after the last fsync), and
// a fresh daemon over the same journal must reconstruct byte-identical
// calibrated predictor state.
func TestObserveJournalCrashReplayIdentity(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "obs.jsonl")
	lines := testObsLines(t, 200)

	s1 := newTestServer(t, Options{Calibration: &CalibrationOptions{JournalPath: journal}})
	resp := postObserve(t, s1, obsBody(lines), http.StatusOK)
	if got := int(resp["accepted"].(float64)); got != len(lines) {
		t.Fatalf("accepted %d observations, want %d", got, len(lines))
	}
	if resp["journaled"] != true {
		t.Fatalf("journaled = %v, want true", resp["journaled"])
	}
	var before bytes.Buffer
	if err := s1.SaveCalibrated(&before); err != nil {
		t.Fatal(err)
	}
	// No Shutdown, no journal close: the crash.

	s2 := newTestServer(t, Options{Calibration: &CalibrationOptions{JournalPath: journal}})
	replayed, torn := s2.JournalReplayed()
	if replayed != len(lines) || torn != 0 {
		t.Fatalf("JournalReplayed = (%d, %d), want (%d, 0)", replayed, torn, len(lines))
	}
	var after bytes.Buffer
	if err := s2.SaveCalibrated(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("replayed predictor state differs from pre-crash state (%d vs %d bytes)",
			before.Len(), after.Len())
	}
}

// TestJournalTornTailTrimmedOnBoot: a kill -9 mid-append leaves a torn
// final line. Boot must replay the intact prefix, report the torn
// line, and trim it — so observations appended by the new process do
// not concatenate onto the fragment and poison the next replay.
func TestJournalTornTailTrimmedOnBoot(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "obs.jsonl")
	lines := testObsLines(t, 4)
	torn := append(obsBody(lines[:3]), lines[3][:len(lines[3])/2]...) // no trailing newline
	if err := os.WriteFile(journal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Options{Calibration: &CalibrationOptions{JournalPath: journal}})
	replayed, tornLine := s.JournalReplayed()
	if replayed != 3 || tornLine != 4 {
		t.Fatalf("JournalReplayed = (%d, %d), want (3, 4)", replayed, tornLine)
	}

	// Append one more observation through the live path, then prove the
	// journal is fully parseable with no torn tail.
	postObserve(t, s, obsBody(lines[3:4]), http.StatusOK)
	f, err := os.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errdrop read-side close; there are no buffered writes to lose
	defer f.Close()
	or := trace.NewObsReader(f)
	n := 0
	for {
		_, rerr := or.Read()
		if rerr != nil {
			break
		}
		n++
	}
	if n != 4 || or.Torn() != 0 {
		t.Fatalf("journal after trim+append: %d records, torn %d; want 4 records, torn 0", n, or.Torn())
	}
}

// TestObserveRejectsBadBodies: HTTP bodies are not crash artifacts — a
// truncated or corrupt body is the client's bug and must be 400, even
// though the same bytes in a journal file would be tolerated as a torn
// tail.
func TestObserveRejectsBadBodies(t *testing.T) {
	s := newTestServer(t, Options{Calibration: &CalibrationOptions{}})
	lines := testObsLines(t, 2)

	truncated := append(obsBody(lines[:1]), lines[1][:len(lines[1])/2]...)
	status, resp := s.DoLocalBody(http.MethodPost, "/v1/observe", "", truncated)
	if status != http.StatusBadRequest || !strings.Contains(string(resp), "truncated") {
		t.Fatalf("truncated body: status %d, body %s (want 400 mentioning truncation)", status, resp)
	}

	garbage := append(obsBody(lines[:1]), []byte("{broken\n")...)
	garbage = append(garbage, obsBody(lines[1:2])...)
	if status, resp = s.DoLocalBody(http.MethodPost, "/v1/observe", "", garbage); status != http.StatusBadRequest {
		t.Fatalf("corrupt body: status %d, body %s (want 400)", status, resp)
	}

	if status, _ = s.DoLocalBody(http.MethodGet, "/v1/observe", "", nil); status != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/observe: status %d, want 405", status)
	}

	noCal := newTestServer(t, Options{})
	if status, _ = noCal.DoLocalBody(http.MethodPost, "/v1/observe", "", obsBody(lines)); status != http.StatusNotFound {
		t.Fatalf("observe without calibration: status %d, want 404", status)
	}
}

// writePredictorJSON saves the shared system's predictor, applies
// mutate to the decoded document, and writes it to path.
func writePredictorJSON(t *testing.T, path string, mutate func(map[string]any)) {
	t.Helper()
	var buf bytes.Buffer
	if err := testSystem(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(doc)
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReloadValidationCauses drives every rejection cause through
// Reload: each must keep the old generation serving, bump the
// reload_rejected counter, and carry its typed cause; the final good
// file must then be accepted.
func TestReloadValidationCauses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.json")
	s := newTestServer(t, Options{ModelPath: path})
	s.reloadRetry.Sleep = func(time.Duration) {} // no real backoff in tests

	cases := []struct {
		name  string
		write func()
		cause string
	}{
		{"garbage file", func() {
			if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		}, ReloadCauseLoad},
		{"missing file", func() {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}, ReloadCauseLoad},
		{"unsupported version", func() {
			writePredictorJSON(t, path, func(doc map[string]any) { doc["version"] = float64(99) })
		}, ReloadCauseVersion},
		{"unknown device", func() {
			writePredictorJSON(t, path, func(doc map[string]any) {
				doc["op_models"].([]any)[0].(map[string]any)["gpu"] = "not-a-device"
			})
		}, ReloadCauseRegistry},
		{"probe divergence", func() {
			writePredictorJSON(t, path, func(doc map[string]any) {
				for _, om := range doc["op_models"].([]any) {
					model := om.(map[string]any)["model"].(map[string]any)
					coef := model["coef"].([]any)
					for i := range coef {
						coef[i] = coef[i].(float64) * 10
					}
				}
			})
		}, ReloadCauseProbe},
	}
	gen0 := s.Generation()
	for i, c := range cases {
		c.write()
		_, err := s.Reload()
		var re *ReloadError
		if !errors.As(err, &re) {
			t.Fatalf("%s: Reload error = %v, want *ReloadError", c.name, err)
		}
		if re.Cause != c.cause {
			t.Errorf("%s: cause %q, want %q (%v)", c.name, re.Cause, c.cause, re.Err)
		}
		if got := s.Generation(); got != gen0 {
			t.Fatalf("%s: generation moved to %d on a rejected reload", c.name, got)
		}
		if got := s.met.srv.reloadRejected.Load(); got != uint64(i+1) {
			t.Errorf("%s: reload_rejected = %d, want %d", c.name, got, i+1)
		}
	}

	// The HTTP surface: a rejected reload is 422 with the cause.
	status, body := s.DoLocal(http.MethodPost, "/admin/reload", "")
	if status != http.StatusUnprocessableEntity || !strings.Contains(string(body), `"cause"`) {
		t.Fatalf("POST /admin/reload on bad file: status %d, body %s (want 422 with cause)", status, body)
	}

	writePredictorJSON(t, path, nil)
	gen, err := s.Reload()
	if err != nil {
		t.Fatalf("Reload of good file: %v", err)
	}
	if gen != gen0+1 {
		t.Fatalf("generation after accepted reload = %d, want %d", gen, gen0+1)
	}
	if got := s.met.srv.reloads.Load(); got != 1 {
		t.Errorf("reloads = %d, want 1", got)
	}
}

// TestCalibrationSwapValidated: forced refits stage new tables; with a
// generous tolerance they install (generation advances), with a
// near-zero tolerance the probe rejects them and the serving
// generation never moves.
func TestCalibrationSwapValidated(t *testing.T) {
	lines := testObsLines(t, 2000)
	pol := ceer.CalibrationPolicy{RefitEvery: 64}

	accept := newTestServer(t, Options{
		ReloadTolerance: 1e9,
		Calibration:     &CalibrationOptions{Policy: pol},
	})
	gen0 := accept.Generation()
	postObserve(t, accept, obsBody(lines), http.StatusOK)
	if swaps := accept.met.srv.calibSwaps.Load(); swaps == 0 {
		t.Fatal("no calibration swaps installed under an accept-everything tolerance")
	}
	if accept.Generation() == gen0 {
		t.Fatal("generation did not advance on an installed calibration swap")
	}

	reject := newTestServer(t, Options{
		ReloadTolerance: 1e-9,
		Calibration:     &CalibrationOptions{Policy: pol},
	})
	gen0 = reject.Generation()
	postObserve(t, reject, obsBody(scaleObs(t, lines, 1.02)), http.StatusOK)
	if rejected := reject.met.srv.calibSwapsRejected.Load(); rejected == 0 {
		t.Fatal("no rejected calibration swaps under a zero tolerance and shifted observations")
	}
	if got := reject.Generation(); got != gen0 {
		t.Fatalf("generation moved to %d through rejected swaps (started %d)", got, gen0)
	}
	snap := getJSON(t, reject, "/metrics", "", http.StatusOK)
	if snap["server"].(map[string]any)["last_reload_cause"] != ReloadCauseProbe {
		t.Fatalf("last_reload_cause = %v, want %q", snap["server"].(map[string]any)["last_reload_cause"], ReloadCauseProbe)
	}
}

// TestPanicBreakerStateMachine walks healthy → degraded → healthy on a
// virtual clock: recovered panics return 500s, the breaker trips at
// the threshold, a degraded daemon keeps serving prediction traffic
// while shedding calibration, and panic-free recovery time heals it.
func TestPanicBreakerStateMachine(t *testing.T) {
	vc := &vClock{}
	vc.set(1e9) // a zero clock would read as "no window anchor"
	s := newTestServer(t, Options{
		Clock:          vc,
		PanicThreshold: 2,
		PanicWindow:    10 * time.Second,
		RecoveryWindow: 30 * time.Second,
		Calibration:    &CalibrationOptions{},
	})
	var arm bool
	s.afterAdmit = func(int) {
		if arm {
			panic("chaos: injected test panic")
		}
	}

	health := func() string {
		return getJSON(t, s, "/healthz", "", http.StatusOK)["status"].(string)
	}
	if got := health(); got != stateHealthy {
		t.Fatalf("initial state %q, want %q", got, stateHealthy)
	}

	arm = true
	for i := 0; i < 2; i++ {
		status, body := s.DoLocal(http.MethodGet, "/v1/predict", "model=resnet-50")
		if status != http.StatusInternalServerError || !strings.Contains(string(body), "panic") {
			t.Fatalf("panicking request %d: status %d, body %s (want 500 mentioning panic)", i, status, body)
		}
	}
	arm = false

	if got := health(); got != stateDegraded {
		t.Fatalf("state after %d panics = %q, want %q", 2, got, stateDegraded)
	}
	if got := s.met.srv.panics.Load(); got != 2 {
		t.Errorf("panics = %d, want 2", got)
	}
	if got := s.met.srv.degradedEntries.Load(); got != 1 {
		t.Errorf("degraded_entries = %d, want 1", got)
	}

	// Degraded still serves predictions on the last good tables...
	if status, body := s.DoLocal(http.MethodGet, "/v1/predict", "model=resnet-50"); status != http.StatusOK {
		t.Fatalf("predict while degraded: status %d: %s", status, body)
	}
	// ...but sheds calibration.
	status, _ := s.DoLocalBody(http.MethodPost, "/v1/observe", "", obsBody(testObsLines(t, 1)))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("observe while degraded: status %d, want 503", status)
	}
	if got := s.met.srv.calibShed.Load(); got != 1 {
		t.Errorf("calib_shed = %d, want 1", got)
	}

	// Recovery: panic-free time heals the breaker.
	vc.advance(31 * int64(time.Second))
	if got := health(); got != stateHealthy {
		t.Fatalf("state after recovery window = %q, want %q", got, stateHealthy)
	}
	if status, _ := s.DoLocalBody(http.MethodPost, "/v1/observe", "", obsBody(testObsLines(t, 1))); status != http.StatusOK {
		t.Fatalf("observe after recovery: status %d, want 200", status)
	}
}

// TestPanicDoesNotLeakScratches: a panicking handler has already
// checked out an arena scratch; its deferred put runs during
// unwinding, before recoverPanic. After a burst of panics the arena
// must still serve correct predictions (a leaked or double-put scratch
// corrupts responses).
func TestPanicDoesNotLeakScratches(t *testing.T) {
	s := newTestServer(t, Options{PanicThreshold: 1 << 30})
	_, want := s.DoLocal(http.MethodGet, "/v1/predict", "model=resnet-50")

	var arm bool
	s.afterAdmit = func(int) {
		if arm {
			panic("chaos: scratch-leak probe")
		}
	}
	for i := 0; i < 64; i++ {
		arm = true
		s.DoLocal(http.MethodGet, "/v1/predict", "model=resnet-50")
		arm = false
		if _, got := s.DoLocal(http.MethodGet, "/v1/predict", "model=resnet-50"); !bytes.Equal(got, want) {
			t.Fatalf("prediction changed after %d panics:\n got: %s\nwant: %s", i+1, got, want)
		}
	}
}

// TestShutdownDrainTimeout: a wedged in-flight request cannot hang
// shutdown — the deadline force-closes the listener and reports the
// straggler count through DrainError.
func TestShutdownDrainTimeout(t *testing.T) {
	s := newTestServer(t, Options{})
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	s.afterAdmit = func(int) {
		entered <- struct{}{}
		<-block
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.DoLocal(http.MethodGet, "/v1/predict", "model=resnet-50")
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	var de *DrainError
	if !errors.As(err, &de) {
		t.Fatalf("Shutdown = %v, want *DrainError", err)
	}
	if de.InFlight != 1 {
		t.Errorf("DrainError.InFlight = %d, want 1", de.InFlight)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("DrainError should unwrap to the context error, got %v", err)
	}
	close(block)
	<-done
}

// TestTailObsLog: the obs-log tail mode follows a growing file,
// applies complete lines, waits for an unterminated final line, and
// drops malformed lines without giving up on the stream.
func TestTailObsLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.jsonl")
	s := newTestServer(t, Options{Calibration: &CalibrationOptions{}})
	lines := testObsLines(t, 4)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tailDone := make(chan error, 1)
	go func() { tailDone <- s.TailObsLog(ctx, path, time.Millisecond) }()

	waitCount := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for s.met.srv.calibObs.Load() < want {
			if time.Now().After(deadline) {
				t.Fatalf("tail applied %d observations, want %d", s.met.srv.calibObs.Load(), want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errdrop cleanup backstop; every write below is checked explicitly
	defer f.Close()
	// Two complete lines, then a partial third with no newline: only
	// the complete ones may apply.
	if _, err := f.Write(append(obsBody(lines[:2]), lines[2][:8]...)); err != nil {
		t.Fatal(err)
	}
	waitCount(2)
	if got := s.met.srv.calibObs.Load(); got != 2 {
		t.Fatalf("calib_obs = %d before the partial line completed, want 2", got)
	}
	// Complete the third line, add a malformed one, then a fourth good.
	rest := append(lines[2][8:], '\n')
	rest = append(rest, []byte("{malformed\n")...)
	rest = append(rest, obsBody(lines[3:4])...)
	if _, err := f.Write(rest); err != nil {
		t.Fatal(err)
	}
	waitCount(4)
	if got := s.met.srv.calibDropped.Load(); got != 1 {
		t.Errorf("calib_dropped = %d, want 1", got)
	}

	cancel()
	select {
	case err := <-tailDone:
		if err != nil {
			t.Fatalf("TailObsLog: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("TailObsLog did not stop on context cancellation")
	}
}

// TestReloadHammer pounds /admin/reload with reject→accept cycles
// while prediction traffic flows: every admin response is an accept
// (200) or a typed rejection (422), prediction traffic never sees a
// 5xx, and the generation only ever advances on accepts. Run with
// -race this also proves the reload path is data-race-free against
// the hot path.
func TestReloadHammer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.json")
	writePredictorJSON(t, path, nil)
	s := newTestServer(t, Options{ModelPath: path})
	s.reloadRetry.Sleep = func(time.Duration) {}

	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := []byte("{torn mid-write")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writer: flip the file between good and corrupt.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			content := good
			if i%2 == 1 {
				content = bad
			}
			tmp := path + ".tmp"
			if err := os.WriteFile(tmp, content, 0o644); err != nil {
				t.Error(err)
				return
			}
			if err := os.Rename(tmp, path); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Reloaders.
	var accepts, rejects atomic.Uint64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				status, body := s.DoLocal(http.MethodPost, "/admin/reload", "")
				switch status {
				case http.StatusOK:
					accepts.Add(1)
				case http.StatusUnprocessableEntity:
					rejects.Add(1)
				default:
					t.Errorf("reload: unexpected status %d: %s", status, body)
					return
				}
			}
		}()
	}
	// Prediction traffic, checking generation monotonicity.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastGen float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if status, body := s.DoLocal(http.MethodGet, "/v1/predict", "model=alexnet"); status != http.StatusOK {
				t.Errorf("predict during reload hammer: status %d: %s", status, body)
				return
			}
			h := getJSON(t, s, "/healthz", "", http.StatusOK)
			if gen := h["generation"].(float64); gen < lastGen {
				t.Errorf("generation went backwards: %v -> %v", lastGen, gen)
				return
			} else {
				lastGen = gen
			}
		}
	}()

	// All reloaders run a fixed count; once they finish, stop the
	// writer and traffic and check the invariants.
	reloadersDone := make(chan struct{})
	go func() {
		// The writer and traffic goroutines only exit via stop, so wait
		// for total admin responses instead.
		for accepts.Load()+rejects.Load() < 200 {
			time.Sleep(time.Millisecond)
		}
		close(reloadersDone)
	}()
	select {
	case <-reloadersDone:
	case <-time.After(60 * time.Second):
		t.Fatal("reload hammer wedged")
	}
	close(stop)
	wg.Wait()
	if s.Generation() != accepts.Load() {
		t.Errorf("generation %d != accepted reloads %d", s.Generation(), accepts.Load())
	}
	if accepts.Load() == 0 {
		t.Error("hammer never accepted a reload")
	}
	if rejects.Load() == 0 {
		t.Error("hammer never rejected a reload (writer too slow?)")
	}
}
