// Package loadgen is the daemon's deterministic load generator: it
// synthesizes a request stream under the repository's seeded rng stream
// discipline, drives a target (in-process http.Handler or live HTTP
// server) in closed-loop (fixed workers, back-to-back) or open-loop
// (Poisson arrival schedule) mode, and records per-request outcomes and
// latencies by request index.
//
// Determinism contract: the generated ops, and every request's
// response (status, body length, body hash), are pure functions of the
// Spec — independent of worker count or interleaving. Each op derives
// its own rng stream from (seed, index), so op i is the same whether
// one worker or sixteen execute the run; only latencies (wall-clock
// measurements) vary. TestLoadgenWorkerInvariance pins this.
package loadgen

import (
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ceer/internal/rng"
)

// Op is one generated request.
type Op struct {
	Method   string
	Path     string
	RawQuery string
}

// Spec parameterizes a generated request stream.
type Spec struct {
	// Seed roots every derived stream.
	Seed uint64
	// Requests is the stream length.
	Requests int
	// Models are the CNN names to draw from (required).
	Models []string
	// Configs are optional `config=` values for predict ops; when one
	// is drawn the predict targets a single configuration, otherwise
	// the full candidate sweep. ~half the predicts draw a config when
	// the list is non-empty.
	Configs []string
	// PredictShare is the fraction of predict ops (default 0.65; the
	// rest are recommends).
	PredictShare float64
	// MarketShare is the fraction of ops priced at market ratios
	// (default 0.2).
	MarketShare float64
	// ChaosPanicShare is the fraction of predict ops carrying
	// `chaos=panic` — the chaos suite's deterministic fault schedule
	// against a daemon built with -tags chaosserve (production builds
	// answer 400 "unknown parameter"). The chaos draws come from their
	// own derived sub-stream, so turning the schedule on or off leaves
	// every other field of every op unchanged, and which ops are faulted
	// is a pure function of (Seed, index) — worker-count invariant like
	// everything else.
	ChaosPanicShare float64
}

// streamSalt labels the loadgen's derivation domain so its streams are
// independent of the simulator's (same discipline as internal/sim).
const streamSalt = 0x10adc0de

// Generate synthesizes the op stream. Op i is derived from (Seed, i)
// alone, so any subset or reordering of executions leaves every op
// unchanged.
func Generate(spec Spec) []Op {
	if spec.Requests <= 0 || len(spec.Models) == 0 {
		return nil
	}
	predictShare := spec.PredictShare
	if predictShare == 0 {
		predictShare = 0.65
	}
	marketShare := spec.MarketShare
	if marketShare == 0 {
		marketShare = 0.2
	}
	root := rng.New(spec.Seed).Derive(streamSalt)
	// The fault schedule derives from its own sub-stream (streamSalt+2;
	// +1 is the Poisson arrival stream) so it never perturbs the op
	// draws above.
	chaosRoot := rng.New(spec.Seed).Derive(streamSalt + 2)
	ops := make([]Op, spec.Requests)
	for i := range ops {
		r := root.Derive(uint64(i))
		model := spec.Models[r.Intn(len(spec.Models))]
		q := "model=" + model
		if r.Float64() < marketShare {
			q += "&pricing=market"
		}
		if r.Float64() < predictShare {
			if len(spec.Configs) > 0 && r.Float64() < 0.5 {
				q += "&config=" + spec.Configs[r.Intn(len(spec.Configs))]
			}
			if spec.ChaosPanicShare > 0 && chaosRoot.Derive(uint64(i)).Float64() < spec.ChaosPanicShare {
				q += "&chaos=panic"
			}
			ops[i] = Op{Method: http.MethodGet, Path: "/v1/predict", RawQuery: q}
		} else {
			obj := "cost"
			if r.Float64() < 0.5 {
				obj = "time"
			}
			ops[i] = Op{Method: http.MethodGet, Path: "/v1/recommend", RawQuery: q + "&objective=" + obj}
		}
	}
	return ops
}

// Prepare builds one reusable *http.Request per op, so executing a
// request allocates nothing beyond what the target itself does.
func Prepare(ops []Op) []*http.Request {
	reqs := make([]*http.Request, len(ops))
	for i, op := range ops {
		reqs[i] = &http.Request{
			Method: op.Method,
			URL:    &url.URL{Path: op.Path, RawQuery: op.RawQuery},
		}
	}
	return reqs
}

// Outcome is a request's deterministic result: status code, body
// length, and FNV-64a body hash (the equality witness for the
// worker-invariance contract without retaining bodies).
type Outcome struct {
	Status   int
	BodyLen  int
	BodyHash uint64
}

// Target executes one prepared request.
type Target interface {
	Do(i int, req *http.Request) Outcome
}

// hashWriter is a ResponseWriter that hashes the body instead of
// storing it.
type hashWriter struct {
	h      http.Header
	status int
	n      int
	sum    uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (w *hashWriter) reset() {
	w.status = http.StatusOK
	w.n = 0
	w.sum = fnvOffset
}

func (w *hashWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 4)
	}
	return w.h
}
func (w *hashWriter) WriteHeader(status int) { w.status = status }
func (w *hashWriter) Write(p []byte) (int, error) {
	sum := w.sum
	for _, c := range p {
		sum = (sum ^ uint64(c)) * fnvPrime
	}
	w.sum = sum
	w.n += len(p)
	return len(p), nil
}

// HandlerTarget drives an http.Handler in-process (no sockets): the
// daemon's raw-Handler benchmark mode. Writers are pooled per worker.
type HandlerTarget struct {
	h    http.Handler
	pool sync.Pool
}

// NewHandlerTarget wraps a handler (e.g. serve.Server).
func NewHandlerTarget(h http.Handler) *HandlerTarget {
	t := &HandlerTarget{h: h}
	t.pool.New = func() any { return &hashWriter{} }
	return t
}

func (t *HandlerTarget) Do(_ int, req *http.Request) Outcome {
	w := t.pool.Get().(*hashWriter)
	w.reset()
	t.h.ServeHTTP(w, req)
	out := Outcome{Status: w.status, BodyLen: w.n, BodyHash: w.sum}
	t.pool.Put(w)
	return out
}

// HTTPTarget drives a live server (httptest or a real listener) over
// TCP with a shared http.Client.
type HTTPTarget struct {
	Base   string // e.g. "http://127.0.0.1:8080"
	Client *http.Client
}

func (t *HTTPTarget) Do(_ int, req *http.Request) Outcome {
	c := t.Client
	if c == nil {
		c = http.DefaultClient
	}
	resp, err := c.Get(t.Base + req.URL.Path + "?" + req.URL.RawQuery)
	if err != nil {
		return Outcome{Status: 0}
	}
	h := fnv.New64a()
	n, _ := io.Copy(h, resp.Body) // hash is the only consumer; copy errors surface as a short BodyLen
	if err := resp.Body.Close(); err != nil {
		return Outcome{Status: 0}
	}
	return Outcome{Status: resp.StatusCode, BodyLen: int(n), BodyHash: h.Sum64()}
}

// Result is one run's record: per-request outcomes and latencies by
// request index, plus the run's wall-clock span.
type Result struct {
	Outcomes []Outcome
	LatNanos []int64
	Elapsed  time.Duration
}

// Throughput returns completed requests per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(len(r.Outcomes)) / r.Elapsed.Seconds()
}

// Percentiles returns the p50/p99/p999 latencies in microseconds
// (nearest-rank over a sorted copy).
func (r *Result) Percentiles() (p50, p99, p999 float64) {
	if len(r.LatNanos) == 0 {
		return 0, 0, 0
	}
	sorted := append([]int64(nil), r.LatNanos...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		rank := int(math.Ceil(q*float64(len(sorted)))) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(sorted) {
			rank = len(sorted) - 1
		}
		return float64(sorted[rank]) / 1e3
	}
	return at(0.50), at(0.99), at(0.999)
}

// Shed counts 429 outcomes.
func (r *Result) Shed() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Status == http.StatusTooManyRequests {
			n++
		}
	}
	return n
}

// RunClosed executes the prepared requests closed-loop: `workers`
// goroutines pull the next unexecuted index from a shared counter and
// issue back-to-back. Outcomes land at their request's index, so the
// result stream is worker-count invariant.
func RunClosed(t Target, reqs []*http.Request, workers int) *Result {
	if workers < 1 {
		workers = 1
	}
	res := &Result{
		Outcomes: make([]Outcome, len(reqs)),
		LatNanos: make([]int64, len(reqs)),
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	startAll := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				t0 := time.Now()
				res.Outcomes[i] = t.Do(i, reqs[i])
				res.LatNanos[i] = time.Since(t0).Nanoseconds()
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(startAll)
	return res
}

// PoissonArrivals returns a cumulative Poisson arrival schedule
// (nanosecond offsets from run start) at the given rate, derived
// deterministically from the seed.
func PoissonArrivals(seed uint64, ratePerSec float64, n int) []int64 {
	r := rng.New(seed).Derive(streamSalt + 1)
	out := make([]int64, n)
	var t float64
	for i := range out {
		u := r.Float64()
		// Inverse-CDF exponential interarrival; 1-u is in (0, 1].
		t += -math.Log(1-u) / ratePerSec * 1e9
		out[i] = int64(t)
	}
	return out
}

// RunOpen executes the prepared requests open-loop against the arrival
// schedule: a dispatcher releases request i at arrivals[i] (relative to
// run start) regardless of completions, and `workers` goroutines drain
// the release queue. Latency for request i is measured from its
// scheduled arrival, so queueing delay under overload is included
// (open-loop latency semantics). Outcomes are still index-addressed and
// worker-count invariant.
func RunOpen(t Target, reqs []*http.Request, arrivals []int64, workers int) *Result {
	if workers < 1 {
		workers = 1
	}
	res := &Result{
		Outcomes: make([]Outcome, len(reqs)),
		LatNanos: make([]int64, len(reqs)),
	}
	ch := make(chan int, len(reqs))
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				res.Outcomes[i] = t.Do(i, reqs[i])
				res.LatNanos[i] = time.Since(start).Nanoseconds() - arrivals[i]
			}
		}()
	}
	for i := range reqs {
		if d := time.Duration(arrivals[i]) - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		ch <- i
	}
	close(ch)
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res
}
