package loadgen

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

var testSpec = Spec{
	Seed:     3,
	Requests: 300,
	Models:   []string{"alexnet", "resnet-50", "vgg-16"},
	Configs:  []string{"1xP2", "2xP3"},
}

// TestGenerateDeterminism: the op stream is a pure function of the
// Spec, and op i depends only on (Seed, i).
func TestGenerateDeterminism(t *testing.T) {
	a, b := Generate(testSpec), Generate(testSpec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Generate calls with the same spec diverge")
	}
	shorter := testSpec
	shorter.Requests = 50
	c := Generate(shorter)
	if !reflect.DeepEqual(a[:50], c) {
		t.Error("op i depends on stream length; want per-index derivation")
	}
	other := testSpec
	other.Seed = 4
	if reflect.DeepEqual(a, Generate(other)) {
		t.Error("different seeds produced identical streams")
	}

	predicts, recommends, markets := 0, 0, 0
	for _, op := range a {
		switch op.Path {
		case "/v1/predict":
			predicts++
		case "/v1/recommend":
			recommends++
		default:
			t.Fatalf("unexpected path %q", op.Path)
		}
		if strings.Contains(op.RawQuery, "pricing=market") {
			markets++
		}
		if !strings.Contains(op.RawQuery, "model=") {
			t.Fatalf("op without model: %+v", op)
		}
	}
	if predicts == 0 || recommends == 0 || markets == 0 {
		t.Errorf("degenerate mix: %d predicts, %d recommends, %d market", predicts, recommends, markets)
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	a := PoissonArrivals(9, 1000, 500)
	b := PoissonArrivals(9, 1000, 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different schedules")
	}
	var prev int64 = -1
	for i, at := range a {
		if at <= prev {
			t.Fatalf("arrival %d not strictly increasing: %d after %d", i, at, prev)
		}
		prev = at
	}
	// Mean interarrival should be ~1ms at 1000/s; accept a wide band.
	mean := float64(a[len(a)-1]) / float64(len(a))
	if mean < 0.5e6 || mean > 2e6 {
		t.Errorf("mean interarrival %.0fns implausible for 1000/s", mean)
	}
	if reflect.DeepEqual(a, PoissonArrivals(10, 1000, 500)) {
		t.Error("different seeds produced identical schedules")
	}
}

// echoHandler answers with a body derived deterministically from the
// request (path+query), so outcome hashes detect any index/request
// mismatch introduced by concurrency.
func echoHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := r.URL.Path + "?" + r.URL.RawQuery
		if strings.Contains(r.URL.RawQuery, "pricing=market") {
			w.WriteHeader(http.StatusTeapot) // distinguishable status
		}
		if _, err := w.Write([]byte(body)); err != nil {
			panic(err)
		}
	})
}

// TestWorkerInvariance is the determinism contract: closed- and
// open-loop runs produce identical per-index outcomes (status, body
// length, body hash) for 1 worker and for many.
func TestWorkerInvariance(t *testing.T) {
	ops := Generate(testSpec)
	target := NewHandlerTarget(echoHandler())

	run1 := RunClosed(target, Prepare(ops), 1)
	run4 := RunClosed(target, Prepare(ops), 4)
	if !reflect.DeepEqual(run1.Outcomes, run4.Outcomes) {
		t.Fatal("closed-loop outcomes differ between 1 and 4 workers")
	}

	arrivals := PoissonArrivals(testSpec.Seed, 200_000, len(ops))
	open1 := RunOpen(target, Prepare(ops), arrivals, 1)
	open4 := RunOpen(target, Prepare(ops), arrivals, 4)
	if !reflect.DeepEqual(open1.Outcomes, open4.Outcomes) {
		t.Fatal("open-loop outcomes differ between 1 and 4 workers")
	}
	if !reflect.DeepEqual(run1.Outcomes, open1.Outcomes) {
		t.Fatal("closed vs open outcomes differ for the same ops")
	}

	if len(run1.LatNanos) != len(ops) {
		t.Fatalf("latency records: %d, want %d", len(run1.LatNanos), len(ops))
	}
	if run1.Throughput() <= 0 {
		t.Error("non-positive throughput")
	}
}

// TestHTTPTarget runs the generated stream against a live HTTP server
// and checks outcomes match the in-process handler target byte for
// byte (status aside, the hash covers the body).
func TestHTTPTarget(t *testing.T) {
	h := echoHandler()
	ts := httptest.NewServer(h)
	defer ts.Close()

	ops := Generate(Spec{Seed: 5, Requests: 40, Models: []string{"alexnet"}})
	local := RunClosed(NewHandlerTarget(h), Prepare(ops), 2)
	remote := RunClosed(&HTTPTarget{Base: ts.URL, Client: ts.Client()}, Prepare(ops), 2)
	if !reflect.DeepEqual(local.Outcomes, remote.Outcomes) {
		t.Fatal("HTTP target outcomes diverge from in-process target")
	}
}

func TestPercentiles(t *testing.T) {
	r := &Result{LatNanos: make([]int64, 1000)}
	for i := range r.LatNanos {
		r.LatNanos[i] = int64((i + 1) * 1000) // 1..1000 µs
	}
	p50, p99, p999 := r.Percentiles()
	if !eqExact(p50, 500) || !eqExact(p99, 990) || !eqExact(p999, 999) {
		t.Errorf("percentiles = %v %v %v, want 500 990 999", p50, p99, p999)
	}

	empty := &Result{}
	if a, b, c := empty.Percentiles(); a != 0 || b != 0 || c != 0 {
		t.Error("empty result should report zeros")
	}
}

// TestChaosScheduleIndependentStream: the fault schedule must be a
// pure function of (Seed, index) on its own derived sub-stream —
// enabling it marks a deterministic subset of predict ops and leaves
// every other field of every op exactly as the fault-free stream had
// it.
func TestChaosScheduleIndependentStream(t *testing.T) {
	plain := Generate(testSpec)
	chaos := testSpec
	chaos.ChaosPanicShare = 0.3
	a, b := Generate(chaos), Generate(chaos)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Generate calls with the same chaos spec diverge")
	}
	faulted := 0
	for i, op := range a {
		stripped := op
		stripped.RawQuery = strings.TrimSuffix(op.RawQuery, "&chaos=panic")
		if stripped.RawQuery != op.RawQuery {
			faulted++
			if op.Path != "/v1/predict" {
				t.Fatalf("op %d: chaos=panic on %s; only predicts are faulted", i, op.Path)
			}
		}
		if !reflect.DeepEqual(stripped, plain[i]) {
			t.Fatalf("op %d changed beyond the chaos marker:\n chaos: %+v\n plain: %+v", i, op, plain[i])
		}
	}
	if faulted == 0 {
		t.Fatal("ChaosPanicShare=0.3 faulted no ops")
	}
	if faulted == len(a) {
		t.Fatal("every op faulted; want a fraction")
	}
}

func TestShedCount(t *testing.T) {
	r := &Result{Outcomes: []Outcome{{Status: 200}, {Status: 429}, {Status: 429}, {Status: 503}}}
	if n := r.Shed(); n != 2 {
		t.Errorf("Shed() = %d, want 2", n)
	}
}

// eqExact compares floats exactly: nearest-rank percentiles over
// integer-nanosecond inputs are integer-exact by construction.
func eqExact(a, b float64) bool { return a == b }
