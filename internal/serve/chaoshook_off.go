//go:build !chaosserve

package serve

// chaosQueryParam is the production arm of the chaos-injection hook:
// the chaos parameter does not exist, so parse reports it unknown (400)
// like any other stray key. The chaosserve build tag swaps this file
// for chaoshook_on.go.
//
//hot:path
func chaosQueryParam(q *query, key, val string) bool {
	return false
}

// chaosMaybePanic is a no-op in production builds; the compiler erases
// the call.
//
//hot:path
func chaosMaybePanic(q *query) {}
