//go:build chaosserve

package serve

// This file exists only under the chaosserve build tag: the chaos
// suite (scripts/chaos-serve.sh) builds the daemon with -tags chaosserve
// and injects real handler panics over HTTP via `chaos=panic`, proving
// the recover() boundary, the 500 accounting, and the breaker's
// degraded→healthy cycle on a live process. Production binaries never
// contain this code path — without the tag, chaos is an unknown
// parameter.

// chaosQueryParam accepts `chaos=panic` and arms the injected panic for
// this request.
func chaosQueryParam(q *query, key, val string) bool {
	if key != "chaos" {
		return false
	}
	if val != "panic" {
		return false
	}
	q.chaosPanic = true
	return true
}

// chaosMaybePanic fires the armed panic mid-handler — after the arena
// scratch is checked out, so the chaos suite also proves panics do not
// leak scratches.
func chaosMaybePanic(q *query) {
	if q.chaosPanic {
		panic("chaosserve: injected handler panic")
	}
}
