package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ceer"
)

// Shared trained system: training is seconds even at reduced depth, so
// every test in the package reuses one campaign.
var (
	sysOnce sync.Once
	sysVal  *ceer.System
	sysErr  error
)

func testSystem(t testing.TB) *ceer.System {
	t.Helper()
	sysOnce.Do(func() {
		sysVal, sysErr = ceer.Train(ceer.TrainOptions{Seed: 11, ProfileIterations: 30, CommIterations: 8})
	})
	if sysErr != nil {
		t.Fatalf("training test system: %v", sysErr)
	}
	return sysVal
}

func newTestServer(t testing.TB, opts Options) *Server {
	t.Helper()
	s, err := New(testSystem(t), opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// vClock is a manually-advanced test clock (safe for concurrent reads).
type vClock struct{ ns atomic.Int64 }

func (c *vClock) Nanos() int64    { return c.ns.Load() }
func (c *vClock) advance(d int64) { c.ns.Add(d) }
func (c *vClock) set(ns int64)    { c.ns.Store(ns) }

// stepClock advances by a fixed step on every read (serial tests only):
// any handler that reads the clock twice appears to burn step nanos.
type stepClock struct{ ns, step int64 }

func (c *stepClock) Nanos() int64 { c.ns += c.step; return c.ns }

func getJSON(t *testing.T, s *Server, path, rawQuery string, wantStatus int) map[string]any {
	t.Helper()
	status, body := s.DoLocal(http.MethodGet, path, rawQuery)
	if status != wantStatus {
		t.Fatalf("GET %s?%s: status %d (want %d): %s", path, rawQuery, status, wantStatus, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("GET %s?%s: invalid JSON: %v\n%s", path, rawQuery, err, body)
	}
	return m
}

func TestPredictEndpointMatchesSystem(t *testing.T) {
	sys := testSystem(t)
	s := newTestServer(t, Options{})

	// Build the expected document through the public System API and
	// encoding/json; the daemon's append-encoded body must byte-match.
	g, err := ceer.BuildModelCached("resnet-50", 32)
	if err != nil {
		t.Fatal(err)
	}
	ds := ceer.NewDataset("request", ceer.ImageNet.Samples)
	want := PredictResponse{CNN: "resnet-50", Batch: 32, Samples: ds.Samples, Pricing: "on-demand"}
	cands := ceer.AllConfigs(4)
	for _, cfg := range cands {
		p, err := sys.PredictTraining(g, cfg, ds, ceer.OnDemand)
		if err != nil {
			t.Fatal(err)
		}
		pj := PredictionJSON{
			Config: cfg.String(), Instance: cfg.InstanceName(), GPU: string(cfg.GPU), K: cfg.K,
			HourlyUSD: p.HourlyUSD, Iterations: p.Iterations,
			HeavyS: p.Iter.HeavySeconds, LightS: p.Iter.LightSeconds, CPUS: p.Iter.CPUSeconds,
			CommS: p.Iter.CommSeconds, IterS: p.Iter.PerIterSeconds,
			TotalS: p.TotalSeconds, CostUSD: p.CostUSD,
		}
		for _, u := range p.Iter.UnseenHeavy {
			pj.UnseenHeavy = append(pj.UnseenHeavy, string(u))
		}
		want.Predictions = append(want.Predictions, pj)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	status, body := s.DoLocal(http.MethodGet, "/v1/predict", "model=resnet-50")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if got := strings.TrimSuffix(string(body), "\n"); got != string(wantJSON) {
		t.Errorf("predict body diverges from encoding/json over the System API\n got: %s\nwant: %s", got, wantJSON)
	}
}

func TestPredictSingleConfigAndParams(t *testing.T) {
	s := newTestServer(t, Options{})
	m := getJSON(t, s, "/v1/predict", "model=inception-v3&config=2xP3&samples=6400&pricing=market", http.StatusOK)
	preds := m["predictions"].([]any)
	if len(preds) != 1 {
		t.Fatalf("want 1 prediction, got %d", len(preds))
	}
	p := preds[0].(map[string]any)
	if p["config"] != "2xP3" || !jsonNumExact(p["k"], 2) || p["gpu"] != "v100" {
		t.Errorf("wrong candidate: %v", p)
	}
	if m["pricing"] != "market" || !jsonNumExact(m["samples"], 6400) {
		t.Errorf("params not honored: %v", m)
	}
}

func TestPredictColdBatchFallback(t *testing.T) {
	sys := testSystem(t)
	s := newTestServer(t, Options{})
	m := getJSON(t, s, "/v1/predict", "model=alexnet&batch=64&config=1xP2", http.StatusOK)
	preds := m["predictions"].([]any)
	p := preds[0].(map[string]any)

	g, err := ceer.BuildModelCached("alexnet", 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ceer.Config("P2", 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.PredictTraining(g, cfg, ceer.NewDataset("request", ceer.ImageNet.Samples), ceer.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if !jsonNumExact(p["total_s"], want.TotalSeconds) {
		t.Errorf("cold-batch total_s = %v, want %v", p["total_s"], want.TotalSeconds)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	sys := testSystem(t)
	s := newTestServer(t, Options{})
	m := getJSON(t, s, "/v1/recommend", "model=vgg-16&objective=time&max_hourly_usd=40", http.StatusOK)

	g, err := ceer.BuildModelCached("vgg-16", 32)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sys.Recommend(g, ceer.NewDataset("request", ceer.ImageNet.Samples), ceer.OnDemand,
		ceer.AllConfigs(4), ceer.MinimizeTime, ceer.MaxHourlyBudget(40, 0))
	if err != nil {
		t.Fatal(err)
	}
	best := m["best"].(map[string]any)
	if best["config"] != rec.Best.Cfg.String() {
		t.Errorf("best = %v, want %s", best["config"], rec.Best.Cfg)
	}
	if n := len(m["candidates"].([]any)); n != len(rec.Candidates) {
		t.Errorf("candidates = %d, want %d", n, len(rec.Candidates))
	}
	if m["objective"] != "time" {
		t.Errorf("objective echoed as %v", m["objective"])
	}
	// Infeasible candidates must be present and flagged.
	sawInfeasible := false
	for _, c := range m["candidates"].([]any) {
		if c.(map[string]any)["feasible"] == false {
			sawInfeasible = true
		}
	}
	wantInfeasible := false
	for _, c := range rec.Candidates {
		if !c.Feasible {
			wantInfeasible = true
		}
	}
	if sawInfeasible != wantInfeasible {
		t.Errorf("infeasible flagging diverges: got %v want %v", sawInfeasible, wantInfeasible)
	}
}

func TestRecommendMatchesEncodingJSON(t *testing.T) {
	sys := testSystem(t)
	s := newTestServer(t, Options{})
	status, body := s.DoLocal(http.MethodGet, "/v1/recommend", "model=resnet-101&objective=cost")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}

	g, err := ceer.BuildModelCached("resnet-101", 32)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sys.Recommend(g, ceer.NewDataset("request", ceer.ImageNet.Samples), ceer.OnDemand,
		ceer.AllConfigs(4), ceer.MinimizeCost)
	if err != nil {
		t.Fatal(err)
	}
	toJSON := func(cfg ceer.InstanceConfig, c *ceer.Candidate) CandidateJSON {
		cj := CandidateJSON{
			PredictionJSON: PredictionJSON{
				Config: cfg.String(), Instance: cfg.InstanceName(), GPU: string(cfg.GPU), K: cfg.K,
				HourlyUSD: c.HourlyUSD, Iterations: c.Iterations,
				HeavyS: c.Iter.HeavySeconds, LightS: c.Iter.LightSeconds, CPUS: c.Iter.CPUSeconds,
				CommS: c.Iter.CommSeconds, IterS: c.Iter.PerIterSeconds,
				TotalS: c.TotalSeconds, CostUSD: c.CostUSD,
			},
			Feasible: c.Feasible, Score: c.Score, Degraded: c.Degraded,
		}
		for _, u := range c.Iter.UnseenHeavy {
			cj.UnseenHeavy = append(cj.UnseenHeavy, string(u))
		}
		return cj
	}
	want := RecommendResponse{
		CNN: "resnet-101", Objective: "cost", Batch: 32, Samples: ceer.ImageNet.Samples,
		Pricing: "on-demand", Best: toJSON(rec.Best.Cfg, &rec.Best),
	}
	for i := range rec.Candidates {
		want.Candidates = append(want.Candidates, toJSON(rec.Candidates[i].Cfg, &rec.Candidates[i]))
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSuffix(string(body), "\n"); got != string(wantJSON) {
		t.Errorf("recommend body diverges from encoding/json\n got: %s\nwant: %s", got, wantJSON)
	}
}

func TestQueryErrors(t *testing.T) {
	s := newTestServer(t, Options{})
	cases := []struct {
		path, query string
		status      int
	}{
		{"/v1/predict", "", http.StatusBadRequest},                          // missing model
		{"/v1/predict", "model=not-a-model", http.StatusNotFound},           // unknown model
		{"/v1/predict", "model=alexnet&config=9xP3", http.StatusBadRequest}, // unknown config
		{"/v1/predict", "model=alexnet&samples=-3", http.StatusBadRequest},
		{"/v1/predict", "model=alexnet&maxk=99", http.StatusBadRequest},
		{"/v1/predict", "model=alexnet&bogus=1", http.StatusBadRequest}, // unknown parameter
		{"/v1/recommend", "model=alexnet&objective=speed", http.StatusBadRequest},
		{"/v1/recommend", "model=alexnet&max_hourly_usd=abc", http.StatusBadRequest},
		{"/v1/explain", "model=alexnet", http.StatusBadRequest},        // missing gpu
		{"/v1/explain", "model=alexnet&gpu=h100", http.StatusNotFound}, // unknown gpu
		{"/v1/explain", "model=alexnet&gpu=v100&k=17", http.StatusBadRequest},
		{"/v1/nope", "", http.StatusNotFound},
	}
	for _, c := range cases {
		status, body := s.DoLocal(http.MethodGet, c.path, c.query)
		if status != c.status {
			t.Errorf("GET %s?%s: status %d, want %d (%s)", c.path, c.query, status, c.status, body)
		}
		var er ErrorResponse
		if status >= 400 {
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Errorf("GET %s?%s: error body not ErrorResponse-shaped: %s", c.path, c.query, body)
			}
		}
	}
	// Method checks.
	if status, _ := s.DoLocal(http.MethodPost, "/v1/predict", "model=alexnet"); status != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/predict: status %d, want 405", status)
	}
	if status, _ := s.DoLocal(http.MethodGet, "/admin/reload", ""); status != http.StatusMethodNotAllowed {
		t.Errorf("GET /admin/reload: status %d, want 405", status)
	}
}

func TestExplainEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	m := getJSON(t, s, "/v1/explain", "model=resnet-50&gpu=v100&k=2", http.StatusOK)
	if m["cnn"] != "resnet-50" || m["gpu"] != "v100" || !jsonNumExact(m["k"], 2) {
		t.Errorf("explain header wrong: %v", m)
	}
	contribs := m["contributions"].([]any)
	if len(contribs) == 0 {
		t.Fatal("no contributions")
	}
	var share float64
	for _, c := range contribs {
		share += c.(map[string]any)["share"].(float64)
	}
	share += m["comm_share"].(float64)
	if share <= 0 || share > 1.01 {
		t.Errorf("shares sum to %v, want in (0, 1]", share)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := newTestServer(t, Options{})
	h := getJSON(t, s, "/healthz", "", http.StatusOK)
	if h["status"] != "healthy" || !jsonNumExact(h["models"], float64(len(ceer.Models()))) || !jsonNumExact(h["batch"], 32) {
		t.Errorf("healthz: %v", h)
	}

	s.DoLocal(http.MethodGet, "/v1/predict", "model=alexnet")
	s.DoLocal(http.MethodGet, "/v1/predict", "model=alexnet")
	s.DoLocal(http.MethodGet, "/v1/predict", "model=not-a-model")
	mm := getJSON(t, s, "/metrics", "", http.StatusOK)
	eps := mm["endpoints"].(map[string]any)
	pred := eps["predict"].(map[string]any)
	if !jsonNumExact(pred["requests"], 3) || !jsonNumExact(pred["ok"], 2) || !jsonNumExact(pred["client_errors"], 1) {
		t.Errorf("predict counters: %v", pred)
	}
	if _, ok := pred["latency_buckets"]; !ok {
		t.Errorf("no latency buckets: %v", pred)
	}
}

func TestHTTPSmokeOverTCP(t *testing.T) {
	s := newTestServer(t, Options{Warmup: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{
		"/v1/predict?model=resnet-50",
		"/v1/recommend?model=resnet-50",
		"/v1/explain?model=resnet-50&gpu=t4&k=1",
		"/healthz",
		"/metrics",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s: Content-Type %q", path, ct)
		}
		var v map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Errorf("GET %s: bad JSON: %v", path, err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReloadHotSwap(t *testing.T) {
	sys := testSystem(t)
	dir := t.TempDir()
	path := dir + "/models.json"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Options{ModelPath: path})
	before := getJSON(t, s, "/v1/predict", "model=alexnet&config=1xP3", http.StatusOK)

	m := getJSONPost(t, s, "/admin/reload", http.StatusOK)
	if !jsonNumExact(m["generation"], 1) || m["status"] != "reloaded" {
		t.Errorf("reload response: %v", m)
	}
	if g := getJSON(t, s, "/healthz", "", http.StatusOK)["generation"]; !jsonNumExact(g, 1) {
		t.Errorf("generation after reload = %v", g)
	}
	// The persisted predictor round-trips exactly, so predictions are
	// unchanged across the swap.
	after := getJSON(t, s, "/v1/predict", "model=alexnet&config=1xP3", http.StatusOK)
	b0, _ := json.Marshal(before) // cannot fail: round-tripped maps
	b1, _ := json.Marshal(after)  // cannot fail: round-tripped maps
	if string(b0) != string(b1) {
		t.Errorf("prediction changed across reload of identical models:\n%s\n%s", b0, b1)
	}

	// Without a model path, reload must refuse.
	s2 := newTestServer(t, Options{})
	if status, _ := s2.DoLocal(http.MethodPost, "/admin/reload", ""); status != http.StatusConflict {
		t.Errorf("reload without model path: status %d, want 409", status)
	}
}

func getJSONPost(t *testing.T, s *Server, path string, wantStatus int) map[string]any {
	t.Helper()
	status, body := s.DoLocal(http.MethodPost, path, "")
	if status != wantStatus {
		t.Fatalf("POST %s: status %d (want %d): %s", path, status, wantStatus, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("POST %s: invalid JSON: %v", path, err)
	}
	return m
}

// jsonNumExact compares a decoded JSON number against an expected
// value exactly: the fields under test are integers or round-tripped
// float64s, so bit-exact equality is the contract.
func jsonNumExact(v any, want float64) bool {
	f, ok := v.(float64)
	return ok && f == want
}
