package serve

import (
	"fmt"
	"net/http"
	"os"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Health states. /healthz is a real state machine, not a boolean:
//
//	starting  — New is still building tables / replaying the journal
//	healthy   — serving; calibration (when enabled) accepted
//	degraded  — the panic breaker tripped: /v1/* keeps serving on the
//	            last good tables, but calibration work is shed (503 on
//	            /v1/observe) until RecoveryWindow passes panic-free
//	draining  — Shutdown has begun; in-flight requests finish
//
// Degradation is driven by the breaker; drift and reload health are
// surfaced alongside (drifted_cells, reload_rejected) but self-heal
// through refits and rollback instead of changing the serving state.
const (
	stateStarting = "starting"
	stateHealthy  = "healthy"
	stateDegraded = "degraded"
	stateDraining = "draining"
)

// panicBreaker trips into the degraded state after threshold recovered
// panics inside a sliding window, and un-trips once recoveryNs elapse
// panic-free. All state is atomic — record runs on the (exceptional)
// request path and must not lock against readers.
type panicBreaker struct {
	threshold int64
	windowNs  int64
	recoverNs int64

	// recent is the count of panics since the window anchor; anchorNs
	// the window's start. lastNs is the most recent panic; tripped the
	// breaker state.
	recent   atomic.Int64
	anchorNs atomic.Int64
	lastNs   atomic.Int64
	tripped  atomic.Bool

	// trips counts entries into the degraded state (metrics).
	trips atomic.Uint64
}

// newPanicBreaker applies the documented defaults (3 panics / 10s
// window, 30s recovery).
func newPanicBreaker(threshold int, window, recovery time.Duration) *panicBreaker {
	if threshold <= 0 {
		threshold = 3
	}
	if window <= 0 {
		window = 10 * time.Second
	}
	if recovery <= 0 {
		recovery = 30 * time.Second
	}
	return &panicBreaker{
		threshold: int64(threshold),
		windowNs:  window.Nanoseconds(),
		recoverNs: recovery.Nanoseconds(),
	}
}

// record notes one recovered panic at now and trips the breaker when
// the window fills. Returns true when this record tripped it.
func (b *panicBreaker) record(now int64) bool {
	b.lastNs.Store(now)
	anchor := b.anchorNs.Load()
	if anchor == 0 || now-anchor > b.windowNs {
		// New window: this panic is its first event.
		b.anchorNs.Store(now)
		b.recent.Store(1)
		return false
	}
	if b.recent.Add(1) < b.threshold {
		return false
	}
	if b.tripped.CompareAndSwap(false, true) {
		b.trips.Add(1)
		return true
	}
	return false
}

// degraded reports (and lazily clears) the breaker state: tripped, and
// the recovery window has not yet elapsed since the last panic.
func (b *panicBreaker) degraded(now int64) bool {
	if !b.tripped.Load() {
		return false
	}
	if now-b.lastNs.Load() >= b.recoverNs {
		// Recovered: enough panic-free time passed.
		if b.tripped.CompareAndSwap(true, false) {
			b.recent.Store(0)
			b.anchorNs.Store(0)
		}
		return false
	}
	return true
}

// healthState derives the /healthz state machine value at now.
//
//hot:path
func (s *Server) healthState(now int64) string {
	if s.draining.Load() {
		return stateDraining
	}
	if !s.ready.Load() {
		return stateStarting
	}
	if s.breaker.degraded(now) {
		return stateDegraded
	}
	return stateHealthy
}

// recoverPanic is the per-request panic isolation boundary, installed
// with `defer s.recoverPanic(w, ep, start)` at the top of ServeHTTP —
// a directly deferred method call, so it costs no closure on the hot
// path and recover() observes the handler's panic. Handlers return
// their arena scratches with their own defers, which run before this
// one during unwinding, so a panic never leaks a scratch (the poolpair
// fixtures pin the pattern). The panic becomes a structured 500, feeds
// the breaker, and — past the threshold — degrades the daemon instead
// of killing it.
//
//hot:exempt panic path; runs only while unwinding a handler panic, never in steady state
func (s *Server) recoverPanic(w http.ResponseWriter, ep int, start int64) {
	p := recover()
	if p == nil {
		return
	}
	s.met.srv.panics.Add(1)
	now := s.clock.Nanos()
	if s.breaker.record(now) {
		s.met.srv.degradedEntries.Add(1)
	}
	// The daemon log gets the stack; the client a structured 500.
	_, _ = fmt.Fprintf(os.Stderr, "ceer serve: panic in %s handler recovered: %v\n%s",
		endpointNames[ep], p, debug.Stack())
	s.respondError(w, ep, http.StatusInternalServerError, "internal error: handler panic recovered", start)
}
