package serve

import "time"

// Clock is the daemon's only time source: admission refill, request
// deadlines, latency metrics, and load-generator pacing all read
// monotonic nanoseconds from it. Injecting a virtual clock makes every
// time-dependent behaviour (token refill, 429 shedding, 504 budgets)
// deterministic in tests — the same reason the simulator owns its own
// rng streams instead of sampling wall-clock entropy.
type Clock interface {
	// Nanos returns monotonic nanoseconds since an arbitrary epoch.
	Nanos() int64
}

// realClock reads the process monotonic clock, anchored at construction
// so Nanos stays small and overflow-free.
type realClock struct {
	base time.Time
}

// NewRealClock returns the production monotonic clock.
func NewRealClock() Clock { return realClock{base: time.Now()} }

func (c realClock) Nanos() int64 { return time.Since(c.base).Nanoseconds() }
