package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"ceer"
)

// contentTypeJSON is the shared Content-Type header value; assigned by
// key so reply never canonicalizes or allocates. Handlers must never
// mutate it.
var contentTypeJSON = []string{"application/json"}

// reply writes a response and records its metrics. Unmarked (header
// maps are banned in //hot:path functions) but allocation-free: the
// header value slice is shared and the body is the caller's scratch.
//
//hot:exempt header-map write and ResponseWriter interface calls; allocation behaviour pinned by the serve benches
func (s *Server) reply(w http.ResponseWriter, ep, status int, body []byte, start int64) {
	h := w.Header()
	h["Content-Type"] = contentTypeJSON
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		// The client is gone; all we can do is count it.
		s.met.eps[ep].writeErrors.Add(1)
	}
	s.met.observe(ep, status, s.clock.Nanos()-start)
}

// respondError writes an ErrorResponse-shaped body into an arena
// scratch, so refusals (404s, shed 429s, 504s) are as allocation-free
// as successes — load shedding that allocated under overload would
// defeat its purpose. A handler may already hold a scratch when this
// runs; the pool simply lends a second one.
//
//hot:exempt amortized append encoding into arena scratch; pinned by BenchmarkRespondError 0 allocs/op
func (s *Server) respondError(w http.ResponseWriter, ep, status int, msg string, start int64) {
	sc := s.arena.get()
	b := append(sc.buf[:0], `{"error":`...)
	b = appendJSONString(b, msg)
	b = append(b, '}', '\n')
	sc.buf = b
	s.reply(w, ep, status, sc.buf, start)
	s.arena.put(sc)
}

// appendPredictionFields appends a PredictionJSON's fields (no braces),
// in exact struct-tag order.
func appendPredictionFields(b []byte, m *candMeta, p *ceer.Prediction) []byte {
	b = appendKey(b, true, "config")
	b = appendJSONString(b, m.config)
	b = appendKey(b, false, "instance")
	b = appendJSONString(b, m.instance)
	b = appendKey(b, false, "gpu")
	b = appendJSONString(b, m.gpu)
	b = appendKey(b, false, "k")
	b = appendJSONInt(b, int64(m.k))
	b = appendKey(b, false, "hourly_usd")
	b = appendJSONFloat(b, p.HourlyUSD)
	b = appendKey(b, false, "iterations")
	b = appendJSONInt(b, p.Iterations)
	b = appendKey(b, false, "heavy_s")
	b = appendJSONFloat(b, p.Iter.HeavySeconds)
	b = appendKey(b, false, "light_s")
	b = appendJSONFloat(b, p.Iter.LightSeconds)
	b = appendKey(b, false, "cpu_s")
	b = appendJSONFloat(b, p.Iter.CPUSeconds)
	b = appendKey(b, false, "comm_s")
	b = appendJSONFloat(b, p.Iter.CommSeconds)
	b = appendKey(b, false, "iter_s")
	b = appendJSONFloat(b, p.Iter.PerIterSeconds)
	b = appendKey(b, false, "total_s")
	b = appendJSONFloat(b, p.TotalSeconds)
	b = appendKey(b, false, "cost_usd")
	b = appendJSONFloat(b, p.CostUSD)
	if len(p.Iter.UnseenHeavy) > 0 {
		b = appendKey(b, false, "unseen_heavy")
		b = append(b, '[')
		for i, t := range p.Iter.UnseenHeavy {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, string(t))
		}
		b = append(b, ']')
	}
	return b
}

// appendCandidate appends a CandidateJSON object (prediction fields
// inlined first, mirroring the embedded struct).
func appendCandidate(b []byte, m *candMeta, c *ceer.Candidate) []byte {
	b = append(b, '{')
	b = appendPredictionFields(b, m, &c.Prediction)
	b = appendKey(b, false, "feasible")
	b = appendJSONBool(b, c.Feasible)
	b = appendKey(b, false, "score")
	b = appendJSONFloat(b, c.Score)
	if c.Degraded != "" {
		b = appendKey(b, false, "degraded")
		b = appendJSONString(b, c.Degraded)
	}
	return append(b, '}')
}

// renderPredict fills sc.buf with the /v1/predict document for the
// candidate set. Returns (200, "") or an error status and message.
// Requests at the compiled batch size gather from the hot tables; other
// batch sizes fall back to the folded predictor (cold, may allocate).
//
//hot:exempt amortized append encoding plus an explicit cold fallback branch; hot-table math is proven via the //hot:path marks on the compiled predictor itself
func (s *Server) renderPredict(sc *scratch, me *modelEntry, cands []ceer.InstanceConfig, metas []candMeta) (int, string) {
	q := &sc.q
	ds := ceer.Dataset{Name: "request", Samples: q.samples}
	pricing := ceer.OnDemand
	if q.market {
		pricing = ceer.MarketRatio
	}
	comp := s.box.Load()
	g := me.g
	var cold *ceer.System
	if q.batch != s.batch {
		cold = s.sys.Load()
		cg, err := ceer.BuildModelCached(q.model, q.batch)
		if err != nil {
			return http.StatusBadRequest, err.Error()
		}
		g = cg
	}

	b := sc.buf[:0]
	b = append(b, '{')
	b = appendKey(b, true, "cnn")
	b = appendJSONString(b, q.model)
	b = appendKey(b, false, "batch")
	b = appendJSONInt(b, q.batch)
	b = appendKey(b, false, "samples")
	b = appendJSONInt(b, q.samples)
	b = appendKey(b, false, "pricing")
	b = appendJSONString(b, q.pricing)
	b = appendKey(b, false, "predictions")
	b = append(b, '[')
	for i := range cands {
		var p ceer.Prediction
		var err error
		if cold != nil {
			p, err = cold.PredictTraining(g, cands[i], ds, pricing)
		} else {
			p, err = comp.PredictTraining(g, cands[i], ds, pricing)
		}
		if err != nil {
			return http.StatusBadRequest, err.Error()
		}
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '{')
		b = appendPredictionFields(b, &metas[i], &p)
		b = append(b, '}')
	}
	b = append(b, ']', '}', '\n')
	sc.buf = b
	return http.StatusOK, ""
}

// renderRecommend fills sc.buf with the /v1/recommend document:
// RecommendInto writes into the scratch's reused candidate slice, then
// the document is appended candidate by candidate (metas parallel the
// candidate order).
//
//hot:exempt amortized append encoding plus an explicit cold fallback branch; hot-table math is proven via the //hot:path marks on the compiled predictor itself
func (s *Server) renderRecommend(sc *scratch, me *modelEntry, cands []ceer.InstanceConfig, metas []candMeta) (int, string) {
	q := &sc.q
	ds := ceer.Dataset{Name: "request", Samples: q.samples}
	pricing := ceer.OnDemand
	if q.market {
		pricing = ceer.MarketRatio
	}
	obj := ceer.MinimizeCost
	if q.objective == "time" {
		obj = ceer.MinimizeTime
	}
	comp := s.box.Load()
	if q.batch != s.batch {
		// Cold fallback for non-compiled batch sizes.
		cold := s.sys.Load()
		cg, err := ceer.BuildModelCached(q.model, q.batch)
		if err != nil {
			return http.StatusBadRequest, err.Error()
		}
		rec, err := cold.Recommend(cg, ds, pricing, cands, obj, sc.constraints()...)
		if err != nil {
			return http.StatusBadRequest, err.Error()
		}
		sc.rec = rec
	} else if err := comp.RecommendInto(&sc.rec, me.g, ds, pricing, cands, obj, sc.constraints()...); err != nil {
		return http.StatusBadRequest, err.Error()
	}

	rec := &sc.rec
	bi := -1
	for i := range rec.Candidates {
		if rec.Candidates[i].Cfg == rec.Best.Cfg {
			bi = i
			break
		}
	}
	if bi < 0 {
		return http.StatusInternalServerError, "recommendation lost its best candidate"
	}
	b := sc.buf[:0]
	b = append(b, '{')
	b = appendKey(b, true, "cnn")
	b = appendJSONString(b, q.model)
	b = appendKey(b, false, "objective")
	b = appendJSONString(b, q.objective)
	b = appendKey(b, false, "batch")
	b = appendJSONInt(b, q.batch)
	b = appendKey(b, false, "samples")
	b = appendJSONInt(b, q.samples)
	b = appendKey(b, false, "pricing")
	b = appendJSONString(b, q.pricing)
	b = appendKey(b, false, "best")
	b = appendCandidate(b, &metas[bi], &rec.Best)
	b = appendKey(b, false, "candidates")
	b = append(b, '[')
	for i := range rec.Candidates {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendCandidate(b, &metas[i], &rec.Candidates[i])
	}
	b = append(b, ']', '}', '\n')
	sc.buf = b
	return http.StatusOK, ""
}

// renderHealthz fills sc.buf with the /healthz document; status is the
// health state machine value at now.
//
//hot:exempt amortized append encoding into arena scratch; pinned by the healthz bench gate
func (s *Server) renderHealthz(sc *scratch, now int64) {
	b := sc.buf[:0]
	b = append(b, '{')
	b = appendKey(b, true, "status")
	b = appendJSONString(b, s.healthState(now))
	b = appendKey(b, false, "generation")
	b = appendJSONInt(b, int64(s.gen.Load()))
	b = appendKey(b, false, "models")
	b = appendJSONInt(b, int64(len(s.models)))
	b = appendKey(b, false, "devices")
	b = appendJSONInt(b, int64(len(s.metaByK[1])))
	b = appendKey(b, false, "batch")
	b = appendJSONInt(b, s.batch)
	b = appendKey(b, false, "max_k")
	b = appendJSONInt(b, int64(s.maxK))
	b = appendKey(b, false, "panics")
	b = appendJSONInt(b, int64(s.met.srv.panics.Load()))
	b = appendKey(b, false, "reload_rejected")
	b = appendJSONInt(b, int64(s.met.srv.reloadRejected.Load()))
	b = appendKey(b, false, "drifted_cells")
	b = appendJSONInt(b, s.met.srv.driftedCells.Load())
	b = append(b, '}', '\n')
	sc.buf = b
}

// handleExplain is the /v1/explain cold path: per-op-type attribution
// through the folded predictor, marshaled with encoding/json.
//
//hot:exempt cold diagnostic endpoint; allocates by design
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, start int64) {
	var q query
	if msg := q.reset(s).parse(r.URL.RawQuery, s.maxK); msg != "" {
		s.respondError(w, epExplain, http.StatusBadRequest, msg, start)
		return
	}
	if q.model == "" || q.gpu == "" {
		s.respondError(w, epExplain, http.StatusBadRequest, "missing model or gpu parameter", start)
		return
	}
	me := s.findModel(q.model)
	if me == nil {
		s.respondError(w, epExplain, http.StatusNotFound, "unknown model", start)
		return
	}
	known := false
	for i := range s.metaByK[1] {
		if s.metaByK[1][i].gpu == q.gpu {
			known = true
			break
		}
	}
	if !known {
		s.respondError(w, epExplain, http.StatusNotFound, "unknown gpu", start)
		return
	}
	k := q.k
	if k == 0 {
		k = 1
	}
	comp := s.box.Load()
	ex, err := comp.Predictor().ExplainIteration(me.g, ceer.GPUModel(q.gpu), k)
	if err != nil {
		s.respondError(w, epExplain, http.StatusBadRequest, err.Error(), start)
		return
	}
	resp := ExplainResponse{
		CNN:       q.model,
		GPU:       q.gpu,
		K:         k,
		HeavyS:    ex.Iter.HeavySeconds,
		LightS:    ex.Iter.LightSeconds,
		CPUS:      ex.Iter.CPUSeconds,
		CommS:     ex.Iter.CommSeconds,
		IterS:     ex.Iter.PerIterSeconds,
		CommShare: ex.CommShare,
	}
	for _, t := range ex.Iter.UnseenHeavy {
		resp.UnseenHeavy = append(resp.UnseenHeavy, string(t))
	}
	for _, c := range ex.Contributions {
		resp.Contributions = append(resp.Contributions, ContributionJSON{
			Op:      string(c.OpType),
			Class:   c.Class.String(),
			Count:   c.Count,
			Seconds: c.Seconds,
			Share:   c.Share,
		})
	}
	s.replyJSON(w, epExplain, http.StatusOK, resp, start)
}

// handleMetrics snapshots the atomics into the /metrics document.
//
//hot:exempt cold diagnostic endpoint; allocates by design
func (s *Server) handleMetrics(w http.ResponseWriter, start int64) {
	snap := MetricsSnapshot{
		UptimeSeconds: float64(s.clock.Nanos()-s.startNs) / 1e9,
		Generation:    s.gen.Load(),
		State:         s.healthState(start),
		Draining:      s.draining.Load(),
		Server:        s.met.srv.snapshot(),
		Endpoints:     s.met.snapshot(),
	}
	if c := s.lastReloadCause.Load(); c != nil {
		snap.Server.LastReloadCause = *c
	}
	s.replyJSON(w, epMetrics, http.StatusOK, snap, start)
}

// handleReload is POST /admin/reload: re-read the model file, validate,
// and swap — or reject. A rejected swap is 422 with the typed cause (the
// daemon is healthy and still serving the old generation; the *file* is
// unprocessable); a daemon with no model path at all is 409.
//
//hot:exempt cold admin endpoint; reload allocates a whole new generation by design
func (s *Server) handleReload(w http.ResponseWriter, start int64) {
	gen, err := s.Reload()
	if err != nil {
		var re *ReloadError
		if errors.As(err, &re) {
			s.replyJSON(w, epAdmin, http.StatusUnprocessableEntity, ReloadResponse{
				Status:     "rejected",
				Generation: s.gen.Load(),
				Cause:      re.Cause,
				Error:      re.Err.Error(),
			}, start)
			return
		}
		s.respondError(w, epAdmin, http.StatusConflict, err.Error(), start)
		return
	}
	s.replyJSON(w, epAdmin, http.StatusOK, ReloadResponse{Status: "reloaded", Generation: gen}, start)
}

// replyJSON marshals a cold-path document with encoding/json.
func (s *Server) replyJSON(w http.ResponseWriter, ep, status int, v any, start int64) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		s.respondError(w, ep, http.StatusInternalServerError, err.Error(), start)
		return
	}
	s.reply(w, ep, status, append(b, '\n'), start)
}
