package serve

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Endpoint indices: hot counters live in flat arrays indexed by these,
// so recording a request is two or three atomic adds — no maps, no
// locks, no allocation (the hotpath analyzer guards this).
const (
	epPredict = iota
	epRecommend
	epExplain
	epObserve
	epHealthz
	epMetrics
	epAdmin
	epOther
	numEndpoints
)

var endpointNames = [numEndpoints]string{
	"predict", "recommend", "explain", "observe", "healthz", "metrics", "admin", "other",
}

// numBuckets is the latency histogram depth: bucket i counts requests
// with latency in [2^(i-1), 2^i) microseconds (bucket 0 is < 1 µs), so
// 28 buckets span sub-microsecond to ~2.2 minutes.
const numBuckets = 28

// epCounters is one endpoint's counter block. Every field is an atomic
// touched only by Add/Load; the /metrics endpoint snapshots them
// without stopping traffic.
type epCounters struct {
	requests     atomic.Uint64
	ok           atomic.Uint64 // 2xx/3xx responses
	clientErrors atomic.Uint64 // 4xx responses (shed included)
	serverErrors atomic.Uint64 // 5xx responses (timeouts included)
	shedRate     atomic.Uint64 // 429s from the token bucket
	shedQueue    atomic.Uint64 // 429s from the queue-depth cap
	timeouts     atomic.Uint64 // 504s from the request budget
	writeErrors  atomic.Uint64 // response writes the client never got
	totalNanos   atomic.Uint64
	buckets      [numBuckets]atomic.Uint64
}

// srvCounters are daemon-lifetime counters (panic isolation, reload
// validation, calibration). Unlike the per-endpoint blocks they survive
// the end-of-warmup reset — a panic during warmup is still a panic.
type srvCounters struct {
	panics             atomic.Uint64 // handler panics recovered (each one a 500)
	degradedEntries    atomic.Uint64 // breaker trips into the degraded state
	reloads            atomic.Uint64 // accepted model-file reloads
	reloadRejected     atomic.Uint64 // model-file reloads rejected by validation
	calibObs           atomic.Uint64 // observations journaled and applied
	calibShed          atomic.Uint64 // observations shed while degraded
	calibDropped       atomic.Uint64 // malformed/failed tail-mode lines dropped
	calibSwaps         atomic.Uint64 // calibration refits installed as serving tables
	calibSwapsRejected atomic.Uint64 // refits rejected by the golden probe
	driftedCells       atomic.Int64  // gauge: cells currently flagged drifted
}

// metrics is the daemon's whole metric state: a fixed array of endpoint
// counter blocks plus the server-lifetime block.
type metrics struct {
	eps [numEndpoints]epCounters
	srv srvCounters
}

// bucketIndex maps a latency to its power-of-two histogram bucket.
//
//hot:path
func bucketIndex(nanos int64) int {
	if nanos < 0 {
		nanos = 0
	}
	idx := bits.Len64(uint64(nanos / 1_000))
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// observe records one finished request: status class, latency bucket,
// and latency sum.
//
//hot:path
func (m *metrics) observe(ep, status int, nanos int64) {
	c := &m.eps[ep]
	c.requests.Add(1)
	switch {
	case status < 400:
		c.ok.Add(1)
	case status < 500:
		c.clientErrors.Add(1)
	default:
		c.serverErrors.Add(1)
	}
	if nanos > 0 {
		c.totalNanos.Add(uint64(nanos))
	}
	c.buckets[bucketIndex(nanos)].Add(1)
}

// reset zeroes every counter (end of warmup, so synthetic traffic does
// not pollute the serving metrics).
func (m *metrics) reset() {
	for e := range m.eps {
		c := &m.eps[e]
		c.requests.Store(0)
		c.ok.Store(0)
		c.clientErrors.Store(0)
		c.serverErrors.Store(0)
		c.shedRate.Store(0)
		c.shedQueue.Store(0)
		c.timeouts.Store(0)
		c.writeErrors.Store(0)
		c.totalNanos.Store(0)
		for i := range c.buckets {
			c.buckets[i].Store(0)
		}
	}
}

// LatencyBucket is one histogram cell of an endpoint snapshot: Count
// requests finished in at most LeMicros microseconds (and more than the
// previous bucket's bound).
type LatencyBucket struct {
	LeMicros uint64 `json:"le_us"`
	Count    uint64 `json:"count"`
}

// EndpointSnapshot is the JSON form of one endpoint's counters.
type EndpointSnapshot struct {
	Requests     uint64          `json:"requests"`
	OK           uint64          `json:"ok"`
	ClientErrors uint64          `json:"client_errors"`
	ServerErrors uint64          `json:"server_errors"`
	ShedRate     uint64          `json:"shed_rate"`
	ShedQueue    uint64          `json:"shed_queue"`
	Timeouts     uint64          `json:"timeouts"`
	WriteErrors  uint64          `json:"write_errors"`
	AvgMicros    float64         `json:"avg_us"`
	P50Micros    uint64          `json:"p50_us"`
	P99Micros    uint64          `json:"p99_us"`
	P999Micros   uint64          `json:"p999_us"`
	Buckets      []LatencyBucket `json:"latency_buckets,omitempty"`
}

// ServerSnapshot is the JSON form of the daemon-lifetime counters.
type ServerSnapshot struct {
	Panics             uint64 `json:"panics"`
	DegradedEntries    uint64 `json:"degraded_entries"`
	Reloads            uint64 `json:"reloads"`
	ReloadRejected     uint64 `json:"reload_rejected"`
	LastReloadCause    string `json:"last_reload_cause,omitempty"`
	CalibObs           uint64 `json:"calib_obs"`
	CalibShed          uint64 `json:"calib_shed"`
	CalibDropped       uint64 `json:"calib_dropped"`
	CalibSwaps         uint64 `json:"calib_swaps"`
	CalibSwapsRejected uint64 `json:"calib_swaps_rejected"`
	DriftedCells       int64  `json:"drifted_cells"`
}

// MetricsSnapshot is the /metrics response document.
type MetricsSnapshot struct {
	UptimeSeconds float64                     `json:"uptime_s"`
	Generation    uint64                      `json:"generation"`
	State         string                      `json:"state"`
	Draining      bool                        `json:"draining"`
	Server        ServerSnapshot              `json:"server"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
}

// snapshot copies the server-lifetime counters into their JSON form
// (LastReloadCause is filled by the caller, which owns the atomic
// pointer).
func (c *srvCounters) snapshot() ServerSnapshot {
	return ServerSnapshot{
		Panics:             c.panics.Load(),
		DegradedEntries:    c.degradedEntries.Load(),
		Reloads:            c.reloads.Load(),
		ReloadRejected:     c.reloadRejected.Load(),
		CalibObs:           c.calibObs.Load(),
		CalibShed:          c.calibShed.Load(),
		CalibDropped:       c.calibDropped.Load(),
		CalibSwaps:         c.calibSwaps.Load(),
		CalibSwapsRejected: c.calibSwapsRejected.Load(),
		DriftedCells:       c.driftedCells.Load(),
	}
}

// snapshot copies the counters into their JSON form. Quantiles are
// histogram upper bounds: the reported p99 is the bucket boundary at or
// above the true 99th percentile (at most 2x the true value, by
// construction of the power-of-two buckets).
func (m *metrics) snapshot() map[string]EndpointSnapshot {
	out := make(map[string]EndpointSnapshot, numEndpoints)
	for e := range m.eps {
		c := &m.eps[e]
		s := EndpointSnapshot{
			Requests:     c.requests.Load(),
			OK:           c.ok.Load(),
			ClientErrors: c.clientErrors.Load(),
			ServerErrors: c.serverErrors.Load(),
			ShedRate:     c.shedRate.Load(),
			ShedQueue:    c.shedQueue.Load(),
			Timeouts:     c.timeouts.Load(),
			WriteErrors:  c.writeErrors.Load(),
		}
		if s.Requests == 0 {
			continue
		}
		var counts [numBuckets]uint64
		var total uint64
		for i := range counts {
			counts[i] = c.buckets[i].Load()
			total += counts[i]
		}
		s.AvgMicros = float64(c.totalNanos.Load()) / float64(s.Requests) / 1e3
		s.P50Micros = histQuantile(counts[:], total, 0.50)
		s.P99Micros = histQuantile(counts[:], total, 0.99)
		s.P999Micros = histQuantile(counts[:], total, 0.999)
		for i, n := range counts {
			if n > 0 {
				s.Buckets = append(s.Buckets, LatencyBucket{LeMicros: bucketBound(i), Count: n})
			}
		}
		out[endpointNames[e]] = s
	}
	return out
}

// bucketBound is bucket i's inclusive upper latency bound in
// microseconds.
func bucketBound(i int) uint64 {
	if i == 0 {
		return 0 // sub-microsecond
	}
	return uint64(1)<<uint(i) - 1
}

// histQuantile returns the upper bound of the bucket containing the
// q-quantile of the histogram.
func histQuantile(counts []uint64, total uint64, q float64) uint64 {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i, n := range counts {
		seen += n
		if seen >= rank {
			return bucketBound(i)
		}
	}
	return bucketBound(numBuckets - 1)
}
