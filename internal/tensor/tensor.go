// Package tensor provides shape and data-type arithmetic for describing
// the tensors that flow through a CNN computation graph.
//
// The package deliberately stores no tensor data: Ceer only needs the
// metadata of each tensor (rank, dimensions, element type) to derive the
// input-size features that drive its compute-time models. Shapes follow
// TensorFlow's NHWC convention for image tensors: [batch, height, width,
// channels].
package tensor

import (
	"fmt"
	"strings"
)

// DType identifies the element type of a tensor.
type DType int

// Supported element types. Float32 dominates CNN training workloads; the
// integer types appear in input pipelines (labels, indices) and the bool
// type in masking ops.
const (
	Float32 DType = iota
	Float16
	Float64
	Int32
	Int64
	Bool
	Uint8
)

// Size returns the width of one element in bytes.
func (d DType) Size() int64 {
	switch d {
	case Float32, Int32:
		return 4
	case Float16:
		return 2
	case Float64, Int64:
		return 8
	case Bool, Uint8:
		return 1
	default:
		return 4
	}
}

// String returns the conventional lowercase name of the type.
func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float16:
		return "float16"
	case Float64:
		return "float64"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Bool:
		return "bool"
	case Uint8:
		return "uint8"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Shape is the dimension vector of a tensor. A nil Shape represents a
// scalar (rank 0, one element).
type Shape []int64

// NewShape builds a Shape from the given dimensions.
func NewShape(dims ...int64) Shape {
	s := make(Shape, len(dims))
	copy(s, dims)
	return s
}

// Scalar returns the rank-0 shape.
func Scalar() Shape { return Shape{} }

// Vector returns a rank-1 shape of length n.
func Vector(n int64) Shape { return Shape{n} }

// NHWC returns the canonical 4-D image shape [batch, height, width, channels].
func NHWC(n, h, w, c int64) Shape { return Shape{n, h, w, c} }

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Dim returns dimension i, supporting negative indices counted from the
// end (Dim(-1) is the innermost dimension). It panics if i is out of range.
func (s Shape) Dim(i int) int64 {
	if i < 0 {
		i += len(s)
	}
	if i < 0 || i >= len(s) {
		panic(fmt.Sprintf("tensor: dimension index %d out of range for rank-%d shape", i, len(s)))
	}
	return s[i]
}

// Elements returns the total number of elements, i.e. the product of all
// dimensions. The empty (scalar) shape has one element.
func (s Shape) Elements() int64 {
	n := int64(1)
	for _, d := range s {
		n *= d
	}
	return n
}

// Bytes returns the storage footprint of a tensor of this shape and dtype.
func (s Shape) Bytes(d DType) int64 { return s.Elements() * d.Size() }

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	if s == nil {
		return nil
	}
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two shapes have identical rank and dimensions.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Valid reports whether every dimension is positive.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

// WithBatch returns a copy of the shape with the leading (batch)
// dimension replaced by n. It panics on a scalar shape.
func (s Shape) WithBatch(n int64) Shape {
	if len(s) == 0 {
		panic("tensor: WithBatch on scalar shape")
	}
	c := s.Clone()
	c[0] = n
	return c
}

// String renders the shape as, e.g., "[32x224x224x3]".
func (s Shape) String() string {
	if len(s) == 0 {
		return "[]"
	}
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return "[" + strings.Join(parts, "x") + "]"
}

// Spec pairs a shape with an element type: the full metadata of one
// tensor flowing along a graph edge.
type Spec struct {
	Shape Shape
	DType DType
}

// SpecOf is a convenience constructor.
func SpecOf(s Shape, d DType) Spec { return Spec{Shape: s, DType: d} }

// F32 builds a float32 Spec, the common case in CNN training.
func F32(dims ...int64) Spec { return Spec{Shape: NewShape(dims...), DType: Float32} }

// Elements returns the element count of the spec's shape.
func (p Spec) Elements() int64 { return p.Shape.Elements() }

// Bytes returns the storage footprint of the spec.
func (p Spec) Bytes() int64 { return p.Shape.Bytes(p.DType) }

// String renders, e.g., "float32[32x224x224x3]".
func (p Spec) String() string { return p.DType.String() + p.Shape.String() }
