package tensor

import "fmt"

// Padding selects the boundary policy of a convolution or pooling window,
// mirroring TensorFlow's SAME/VALID semantics.
type Padding int

const (
	// Same pads the input so that, with stride 1, the output spatial size
	// equals the input spatial size.
	Same Padding = iota
	// Valid applies no padding; the window must fit entirely inside the
	// input.
	Valid
)

// String returns "SAME" or "VALID".
func (p Padding) String() string {
	if p == Same {
		return "SAME"
	}
	return "VALID"
}

// Window describes a 2-D sliding-window computation (convolution or
// pooling): the kernel extent, stride, and padding policy.
type Window struct {
	KernelH, KernelW int64
	StrideH, StrideW int64
	Padding          Padding
}

// Win is a convenience constructor for a square kernel and stride.
func Win(kernel, stride int64, pad Padding) Window {
	return Window{KernelH: kernel, KernelW: kernel, StrideH: stride, StrideW: stride, Padding: pad}
}

// Valid reports whether the window parameters are usable.
func (w Window) Valid() bool {
	return w.KernelH > 0 && w.KernelW > 0 && w.StrideH > 0 && w.StrideW > 0
}

// outDim computes one spatial output dimension.
func outDim(in, kernel, stride int64, pad Padding) (int64, error) {
	if in <= 0 {
		return 0, fmt.Errorf("tensor: non-positive input dimension %d", in)
	}
	switch pad {
	case Same:
		return (in + stride - 1) / stride, nil
	case Valid:
		if kernel > in {
			return 0, fmt.Errorf("tensor: VALID window kernel %d exceeds input %d", kernel, in)
		}
		return (in-kernel)/stride + 1, nil
	default:
		return 0, fmt.Errorf("tensor: unknown padding %d", int(pad))
	}
}

// OutputShape computes the NHWC output shape of applying the window to the
// NHWC input with the given output channel count. For pooling, pass
// outChannels equal to the input channel count.
func (w Window) OutputShape(in Shape, outChannels int64) (Shape, error) {
	if in.Rank() != 4 {
		return nil, fmt.Errorf("tensor: window requires rank-4 NHWC input, got %s", in)
	}
	if !w.Valid() {
		return nil, fmt.Errorf("tensor: invalid window %+v", w)
	}
	oh, err := outDim(in.Dim(1), w.KernelH, w.StrideH, w.Padding)
	if err != nil {
		return nil, err
	}
	ow, err := outDim(in.Dim(2), w.KernelW, w.StrideW, w.Padding)
	if err != nil {
		return nil, err
	}
	if outChannels <= 0 {
		return nil, fmt.Errorf("tensor: non-positive output channels %d", outChannels)
	}
	return NHWC(in.Dim(0), oh, ow, outChannels), nil
}

// FilterShape returns the HWIO filter shape [kh, kw, inC, outC] of a
// convolution applying this window to an input with inC channels.
func (w Window) FilterShape(inChannels, outChannels int64) Shape {
	return Shape{w.KernelH, w.KernelW, inChannels, outChannels}
}

// ConvFLOPs returns the multiply-accumulate count (counted as 2 FLOPs
// each) of a 2-D convolution with the given input and filter shapes.
// Input is NHWC, filter is HWIO.
func ConvFLOPs(in, filter Shape, w Window) (int64, error) {
	if in.Rank() != 4 || filter.Rank() != 4 {
		return 0, fmt.Errorf("tensor: ConvFLOPs requires rank-4 input and filter, got %s and %s", in, filter)
	}
	if in.Dim(3) != filter.Dim(2) {
		return 0, fmt.Errorf("tensor: input channels %d != filter input channels %d", in.Dim(3), filter.Dim(2))
	}
	out, err := w.OutputShape(in, filter.Dim(3))
	if err != nil {
		return 0, err
	}
	// Each output element accumulates kh*kw*inC products.
	macs := out.Elements() * filter.Dim(0) * filter.Dim(1) * filter.Dim(2)
	return 2 * macs, nil
}

// PoolFLOPs returns the arithmetic operation count of a pooling window:
// one comparison or addition per window element per output element.
func PoolFLOPs(in Shape, w Window) (int64, error) {
	if in.Rank() != 4 {
		return 0, fmt.Errorf("tensor: PoolFLOPs requires rank-4 input, got %s", in)
	}
	out, err := w.OutputShape(in, in.Dim(3))
	if err != nil {
		return 0, err
	}
	return out.Elements() * w.KernelH * w.KernelW, nil
}

// MatMulFLOPs returns the FLOP count of the matrix product of an [m, k]
// by a [k, n] operand.
func MatMulFLOPs(a, b Shape) (int64, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return 0, fmt.Errorf("tensor: MatMulFLOPs requires rank-2 operands, got %s and %s", a, b)
	}
	if a.Dim(1) != b.Dim(0) {
		return 0, fmt.Errorf("tensor: inner dimensions disagree: %s x %s", a, b)
	}
	return 2 * a.Dim(0) * a.Dim(1) * b.Dim(1), nil
}
