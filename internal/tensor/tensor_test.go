package tensor

import (
	"testing"
	"testing/quick"
)

func TestDTypeSize(t *testing.T) {
	cases := []struct {
		d    DType
		want int64
	}{
		{Float32, 4}, {Float16, 2}, {Float64, 8},
		{Int32, 4}, {Int64, 8}, {Bool, 1}, {Uint8, 1},
	}
	for _, c := range cases {
		if got := c.d.Size(); got != c.want {
			t.Errorf("%s.Size() = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestDTypeString(t *testing.T) {
	if Float32.String() != "float32" {
		t.Errorf("Float32.String() = %q", Float32.String())
	}
	if DType(99).String() == "" {
		t.Error("unknown dtype should still render")
	}
}

func TestShapeElements(t *testing.T) {
	cases := []struct {
		s    Shape
		want int64
	}{
		{Scalar(), 1},
		{Vector(7), 7},
		{NHWC(32, 224, 224, 3), 32 * 224 * 224 * 3},
		{NewShape(2, 3, 4), 24},
	}
	for _, c := range cases {
		if got := c.s.Elements(); got != c.want {
			t.Errorf("%s.Elements() = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestShapeBytes(t *testing.T) {
	s := NHWC(1, 2, 2, 3)
	if got := s.Bytes(Float32); got != 48 {
		t.Errorf("Bytes(Float32) = %d, want 48", got)
	}
	if got := s.Bytes(Uint8); got != 12 {
		t.Errorf("Bytes(Uint8) = %d, want 12", got)
	}
}

func TestShapeDimNegativeIndex(t *testing.T) {
	s := NewShape(4, 5, 6)
	if s.Dim(-1) != 6 || s.Dim(-3) != 4 || s.Dim(1) != 5 {
		t.Errorf("Dim indexing wrong: %d %d %d", s.Dim(-1), s.Dim(-3), s.Dim(1))
	}
}

func TestShapeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dim out of range should panic")
		}
	}()
	NewShape(2).Dim(3)
}

func TestShapeCloneIndependent(t *testing.T) {
	s := NewShape(1, 2, 3)
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Error("Clone shares backing array")
	}
	if NewShape().Clone() == nil {
		// empty (non-nil) clone stays non-nil length 0; nil stays nil
		t.Error("empty clone should be non-nil")
	}
	var nilShape Shape
	if nilShape.Clone() != nil {
		t.Error("nil clone should stay nil")
	}
}

func TestShapeEqual(t *testing.T) {
	if !NewShape(1, 2).Equal(NewShape(1, 2)) {
		t.Error("equal shapes reported unequal")
	}
	if NewShape(1, 2).Equal(NewShape(1, 2, 3)) {
		t.Error("different ranks reported equal")
	}
	if NewShape(1, 2).Equal(NewShape(2, 1)) {
		t.Error("different dims reported equal")
	}
}

func TestShapeValid(t *testing.T) {
	if !NHWC(1, 2, 3, 4).Valid() {
		t.Error("positive shape should be valid")
	}
	if NewShape(1, 0, 3).Valid() {
		t.Error("zero dim should be invalid")
	}
	if NewShape(-1, 3).Valid() {
		t.Error("negative dim should be invalid")
	}
}

func TestWithBatch(t *testing.T) {
	s := NHWC(32, 8, 8, 64)
	b := s.WithBatch(8)
	if b.Dim(0) != 8 || s.Dim(0) != 32 {
		t.Errorf("WithBatch modified original or failed: %s %s", s, b)
	}
}

func TestShapeString(t *testing.T) {
	if got := NHWC(32, 224, 224, 3).String(); got != "[32x224x224x3]" {
		t.Errorf("String() = %q", got)
	}
	if got := Scalar().String(); got != "[]" {
		t.Errorf("Scalar String() = %q", got)
	}
}

func TestSpec(t *testing.T) {
	p := F32(4, 4)
	if p.Elements() != 16 || p.Bytes() != 64 {
		t.Errorf("Spec arithmetic wrong: %d elems, %d bytes", p.Elements(), p.Bytes())
	}
	if p.String() != "float32[4x4]" {
		t.Errorf("Spec.String() = %q", p.String())
	}
	q := SpecOf(Vector(3), Int64)
	if q.Bytes() != 24 {
		t.Errorf("SpecOf bytes = %d, want 24", q.Bytes())
	}
}

func TestPaddingString(t *testing.T) {
	if Same.String() != "SAME" || Valid.String() != "VALID" {
		t.Error("padding names wrong")
	}
}

func TestOutDimSame(t *testing.T) {
	// SAME, stride 1 preserves size; stride 2 halves (rounding up).
	cases := []struct {
		in, k, s, want int64
	}{
		{224, 3, 1, 224},
		{224, 3, 2, 112},
		{7, 3, 2, 4},
		{5, 7, 1, 5}, // SAME allows kernel > input
	}
	for _, c := range cases {
		got, err := outDim(c.in, c.k, c.s, Same)
		if err != nil || got != c.want {
			t.Errorf("outDim(%d,k=%d,s=%d,SAME) = %d,%v want %d", c.in, c.k, c.s, got, err, c.want)
		}
	}
}

func TestOutDimValid(t *testing.T) {
	cases := []struct {
		in, k, s, want int64
	}{
		{224, 3, 1, 222},
		{227, 11, 4, 55}, // AlexNet conv1
		{7, 7, 1, 1},     // global pooling
	}
	for _, c := range cases {
		got, err := outDim(c.in, c.k, c.s, Valid)
		if err != nil || got != c.want {
			t.Errorf("outDim(%d,k=%d,s=%d,VALID) = %d,%v want %d", c.in, c.k, c.s, got, err, c.want)
		}
	}
	if _, err := outDim(5, 7, 1, Valid); err == nil {
		t.Error("VALID with kernel > input should error")
	}
	if _, err := outDim(0, 3, 1, Valid); err == nil {
		t.Error("non-positive input should error")
	}
}

func TestWindowOutputShape(t *testing.T) {
	in := NHWC(32, 224, 224, 3)
	out, err := Win(3, 2, Same).OutputShape(in, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(NHWC(32, 112, 112, 64)) {
		t.Errorf("OutputShape = %s", out)
	}
	if _, err := Win(3, 1, Same).OutputShape(Vector(3), 4); err == nil {
		t.Error("non-4D input should error")
	}
	if _, err := (Window{}).OutputShape(in, 4); err == nil {
		t.Error("invalid window should error")
	}
	if _, err := Win(3, 1, Same).OutputShape(in, 0); err == nil {
		t.Error("zero out channels should error")
	}
}

func TestFilterShape(t *testing.T) {
	f := Win(3, 1, Same).FilterShape(64, 128)
	if !f.Equal(NewShape(3, 3, 64, 128)) {
		t.Errorf("FilterShape = %s", f)
	}
}

func TestConvFLOPs(t *testing.T) {
	// 1x1 conv on 1x1 spatial: out 1 elem, inC=2 -> 2 MACs = 4 FLOPs.
	in := NHWC(1, 1, 1, 2)
	filter := NewShape(1, 1, 2, 1)
	got, err := ConvFLOPs(in, filter, Win(1, 1, Same))
	if err != nil || got != 4 {
		t.Errorf("ConvFLOPs = %d, %v; want 4", got, err)
	}
	// Channel mismatch.
	if _, err := ConvFLOPs(in, NewShape(1, 1, 3, 1), Win(1, 1, Same)); err == nil {
		t.Error("channel mismatch should error")
	}
	if _, err := ConvFLOPs(Vector(2), filter, Win(1, 1, Same)); err == nil {
		t.Error("bad rank should error")
	}
}

func TestConvFLOPsKnownLayer(t *testing.T) {
	// VGG conv3-64 on 224x224x3, batch 1:
	// out 224*224*64 elements, each 3*3*3 MACs.
	in := NHWC(1, 224, 224, 3)
	f := Win(3, 1, Same).FilterShape(3, 64)
	got, err := ConvFLOPs(in, f, Win(3, 1, Same))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2) * 224 * 224 * 64 * 3 * 3 * 3
	if got != want {
		t.Errorf("ConvFLOPs = %d, want %d", got, want)
	}
}

func TestPoolFLOPs(t *testing.T) {
	in := NHWC(1, 4, 4, 8)
	got, err := PoolFLOPs(in, Win(2, 2, Valid))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2*2*8) * 2 * 2 // 2x2 output x 8 channels, 4 window elems each
	if got != want {
		t.Errorf("PoolFLOPs = %d, want %d", got, want)
	}
	if _, err := PoolFLOPs(Vector(3), Win(2, 2, Valid)); err == nil {
		t.Error("bad rank should error")
	}
}

func TestMatMulFLOPs(t *testing.T) {
	got, err := MatMulFLOPs(NewShape(2, 3), NewShape(3, 5))
	if err != nil || got != 2*2*3*5 {
		t.Errorf("MatMulFLOPs = %d, %v", got, err)
	}
	if _, err := MatMulFLOPs(NewShape(2, 3), NewShape(4, 5)); err == nil {
		t.Error("inner mismatch should error")
	}
	if _, err := MatMulFLOPs(Vector(3), NewShape(3, 5)); err == nil {
		t.Error("bad rank should error")
	}
}

// Property: Elements is multiplicative — appending a dimension d multiplies
// the count by d.
func TestElementsMultiplicativeProperty(t *testing.T) {
	f := func(dims []uint8, extra uint8) bool {
		s := make(Shape, 0, len(dims))
		for _, d := range dims {
			s = append(s, int64(d%16)+1)
		}
		d := int64(extra%16) + 1
		return append(s.Clone(), d).Elements() == s.Elements()*d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SAME output dim = ceil(in/stride), and is monotone in input.
func TestSameOutDimProperty(t *testing.T) {
	f := func(in, k, s uint8) bool {
		inD := int64(in%200) + 1
		kD := int64(k%7) + 1
		sD := int64(s%4) + 1
		got, err := outDim(inD, kD, sD, Same)
		if err != nil {
			return false
		}
		ceil := (inD + sD - 1) / sD
		if got != ceil {
			return false
		}
		bigger, err := outDim(inD+1, kD, sD, Same)
		return err == nil && bigger >= got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ConvFLOPs scales linearly with batch size.
func TestConvFLOPsBatchLinearProperty(t *testing.T) {
	f := func(b uint8, c uint8) bool {
		batch := int64(b%8) + 1
		ch := int64(c%8) + 1
		in1 := NHWC(1, 16, 16, ch)
		inB := NHWC(batch, 16, 16, ch)
		w := Win(3, 1, Same)
		filter := w.FilterShape(ch, 8)
		f1, err1 := ConvFLOPs(in1, filter, w)
		fb, err2 := ConvFLOPs(inB, filter, w)
		return err1 == nil && err2 == nil && fb == batch*f1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
