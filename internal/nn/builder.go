// Package nn provides a layer-level builder API that lowers CNN
// architectures to the op-level training DAGs of package graph.
//
// A Builder call such as Conv or MaxPool immediately emits the forward
// operation(s) and records a closure that, at Finish time, emits the
// corresponding gradient operations (Conv2DBackpropFilter,
// MaxPoolGrad, ...) in reverse layer order, followed by one optimizer
// update op per trainable variable — reproducing the op mix of a
// TensorFlow training iteration (forward + backward + update + input
// pipeline), which is exactly what the paper's Figure 1 DAG depicts.
package nn

import (
	"fmt"

	"ceer/internal/graph"
	"ceer/internal/ops"
	"ceer/internal/tensor"
)

// Tensor is a handle to the output of a graph node, carrying the node ID
// and the tensor metadata. All Builder layer methods consume and produce
// Tensors.
type Tensor struct {
	node graph.NodeID
	spec tensor.Spec
}

// Spec returns the tensor's shape and dtype metadata.
func (t Tensor) Spec() tensor.Spec { return t.spec }

// Node returns the ID of the producing graph node.
func (t Tensor) Node() graph.NodeID { return t.node }

// Builder constructs one CNN training-iteration graph.
type Builder struct {
	g     *graph.Graph
	batch int64

	// backwards holds one closure per forward layer, run in reverse
	// order by Finish to emit the gradient ops.
	backwards []func()
	// gradContribs accumulates gradient contributions flowing into each
	// forward node's output; multiple contributions (e.g. residual
	// forks) are combined with AddN.
	gradContribs map[graph.NodeID][]Tensor
	// stopNodes marks nodes whose input gradients are pruned (the input
	// pipeline), as TensorFlow prunes gradients toward non-trainables.
	stopNodes map[graph.NodeID]bool

	params   int64
	numVars  int
	counters map[string]int
	finished bool
	err      error
}

// NewBuilder creates a builder for a CNN with the given name and
// per-GPU batch size.
func NewBuilder(name string, batch int64) *Builder {
	return &Builder{
		g:            graph.New(name, batch),
		batch:        batch,
		gradContribs: make(map[graph.NodeID][]Tensor),
		stopNodes:    make(map[graph.NodeID]bool),
		counters:     make(map[string]int),
	}
}

// Batch returns the per-GPU batch size the builder targets.
func (b *Builder) Batch() int64 { return b.batch }

// name generates a unique node name like "conv2d_3".
func (b *Builder) name(kind string) string {
	b.counters[kind]++
	return fmt.Sprintf("%s_%d", kind, b.counters[kind])
}

// emit adds a node, tracking the first construction error.
func (b *Builder) emit(kind string, op *ops.Op, phase graph.Phase, deps ...graph.NodeID) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	if err := op.Validate(); err != nil {
		b.err = fmt.Errorf("nn: %s: %w", kind, err)
		return Tensor{}
	}
	id, err := b.g.Add(b.name(kind), op, phase, deps...)
	if err != nil {
		b.err = fmt.Errorf("nn: %s: %w", kind, err)
		return Tensor{}
	}
	return Tensor{node: id, spec: op.Output}
}

// addParams registers trainable parameters.
func (b *Builder) addParams(n int64) {
	b.params += n
	b.numVars++
}

// addGrad records a gradient contribution toward the output of node.
func (b *Builder) addGrad(node graph.NodeID, g Tensor) {
	if b.stopNodes[node] {
		return
	}
	b.gradContribs[node] = append(b.gradContribs[node], g)
}

// gradOf combines the gradient contributions flowing into node's output.
// A single contribution passes through; multiple contributions are summed
// with an AddN node (the heavy aggregation op visible in residual nets).
// It returns ok=false if no gradient reaches the node (dead branch).
func (b *Builder) gradOf(node graph.NodeID, spec tensor.Spec) (Tensor, bool) {
	contribs := b.gradContribs[node]
	switch len(contribs) {
	case 0:
		return Tensor{}, false
	case 1:
		return contribs[0], true
	default:
		inputs := make([]tensor.Spec, len(contribs))
		deps := make([]graph.NodeID, len(contribs))
		for i, c := range contribs {
			inputs[i] = c.spec
			deps[i] = c.node
		}
		op := &ops.Op{Type: ops.AddN, Inputs: inputs, Output: spec}
		return b.emit("gradients/AddN", op, graph.BackwardPhase, deps...), true
	}
}

// onBackward registers a closure to run during the backward sweep.
func (b *Builder) onBackward(f func()) {
	b.backwards = append(b.backwards, f)
}

// update emits the optimizer update for one variable gradient: an
// ApplyMomentum op consuming the gradient tensor (momentum SGD, the
// optimizer used for the paper's CNNs).
func (b *Builder) update(grad Tensor) {
	op := &ops.Op{
		Type:   ops.ApplyMomentum,
		Inputs: []tensor.Spec{grad.spec, grad.spec}, // accum + grad
		Output: grad.spec,
	}
	b.emit("ApplyMomentum", op, graph.UpdatePhase, grad.node)
}

// Err returns the first construction error, if any.
func (b *Builder) Err() error { return b.err }

// Input emits the input pipeline: augmentation-parameter sampling and
// minibatch decode on the host (CPU ops — decode, normalization, and
// augmentation happen inside the tf.data pipeline), then the
// host-to-device handoff as a light Identity. The returned tensor is the
// NHWC float32 image batch; gradients do not propagate past it.
func (b *Builder) Input(h, w, c int64) Tensor {
	aug := b.emit("RandomUniform", &ops.Op{
		Type:   ops.RandomUniform,
		Output: tensor.F32(b.batch, 4),
	}, graph.InputPhase)
	flr := b.emit("Floor", &ops.Op{
		Type:   ops.Floor,
		Inputs: []tensor.Spec{aug.spec},
		Output: aug.spec,
	}, graph.InputPhase, aug.node)

	raw := b.emit("IteratorGetNext", &ops.Op{
		Type:   ops.IteratorGetNext,
		Inputs: []tensor.Spec{flr.spec},
		Output: tensor.SpecOf(tensor.NHWC(b.batch, h, w, c), tensor.Uint8),
	}, graph.InputPhase, flr.node)

	img := b.emit("Identity", &ops.Op{
		Type:   ops.Identity,
		Inputs: []tensor.Spec{raw.spec},
		Output: tensor.SpecOf(tensor.NHWC(b.batch, h, w, c), tensor.Float32),
	}, graph.InputPhase, raw.node)

	b.stopNodes[img.node] = true
	return img
}

// Finish runs the backward sweep in reverse layer order, emits metric
// ops (accuracy on CPU), finalizes the parameter count, and returns the
// validated graph.
func (b *Builder) Finish() (*graph.Graph, error) {
	if b.finished {
		return nil, fmt.Errorf("nn: Finish called twice on %q", b.g.Name)
	}
	b.finished = true
	for i := len(b.backwards) - 1; i >= 0; i-- {
		b.backwards[i]()
	}
	if b.err != nil {
		return nil, b.err
	}
	b.g.Params = b.params
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// NumVars returns the number of trainable variables registered so far.
func (b *Builder) NumVars() int { return b.numVars }

// Params returns the number of trainable parameters registered so far.
func (b *Builder) Params() int64 { return b.params }
