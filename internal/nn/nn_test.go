package nn

import (
	"testing"

	"ceer/internal/graph"
	"ceer/internal/ops"
	"ceer/internal/tensor"
)

// buildTinyCNN constructs a minimal conv net: input -> conv -> bias ->
// relu -> maxpool -> flatten -> dense -> loss.
func buildTinyCNN(t *testing.T, batch int64) *graph.Graph {
	t.Helper()
	b := NewBuilder("tiny", batch)
	x := b.Input(8, 8, 3)
	x = b.ConvSq(x, 16, 3, 1, tensor.Same)
	x = b.BiasAdd(x)
	x = b.ReLU(x)
	x = b.MaxPool(x, 2, 2, tensor.Valid)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	b.SoftmaxLoss(x)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTinyCNNStructure(t *testing.T) {
	g := buildTinyCNN(t, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	byType := g.CountByType()

	wantPresent := []ops.Type{
		ops.Conv2D, ops.Conv2DBackpropFilter,
		ops.BiasAdd, ops.BiasAddGrad,
		ops.Relu, ops.ReluGrad,
		ops.MaxPool, ops.MaxPoolGrad,
		ops.MatMul, ops.SoftmaxXent,
		ops.ApplyMomentum, ops.IteratorGetNext, ops.OneHot,
	}
	for _, tp := range wantPresent {
		if byType[tp] == 0 {
			t.Errorf("tiny CNN missing op type %s (have %v)", tp, byType)
		}
	}
	// First conv takes the (gradient-stopped) input, so no
	// Conv2DBackpropInput should be emitted.
	if byType[ops.Conv2DBackpropInput] != 0 {
		t.Errorf("unexpected Conv2DBackpropInput toward the input pipeline")
	}
	// Forward MatMul + dW MatMul, but no dX MatMul past a stop? The dense
	// input is the flatten output (not stopped), so dX exists: 3 total.
	if byType[ops.MatMul] != 3 {
		t.Errorf("MatMul count = %d, want 3 (fwd, dW, dX)", byType[ops.MatMul])
	}
	// Variables: conv filter, conv bias, dense W, dense b -> 4 updates.
	if byType[ops.ApplyMomentum] != 4 {
		t.Errorf("ApplyMomentum count = %d, want 4", byType[ops.ApplyMomentum])
	}
}

func TestTinyCNNParams(t *testing.T) {
	g := buildTinyCNN(t, 4)
	// conv 3*3*3*16 + bias 16 + dense (4*4*16)*10 + 10.
	want := int64(3*3*3*16 + 16 + 4*4*16*10 + 10)
	if g.Params != want {
		t.Errorf("Params = %d, want %d", g.Params, want)
	}
}

func TestBatchSizePropagates(t *testing.T) {
	g := buildTinyCNN(t, 8)
	if g.BatchSize != 8 {
		t.Errorf("BatchSize = %d", g.BatchSize)
	}
	for _, n := range g.Nodes() {
		if n.Op.Type == ops.Conv2D {
			if got := n.Op.Inputs[0].Shape.Dim(0); got != 8 {
				t.Errorf("conv input batch = %d, want 8", got)
			}
		}
	}
}

func TestResidualForkEmitsAddN(t *testing.T) {
	b := NewBuilder("res", 2)
	x := b.Input(8, 8, 16)
	// Two consumers of the same tensor -> gradient join needs AddN.
	// conv(x) + x, both branches flow gradient back to relu output.
	trunk := b.ReLU(x)
	branch := b.ConvSq(trunk, 16, 3, 1, tensor.Same)
	sum := b.Add(branch, trunk)
	y := b.GlobalAvgPool(sum)
	y = b.Squeeze(y)
	y = b.Dense(y, 10)
	b.SoftmaxLoss(y)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	byType := g.CountByType()
	if byType[ops.AddN] == 0 {
		t.Error("residual fork should emit a gradient AddN")
	}
	if byType[ops.AddV2] == 0 {
		t.Error("residual sum should emit AddV2")
	}
}

func TestConcatEmitsSlices(t *testing.T) {
	b := NewBuilder("inc", 2)
	x := b.Input(16, 16, 8)
	x = b.ConvSq(x, 8, 3, 1, tensor.Same)
	a := b.ConvSq(x, 4, 1, 1, tensor.Same)
	c := b.ConvSq(x, 4, 3, 1, tensor.Same)
	j := b.Concat(a, c)
	y := b.GlobalAvgPool(j)
	y = b.Squeeze(y)
	y = b.Dense(y, 5)
	b.SoftmaxLoss(y)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	byType := g.CountByType()
	if byType[ops.ConcatV2] != 1 {
		t.Errorf("ConcatV2 count = %d", byType[ops.ConcatV2])
	}
	if byType[ops.Slice] < 2 {
		t.Errorf("Slice count = %d, want >= 2 (one per concat input)", byType[ops.Slice])
	}
	// Concat output channels.
	for _, n := range g.Nodes() {
		if n.Op.Type == ops.ConcatV2 {
			if got := n.Op.Output.Shape.Dim(3); got != 8 {
				t.Errorf("concat output channels = %d, want 8", got)
			}
		}
	}
}

func TestBatchNormStructure(t *testing.T) {
	b := NewBuilder("bn", 2)
	x := b.Input(8, 8, 3)
	x = b.ConvSq(x, 16, 3, 1, tensor.Same)
	x = b.BatchNorm(x)
	x = b.ReLU(x)
	x = b.GlobalAvgPool(x)
	x = b.Squeeze(x)
	x = b.Dense(x, 10)
	b.SoftmaxLoss(x)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	byType := g.CountByType()
	if byType[ops.FusedBatchNormV3] != 1 || byType[ops.FusedBatchNormGradV3] != 1 {
		t.Errorf("BN fwd/bwd = %d/%d", byType[ops.FusedBatchNormV3], byType[ops.FusedBatchNormGradV3])
	}
	// Updates: conv filter + bn scale + bn offset + dense W + dense b = 5.
	if byType[ops.ApplyMomentum] != 5 {
		t.Errorf("ApplyMomentum = %d, want 5", byType[ops.ApplyMomentum])
	}
	// Params: conv 3*3*3*16 + bn 2*16 + dense 16*10+10.
	want := int64(3*3*3*16 + 32 + 170)
	if g.Params != want {
		t.Errorf("Params = %d, want %d", g.Params, want)
	}
}

func TestAsymmetricConv(t *testing.T) {
	b := NewBuilder("asym", 2)
	x := b.Input(17, 17, 32)
	x = b.Conv(x, 64, 1, 7, 1, tensor.Same)
	x = b.Conv(x, 64, 7, 1, 1, tensor.Same)
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	if got := x.Spec().Shape; !got.Equal(tensor.NHWC(2, 17, 17, 64)) {
		t.Errorf("asymmetric conv output = %s", got)
	}
	// Params: 1*7*32*64 + 7*1*64*64.
	if want := int64(1*7*32*64 + 7*1*64*64); b.Params() != want {
		t.Errorf("Params = %d, want %d", b.Params(), want)
	}
}

func TestPadLayer(t *testing.T) {
	b := NewBuilder("pad", 2)
	x := b.Input(224, 224, 3)
	x = b.Pad(x, 3, 3)
	if got := x.Spec().Shape; !got.Equal(tensor.NHWC(2, 230, 230, 3)) {
		t.Errorf("Pad output = %s", got)
	}
	x = b.ConvSq(x, 64, 7, 2, tensor.Valid)
	if got := x.Spec().Shape; !got.Equal(tensor.NHWC(2, 112, 112, 64)) {
		t.Errorf("post-pad conv output = %s", got)
	}
}

func TestBuilderErrorPropagation(t *testing.T) {
	b := NewBuilder("bad", 2)
	x := b.Input(8, 8, 3)
	flat := b.Flatten(x)
	// Conv on rank-2 tensor must set the error and subsequent calls
	// must be no-ops.
	y := b.ConvSq(flat, 8, 3, 1, tensor.Same)
	if b.Err() == nil {
		t.Fatal("Conv on rank-2 input should set builder error")
	}
	_ = b.ReLU(y)
	if _, err := b.Finish(); err == nil {
		t.Error("Finish should surface the builder error")
	}
}

func TestFinishTwiceFails(t *testing.T) {
	g := NewBuilder("x", 1)
	in := g.Input(4, 4, 1)
	_ = in
	if _, err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Finish(); err == nil {
		t.Error("second Finish should fail")
	}
}

func TestAddShapeMismatch(t *testing.T) {
	b := NewBuilder("mismatch", 2)
	x := b.Input(8, 8, 3)
	a := b.ConvSq(x, 8, 3, 1, tensor.Same)
	c := b.ConvSq(x, 16, 3, 1, tensor.Same)
	b.Add(a, c)
	if b.Err() == nil {
		t.Error("Add with mismatched channels should fail")
	}
}

func TestConcatErrors(t *testing.T) {
	b := NewBuilder("c", 2)
	x := b.Input(8, 8, 3)
	a := b.ConvSq(x, 8, 3, 1, tensor.Same)
	if b.Concat(a); b.Err() == nil {
		t.Error("single-input concat should fail")
	}
	b2 := NewBuilder("c2", 2)
	x2 := b2.Input(8, 8, 3)
	a2 := b2.ConvSq(x2, 8, 3, 1, tensor.Same)
	d2 := b2.ConvSq(x2, 8, 3, 2, tensor.Same) // different spatial dims
	if b2.Concat(a2, d2); b2.Err() == nil {
		t.Error("spatially mismatched concat should fail")
	}
}

func TestDenseRequiresRank2(t *testing.T) {
	b := NewBuilder("d", 2)
	x := b.Input(8, 8, 3)
	b.Dense(x, 10)
	if b.Err() == nil {
		t.Error("Dense on rank-4 input should fail")
	}
}

func TestSoftmaxLossRequiresRank2(t *testing.T) {
	b := NewBuilder("s", 2)
	x := b.Input(8, 8, 3)
	b.SoftmaxLoss(x)
	if b.Err() == nil {
		t.Error("SoftmaxLoss on rank-4 input should fail")
	}
}

func TestGraphHasAllThreeClasses(t *testing.T) {
	g := buildTinyCNN(t, 4)
	byClass := g.CountByClass()
	if byClass[ops.HeavyGPU] == 0 || byClass[ops.LightGPU] == 0 || byClass[ops.CPU] == 0 {
		t.Errorf("training graph should contain all classes, got %v", byClass)
	}
}

func TestScaleResidual(t *testing.T) {
	b := NewBuilder("scale", 2)
	x := b.Input(8, 8, 16)
	r := b.ReLU(x)
	s := b.ScaleResidual(r)
	y := b.GlobalAvgPool(s)
	y = b.Squeeze(y)
	y = b.Dense(y, 4)
	b.SoftmaxLoss(y)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if g.CountByType()[ops.Mul] < 2 { // forward scale + loss grad + scale grad
		t.Errorf("Mul count = %d", g.CountByType()[ops.Mul])
	}
}

func TestAvgPoolGradStructure(t *testing.T) {
	b := NewBuilder("avg", 2)
	x := b.Input(8, 8, 4)
	x = b.ConvSq(x, 4, 3, 1, tensor.Same)
	x = b.AvgPool(x, 2, 2, tensor.Valid)
	y := b.Flatten(x)
	y = b.Dense(y, 3)
	b.SoftmaxLoss(y)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	byType := g.CountByType()
	if byType[ops.AvgPool] != 1 || byType[ops.AvgPoolGrad] != 1 {
		t.Errorf("AvgPool fwd/bwd = %d/%d", byType[ops.AvgPool], byType[ops.AvgPoolGrad])
	}
	// AvgPoolGrad reads only the upstream gradient.
	for _, n := range g.Nodes() {
		if n.Op.Type == ops.AvgPoolGrad && len(n.Op.Inputs) != 1 {
			t.Errorf("AvgPoolGrad inputs = %d, want 1", len(n.Op.Inputs))
		}
		if n.Op.Type == ops.MaxPoolGrad && len(n.Op.Inputs) != 3 {
			t.Errorf("MaxPoolGrad inputs = %d, want 3", len(n.Op.Inputs))
		}
	}
}

func TestDepthwiseConv(t *testing.T) {
	b := NewBuilder("dw", 4)
	x := b.Input(32, 32, 8)
	x = b.ConvSq(x, 16, 1, 1, tensor.Same) // give the depthwise layer a grad-carrying input
	convParams := b.Params()
	x = b.DepthwiseConv(x, 3, 1, tensor.Same)
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	if got := x.Spec().Shape; !got.Equal(tensor.NHWC(4, 32, 32, 16)) {
		t.Errorf("depthwise output = %s", got)
	}
	// Params: one 3x3 filter per channel.
	if b.Params()-convParams != 3*3*16 {
		t.Errorf("depthwise params = %d, want %d", b.Params()-convParams, 3*3*16)
	}
	y := b.GlobalAvgPool(x)
	y = b.Squeeze(y)
	y = b.Dense(y, 4)
	b.SoftmaxLoss(y)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Forward + dW + dX.
	if got := g.CountByType()[ops.DepthwiseConv2D]; got != 3 {
		t.Errorf("DepthwiseConv2D op count = %d, want 3", got)
	}
}

func TestDepthwiseConvStride2(t *testing.T) {
	b := NewBuilder("dw2", 2)
	x := b.Input(64, 64, 8)
	x = b.DepthwiseConv(x, 3, 2, tensor.Same)
	if got := x.Spec().Shape; !got.Equal(tensor.NHWC(2, 32, 32, 8)) {
		t.Errorf("stride-2 depthwise output = %s", got)
	}
	// Rank-2 input rejected.
	b2 := NewBuilder("bad", 2)
	x2 := b2.Input(8, 8, 3)
	f2 := b2.Flatten(x2)
	b2.DepthwiseConv(f2, 3, 1, tensor.Same)
	if b2.Err() == nil {
		t.Error("depthwise on rank-2 input should fail")
	}
}

// Property: for every activation layer, the backward sweep emits at
// least one gradient op per forward op and the graph stays valid.
func TestLayerBackwardStructureMatrix(t *testing.T) {
	type build func(b *Builder, x Tensor) Tensor
	cases := map[string]struct {
		fwd      build
		gradType ops.Type
	}{
		"relu":      {func(b *Builder, x Tensor) Tensor { return b.ReLU(x) }, ops.ReluGrad},
		"bn":        {func(b *Builder, x Tensor) Tensor { return b.BatchNorm(x) }, ops.FusedBatchNormGradV3},
		"maxpool":   {func(b *Builder, x Tensor) Tensor { return b.MaxPool(x, 2, 2, tensor.Valid) }, ops.MaxPoolGrad},
		"avgpool":   {func(b *Builder, x Tensor) Tensor { return b.AvgPool(x, 2, 2, tensor.Valid) }, ops.AvgPoolGrad},
		"conv":      {func(b *Builder, x Tensor) Tensor { return b.ConvSq(x, 8, 3, 1, tensor.Same) }, ops.Conv2DBackpropFilter},
		"bias":      {func(b *Builder, x Tensor) Tensor { return b.BiasAdd(x) }, ops.BiasAddGrad},
		"depthwise": {func(b *Builder, x Tensor) Tensor { return b.DepthwiseConv(x, 3, 1, tensor.Same) }, ops.DepthwiseConv2D},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			b := NewBuilder(name, 2)
			x := b.Input(16, 16, 8)
			x = b.ConvSq(x, 8, 3, 1, tensor.Same) // ensure gradient flows past the layer under test
			x = c.fwd(b, x)
			y := b.GlobalAvgPool(x)
			y = b.Squeeze(y)
			y = b.Dense(y, 4)
			b.SoftmaxLoss(y)
			g, err := b.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if g.CountByType()[c.gradType] == 0 {
				t.Errorf("%s: no %s gradient op emitted", name, c.gradType)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
