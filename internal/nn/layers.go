package nn

import (
	"fmt"

	"ceer/internal/graph"
	"ceer/internal/ops"
	"ceer/internal/tensor"
)

// Conv emits a 2-D convolution with a possibly asymmetric kernel
// (kh × kw), stride s, and the given padding, producing outC output
// channels. No bias or activation is applied; compose with BiasAdd,
// BatchNorm, or ReLU. Backward emits Conv2DBackpropFilter (plus its
// optimizer update) and, unless the input is a gradient stop,
// Conv2DBackpropInput.
func (b *Builder) Conv(x Tensor, outC, kh, kw, s int64, pad tensor.Padding) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	w := tensor.Window{KernelH: kh, KernelW: kw, StrideH: s, StrideW: s, Padding: pad}
	inShape := x.spec.Shape
	if inShape.Rank() != 4 {
		b.err = fmt.Errorf("nn: Conv requires NHWC input, got %s", inShape)
		return Tensor{}
	}
	outShape, err := w.OutputShape(inShape, outC)
	if err != nil {
		b.err = fmt.Errorf("nn: Conv: %w", err)
		return Tensor{}
	}
	filter := tensor.SpecOf(w.FilterShape(inShape.Dim(3), outC), tensor.Float32)
	b.addParams(filter.Elements())

	out := b.emit("Conv2D", &ops.Op{
		Type:   ops.Conv2D,
		Inputs: []tensor.Spec{x.spec, filter},
		Output: tensor.SpecOf(outShape, tensor.Float32),
		Window: &w,
	}, graph.ForwardPhase, x.node)

	b.onBackward(func() {
		dy, ok := b.gradOf(out.node, out.spec)
		if !ok {
			return
		}
		dW := b.emit("gradients/Conv2DBackpropFilter", &ops.Op{
			Type:   ops.Conv2DBackpropFilter,
			Inputs: []tensor.Spec{x.spec, dy.spec},
			Output: filter,
			Window: &w,
		}, graph.BackwardPhase, x.node, dy.node)
		b.update(dW)
		if !b.stopNodes[x.node] {
			dX := b.emit("gradients/Conv2DBackpropInput", &ops.Op{
				Type:   ops.Conv2DBackpropInput,
				Inputs: []tensor.Spec{filter, dy.spec},
				Output: x.spec,
				Window: &w,
			}, graph.BackwardPhase, dy.node)
			b.addGrad(x.node, dX)
		}
	})
	return out
}

// DepthwiseConv emits a depthwise 2-D convolution (one k×k filter per
// input channel, as in MobileNet), an operation type deliberately
// absent from the paper's 12 CNNs: predictions for graphs containing it
// exercise Ceer's unseen-heavy-operation path until the predictor is
// retrained (Section IV-D). Gradients are emitted as ops of the same
// type (the kernels share a cost profile).
func (b *Builder) DepthwiseConv(x Tensor, k, s int64, pad tensor.Padding) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	in := x.spec.Shape
	if in.Rank() != 4 {
		b.err = fmt.Errorf("nn: DepthwiseConv requires NHWC input, got %s", in)
		return Tensor{}
	}
	w := tensor.Win(k, s, pad)
	c := in.Dim(3)
	outShape, err := w.OutputShape(in, c)
	if err != nil {
		b.err = fmt.Errorf("nn: DepthwiseConv: %w", err)
		return Tensor{}
	}
	filter := tensor.SpecOf(tensor.NewShape(k, k, c, 1), tensor.Float32)
	b.addParams(filter.Elements())

	out := b.emit("DepthwiseConv2dNative", &ops.Op{
		Type:   ops.DepthwiseConv2D,
		Inputs: []tensor.Spec{x.spec, filter},
		Output: tensor.SpecOf(outShape, tensor.Float32),
		Window: &w,
	}, graph.ForwardPhase, x.node)

	b.onBackward(func() {
		dy, ok := b.gradOf(out.node, out.spec)
		if !ok {
			return
		}
		dW := b.emit("gradients/DepthwiseConv2dNative", &ops.Op{
			Type:   ops.DepthwiseConv2D,
			Inputs: []tensor.Spec{x.spec, dy.spec},
			Output: filter,
			Window: &w,
		}, graph.BackwardPhase, x.node, dy.node)
		b.update(dW)
		if !b.stopNodes[x.node] {
			dX := b.emit("gradients/DepthwiseConv2dNative", &ops.Op{
				Type:   ops.DepthwiseConv2D,
				Inputs: []tensor.Spec{filter, dy.spec},
				Output: x.spec,
				Window: &w,
			}, graph.BackwardPhase, dy.node)
			b.addGrad(x.node, dX)
		}
	})
	return out
}

// ConvSq is Conv with a square kernel.
func (b *Builder) ConvSq(x Tensor, outC, k, s int64, pad tensor.Padding) Tensor {
	return b.Conv(x, outC, k, k, s, pad)
}

// BiasAdd adds a per-channel bias to x. Backward emits BiasAddGrad plus
// its optimizer update; the incoming gradient flows through unchanged.
func (b *Builder) BiasAdd(x Tensor) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	c := x.spec.Shape.Dim(-1)
	bias := tensor.F32(c)
	b.addParams(c)
	out := b.emit("BiasAdd", &ops.Op{
		Type:   ops.BiasAdd,
		Inputs: []tensor.Spec{x.spec, bias},
		Output: x.spec,
	}, graph.ForwardPhase, x.node)

	b.onBackward(func() {
		dy, ok := b.gradOf(out.node, out.spec)
		if !ok {
			return
		}
		dB := b.emit("gradients/BiasAddGrad", &ops.Op{
			Type:   ops.BiasAddGrad,
			Inputs: []tensor.Spec{dy.spec},
			Output: bias,
		}, graph.BackwardPhase, dy.node)
		b.update(dB)
		b.addGrad(x.node, dy)
	})
	return out
}

// BatchNorm applies fused batch normalization with trainable scale and
// offset (2·C parameters). Backward emits FusedBatchNormGradV3 plus two
// optimizer updates.
func (b *Builder) BatchNorm(x Tensor) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	c := x.spec.Shape.Dim(-1)
	perC := tensor.F32(c)
	b.addParams(c) // scale
	b.addParams(c) // offset
	out := b.emit("FusedBatchNormV3", &ops.Op{
		Type:   ops.FusedBatchNormV3,
		Inputs: []tensor.Spec{x.spec, perC, perC},
		Output: x.spec,
	}, graph.ForwardPhase, x.node)

	b.onBackward(func() {
		dy, ok := b.gradOf(out.node, out.spec)
		if !ok {
			return
		}
		dX := b.emit("gradients/FusedBatchNormGradV3", &ops.Op{
			Type:   ops.FusedBatchNormGradV3,
			Inputs: []tensor.Spec{dy.spec, x.spec, perC},
			Output: x.spec,
		}, graph.BackwardPhase, dy.node, x.node)
		// Scale and offset gradients are additional outputs of the fused
		// kernel (already reduced to [C]); the graph materializes them as
		// cheap per-channel handoffs feeding the optimizer updates.
		dScale := b.emit("gradients/BNScaleGrad", &ops.Op{
			Type:   ops.Sum,
			Inputs: []tensor.Spec{perC},
			Output: perC,
		}, graph.BackwardPhase, dX.node)
		b.update(dScale)
		dOffset := b.emit("gradients/BNOffsetGrad", &ops.Op{
			Type:   ops.Sum,
			Inputs: []tensor.Spec{perC},
			Output: perC,
		}, graph.BackwardPhase, dX.node)
		b.update(dOffset)
		b.addGrad(x.node, dX)
	})
	return out
}

// ReLU applies the rectified linear activation. Backward emits ReluGrad.
func (b *Builder) ReLU(x Tensor) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	out := b.emit("Relu", &ops.Op{
		Type:   ops.Relu,
		Inputs: []tensor.Spec{x.spec},
		Output: x.spec,
	}, graph.ForwardPhase, x.node)

	b.onBackward(func() {
		dy, ok := b.gradOf(out.node, out.spec)
		if !ok {
			return
		}
		dX := b.emit("gradients/ReluGrad", &ops.Op{
			Type:   ops.ReluGrad,
			Inputs: []tensor.Spec{dy.spec, out.spec},
			Output: x.spec,
		}, graph.BackwardPhase, dy.node, out.node)
		b.addGrad(x.node, dX)
	})
	return out
}

// pool emits a pooling op and its gradient.
func (b *Builder) pool(x Tensor, t ops.Type, gradT ops.Type, k, s int64, pad tensor.Padding) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	w := tensor.Win(k, s, pad)
	outShape, err := w.OutputShape(x.spec.Shape, x.spec.Shape.Dim(3))
	if err != nil {
		b.err = fmt.Errorf("nn: %s: %w", t, err)
		return Tensor{}
	}
	out := b.emit(string(t), &ops.Op{
		Type:   t,
		Inputs: []tensor.Spec{x.spec},
		Output: tensor.SpecOf(outShape, tensor.Float32),
		Window: &w,
	}, graph.ForwardPhase, x.node)

	b.onBackward(func() {
		dy, ok := b.gradOf(out.node, out.spec)
		if !ok {
			return
		}
		var inputs []tensor.Spec
		var deps []graph.NodeID
		if gradT == ops.MaxPoolGrad {
			// MaxPoolGrad re-reads the forward input and output to locate
			// the argmax positions.
			inputs = []tensor.Spec{x.spec, out.spec, dy.spec}
			deps = []graph.NodeID{x.node, out.node, dy.node}
		} else {
			inputs = []tensor.Spec{dy.spec}
			deps = []graph.NodeID{dy.node}
		}
		dX := b.emit("gradients/"+string(gradT), &ops.Op{
			Type:   gradT,
			Inputs: inputs,
			Output: x.spec,
			Window: &w,
		}, graph.BackwardPhase, deps...)
		b.addGrad(x.node, dX)
	})
	return out
}

// MaxPool applies k×k max pooling with stride s.
func (b *Builder) MaxPool(x Tensor, k, s int64, pad tensor.Padding) Tensor {
	return b.pool(x, ops.MaxPool, ops.MaxPoolGrad, k, s, pad)
}

// AvgPool applies k×k average pooling with stride s.
func (b *Builder) AvgPool(x Tensor, k, s int64, pad tensor.Padding) Tensor {
	return b.pool(x, ops.AvgPool, ops.AvgPoolGrad, k, s, pad)
}

// GlobalAvgPool reduces the spatial dimensions to 1×1 by mean reduction
// (TensorFlow's reduce_mean, a light op), as used by ResNet-v2 heads.
// Backward broadcasts the gradient with Tile and RealDiv (light ops).
func (b *Builder) GlobalAvgPool(x Tensor) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	in := x.spec.Shape
	outSpec := tensor.SpecOf(tensor.NHWC(in.Dim(0), 1, 1, in.Dim(3)), tensor.Float32)
	out := b.emit("Mean", &ops.Op{
		Type:   ops.Mean,
		Inputs: []tensor.Spec{x.spec},
		Output: outSpec,
	}, graph.ForwardPhase, x.node)

	b.onBackward(func() {
		dy, ok := b.gradOf(out.node, out.spec)
		if !ok {
			return
		}
		scaled := b.emit("gradients/RealDiv", &ops.Op{
			Type:   ops.RealDiv,
			Inputs: []tensor.Spec{dy.spec, tensor.F32(1)},
			Output: dy.spec,
		}, graph.BackwardPhase, dy.node)
		dX := b.emit("gradients/Tile", &ops.Op{
			Type:   ops.Tile,
			Inputs: []tensor.Spec{scaled.spec},
			Output: x.spec,
		}, graph.BackwardPhase, scaled.node)
		b.addGrad(x.node, dX)
	})
	return out
}

// Flatten reshapes an NHWC tensor to [batch, features] (a light op with
// a pass-through gradient).
func (b *Builder) Flatten(x Tensor) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	in := x.spec.Shape
	outSpec := tensor.F32(in.Dim(0), in.Elements()/in.Dim(0))
	out := b.emit("Reshape", &ops.Op{
		Type:   ops.Reshape,
		Inputs: []tensor.Spec{x.spec},
		Output: outSpec,
	}, graph.ForwardPhase, x.node)

	b.onBackward(func() {
		dy, ok := b.gradOf(out.node, out.spec)
		if !ok {
			return
		}
		dX := b.emit("gradients/Reshape", &ops.Op{
			Type:   ops.Reshape,
			Inputs: []tensor.Spec{dy.spec},
			Output: x.spec,
		}, graph.BackwardPhase, dy.node)
		b.addGrad(x.node, dX)
	})
	return out
}

// Squeeze drops the unit spatial dimensions of a [batch,1,1,C] tensor,
// producing [batch, C].
func (b *Builder) Squeeze(x Tensor) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	in := x.spec.Shape
	outSpec := tensor.F32(in.Dim(0), in.Dim(3))
	out := b.emit("Squeeze", &ops.Op{
		Type:   ops.Squeeze,
		Inputs: []tensor.Spec{x.spec},
		Output: outSpec,
	}, graph.ForwardPhase, x.node)
	b.onBackward(func() {
		dy, ok := b.gradOf(out.node, out.spec)
		if !ok {
			return
		}
		dX := b.emit("gradients/Reshape", &ops.Op{
			Type:   ops.Reshape,
			Inputs: []tensor.Spec{dy.spec},
			Output: x.spec,
		}, graph.BackwardPhase, dy.node)
		b.addGrad(x.node, dX)
	})
	return out
}

// Dense applies a fully connected layer: MatMul by a [in, units] weight
// plus a bias. Backward emits two MatMuls (dW, dX) and BiasAddGrad.
func (b *Builder) Dense(x Tensor, units int64) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	in := x.spec.Shape
	if in.Rank() != 2 {
		b.err = fmt.Errorf("nn: Dense requires rank-2 input, got %s", in)
		return Tensor{}
	}
	w := tensor.F32(in.Dim(1), units)
	bias := tensor.F32(units)
	b.addParams(w.Elements())
	b.addParams(units)

	mm := b.emit("MatMul", &ops.Op{
		Type:   ops.MatMul,
		Inputs: []tensor.Spec{x.spec, w},
		Output: tensor.F32(in.Dim(0), units),
	}, graph.ForwardPhase, x.node)
	out := b.emit("BiasAdd", &ops.Op{
		Type:   ops.BiasAdd,
		Inputs: []tensor.Spec{mm.spec, bias},
		Output: mm.spec,
	}, graph.ForwardPhase, mm.node)

	b.onBackward(func() {
		dy, ok := b.gradOf(out.node, out.spec)
		if !ok {
			return
		}
		dB := b.emit("gradients/BiasAddGrad", &ops.Op{
			Type:   ops.BiasAddGrad,
			Inputs: []tensor.Spec{dy.spec},
			Output: bias,
		}, graph.BackwardPhase, dy.node)
		b.update(dB)
		// dW = xᵀ · dy: the activation transpose materializes as an
		// explicit (heavy) Transpose op, as in TF training timelines.
		xT := b.emit("gradients/Transpose", &ops.Op{
			Type:   ops.Transpose,
			Inputs: []tensor.Spec{x.spec},
			Output: tensor.F32(in.Dim(1), in.Dim(0)),
		}, graph.BackwardPhase, x.node)
		dW := b.emit("gradients/MatMul", &ops.Op{
			Type:   ops.MatMul,
			Inputs: []tensor.Spec{xT.spec, dy.spec},
			Output: w,
		}, graph.BackwardPhase, xT.node, dy.node)
		b.update(dW)
		// dX = dy · wᵀ
		if !b.stopNodes[x.node] {
			dX := b.emit("gradients/MatMul", &ops.Op{
				Type:   ops.MatMul,
				Inputs: []tensor.Spec{dy.spec, tensor.F32(units, in.Dim(1))},
				Output: x.spec,
			}, graph.BackwardPhase, dy.node)
			b.addGrad(x.node, dX)
		}
	})
	return out
}

// Add emits the element-wise sum of two same-shape tensors (a residual
// connection). Backward routes the gradient to both inputs.
func (b *Builder) Add(x, y Tensor) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	if !x.spec.Shape.Equal(y.spec.Shape) {
		b.err = fmt.Errorf("nn: Add shape mismatch: %s vs %s", x.spec.Shape, y.spec.Shape)
		return Tensor{}
	}
	out := b.emit("AddV2", &ops.Op{
		Type:   ops.AddV2,
		Inputs: []tensor.Spec{x.spec, y.spec},
		Output: x.spec,
	}, graph.ForwardPhase, x.node, y.node)

	b.onBackward(func() {
		dy, ok := b.gradOf(out.node, out.spec)
		if !ok {
			return
		}
		b.addGrad(x.node, dy)
		b.addGrad(y.node, dy)
	})
	return out
}

// Concat concatenates tensors along the channel axis (inception
// modules). Backward emits one Slice per input.
func (b *Builder) Concat(xs ...Tensor) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	if len(xs) < 2 {
		b.err = fmt.Errorf("nn: Concat needs at least 2 inputs, got %d", len(xs))
		return Tensor{}
	}
	base := xs[0].spec.Shape
	totalC := int64(0)
	inputs := make([]tensor.Spec, len(xs))
	deps := make([]graph.NodeID, len(xs))
	for i, x := range xs {
		s := x.spec.Shape
		if s.Rank() != 4 || s.Dim(0) != base.Dim(0) || s.Dim(1) != base.Dim(1) || s.Dim(2) != base.Dim(2) {
			b.err = fmt.Errorf("nn: Concat input %d shape %s incompatible with %s", i, s, base)
			return Tensor{}
		}
		totalC += s.Dim(3)
		inputs[i] = x.spec
		deps[i] = x.node
	}
	outSpec := tensor.SpecOf(tensor.NHWC(base.Dim(0), base.Dim(1), base.Dim(2), totalC), tensor.Float32)
	out := b.emit("ConcatV2", &ops.Op{
		Type:   ops.ConcatV2,
		Inputs: inputs,
		Output: outSpec,
	}, graph.ForwardPhase, deps...)

	b.onBackward(func() {
		dy, ok := b.gradOf(out.node, out.spec)
		if !ok {
			return
		}
		for _, x := range xs {
			dX := b.emit("gradients/Slice", &ops.Op{
				Type:   ops.Slice,
				Inputs: []tensor.Spec{dy.spec},
				Output: x.spec,
			}, graph.BackwardPhase, dy.node)
			b.addGrad(x.node, dX)
		}
	})
	return out
}

// Pad spatially zero-pads an NHWC tensor by padH rows on the top and
// bottom and padW columns on the left and right (a light op), as used by
// ResNet stems with explicit padding. Backward slices the gradient.
func (b *Builder) Pad(x Tensor, padH, padW int64) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	in := x.spec.Shape
	outSpec := tensor.SpecOf(tensor.NHWC(in.Dim(0), in.Dim(1)+2*padH, in.Dim(2)+2*padW, in.Dim(3)), tensor.Float32)
	out := b.emit("Pad", &ops.Op{
		Type:   ops.Pad,
		Inputs: []tensor.Spec{x.spec},
		Output: outSpec,
	}, graph.ForwardPhase, x.node)
	b.onBackward(func() {
		dy, ok := b.gradOf(out.node, out.spec)
		if !ok {
			return
		}
		dX := b.emit("gradients/Slice", &ops.Op{
			Type:   ops.Slice,
			Inputs: []tensor.Spec{dy.spec},
			Output: x.spec,
		}, graph.BackwardPhase, dy.node)
		b.addGrad(x.node, dX)
	})
	return out
}

// ScaleResidual multiplies a tensor by a scalar (Inception-ResNet's
// residual scaling, a heavy Mul over the activation tensor).
func (b *Builder) ScaleResidual(x Tensor) Tensor {
	if b.err != nil {
		return Tensor{}
	}
	out := b.emit("Mul", &ops.Op{
		Type:   ops.Mul,
		Inputs: []tensor.Spec{x.spec, tensor.F32(1)},
		Output: x.spec,
	}, graph.ForwardPhase, x.node)
	b.onBackward(func() {
		dy, ok := b.gradOf(out.node, out.spec)
		if !ok {
			return
		}
		dX := b.emit("gradients/Mul", &ops.Op{
			Type:   ops.Mul,
			Inputs: []tensor.Spec{dy.spec, tensor.F32(1)},
			Output: x.spec,
		}, graph.BackwardPhase, dy.node)
		b.addGrad(x.node, dX)
	})
	return out
}

// SoftmaxLoss terminates the network: it emits the label pipeline (CPU
// ops), the fused softmax cross-entropy (heavy), the loss-gradient
// scaling (Mul), and the evaluation metric ops (CPU). It seeds the
// backward sweep with the logits gradient. Call Finish afterwards.
func (b *Builder) SoftmaxLoss(logits Tensor) {
	if b.err != nil {
		return
	}
	shape := logits.spec.Shape
	if shape.Rank() != 2 {
		b.err = fmt.Errorf("nn: SoftmaxLoss requires rank-2 logits, got %s", shape)
		return
	}
	batch, classes := shape.Dim(0), shape.Dim(1)

	labels := b.emit("labels/IteratorGetNext", &ops.Op{
		Type:   ops.IteratorGetNext,
		Output: tensor.SpecOf(tensor.Vector(batch), tensor.Int64),
	}, graph.InputPhase)
	oneHot := b.emit("labels/OneHot", &ops.Op{
		Type:   ops.OneHot,
		Inputs: []tensor.Spec{labels.spec},
		Output: tensor.F32(batch, classes),
	}, graph.InputPhase, labels.node)
	sparse := b.emit("labels/SparseToDense", &ops.Op{
		Type:   ops.SparseToDense,
		Inputs: []tensor.Spec{labels.spec},
		Output: tensor.F32(batch, classes),
	}, graph.InputPhase, labels.node)

	xent := b.emit("SoftmaxCrossEntropyWithLogits", &ops.Op{
		Type:   ops.SoftmaxXent,
		Inputs: []tensor.Spec{logits.spec, oneHot.spec},
		Output: tensor.F32(batch),
	}, graph.ForwardPhase, logits.node, oneHot.node, sparse.node)
	loss := b.emit("Mean", &ops.Op{
		Type:   ops.Mean,
		Inputs: []tensor.Spec{xent.spec},
		Output: tensor.F32(1),
	}, graph.ForwardPhase, xent.node)

	// Evaluation metrics (CPU-resident).
	pred := b.emit("metrics/ArgMax", &ops.Op{
		Type:   ops.ArgMax,
		Inputs: []tensor.Spec{logits.spec},
		Output: tensor.SpecOf(tensor.Vector(batch), tensor.Int64),
	}, graph.ForwardPhase, logits.node)
	eq := b.emit("metrics/Equal", &ops.Op{
		Type:   ops.Equal,
		Inputs: []tensor.Spec{pred.spec, labels.spec},
		Output: tensor.SpecOf(tensor.Vector(batch), tensor.Bool),
	}, graph.ForwardPhase, pred.node, labels.node)
	acc := b.emit("metrics/Mean", &ops.Op{
		Type:   ops.Prod,
		Inputs: []tensor.Spec{eq.spec},
		Output: tensor.F32(1),
	}, graph.ForwardPhase, eq.node)

	// Host-side bookkeeping each iteration: step counters, learning-rate
	// schedule, and summary assembly (CPU ops in real TF graphs).
	rg := b.emit("summaries/Range", &ops.Op{
		Type:   ops.Range,
		Output: tensor.SpecOf(tensor.Vector(batch), tensor.Int32),
	}, graph.ForwardPhase, acc.node)
	ed := b.emit("summaries/ExpandDims", &ops.Op{
		Type:   ops.ExpandDims,
		Inputs: []tensor.Spec{rg.spec},
		Output: tensor.SpecOf(tensor.NewShape(batch, 1), tensor.Int32),
	}, graph.ForwardPhase, rg.node)
	b.emit("summaries/Pack", &ops.Op{
		Type:   ops.Pack,
		Inputs: []tensor.Spec{ed.spec, loss.spec},
		Output: tensor.F32(2),
	}, graph.ForwardPhase, ed.node, loss.node)

	// Seed the gradient: d(logits) from the fused xent kernel, scaled by
	// 1/batch (emitted as a Mul over the logits-shaped gradient).
	b.onBackward(func() {
		fill := b.emit("gradients/Fill", &ops.Op{
			Type:   ops.Fill,
			Output: tensor.F32(1),
		}, graph.BackwardPhase, loss.node)
		dLogits := b.emit("gradients/Mul", &ops.Op{
			Type:   ops.Mul,
			Inputs: []tensor.Spec{logits.spec, fill.spec},
			Output: logits.spec,
		}, graph.BackwardPhase, xent.node, fill.node)
		b.addGrad(logits.node, dLogits)
	})
}
