// Package regress implements the regression machinery of Ceer: ordinary
// least squares over multi-dimensional features, quadratic (degree-2
// polynomial) feature expansion, goodness-of-fit metrics, and the
// linear-vs-quadratic model selection the paper applies per operation
// type (Section IV-B).
//
// The solver works on the normal equations XᵀX β = Xᵀy with partial-pivot
// Gaussian elimination and a small ridge fallback for ill-conditioned
// designs, which is ample for the handful of features (input sizes) each
// operation model uses.
package regress

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the design matrix is too ill-conditioned
// to solve, even with the ridge fallback.
var ErrSingular = errors.New("regress: singular design matrix")

// Model is a fitted polynomial regression model. Predictions are
// β₀ + Σ βᵢ·φᵢ(x) where φ is the feature expansion of the given degree.
type Model struct {
	// Degree is 1 for a linear model or 2 for a quadratic model (degree-2
	// polynomial expansion including cross terms).
	Degree int
	// NumFeatures is the dimensionality of the raw feature vectors the
	// model was trained on.
	NumFeatures int
	// Coef holds the intercept at Coef[0] followed by one coefficient per
	// expanded feature.
	Coef []float64
	// R2 is the coefficient of determination on the training sample.
	R2 float64
	// N is the number of training observations.
	N int
	// scale holds per-raw-feature normalization divisors applied before
	// expansion, so that features of wildly different magnitudes (bytes
	// vs. FLOPs) condition the normal equations well.
	scale []float64
}

// Expand maps a raw feature vector to its polynomial expansion (without
// the intercept term). Degree 1 returns the features unchanged; degree 2
// appends all squares and pairwise products.
func Expand(x []float64, degree int) []float64 {
	if degree <= 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	out := make([]float64, 0, len(x)+len(x)*(len(x)+1)/2)
	out = append(out, x...)
	for i := 0; i < len(x); i++ {
		for j := i; j < len(x); j++ {
			out = append(out, x[i]*x[j])
		}
	}
	return out
}

// Fit trains a polynomial model of the given degree on the observations
// (xs[i], ys[i]). All feature vectors must share one length; at least
// len(expanded)+1 observations are required. Fit is a thin wrapper over
// the SuffStats accumulator (see FitStats).
func Fit(xs [][]float64, ys []float64, degree int) (*Model, error) {
	m, _, err := FitStats(xs, ys, degree)
	return m, err
}

// FitStats trains like Fit and additionally returns the sufficient
// statistics the fit accumulated, so callers that keep calibrating the
// model with live observations (rank-1 Add updates followed by Solve)
// continue from the exact training-time state instead of restarting
// from scratch.
func FitStats(xs [][]float64, ys []float64, degree int) (*Model, *SuffStats, error) {
	if len(xs) != len(ys) {
		return nil, nil, fmt.Errorf("regress: %d feature rows but %d targets", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil, nil, errors.New("regress: empty training set")
	}
	nf := len(xs[0])
	if nf == 0 {
		return nil, nil, errors.New("regress: zero-length feature vectors")
	}
	for i, x := range xs {
		if len(x) != nf {
			return nil, nil, fmt.Errorf("regress: row %d has %d features, want %d", i, len(x), nf)
		}
	}
	if degree != 1 && degree != 2 {
		return nil, nil, fmt.Errorf("regress: unsupported degree %d", degree)
	}

	// Normalize each raw feature by its maximum absolute value so the
	// normal equations stay well-conditioned for byte-scale features.
	scale := make([]float64, nf)
	for j := 0; j < nf; j++ {
		maxAbs := 0.0
		for _, x := range xs {
			if a := math.Abs(x[j]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			maxAbs = 1
		}
		scale[j] = maxAbs
	}

	s, err := NewSuffStats(nf, degree, scale)
	if err != nil {
		return nil, nil, err
	}
	if len(xs) < s.p {
		return nil, nil, fmt.Errorf("regress: %d observations insufficient for %d parameters", len(xs), s.p)
	}
	for i, x := range xs {
		s.Add(x, ys[i])
	}

	m, err := s.Solve()
	if err != nil {
		return nil, nil, err
	}
	// Solve computes R² in moment form; on the batch path the training
	// rows are in hand, so recompute it from the residuals directly —
	// the historical definition, preserved bit for bit.
	m.R2 = rSquared(ys, m.predictAll(xs))
	return m, s, nil
}

// solve performs Gaussian elimination with partial pivoting on a copy-free
// (destructive) system.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		maxAbs := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a[r][col]); abs > maxAbs {
				maxAbs = abs
				pivot = r
			}
		}
		if maxAbs < 1e-14 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// Predict evaluates the model at the raw feature vector x. It panics if
// x has the wrong length; models are always applied to features produced
// by the same extractor that produced the training rows.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != m.NumFeatures {
		panic(fmt.Sprintf("regress: predict with %d features on a %d-feature model", len(x), m.NumFeatures))
	}
	scaled := make([]float64, len(x))
	for j := range x {
		scaled[j] = x[j] / m.scale[j]
	}
	ex := Expand(scaled, m.Degree)
	y := m.Coef[0]
	for i, v := range ex {
		y += m.Coef[i+1] * v
	}
	return y
}

// PredictScalar evaluates a single-raw-feature model at x without
// allocating (Predict builds scaled and expanded slices per call; the
// serving path calls the communication model on every prediction). It
// mirrors Predict's arithmetic exactly — same scaling, same term order —
// so results are bit-identical. It panics on multi-feature models.
func (m *Model) PredictScalar(x float64) float64 {
	if m.NumFeatures != 1 {
		panic(fmt.Sprintf("regress: PredictScalar on a %d-feature model", m.NumFeatures))
	}
	s := x / m.scale[0]
	y := m.Coef[0]
	y += m.Coef[1] * s
	if m.Degree >= 2 {
		y += m.Coef[2] * (s * s)
	}
	return y
}

func (m *Model) predictAll(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = m.Predict(x)
	}
	return out
}

// rSquared computes the coefficient of determination.
func rSquared(actual, predicted []float64) float64 {
	if len(actual) == 0 {
		return 0
	}
	mean := 0.0
	for _, y := range actual {
		mean += y
	}
	mean /= float64(len(actual))
	ssTot, ssRes := 0.0, 0.0
	for i := range actual {
		dt := actual[i] - mean
		dr := actual[i] - predicted[i]
		ssTot += dt * dt
		ssRes += dr * dr
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// RSquared evaluates the model's coefficient of determination on an
// arbitrary (e.g. held-out) sample.
func (m *Model) RSquared(xs [][]float64, ys []float64) float64 {
	return rSquared(ys, m.predictAll(xs))
}

// MAPE evaluates the mean absolute percentage error (as a fraction) of
// the model on a sample, skipping zero targets.
func (m *Model) MAPE(xs [][]float64, ys []float64) float64 {
	sum, n := 0.0, 0
	for i, x := range xs {
		if ys[i] == 0 {
			continue
		}
		sum += math.Abs(m.Predict(x)-ys[i]) / math.Abs(ys[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Selection records the outcome of linear-vs-quadratic model selection
// for one operation type.
type Selection struct {
	Chosen    *Model
	Linear    *Model
	Quadratic *Model // nil when the sample is too small to fit degree 2
}

// SelectDegree fits both a linear and (sample size permitting) a
// quadratic model and returns the one with the better training R², with
// a small preference margin for the simpler linear model. This mirrors
// the paper's finding that linear regression suffices for most heavy
// operations while a few (e.g. Conv2DBackpropFilter) need a quadratic
// fit.
func SelectDegree(xs [][]float64, ys []float64) (*Selection, error) {
	lin, err := Fit(xs, ys, 1)
	if err != nil {
		return nil, err
	}
	sel := &Selection{Chosen: lin, Linear: lin}
	quad, err := Fit(xs, ys, 2)
	if err != nil {
		// Not enough samples (or singular): keep linear.
		return sel, nil
	}
	sel.Quadratic = quad
	// Require a meaningful improvement before paying for the extra terms.
	const margin = 0.01
	if quad.R2 > lin.R2+margin {
		sel.Chosen = quad
	}
	return sel, nil
}
