package regress

import (
	"math"
	"testing"
	"testing/quick"

	"ceer/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestExpandLinear(t *testing.T) {
	x := []float64{2, 3}
	got := Expand(x, 1)
	if len(got) != 2 || !eqExact(got[0], 2) || !eqExact(got[1], 3) {
		t.Errorf("Expand degree 1 = %v", got)
	}
	// Must be a copy.
	got[0] = 99
	if !eqExact(x[0], 2) {
		t.Error("Expand shares memory with input")
	}
}

func TestExpandQuadratic(t *testing.T) {
	got := Expand([]float64{2, 3}, 2)
	want := []float64{2, 3, 4, 6, 9} // x1, x2, x1², x1x2, x2²
	if len(got) != len(want) {
		t.Fatalf("Expand degree 2 len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !eqExact(got[i], want[i]) {
			t.Errorf("Expand[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFitExactLine(t *testing.T) {
	// y = 3 + 2x, noiseless.
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{5, 7, 9, 11}
	m, err := Fit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", m.R2)
	}
	if got := m.Predict([]float64{10}); !approx(got, 23, 1e-6) {
		t.Errorf("Predict(10) = %v, want 23", got)
	}
}

func TestFitMultiFeature(t *testing.T) {
	// y = 1 + 2a + 3b.
	xs := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}, {3, 5}}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 + 2*x[0] + 3*x[1]
	}
	m, err := Fit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{4, 2}); !approx(got, 15, 1e-6) {
		t.Errorf("Predict = %v, want 15", got)
	}
}

func TestFitQuadratic(t *testing.T) {
	// y = 2 + x².
	var xs [][]float64
	var ys []float64
	for i := 1; i <= 10; i++ {
		x := float64(i)
		xs = append(xs, []float64{x})
		ys = append(ys, 2+x*x)
	}
	m, err := Fit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.R2, 1, 1e-9) {
		t.Errorf("quadratic R2 = %v, want 1", m.R2)
	}
	if got := m.Predict([]float64{12}); !approx(got, 146, 1e-4) {
		t.Errorf("Predict(12) = %v, want 146", got)
	}
}

func TestFitLargeScaleFeatures(t *testing.T) {
	// Byte-scale features (1e8) must not wreck conditioning.
	var xs [][]float64
	var ys []float64
	for i := 1; i <= 20; i++ {
		x := float64(i) * 1e8
		xs = append(xs, []float64{x})
		ys = append(ys, 0.5+3e-9*x)
	}
	m, err := Fit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.R2, 1, 1e-6) {
		t.Errorf("R2 = %v with large-scale features", m.R2)
	}
	if got := m.Predict([]float64{25e8}); !approx(got, 0.5+3e-9*25e8, 1e-4) {
		t.Errorf("Predict = %v", got)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, 1); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Fit([][]float64{{}}, []float64{1}, 1); err == nil {
		t.Error("zero-length features should error")
	}
	if _, err := Fit([][]float64{{1}, {2, 3}}, []float64{1, 2}, 1); err == nil {
		t.Error("ragged rows should error")
	}
	if _, err := Fit([][]float64{{1}, {2}, {3}}, []float64{1, 2, 3}, 3); err == nil {
		t.Error("unsupported degree should error")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1}, 1); err == nil {
		t.Error("too few observations should error")
	}
}

func TestFitConstantFeature(t *testing.T) {
	// A feature with zero variance makes XᵀX singular; ridge fallback (or
	// a graceful error) must avoid a bogus result. Here both feature
	// columns are collinear.
	xs := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	ys := []float64{3, 5, 7, 9}
	m, err := Fit(xs, ys, 1)
	if err != nil {
		// A clean error is acceptable.
		return
	}
	// If it fit, predictions on the training manifold must be right.
	if got := m.Predict([]float64{2.5, 5}); !approx(got, 6, 1e-3) {
		t.Errorf("collinear fit Predict = %v, want 6", got)
	}
}

func TestPredictPanicsOnWrongArity(t *testing.T) {
	m, err := Fit([][]float64{{1}, {2}, {3}}, []float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Predict with wrong feature count should panic")
		}
	}()
	m.Predict([]float64{1, 2})
}

func TestRSquaredHeldOut(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{2, 4, 6, 8}
	m, err := Fit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2 := m.RSquared([][]float64{{5}, {6}}, []float64{10, 12})
	if !approx(r2, 1, 1e-9) {
		t.Errorf("held-out R2 = %v", r2)
	}
}

func TestModelMAPE(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{2, 4, 6, 8}
	m, err := Fit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MAPE(xs, ys); got > 1e-9 {
		t.Errorf("training MAPE = %v, want ~0", got)
	}
	if got := m.MAPE([][]float64{{1}}, []float64{0}); got != 0 {
		t.Errorf("MAPE with zero target = %v, want 0 (skipped)", got)
	}
}

func TestSelectDegreePrefersLinearOnLinearData(t *testing.T) {
	src := rng.New(1)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := src.Float64() * 100
		xs = append(xs, []float64{x})
		ys = append(ys, 5+2*x+src.Normal()*0.5)
	}
	sel, err := SelectDegree(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Chosen.Degree != 1 {
		t.Errorf("chose degree %d on linear data", sel.Chosen.Degree)
	}
	if sel.Quadratic == nil {
		t.Error("quadratic candidate should have been fit")
	}
}

func TestSelectDegreePicksQuadraticOnQuadraticData(t *testing.T) {
	src := rng.New(2)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := src.Float64() * 10
		xs = append(xs, []float64{x})
		ys = append(ys, 1+0.1*x+3*x*x+src.Normal()*0.5)
	}
	sel, err := SelectDegree(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Chosen.Degree != 2 {
		t.Errorf("chose degree %d on quadratic data (lin R2=%v quad R2=%v)",
			sel.Chosen.Degree, sel.Linear.R2, sel.Quadratic.R2)
	}
}

func TestSelectDegreeSmallSampleFallsBack(t *testing.T) {
	// 2 points: linear fits, quadratic can't.
	sel, err := SelectDegree([][]float64{{1}, {2}}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Chosen.Degree != 1 || sel.Quadratic != nil {
		t.Error("small sample should fall back to linear")
	}
}

// Property: Fit recovers a planted linear model to high precision from
// noiseless data.
func TestFitRecoversPlantedModelProperty(t *testing.T) {
	f := func(seed uint64, aRaw, bRaw, cRaw int8) bool {
		a := float64(aRaw)
		b := float64(bRaw)
		c := float64(cRaw)
		src := rng.New(seed)
		var xs [][]float64
		var ys []float64
		for i := 0; i < 30; i++ {
			x1 := src.Float64()*50 + 1
			x2 := src.Float64()*20 + 1
			xs = append(xs, []float64{x1, x2})
			ys = append(ys, a+b*x1+c*x2)
		}
		m, err := Fit(xs, ys, 1)
		if err != nil {
			return false
		}
		probe := []float64{13, 7}
		want := a + b*13 + c*7
		got := m.Predict(probe)
		return math.Abs(got-want) <= 1e-5*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: R² on the training data never exceeds 1 and, for the chosen
// degree-2 model on degree-2 data, is at least the linear model's R².
func TestQuadraticAtLeastLinearProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		var xs [][]float64
		var ys []float64
		for i := 0; i < 40; i++ {
			x := src.Float64() * 10
			xs = append(xs, []float64{x})
			ys = append(ys, 2+x+0.5*x*x+src.Normal())
		}
		lin, err1 := Fit(xs, ys, 1)
		quad, err2 := Fit(xs, ys, 2)
		if err1 != nil || err2 != nil {
			return false
		}
		return quad.R2 >= lin.R2-1e-9 && quad.R2 <= 1+1e-9 && lin.R2 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// eqExact reports a == b. Exact float equality is the contract under
// test here: Vandermonde rows and JSON round-trips
// are exact.
func eqExact(a, b float64) bool { return a == b }
