package regress

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ceer/internal/rng"
)

// synthRows builds a deterministic synthetic training set: nf features
// with wildly different magnitudes (exercising the normalization path)
// and a noisy quadratic target.
func synthRows(seed uint64, nf, n int) ([][]float64, []float64) {
	src := rng.New(seed)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, nf)
		for j := range x {
			x[j] = (1 + src.Float64()*100) * math.Pow(10, float64(j%3))
		}
		xs[i] = x
		y := 0.5
		for j, v := range x {
			y += float64(j+1) * 0.01 * v
			y += 1e-6 * v * v
		}
		ys[i] = y * (1 + 0.05*src.Normal())
	}
	return xs, ys
}

// scaleFor mirrors the batch fit's normalization: per-feature max-abs.
func scaleFor(xs [][]float64) []float64 {
	scale := make([]float64, len(xs[0]))
	for j := range scale {
		maxAbs := 0.0
		for _, x := range xs {
			if a := math.Abs(x[j]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			maxAbs = 1
		}
		scale[j] = maxAbs
	}
	return scale
}

// mustStats builds a SuffStats accumulator or fails the test: the
// constructor only rejects malformed shapes, which these tests never
// pass on purpose.
func mustStats(t *testing.T, nf, degree int, scale []float64) *SuffStats {
	t.Helper()
	s, err := NewSuffStats(nf, degree, scale)
	if err != nil {
		t.Fatalf("NewSuffStats(%d, %d): %v", nf, degree, err)
	}
	return s
}

// coefsIdentical reports whether two coefficient vectors match bit for
// bit.
func coefsIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestSuffStatsIncrementalMatchesFit pins the tentpole contract:
// feeding rows one at a time through Add and solving reproduces the
// batch Fit coefficients bit for bit (same scale, same accumulation
// order), and the moment-form R² agrees with the residual-sum form to
// well under 1e-12 relative.
func TestSuffStatsIncrementalMatchesFit(t *testing.T) {
	for _, degree := range []int{1, 2} {
		for _, nf := range []int{1, 2, 4} {
			xs, ys := synthRows(uint64(1000+10*degree+nf), nf, 60)
			batch, err := Fit(xs, ys, degree)
			if err != nil {
				t.Fatalf("Fit(degree=%d, nf=%d): %v", degree, nf, err)
			}
			s, err := NewSuffStats(nf, degree, scaleFor(xs))
			if err != nil {
				t.Fatal(err)
			}
			for i := range xs {
				s.Add(xs[i], ys[i])
			}
			inc, err := s.Solve()
			if err != nil {
				t.Fatalf("Solve(degree=%d, nf=%d): %v", degree, nf, err)
			}
			if !coefsIdentical(batch.Coef, inc.Coef) {
				t.Errorf("degree=%d nf=%d: incremental coefficients diverge\nbatch: %v\n  inc: %v",
					degree, nf, batch.Coef, inc.Coef)
			}
			if rel := math.Abs(inc.R2-batch.R2) / math.Abs(batch.R2); rel > 1e-12 {
				t.Errorf("degree=%d nf=%d: moment R² %v vs residual R² %v (rel %v)",
					degree, nf, inc.R2, batch.R2, rel)
			}
			if inc.N != batch.N || inc.Degree != batch.Degree || inc.NumFeatures != batch.NumFeatures {
				t.Errorf("degree=%d nf=%d: metadata mismatch: %+v vs %+v", degree, nf, inc, batch)
			}
		}
	}
}

// TestFitStatsAgreesWithFit pins that FitStats returns both the exact
// Fit model and an accumulator whose Solve reproduces it.
func TestFitStatsAgreesWithFit(t *testing.T) {
	xs, ys := synthRows(7, 3, 50)
	plain, err := Fit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, s, err := FitStats(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !coefsIdentical(plain.Coef, m.Coef) || !eqExact(plain.R2, m.R2) {
		t.Errorf("FitStats model diverges from Fit: %+v vs %+v", m, plain)
	}
	if s.N() != len(xs) {
		t.Errorf("stats N = %d, want %d", s.N(), len(xs))
	}
	resolved, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !coefsIdentical(resolved.Coef, m.Coef) {
		t.Error("re-solving FitStats accumulator changes coefficients")
	}
}

// TestSuffStatsAddBatch checks AddBatch equals per-row Add and rejects
// shape errors without partial mutation of the valid prefix count.
func TestSuffStatsAddBatch(t *testing.T) {
	xs, ys := synthRows(11, 2, 20)
	scale := scaleFor(xs)
	a := mustStats(t, 2, 2, scale)
	b := mustStats(t, 2, 2, scale)
	for i := range xs {
		a.Add(xs[i], ys[i])
	}
	if err := b.AddBatch(xs, ys); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustState(t, a), mustState(t, b)) {
		t.Error("AddBatch state differs from per-row Add")
	}
	if err := b.AddBatch(xs[:2], ys[:3]); err == nil || !strings.Contains(err.Error(), "feature rows but") {
		t.Errorf("AddBatch length mismatch error = %v", err)
	}
	if err := b.AddBatch([][]float64{{1}}, []float64{1}); err == nil || !strings.Contains(err.Error(), "features, want") {
		t.Errorf("AddBatch width mismatch error = %v", err)
	}
}

// relClose reports |a-b| within a relative tolerance of |b| (absolute
// when b is tiny).
func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if m := math.Abs(b); m > 1 {
		return d <= tol*m
	}
	return d <= tol
}

// TestSuffStatsMerge pins shard-and-merge equivalence: accumulating two
// halves independently (same scale) and merging matches the single
// sequential accumulation to ≤1e-12 relative (summation association
// differs, so bit-equality is not expected), with counts and the
// residual window matching exactly.
func TestSuffStatsMerge(t *testing.T) {
	xs, ys := synthRows(23, 3, 48)
	scale := scaleFor(xs)
	whole := mustStats(t, 3, 2, scale)
	whole.SetResidualWindowCap(8)
	left := mustStats(t, 3, 2, scale)
	left.SetResidualWindowCap(8)
	right := mustStats(t, 3, 2, scale)
	right.SetResidualWindowCap(8)
	half := len(xs) / 2
	for i := range xs {
		whole.Add(xs[i], ys[i])
		whole.AddResidual(ys[i]*1.01, ys[i])
		if i < half {
			left.Add(xs[i], ys[i])
			left.AddResidual(ys[i]*1.01, ys[i])
		} else {
			right.Add(xs[i], ys[i])
			right.AddResidual(ys[i]*1.01, ys[i])
		}
	}
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	ws, ls := whole.State(), left.State()
	if ls.N != ws.N || ls.ResTotal != ws.ResTotal || len(ls.Residuals) != len(ws.Residuals) {
		t.Fatalf("merged counts differ: n=%d/%d resTotal=%d/%d window=%d/%d",
			ls.N, ws.N, ls.ResTotal, ws.ResTotal, len(ls.Residuals), len(ws.Residuals))
	}
	for i := range ws.Residuals {
		if !eqExact(ls.Residuals[i], ws.Residuals[i]) {
			t.Errorf("merged residual window[%d] = %v, want %v", i, ls.Residuals[i], ws.Residuals[i])
		}
	}
	for i := range ws.XTX {
		if !relClose(ls.XTX[i], ws.XTX[i], 1e-12) {
			t.Errorf("merged xtx[%d] = %v, want %v", i, ls.XTX[i], ws.XTX[i])
		}
	}
	for i := range ws.XTY {
		if !relClose(ls.XTY[i], ws.XTY[i], 1e-12) {
			t.Errorf("merged xty[%d] = %v, want %v", i, ls.XTY[i], ws.XTY[i])
		}
	}
	if !relClose(ls.SumY, ws.SumY, 1e-12) || !relClose(ls.SumY2, ws.SumY2, 1e-12) {
		t.Errorf("merged moments diverge: sumY %v/%v sumY2 %v/%v", ls.SumY, ws.SumY, ls.SumY2, ws.SumY2)
	}
	mw, err := whole.Solve()
	if err != nil {
		t.Fatal(err)
	}
	ml, err := left.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i := range mw.Coef {
		if !relClose(ml.Coef[i], mw.Coef[i], 1e-9) {
			t.Errorf("merged solve coef[%d] = %v, want %v", i, ml.Coef[i], mw.Coef[i])
		}
	}
}

// TestSuffStatsMergeErrors rejects shape and scale mismatches.
func TestSuffStatsMergeErrors(t *testing.T) {
	a := mustStats(t, 2, 1, []float64{1, 2})
	b := mustStats(t, 2, 2, []float64{1, 2})
	if err := a.Merge(b); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Errorf("degree mismatch error = %v", err)
	}
	c := mustStats(t, 2, 1, []float64{1, 3})
	if err := a.Merge(c); err == nil || !strings.Contains(err.Error(), "scale") {
		t.Errorf("scale mismatch error = %v", err)
	}
}

func mustState(t *testing.T, s *SuffStats) []byte {
	t.Helper()
	data, err := s.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSuffStatsStateRoundTrip pins the codec contract: marshal →
// unmarshal → marshal is byte-stable, and a restored accumulator
// continues bit-identically to the original.
func TestSuffStatsStateRoundTrip(t *testing.T) {
	xs, ys := synthRows(31, 2, 30)
	s := mustStats(t, 2, 2, scaleFor(xs))
	s.SetResidualWindowCap(4)
	for i := 0; i < 20; i++ {
		s.Add(xs[i], ys[i])
		s.AddResidual(ys[i]*0.9, ys[i])
	}
	data := mustState(t, s)
	restored, err := UnmarshalState(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, mustState(t, restored)) {
		t.Error("state codec is not byte-stable across a round trip")
	}
	// Continue both and compare: restored must be indistinguishable.
	for i := 20; i < 30; i++ {
		s.Add(xs[i], ys[i])
		s.AddResidual(ys[i]*1.2, ys[i])
		restored.Add(xs[i], ys[i])
		restored.AddResidual(ys[i]*1.2, ys[i])
	}
	if !bytes.Equal(mustState(t, s), mustState(t, restored)) {
		t.Error("restored accumulator diverges from the original after further Adds")
	}
	ms, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	mr, err := restored.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !coefsIdentical(ms.Coef, mr.Coef) {
		t.Error("restored accumulator solves to different coefficients")
	}
}

// TestSuffStatsStateErrors rejects malformed states.
func TestSuffStatsStateErrors(t *testing.T) {
	good := mustStats(t, 2, 1, []float64{1, 2})
	good.Add([]float64{1, 2}, 3)
	base := good.State()
	cases := []struct {
		name   string
		mutate func(st *SuffStatsState)
		want   string
	}{
		{"bad degree", func(st *SuffStatsState) { st.Degree = 3 }, "unsupported degree"},
		{"no features", func(st *SuffStatsState) { st.NumFeatures = 0; st.Scale = nil }, "at least one feature"},
		{"scale arity", func(st *SuffStatsState) { st.Scale = st.Scale[:1] }, "scale divisors"},
		{"zero scale", func(st *SuffStatsState) { st.Scale = []float64{1, 0} }, "zero scale divisor"},
		{"xtx arity", func(st *SuffStatsState) { st.XTX = st.XTX[:2] }, "xtx entries"},
		{"xty arity", func(st *SuffStatsState) { st.XTY = st.XTY[:1] }, "xty entries"},
		{"negative n", func(st *SuffStatsState) { st.N = -1 }, "negative n"},
		{"negative cap", func(st *SuffStatsState) { st.ResCap = -1 }, "negative residual cap"},
		{"window overflow", func(st *SuffStatsState) { st.ResCap = 1; st.Residuals = []float64{1, 2}; st.ResTotal = 2 }, "over cap"},
		{"total undercount", func(st *SuffStatsState) { st.ResCap = 4; st.Residuals = []float64{1, 2}; st.ResTotal = 1 }, "counts 1 residuals"},
		{"nan xtx", func(st *SuffStatsState) { st.XTX = append([]float64(nil), st.XTX...); st.XTX[0] = math.NaN() }, "non-finite"},
	}
	for _, tc := range cases {
		st := base
		tc.mutate(&st)
		if _, err := RestoreSuffStats(st); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if _, err := UnmarshalState([]byte("{")); err == nil || !strings.Contains(err.Error(), "decoding suffstats state") {
		t.Errorf("truncated JSON error = %v", err)
	}
}

// TestSuffStatsResidualWindow exercises the drift-statistic window:
// MAPE, sign runs, eviction, and cap changes.
func TestSuffStatsResidualWindow(t *testing.T) {
	s := mustStats(t, 1, 1, []float64{1})
	s.SetResidualWindowCap(4)
	// Residuals: +0.1, -0.1, +0.2, +0.2 → MAPE 0.15, max sign run 2.
	s.AddResidual(1.1, 1.0)
	s.AddResidual(0.9, 1.0)
	s.AddResidual(1.2, 1.0)
	s.AddResidual(1.2, 1.0)
	if got := s.WindowFill(); got != 4 {
		t.Fatalf("WindowFill = %d, want 4", got)
	}
	if got := s.WindowMAPE(); !approx(got, 0.15, 1e-15) {
		t.Errorf("WindowMAPE = %v, want 0.15", got)
	}
	if got := s.WindowMaxSignRun(); got != 2 {
		t.Errorf("WindowMaxSignRun = %v, want 2", got)
	}
	// Zero actual is skipped entirely.
	s.AddResidual(5, 0)
	if got := s.ResidualCount(); got != 4 {
		t.Errorf("ResidualCount after zero actual = %d, want 4", got)
	}
	// Eviction: a fifth residual displaces the oldest (+0.1), leaving
	// -0.1, +0.2, +0.2, +0.3 → max sign run 3.
	s.AddResidual(1.3, 1.0)
	if got := s.WindowMaxSignRun(); got != 3 {
		t.Errorf("WindowMaxSignRun after eviction = %v, want 3", got)
	}
	if got := s.ResidualCount(); got != 5 {
		t.Errorf("ResidualCount = %d, want 5", got)
	}
	win := s.ResidualWindow()
	if len(win) != 4 || !approx(win[0], -0.1, 1e-15) || !approx(win[3], 0.3, 1e-15) {
		t.Errorf("ResidualWindow = %v", win)
	}
	// Shrinking the cap keeps the most recent entries.
	s.SetResidualWindowCap(2)
	win = s.ResidualWindow()
	if len(win) != 2 || !approx(win[0], 0.2, 1e-15) || !approx(win[1], 0.3, 1e-15) {
		t.Errorf("ResidualWindow after shrink = %v", win)
	}
	// Zero cap disables the window but keeps counting.
	s.SetResidualWindowCap(0)
	s.AddResidual(2, 1)
	if s.WindowFill() != 0 || s.ResidualCount() != 6 {
		t.Errorf("zero-cap window: fill=%d count=%d", s.WindowFill(), s.ResidualCount())
	}
	if got := s.WindowMAPE(); !eqExact(got, 0) {
		t.Errorf("empty-window MAPE = %v, want 0", got)
	}
	if got := s.WindowMaxSignRun(); got != 0 {
		t.Errorf("empty-window sign run = %d, want 0", got)
	}
}

// TestSuffStatsAddPanicsOnWidth pins the Predict-style arity panic.
func TestSuffStatsAddPanicsOnWidth(t *testing.T) {
	s := mustStats(t, 2, 1, []float64{1, 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Add accepted a mis-sized feature vector")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "suffstats add") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	s.Add([]float64{1}, 2)
}

// TestSuffStatsSolveInsufficient requires at least NumParams rows.
func TestSuffStatsSolveInsufficient(t *testing.T) {
	s := mustStats(t, 2, 2, []float64{1, 1})
	s.Add([]float64{1, 2}, 3)
	if _, err := s.Solve(); err == nil || !strings.Contains(err.Error(), "insufficient") {
		t.Errorf("Solve error = %v", err)
	}
}

// TestStatsForModel seeds an empty accumulator from a fitted model's
// shape, the upgrade path for predictors saved without statistics.
func TestStatsForModel(t *testing.T) {
	xs, ys := synthRows(41, 2, 30)
	m, err := Fit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := StatsForModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 0 || s.Degree() != 2 || s.NumFeatures() != 2 {
		t.Errorf("StatsForModel shape: n=%d degree=%d nf=%d", s.N(), s.Degree(), s.NumFeatures())
	}
	// Its scale must match the model's, bit for bit: re-accumulating
	// the training rows and solving reproduces the model.
	for i := range xs {
		s.Add(xs[i], ys[i])
	}
	re, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !coefsIdentical(re.Coef, m.Coef) {
		t.Error("StatsForModel + training rows does not reproduce the model")
	}
}
