package regress

import (
	"encoding/json"
	"fmt"
)

// modelJSON is the serialized form of a Model.
type modelJSON struct {
	Degree      int       `json:"degree"`
	NumFeatures int       `json:"num_features"`
	Coef        []float64 `json:"coef"`
	R2          float64   `json:"r2"`
	N           int       `json:"n"`
	Scale       []float64 `json:"scale"`
}

// MarshalJSON serializes the model, including its internal feature
// normalization, so a reloaded model predicts identically.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{
		Degree:      m.Degree,
		NumFeatures: m.NumFeatures,
		Coef:        m.Coef,
		R2:          m.R2,
		N:           m.N,
		Scale:       m.scale,
	})
}

// UnmarshalJSON restores a serialized model and validates its internal
// consistency.
func (m *Model) UnmarshalJSON(data []byte) error {
	var j modelJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Degree != 1 && j.Degree != 2 {
		return fmt.Errorf("regress: serialized model has unsupported degree %d", j.Degree)
	}
	if j.NumFeatures <= 0 {
		return fmt.Errorf("regress: serialized model has %d features", j.NumFeatures)
	}
	if len(j.Scale) != j.NumFeatures {
		return fmt.Errorf("regress: scale length %d != %d features", len(j.Scale), j.NumFeatures)
	}
	wantCoef := 1 + len(Expand(make([]float64, j.NumFeatures), j.Degree))
	if len(j.Coef) != wantCoef {
		return fmt.Errorf("regress: coefficient length %d, want %d", len(j.Coef), wantCoef)
	}
	for i, s := range j.Scale {
		if s == 0 {
			return fmt.Errorf("regress: zero scale at feature %d", i)
		}
	}
	m.Degree = j.Degree
	m.NumFeatures = j.NumFeatures
	m.Coef = j.Coef
	m.R2 = j.R2
	m.N = j.N
	m.scale = j.Scale
	return nil
}
