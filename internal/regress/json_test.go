package regress

import (
	"encoding/json"
	"math"
	"testing"
)

func TestModelJSONRoundtrip(t *testing.T) {
	xs := [][]float64{{1, 10}, {2, 20}, {3, 5}, {4, 40}, {5, 1}, {6, 8}}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x[0] + 0.5*x[1]
	}
	m, err := Fit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	probe := []float64{7, 3}
	if a, b := m.Predict(probe), back.Predict(probe); math.Abs(a-b) > 1e-12 {
		t.Errorf("roundtrip prediction changed: %v vs %v", a, b)
	}
	if !eqExact(back.R2, m.R2) || back.N != m.N || back.Degree != m.Degree {
		t.Error("metadata changed across roundtrip")
	}
}

func TestModelJSONQuadraticRoundtrip(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for i := 1; i <= 12; i++ {
		x := float64(i)
		xs = append(xs, []float64{x})
		ys = append(ys, 1+x+2*x*x)
	}
	m, err := Fit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := json.Marshal(m) // Model is plain floats and ints; Marshal cannot fail
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if a, b := m.Predict([]float64{20}), back.Predict([]float64{20}); math.Abs(a-b) > 1e-9 {
		t.Errorf("quadratic roundtrip changed: %v vs %v", a, b)
	}
}

func TestModelUnmarshalRejects(t *testing.T) {
	cases := map[string]string{
		"bad degree":  `{"degree":3,"num_features":1,"coef":[0,1,2],"scale":[1]}`,
		"no features": `{"degree":1,"num_features":0,"coef":[0],"scale":[]}`,
		"scale len":   `{"degree":1,"num_features":2,"coef":[0,1,2],"scale":[1]}`,
		"coef len":    `{"degree":1,"num_features":2,"coef":[0,1],"scale":[1,1]}`,
		"zero scale":  `{"degree":1,"num_features":1,"coef":[0,1],"scale":[0]}`,
		"not json":    `{`,
	}
	for name, payload := range cases {
		var m Model
		if err := json.Unmarshal([]byte(payload), &m); err == nil {
			t.Errorf("%s: should fail to unmarshal", name)
		}
	}
}
