package regress

import (
	"strings"
	"sync"
	"testing"

	"ceer/internal/rng"
)

// fitRandom fits a degree-d model on synthetic noisy data with nf
// features, returning the model and a fresh matrix of query rows.
func fitRandom(t *testing.T, seed uint64, nf, degree, rows int) (*Model, [][]float64) {
	t.Helper()
	src := rng.New(seed)
	n := 40
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, nf)
		for j := range x {
			x[j] = 1 + src.Float64()*100
		}
		xs[i] = x
		y := 0.5
		for j, v := range x {
			y += float64(j+1) * 0.01 * v
			y += 1e-5 * v * v
		}
		ys[i] = y * (1 + 0.05*src.Normal())
	}
	m, err := Fit(xs, ys, degree)
	if err != nil {
		t.Fatalf("Fit(degree=%d): %v", degree, err)
	}
	queries := make([][]float64, rows)
	for i := range queries {
		q := make([]float64, nf)
		for j := range q {
			q[j] = 1 + src.Float64()*150 // include extrapolation beyond the fit range
		}
		queries[i] = q
	}
	return m, queries
}

// TestPredictBatchMatchesPredict pins the contract: PredictBatch is
// bit-identical to per-row Predict, for linear and quadratic models
// across feature arities.
func TestPredictBatchMatchesPredict(t *testing.T) {
	for _, degree := range []int{1, 2} {
		for _, nf := range []int{1, 2, 3, 6} {
			m, queries := fitRandom(t, uint64(100+10*degree+nf), nf, degree, 17)
			feats := make([]float64, 0, len(queries)*nf)
			for _, q := range queries {
				feats = append(feats, q...)
			}
			dst := make([]float64, len(queries))
			m.PredictBatch(dst, feats)
			for i, q := range queries {
				if want := m.Predict(q); !eqExact(dst[i], want) {
					t.Errorf("degree=%d nf=%d row %d: PredictBatch = %v, Predict = %v",
						degree, nf, i, dst[i], want)
				}
			}
		}
	}
}

// TestPredictBatchMatchesPredictScalar checks the single-feature fast
// paths agree bit for bit.
func TestPredictBatchMatchesPredictScalar(t *testing.T) {
	for _, degree := range []int{1, 2} {
		m, queries := fitRandom(t, uint64(7+degree), 1, degree, 9)
		feats := make([]float64, len(queries))
		for i, q := range queries {
			feats[i] = q[0]
		}
		dst := make([]float64, len(queries))
		m.PredictBatch(dst, feats)
		for i := range queries {
			if want := m.PredictScalar(feats[i]); !eqExact(dst[i], want) {
				t.Errorf("degree=%d row %d: PredictBatch = %v, PredictScalar = %v",
					degree, i, dst[i], want)
			}
		}
	}
}

// TestPredictBatchEmpty accepts a zero-row batch.
func TestPredictBatchEmpty(t *testing.T) {
	m, _ := fitRandom(t, 3, 2, 1, 1)
	m.PredictBatch(nil, nil) // must not panic
}

// TestPredictBatchSingleRow pins the one-row degenerate case against
// Predict, for both degrees.
func TestPredictBatchSingleRow(t *testing.T) {
	for _, degree := range []int{1, 2} {
		m, queries := fitRandom(t, uint64(40+degree), 3, degree, 1)
		dst := make([]float64, 1)
		m.PredictBatch(dst, queries[0])
		if want := m.Predict(queries[0]); !eqExact(dst[0], want) {
			t.Errorf("degree=%d: single-row PredictBatch = %v, Predict = %v", degree, dst[0], want)
		}
	}
}

// TestPredictBatchShapePanic pins the shape contract: a feature matrix
// that does not factor into len(dst) rows panics, like Predict does on
// arity mismatch.
func TestPredictBatchShapePanic(t *testing.T) {
	m, _ := fitRandom(t, 4, 2, 1, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("PredictBatch accepted a mis-shaped matrix")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "PredictBatch") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	m.PredictBatch(make([]float64, 3), make([]float64, 5))
}

// TestPredictBatchWidthMismatch pins the other mis-shape direction: an
// empty destination with leftover features is a contract violation, not
// a silent no-op.
func TestPredictBatchWidthMismatch(t *testing.T) {
	m, _ := fitRandom(t, 5, 2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("PredictBatch accepted features with no destination rows")
		}
	}()
	m.PredictBatch(nil, make([]float64, 2))
}

// TestPredictBatchConcurrentBitIdentity hammers one shared model from
// many goroutines, each comparing PredictBatch against per-row
// Predict/PredictScalar bit for bit. Under -race this additionally pins
// that batch evaluation of a shared (immutable) model is data-race
// free — the property the compiled-table hot-swap path relies on.
func TestPredictBatchConcurrentBitIdentity(t *testing.T) {
	for _, nf := range []int{1, 3} {
		m, queries := fitRandom(t, uint64(60+nf), nf, 2, 32)
		feats := make([]float64, 0, len(queries)*nf)
		for _, q := range queries {
			feats = append(feats, q...)
		}
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dst := make([]float64, len(queries))
				for iter := 0; iter < 50; iter++ {
					m.PredictBatch(dst, feats)
					for i, q := range queries {
						want := m.Predict(q)
						if nf == 1 {
							want = m.PredictScalar(q[0])
						}
						if !eqExact(dst[i], want) {
							select {
							case errs <- "concurrent PredictBatch diverged from scalar path":
							default:
							}
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for msg := range errs {
			t.Errorf("nf=%d: %s", nf, msg)
		}
	}
}
