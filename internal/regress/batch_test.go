package regress

import (
	"strings"
	"testing"

	"ceer/internal/rng"
)

// fitRandom fits a degree-d model on synthetic noisy data with nf
// features, returning the model and a fresh matrix of query rows.
func fitRandom(t *testing.T, seed uint64, nf, degree, rows int) (*Model, [][]float64) {
	t.Helper()
	src := rng.New(seed)
	n := 40
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, nf)
		for j := range x {
			x[j] = 1 + src.Float64()*100
		}
		xs[i] = x
		y := 0.5
		for j, v := range x {
			y += float64(j+1) * 0.01 * v
			y += 1e-5 * v * v
		}
		ys[i] = y * (1 + 0.05*src.Normal())
	}
	m, err := Fit(xs, ys, degree)
	if err != nil {
		t.Fatalf("Fit(degree=%d): %v", degree, err)
	}
	queries := make([][]float64, rows)
	for i := range queries {
		q := make([]float64, nf)
		for j := range q {
			q[j] = 1 + src.Float64()*150 // include extrapolation beyond the fit range
		}
		queries[i] = q
	}
	return m, queries
}

// TestPredictBatchMatchesPredict pins the contract: PredictBatch is
// bit-identical to per-row Predict, for linear and quadratic models
// across feature arities.
func TestPredictBatchMatchesPredict(t *testing.T) {
	for _, degree := range []int{1, 2} {
		for _, nf := range []int{1, 2, 3, 6} {
			m, queries := fitRandom(t, uint64(100+10*degree+nf), nf, degree, 17)
			feats := make([]float64, 0, len(queries)*nf)
			for _, q := range queries {
				feats = append(feats, q...)
			}
			dst := make([]float64, len(queries))
			m.PredictBatch(dst, feats)
			for i, q := range queries {
				if want := m.Predict(q); !eqExact(dst[i], want) {
					t.Errorf("degree=%d nf=%d row %d: PredictBatch = %v, Predict = %v",
						degree, nf, i, dst[i], want)
				}
			}
		}
	}
}

// TestPredictBatchMatchesPredictScalar checks the single-feature fast
// paths agree bit for bit.
func TestPredictBatchMatchesPredictScalar(t *testing.T) {
	for _, degree := range []int{1, 2} {
		m, queries := fitRandom(t, uint64(7+degree), 1, degree, 9)
		feats := make([]float64, len(queries))
		for i, q := range queries {
			feats[i] = q[0]
		}
		dst := make([]float64, len(queries))
		m.PredictBatch(dst, feats)
		for i := range queries {
			if want := m.PredictScalar(feats[i]); !eqExact(dst[i], want) {
				t.Errorf("degree=%d row %d: PredictBatch = %v, PredictScalar = %v",
					degree, i, dst[i], want)
			}
		}
	}
}

// TestPredictBatchEmpty accepts a zero-row batch.
func TestPredictBatchEmpty(t *testing.T) {
	m, _ := fitRandom(t, 3, 2, 1, 1)
	m.PredictBatch(nil, nil) // must not panic
}

// TestPredictBatchShapePanic pins the shape contract: a feature matrix
// that does not factor into len(dst) rows panics, like Predict does on
// arity mismatch.
func TestPredictBatchShapePanic(t *testing.T) {
	m, _ := fitRandom(t, 4, 2, 1, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("PredictBatch accepted a mis-shaped matrix")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "PredictBatch") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	m.PredictBatch(make([]float64, 3), make([]float64, 5))
}
