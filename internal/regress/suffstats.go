// Streaming sufficient statistics for polynomial least squares.
//
// SuffStats dissolves the batch-only Fit contract: instead of
// materializing every training row and then solving, the normal
// equations XᵀX β = Xᵀy are accumulated one observation at a time, so
// the same machinery serves the batch campaign (Fit is now a thin
// wrapper), incremental rank-1 calibration updates from live
// observations, and map-reduce-style Merge of independently
// accumulated shards. A byte-stable state codec (State /
// RestoreSuffStats) mirrors the trace accumulator codec, so sufficient
// statistics persist alongside fitted coefficients and a restored
// accumulator continues exactly where the saved one stopped.
//
// The accumulation arithmetic — feature normalization, polynomial
// expansion, the upper-triangle products, and their summation order —
// is exactly the loop the batch Fit ran before the refactor, so a
// batch fit over SuffStats reproduces the pre-refactor coefficients
// bit for bit.

package regress

import (
	"errors"
	"fmt"
	"math"
)

// SuffStats accumulates the sufficient statistics of a polynomial
// least-squares fit: XᵀX, Xᵀy, the observation count, the first two
// moments of y (for the moment-form R²), and a bounded window of
// recent prediction residuals (for drift detection; see
// AddResidual). The feature normalization divisors are fixed at
// construction: they are part of the model contract, not of the data,
// so incremental updates to an existing model reuse its scale.
type SuffStats struct {
	degree int
	nf     int
	scale  []float64
	p      int // 1 (intercept) + expanded feature count

	n           int
	xtx         []float64 // upper triangle of XᵀX, row-major: p(p+1)/2 entries
	xty         []float64 // p entries
	sumY, sumY2 float64

	// Windowed residual moments: a ring of the most recent signed
	// relative residuals (pred-actual)/|actual|, plus the lifetime
	// count of residuals observed. The window is runtime drift state;
	// the codec carries it so a calibration loop can checkpoint
	// mid-window.
	resCap   int
	res      []float64 // ring storage, len <= resCap
	resNext  int       // ring write position
	resTotal int

	// scratch buffers reused across Add calls (one accumulator is
	// single-writer; see the concurrency note on Add).
	scaled []float64
	row    []float64
}

// NewSuffStats creates an empty accumulator for numFeatures raw
// features expanded to the given degree (1 or 2), normalized by the
// per-feature divisors in scale (all non-zero; the slice is copied).
func NewSuffStats(numFeatures, degree int, scale []float64) (*SuffStats, error) {
	if numFeatures <= 0 {
		return nil, errors.New("regress: suffstats need at least one feature")
	}
	if degree != 1 && degree != 2 {
		return nil, fmt.Errorf("regress: unsupported degree %d", degree)
	}
	if len(scale) != numFeatures {
		return nil, fmt.Errorf("regress: %d scale divisors for %d features", len(scale), numFeatures)
	}
	for i, s := range scale {
		if s == 0 {
			return nil, fmt.Errorf("regress: zero scale divisor at feature %d", i)
		}
	}
	p := 1 + expandedLen(numFeatures, degree)
	return &SuffStats{
		degree: degree,
		nf:     numFeatures,
		scale:  append([]float64(nil), scale...),
		p:      p,
		xtx:    make([]float64, p*(p+1)/2),
		xty:    make([]float64, p),
		scaled: make([]float64, numFeatures),
		row:    make([]float64, p),
	}, nil
}

// StatsForModel creates an empty accumulator matching a fitted model's
// shape — same degree, feature count, and normalization — the seed for
// calibrating a model whose training statistics were not persisted
// (e.g. a predictor file written before the v3 format).
func StatsForModel(m *Model) (*SuffStats, error) {
	return NewSuffStats(m.NumFeatures, m.Degree, m.scale)
}

// expandedLen is the length of Expand's output for nf raw features.
func expandedLen(nf, degree int) int {
	if degree <= 1 {
		return nf
	}
	return nf + nf*(nf+1)/2
}

// NumFeatures returns the raw feature dimensionality.
func (s *SuffStats) NumFeatures() int { return s.nf }

// Degree returns the polynomial expansion degree.
func (s *SuffStats) Degree() int { return s.degree }

// NumParams returns the fitted parameter count (intercept included) —
// the minimum observation count Solve requires.
func (s *SuffStats) NumParams() int { return s.p }

// N returns the number of observations accumulated.
func (s *SuffStats) N() int { return s.n }

// Scale returns the per-feature normalization divisors (shared slice;
// do not modify).
func (s *SuffStats) Scale() []float64 { return s.scale }

// CompatibleWith verifies the accumulator matches a fitted model's
// shape — same degree, feature count, and bit-identical normalization
// divisors — so its Adds continue that model's fit rather than
// accumulate onto a different design.
func (s *SuffStats) CompatibleWith(m *Model) error {
	if m.Degree != s.degree || m.NumFeatures != s.nf {
		return fmt.Errorf("regress: suffstats shape (%d features, degree %d) does not match model (%d, %d)",
			s.nf, s.degree, m.NumFeatures, m.Degree)
	}
	for i := range s.scale {
		if math.Float64bits(s.scale[i]) != math.Float64bits(m.scale[i]) {
			return fmt.Errorf("regress: suffstats scale differs from model scale at feature %d", i)
		}
	}
	return nil
}

// Add folds one observation into the statistics: the raw feature
// vector x (which must have NumFeatures entries; Add panics otherwise,
// like Predict) and its target y. The arithmetic — normalize, expand,
// accumulate upper-triangle products in row-major order — is exactly
// the batch fit's loop, so adding rows one at a time is bit-identical
// to the pre-refactor materialized accumulation.
//
// An accumulator is single-writer: Add, Merge, and AddResidual must
// not race with each other or with Solve (they share scratch state).
func (s *SuffStats) Add(x []float64, y float64) {
	if len(x) != s.nf {
		panic(fmt.Sprintf("regress: suffstats add with %d features, want %d", len(x), s.nf))
	}
	for j := range x {
		s.scaled[j] = x[j] / s.scale[j]
	}
	row := s.row
	row[0] = 1
	copy(row[1:], s.scaled)
	if s.degree >= 2 {
		ci := 1 + s.nf
		for i := 0; i < s.nf; i++ {
			for j := i; j < s.nf; j++ {
				row[ci] = s.scaled[i] * s.scaled[j]
				ci++
			}
		}
	}
	k := 0
	for r := 0; r < s.p; r++ {
		for c := r; c < s.p; c++ {
			s.xtx[k] += row[r] * row[c]
			k++
		}
		s.xty[r] += row[r] * y
	}
	s.sumY += y
	s.sumY2 += y * y
	s.n++
}

// AddBatch folds a batch of observations, in order. All rows must have
// NumFeatures entries.
func (s *SuffStats) AddBatch(xs [][]float64, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("regress: %d feature rows but %d targets", len(xs), len(ys))
	}
	for i, x := range xs {
		if len(x) != s.nf {
			return fmt.Errorf("regress: row %d has %d features, want %d", i, len(x), s.nf)
		}
		s.Add(x, ys[i])
	}
	return nil
}

// Merge folds another accumulator's statistics into s. Both must have
// the same shape — degree, feature count, and bit-identical scale
// divisors (normalized rows from different scales are not summable).
// The residual window is merged by replaying o's window entries in
// order (oldest first), as if its residuals had been observed on s.
func (s *SuffStats) Merge(o *SuffStats) error {
	if o.degree != s.degree || o.nf != s.nf {
		return fmt.Errorf("regress: merging suffstats of shape (%d features, degree %d) into (%d, %d)",
			o.nf, o.degree, s.nf, s.degree)
	}
	for i := range s.scale {
		if math.Float64bits(s.scale[i]) != math.Float64bits(o.scale[i]) {
			return fmt.Errorf("regress: merging suffstats with different scale at feature %d", i)
		}
	}
	for i := range s.xtx {
		s.xtx[i] += o.xtx[i]
	}
	for i := range s.xty {
		s.xty[i] += o.xty[i]
	}
	s.sumY += o.sumY
	s.sumY2 += o.sumY2
	s.n += o.n
	for _, r := range o.windowInOrder() {
		s.addResidualValue(r)
	}
	s.resTotal += o.resTotal - len(o.res) // entries already evicted from o's window
	return nil
}

// Solve fits the model from the accumulated statistics: Gaussian
// elimination with partial pivoting over the (mirrored) normal
// equations, with the same small ridge fallback the batch fit uses, so
// a Solve over batch-accumulated rows reproduces Fit's coefficients
// bit for bit. R² is computed in moment form (SS_res from XᵀX, Xᵀy,
// Σy²), algebraically equal to the residual-sum definition and within
// ~1e-12 relative of it numerically. At least NumParams observations
// are required.
func (s *SuffStats) Solve() (*Model, error) {
	if s.n < s.p {
		return nil, fmt.Errorf("regress: %d observations insufficient for %d parameters", s.n, s.p)
	}
	a, b := s.normalEquations()
	coef, err := solve(a, b)
	if err != nil {
		// Ridge fallback: add a small diagonal penalty scaled to the
		// matrix magnitude. Like the historical batch fit, the penalty
		// is applied to the (partially eliminated) system solve left
		// behind, preserving its exact coefficients on singular
		// designs.
		lambda := 0.0
		for i := 0; i < s.p; i++ {
			lambda += a[i][i]
		}
		lambda = lambda / float64(s.p) * 1e-8
		for i := 0; i < s.p; i++ {
			a[i][i] += lambda
		}
		coef, err = solve(a, b)
		if err != nil {
			return nil, err
		}
	}
	m := &Model{
		Degree:      s.degree,
		NumFeatures: s.nf,
		Coef:        coef,
		N:           s.n,
		scale:       append([]float64(nil), s.scale...),
	}
	m.R2 = s.rSquaredFor(coef)
	return m, nil
}

// normalEquations materializes the full symmetric XᵀX and a copy of
// Xᵀy for the destructive solver.
func (s *SuffStats) normalEquations() ([][]float64, []float64) {
	a := make([][]float64, s.p)
	for r := range a {
		a[r] = make([]float64, s.p)
	}
	k := 0
	for r := 0; r < s.p; r++ {
		for c := r; c < s.p; c++ {
			a[r][c] = s.xtx[k]
			k++
		}
	}
	for r := 1; r < s.p; r++ {
		for c := 0; c < r; c++ {
			a[r][c] = a[c][r]
		}
	}
	b := append([]float64(nil), s.xty...)
	return a, b
}

// rSquaredFor computes R² for a coefficient vector from the moments:
// SS_res = Σy² − 2βᵀXᵀy + βᵀ(XᵀX)β, SS_tot = Σy² − (Σy)²/n, with the
// same degenerate-case conventions as the sample-based rSquared.
func (s *SuffStats) rSquaredFor(coef []float64) float64 {
	if s.n == 0 {
		return 0
	}
	quad := 0.0
	k := 0
	for r := 0; r < s.p; r++ {
		for c := r; c < s.p; c++ {
			v := s.xtx[k] * coef[r] * coef[c]
			if c > r {
				v *= 2
			}
			quad += v
			k++
		}
	}
	lin := 0.0
	for r := 0; r < s.p; r++ {
		lin += coef[r] * s.xty[r]
	}
	ssRes := s.sumY2 - 2*lin + quad
	ssTot := s.sumY2 - s.sumY*s.sumY/float64(s.n)
	// Guard the floating-point floor: both sums are non-negative by
	// construction.
	if ssRes < 0 {
		ssRes = 0
	}
	if ssTot <= 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// SetResidualWindowCap sets the residual window capacity, preserving
// the most recent min(cap, held) residuals. A zero cap disables the
// window.
func (s *SuffStats) SetResidualWindowCap(cap int) {
	if cap < 0 {
		cap = 0
	}
	kept := s.windowInOrder()
	if len(kept) > cap {
		kept = kept[len(kept)-cap:]
	}
	s.resCap = cap
	s.res = append(s.res[:0], kept...)
	s.resNext = len(s.res) % maxInt(cap, 1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ResetResidualWindow empties the window (capacity and lifetime count
// are kept) — called after a refit so the new model is judged only on
// residuals it produced.
func (s *SuffStats) ResetResidualWindow() {
	s.res = s.res[:0]
	s.resNext = 0
}

// AddResidual records one live prediction residual — the signed
// relative error (pred − actual)/|actual| — into the bounded window.
// Observations with a zero actual are skipped (relative error is
// undefined there), mirroring MAPE.
func (s *SuffStats) AddResidual(pred, actual float64) {
	if actual == 0 {
		return
	}
	s.addResidualValue((pred - actual) / math.Abs(actual))
}

func (s *SuffStats) addResidualValue(rel float64) {
	s.resTotal++
	if s.resCap == 0 {
		return
	}
	if len(s.res) < s.resCap {
		s.res = append(s.res, rel)
		s.resNext = len(s.res) % s.resCap
		return
	}
	s.res[s.resNext] = rel
	s.resNext = (s.resNext + 1) % s.resCap
}

// windowInOrder returns the window's residuals oldest-first.
func (s *SuffStats) windowInOrder() []float64 {
	if len(s.res) < s.resCap || s.resNext == 0 {
		return append([]float64(nil), s.res...)
	}
	out := make([]float64, 0, len(s.res))
	out = append(out, s.res[s.resNext:]...)
	out = append(out, s.res[:s.resNext]...)
	return out
}

// ResidualWindow returns the residuals currently held, oldest first.
func (s *SuffStats) ResidualWindow() []float64 { return s.windowInOrder() }

// ResidualWindowCap returns the window capacity.
func (s *SuffStats) ResidualWindowCap() int { return s.resCap }

// ResidualCount returns the lifetime number of residuals observed
// (including ones evicted from the window).
func (s *SuffStats) ResidualCount() int { return s.resTotal }

// WindowFill returns how many residuals the window currently holds.
func (s *SuffStats) WindowFill() int { return len(s.res) }

// WindowMAPE returns the mean absolute relative residual over the
// window (0 when empty), summed oldest-first for determinism.
func (s *SuffStats) WindowMAPE() float64 {
	w := s.windowInOrder()
	if len(w) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range w {
		sum += math.Abs(r)
	}
	return sum / float64(len(w))
}

// WindowMaxSignRun returns the length of the longest run of
// same-signed residuals in the window. Exact zeros break runs. A long
// run is the signature of systematic bias — a drifted model is
// consistently over- or under-predicting — where healthy noise
// alternates sign.
func (s *SuffStats) WindowMaxSignRun() int {
	w := s.windowInOrder()
	best, run, sign := 0, 0, 0
	for _, r := range w {
		var sgn int
		switch {
		case r > 0:
			sgn = 1
		case r < 0:
			sgn = -1
		default:
			sgn = 0
		}
		if sgn != 0 && sgn == sign {
			run++
		} else if sgn != 0 {
			sign, run = sgn, 1
		} else {
			sign, run = 0, 0
		}
		if run > best {
			best = run
		}
	}
	return best
}
