// Checkpoint-grade sufficient-statistics serialization, mirroring the
// trace accumulator codec: the state codec round-trips the exact
// internal accumulator state — normal-equation sums, target moments,
// the residual window with its eviction history — so an accumulator
// restored from a saved predictor continues bit-identically to one
// that never stopped. JSON numbers use Go's shortest-round-trip float
// encoding, so no precision is lost.

package regress

import (
	"encoding/json"
	"fmt"
	"math"
)

// SuffStatsState is the exact exported state of a SuffStats. The
// residual window is normalized oldest-first so two accumulators that
// hold the same residuals encode identically regardless of ring
// position.
type SuffStatsState struct {
	Degree      int       `json:"degree"`
	NumFeatures int       `json:"num_features"`
	Scale       []float64 `json:"scale"`
	N           int       `json:"n"`
	XTX         []float64 `json:"xtx"` // upper triangle, row-major
	XTY         []float64 `json:"xty"`
	SumY        float64   `json:"sum_y"`
	SumY2       float64   `json:"sum_y2"`
	ResCap      int       `json:"res_cap,omitempty"`
	Residuals   []float64 `json:"residuals,omitempty"` // oldest first
	ResTotal    int       `json:"res_total,omitempty"`
}

// State exports the accumulator's internal state.
func (s *SuffStats) State() SuffStatsState {
	return SuffStatsState{
		Degree:      s.degree,
		NumFeatures: s.nf,
		Scale:       append([]float64(nil), s.scale...),
		N:           s.n,
		XTX:         append([]float64(nil), s.xtx...),
		XTY:         append([]float64(nil), s.xty...),
		SumY:        s.sumY,
		SumY2:       s.sumY2,
		ResCap:      s.resCap,
		Residuals:   s.windowInOrder(),
		ResTotal:    s.resTotal,
	}
}

// RestoreSuffStats inverts State exactly, validating shape invariants.
func RestoreSuffStats(st SuffStatsState) (*SuffStats, error) {
	s, err := NewSuffStats(st.NumFeatures, st.Degree, st.Scale)
	if err != nil {
		return nil, err
	}
	if want := s.p * (s.p + 1) / 2; len(st.XTX) != want {
		return nil, fmt.Errorf("regress: suffstats state has %d xtx entries, want %d", len(st.XTX), want)
	}
	if len(st.XTY) != s.p {
		return nil, fmt.Errorf("regress: suffstats state has %d xty entries, want %d", len(st.XTY), s.p)
	}
	if st.N < 0 {
		return nil, fmt.Errorf("regress: suffstats state has negative n %d", st.N)
	}
	if st.ResCap < 0 {
		return nil, fmt.Errorf("regress: suffstats state has negative residual cap %d", st.ResCap)
	}
	if len(st.Residuals) > st.ResCap {
		return nil, fmt.Errorf("regress: suffstats state holds %d residuals over cap %d", len(st.Residuals), st.ResCap)
	}
	if st.ResTotal < len(st.Residuals) {
		return nil, fmt.Errorf("regress: suffstats state counts %d residuals but holds %d", st.ResTotal, len(st.Residuals))
	}
	for i, v := range st.XTX {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("regress: suffstats state has non-finite xtx entry %d", i)
		}
	}
	copy(s.xtx, st.XTX)
	copy(s.xty, st.XTY)
	s.n = st.N
	s.sumY = st.SumY
	s.sumY2 = st.SumY2
	s.resCap = st.ResCap
	s.res = append([]float64(nil), st.Residuals...)
	if st.ResCap > 0 {
		s.resNext = len(s.res) % st.ResCap
	}
	s.resTotal = st.ResTotal
	return s, nil
}

// MarshalState encodes the accumulator's exact state as one compact
// JSON value (single line, checkpoint-record friendly).
func (s *SuffStats) MarshalState() ([]byte, error) {
	return json.Marshal(s.State())
}

// UnmarshalState inverts MarshalState.
func UnmarshalState(data []byte) (*SuffStats, error) {
	var st SuffStatsState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("regress: decoding suffstats state: %w", err)
	}
	return RestoreSuffStats(st)
}
