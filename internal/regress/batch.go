package regress

import "fmt"

// PredictBatch evaluates the model over a struct-of-arrays feature
// matrix: feats holds len(dst) rows of NumFeatures raw features each,
// stored contiguously row-major, and the i-th prediction is written to
// dst[i]. It exists for table-building paths (compiled predictors)
// that evaluate one model over many feature vectors: Predict allocates
// a scaled copy and a polynomial expansion per call, PredictBatch
// allocates one scratch row for the whole batch and accumulates the
// expansion terms in place.
//
// The arithmetic mirrors Predict exactly — same normalization, same
// term order (linear columns, then squares and cross products in
// expansion order) — so PredictBatch(dst, feats)[i] is bit-identical
// to Predict(row_i). It panics on a shape mismatch, like Predict.
func (m *Model) PredictBatch(dst []float64, feats []float64) {
	nf := m.NumFeatures
	if len(feats) != len(dst)*nf {
		panic(fmt.Sprintf("regress: PredictBatch with %d features for %d rows of a %d-feature model",
			len(feats), len(dst), nf))
	}
	scaled := make([]float64, nf)
	for r := range dst {
		row := feats[r*nf : (r+1)*nf]
		for j, v := range row {
			scaled[j] = v / m.scale[j]
		}
		y := m.Coef[0]
		ci := 1
		for _, s := range scaled {
			y += m.Coef[ci] * s
			ci++
		}
		if m.Degree >= 2 {
			for i := 0; i < nf; i++ {
				for j := i; j < nf; j++ {
					y += m.Coef[ci] * (scaled[i] * scaled[j])
					ci++
				}
			}
		}
		dst[r] = y
	}
}
