// Package par is the repository's concurrency substrate: a bounded
// worker pool with deterministic, input-ordered result collection and
// first-error cancellation.
//
// The measurement campaign (internal/sim, internal/ceer) and the
// experiments harness fan their independent (CNN, GPU, k) tasks out
// through this package. Parallel runs must be indistinguishable from
// serial ones, so two properties are load-bearing:
//
//   - Determinism. Each task's result lands at the index of its input,
//     never in completion order. Because task indices are claimed in
//     order and started tasks always run to completion, the error
//     returned on failure is that of the lowest-indexed failing task —
//     the same error a serial loop would have stopped at — regardless
//     of goroutine scheduling.
//
//   - Bounded footprint. At most `workers` tasks run at once, and
//     workers == 1 degenerates to a plain serial loop on the calling
//     goroutine with no goroutines spawned, preserving the serial code
//     path exactly.
package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), and the result is clamped to [1, n] so a pool
// never spawns more goroutines than it has tasks.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most
// Workers(workers, n) goroutines. It returns the error of the
// lowest-indexed failing task, cancelling the derived context as soon
// as any task fails so unstarted tasks are skipped. A cancelled parent
// context stops the loop between tasks and is reported as ctx.Err().
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if Workers(workers, n) == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	return forEachParallel(ctx, Workers(workers, n), n, fn)
}

func forEachParallel(parent context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		mu      sync.Mutex
		failIdx = n
		failErr error
		nextIdx atomic.Int64
		wg      sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < failIdx {
			failIdx, failErr = i, err
		}
		mu.Unlock()
		cancel()
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(nextIdx.Add(1)) - 1
				if i >= n {
					return
				}
				// Skip tasks claimed after cancellation; indices are
				// claimed in order, so every index below a recorded
				// failure has already started and will record its own
				// outcome.
				if ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if failErr != nil {
		return failErr
	}
	return parent.Err()
}

// AbortError marks a task error that must stop the whole pool, not
// just fail its own index: MapPartial treats it the way ForEach treats
// any error. Build one with Abort.
type AbortError struct{ Err error }

// Error renders the wrapped cause.
func (e *AbortError) Error() string { return e.Err.Error() }

// Unwrap exposes the cause, so errors.Is/As see through the marker.
func (e *AbortError) Unwrap() error { return e.Err }

// Abort wraps err so MapPartial aborts the pool when a task returns
// it. Abort(nil) returns nil.
func Abort(err error) error {
	if err == nil {
		return nil
	}
	return &AbortError{Err: err}
}

// ErrSkipped is the per-index error MapPartial records for tasks that
// never ran because the pool aborted or the context was cancelled
// first.
var ErrSkipped = errors.New("par: task skipped")

// MapPartial runs fn over [0, n) like Map but keeps going past
// individual task failures: out[i] and errs[i] record every task's
// result and final error in input order (errs[i] == nil marks
// success). Only two things stop the pool early — parent-context
// cancellation, and a task returning an error wrapped with Abort — and
// both are reported through the third return value (for aborts, the
// lowest-indexed aborting task's unwrapped error, mirroring ForEach's
// lowest-index determinism). Tasks that never started carry ErrSkipped
// in errs.
func MapPartial[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, []error, error) {
	if n <= 0 {
		return nil, nil, ctx.Err()
	}
	out := make([]T, n)
	errs := make([]error, n)
	for i := range errs {
		errs[i] = ErrSkipped
	}
	if Workers(workers, n) == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, errs, err
			}
			v, err := fn(ctx, i)
			var abort *AbortError
			if errors.As(err, &abort) {
				errs[i] = abort.Err
				return out, errs, abort.Err
			}
			out[i], errs[i] = v, err
		}
		return out, errs, nil
	}
	err := mapPartialParallel(ctx, Workers(workers, n), n, out, errs, fn)
	return out, errs, err
}

func mapPartialParallel[T any](parent context.Context, workers, n int, out []T, errs []error, fn func(ctx context.Context, i int) (T, error)) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		mu       sync.Mutex
		abortIdx = n
		abortErr error
		nextIdx  atomic.Int64
		wg       sync.WaitGroup
	)
	recordAbort := func(i int, err error) {
		mu.Lock()
		if i < abortIdx {
			abortIdx, abortErr = i, err
		}
		mu.Unlock()
		cancel()
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(nextIdx.Add(1)) - 1
				if i >= n {
					return
				}
				// As in forEachParallel: indices are claimed in order
				// and started tasks run to completion, so every index
				// below a recorded abort has a real outcome in errs.
				if ctx.Err() != nil {
					return
				}
				v, err := fn(ctx, i)
				var abort *AbortError
				if errors.As(err, &abort) {
					errs[i] = abort.Err
					recordAbort(i, abort.Err)
					return
				}
				// Each index is claimed exactly once, so these writes
				// are race-free and published by wg.Wait.
				out[i], errs[i] = v, err
			}
		}()
	}
	wg.Wait()
	if abortErr != nil {
		return abortErr
	}
	return parent.Err()
}

// Map runs fn over [0, n) like ForEach and collects the results in
// input order: out[i] is fn's result for index i, independent of which
// worker computed it or when it finished. On error the partial results
// are discarded and the lowest-indexed task error is returned.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		n = 0
	}
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
