package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersClamping(t *testing.T) {
	cases := []struct {
		requested, n, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{4, 2, 2},
		{1, 100, 1},
		{8, 8, 8},
		{5, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		out, err := Map(context.Background(), workers, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, nil); err != nil {
		t.Fatalf("no tasks: %v", err)
	}
	out, err := Map(context.Background(), 4, 0, func(context.Context, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v, %v", out, err)
	}
}

// TestLowestIndexError verifies the deterministic error guarantee: when
// several tasks fail, the returned error is the lowest-indexed one —
// what a serial loop would have stopped at — regardless of scheduling.
func TestLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		for trial := 0; trial < 20; trial++ {
			err := ForEach(context.Background(), workers, 50, func(_ context.Context, i int) error {
				if i >= 7 && i%3 == 1 {
					return fmt.Errorf("task %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "task 7 failed" {
				t.Fatalf("workers=%d trial=%d: err = %v, want task 7", workers, trial, err)
			}
		}
	}
}

func TestErrorCancelsRemainingTasks(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	err := ForEach(context.Background(), 2, 1000, func(_ context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Errorf("all %d tasks ran despite early failure", n)
	}
}

func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEach(ctx, workers, 100, func(context.Context, int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if workers == 1 && ran.Load() != 0 {
			t.Errorf("serial path ran %d tasks under a cancelled context", ran.Load())
		}
	}
}

// TestSerialPathNoGoroutines pins the Workers=1 contract: tasks run on
// the calling goroutine, in order.
func TestSerialPathNoGoroutines(t *testing.T) {
	var order []int
	err := ForEach(context.Background(), 1, 10, func(_ context.Context, i int) error {
		order = append(order, i) // safe only if single-goroutine
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

// TestBoundedConcurrency checks that no more than `workers` tasks are
// ever in flight simultaneously.
func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := ForEach(context.Background(), workers, 200, func(context.Context, int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(50 * time.Microsecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestParentCancellationMidPool covers the cancellation-in-flight
// edge: a parent cancelled while workers are busy must stop issuing
// new tasks and surface context.Canceled, at every pool shape.
func TestParentCancellationMidPool(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEach(ctx, workers, 1000, func(_ context.Context, i int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n >= 1000 {
			t.Errorf("workers=%d: all %d tasks ran despite mid-pool cancellation", workers, n)
		}
	}
}

// TestZeroTasksCancelledContext pins the n==0 edge under a dead
// context: nothing to do still reports the cancellation rather than
// claiming success.
func TestZeroTasksCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		err := ForEach(ctx, workers, 0, func(context.Context, int) error { return nil })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: ForEach(ctx, 0) = %v, want context.Canceled", workers, err)
		}
	}
}

// TestMapPartialContinuesPastFailures pins the partial-coverage
// contract: per-task errors are recorded in place and never stop the
// pool.
func TestMapPartialContinuesPastFailures(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		out, errs, err := MapPartial(context.Background(), workers, 6,
			func(_ context.Context, i int) (int, error) {
				if i%2 == 1 {
					return 0, boom
				}
				return i * i, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: run error %v; per-task failures must not stop the pool", workers, err)
		}
		for i := 0; i < 6; i++ {
			if i%2 == 1 {
				if !errors.Is(errs[i], boom) {
					t.Errorf("workers=%d: errs[%d] = %v, want boom", workers, i, errs[i])
				}
			} else if errs[i] != nil || out[i] != i*i {
				t.Errorf("workers=%d: task %d = (%d, %v)", workers, i, out[i], errs[i])
			}
		}
	}
}

// TestMapPartialAbort covers the one per-task error that does stop the
// pool: an Abort-wrapped error aborts the run, unstarted tasks record
// ErrSkipped, and the lowest-indexed aborter wins deterministically.
func TestMapPartialAbort(t *testing.T) {
	cause := errors.New("preempted")
	for _, workers := range []int{1, 4} {
		_, errs, err := MapPartial(context.Background(), workers, 100,
			func(_ context.Context, i int) (int, error) {
				if i == 2 || i == 50 {
					return 0, Abort(fmt.Errorf("task %d: %w", i, cause))
				}
				return i, nil
			})
		if !errors.Is(err, cause) {
			t.Fatalf("workers=%d: err = %v, want the abort cause", workers, err)
		}
		var ae *AbortError
		if errors.As(err, &ae) {
			t.Fatalf("workers=%d: the run error is the unwrapped cause, not the marker", workers)
		}
		if !strings.Contains(err.Error(), "task 2") {
			t.Errorf("workers=%d: lowest-indexed aborter should win, got %v", workers, err)
		}
		skipped := 0
		for _, e := range errs {
			if errors.Is(e, ErrSkipped) {
				skipped++
			}
		}
		if workers == 1 && skipped != 97 {
			t.Errorf("serial abort at task 2 should skip 97 tasks, skipped %d", skipped)
		}
		if skipped == 0 {
			t.Errorf("workers=%d: an abort should leave unstarted tasks marked ErrSkipped", workers)
		}
	}
}

// TestMapPartialCancelledContext: a dead parent yields all-skipped
// tasks and the cancellation as the run error.
func TestMapPartialCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, errs, err := MapPartial(ctx, 4, 5, func(_ context.Context, i int) (int, error) {
		return i + 1, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := range errs {
		if !errors.Is(errs[i], ErrSkipped) {
			t.Errorf("errs[%d] = %v, want ErrSkipped", i, errs[i])
		}
		if out[i] != 0 {
			t.Errorf("out[%d] = %d for a skipped task", i, out[i])
		}
	}
}
