package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersClamping(t *testing.T) {
	cases := []struct {
		requested, n, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{4, 2, 2},
		{1, 100, 1},
		{8, 8, 8},
		{5, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		out, err := Map(context.Background(), workers, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, nil); err != nil {
		t.Fatalf("no tasks: %v", err)
	}
	out, err := Map(context.Background(), 4, 0, func(context.Context, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v, %v", out, err)
	}
}

// TestLowestIndexError verifies the deterministic error guarantee: when
// several tasks fail, the returned error is the lowest-indexed one —
// what a serial loop would have stopped at — regardless of scheduling.
func TestLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		for trial := 0; trial < 20; trial++ {
			err := ForEach(context.Background(), workers, 50, func(_ context.Context, i int) error {
				if i >= 7 && i%3 == 1 {
					return fmt.Errorf("task %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "task 7 failed" {
				t.Fatalf("workers=%d trial=%d: err = %v, want task 7", workers, trial, err)
			}
		}
	}
}

func TestErrorCancelsRemainingTasks(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	err := ForEach(context.Background(), 2, 1000, func(_ context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Errorf("all %d tasks ran despite early failure", n)
	}
}

func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEach(ctx, workers, 100, func(context.Context, int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if workers == 1 && ran.Load() != 0 {
			t.Errorf("serial path ran %d tasks under a cancelled context", ran.Load())
		}
	}
}

// TestSerialPathNoGoroutines pins the Workers=1 contract: tasks run on
// the calling goroutine, in order.
func TestSerialPathNoGoroutines(t *testing.T) {
	var order []int
	err := ForEach(context.Background(), 1, 10, func(_ context.Context, i int) error {
		order = append(order, i) // safe only if single-goroutine
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

// TestBoundedConcurrency checks that no more than `workers` tasks are
// ever in flight simultaneously.
func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := ForEach(context.Background(), workers, 200, func(context.Context, int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(50 * time.Microsecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}
