// Package dataset describes training datasets by their metadata. Only
// the sample count enters Ceer's training-time model (the D of
// Eq. (1)/(2)); image dimensions document what the zoo models consume.
package dataset

// Dataset is a training-set descriptor.
type Dataset struct {
	Name    string
	Samples int64
	// Height, Width, Channels describe one sample image.
	Height, Width, Channels int64
}

// ImageNet is the full ILSVRC-2012 training set used in Section V.
var ImageNet = Dataset{Name: "imagenet", Samples: 1_200_000, Height: 224, Width: 224, Channels: 3}

// ImageNetSubset6400 is the 6,400-sample subset used in the paper's
// data-parallel scaling study (Figure 6).
var ImageNetSubset6400 = Dataset{Name: "imagenet-6400", Samples: 6_400, Height: 224, Width: 224, Channels: 3}

// Iterations returns the number of iterations one epoch takes with k
// GPUs at per-GPU batch size b: D / (k·b), rounding up so every sample
// is processed.
func (d Dataset) Iterations(k int, b int64) int64 {
	if k < 1 || b < 1 {
		return 0
	}
	per := int64(k) * b
	return (d.Samples + per - 1) / per
}
