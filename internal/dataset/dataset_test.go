package dataset

import (
	"testing"
	"testing/quick"
)

func TestBuiltins(t *testing.T) {
	if ImageNet.Samples != 1_200_000 {
		t.Errorf("ImageNet samples = %d", ImageNet.Samples)
	}
	if ImageNetSubset6400.Samples != 6400 {
		t.Errorf("subset samples = %d", ImageNetSubset6400.Samples)
	}
}

func TestIterations(t *testing.T) {
	d := Dataset{Name: "d", Samples: 6400}
	cases := []struct {
		k    int
		b    int64
		want int64
	}{
		{1, 32, 200},
		{2, 32, 100},
		{4, 32, 50},
		{3, 32, 67}, // rounds up: 6400/96 = 66.7
		{1, 7, 915}, // 6400/7 = 914.3
		{0, 32, 0},  // invalid k
		{1, 0, 0},   // invalid batch
	}
	for _, c := range cases {
		if got := d.Iterations(c.k, c.b); got != c.want {
			t.Errorf("Iterations(%d, %d) = %d, want %d", c.k, c.b, got, c.want)
		}
	}
}

// Property: iterations cover the dataset — iterations·k·b >= samples,
// and removing one iteration would not.
func TestIterationsCoverProperty(t *testing.T) {
	f := func(samplesRaw uint32, kRaw, bRaw uint8) bool {
		samples := int64(samplesRaw%1_000_000) + 1
		k := int(kRaw%8) + 1
		b := int64(bRaw%128) + 1
		d := Dataset{Name: "d", Samples: samples}
		iters := d.Iterations(k, b)
		per := int64(k) * b
		if iters*per < samples {
			return false
		}
		return (iters-1)*per < samples
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
