package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Spec declaratively configures a fault Injector. The zero value
// injects nothing. Specs are loadable from a small JSON file (see
// LoadSpec) so a fault scenario can be version-controlled and replayed
// bit-for-bit.
type Spec struct {
	// Seed drives every injection draw. The injector derives one
	// independent stream per (stage, CNN, device, k) cell and one draw
	// per attempt, so whether a given attempt faults is a pure function
	// of (Seed, cell, attempt) — independent of worker count and
	// execution order.
	Seed uint64 `json:"seed"`

	// TransientRate is the probability that any single attempt fails
	// with a Transient fault (0 ≤ rate < 1).
	TransientRate float64 `json:"transient_rate,omitempty"`

	// PermanentRate is the probability that a cell fails permanently:
	// drawn once per cell (not per attempt), so a permanently faulted
	// cell fails every attempt.
	PermanentRate float64 `json:"permanent_rate,omitempty"`

	// PermanentDevices lists device IDs whose every cell fails with a
	// Permanent fault — the "this GPU model is broken for us" scenario.
	PermanentDevices []string `json:"permanent_devices,omitempty"`

	// StragglerRate is the probability that an attempt is a straggler:
	// it is delayed by StragglerDelayMS before proceeding (the attempt
	// itself still succeeds or fails per the rates above).
	StragglerRate float64 `json:"straggler_rate,omitempty"`

	// StragglerDelayMS is the injected straggler latency, milliseconds.
	StragglerDelayMS int `json:"straggler_delay_ms,omitempty"`

	// Preempt lists deterministic preemption points: when the named
	// cell reaches the given attempt number, the injector returns a
	// Preempted fault, which aborts the whole campaign. A checkpointed
	// campaign resumes past the preemption because the interrupted
	// cell's consumed attempts are recorded — the resumed cell starts at
	// a later attempt and the preemption point never matches again.
	Preempt []PreemptPoint `json:"preempt,omitempty"`
}

// PreemptPoint is one deterministic preemption trigger.
type PreemptPoint struct {
	// Stage is the campaign stage ("profile" or "comm"); empty matches
	// any stage.
	Stage string `json:"stage,omitempty"`
	// CNN and Device name the cell; empty matches any.
	CNN    string `json:"cnn,omitempty"`
	Device string `json:"device,omitempty"`
	// K is the GPU count of a comm cell (0 = profile cells / any k).
	K int `json:"k,omitempty"`
	// Attempt is the attempt number (1-based) the preemption fires on.
	Attempt int `json:"attempt"`
}

// Validate checks the spec's rates and preemption points.
func (s *Spec) Validate() error {
	check := func(name string, rate float64) error {
		if rate < 0 || rate >= 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1)", name, rate)
		}
		return nil
	}
	if err := check("transient_rate", s.TransientRate); err != nil {
		return err
	}
	if err := check("permanent_rate", s.PermanentRate); err != nil {
		return err
	}
	if err := check("straggler_rate", s.StragglerRate); err != nil {
		return err
	}
	if s.StragglerDelayMS < 0 {
		return fmt.Errorf("faults: straggler_delay_ms %d is negative", s.StragglerDelayMS)
	}
	for i, p := range s.Preempt {
		if p.Attempt < 1 {
			return fmt.Errorf("faults: preempt[%d] attempt %d; attempts are 1-based", i, p.Attempt)
		}
	}
	return nil
}

// Enabled reports whether the spec injects anything at all.
func (s *Spec) Enabled() bool {
	if s == nil {
		return false
	}
	return s.TransientRate > 0 || s.PermanentRate > 0 || len(s.PermanentDevices) > 0 ||
		s.StragglerRate > 0 || len(s.Preempt) > 0
}

// ParseSpec decodes and validates a JSON spec.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faults: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads a spec from a JSON file.
func LoadSpec(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errdrop read-side close; there are no buffered writes to lose
	defer f.Close()
	s, err := ParseSpec(f)
	if err != nil {
		return nil, fmt.Errorf("faults: spec %s: %w", path, err)
	}
	return s, nil
}
