// Package faults is the failure model of the measurement campaign: a
// typed error taxonomy for classifying what went wrong, and a
// deterministic, seeded fault injector for making it go wrong on
// purpose.
//
// Cloud measurement campaigns run in an environment where transient
// profiling failures, stragglers, and instance preemption are the norm
// ("Characterizing and Modeling Distributed Training with Transient
// Cloud GPU Servers" models exactly this regime). The campaign code in
// internal/ceer and internal/sim classifies every cell failure into one
// of three classes and reacts per class:
//
//   - Transient: worth retrying (a profiling hiccup, a flaky kernel
//     launch). The retry layer (internal/retry) backs off and retries
//     within a per-cell attempt budget.
//   - Permanent: retrying cannot help (a device that consistently
//     fails, a configuration error). The cell is recorded as missing
//     and the campaign degrades gracefully around it.
//   - Preempted: the instance running the campaign went away. The whole
//     campaign aborts — and resumes from its checkpoint.
//
// Classes are discriminated with errors.Is against the Transient /
// Permanent / Preempted sentinels (or errors.As against *Error), so
// classification survives any amount of fmt.Errorf("...: %w") wrapping
// on the way up the stack.
package faults

import (
	"errors"
	"fmt"
)

// Sentinel classes. Every fault error matches exactly one of these via
// errors.Is; use them to branch on failure class without caring about
// the concrete error value.
var (
	// Transient marks failures that a retry may cure.
	Transient = errors.New("transient fault")
	// Permanent marks failures that no retry can cure.
	Permanent = errors.New("permanent fault")
	// Preempted marks the loss of the instance running the campaign.
	Preempted = errors.New("instance preempted")
)

// Error is a classified fault. It wraps an optional cause and matches
// its class sentinel under errors.Is.
type Error struct {
	// Class is the matching sentinel: Transient, Permanent, or
	// Preempted.
	Class error
	// Msg describes what failed.
	Msg string
	// Err is the underlying cause, if any.
	Err error
}

// Error renders "msg (class)". Msg already includes the rendered
// cause when one was wrapped in.
func (e *Error) Error() string {
	return e.Msg + " (" + e.Class.Error() + ")"
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }

// Is matches the error's class sentinel.
func (e *Error) Is(target error) bool { return target == e.Class }

// Transientf builds a Transient-class fault.
func Transientf(format string, args ...any) error {
	return newError(Transient, format, args...)
}

// Permanentf builds a Permanent-class fault.
func Permanentf(format string, args ...any) error {
	return newError(Permanent, format, args...)
}

// Preemptedf builds a Preempted-class fault.
func Preemptedf(format string, args ...any) error {
	return newError(Preempted, format, args...)
}

// newError splits a trailing %w cause out of the formatted message so
// Unwrap chains reach it.
func newError(class error, format string, args ...any) error {
	wrapped := fmt.Errorf(format, args...)
	return &Error{Class: class, Msg: wrapped.Error(), Err: errors.Unwrap(wrapped)}
}

// IsTransient reports whether err carries the Transient class.
func IsTransient(err error) bool { return errors.Is(err, Transient) }

// IsPermanent reports whether err carries the Permanent class.
func IsPermanent(err error) bool { return errors.Is(err, Permanent) }

// IsPreempted reports whether err carries the Preempted class.
func IsPreempted(err error) bool { return errors.Is(err, Preempted) }
