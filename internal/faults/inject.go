package faults

import (
	"hash/fnv"
	"strconv"
	"time"

	"ceer/internal/rng"
)

// Op identifies one attempt at one campaign cell — the unit of fault
// injection.
type Op struct {
	// Stage is the campaign stage: "profile" or "comm".
	Stage string
	// CNN and Device name the cell.
	CNN    string
	Device string
	// K is the GPU count of a comm cell (0 for profile cells).
	K int
	// Attempt is the 1-based attempt number at this cell.
	Attempt int
}

// CellKey renders the cell identity (without the attempt), the stable
// key used by checkpoints and retry jitter streams.
func (o Op) CellKey() string {
	key := o.Stage + "/" + o.CNN + "/" + o.Device
	if o.K > 0 {
		key += "/" + strconv.Itoa(o.K)
	}
	return key
}

// Injector produces deterministic faults per a Spec. A nil Injector
// injects nothing, so callers need no guard. All draws derive from
// (Spec.Seed, cell, attempt) with no shared stream state, so injection
// outcomes are independent of goroutine scheduling: the same spec and
// seed produce the same faults at any worker count.
type Injector struct {
	spec Spec
}

// NewInjector validates the spec and builds an injector for it.
func NewInjector(spec *Spec) (*Injector, error) {
	if spec == nil {
		return nil, nil
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Injector{spec: *spec}, nil
}

// Spec returns a copy of the injector's configuration.
func (in *Injector) Spec() Spec {
	if in == nil {
		return Spec{}
	}
	return in.spec
}

// hashString mirrors the campaign's stream-derivation discipline
// (FNV-1a over the key, xor-folded into the seed).
func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // fnv Write never fails
	return h.Sum64()
}

// permanentLabel separates the cell-scoped permanent draw from the
// attempt-scoped streams (attempts are labeled 1, 2, ...).
const permanentLabel = 0xD1E0FF

// cellStream derives the per-cell draw stream.
func (in *Injector) cellStream(o Op) *rng.Source {
	return rng.New(in.spec.Seed ^ hashString(o.CellKey()))
}

// Inject decides the fate of one attempt. It returns the straggler
// delay to impose before the attempt runs (0 for non-stragglers) and
// the fault the attempt suffers, or nil if it proceeds normally. The
// decision is a pure function of (spec, op).
func (in *Injector) Inject(o Op) (time.Duration, error) {
	if in == nil {
		return 0, nil
	}
	for _, d := range in.spec.PermanentDevices {
		if d == o.Device {
			return 0, Permanentf("injected: device %s configured to fail", o.Device)
		}
	}
	for _, p := range in.spec.Preempt {
		if p.Attempt == o.Attempt &&
			(p.Stage == "" || p.Stage == o.Stage) &&
			(p.CNN == "" || p.CNN == o.CNN) &&
			(p.Device == "" || p.Device == o.Device) &&
			(p.K == 0 || p.K == o.K) {
			return 0, Preemptedf("injected: instance preempted at %s attempt %d", o.CellKey(), o.Attempt)
		}
	}
	cell := in.cellStream(o)
	// Cell-scoped permanent draw: attempt-independent, so a permanently
	// faulted cell fails on every attempt.
	if in.spec.PermanentRate > 0 && cell.Derive(permanentLabel).Float64() < in.spec.PermanentRate {
		return 0, Permanentf("injected: cell %s failed permanently", o.CellKey())
	}
	// Attempt-scoped draws: one independent stream per attempt.
	att := cell.Derive(uint64(o.Attempt))
	var delay time.Duration
	if in.spec.StragglerRate > 0 && att.Derive(1).Float64() < in.spec.StragglerRate {
		delay = time.Duration(in.spec.StragglerDelayMS) * time.Millisecond
	}
	if in.spec.TransientRate > 0 && att.Derive(2).Float64() < in.spec.TransientRate {
		return delay, Transientf("injected: transient failure at %s attempt %d", o.CellKey(), o.Attempt)
	}
	return delay, nil
}
