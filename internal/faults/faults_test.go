package faults

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestErrorTaxonomy(t *testing.T) {
	cases := []struct {
		err   error
		class error
	}{
		{Transientf("profiling hiccup"), Transient},
		{Permanentf("bad config"), Permanent},
		{Preemptedf("spot reclaim"), Preempted},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.class) {
			t.Errorf("%v should match its class sentinel", c.err)
		}
		for _, other := range []error{Transient, Permanent, Preempted} {
			if other != c.class && errors.Is(c.err, other) {
				t.Errorf("%v must not match foreign class %v", c.err, other)
			}
		}
		// Classification must survive wrapping.
		wrapped := fmt.Errorf("campaign cell vgg-11/t4: %w", c.err)
		if !errors.Is(wrapped, c.class) {
			t.Errorf("wrapped %v lost its class", wrapped)
		}
		var fe *Error
		if !errors.As(wrapped, &fe) || fe.Class != c.class {
			t.Errorf("errors.As failed to recover *Error from %v", wrapped)
		}
	}
}

func TestErrorWrapsCause(t *testing.T) {
	cause := errors.New("kernel launch failed")
	err := Transientf("profiling %s: %w", "resnet-50", cause)
	if !errors.Is(err, cause) {
		t.Error("cause should be reachable through Unwrap")
	}
	if !errors.Is(err, Transient) {
		t.Error("class lost when wrapping a cause")
	}
	if msg := err.Error(); !strings.Contains(msg, "kernel launch failed") || !strings.Contains(msg, "transient fault") {
		t.Errorf("message %q should carry both cause and class", msg)
	}
}

func TestClassHelpers(t *testing.T) {
	if !IsTransient(Transientf("x")) || IsTransient(Permanentf("x")) {
		t.Error("IsTransient misclassifies")
	}
	if !IsPermanent(Permanentf("x")) || IsPermanent(Preemptedf("x")) {
		t.Error("IsPermanent misclassifies")
	}
	if !IsPreempted(Preemptedf("x")) || IsPreempted(errors.New("plain")) {
		t.Error("IsPreempted misclassifies")
	}
}

func TestOpCellKey(t *testing.T) {
	p := Op{Stage: "profile", CNN: "vgg-11", Device: "t4", Attempt: 3}
	if got := p.CellKey(); got != "profile/vgg-11/t4" {
		t.Errorf("profile cell key = %q", got)
	}
	c := Op{Stage: "comm", CNN: "vgg-11", Device: "t4", K: 4, Attempt: 1}
	if got := c.CellKey(); got != "comm/vgg-11/t4/4" {
		t.Errorf("comm cell key = %q", got)
	}
	// The key must not depend on the attempt: it identifies the cell.
	p2 := p
	p2.Attempt = 9
	if p.CellKey() != p2.CellKey() {
		t.Error("cell key must be attempt-independent")
	}
}

func TestInjectDeterministic(t *testing.T) {
	in, err := NewInjector(&Spec{Seed: 7, TransientRate: 0.3, StragglerRate: 0.2, StragglerDelayMS: 5})
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{
		{Stage: "profile", CNN: "vgg-11", Device: "t4", Attempt: 1},
		{Stage: "profile", CNN: "vgg-11", Device: "t4", Attempt: 2},
		{Stage: "comm", CNN: "resnet-50", Device: "v100", K: 2, Attempt: 1},
	}
	for _, o := range ops {
		d1, e1 := in.Inject(o)
		d2, e2 := in.Inject(o)
		if d1 != d2 || (e1 == nil) != (e2 == nil) {
			t.Errorf("Inject(%+v) is not a pure function: (%v,%v) vs (%v,%v)", o, d1, e1, d2, e2)
		}
	}
	// A fresh injector over the same spec must agree draw for draw.
	in2, err := NewInjector(&Spec{Seed: 7, TransientRate: 0.3, StragglerRate: 0.2, StragglerDelayMS: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range ops {
		d1, e1 := in.Inject(o)
		d2, e2 := in2.Inject(o)
		if d1 != d2 || (e1 == nil) != (e2 == nil) {
			t.Errorf("independent injectors disagree on %+v", o)
		}
	}
}

func TestInjectTransientRateEmpirical(t *testing.T) {
	in, err := NewInjector(&Spec{Seed: 99, TransientRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	faulted := 0
	const n = 2000
	for i := 0; i < n; i++ {
		o := Op{Stage: "profile", CNN: fmt.Sprintf("cnn-%d", i), Device: "t4", Attempt: 1}
		if _, err := in.Inject(o); err != nil {
			if !IsTransient(err) {
				t.Fatalf("unexpected class: %v", err)
			}
			faulted++
		}
	}
	got := float64(faulted) / n
	if got < 0.07 || got > 0.13 {
		t.Errorf("empirical transient rate %.3f far from configured 0.1", got)
	}
}

func TestInjectPermanentDevice(t *testing.T) {
	in, err := NewInjector(&Spec{Seed: 1, PermanentDevices: []string{"m60"}})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 3; attempt++ {
		_, err := in.Inject(Op{Stage: "profile", CNN: "vgg-11", Device: "m60", Attempt: attempt})
		if !IsPermanent(err) {
			t.Errorf("attempt %d on a condemned device should fail permanently, got %v", attempt, err)
		}
	}
	if _, err := in.Inject(Op{Stage: "profile", CNN: "vgg-11", Device: "t4", Attempt: 1}); err != nil {
		t.Errorf("other devices must be unaffected, got %v", err)
	}
}

func TestInjectPermanentCellIsAttemptIndependent(t *testing.T) {
	in, err := NewInjector(&Spec{Seed: 3, PermanentRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Whatever a cell's fate, it must be the same on every attempt.
	for i := 0; i < 50; i++ {
		o := Op{Stage: "profile", CNN: fmt.Sprintf("cnn-%d", i), Device: "t4"}
		o.Attempt = 1
		_, e1 := in.Inject(o)
		o.Attempt = 5
		_, e5 := in.Inject(o)
		if IsPermanent(e1) != IsPermanent(e5) {
			t.Fatalf("cell %d changes permanent fate across attempts", i)
		}
	}
}

func TestInjectPreemptPoint(t *testing.T) {
	in, err := NewInjector(&Spec{Seed: 1, Preempt: []PreemptPoint{
		{Stage: "profile", CNN: "vgg-11", Device: "t4", Attempt: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Inject(Op{Stage: "profile", CNN: "vgg-11", Device: "t4", Attempt: 1}); err != nil {
		t.Errorf("attempt 1 should pass, got %v", err)
	}
	if _, err := in.Inject(Op{Stage: "profile", CNN: "vgg-11", Device: "t4", Attempt: 2}); !IsPreempted(err) {
		t.Errorf("attempt 2 should preempt, got %v", err)
	}
	// Attempt 3 — a resumed campaign past the point — must not refire.
	if _, err := in.Inject(Op{Stage: "profile", CNN: "vgg-11", Device: "t4", Attempt: 3}); err != nil {
		t.Errorf("attempt 3 should pass (preemption fires once), got %v", err)
	}
	// Wildcards: empty fields match anything.
	wild, err := NewInjector(&Spec{Seed: 1, Preempt: []PreemptPoint{{Attempt: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wild.Inject(Op{Stage: "comm", CNN: "x", Device: "y", K: 2, Attempt: 1}); !IsPreempted(err) {
		t.Errorf("wildcard preempt point should match any cell, got %v", err)
	}
}

func TestInjectStragglerDelay(t *testing.T) {
	in, err := NewInjector(&Spec{Seed: 5, StragglerRate: 0.5, StragglerDelayMS: 25})
	if err != nil {
		t.Fatal(err)
	}
	sawDelay := false
	for i := 0; i < 40 && !sawDelay; i++ {
		d, err := in.Inject(Op{Stage: "profile", CNN: fmt.Sprintf("cnn-%d", i), Device: "t4", Attempt: 1})
		if err != nil {
			continue
		}
		if d != 0 {
			if d != 25*time.Millisecond {
				t.Fatalf("straggler delay = %v, want 25ms", d)
			}
			sawDelay = true
		}
	}
	if !sawDelay {
		t.Error("a 50% straggler rate produced no stragglers in 40 cells")
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	d, err := in.Inject(Op{Stage: "profile", CNN: "vgg-11", Device: "t4", Attempt: 1})
	if d != 0 || err != nil {
		t.Errorf("nil injector must inject nothing, got (%v, %v)", d, err)
	}
	in2, err := NewInjector(nil)
	if err != nil || in2 != nil {
		t.Errorf("NewInjector(nil) = (%v, %v), want (nil, nil)", in2, err)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{TransientRate: -0.1},
		{TransientRate: 1.0},
		{PermanentRate: 1.5},
		{StragglerRate: -1},
		{StragglerDelayMS: -5},
		{Preempt: []PreemptPoint{{Attempt: 0}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be rejected: %+v", i, s)
		}
		if _, err := NewInjector(&s); err == nil {
			t.Errorf("NewInjector should reject spec %d", i)
		}
	}
	good := Spec{Seed: 1, TransientRate: 0.999, StragglerRate: 0.5, StragglerDelayMS: 1,
		Preempt: []PreemptPoint{{Attempt: 1}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestSpecEnabled(t *testing.T) {
	var nilSpec *Spec
	if nilSpec.Enabled() {
		t.Error("nil spec must be disabled")
	}
	if (&Spec{Seed: 42}).Enabled() {
		t.Error("a seed alone injects nothing")
	}
	enabled := []Spec{
		{TransientRate: 0.1},
		{PermanentRate: 0.1},
		{PermanentDevices: []string{"m60"}},
		{StragglerRate: 0.1},
		{Preempt: []PreemptPoint{{Attempt: 1}}},
	}
	for i, s := range enabled {
		if !s.Enabled() {
			t.Errorf("spec %d should be enabled: %+v", i, s)
		}
	}
}

// eqExact reports a == b. Exact float equality is the contract under
// test here: a parsed spec must carry its JSON rates verbatim.
func eqExact(a, b float64) bool { return a == b }

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec(strings.NewReader(
		`{"seed": 9, "transient_rate": 0.1, "preempt": [{"stage": "profile", "attempt": 2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 9 || !eqExact(s.TransientRate, 0.1) || len(s.Preempt) != 1 || s.Preempt[0].Attempt != 2 {
		t.Errorf("parsed spec wrong: %+v", s)
	}
	if _, err := ParseSpec(strings.NewReader(`{"transient_rate": 2}`)); err == nil {
		t.Error("out-of-range rate should be rejected")
	}
	if _, err := ParseSpec(strings.NewReader(`{"transientrate": 0.1}`)); err == nil {
		t.Error("unknown fields should be rejected (typo protection)")
	}
	if _, err := ParseSpec(strings.NewReader(`{nope`)); err == nil {
		t.Error("malformed JSON should be rejected")
	}
}
