package zoo

import (
	"ceer/internal/graph"
	"ceer/internal/nn"
	"ceer/internal/tensor"
)

// resnetUnits maps a variant to its per-stage bottleneck-unit counts
// (He et al., "Identity Mappings in Deep Residual Networks", the v2
// pre-activation form).
var resnetUnits = map[string][4]int{
	"resnet-50":  {3, 4, 6, 3},
	"resnet-101": {3, 4, 23, 3},
	"resnet-152": {3, 8, 36, 3},
	"resnet-200": {3, 24, 36, 3},
}

// bottleneckV2 emits one pre-activation bottleneck unit: BN→ReLU
// pre-activation, a 1×1 reduce, 3×3 (with the unit's stride), and 1×1
// expand path, plus an identity or 1×1-projection shortcut.
func bottleneckV2(b *nn.Builder, x nn.Tensor, base, stride int64) nn.Tensor {
	outC := 4 * base
	preact := b.ReLU(b.BatchNorm(x))

	var shortcut nn.Tensor
	if x.Spec().Shape.Dim(3) != outC || stride != 1 {
		shortcut = b.ConvSq(preact, outC, 1, stride, tensor.Same)
	} else {
		shortcut = x
	}

	r := convBNSq(b, preact, base, 1, 1, tensor.Same)
	// The pre-activation for the 1×1 was applied above; the inner convs
	// carry their own BN+ReLU per the v2 formulation.
	r = convBNSq(b, r, base, 3, stride, tensor.Same)
	r = b.ConvSq(r, outC, 1, 1, tensor.Same)

	return b.Add(shortcut, r)
}

func buildResNetV2(name string, batch int64) (*graph.Graph, error) {
	units := resnetUnits[name]
	b := nn.NewBuilder(name, batch)
	x := b.Input(224, 224, 3)

	// Stem: 7×7/2 conv, then 3×3/2 max pool.
	x = b.ConvSq(x, 64, 7, 2, tensor.Same) // 112×112×64
	x = b.MaxPool(x, 3, 2, tensor.Same)    // 56×56×64

	bases := [4]int64{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		for unit := 0; unit < units[stage]; unit++ {
			stride := int64(1)
			// Downsample entering stages 2–4.
			if stage > 0 && unit == 0 {
				stride = 2
			}
			x = bottleneckV2(b, x, bases[stage], stride)
		}
	}

	// Head: final pre-activation, global average pool, classifier.
	x = b.ReLU(b.BatchNorm(x))
	x = b.GlobalAvgPool(x)
	x = b.Squeeze(x)
	x = b.Dense(x, ImageNetClasses)
	b.SoftmaxLoss(x)
	return b.Finish()
}

// ResNet50 builds ResNet-v2-50 (~25.6M params; training set).
func ResNet50(batch int64) (*graph.Graph, error) { return buildResNetV2("resnet-50", batch) }

// ResNet101 builds ResNet-v2-101 (~44.6M params; one of the paper's four
// held-out test CNNs).
func ResNet101(batch int64) (*graph.Graph, error) { return buildResNetV2("resnet-101", batch) }

// ResNet152 builds ResNet-v2-152 (~60.3M params; training set).
func ResNet152(batch int64) (*graph.Graph, error) { return buildResNetV2("resnet-152", batch) }

// ResNet200 builds ResNet-v2-200 (~64.8M params; training set).
func ResNet200(batch int64) (*graph.Graph, error) { return buildResNetV2("resnet-200", batch) }
