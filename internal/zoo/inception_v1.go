package zoo

import (
	"ceer/internal/graph"
	"ceer/internal/nn"
	"ceer/internal/tensor"
)

// inceptionV1Module emits one GoogLeNet inception module with the
// classic four branches: 1×1, 1×1→3×3, 1×1→3×3 (the TF-slim rendition
// replaces the original 5×5 with 3×3), and 3×3-maxpool→1×1.
func inceptionV1Module(b *nn.Builder, x nn.Tensor, c1, c2r, c2, c3r, c3, c4 int64) nn.Tensor {
	b1 := convBNSq(b, x, c1, 1, 1, tensor.Same)

	b2 := convBNSq(b, x, c2r, 1, 1, tensor.Same)
	b2 = convBNSq(b, b2, c2, 3, 1, tensor.Same)

	b3 := convBNSq(b, x, c3r, 1, 1, tensor.Same)
	b3 = convBNSq(b, b3, c3, 3, 1, tensor.Same)

	b4 := b.MaxPool(x, 3, 1, tensor.Same)
	b4 = convBNSq(b, b4, c4, 1, 1, tensor.Same)

	return b.Concat(b1, b2, b3, b4)
}

// InceptionV1 builds GoogLeNet (Szegedy et al., 2014) in its
// batch-normalized TF-slim form, ~6.6M parameters; training set. Its
// small parameter count makes it the paper's canonical subject for the
// data-parallel scaling study (Figure 6).
func InceptionV1(batch int64) (*graph.Graph, error) {
	b := nn.NewBuilder("inception-v1", batch)
	x := b.Input(224, 224, 3)

	x = convBNSq(b, x, 64, 7, 2, tensor.Same) // 112×112×64
	x = b.MaxPool(x, 3, 2, tensor.Same)       // 56×56×64
	x = convBNSq(b, x, 64, 1, 1, tensor.Same)
	x = convBNSq(b, x, 192, 3, 1, tensor.Same)
	x = b.MaxPool(x, 3, 2, tensor.Same) // 28×28×192

	x = inceptionV1Module(b, x, 64, 96, 128, 16, 32, 32)   // 3a -> 256
	x = inceptionV1Module(b, x, 128, 128, 192, 32, 96, 64) // 3b -> 480
	x = b.MaxPool(x, 3, 2, tensor.Same)                    // 14×14×480

	x = inceptionV1Module(b, x, 192, 96, 208, 16, 48, 64)    // 4a
	x = inceptionV1Module(b, x, 160, 112, 224, 24, 64, 64)   // 4b
	x = inceptionV1Module(b, x, 128, 128, 256, 24, 64, 64)   // 4c
	x = inceptionV1Module(b, x, 112, 144, 288, 32, 64, 64)   // 4d
	x = inceptionV1Module(b, x, 256, 160, 320, 32, 128, 128) // 4e -> 832
	x = b.MaxPool(x, 3, 2, tensor.Same)                      // 7×7×832

	x = inceptionV1Module(b, x, 256, 160, 320, 32, 128, 128) // 5a
	x = inceptionV1Module(b, x, 384, 192, 384, 48, 128, 128) // 5b -> 1024

	x = b.AvgPool(x, 7, 1, tensor.Valid) // 1×1×1024
	x = b.Squeeze(x)
	x = b.Dense(x, ImageNetClasses)
	b.SoftmaxLoss(x)
	return b.Finish()
}
