package zoo

import (
	"ceer/internal/graph"
	"ceer/internal/nn"
	"ceer/internal/tensor"
)

// inceptionV4Stem emits the shared Inception-v4 / Inception-ResNet-v2
// stem, taking 299×299×3 to 35×35×384 through three concat joins.
func inceptionV4Stem(b *nn.Builder, x nn.Tensor) nn.Tensor {
	x = convBNSq(b, x, 32, 3, 2, tensor.Valid) // 149×149×32
	x = convBNSq(b, x, 32, 3, 1, tensor.Valid) // 147×147×32
	x = convBNSq(b, x, 64, 3, 1, tensor.Same)  // 147×147×64

	p1 := b.MaxPool(x, 3, 2, tensor.Valid)       // 73×73×64
	c1 := convBNSq(b, x, 96, 3, 2, tensor.Valid) // 73×73×96
	x = b.Concat(p1, c1)                         // 73×73×160

	a := convBNSq(b, x, 64, 1, 1, tensor.Same)
	a = convBNSq(b, a, 96, 3, 1, tensor.Valid) // 71×71×96

	c := convBNSq(b, x, 64, 1, 1, tensor.Same)
	c = convBN(b, c, 64, 7, 1, 1, tensor.Same)
	c = convBN(b, c, 64, 1, 7, 1, tensor.Same)
	c = convBNSq(b, c, 96, 3, 1, tensor.Valid) // 71×71×96
	x = b.Concat(a, c)                         // 71×71×192

	d := convBNSq(b, x, 192, 3, 2, tensor.Valid) // 35×35×192
	p2 := b.MaxPool(x, 3, 2, tensor.Valid)       // 35×35×192
	return b.Concat(d, p2)                       // 35×35×384
}

// InceptionV4 builds Inception-v4 (Szegedy et al., 2016), ~42.7M
// parameters; training set.
func InceptionV4(batch int64) (*graph.Graph, error) {
	b := nn.NewBuilder("inception-v4", batch)
	x := b.Input(299, 299, 3)
	x = inceptionV4Stem(b, x)

	// 4 × Inception-A.
	for i := 0; i < 4; i++ {
		x = inceptionA4(b, x)
	}
	// Reduction-A with (k, l, m, n) = (192, 224, 256, 384).
	x = reductionA4(b, x) // 17×17×1024

	// 7 × Inception-B.
	for i := 0; i < 7; i++ {
		x = inceptionB4(b, x)
	}
	x = reductionB4(b, x) // 8×8×1536

	// 3 × Inception-C.
	for i := 0; i < 3; i++ {
		x = inceptionC4(b, x)
	}

	x = b.AvgPool(x, 8, 1, tensor.Valid) // 1×1×1536
	x = b.Squeeze(x)
	x = b.Dense(x, ImageNetClasses)
	b.SoftmaxLoss(x)
	return b.Finish()
}

func inceptionA4(b *nn.Builder, x nn.Tensor) nn.Tensor {
	b1 := convBNSq(b, x, 96, 1, 1, tensor.Same)

	b2 := convBNSq(b, x, 64, 1, 1, tensor.Same)
	b2 = convBNSq(b, b2, 96, 3, 1, tensor.Same)

	b3 := convBNSq(b, x, 64, 1, 1, tensor.Same)
	b3 = convBNSq(b, b3, 96, 3, 1, tensor.Same)
	b3 = convBNSq(b, b3, 96, 3, 1, tensor.Same)

	b4 := b.AvgPool(x, 3, 1, tensor.Same)
	b4 = convBNSq(b, b4, 96, 1, 1, tensor.Same)

	return b.Concat(b1, b2, b3, b4) // 384
}

func reductionA4(b *nn.Builder, x nn.Tensor) nn.Tensor {
	b1 := convBNSq(b, x, 384, 3, 2, tensor.Valid)

	b2 := convBNSq(b, x, 192, 1, 1, tensor.Same)
	b2 = convBNSq(b, b2, 224, 3, 1, tensor.Same)
	b2 = convBNSq(b, b2, 256, 3, 2, tensor.Valid)

	b3 := b.MaxPool(x, 3, 2, tensor.Valid)

	return b.Concat(b1, b2, b3) // 384+256+384 = 1024
}

func inceptionB4(b *nn.Builder, x nn.Tensor) nn.Tensor {
	b1 := convBNSq(b, x, 384, 1, 1, tensor.Same)

	b2 := convBNSq(b, x, 192, 1, 1, tensor.Same)
	b2 = convBN(b, b2, 224, 1, 7, 1, tensor.Same)
	b2 = convBN(b, b2, 256, 7, 1, 1, tensor.Same)

	b3 := convBNSq(b, x, 192, 1, 1, tensor.Same)
	b3 = convBN(b, b3, 192, 7, 1, 1, tensor.Same)
	b3 = convBN(b, b3, 224, 1, 7, 1, tensor.Same)
	b3 = convBN(b, b3, 224, 7, 1, 1, tensor.Same)
	b3 = convBN(b, b3, 256, 1, 7, 1, tensor.Same)

	b4 := b.AvgPool(x, 3, 1, tensor.Same)
	b4 = convBNSq(b, b4, 128, 1, 1, tensor.Same)

	return b.Concat(b1, b2, b3, b4) // 1024
}

func reductionB4(b *nn.Builder, x nn.Tensor) nn.Tensor {
	b1 := convBNSq(b, x, 192, 1, 1, tensor.Same)
	b1 = convBNSq(b, b1, 192, 3, 2, tensor.Valid)

	b2 := convBNSq(b, x, 256, 1, 1, tensor.Same)
	b2 = convBN(b, b2, 256, 1, 7, 1, tensor.Same)
	b2 = convBN(b, b2, 320, 7, 1, 1, tensor.Same)
	b2 = convBNSq(b, b2, 320, 3, 2, tensor.Valid)

	b3 := b.MaxPool(x, 3, 2, tensor.Valid)

	return b.Concat(b1, b2, b3) // 192+320+1024 = 1536
}

func inceptionC4(b *nn.Builder, x nn.Tensor) nn.Tensor {
	b1 := convBNSq(b, x, 256, 1, 1, tensor.Same)

	b2 := convBNSq(b, x, 384, 1, 1, tensor.Same)
	b2a := convBN(b, b2, 256, 1, 3, 1, tensor.Same)
	b2b := convBN(b, b2, 256, 3, 1, 1, tensor.Same)

	b3 := convBNSq(b, x, 384, 1, 1, tensor.Same)
	b3 = convBN(b, b3, 448, 3, 1, 1, tensor.Same)
	b3 = convBN(b, b3, 512, 1, 3, 1, tensor.Same)
	b3a := convBN(b, b3, 256, 1, 3, 1, tensor.Same)
	b3b := convBN(b, b3, 256, 3, 1, 1, tensor.Same)

	b4 := b.AvgPool(x, 3, 1, tensor.Same)
	b4 = convBNSq(b, b4, 256, 1, 1, tensor.Same)

	return b.Concat(b1, b2a, b2b, b3a, b3b, b4) // 1536
}
