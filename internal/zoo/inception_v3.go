package zoo

import (
	"ceer/internal/graph"
	"ceer/internal/nn"
	"ceer/internal/tensor"
)

// InceptionV3 builds Inception-v3 (Szegedy et al., 2015; the paper's
// Figure 1 DAG), ~23.9M parameters, on 299×299 inputs. Inception-v3 is
// one of the paper's four held-out test CNNs; its many pooling
// operations make it a case where the P3 (V100) instance is
// cost-optimal (Section V).
func InceptionV3(batch int64) (*graph.Graph, error) {
	b := nn.NewBuilder("inception-v3", batch)
	x := b.Input(299, 299, 3)

	// Stem.
	x = convBNSq(b, x, 32, 3, 2, tensor.Valid) // 149×149×32
	x = convBNSq(b, x, 32, 3, 1, tensor.Valid) // 147×147×32
	x = convBNSq(b, x, 64, 3, 1, tensor.Same)  // 147×147×64
	x = b.MaxPool(x, 3, 2, tensor.Valid)       // 73×73×64
	x = convBNSq(b, x, 80, 1, 1, tensor.Valid)
	x = convBNSq(b, x, 192, 3, 1, tensor.Valid) // 71×71×192
	x = b.MaxPool(x, 3, 2, tensor.Valid)        // 35×35×192

	// 3 × Inception-A (5b, 5c, 5d).
	for _, poolC := range []int64{32, 64, 64} {
		x = inceptionA3(b, x, poolC)
	}

	// Reduction-A (6a): 35×35 → 17×17.
	x = reductionA3(b, x)

	// 4 × Inception-B (6b–6e) with factorized 7×7 convolutions.
	for _, c7 := range []int64{128, 160, 160, 192} {
		x = inceptionB3(b, x, c7)
	}

	// Reduction-B (7a): 17×17 → 8×8.
	x = reductionB3(b, x)

	// 2 × Inception-C (7b, 7c).
	x = inceptionC3(b, x)
	x = inceptionC3(b, x)

	// Head.
	x = b.AvgPool(x, 8, 1, tensor.Valid) // 1×1×2048
	x = b.Squeeze(x)
	x = b.Dense(x, ImageNetClasses)
	b.SoftmaxLoss(x)
	return b.Finish()
}

// inceptionA3 is the 35×35 module: 1×1, 1×1→5×5, 1×1→3×3→3×3, and
// avgpool→1×1 branches.
func inceptionA3(b *nn.Builder, x nn.Tensor, poolC int64) nn.Tensor {
	b1 := convBNSq(b, x, 64, 1, 1, tensor.Same)

	b2 := convBNSq(b, x, 48, 1, 1, tensor.Same)
	b2 = convBNSq(b, b2, 64, 5, 1, tensor.Same)

	b3 := convBNSq(b, x, 64, 1, 1, tensor.Same)
	b3 = convBNSq(b, b3, 96, 3, 1, tensor.Same)
	b3 = convBNSq(b, b3, 96, 3, 1, tensor.Same)

	b4 := b.AvgPool(x, 3, 1, tensor.Same)
	b4 = convBNSq(b, b4, poolC, 1, 1, tensor.Same)

	return b.Concat(b1, b2, b3, b4)
}

// reductionA3 is the grid-size reduction from 35×35×288 to 17×17×768.
func reductionA3(b *nn.Builder, x nn.Tensor) nn.Tensor {
	b1 := convBNSq(b, x, 384, 3, 2, tensor.Valid)

	b2 := convBNSq(b, x, 64, 1, 1, tensor.Same)
	b2 = convBNSq(b, b2, 96, 3, 1, tensor.Same)
	b2 = convBNSq(b, b2, 96, 3, 2, tensor.Valid)

	b3 := b.MaxPool(x, 3, 2, tensor.Valid)

	return b.Concat(b1, b2, b3)
}

// inceptionB3 is the 17×17 module with factorized 7×7 convolutions.
func inceptionB3(b *nn.Builder, x nn.Tensor, c7 int64) nn.Tensor {
	b1 := convBNSq(b, x, 192, 1, 1, tensor.Same)

	b2 := convBNSq(b, x, c7, 1, 1, tensor.Same)
	b2 = convBN(b, b2, c7, 1, 7, 1, tensor.Same)
	b2 = convBN(b, b2, 192, 7, 1, 1, tensor.Same)

	b3 := convBNSq(b, x, c7, 1, 1, tensor.Same)
	b3 = convBN(b, b3, c7, 7, 1, 1, tensor.Same)
	b3 = convBN(b, b3, c7, 1, 7, 1, tensor.Same)
	b3 = convBN(b, b3, c7, 7, 1, 1, tensor.Same)
	b3 = convBN(b, b3, 192, 1, 7, 1, tensor.Same)

	b4 := b.AvgPool(x, 3, 1, tensor.Same)
	b4 = convBNSq(b, b4, 192, 1, 1, tensor.Same)

	return b.Concat(b1, b2, b3, b4)
}

// reductionB3 is the grid-size reduction from 17×17×768 to 8×8×1280.
func reductionB3(b *nn.Builder, x nn.Tensor) nn.Tensor {
	b1 := convBNSq(b, x, 192, 1, 1, tensor.Same)
	b1 = convBNSq(b, b1, 320, 3, 2, tensor.Valid)

	b2 := convBNSq(b, x, 192, 1, 1, tensor.Same)
	b2 = convBN(b, b2, 192, 1, 7, 1, tensor.Same)
	b2 = convBN(b, b2, 192, 7, 1, 1, tensor.Same)
	b2 = convBNSq(b, b2, 192, 3, 2, tensor.Valid)

	b3 := b.MaxPool(x, 3, 2, tensor.Valid)

	return b.Concat(b1, b2, b3)
}

// inceptionC3 is the 8×8 module with expanded-filter-bank branches.
func inceptionC3(b *nn.Builder, x nn.Tensor) nn.Tensor {
	b1 := convBNSq(b, x, 320, 1, 1, tensor.Same)

	b2 := convBNSq(b, x, 384, 1, 1, tensor.Same)
	b2a := convBN(b, b2, 384, 1, 3, 1, tensor.Same)
	b2b := convBN(b, b2, 384, 3, 1, 1, tensor.Same)

	b3 := convBNSq(b, x, 448, 1, 1, tensor.Same)
	b3 = convBNSq(b, b3, 384, 3, 1, tensor.Same)
	b3a := convBN(b, b3, 384, 1, 3, 1, tensor.Same)
	b3b := convBN(b, b3, 384, 3, 1, 1, tensor.Same)

	b4 := b.AvgPool(x, 3, 1, tensor.Same)
	b4 = convBNSq(b, b4, 192, 1, 1, tensor.Same)

	return b.Concat(b1, b2a, b2b, b3a, b3b, b4)
}
